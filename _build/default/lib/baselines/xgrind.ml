(* XGrind-like compressor (Tolani & Haritsa, ICDE'02).

   Homomorphic: the compressed document keeps the document's shape — tags
   are dictionary-encoded and each value is Huffman-compressed in place
   with a per-path source model (two passes). Querying is an extended SAX
   scan of the whole compressed stream, supporting only exact-match and
   prefix-match predicates in the compressed domain — no inequalities, no
   joins (§1.2 of the XQueC paper). *)

open Xmlkit

type t = {
  names : string array;
  models : Compress.Huffman.model array;  (* per path *)
  paths : string array;
  stream : string;
  original_size : int;
}

let op_open = '\001'
let op_close = '\002'
let op_text = '\003'
let op_attr = '\004'

let add_varint = Compress.Rle.add_varint
let read_varint = Compress.Rle.read_varint

let compress (xml : string) : t =
  (* pass 1: per-path value pools to train the Huffman models *)
  let pools : (string, int * string list ref) Hashtbl.t = Hashtbl.create 64 in
  let pool_order = ref [] in
  let pool_for path =
    match Hashtbl.find_opt pools path with
    | Some (id, l) -> (id, l)
    | None ->
      let id = Hashtbl.length pools in
      let l = ref [] in
      Hashtbl.add pools path (id, l);
      pool_order := path :: !pool_order;
      (id, l)
  in
  let stack = ref [] in
  let path () = String.concat "/" (List.rev !stack) in
  Sax.parse_string xml ~f:(fun ev ->
      match ev with
      | Sax.Start_element (tag, attrs) ->
        stack := tag :: !stack;
        List.iter
          (fun (n, v) ->
            let (_, l) = pool_for (path () ^ "/@" ^ n) in
            l := v :: !l)
          attrs
      | Sax.End_element _ -> stack := (match !stack with _ :: r -> r | [] -> [])
      | Sax.Characters text ->
        let (_, l) = pool_for (path () ^ "/#text") in
        l := text :: !l);
  let paths = Array.of_list (List.rev !pool_order) in
  let models =
    Array.map
      (fun p ->
        let (_, l) = Hashtbl.find pools p in
        Compress.Huffman.train !l)
      paths
  in
  (* pass 2: emit the homomorphic stream *)
  let names = Hashtbl.create 64 in
  let name_list = ref [] in
  let intern n =
    match Hashtbl.find_opt names n with
    | Some c -> c
    | None ->
      let c = Hashtbl.length names in
      Hashtbl.add names n c;
      name_list := n :: !name_list;
      c
  in
  let out = Buffer.create (String.length xml / 2) in
  let stack = ref [] in
  let path () = String.concat "/" (List.rev !stack) in
  let emit_value path v =
    let (id, _) = pool_for path in
    let coded = Compress.Huffman.compress models.(id) v in
    add_varint out id;
    add_varint out (String.length coded);
    Buffer.add_string out coded
  in
  Sax.parse_string xml ~f:(fun ev ->
      match ev with
      | Sax.Start_element (tag, attrs) ->
        Buffer.add_char out op_open;
        add_varint out (intern tag);
        stack := tag :: !stack;
        List.iter
          (fun (n, v) ->
            Buffer.add_char out op_attr;
            add_varint out (intern ("@" ^ n));
            emit_value (path () ^ "/@" ^ n) v)
          attrs
      | Sax.End_element _ ->
        Buffer.add_char out op_close;
        stack := (match !stack with _ :: r -> r | [] -> [])
      | Sax.Characters text ->
        Buffer.add_char out op_text;
        emit_value (path () ^ "/#text") text);
  {
    names = Array.of_list (List.rev !name_list);
    models;
    paths;
    stream = Buffer.contents out;
    original_size = String.length xml;
  }

let compressed_size (t : t) : int =
  String.length t.stream
  + (Array.length t.models * Compress.Huffman.symbol_count)
  + Array.fold_left (fun acc n -> acc + String.length n + 2) 0 t.names
  + Array.fold_left (fun acc p -> acc + String.length p + 2) 0 t.paths

let compression_factor (t : t) =
  1.0 -. (float_of_int (compressed_size t) /. float_of_int t.original_size)

(* --- The extended-SAX query interface ------------------------------ *)

type event =
  | Start of string * int         (* tag, depth *)
  | End of string * int
  | Value of string * int * string (* path-pool path, pool id, compressed code *)

(** Scan the whole compressed stream (the fixed top-down strategy the
    XQueC paper criticizes) feeding events to [f]. *)
let scan (t : t) ~(f : event -> unit) : unit =
  let pos = ref 0 in
  let depth = ref 0 in
  let stack = ref [] in
  let n = String.length t.stream in
  while !pos < n do
    let op = t.stream.[!pos] in
    incr pos;
    if op = op_open then begin
      let (code, p) = read_varint t.stream !pos in
      pos := p;
      let tag = t.names.(code) in
      incr depth;
      stack := tag :: !stack;
      f (Start (tag, !depth))
    end
    else if op = op_close then begin
      (match !stack with
      | tag :: rest ->
        f (End (tag, !depth));
        stack := rest
      | [] -> invalid_arg "Xgrind: unbalanced stream");
      decr depth
    end
    else if op = op_attr then begin
      let (code, p) = read_varint t.stream !pos in
      let (pid, p) = read_varint t.stream p in
      let (len, p) = read_varint t.stream p in
      let coded = String.sub t.stream p len in
      pos := p + len;
      let name = t.names.(code) in
      f (Start (name, !depth + 1));
      f (Value (t.paths.(pid), pid, coded));
      f (End (name, !depth + 1))
    end
    else if op = op_text then begin
      let (pid, p) = read_varint t.stream !pos in
      let (len, p) = read_varint t.stream p in
      let coded = String.sub t.stream p len in
      pos := p + len;
      f (Value (t.paths.(pid), pid, coded))
    end
    else invalid_arg "Xgrind: bad opcode"
  done

let decompress_value (t : t) pid coded = Compress.Huffman.decompress t.models.(pid) coded

(** Exact-match query in the compressed domain: decompressed text values
    of nodes at [target_path] whose sibling value at [pred_path] equals
    [value]. [pred_path] and [target_path] are full slash-joined paths as
    produced by the loader (e.g. "site/people/person/name/#text").
    The whole stream is scanned; the constant is compressed once per
    model and compared byte-wise — XGrind's only fast path. *)
let query_exact (t : t) ~(target_path : string) ~(pred_path : string) ~(value : string) :
    string list =
  let target_prefix =
    (* element path of the target value's parent *)
    match String.rindex_opt target_path '/' with
    | Some i -> String.sub target_path 0 i
    | None -> target_path
  in
  let pred_prefix =
    match String.rindex_opt pred_path '/' with
    | Some i -> String.sub pred_path 0 i
    | None -> pred_path
  in
  (* common ancestor element path of predicate and target *)
  let common =
    let rec go a b =
      if String.length a <= String.length b
         && (String.length b = String.length a || b.[String.length a] = '/')
         && String.sub b 0 (String.length a) = a
      then a
      else
        match String.rindex_opt a '/' with
        | Some i -> go (String.sub a 0 i) b
        | None -> ""
    in
    go target_prefix pred_prefix
  in
  let compressed_consts = Hashtbl.create 4 in
  let const_for pid =
    match Hashtbl.find_opt compressed_consts pid with
    | Some c -> c
    | None ->
      let c = Compress.Huffman.compress t.models.(pid) value in
      Hashtbl.add compressed_consts pid c;
      c
  in
  let depth_of p = List.length (String.split_on_char '/' p) in
  let common_depth = depth_of common in
  let results = ref [] in
  let group_matched = ref false in
  let group_targets = ref [] in
  let flush () =
    if !group_matched then results := List.rev_append !group_targets !results;
    group_matched := false;
    group_targets := []
  in
  scan t ~f:(fun ev ->
      match ev with
      | Start (_, d) -> if d = common_depth then flush ()
      | End (_, d) -> if d = common_depth then flush ()
      | Value (path, pid, coded) ->
        if String.equal path pred_path && Compress.Huffman.equal_compressed coded (const_for pid)
        then group_matched := true;
        if String.equal path target_path then
          group_targets := decompress_value t pid coded :: !group_targets);
  flush ();
  List.rev !results
