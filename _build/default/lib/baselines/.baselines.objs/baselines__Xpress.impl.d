lib/baselines/xpress.ml: Array Buffer Char Compress Float Hashtbl List Option Sax String Xmlkit
