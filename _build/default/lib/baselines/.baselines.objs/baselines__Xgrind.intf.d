lib/baselines/xgrind.mli:
