lib/baselines/galax_like.ml: Ast Buffer Float Fmt Hashtbl List Option Parser Printer Printf String Tree Xmlkit Xquery
