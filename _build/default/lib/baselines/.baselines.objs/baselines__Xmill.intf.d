lib/baselines/xmill.mli:
