lib/baselines/xmill.ml: Array Buffer Compress Escape Hashtbl List Sax String Xmlkit
