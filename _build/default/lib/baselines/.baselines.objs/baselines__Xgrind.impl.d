lib/baselines/xgrind.ml: Array Buffer Compress Hashtbl List Sax String Xmlkit
