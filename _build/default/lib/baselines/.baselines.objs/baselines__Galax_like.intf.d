lib/baselines/galax_like.mli: Tree Xmlkit Xquery
