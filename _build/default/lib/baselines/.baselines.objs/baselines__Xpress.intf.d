lib/baselines/xpress.mli:
