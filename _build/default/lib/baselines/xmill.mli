(** XMill-like compressor (Liefke & Suciu, SIGMOD'00) — the
    compression-ratio baseline of Fig. 6. Containers are coalesced and
    compressed as whole chunks (BWT pipeline + LZSS), so individual
    values are NOT accessible: querying requires full decompression. *)

type t

val compress : string -> t

val compressed_size : t -> int

val compression_factor : t -> float

(** Full decompression — the only way to read an XMill archive.
    Whitespace-only text is not preserved; compare parsed trees. *)
val decompress : t -> string
