(** Galax-like XQuery engine: a deliberately naive interpreter over the
    uncompressed DOM — the Fig. 7 comparator and the semantic reference
    the XQueC engine is differential-tested against. Nested FLWORs are
    re-evaluated per outer binding (what makes XMark Q8/Q9 quadratic). *)

open Xmlkit

type item =
  | N of Tree.t
  | A of string * string  (** attribute node: name, value *)
  | S of string
  | F of float
  | B of bool

exception Eval_error of string

val string_of_item : item -> string

val run : docs:(string * Tree.document) list -> Xquery.Ast.expr -> item list

val run_string : docs:(string * Tree.document) list -> string -> item list

val serialize : item list -> string
