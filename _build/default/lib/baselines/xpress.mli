(** XPRESS-like compressor (Min, Park & Chung, SIGMOD'03): reverse
    arithmetic encoding maps label paths to nested sub-intervals of
    [0,1) (a path query is one interval test per element), with
    type-inferred value codecs; homomorphic, queried by a top-down
    scan. *)

type t

val compress : string -> t

val compressed_size : t -> int

val compression_factor : t -> float

(** RAE interval for a (suffix) path, or [None] for unknown tags. *)
val path_interval : t -> string list -> (float * float) option

type event =
  | Start of string * float  (** tag, quantized path-interval minimum *)
  | End of string
  | Value of string * string  (** name, compressed code *)

val scan : t -> f:(event -> unit) -> unit

(** Path query with an optional numeric range predicate on the matched
    element's value — XPRESS's headline capability. *)
val query_path :
  t -> ?range:float option * float option -> string list -> string list
