(** XGrind-like compressor (Tolani & Haritsa, ICDE'02): homomorphic —
    dictionary-coded tags, values Huffman-compressed in place with
    per-path models. Querying is a fixed top-down scan of the whole
    stream supporting only exact/prefix matching in the compressed
    domain (§1.2 of the XQueC paper). *)

type t

val compress : string -> t

val compressed_size : t -> int

val compression_factor : t -> float

type event =
  | Start of string * int  (** tag, depth *)
  | End of string * int
  | Value of string * int * string  (** path, pool id, compressed code *)

(** Scan the whole compressed stream (the fixed top-down strategy). *)
val scan : t -> f:(event -> unit) -> unit

val decompress_value : t -> int -> string -> string

(** Exact-match query in the compressed domain: text values at
    [target_path] whose sibling value at [pred_path] equals [value];
    paths are slash-joined with [#text] / [@name] leaves. *)
val query_exact : t -> target_path:string -> pred_path:string -> value:string -> string list
