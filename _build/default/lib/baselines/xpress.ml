(* XPRESS-like compressor (Min, Park & Chung, SIGMOD'03).

   Two signature techniques are reproduced:
   - reverse arithmetic encoding (RAE): every label path maps to a
     sub-interval of [0,1), nested so that the interval of a path is
     contained in the interval of each of its suffixes — a path query
     //a/b becomes a single interval-containment test per element;
   - type inference per element name: numeric values get an
     order-preserving packed encoding, small string domains a dictionary
     code, everything else per-name Huffman.
   Like XGrind the result is homomorphic and queried by a fixed top-down
   scan of the whole stream. *)

open Xmlkit

type value_codec =
  | V_num of Compress.Ipack.model
  | V_dict of string array * (string, int) Hashtbl.t
  | V_huff of Compress.Huffman.model

type t = {
  names : string array;
  tag_intervals : (float * float) array; (* RAE base interval per tag *)
  codecs : value_codec array;            (* per element/attribute name *)
  stream : string;
  original_size : int;
}

let op_open = '\001'
let op_close = '\002'
let op_text = '\003'
let op_attr = '\004'

let add_varint = Compress.Rle.add_varint
let read_varint = Compress.Rle.read_varint

(* RAE: the interval of a path t1/../tn is computed from the tag's base
   interval narrowed by the parent path's interval. *)
let refine (tmin, tmax) (pmin, pmax) =
  let w = tmax -. tmin in
  (tmin +. (w *. pmin), tmin +. (w *. pmax))

let root_interval = (0.0, 1.0)

let choose_codec (values : string list) : value_codec =
  match Compress.Ipack.train values with
  | m -> V_num m
  | exception Compress.Ipack.Unsupported _ ->
    let distinct = List.sort_uniq String.compare values in
    let n = List.length distinct in
    if n <= 255 && n * 16 < List.length values then begin
      let arr = Array.of_list distinct in
      let tbl = Hashtbl.create n in
      Array.iteri (fun i v -> Hashtbl.add tbl v i) arr;
      V_dict (arr, tbl)
    end
    else V_huff (Compress.Huffman.train values)

let encode_value codec v =
  match codec with
  | V_num m -> Compress.Ipack.compress m v
  | V_dict (_, tbl) -> String.make 1 (Char.chr (Hashtbl.find tbl v))
  | V_huff m -> Compress.Huffman.compress m v

let decode_value codec coded =
  match codec with
  | V_num m -> Compress.Ipack.decompress m coded
  | V_dict (arr, _) -> arr.(Char.code coded.[0])
  | V_huff m -> Compress.Huffman.decompress m coded

let compress (xml : string) : t =
  (* pass 1: tag frequencies and per-name value pools *)
  let tag_freq : (string, int ref) Hashtbl.t = Hashtbl.create 64 in
  let pools : (string, string list ref) Hashtbl.t = Hashtbl.create 64 in
  let bump tbl k =
    match Hashtbl.find_opt tbl k with
    | Some r -> incr r
    | None -> Hashtbl.add tbl k (ref 1)
  in
  let pool name v =
    match Hashtbl.find_opt pools name with
    | Some l -> l := v :: !l
    | None -> Hashtbl.add pools name (ref [ v ])
  in
  let stack = ref [] in
  Sax.parse_string xml ~f:(fun ev ->
      match ev with
      | Sax.Start_element (tag, attrs) ->
        bump tag_freq tag;
        stack := tag :: !stack;
        List.iter
          (fun (n, v) ->
            bump tag_freq ("@" ^ n);
            pool ("@" ^ n) v)
          attrs
      | Sax.End_element _ -> stack := (match !stack with _ :: r -> r | [] -> [])
      | Sax.Characters text -> (
        match !stack with
        | tag :: _ -> pool tag text
        | [] -> ()));
  let names =
    Hashtbl.fold (fun k _ acc -> k :: acc) tag_freq [] |> List.sort String.compare |> Array.of_list
  in
  let name_code = Hashtbl.create 64 in
  Array.iteri (fun i n -> Hashtbl.add name_code n i) names;
  let total = Hashtbl.fold (fun _ r acc -> acc + !r) tag_freq 0 in
  let tag_intervals =
    let acc = ref 0.0 in
    Array.map
      (fun n ->
        let f = float_of_int !(Hashtbl.find tag_freq n) /. float_of_int total in
        let lo = !acc in
        acc := !acc +. f;
        (lo, !acc))
      names
  in
  let codecs =
    Array.map
      (fun n ->
        match Hashtbl.find_opt pools n with
        | Some l -> choose_codec !l
        | None -> V_huff (Compress.Huffman.train []))
      names
  in
  (* pass 2: emit stream; element open records the quantized RAE interval
     minimum of its path (6 bytes), enabling suffix-path tests *)
  let out = Buffer.create (String.length xml / 2) in
  let interval_stack = ref [ root_interval ] in
  let tag_stack = ref [] in
  let quantize x = int_of_float (x *. 281474976710655.0) in
  let emit_value name v =
    let code = Hashtbl.find name_code name in
    let coded = encode_value codecs.(code) v in
    add_varint out (String.length coded);
    Buffer.add_string out coded
  in
  Sax.parse_string xml ~f:(fun ev ->
      match ev with
      | Sax.Start_element (tag, attrs) ->
        let code = Hashtbl.find name_code tag in
        let parent = List.hd !interval_stack in
        let itv = refine tag_intervals.(code) parent in
        interval_stack := itv :: !interval_stack;
        tag_stack := tag :: !tag_stack;
        Buffer.add_char out op_open;
        add_varint out code;
        let q = quantize (fst itv) in
        for shift = 5 downto 0 do
          Buffer.add_char out (Char.chr ((q lsr (8 * shift)) land 0xff))
        done;
        List.iter
          (fun (n, v) ->
            Buffer.add_char out op_attr;
            add_varint out (Hashtbl.find name_code ("@" ^ n));
            emit_value ("@" ^ n) v)
          attrs
      | Sax.End_element _ ->
        Buffer.add_char out op_close;
        interval_stack := List.tl !interval_stack;
        tag_stack := List.tl !tag_stack
      | Sax.Characters text -> (
        match !tag_stack with
        | tag :: _ ->
          Buffer.add_char out op_text;
          emit_value tag text
        | [] -> ()));
  { names; tag_intervals; codecs; stream = Buffer.contents out; original_size = String.length xml }

let codec_size = function
  | V_num m -> Compress.Ipack.model_size m
  | V_dict (arr, _) -> Array.fold_left (fun acc v -> acc + String.length v + 1) 2 arr
  | V_huff m -> Compress.Huffman.model_size m

let compressed_size (t : t) : int =
  String.length t.stream
  + Array.fold_left (fun acc n -> acc + String.length n + 2 + 12) 0 t.names
  + Array.fold_left (fun acc c -> acc + codec_size c) 0 t.codecs

let compression_factor (t : t) =
  1.0 -. (float_of_int (compressed_size t) /. float_of_int t.original_size)

(* --- Querying ------------------------------------------------------- *)

(** RAE query interval for a simple path (last tag refined by ancestors):
    an element matches path suffix t1/../tn iff its stored interval
    minimum falls inside. *)
let path_interval (t : t) (tags : string list) : (float * float) option =
  let code n = Array.to_list t.names |> List.find_index (fun x -> String.equal x n) in
  let rec go = function
    | [] -> Some root_interval
    | tag :: rest -> (
      match go rest, code tag with
      | Some parent, Some c -> Some (refine t.tag_intervals.(c) parent)
      | _ -> None)
  in
  (* reverse arithmetic: process labels from the last one outwards *)
  go (List.rev tags)

type event =
  | Start of string * float   (* tag, quantized path-interval min *)
  | End of string
  | Value of string * string  (* name, compressed code *)

let scan (t : t) ~(f : event -> unit) : unit =
  let pos = ref 0 in
  let n = String.length t.stream in
  let stack = ref [] in
  while !pos < n do
    let op = t.stream.[!pos] in
    incr pos;
    if op = op_open then begin
      let (code, p) = read_varint t.stream !pos in
      let q = ref 0 in
      for i = 0 to 5 do
        q := (!q lsl 8) lor Char.code t.stream.[p + i]
      done;
      pos := p + 6;
      let tag = t.names.(code) in
      stack := tag :: !stack;
      f (Start (tag, float_of_int !q /. 281474976710655.0))
    end
    else if op = op_close then begin
      (match !stack with
      | tag :: rest ->
        f (End tag);
        stack := rest
      | [] -> invalid_arg "Xpress: unbalanced stream");
    end
    else if op = op_attr then begin
      let (code, p) = read_varint t.stream !pos in
      let (len, p) = read_varint t.stream p in
      let coded = String.sub t.stream p len in
      pos := p + len;
      f (Value (t.names.(code), coded))
    end
    else if op = op_text then begin
      let (len, p) = read_varint t.stream !pos in
      let coded = String.sub t.stream p len in
      pos := p + len;
      match !stack with
      | tag :: _ -> f (Value (tag, coded))
      | [] -> ()
    end
    else invalid_arg "Xpress: bad opcode"
  done

(** Path query with optional numeric range predicate on the matched
    element's value — XPRESS's headline capability. Scans the whole
    stream; the interval test runs per element in the compressed domain. *)
let query_path (t : t) ?(range : (float option * float option) option)
    (tags : string list) : string list =
  match path_interval t tags with
  | None -> []
  | Some (lo, hi) ->
    (* quantize the bound exactly as stored interval minima are *)
    let lo = Float.of_int (int_of_float (lo *. 281474976710655.0)) /. 281474976710655.0 in
    let name_of_last = List.nth tags (List.length tags - 1) in
    let codec =
      Array.to_list t.names
      |> List.find_index (fun x -> String.equal x name_of_last)
      |> Option.map (fun i -> t.codecs.(i))
    in
    let in_range v =
      match range, codec with
      | None, _ -> true
      | Some (rlo, rhi), Some (V_num m) -> (
        match float_of_string_opt (Compress.Ipack.decompress m (encode_value (V_num m) v)) with
        | Some x ->
          (match rlo with None -> true | Some b -> x >= b)
          && (match rhi with None -> true | Some b -> x <= b)
        | None -> false)
      | Some (rlo, rhi), _ -> (
        match float_of_string_opt v with
        | Some x ->
          (match rlo with None -> true | Some b -> x >= b)
          && (match rhi with None -> true | Some b -> x <= b)
        | None -> false)
    in
    let results = ref [] in
    let matched_depth = ref [] in
    scan t ~f:(fun ev ->
        match ev with
        | Start (_, q) -> matched_depth := (q >= lo && q < hi) :: !matched_depth
        | End _ -> matched_depth := List.tl !matched_depth
        | Value (name, coded) ->
          if String.equal name name_of_last
             && (match !matched_depth with m :: _ -> m | [] -> false)
          then begin
            let codec =
              Array.to_list t.names
              |> List.find_index (fun x -> String.equal x name)
              |> Option.map (fun i -> t.codecs.(i))
            in
            match codec with
            | Some c ->
              let v = decode_value c coded in
              if in_range v then results := v :: !results
            | None -> ()
          end);
    List.rev !results
