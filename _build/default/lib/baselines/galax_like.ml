(* Galax-like XQuery engine: a straightforward interpreter over the
   uncompressed in-memory DOM — the comparator of the paper's Fig. 7.

   It is deliberately naive in the two ways that matter for the
   experiment's shape: (a) it materializes the full uncompressed document,
   and (b) it re-evaluates nested FLWOR expressions for every outer
   binding (nested-loop semantics), which is what makes XMark Q8/Q9
   catastrophic on it. It doubles as the semantic reference the XQueC
   engine is differential-tested against. *)

open Xmlkit
open Xquery

type item =
  | N of Tree.t             (* element node *)
  | A of string * string    (* attribute node: name, value *)
  | S of string
  | F of float
  | B of bool

type env = { docs : (string * Tree.document) list; vars : (string * item list) list }

exception Eval_error of string

let err fmt = Fmt.kstr (fun s -> raise (Eval_error s)) fmt

let make_env ?(docs = []) () = { docs; vars = [] }

let bind env v items = { env with vars = (v, items) :: env.vars }

let lookup env v =
  match List.assoc_opt v env.vars with
  | Some items -> items
  | None -> err "unbound variable $%s" v

(* ------------------------------------------------------------------ *)
(* Atomization and coercions                                           *)
(* ------------------------------------------------------------------ *)

let string_of_item = function
  | N n -> Tree.text_content n
  | A (_, v) -> v
  | S s -> s
  | F f -> if Float.is_integer f then string_of_int (int_of_float f) else Printf.sprintf "%g" f
  | B b -> if b then "true" else "false"

let number_of_item it =
  match it with
  | F f -> Some f
  | N _ | A _ | S _ -> float_of_string_opt (String.trim (string_of_item it))
  | B b -> Some (if b then 1.0 else 0.0)

(* Effective boolean value. *)
let ebv = function
  | [] -> false
  | [ B b ] -> b
  | [ S s ] -> s <> ""
  | [ F f ] -> f <> 0.0 && not (Float.is_nan f)
  | _ -> true (* nonempty node sequence *)

let singleton_number items =
  match items with
  | [ it ] -> (
    match number_of_item it with
    | Some f -> f
    | None -> err "cannot convert %S to a number" (string_of_item it))
  | [] -> Float.nan
  | _ -> err "expected a singleton numeric value"

(* ------------------------------------------------------------------ *)
(* Axes                                                                *)
(* ------------------------------------------------------------------ *)

let child_elements node =
  match node with
  | N (Tree.Element (_, _, kids)) ->
    List.filter_map (function Tree.Element _ as e -> Some (N e) | Tree.Text _ -> None) kids
  | N (Tree.Text _) | A _ | S _ | F _ | B _ -> []

let apply_test test items =
  List.filter
    (fun it ->
      match test, it with
      | Ast.Any, N _ -> true
      | Ast.Name n, N (Tree.Element (t, _, _)) -> String.equal t n
      | _ -> false)
    items

let axis_child test node =
  match test with
  | Ast.Text -> (
    match node with
    | N (Tree.Element (_, _, kids)) ->
      List.filter_map (function Tree.Text s -> Some (S s) | Tree.Element _ -> None) kids
    | N (Tree.Text _) | A _ | S _ | F _ | B _ -> [])
  | Ast.Name _ | Ast.Any -> apply_test test (child_elements node)

let axis_descendant test node =
  match node with
  | N root ->
    let acc = ref [] in
    let rec go n =
      List.iter
        (fun k ->
          match k with
          | Tree.Element _ ->
            (match test, k with
            | Ast.Any, _ -> acc := N k :: !acc
            | Ast.Name name, Tree.Element (t, _, _) when String.equal t name ->
              acc := N k :: !acc
            | _ -> ());
            go k
          | Tree.Text s -> if test = Ast.Text then acc := S s :: !acc)
        (Tree.children n)
    in
    go root;
    List.rev !acc
  | A _ | S _ | F _ | B _ -> []

let axis_attribute test node =
  match node with
  | N (Tree.Element (_, attrs, _)) ->
    List.filter_map
      (fun (n, v) ->
        match test with
        | Ast.Name name when String.equal n name -> Some (A (n, v))
        | Ast.Any -> Some (A (n, v))
        | Ast.Name _ | Ast.Text -> None)
      attrs
  | N (Tree.Text _) | A _ | S _ | F _ | B _ -> []

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

let compare_atoms a b =
  (* numeric when both sides are numbers, else string comparison *)
  match number_of_item a, number_of_item b with
  | Some x, Some y -> compare x y
  | _ -> compare (string_of_item a) (string_of_item b)

let cmp_holds op a b =
  let c = compare_atoms a b in
  match op with
  | Ast.Eq -> c = 0
  | Ast.Neq -> c <> 0
  | Ast.Lt -> c < 0
  | Ast.Le -> c <= 0
  | Ast.Gt -> c > 0
  | Ast.Ge -> c >= 0

let rec eval (env : env) (e : Ast.expr) : item list =
  match e with
  | Ast.Literal_string s -> [ S s ]
  | Ast.Literal_number f -> [ F f ]
  | Ast.Var v -> lookup env v
  | Ast.Context -> lookup env "."
  | Ast.Doc name -> (
    (* a virtual document node whose only child is the root element, so
       that /site from document() selects the root element itself *)
    match List.assoc_opt name env.docs with
    | Some d -> [ N (Tree.Element ("#document", [], [ d.Tree.root ])) ]
    | None -> err "unknown document %S" name)
  | Ast.Path (src, steps) ->
    let ctx = eval env src in
    List.fold_left (eval_step env) ctx steps
  | Ast.Flwor (clauses, ret) ->
    let tuples = List.fold_left (eval_clause ()) [ env ] clauses in
    List.concat_map (fun env' -> eval env' ret) tuples
  | Ast.If (c, t, f) -> if ebv (eval env c) then eval env t else eval env f
  | Ast.Cmp (op, a, b) ->
    let xs = eval env a and ys = eval env b in
    [ B (List.exists (fun x -> List.exists (fun y -> cmp_holds op x y) ys) xs) ]
  | Ast.Arith (op, a, b) ->
    let x = singleton_number (eval env a) and y = singleton_number (eval env b) in
    let v =
      match op with
      | Ast.Add -> x +. y
      | Ast.Sub -> x -. y
      | Ast.Mul -> x *. y
      | Ast.Div -> x /. y
      | Ast.Mod -> Float.rem x y
    in
    [ F v ]
  | Ast.And (a, b) -> [ B (ebv (eval env a) && ebv (eval env b)) ]
  | Ast.Or (a, b) -> [ B (ebv (eval env a) || ebv (eval env b)) ]
  | Ast.Not a -> [ B (not (ebv (eval env a))) ]
  | Ast.Aggregate (agg, e) -> eval_aggregate env agg e
  | Ast.Contains (a, b) ->
    let hay = String.concat "" (List.map string_of_item (eval env a)) in
    let needle = String.concat "" (List.map string_of_item (eval env b)) in
    [ B (contains_substring ~needle hay) ]
  | Ast.Starts_with (a, b) ->
    let hay = String.concat "" (List.map string_of_item (eval env a)) in
    let needle = String.concat "" (List.map string_of_item (eval env b)) in
    [
      B
        (String.length needle <= String.length hay
        && String.sub hay 0 (String.length needle) = needle);
    ]
  | Ast.Ftcontains (a, words) ->
    let hay = String.lowercase_ascii (String.concat " " (List.map string_of_item (eval env a))) in
    [ B (List.for_all (fun w -> contains_substring ~needle:w hay) words) ]
  | Ast.Empty e -> [ B (eval env e = []) ]
  | Ast.Exists e -> [ B (eval env e <> []) ]
  | Ast.Distinct_values e ->
    let seen = Hashtbl.create 16 in
    List.filter_map
      (fun it ->
        let k = string_of_item it in
        if Hashtbl.mem seen k then None
        else begin
          Hashtbl.add seen k ();
          Some (S k)
        end)
      (eval env e)
  | Ast.String_of e -> [ S (String.concat "" (List.map string_of_item (eval env e))) ]
  | Ast.Number_of e -> [ F (singleton_number (eval env e)) ]
  | Ast.Name_of e -> (
    match eval env e with
    | N (Tree.Element (t, _, _)) :: _ -> [ S t ]
    | A (n, _) :: _ -> [ S n ]
    | _ -> [ S "" ])
  | Ast.Some_satisfies (v, e, cond) ->
    [ B (List.exists (fun it -> ebv (eval (bind env v [ it ]) cond)) (eval env e)) ]
  | Ast.Every_satisfies (v, e, cond) ->
    [ B (List.for_all (fun it -> ebv (eval (bind env v [ it ]) cond)) (eval env e)) ]
  | Ast.Element (tag, attrs, kids) -> [ N (construct env tag attrs kids) ]
  | Ast.Sequence es -> List.concat_map (eval env) es

and contains_substring ~needle hay =
  let n = String.length needle and h = String.length hay in
  if n = 0 then true
  else begin
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  end

and eval_step env ctx (st : Ast.step) =
  let apply node =
    match st.Ast.axis with
    | Ast.Child -> axis_child st.Ast.test node
    | Ast.Descendant -> axis_descendant st.Ast.test node
    | Ast.Attribute -> axis_attribute st.Ast.test node
  in
  let step_result = List.concat_map apply ctx in
  (* Steps from several context nodes can surface the same node twice via
     the descendant axis; XQuery de-duplicates. Physical equality is the
     node identity here. *)
  let dedup items =
    let rec go acc = function
      | [] -> List.rev acc
      | (N n as it) :: rest ->
        if List.exists (function N n' -> n' == n | _ -> false) acc then go acc rest
        else go (it :: acc) rest
      | it :: rest -> go (it :: acc) rest
    in
    go [] items
  in
  let step_result =
    match st.Ast.axis with Ast.Descendant -> dedup step_result | _ -> step_result
  in
  List.fold_left (apply_predicate env) step_result st.Ast.predicates

and apply_predicate env items = function
  | Ast.Pos i -> (match List.nth_opt items (i - 1) with Some it -> [ it ] | None -> [])
  | Ast.Pos_last -> (match List.rev items with it :: _ -> [ it ] | [] -> [])
  | Ast.Cond e ->
    List.filter
      (fun it ->
        let env' = bind env "." [ it ] in
        ebv (eval env' e))
      items

and eval_clause () tuples (clause : Ast.clause) =
  match clause with
  | Ast.For (v, e) ->
    List.concat_map (fun env -> List.map (fun it -> bind env v [ it ]) (eval env e)) tuples
  | Ast.Let (v, e) -> List.map (fun env -> bind env v (eval env e)) tuples
  | Ast.Where e -> List.filter (fun env -> ebv (eval env e)) tuples
  | Ast.Order_by keys ->
    let decorated =
      List.map
        (fun env -> (List.map (fun (k, dir) -> (eval env k, dir)) keys, env))
        tuples
    in
    let cmp (ka, _) (kb, _) =
      let rec go = function
        | [] -> 0
        | ((a, dir), (b, _)) :: rest ->
          let c =
            match a, b with
            | [ x ], [ y ] -> compare_atoms x y
            | [], [] -> 0
            | [], _ -> -1
            | _, [] -> 1
            | x :: _, y :: _ -> compare_atoms x y
          in
          let c = match dir with `Asc -> c | `Desc -> -c in
          if c <> 0 then c else go rest
      in
      go (List.combine ka kb)
    in
    List.map snd (List.stable_sort cmp decorated)

and eval_aggregate env agg e =
  let items = eval env e in
  match agg with
  | Ast.Count -> [ F (float_of_int (List.length items)) ]
  | Ast.Sum ->
    [ F (List.fold_left (fun acc it -> acc +. Option.value ~default:0.0 (number_of_item it)) 0.0 items) ]
  | Ast.Avg ->
    if items = [] then []
    else
      [
        F
          (List.fold_left
             (fun acc it -> acc +. Option.value ~default:0.0 (number_of_item it))
             0.0 items
          /. float_of_int (List.length items));
      ]
  | Ast.Min | Ast.Max -> (
    match items with
    | [] -> []
    | first :: rest ->
      let better a b =
        let c = compare_atoms a b in
        match agg with Ast.Min -> c <= 0 | _ -> c >= 0
      in
      let winner = List.fold_left (fun best it -> if better best it then best else it) first rest in
      let atomized =
        match winner with
        | N _ | A _ -> S (string_of_item winner)
        | it -> it
      in
      [ atomized ])

and construct env tag attrs kids : Tree.t =
  let eval_attr (n, v) =
    match v with
    | Ast.Attr_string s -> [ (n, s) ]
    | Ast.Attr_expr e ->
      [ (n, String.concat " " (List.map string_of_item (eval env e))) ]
  in
  let static_attrs = List.concat_map eval_attr attrs in
  let kid_items = List.concat_map (eval env) kids in
  (* Attribute items become attributes of the constructed element;
     adjacent atomic values are joined by spaces per the XQuery rules. *)
  let dyn_attrs =
    List.filter_map (function A (n, v) -> Some (n, v) | _ -> None) kid_items
  in
  let rec content acc pending_atoms = function
    | [] ->
      let acc = flush acc pending_atoms in
      List.rev acc
    | A _ :: rest -> content acc pending_atoms rest
    | N n :: rest -> content (n :: flush acc pending_atoms) [] rest
    | ((S _ | F _ | B _) as it) :: rest ->
      content acc (string_of_item it :: pending_atoms) rest
  and flush acc pending =
    match pending with
    | [] -> acc
    | atoms -> Tree.Text (String.concat " " (List.rev atoms)) :: acc
  in
  Tree.Element (tag, static_attrs @ dyn_attrs, content [] [] kid_items)

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

(** Evaluate a query against named documents. *)
let run ~(docs : (string * Tree.document) list) (query : Ast.expr) : item list =
  eval (make_env ~docs ()) query

let run_string ~docs (query : string) : item list = run ~docs (Parser.parse query)

(** Serialize a result sequence the way the paper's engines emit results. *)
let serialize (items : item list) : string =
  let buf = Buffer.create 256 in
  List.iteri
    (fun i it ->
      if i > 0 then Buffer.add_char buf '\n';
      match it with
      | N n -> Printer.add_node buf n
      | A (n, v) -> Buffer.add_string buf (Printf.sprintf "%s=\"%s\"" n v)
      | other -> Buffer.add_string buf (string_of_item other))
    items;
  Buffer.contents buf
