(* XMill-like compressor (Liefke & Suciu, SIGMOD'00) — the
   compression-ratio baseline of Fig. 6.

   Like XQueC it separates structure from content and groups values into
   per-path containers; unlike XQueC each container is coalesced into a
   single chunk and compressed as a whole (BWT pipeline + LZSS second
   pass), so individual values are NOT accessible: querying requires
   decompressing entire containers. *)

open Xmlkit

type t = {
  names : string array;                    (* tag dictionary *)
  structure : string;                      (* compressed structure stream *)
  containers : (string * string) array;    (* path, compressed value chunk *)
  original_size : int;
}

(* Structure stream opcodes. *)
let op_open = '\001'
let op_close = '\002'
let op_text = '\003'
let op_attr = '\004'

let add_varint = Compress.Rle.add_varint
let read_varint = Compress.Rle.read_varint

let compress (xml : string) : t =
  let names = Hashtbl.create 64 in
  let name_list = ref [] in
  let intern n =
    match Hashtbl.find_opt names n with
    | Some c -> c
    | None ->
      let c = Hashtbl.length names in
      Hashtbl.add names n c;
      name_list := n :: !name_list;
      c
  in
  (* container per path: values are \0-separated in one chunk *)
  let containers : (string, int * Buffer.t) Hashtbl.t = Hashtbl.create 64 in
  let container_order = ref [] in
  let container_for path =
    match Hashtbl.find_opt containers path with
    | Some (id, buf) -> (id, buf)
    | None ->
      let id = Hashtbl.length containers in
      let buf = Buffer.create 256 in
      Hashtbl.add containers path (id, buf);
      container_order := path :: !container_order;
      (id, buf)
  in
  let structure = Buffer.create 4096 in
  let stack = ref [] in
  let path () = String.concat "/" (List.rev !stack) in
  let handle ev =
    match ev with
    | Sax.Start_element (tag, attrs) ->
      Buffer.add_char structure op_open;
      add_varint structure (intern tag);
      stack := tag :: !stack;
      List.iter
        (fun (n, v) ->
          Buffer.add_char structure op_attr;
          add_varint structure (intern ("@" ^ n));
          let (id, buf) = container_for (path () ^ "/@" ^ n) in
          add_varint structure id;
          Buffer.add_string buf v;
          Buffer.add_char buf '\000')
        attrs
    | Sax.End_element _ ->
      Buffer.add_char structure op_close;
      stack := (match !stack with _ :: r -> r | [] -> [])
    | Sax.Characters text ->
      Buffer.add_char structure op_text;
      let (id, buf) = container_for (path () ^ "/#text") in
      add_varint structure id;
      Buffer.add_string buf text;
      Buffer.add_char buf '\000'
  in
  Sax.parse_string ~f:handle xml;
  let compress_chunk chunk =
    (* semantic pass (BWT pipeline), then the gzip-like second pass *)
    let b = Compress.Bzip.compress chunk in
    let l = Compress.Lzss.compress b in
    if String.length l < String.length b then "L" ^ l else "B" ^ b
  in
  let containers =
    List.rev !container_order
    |> List.map (fun path ->
           let (_, buf) = Hashtbl.find containers path in
           (path, compress_chunk (Buffer.contents buf)))
    |> Array.of_list
  in
  {
    names = Array.of_list (List.rev !name_list);
    structure = compress_chunk (Buffer.contents structure);
    containers;
    original_size = String.length xml;
  }

let compressed_size (t : t) : int =
  String.length t.structure
  + Array.fold_left (fun acc (p, c) -> acc + String.length p + String.length c + 4) 0 t.containers
  + Array.fold_left (fun acc n -> acc + String.length n + 2) 0 t.names

let compression_factor (t : t) =
  1.0 -. (float_of_int (compressed_size t) /. float_of_int t.original_size)

let decompress_chunk (chunk : string) : string =
  let body = String.sub chunk 1 (String.length chunk - 1) in
  match chunk.[0] with
  | 'L' -> Compress.Bzip.decompress (Compress.Lzss.decompress body)
  | 'B' -> Compress.Bzip.decompress body
  | _ -> invalid_arg "Xmill: bad chunk tag"

(** Full decompression — the only way to read an XMill archive. *)
let decompress (t : t) : string =
  (* split each container chunk back into its values *)
  let split chunk =
    let s = decompress_chunk chunk in
    let out = ref [] in
    let start = ref 0 in
    String.iteri (fun i c -> if c = '\000' then begin
        out := String.sub s !start (i - !start) :: !out;
        start := i + 1
      end) s;
    Array.of_list (List.rev !out)
  in
  let values = Array.map (fun (_, chunk) -> split chunk) t.containers in
  let cursor = Array.map (fun _ -> ref 0) values in
  let next_value id =
    let c = cursor.(id) in
    let v = values.(id).(!c) in
    incr c;
    v
  in
  let structure = decompress_chunk t.structure in
  let buf = Buffer.create t.original_size in
  let pos = ref 0 in
  let stack = ref [] in
  let pending_open = ref false in
  let close_open_tag () =
    if !pending_open then begin
      Buffer.add_char buf '>';
      pending_open := false
    end
  in
  while !pos < String.length structure do
    let op = structure.[!pos] in
    incr pos;
    if op = op_open then begin
      close_open_tag ();
      let (code, p) = read_varint structure !pos in
      pos := p;
      let tag = t.names.(code) in
      Buffer.add_char buf '<';
      Buffer.add_string buf tag;
      pending_open := true;
      stack := tag :: !stack
    end
    else if op = op_attr then begin
      let (code, p) = read_varint structure !pos in
      let (cid, p) = read_varint structure p in
      pos := p;
      let name = t.names.(code) in
      Buffer.add_char buf ' ';
      Buffer.add_string buf (String.sub name 1 (String.length name - 1));
      Buffer.add_string buf "=\"";
      Buffer.add_string buf (Escape.escape_attr (next_value cid));
      Buffer.add_char buf '"'
    end
    else if op = op_text then begin
      close_open_tag ();
      let (cid, p) = read_varint structure !pos in
      pos := p;
      Buffer.add_string buf (Escape.escape_text (next_value cid))
    end
    else if op = op_close then begin
      close_open_tag ();
      match !stack with
      | tag :: rest ->
        Buffer.add_string buf "</";
        Buffer.add_string buf tag;
        Buffer.add_char buf '>';
        stack := rest
      | [] -> invalid_arg "Xmill: unbalanced structure stream"
    end
    else invalid_arg "Xmill: bad opcode"
  done;
  Buffer.contents buf
