(* Abstract syntax for the XQuery subset XQueC evaluates: FLWOR (with
   nesting), path expressions over child / descendant-or-self / attribute
   axes with predicates, value and general comparisons, arithmetic,
   aggregates, quantifiers, conditionals and direct element constructors —
   the constructs exercised by XMark Q1-Q20. *)

type axis = Child | Descendant | Attribute

type node_test =
  | Name of string  (** element or attribute name *)
  | Any             (** * *)
  | Text            (** text() *)

type cmp_op = Eq | Neq | Lt | Le | Gt | Ge

type arith_op = Add | Sub | Mul | Div | Mod

type aggregate = Count | Sum | Avg | Min | Max

type expr =
  | Literal_string of string
  | Literal_number of float
  | Var of string                         (** $x *)
  | Context                               (** . — the context item inside a predicate *)
  | Doc of string                         (** document("...") *)
  | Path of expr * step list              (** e/step/step... *)
  | Flwor of clause list * expr           (** for/let/where/order by + return *)
  | If of expr * expr * expr
  | Cmp of cmp_op * expr * expr
  | Arith of arith_op * expr * expr
  | And of expr * expr
  | Or of expr * expr
  | Not of expr
  | Aggregate of aggregate * expr
  | Contains of expr * expr
  | Starts_with of expr * expr
  | Ftcontains of expr * string list
      (** full-text all-words containment (the paper's §6 future work,
          after the W3C XQuery Full-Text use cases) *)
  | Empty of expr
  | Exists of expr
  | Distinct_values of expr
  | String_of of expr                     (** string(e) *)
  | Number_of of expr                     (** number(e) *)
  | Name_of of expr                       (** name(e) *)
  | Some_satisfies of string * expr * expr  (** some $v in e satisfies e *)
  | Every_satisfies of string * expr * expr
  | Element of string * (string * attr_value) list * expr list
      (** direct constructor <tag a="..">{...}</tag> *)
  | Sequence of expr list                 (** (e1, e2, ...) *)

and attr_value =
  | Attr_string of string
  | Attr_expr of expr

and step = { axis : axis; test : node_test; predicates : predicate list }

and predicate =
  | Pos of int                 (** [3] — positional *)
  | Pos_last                   (** [last()] *)
  | Cond of expr               (** [expr] — boolean / existential *)

and clause =
  | For of string * expr       (** for $v in e *)
  | Let of string * expr       (** let $v := e *)
  | Where of expr
  | Order_by of (expr * [ `Asc | `Desc ]) list

(* ------------------------------------------------------------------ *)

let step ?(predicates = []) axis test = { axis; test; predicates }

let rec pp_expr ppf (e : expr) =
  match e with
  | Literal_string s -> Fmt.pf ppf "%S" s
  | Literal_number f -> Fmt.pf ppf "%g" f
  | Var v -> Fmt.pf ppf "$%s" v
  | Context -> Fmt.pf ppf "."
  | Doc d -> Fmt.pf ppf "document(%S)" d
  | Path (src, steps) ->
    pp_expr ppf src;
    List.iter (pp_step ppf) steps
  | Flwor (clauses, ret) ->
    Fmt.pf ppf "@[<2>";
    List.iter (pp_clause ppf) clauses;
    Fmt.pf ppf "return %a@]" pp_expr ret
  | If (c, t, e) -> Fmt.pf ppf "if (%a) then %a else %a" pp_expr c pp_expr t pp_expr e
  | Cmp (op, a, b) -> Fmt.pf ppf "%a %s %a" pp_expr a (cmp_name op) pp_expr b
  | Arith (op, a, b) -> Fmt.pf ppf "%a %s %a" pp_expr a (arith_name op) pp_expr b
  | And (a, b) -> Fmt.pf ppf "(%a and %a)" pp_expr a pp_expr b
  | Or (a, b) -> Fmt.pf ppf "(%a or %a)" pp_expr a pp_expr b
  | Not a -> Fmt.pf ppf "not(%a)" pp_expr a
  | Aggregate (a, e) -> Fmt.pf ppf "%s(%a)" (aggregate_name a) pp_expr e
  | Contains (a, b) -> Fmt.pf ppf "contains(%a, %a)" pp_expr a pp_expr b
  | Starts_with (a, b) -> Fmt.pf ppf "starts-with(%a, %a)" pp_expr a pp_expr b
  | Ftcontains (a, words) ->
    Fmt.pf ppf "ftcontains(%a, %S)" pp_expr a (String.concat " " words)
  | Empty e -> Fmt.pf ppf "empty(%a)" pp_expr e
  | Exists e -> Fmt.pf ppf "exists(%a)" pp_expr e
  | Distinct_values e -> Fmt.pf ppf "distinct-values(%a)" pp_expr e
  | String_of e -> Fmt.pf ppf "string(%a)" pp_expr e
  | Number_of e -> Fmt.pf ppf "number(%a)" pp_expr e
  | Name_of e -> Fmt.pf ppf "name(%a)" pp_expr e
  | Some_satisfies (v, e, c) ->
    Fmt.pf ppf "some $%s in %a satisfies %a" v pp_expr e pp_expr c
  | Every_satisfies (v, e, c) ->
    Fmt.pf ppf "every $%s in %a satisfies %a" v pp_expr e pp_expr c
  | Element (tag, attrs, kids) ->
    Fmt.pf ppf "<%s" tag;
    List.iter
      (fun (n, v) ->
        match v with
        | Attr_string s -> Fmt.pf ppf " %s=%S" n s
        | Attr_expr e -> Fmt.pf ppf " %s={%a}" n pp_expr e)
      attrs;
    Fmt.pf ppf ">";
    List.iter (fun k -> Fmt.pf ppf "{%a}" pp_expr k) kids;
    Fmt.pf ppf "</%s>" tag
  | Sequence es -> Fmt.pf ppf "(%a)" Fmt.(list ~sep:comma pp_expr) es

and pp_step ppf (s : step) =
  (match s.axis, s.test with
  | Child, Name n -> Fmt.pf ppf "/%s" n
  | Child, Any -> Fmt.pf ppf "/*"
  | Child, Text -> Fmt.pf ppf "/text()"
  | Descendant, Name n -> Fmt.pf ppf "//%s" n
  | Descendant, Any -> Fmt.pf ppf "//*"
  | Descendant, Text -> Fmt.pf ppf "//text()"
  | Attribute, Name n -> Fmt.pf ppf "/@%s" n
  | Attribute, Any -> Fmt.pf ppf "/@*"
  | Attribute, Text -> Fmt.pf ppf "/@text()");
  List.iter
    (function
      | Pos i -> Fmt.pf ppf "[%d]" i
      | Pos_last -> Fmt.pf ppf "[last()]"
      | Cond e -> Fmt.pf ppf "[%a]" pp_expr e)
    s.predicates

and pp_clause ppf = function
  | For (v, e) -> Fmt.pf ppf "for $%s in %a@ " v pp_expr e
  | Let (v, e) -> Fmt.pf ppf "let $%s := %a@ " v pp_expr e
  | Where e -> Fmt.pf ppf "where %a@ " pp_expr e
  | Order_by keys ->
    Fmt.pf ppf "order by %a@ "
      Fmt.(
        list ~sep:comma (fun ppf (e, dir) ->
            pf ppf "%a %s" pp_expr e (match dir with `Asc -> "ascending" | `Desc -> "descending")))
      keys

and cmp_name = function
  | Eq -> "="
  | Neq -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

and arith_name = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "div"
  | Mod -> "mod"

and aggregate_name = function
  | Count -> "count"
  | Sum -> "sum"
  | Avg -> "avg"
  | Min -> "min"
  | Max -> "max"

let to_string e = Fmt.str "%a" pp_expr e
