(** Recursive-descent parser for the XQuery subset of {!Ast}; operates
    on the character stream so direct element constructors parse without
    lexer modes. *)

exception Syntax_error of string * int  (** message, byte offset *)

val parse : string -> Ast.expr
