(* Recursive-descent parser for the XQuery subset of {!Ast}. It works
   directly on the character stream so that direct element constructors
   (<item>{...}</item>) can be parsed without lexer mode switches. *)

exception Syntax_error of string * int

type state = { src : string; mutable pos : int }

let fail st msg = raise (Syntax_error (msg, st.pos))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st = st.pos <- st.pos + 1

let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

let is_name_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.' || c = ':'

let is_digit c = c >= '0' && c <= '9'

let rec skip_ws st =
  match peek st with
  | Some c when is_space c ->
    advance st;
    skip_ws st
  | Some '(' when peek2 st = Some ':' ->
    (* XQuery comment (: ... :), possibly nested *)
    advance st;
    advance st;
    let depth = ref 1 in
    while !depth > 0 do
      match peek st with
      | Some '(' when peek2 st = Some ':' ->
        advance st;
        advance st;
        incr depth
      | Some ':' when peek2 st = Some ')' ->
        advance st;
        advance st;
        decr depth
      | Some _ -> advance st
      | None -> fail st "unterminated comment"
    done;
    skip_ws st
  | Some _ | None -> ()

let looking_at st s =
  let n = String.length s in
  st.pos + n <= String.length st.src && String.sub st.src st.pos n = s

(* Does a keyword appear here (followed by a non-name char)? *)
let keyword_here st kw =
  looking_at st kw
  && (st.pos + String.length kw >= String.length st.src
     || not (is_name_char st.src.[st.pos + String.length kw]))

let eat_keyword st kw =
  skip_ws st;
  if keyword_here st kw then begin
    st.pos <- st.pos + String.length kw;
    true
  end
  else false

let expect_keyword st kw =
  if not (eat_keyword st kw) then fail st (Printf.sprintf "expected %S" kw)

let eat_char st c =
  skip_ws st;
  match peek st with
  | Some c' when c' = c ->
    advance st;
    true
  | Some _ | None -> false

let expect_char st c =
  if not (eat_char st c) then fail st (Printf.sprintf "expected '%c'" c)

let read_name st =
  skip_ws st;
  let start = st.pos in
  (match peek st with
  | Some c when is_name_start c -> advance st
  | Some c -> fail st (Printf.sprintf "expected name, found '%c'" c)
  | None -> fail st "expected name, found end of input");
  let rec go () =
    match peek st with
    | Some c when is_name_char c ->
      advance st;
      go ()
    | Some _ | None -> ()
  in
  go ();
  String.sub st.src start (st.pos - start)

let read_var st =
  skip_ws st;
  expect_char st '$';
  read_name st

let read_string_literal st =
  skip_ws st;
  let quote =
    match peek st with
    | Some ('"' as q) | Some ('\'' as q) ->
      advance st;
      q
    | Some _ | None -> fail st "expected string literal"
  in
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | Some c when c = quote ->
      advance st;
      (* doubled quote escapes itself *)
      if peek st = Some quote then begin
        advance st;
        Buffer.add_char buf quote;
        go ()
      end
      else Buffer.contents buf
    | Some c ->
      advance st;
      Buffer.add_char buf c;
      go ()
    | None -> fail st "unterminated string literal"
  in
  go ()

let read_number st =
  skip_ws st;
  let start = st.pos in
  let rec digits () =
    match peek st with
    | Some c when is_digit c ->
      advance st;
      digits ()
    | Some _ | None -> ()
  in
  digits ();
  if peek st = Some '.' && (match peek2 st with Some c -> is_digit c | None -> false)
  then begin
    advance st;
    digits ()
  end;
  if st.pos = start then fail st "expected number";
  float_of_string (String.sub st.src start (st.pos - start))

(* ------------------------------------------------------------------ *)
(* Grammar                                                             *)
(* ------------------------------------------------------------------ *)

let rec parse_expr st : Ast.expr =
  skip_ws st;
  if keyword_here st "for" || keyword_here st "let" then parse_flwor st
  else if keyword_here st "if" then parse_if st
  else if keyword_here st "some" then parse_quantified st `Some
  else if keyword_here st "every" then parse_quantified st `Every
  else parse_or st

and parse_flwor st : Ast.expr =
  let clauses = ref [] in
  let rec clause_loop () =
    skip_ws st;
    if eat_keyword st "for" then begin
      let rec bindings () =
        let v = read_var st in
        expect_keyword st "in";
        let e = parse_expr st in
        clauses := Ast.For (v, e) :: !clauses;
        if eat_char st ',' then bindings ()
      in
      bindings ();
      clause_loop ()
    end
    else if eat_keyword st "let" then begin
      let rec bindings () =
        let v = read_var st in
        skip_ws st;
        if looking_at st ":=" then st.pos <- st.pos + 2 else fail st "expected :=";
        let e = parse_expr st in
        clauses := Ast.Let (v, e) :: !clauses;
        if eat_char st ',' then bindings ()
      in
      bindings ();
      clause_loop ()
    end
    else if eat_keyword st "where" then begin
      let e = parse_expr st in
      clauses := Ast.Where e :: !clauses;
      clause_loop ()
    end
    else if eat_keyword st "order" then begin
      expect_keyword st "by";
      let rec keys acc =
        let e = parse_or st in
        let dir =
          if eat_keyword st "descending" then `Desc
          else begin
            ignore (eat_keyword st "ascending");
            `Asc
          end
        in
        if eat_char st ',' then keys ((e, dir) :: acc) else List.rev ((e, dir) :: acc)
      in
      clauses := Ast.Order_by (keys []) :: !clauses;
      clause_loop ()
    end
  in
  clause_loop ();
  expect_keyword st "return";
  let ret = parse_expr st in
  Ast.Flwor (List.rev !clauses, ret)

and parse_if st : Ast.expr =
  expect_keyword st "if";
  expect_char st '(';
  let c = parse_expr st in
  expect_char st ')';
  expect_keyword st "then";
  let t = parse_expr st in
  expect_keyword st "else";
  let e = parse_expr st in
  Ast.If (c, t, e)

and parse_quantified st which : Ast.expr =
  (match which with
  | `Some -> expect_keyword st "some"
  | `Every -> expect_keyword st "every");
  let v = read_var st in
  expect_keyword st "in";
  let e = parse_expr st in
  expect_keyword st "satisfies";
  let c = parse_expr st in
  match which with
  | `Some -> Ast.Some_satisfies (v, e, c)
  | `Every -> Ast.Every_satisfies (v, e, c)

and parse_or st : Ast.expr =
  let a = parse_and st in
  if eat_keyword st "or" then Ast.Or (a, parse_or st) else a

and parse_and st : Ast.expr =
  let a = parse_cmp st in
  if eat_keyword st "and" then Ast.And (a, parse_and st) else a

and parse_cmp st : Ast.expr =
  let a = parse_add st in
  skip_ws st;
  let op =
    if looking_at st "!=" then Some Ast.Neq
    else if looking_at st "<=" then Some Ast.Le
    else if looking_at st ">=" then Some Ast.Ge
    else if looking_at st "=" then Some Ast.Eq
    else if looking_at st "<" then Some Ast.Lt
    else if looking_at st ">" then Some Ast.Gt
    else if keyword_here st "eq" then Some Ast.Eq
    else if keyword_here st "ne" then Some Ast.Neq
    else if keyword_here st "lt" then Some Ast.Lt
    else if keyword_here st "le" then Some Ast.Le
    else if keyword_here st "gt" then Some Ast.Gt
    else if keyword_here st "ge" then Some Ast.Ge
    else None
  in
  match op with
  | None -> a
  | Some op ->
    (match op with
    | Ast.Neq | Ast.Le | Ast.Ge -> st.pos <- st.pos + 2
    | Ast.Eq when looking_at st "=" -> st.pos <- st.pos + 1
    | Ast.Lt when looking_at st "<" -> st.pos <- st.pos + 1
    | Ast.Gt when looking_at st ">" -> st.pos <- st.pos + 1
    | Ast.Eq | Ast.Lt | Ast.Gt -> st.pos <- st.pos + 2 (* word operators *));
    let b = parse_add st in
    Ast.Cmp (op, a, b)

and parse_add st : Ast.expr =
  let rec go a =
    skip_ws st;
    if eat_char st '+' then go (Ast.Arith (Ast.Add, a, parse_mul st))
    else if
      (* '-' must not swallow a name-like context, but after an operand a
         bare '-' is always subtraction in this grammar *)
      eat_char st '-'
    then go (Ast.Arith (Ast.Sub, a, parse_mul st))
    else a
  in
  go (parse_mul st)

and parse_mul st : Ast.expr =
  let rec go a =
    skip_ws st;
    if eat_char st '*' then go (Ast.Arith (Ast.Mul, a, parse_path st))
    else if eat_keyword st "div" then go (Ast.Arith (Ast.Div, a, parse_path st))
    else if eat_keyword st "mod" then go (Ast.Arith (Ast.Mod, a, parse_path st))
    else a
  in
  go (parse_path st)

and parse_path st : Ast.expr =
  let primary = parse_primary st in
  let steps = ref [] in
  let rec go () =
    skip_ws st;
    if looking_at st "//" then begin
      st.pos <- st.pos + 2;
      steps := parse_step st Ast.Descendant :: !steps;
      go ()
    end
    else if looking_at st "/" then begin
      advance st;
      steps := parse_step st Ast.Child :: !steps;
      go ()
    end
    else if looking_at st "[" then begin
      (* predicate attached to the last step (or to the primary) *)
      advance st;
      let p = parse_predicate st in
      expect_char st ']';
      (match !steps with
      | s :: rest -> steps := { s with Ast.predicates = s.Ast.predicates @ [ p ] } :: rest
      | [] ->
        (* predicate on primary: wrap as self-filter via a Flwor *)
        steps := [];
        fail st "predicate on non-path primary is not supported");
      go ()
    end
  in
  go ();
  match List.rev !steps with
  | [] -> primary
  | steps -> Ast.Path (primary, steps)

and parse_step st axis : Ast.step =
  skip_ws st;
  match peek st with
  | Some '@' ->
    advance st;
    let n = read_name st in
    Ast.step Ast.Attribute (Ast.Name n)
  | Some '*' ->
    advance st;
    Ast.step axis Ast.Any
  | Some _ ->
    let n = read_name st in
    skip_ws st;
    if String.equal n "text" && looking_at st "()" then begin
      st.pos <- st.pos + 2;
      Ast.step axis Ast.Text
    end
    else Ast.step axis (Ast.Name n)
  | None -> fail st "expected step"

and parse_predicate st : Ast.predicate =
  skip_ws st;
  if keyword_here st "last" then begin
    let save = st.pos in
    st.pos <- st.pos + 4;
    skip_ws st;
    if looking_at st "()" then begin
      st.pos <- st.pos + 2;
      skip_ws st;
      if peek st = Some ']' then Ast.Pos_last
      else begin
        st.pos <- save;
        Ast.Cond (parse_expr st)
      end
    end
    else begin
      st.pos <- save;
      Ast.Cond (parse_expr st)
    end
  end
  else begin
  (* Pure integer literal => positional predicate. *)
  let save = st.pos in
  match peek st with
  | Some c when is_digit c ->
    let v = read_number st in
    skip_ws st;
    if peek st = Some ']' && Float.is_integer v then Ast.Pos (int_of_float v)
    else begin
      st.pos <- save;
      Ast.Cond (parse_expr st)
    end
  | Some _ | None -> Ast.Cond (parse_expr st)
  end

and parse_primary st : Ast.expr =
  skip_ws st;
  match peek st with
  | Some '$' -> Ast.Var (read_var st)
  | Some '"' | Some '\'' -> Ast.Literal_string (read_string_literal st)
  | Some c when is_digit c -> Ast.Literal_number (read_number st)
  | Some '.' -> (
    match peek2 st with
    | Some c when is_digit c -> Ast.Literal_number (read_number st)
    | Some _ | None ->
      advance st;
      Ast.Context)
  | Some '@' ->
    (* context-relative attribute step, e.g. [@id = "person0"] *)
    advance st;
    let n = read_name st in
    Ast.Path (Ast.Context, [ Ast.step Ast.Attribute (Ast.Name n) ])
  | Some '(' ->
    advance st;
    let e = parse_expr st in
    skip_ws st;
    if eat_char st ',' then begin
      let rec more acc =
        let e = parse_expr st in
        if eat_char st ',' then more (e :: acc) else List.rev (e :: acc)
      in
      let rest = more [ e ] in
      expect_char st ')';
      Ast.Sequence rest
    end
    else begin
      expect_char st ')';
      e
    end
  | Some '<' -> parse_constructor st
  | Some c when is_name_start c -> parse_function_or_name st
  | Some c -> fail st (Printf.sprintf "unexpected character '%c'" c)
  | None -> fail st "unexpected end of input"

and parse_function_or_name st : Ast.expr =
  let name = read_name st in
  skip_ws st;
  if peek st = Some '(' then begin
    advance st;
    let args =
      if eat_char st ')' then []
      else begin
        let rec go acc =
          let e = parse_expr st in
          if eat_char st ',' then go (e :: acc)
          else begin
            expect_char st ')';
            List.rev (e :: acc)
          end
        in
        go []
      end
    in
    let arg1 () = match args with [ a ] -> a | _ -> fail st (name ^ " expects 1 argument") in
    let arg2 () =
      match args with [ a; b ] -> (a, b) | _ -> fail st (name ^ " expects 2 arguments")
    in
    match name with
    | "document" | "doc" -> (
      match args with
      | [ Ast.Literal_string s ] -> Ast.Doc s
      | _ -> fail st "document() expects a string literal")
    | "count" -> Ast.Aggregate (Ast.Count, arg1 ())
    | "sum" -> Ast.Aggregate (Ast.Sum, arg1 ())
    | "avg" -> Ast.Aggregate (Ast.Avg, arg1 ())
    | "min" -> Ast.Aggregate (Ast.Min, arg1 ())
    | "max" -> Ast.Aggregate (Ast.Max, arg1 ())
    | "contains" ->
      let (a, b) = arg2 () in
      Ast.Contains (a, b)
    | "starts-with" ->
      let (a, b) = arg2 () in
      Ast.Starts_with (a, b)
    | "ftcontains" -> (
      match arg2 () with
      | (a, Ast.Literal_string phrase) ->
        let words =
          String.split_on_char ' ' (String.lowercase_ascii phrase)
          |> List.filter (fun w -> w <> "")
        in
        Ast.Ftcontains (a, words)
      | _ -> fail st "ftcontains expects a string literal of search words")
    | "not" -> Ast.Not (arg1 ())
    | "empty" -> Ast.Empty (arg1 ())
    | "exists" -> Ast.Exists (arg1 ())
    | "distinct-values" -> Ast.Distinct_values (arg1 ())
    | "string" -> Ast.String_of (arg1 ())
    | "number" -> Ast.Number_of (arg1 ())
    | "name" -> Ast.Name_of (arg1 ())
    | "zero-or-one" | "exactly-one" | "data" -> arg1 ()
    | "text" when args = [] -> Ast.Path (Ast.Context, [ Ast.step Ast.Child Ast.Text ])
    | "position" when args = [] -> Ast.Var "__position"
    | _ -> fail st (Printf.sprintf "unknown function %s" name)
  end
  else if String.equal name "text" && looking_at st "()" then begin
    st.pos <- st.pos + 2;
    Ast.Path (Ast.Context, [ Ast.step Ast.Child Ast.Text ])
  end
  else
    (* A bare name is a context-relative child step — meaningful inside
       predicates, e.g. item[location = "United States"]. *)
    Ast.Path (Ast.Context, [ Ast.step Ast.Child (Ast.Name name) ])

(* <tag a="v" b="{e}">text{e}<nested/>...</tag> *)
and parse_constructor st : Ast.expr =
  expect_char st '<';
  let tag = read_name st in
  let attrs = ref [] in
  let rec attr_loop () =
    skip_ws st;
    match peek st with
    | Some c when is_name_start c ->
      let n = read_name st in
      skip_ws st;
      expect_char st '=';
      skip_ws st;
      (match peek st with
      | Some '{' ->
        advance st;
        let e = parse_expr st in
        expect_char st '}';
        attrs := (n, Ast.Attr_expr e) :: !attrs
      | Some (('"' | '\'') as q) when peek2 st = Some '{' ->
        (* quoted whole-value brace expression: parse the expression
           in place so nested string literals are handled correctly *)
        advance st;
        advance st;
        let e = parse_expr st in
        expect_char st '}';
        expect_char st q;
        attrs := (n, Ast.Attr_expr e) :: !attrs
      | Some '"' | Some '\'' ->
        let raw = read_string_literal st in
        (* whole-value brace expression: a="{$x}" *)
        let len = String.length raw in
        if len >= 2 && raw.[0] = '{' && raw.[len - 1] = '}' then begin
          let inner = { src = String.sub raw 1 (len - 2); pos = 0 } in
          let e = parse_expr inner in
          attrs := (n, Ast.Attr_expr e) :: !attrs
        end
        else attrs := (n, Ast.Attr_string raw) :: !attrs
      | Some _ | None -> fail st "expected attribute value");
      attr_loop ()
    | Some _ | None -> ()
  in
  attr_loop ();
  skip_ws st;
  if looking_at st "/>" then begin
    st.pos <- st.pos + 2;
    Ast.Element (tag, List.rev !attrs, [])
  end
  else begin
    expect_char st '>';
    let kids = ref [] in
    let text_buf = Buffer.create 16 in
    let flush_text () =
      let s = Buffer.contents text_buf in
      Buffer.clear text_buf;
      if String.trim s <> "" then kids := Ast.Literal_string s :: !kids
    in
    let rec content () =
      match peek st with
      | Some '{' ->
        flush_text ();
        advance st;
        let e = parse_expr st in
        expect_char st '}';
        kids := e :: !kids;
        content ()
      | Some '<' ->
        if peek2 st = Some '/' then begin
          flush_text ();
          st.pos <- st.pos + 2;
          let close = read_name st in
          if not (String.equal close tag) then
            fail st (Printf.sprintf "mismatched constructor: <%s> closed by </%s>" tag close);
          skip_ws st;
          expect_char st '>'
        end
        else begin
          flush_text ();
          kids := parse_constructor st :: !kids;
          content ()
        end
      | Some c ->
        advance st;
        Buffer.add_char text_buf c;
        content ()
      | None -> fail st "unterminated element constructor"
    in
    content ();
    Ast.Element (tag, List.rev !attrs, List.rev !kids)
  end

(** Parse a complete query. *)
let parse (src : string) : Ast.expr =
  let st = { src; pos = 0 } in
  let e = parse_expr st in
  skip_ws st;
  if st.pos <> String.length src then fail st "trailing input after query";
  e
