lib/xquery/ast.ml: Fmt List String
