lib/xquery/parser.ml: Ast Buffer Float List Printf String
