(** Structure tree (§2.2): one record per non-value node, holding tag
    code, (redundant) parent pointer, child entries and value pointers.
    Ids are pre-order ranks; (pre, post, level) realizes the paper's
    3-valued structural ids. Child entries interleave element/attribute
    node ids (>= 0) with text markers (< 0, indexing the node's value
    pointers) so documents reconstruct in exact order. *)

type t

val node_count : t -> int

val tag : t -> int -> int

val parent : t -> int -> int

val level : t -> int -> int

(** (container id, record index) pairs, in document (slot) order. *)
val value_pointers : t -> int -> (int * int) array

(** Raw child entries (node ids and text markers), document order. *)
val child_entries : t -> int -> int array

(** Child element/attribute node ids only. *)
val child_nodes : t -> int -> int list

val structural_id : t -> int -> Ids.Structural.t

(** Constant-time strict-ancestor test via pre/post ranks. *)
val is_ancestor : t -> ancestor:int -> descendant:int -> bool

val children_with_tag : t -> int -> int -> int list

(** Descendants of a node occupy the pre-id range (id, last_descendant]. *)
val last_descendant : t -> int -> int

val descendants : t -> int -> int list

(** Rewrite value pointers after containers were recompressed. *)
val remap_values : t -> (int -> int array option) -> unit

val set_value_container : t -> node:int -> slot:int -> container:int -> unit

(** Lookup through the sparse B+ page index (the honest on-storage
    access path). *)
val find : t -> int -> int option

(** {2 Document-order construction} *)

type builder

val builder : unit -> builder

val open_node : builder -> tag:int -> parent:int -> level:int -> int

val close_node : builder -> id:int -> unit

val next_id : builder -> int

val finish :
  builder -> rev_children:int list array -> rev_values:(int * int) list array -> t

val serialize : Buffer.t -> t -> unit

val deserialize : string -> int -> t * int

(** Size of the B+ access structure (for the §2.2 breakdown). *)
val index_bytes : t -> int
