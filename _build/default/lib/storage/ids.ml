(* Node identifiers.

   The evaluated XQueC prototype uses "simple unique IDs" (§5); the paper
   announces a move to 3-valued structural identifiers in the spirit of
   pre/post/level numbering [26,27,28]. Both are provided: simple ids are
   the pre-order ranks, and [Structural] adds the post rank and the level,
   enabling constant-time ancestor/descendant tests without joins. *)

type simple = int

module Structural = struct
  type t = { pre : int; post : int; level : int }

  let make ~pre ~post ~level = { pre; post; level }

  (** Is [a] a strict ancestor of [d]? *)
  let is_ancestor a d = a.pre < d.pre && a.post > d.post

  let is_descendant d a = is_ancestor a d

  (** Is [p] the parent of [c]? *)
  let is_parent p c = is_ancestor p c && p.level = c.level - 1

  (** Document order coincides with pre order. *)
  let compare_doc_order a b = compare a.pre b.pre

  let pp ppf t = Fmt.pf ppf "(%d,%d,%d)" t.pre t.post t.level
end
