(* Structure summary (§2.2): a tree of all distinct paths in the document.
   Each summary node accessible by path p stores the list of document
   nodes reachable by p (in document order); leaf paths that carry values
   point to the corresponding containers. This is the redundant access
   support structure that lets queries skip parsing the structure tree
   (§2.3 and Fig. 4). *)

type node = {
  tag : int;                       (* name-dictionary code; -1 at the root *)
  path : string;                   (* /site/people/person *)
  mutable kids : node list;        (* child summary nodes, by distinct tag *)
  mutable rev_ids : int list;      (* build-time accumulator *)
  mutable ids : int array;         (* document nodes reachable by this path *)
  mutable text_container : int option; (* container with immediate text values *)
}

type t = { root : node }

let make_node ~tag ~path =
  { tag; path; kids = []; rev_ids = []; ids = [||]; text_container = None }

let create () = { root = make_node ~tag:(-1) ~path:"" }

(** Find or create the child of [n] with the given tag code. *)
let child_or_create n ~tag ~name =
  match List.find_opt (fun k -> k.tag = tag) n.kids with
  | Some k -> k
  | None ->
    let k = make_node ~tag ~path:(n.path ^ "/" ^ name) in
    n.kids <- n.kids @ [ k ];
    k

let add_id n id = n.rev_ids <- id :: n.rev_ids

let rec seal n =
  n.ids <- Array.of_list (List.rev n.rev_ids);
  n.rev_ids <- [];
  List.iter seal n.kids

let seal_t t = seal t.root

let find_child n tag = List.find_opt (fun k -> k.tag = tag) n.kids

(** All summary nodes matching a sequence of steps from the root.
    A step selects children by tag code (or any tag), or descendants by
    tag code (or any tag). Attribute summary nodes (whose names start
    with '@' in the dictionary) are only reached by explicit tag codes. *)
type step = [ `Child of int | `Desc of int | `Child_any | `Desc_any ]

let rec descend_all n acc =
  (* all summary nodes in the subtree rooted at n, including n *)
  List.fold_left (fun acc k -> descend_all k acc) (n :: acc) n.kids

let dedup_nodes nodes =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun n ->
      if Hashtbl.mem seen n.path then false
      else begin
        Hashtbl.add seen n.path ();
        true
      end)
    nodes

(** Apply one step relative to [nodes]: matching children (or
    descendants) of each node. *)
let step_from ?(is_attr = fun (_ : int) -> false) (nodes : node list) (st : step) : node list =
  let apply nodes st =
    match st with
    | `Child tag -> List.filter_map (fun n -> find_child n tag) nodes
    | `Child_any ->
      List.concat_map (fun n -> List.filter (fun k -> not (is_attr k.tag)) n.kids) nodes
    | `Desc tag ->
      (* descendant::tag relative to each node *)
      let subtree_nodes =
        List.concat_map (fun n -> List.concat_map (fun k -> descend_all k []) n.kids) nodes
      in
      List.filter (fun n -> n.tag = tag) subtree_nodes
    | `Desc_any ->
      let subtree_nodes =
        List.concat_map (fun n -> List.concat_map (fun k -> descend_all k []) n.kids) nodes
      in
      List.filter (fun n -> not (is_attr n.tag)) subtree_nodes
  in
  dedup_nodes (apply nodes st)

(** All summary nodes matching steps from the (document) root. *)
let match_steps ?is_attr (t : t) (steps : step list) : node list =
  List.fold_left (fun nodes st -> step_from ?is_attr nodes st) [ t.root ] steps

(** Document-order ids reachable through any of the given summary nodes. *)
let merged_ids (nodes : node list) : int array =
  match nodes with
  | [] -> [||]
  | [ n ] -> n.ids
  | nodes ->
    let all = Array.concat (List.map (fun n -> n.ids) nodes) in
    Array.sort compare all;
    all

let fold (t : t) ~init ~f =
  let rec go acc n = List.fold_left go (f acc n) n.kids in
  go init t.root

let node_count t = fold t ~init:0 ~f:(fun acc _ -> acc + 1)

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)
(* ------------------------------------------------------------------ *)

let serialize buf (t : t) =
  let add_varint = Compress.Rle.add_varint in
  let rec go n =
    add_varint buf (n.tag + 1);
    add_varint buf (Array.length n.ids);
    (* ids are increasing: delta-encode *)
    let prev = ref 0 in
    Array.iter
      (fun id ->
        add_varint buf (id - !prev);
        prev := id)
      n.ids;
    (match n.text_container with
    | None -> add_varint buf 0
    | Some c -> add_varint buf (c + 1));
    add_varint buf (List.length n.kids);
    List.iter go n.kids
  in
  go t.root

let deserialize ~(dict : Name_dict.t) (s : string) (pos : int) : t * int =
  let read_varint = Compress.Rle.read_varint in
  let pos = ref pos in
  let rec go parent_path =
    let (tag1, p) = read_varint s !pos in
    let tag = tag1 - 1 in
    let (nids, p) = read_varint s p in
    pos := p;
    let prev = ref 0 in
    let ids =
      Array.init nids (fun _ ->
          let (d, p) = read_varint s !pos in
          pos := p;
          prev := !prev + d;
          !prev)
    in
    let (tc1, p) = read_varint s !pos in
    let (nkids, p) = read_varint s p in
    pos := p;
    let path =
      if tag = -1 then "" else parent_path ^ "/" ^ Name_dict.name dict tag
    in
    let n = make_node ~tag ~path in
    n.ids <- ids;
    n.text_container <- (if tc1 = 0 then None else Some (tc1 - 1));
    let kids = List.init nkids (fun _ -> go path) in
    n.kids <- kids;
    n
  in
  let root = go "" in
  ({ root }, !pos)
