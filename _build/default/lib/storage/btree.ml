(* B+ tree with integer keys — the access-support structure built over the
   node-record sequence (§2.2: "we construct and store a B+ search tree on
   top of the sequence of node records").

   Supports point lookup, in-order range folds, bulk loading from a sorted
   array, and incremental insertion. Page accounting ([page_count],
   [byte_size]) feeds the storage-occupancy experiment. *)

type 'v node =
  | Leaf of { mutable keys : int array; mutable vals : 'v array; mutable next : 'v node option }
  | Internal of { mutable keys : int array; mutable kids : 'v node array }

type 'v t = { mutable root : 'v node; order : int; mutable count : int }

let default_order = 64

let create ?(order = default_order) () =
  { root = Leaf { keys = [||]; vals = [||]; next = None }; order; count = 0 }

let length t = t.count

(* Position of the child to follow for [key] in an internal node: first
   separator strictly greater than key. *)
let child_index keys key =
  let n = Array.length keys in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if keys.(mid) <= key then lo := mid + 1 else hi := mid
  done;
  !lo

(* Index of [key] in a sorted array, or the insertion point. *)
let search_index keys key =
  let n = Array.length keys in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if keys.(mid) < key then lo := mid + 1 else hi := mid
  done;
  !lo

let find t key =
  let rec go node =
    match node with
    | Leaf l ->
      let i = search_index l.keys key in
      if i < Array.length l.keys && l.keys.(i) = key then Some l.vals.(i) else None
    | Internal n -> go n.kids.(child_index n.keys key)
  in
  go t.root

let mem t key = Option.is_some (find t key)

(** Greatest binding with key <= [key]. *)
let find_le t key =
  let rec go node best =
    match node with
    | Leaf l ->
      let i = search_index l.keys key in
      let i = if i < Array.length l.keys && l.keys.(i) = key then i else i - 1 in
      if i >= 0 then Some (l.keys.(i), l.vals.(i)) else best
    | Internal n ->
      let i = child_index n.keys key in
      (* everything in kids below i is < key; remember the best-so-far by
         descending and falling back on the left sibling subtree *)
      let best =
        if i > 0 then
          let rec rightmost = function
            | Leaf l ->
              let k = Array.length l.keys - 1 in
              Some (l.keys.(k), l.vals.(k))
            | Internal n -> rightmost n.kids.(Array.length n.kids - 1)
          in
          match rightmost n.kids.(i - 1) with Some _ as r -> r | None -> best
        else best
      in
      go n.kids.(i) best
  in
  go t.root None

let array_insert a i x =
  let n = Array.length a in
  Array.init (n + 1) (fun j -> if j < i then a.(j) else if j = i then x else a.(j - 1))

(* Insert; replaces the value on duplicate key. *)
let insert t key value =
  let order = t.order in
  (* Returns Some (separator, new right sibling) when the node split. *)
  let rec go node =
    match node with
    | Leaf l ->
      let i = search_index l.keys key in
      if i < Array.length l.keys && l.keys.(i) = key then begin
        l.vals.(i) <- value;
        None
      end
      else begin
        t.count <- t.count + 1;
        l.keys <- array_insert l.keys i key;
        l.vals <- array_insert l.vals i value;
        if Array.length l.keys <= order then None
        else begin
          let mid = Array.length l.keys / 2 in
          let right_keys = Array.sub l.keys mid (Array.length l.keys - mid) in
          let right_vals = Array.sub l.vals mid (Array.length l.vals - mid) in
          let right = Leaf { keys = right_keys; vals = right_vals; next = l.next } in
          l.keys <- Array.sub l.keys 0 mid;
          l.vals <- Array.sub l.vals 0 mid;
          l.next <- Some right;
          Some (right_keys.(0), right)
        end
      end
    | Internal n ->
      let i = child_index n.keys key in
      (match go n.kids.(i) with
      | None -> None
      | Some (sep, right) ->
        n.keys <- array_insert n.keys i sep;
        n.kids <- array_insert n.kids (i + 1) right;
        if Array.length n.kids <= order then None
        else begin
          let mid = Array.length n.keys / 2 in
          let sep_up = n.keys.(mid) in
          let right_keys = Array.sub n.keys (mid + 1) (Array.length n.keys - mid - 1) in
          let right_kids = Array.sub n.kids (mid + 1) (Array.length n.kids - mid - 1) in
          n.keys <- Array.sub n.keys 0 mid;
          n.kids <- Array.sub n.kids 0 (mid + 1);
          Some (sep_up, Internal { keys = right_keys; kids = right_kids })
        end)
  in
  match go t.root with
  | None -> ()
  | Some (sep, right) ->
    t.root <- Internal { keys = [| sep |]; kids = [| t.root; right |] }

(** Bulk load from key-sorted bindings (strictly increasing keys). *)
let of_sorted_array ?(order = default_order) (bindings : (int * 'v) array) : 'v t =
  let n = Array.length bindings in
  let per_leaf = max 2 (order / 2) in
  let leaves = ref [] in
  let i = ref 0 in
  while !i < n do
    let len = min per_leaf (n - !i) in
    let keys = Array.init len (fun j -> fst bindings.(!i + j)) in
    let vals = Array.init len (fun j -> snd bindings.(!i + j)) in
    leaves := Leaf { keys; vals; next = None } :: !leaves;
    i := !i + len
  done;
  let leaves = Array.of_list (List.rev !leaves) in
  (* Chain the leaves. *)
  for j = 0 to Array.length leaves - 2 do
    match leaves.(j), leaves.(j + 1) with
    | Leaf l, (Leaf _ as next) -> l.next <- Some next
    | _ -> assert false
  done;
  let first_key = function
    | Leaf l -> l.keys.(0)
    | Internal _ -> assert false
  in
  let rec build level =
    if Array.length level <= 1 then level
    else begin
      let per_node = max 2 (order / 2) in
      let groups = ref [] in
      let i = ref 0 in
      while !i < Array.length level do
        let len = min per_node (Array.length level - !i) in
        let kids = Array.sub level !i len in
        let keys = Array.init (len - 1) (fun j -> min_key kids.(j + 1)) in
        groups := Internal { keys; kids } :: !groups;
        i := !i + len
      done;
      build (Array.of_list (List.rev !groups))
    end
  and min_key node =
    match node with
    | Leaf _ -> first_key node
    | Internal n -> min_key n.kids.(0)
  in
  if n = 0 then create ~order ()
  else begin
    let roots = build leaves in
    { root = roots.(0); order; count = n }
  end

(** Fold over bindings with key in [lo, hi] in key order. *)
let fold_range t ~lo ~hi ~init ~f =
  let rec descend node =
    match node with
    | Leaf _ -> node
    | Internal n -> descend n.kids.(child_index n.keys lo)
  in
  let rec walk acc node =
    match node with
    | Leaf l ->
      let acc = ref acc in
      let stop = ref false in
      for i = 0 to Array.length l.keys - 1 do
        if not !stop then begin
          let k = l.keys.(i) in
          if k > hi then stop := true
          else if k >= lo then acc := f !acc k l.vals.(i)
        end
      done;
      if !stop then !acc
      else (match l.next with None -> !acc | Some next -> walk !acc next)
    | Internal _ -> assert false
  in
  walk init (descend t.root)

let iter_range t ~lo ~hi ~f =
  fold_range t ~lo ~hi ~init:() ~f:(fun () k v -> f k v)

let fold t ~init ~f = fold_range t ~lo:min_int ~hi:max_int ~init ~f

let to_list t = List.rev (fold t ~init:[] ~f:(fun acc k v -> (k, v) :: acc))

let page_count t =
  let rec go node =
    match node with
    | Leaf _ -> 1
    | Internal n -> Array.fold_left (fun acc k -> acc + go k) 1 n.kids
  in
  go t.root

let depth t =
  let rec go node =
    match node with Leaf _ -> 1 | Internal n -> 1 + go n.kids.(0)
  in
  go t.root

(** Approximate serialized size: keys at 4 bytes plus per-value payload. *)
let byte_size t ~value_bytes =
  let rec go node =
    match node with
    | Leaf l -> (4 * Array.length l.keys) + Array.fold_left (fun a v -> a + value_bytes v) 0 l.vals + 8
    | Internal n ->
      (4 * Array.length n.keys) + 8 + Array.fold_left (fun acc k -> acc + go k) 0 n.kids
  in
  go t.root

(* Structural invariants, used by the test suite. *)
let check_invariants t =
  let rec go node lo hi depth =
    match node with
    | Leaf l ->
      Array.iteri
        (fun i k ->
          if i > 0 && l.keys.(i - 1) >= k then failwith "leaf keys not increasing";
          (match lo with Some b when k < b -> failwith "leaf key below bound" | _ -> ());
          (match hi with Some b when k >= b -> failwith "leaf key above bound" | _ -> ()))
        l.keys;
      depth
    | Internal n ->
      if Array.length n.kids <> Array.length n.keys + 1 then failwith "fanout mismatch";
      Array.iteri
        (fun i k ->
          if i > 0 && n.keys.(i - 1) >= k then failwith "internal keys not increasing")
        n.keys;
      let depths =
        Array.to_list
          (Array.mapi
             (fun i kid ->
               let lo' = if i = 0 then lo else Some n.keys.(i - 1) in
               let hi' = if i = Array.length n.keys then hi else Some n.keys.(i) in
               go kid lo' hi' (depth + 1))
             n.kids)
      in
      (match depths with
      | [] -> failwith "empty internal node"
      | d :: rest ->
        if not (List.for_all (fun d' -> d' = d) rest) then failwith "unbalanced";
        d)
  in
  ignore (go t.root None None 1)
