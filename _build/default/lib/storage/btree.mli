(** B+ tree with integer keys — the access-support structure of §2.2,
    built over the node-record sequence. Supports point lookup, range
    folds, bulk loading and incremental insertion; page accounting feeds
    the storage-occupancy experiment. *)

type 'v t

val default_order : int

val create : ?order:int -> unit -> 'v t

val length : 'v t -> int

val find : 'v t -> int -> 'v option

val mem : 'v t -> int -> bool

(** Greatest binding with key <= the argument. *)
val find_le : 'v t -> int -> (int * 'v) option

(** Insert; replaces the value on duplicate key. *)
val insert : 'v t -> int -> 'v -> unit

(** Bulk load from strictly-increasing key-sorted bindings. *)
val of_sorted_array : ?order:int -> (int * 'v) array -> 'v t

(** Fold over bindings with key in [lo, hi], in key order. *)
val fold_range : 'v t -> lo:int -> hi:int -> init:'a -> f:('a -> int -> 'v -> 'a) -> 'a

val iter_range : 'v t -> lo:int -> hi:int -> f:(int -> 'v -> unit) -> unit

val fold : 'v t -> init:'a -> f:('a -> int -> 'v -> 'a) -> 'a

val to_list : 'v t -> (int * 'v) list

val page_count : 'v t -> int

val depth : 'v t -> int

(** Approximate serialized size given a per-value payload size. *)
val byte_size : 'v t -> value_bytes:('v -> int) -> int

(** Raises [Failure] when a structural invariant is violated (tests). *)
val check_invariants : 'v t -> unit
