(** Node-name dictionary (§2.2): element and attribute names encoded on
    ceil(log2 N) bits; attribute names carry a '@' prefix. *)

type t

val create : unit -> t

(** Idempotent: returns the existing code for a known name. *)
val intern : t -> string -> int

val code : t -> string -> int option

(** Raises [Invalid_argument] on an out-of-range code. *)
val name : t -> int -> string

val size : t -> int

(** Bits per encoded tag (the paper's example: 92 names on 7 bits). *)
val bits_per_code : t -> int

val serialized_size : t -> int

val to_list : t -> string list
