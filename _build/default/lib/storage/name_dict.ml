(* Node-name dictionary (§2.2): element and attribute names are encoded on
   ceil(log2 N_t) bits. Attribute names are distinguished with a '@'
   prefix, as usual in path expressions. *)

type t = {
  by_name : (string, int) Hashtbl.t;
  mutable names : string array;
  mutable count : int;
}

let create () = { by_name = Hashtbl.create 64; names = Array.make 16 ""; count = 0 }

let intern t name =
  match Hashtbl.find_opt t.by_name name with
  | Some code -> code
  | None ->
    let code = t.count in
    if code >= Array.length t.names then begin
      let bigger = Array.make (2 * Array.length t.names) "" in
      Array.blit t.names 0 bigger 0 code;
      t.names <- bigger
    end;
    t.names.(code) <- name;
    Hashtbl.add t.by_name name code;
    t.count <- t.count + 1;
    code

let code t name = Hashtbl.find_opt t.by_name name

let name t code =
  if code < 0 || code >= t.count then invalid_arg "Name_dict.name";
  t.names.(code)

let size t = t.count

(** Bits per encoded tag: ceil(log2 N_t) (the paper's XMark example: 92
    names fit on 7 bits). *)
let bits_per_code t = if t.count <= 1 then 1 else Compress.Bitio.width_for t.count

let serialized_size t =
  let total = ref 4 in
  for i = 0 to t.count - 1 do
    total := !total + 2 + String.length t.names.(i)
  done;
  !total

let to_list t = List.init t.count (fun i -> t.names.(i))
