(** Node identifiers. The evaluated prototype uses simple pre-order ids
    (§5); [Structural] adds the paper's announced 3-valued
    (pre, post, level) identifiers enabling constant-time
    ancestor/descendant tests. *)

type simple = int

module Structural : sig
  type t = { pre : int; post : int; level : int }

  val make : pre:int -> post:int -> level:int -> t

  val is_ancestor : t -> t -> bool

  val is_descendant : t -> t -> bool

  val is_parent : t -> t -> bool

  val compare_doc_order : t -> t -> int

  val pp : Format.formatter -> t -> unit
end
