lib/storage/name_dict.ml: Array Compress Hashtbl List String
