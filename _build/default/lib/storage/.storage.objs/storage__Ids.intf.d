lib/storage/ids.mli: Format
