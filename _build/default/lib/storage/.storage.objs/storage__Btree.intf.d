lib/storage/btree.mli:
