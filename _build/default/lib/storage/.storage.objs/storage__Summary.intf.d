lib/storage/summary.mli: Buffer Name_dict
