lib/storage/container.mli: Buffer Compress Hashtbl
