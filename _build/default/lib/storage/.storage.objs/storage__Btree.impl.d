lib/storage/btree.ml: Array List Option
