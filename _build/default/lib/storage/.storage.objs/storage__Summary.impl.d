lib/storage/summary.ml: Array Compress Hashtbl List Name_dict
