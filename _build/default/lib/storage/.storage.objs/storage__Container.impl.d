lib/storage/container.ml: Array Buffer Compress Hashtbl List String
