lib/storage/structure_tree.mli: Buffer Ids
