lib/storage/structure_tree.ml: Array Btree Compress Ids List
