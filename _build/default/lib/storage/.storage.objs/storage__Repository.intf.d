lib/storage/repository.mli: Compress Container Name_dict Structure_tree Summary
