lib/storage/repository.ml: Array Buffer Compress Container Hashtbl List Name_dict String Structure_tree Summary
