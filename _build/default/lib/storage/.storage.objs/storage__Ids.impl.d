lib/storage/ids.ml: Fmt
