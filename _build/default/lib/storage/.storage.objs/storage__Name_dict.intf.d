lib/storage/name_dict.mli:
