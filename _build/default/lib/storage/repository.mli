(** Compressed repository: the name dictionary, structure tree, value
    containers, shared source models and structure summary for one
    document, with byte-level serialization for the size experiments. *)

type t = {
  dict : Name_dict.t;
  tree : Structure_tree.t;
  containers : Container.t array;
  summary : Summary.t;
  source_name : string;
  original_size : int;
}

val container : t -> int -> Container.t

val find_container_by_path : t -> string -> Container.t option

(** Distinct source models (shared-model containers count once). *)
val models : t -> (int * Compress.Codec.model) list

type size_breakdown = {
  name_dict_bytes : int;
  tree_bytes : int;
  containers_bytes : int;
  models_bytes : int;
  summary_bytes : int;
  btree_bytes : int;
  total_bytes : int;
  essential_bytes : int;
      (** without access structures: values + models + dictionary +
          a forward-only structure tree *)
}

val size_breakdown : t -> size_breakdown

(** 1 - cs/os, as defined in the paper's §5. *)
val compression_factor : t -> float

val serialize : t -> string

val deserialize : string -> t
