(** Bit-level I/O shared by all codecs.

    Bits are written most-significant-first within each byte, so the
    byte-string comparison of two zero-padded bit streams coincides with
    the bit-sequence comparison — the property all order-preserving
    codecs in this library rely on. *)

module Writer : sig
  type t

  val create : ?size:int -> unit -> t

  val add_bit : t -> bool -> unit

  (** [add_bits w v width] writes the [width] low bits of [v], most
      significant first. *)
  val add_bits : t -> int -> int -> unit

  (** Number of bits written so far. *)
  val bit_length : t -> int

  (** Zero-pad to a byte boundary and return the bytes. *)
  val contents : t -> string
end

module Reader : sig
  type t

  exception Out_of_bits

  val of_string : string -> t

  val bits_remaining : t -> int

  val read_bit : t -> bool

  val read_bits : t -> int -> int
end

(** Number of bits needed to represent values in [0, n-1]; at least 1. *)
val width_for : int -> int
