(* Hu-Tucker optimal alphabetic (order-preserving) binary codes
   (Hu & Tucker 1971) — the order-preserving baseline ALM is compared
   against in the paper (§2.1, citing [19]).

   Alphabet: symbol 0 is the end-of-string marker (smallest, so that a
   proper prefix of another string compares below it), symbols 1..256 are
   the bytes in order. The combination phase is the classic O(n²·n) naive
   procedure — ample at alphabet size 257, and only run once per model. *)

let symbol_count = 257
let eos = 0
let sym_of_char c = Char.code c + 1

type model = {
  lengths : int array;
  codes : int array;
  max_len : int;
  (* decoding trie in a flat array: node i has children at trie.(2i),
     trie.(2i+1); negative entries are ~symbol leaves, 0 = absent. *)
  trie : int array;
}

exception Corrupt of string

(* Phase 1: combination. Returns the depth of each original leaf. *)
let combine (weights : int array) : int array =
  let n = Array.length weights in
  (* Working sequence: Some (weight, is_leaf, tree) at original positions. *)
  let module T = struct
    type tree = Leaf of int | Node of tree * tree
  end in
  let open T in
  let slots = Array.init n (fun i -> Some (weights.(i), true, Leaf i)) in
  let alive = ref n in
  while !alive > 1 do
    (* Find the minimal compatible pair: positions i < j, both alive, with
       no alive *leaf* strictly between them. *)
    let best = ref None in
    let i = ref 0 in
    while !i < n do
      (match slots.(!i) with
      | None -> ()
      | Some (wi, _, _) ->
        (* scan forward until blocked by a leaf *)
        let j = ref (!i + 1) in
        let blocked = ref false in
        while (not !blocked) && !j < n do
          (match slots.(!j) with
          | None -> ()
          | Some (wj, j_leaf, _) ->
            let sum = wi + wj in
            (match !best with
            | Some (bsum, _, _) when bsum <= sum -> ()
            | Some _ | None -> best := Some (sum, !i, !j));
            if j_leaf then blocked := true);
          incr j
        done);
      incr i
    done;
    match !best with
    | None -> assert false
    | Some (sum, bi, bj) ->
      let ti = match slots.(bi) with Some (_, _, t) -> t | None -> assert false in
      let tj = match slots.(bj) with Some (_, _, t) -> t | None -> assert false in
      slots.(bi) <- Some (sum, false, Node (ti, tj));
      slots.(bj) <- None;
      decr alive
  done;
  let root =
    let rec find i = match slots.(i) with Some (_, _, t) -> t | None -> find (i + 1) in
    find 0
  in
  let depths = Array.make n 0 in
  let rec walk d = function
    | Leaf i -> depths.(i) <- max 1 d
    | Node (a, b) ->
      walk (d + 1) a;
      walk (d + 1) b
  in
  (match root with Leaf i -> depths.(i) <- 1 | Node _ -> walk 0 root);
  depths

(* Phases 2-3: rebuild an alphabetic prefix code from the depth sequence. *)
let alphabetic_codes (lengths : int array) : int array =
  let n = Array.length lengths in
  let codes = Array.make n 0 in
  let prev_code = ref (-1) in
  let prev_len = ref 0 in
  for i = 0 to n - 1 do
    let l = lengths.(i) in
    let c =
      if !prev_code < 0 then 0
      else if l >= !prev_len then (!prev_code + 1) lsl (l - !prev_len)
      else begin
        let shift = !prev_len - l in
        (!prev_code + (1 lsl shift)) lsr shift
      end
    in
    codes.(i) <- c;
    prev_code := c;
    prev_len := l
  done;
  codes

let build_trie lengths codes =
  let max_nodes = 2 * Array.length lengths * (Array.fold_left max 1 lengths) + 16 in
  let trie = Array.make (2 * max_nodes) 0 in
  let next = ref 1 in
  Array.iteri
    (fun sym l ->
      if l > 0 then begin
        let node = ref 0 in
        for b = l - 1 downto 0 do
          let bit = (codes.(sym) lsr b) land 1 in
          let slot = (2 * !node) + bit in
          if b = 0 then trie.(slot) <- lnot sym
          else begin
            if trie.(slot) = 0 then begin
              trie.(slot) <- !next;
              incr next
            end;
            if trie.(slot) < 0 then raise (Corrupt "code is not prefix-free");
            node := trie.(slot)
          end
        done
      end)
    lengths;
  trie

let of_lengths (lengths : int array) : model =
  let codes = alphabetic_codes lengths in
  let max_len = Array.fold_left max 0 lengths in
  { lengths; codes; max_len; trie = build_trie lengths codes }

(** Train on container values (floor frequency 1 keeps the code total). *)
let train (values : string list) : model =
  let freqs = Array.make symbol_count 1 in
  freqs.(eos) <- max 1 (List.length values);
  List.iter
    (fun v -> String.iter (fun c -> let s = sym_of_char c in freqs.(s) <- freqs.(s) + 1) v)
    values;
  of_lengths (combine freqs)

let compress (m : model) (value : string) : string =
  let w = Bitio.Writer.create ~size:(String.length value) () in
  String.iter (fun c ->
      let s = sym_of_char c in
      Bitio.Writer.add_bits w m.codes.(s) m.lengths.(s))
    value;
  Bitio.Writer.add_bits w m.codes.(eos) m.lengths.(eos);
  Bitio.Writer.contents w

let decompress (m : model) (compressed : string) : string =
  let r = Bitio.Reader.of_string compressed in
  let buf = Buffer.create 16 in
  let rec symbol node =
    let bit = if Bitio.Reader.read_bit r then 1 else 0 in
    let slot = m.trie.((2 * node) + bit) in
    if slot < 0 then lnot slot
    else if slot = 0 then raise (Corrupt "invalid code")
    else symbol slot
  in
  let rec go () =
    let s = symbol 0 in
    if s <> eos then begin
      Buffer.add_char buf (Char.chr (s - 1));
      go ()
    end
  in
  go ();
  Buffer.contents buf

(** Alphabetic code + EOS-first + zero padding make the byte comparison of
    compressed values coincide with the plaintext comparison. *)
let compare_compressed (a : string) (b : string) = String.compare a b

let serialize_model (m : model) : string =
  String.init symbol_count (fun i -> Char.chr m.lengths.(i))

let deserialize_model (s : string) : model =
  if String.length s <> symbol_count then raise (Corrupt "bad model size");
  of_lengths (Array.init symbol_count (fun i -> Char.code s.[i]))

let model_size m = String.length (serialize_model m)
