(* LZSS (LZ77 family) with a 4 KiB window and hash-chain match finder —
   stands in for the gzip second pass of the XMill baseline. *)

let window_bits = 12
let window = 1 lsl window_bits
let min_match = 3
let max_match = min_match + 15 (* 4-bit length field *)

let compress (data : string) : string =
  let n = String.length data in
  let w = Bitio.Writer.create ~size:n () in
  (* Chained hash table over 3-byte prefixes. *)
  let hash_bits = 14 in
  let head = Array.make (1 lsl hash_bits) (-1) in
  let prev = Array.make (max n 1) (-1) in
  let hash i =
    (Char.code data.[i] lsl 10)
    lxor (Char.code data.[i + 1] lsl 5)
    lxor Char.code data.[i + 2]
    land ((1 lsl hash_bits) - 1)
  in
  let insert i =
    if i + min_match <= n then begin
      let h = hash i in
      prev.(i) <- head.(h);
      head.(h) <- i
    end
  in
  let find_match i =
    if i + min_match > n then None
    else begin
      let limit = max 0 (i - window) in
      let best_len = ref 0 and best_pos = ref (-1) in
      let cand = ref head.(hash i) in
      let tries = ref 32 in
      while !cand >= limit && !tries > 0 do
        let c = !cand in
        if c < i then begin
          let len = ref 0 in
          let max_here = min max_match (n - i) in
          while !len < max_here && data.[c + !len] = data.[i + !len] do
            incr len
          done;
          if !len > !best_len then begin
            best_len := !len;
            best_pos := c
          end
        end;
        cand := prev.(c);
        decr tries
      done;
      if !best_len >= min_match then Some (!best_pos, !best_len) else None
    end
  in
  let header = Buffer.create 8 in
  Rle.add_varint header n;
  let i = ref 0 in
  while !i < n do
    (match find_match !i with
    | Some (pos, len) ->
      Bitio.Writer.add_bit w false;
      Bitio.Writer.add_bits w (!i - pos - 1) window_bits;
      Bitio.Writer.add_bits w (len - min_match) 4;
      for j = !i to !i + len - 1 do
        insert j
      done;
      i := !i + len
    | None ->
      Bitio.Writer.add_bit w true;
      Bitio.Writer.add_bits w (Char.code data.[!i]) 8;
      insert !i;
      incr i)
  done;
  Buffer.contents header ^ Bitio.Writer.contents w

let decompress (data : string) : string =
  let (n, pos) = Rle.read_varint data 0 in
  let r = Bitio.Reader.of_string (String.sub data pos (String.length data - pos)) in
  let out = Buffer.create n in
  while Buffer.length out < n do
    if Bitio.Reader.read_bit r then
      Buffer.add_char out (Char.chr (Bitio.Reader.read_bits r 8))
    else begin
      let dist = Bitio.Reader.read_bits r window_bits + 1 in
      let len = Bitio.Reader.read_bits r 4 + min_match in
      let start = Buffer.length out - dist in
      for j = 0 to len - 1 do
        Buffer.add_char out (Buffer.nth out (start + j))
      done
    end
  done;
  Buffer.contents out
