(** Order-preserving packing for numeric containers (<type, pe>
    containers with an elementary numeric type, paper §1.1).

    Values are validated at training time (canonical integers, or
    fixed-point decimals with a uniform number of fraction digits) and
    packed as variable-length big-endian integers whose byte comparison
    coincides with numeric comparison. Round-trips the exact source
    text. *)

type variant = Int | Decimal of int

type model = { variant : variant }

exception Unsupported of string

exception Corrupt of string

(** Raises {!Unsupported} when the values are not uniformly numeric. *)
val train : string list -> model

val compress : model -> string -> string

val decompress : model -> string -> string

val compare_compressed : string -> string -> int

(** Packed bound for comparing stored values against an arbitrary float
    constant: [`Ceil] gives the smallest representable value >= the
    constant, [`Floor] the largest <= it. *)
val pack_bound : model -> dir:[ `Ceil | `Floor ] -> float -> string

(** Packed code equal to the constant, when exactly representable. *)
val pack_exact : model -> float -> string option

(** Numeric value of a packed code. *)
val to_float : model -> string -> float

val serialize_model : model -> string

val deserialize_model : string -> model

val model_size : model -> int
