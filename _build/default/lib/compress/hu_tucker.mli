(** Hu-Tucker optimal alphabetic (order-preserving) binary codes
    (Hu & Tucker 1971) — the order-preserving baseline ALM was compared
    against in the paper (§2.1). *)

type model

exception Corrupt of string

val symbol_count : int

(** Phase 1 of the algorithm: the combination procedure; returns the
    depth of each leaf in the optimal alphabetic tree. *)
val combine : int array -> int array

(** Rebuild an alphabetic prefix code from a valid depth sequence. *)
val alphabetic_codes : int array -> int array

val of_lengths : int array -> model

val train : string list -> model

val compress : model -> string -> string

val decompress : model -> string -> string

(** Order-preserving: compare compressed values directly. *)
val compare_compressed : string -> string -> int

val serialize_model : model -> string

val deserialize_model : string -> model

val model_size : model -> int
