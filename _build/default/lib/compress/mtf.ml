(* Move-to-front transform. *)

let encode (s : string) : string =
  let table = Array.init 256 (fun i -> i) in
  String.map
    (fun c ->
      let b = Char.code c in
      let rec find i = if table.(i) = b then i else find (i + 1) in
      let pos = find 0 in
      for i = pos downto 1 do
        table.(i) <- table.(i - 1)
      done;
      table.(0) <- b;
      Char.chr pos)
    s

let decode (s : string) : string =
  let table = Array.init 256 (fun i -> i) in
  String.map
    (fun c ->
      let pos = Char.code c in
      let b = table.(pos) in
      for i = pos downto 1 do
        table.(i) <- table.(i - 1)
      done;
      table.(0) <- b;
      Char.chr b)
    s
