(** bzip2-like block compressor: BWT + MTF + zero-RLE + Huffman — the
    "generic compression algorithm (e.g. bzip)" of the paper's §3.3 and
    the per-container back end of the XMill baseline. Self-framing;
    multi-block above 256 KiB; tiny inputs skip the Huffman stage. *)

exception Corrupt of string

val block_size : int

val compress : string -> string

val decompress : string -> string
