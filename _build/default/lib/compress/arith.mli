(** Static arithmetic coding (integer Witten-Neal-Cleary) — the third
    order-preserving candidate of the paper's §2.1.

    The cumulative-frequency table lists symbols in alphabetical order
    (end-of-string first), so the code maps strings to disjoint
    sub-intervals of [0,1) in lexicographic order: byte comparison of
    zero-padded code strings coincides with plaintext comparison. *)

type model

exception Corrupt of string

val symbol_count : int

val of_freqs : int array -> model

val train : string list -> model

val compress : model -> string -> string

val decompress : model -> string -> string

(** Order-preserving: compare compressed values directly. *)
val compare_compressed : string -> string -> int

val serialize_model : model -> string

val deserialize_model : string -> model

val model_size : model -> int
