(* Classical Huffman coding (Huffman 1952) over bytes, with an explicit
   end-of-string symbol so that individually compressed values are
   self-delimiting.

   Codes are made canonical, which lets the source model be serialized as
   a bare array of code lengths. With a shared source model:
   - equality of plaintexts coincides with equality of the compressed byte
     strings ([eq] holds in the compressed domain);
   - the compressed bits of a plaintext prefix are a bit-prefix of the
     compressed value ([wild], i.e. prefix-matching, holds);
   - lexicographic order is NOT preserved ([ineq] does not hold). *)

let symbol_count = 257 (* 256 bytes + end-of-string *)
let eos = 256

type model = {
  lengths : int array; (* code length per symbol; 0 = absent *)
  codes : int array;   (* canonical code per symbol *)
  (* Decoding tables for canonical codes, indexed by code length. *)
  first_code : int array;
  first_index : int array;
  symbols : int array; (* symbols sorted by (length, symbol) *)
  max_len : int;
}

exception Corrupt of string

(* ------------------------------------------------------------------ *)
(* Model construction                                                  *)
(* ------------------------------------------------------------------ *)

(* Build code lengths with the classic two-queue method over symbols sorted
   by frequency; a binary heap is unnecessary at alphabet size 257. *)
let code_lengths (freqs : int array) : int array =
  let present =
    Array.to_list (Array.mapi (fun s f -> (s, f)) freqs)
    |> List.filter (fun (_, f) -> f > 0)
  in
  match present with
  | [] -> invalid_arg "Huffman.code_lengths: empty frequency table"
  | [ (s, _) ] ->
    let lens = Array.make symbol_count 0 in
    lens.(s) <- 1;
    lens
  | _ ->
    (* Tree nodes: leaves carry a symbol, internal nodes two children. *)
    let sorted = List.sort (fun (_, f) (_, f') -> compare f f') present in
    let leaves = Queue.create () in
    List.iter (fun (s, f) -> Queue.add (f, `Leaf s) leaves) sorted;
    let merged = Queue.create () in
    let take_min () =
      (* Pop the smaller head of the two queues. *)
      match Queue.is_empty leaves, Queue.is_empty merged with
      | true, true -> assert false
      | false, true -> Queue.pop leaves
      | true, false -> Queue.pop merged
      | false, false ->
        let (fl, _) = Queue.peek leaves and (fm, _) = Queue.peek merged in
        if fl <= fm then Queue.pop leaves else Queue.pop merged
    in
    let remaining () = Queue.length leaves + Queue.length merged in
    while remaining () > 1 do
      let (f1, n1) = take_min () in
      let (f2, n2) = take_min () in
      Queue.add (f1 + f2, `Node (n1, n2)) merged
    done;
    let (_, root) = take_min () in
    let lens = Array.make symbol_count 0 in
    let rec assign depth node =
      match node with
      | `Leaf s -> lens.(s) <- max 1 depth
      | `Node (a, b) ->
        assign (depth + 1) a;
        assign (depth + 1) b
    in
    assign 0 root;
    lens

(* Turn code lengths into canonical codes and decoding tables. *)
let of_lengths (lengths : int array) : model =
  if Array.length lengths <> symbol_count then
    invalid_arg "Huffman.of_lengths: bad array size";
  let syms =
    Array.to_list (Array.mapi (fun s l -> (s, l)) lengths)
    |> List.filter (fun (_, l) -> l > 0)
    |> List.sort (fun (s, l) (s', l') ->
           if l <> l' then compare l l' else compare s s')
  in
  let max_len = List.fold_left (fun m (_, l) -> max m l) 0 syms in
  let codes = Array.make symbol_count 0 in
  let first_code = Array.make (max_len + 2) 0 in
  let first_index = Array.make (max_len + 2) 0 in
  let symbols = Array.of_list (List.map fst syms) in
  (* Canonical assignment: shorter codes first, numerically increasing. *)
  let code = ref 0 in
  let idx = ref 0 in
  let arr = Array.of_list syms in
  for l = 1 to max_len do
    first_code.(l) <- !code;
    first_index.(l) <- !idx;
    Array.iter (fun (s, l') -> if l' = l then begin
        codes.(s) <- !code;
        incr code;
        incr idx
      end) arr;
    code := !code lsl 1
  done;
  { lengths; codes; first_code; first_index; symbols; max_len }

(** Train a model on a list of strings. Every byte value is given a floor
    frequency of 1 so the code stays total (values unseen at training time
    can still be compressed). *)
let train (values : string list) : model =
  let freqs = Array.make symbol_count 1 in
  freqs.(eos) <- max 1 (List.length values);
  List.iter (fun v -> String.iter (fun c -> let i = Char.code c in freqs.(i) <- freqs.(i) + 1) v) values;
  of_lengths (code_lengths freqs)

(* ------------------------------------------------------------------ *)
(* Model serialization (the "source model" whose size the cost model
   accounts for)                                                       *)
(* ------------------------------------------------------------------ *)

let serialize_model (m : model) : string =
  let buf = Buffer.create symbol_count in
  Array.iter (fun l ->
      if l > 255 then raise (Corrupt "code length overflow");
      Buffer.add_char buf (Char.chr l))
    m.lengths;
  Buffer.contents buf

let deserialize_model (s : string) : model =
  if String.length s <> symbol_count then raise (Corrupt "bad model size");
  of_lengths (Array.init symbol_count (fun i -> Char.code s.[i]))

let model_size m = String.length (serialize_model m)

(* ------------------------------------------------------------------ *)
(* Encoding / decoding                                                 *)
(* ------------------------------------------------------------------ *)

let add_symbol m w s =
  let l = m.lengths.(s) in
  if l = 0 then raise (Corrupt "symbol absent from model");
  Bitio.Writer.add_bits w m.codes.(s) l

(** Compress a single value; the result is zero-padded to a byte boundary
    and terminated by the end-of-string symbol. *)
let compress (m : model) (value : string) : string =
  let w = Bitio.Writer.create ~size:(String.length value) () in
  String.iter (fun c -> add_symbol m w (Char.code c)) value;
  add_symbol m w eos;
  Bitio.Writer.contents w

let read_symbol m r =
  let rec go len code =
    if len > m.max_len then raise (Corrupt "invalid code")
    else begin
      let code = (code lsl 1) lor (if Bitio.Reader.read_bit r then 1 else 0) in
      let len = len + 1 in
      let count =
        (if len < m.max_len then m.first_index.(len + 1) else Array.length m.symbols)
        - m.first_index.(len)
      in
      if count > 0 && code - m.first_code.(len) < count && code >= m.first_code.(len)
      then m.symbols.(m.first_index.(len) + code - m.first_code.(len))
      else go len code
    end
  in
  go 0 0

let decompress (m : model) (compressed : string) : string =
  let r = Bitio.Reader.of_string compressed in
  let buf = Buffer.create 16 in
  let rec go () =
    let s = read_symbol m r in
    if s <> eos then begin
      Buffer.add_char buf (Char.chr s);
      go ()
    end
  in
  go ();
  Buffer.contents buf

(* Raw-stream mode: encode a byte sequence of externally known length,
   without the end-of-string symbol (used by the bzip-like pipeline). *)

let train_raw (data : string) : model =
  let freqs = Array.make symbol_count 0 in
  String.iter (fun c -> freqs.(Char.code c) <- freqs.(Char.code c) + 1) data;
  if String.length data = 0 then freqs.(0) <- 1;
  of_lengths (code_lengths freqs)

let compress_raw (m : model) (data : string) : string =
  let w = Bitio.Writer.create ~size:(String.length data) () in
  String.iter (fun c -> add_symbol m w (Char.code c)) data;
  Bitio.Writer.contents w

let decompress_raw (m : model) ~(count : int) (compressed : string) : string =
  let r = Bitio.Reader.of_string compressed in
  String.init count (fun _ -> Char.chr (read_symbol m r))

(* ------------------------------------------------------------------ *)
(* Compressed-domain operations                                        *)
(* ------------------------------------------------------------------ *)

(** Equality in the compressed domain (valid when both sides were
    compressed with the same model). *)
let equal_compressed (a : string) (b : string) = String.equal a b

(** Bits of a plaintext prefix, not EOS-terminated: used for wildcard
    (prefix) matching in the compressed domain. *)
let compress_prefix (m : model) (prefix : string) : string * int =
  let w = Bitio.Writer.create ~size:(String.length prefix) () in
  String.iter (fun c -> add_symbol m w (Char.code c)) prefix;
  (Bitio.Writer.contents w, Bitio.Writer.bit_length w)

(** Does [compressed] start with the given compressed prefix bits? *)
let matches_prefix ~(prefix_bits : string * int) (compressed : string) : bool =
  let (pbytes, pbits) = prefix_bits in
  let full = pbits / 8 in
  let rem = pbits mod 8 in
  String.length compressed * 8 >= pbits
  && String.sub compressed 0 full = String.sub pbytes 0 full
  && (rem = 0
      ||
      let mask = 0xff lsl (8 - rem) land 0xff in
      Char.code compressed.[full] land mask = Char.code pbytes.[full] land mask)
