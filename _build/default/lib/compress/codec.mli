(** Uniform codec layer: every algorithm is described by the paper's
    §3.2 tuple <d_c, c_s(F), c_a(F), eq, ineq, wild> and exposes
    train / compress / decompress over a shared source model. *)

type algorithm =
  | Huffman_alg
  | Alm_alg
  | Arith_alg
  | Hu_tucker_alg
  | Bzip_alg
  | Numeric_alg

val all_algorithms : algorithm list

val algorithm_name : algorithm -> string

val algorithm_of_name : string -> algorithm

(** Which predicate classes evaluate in the compressed domain. *)
type properties = { eq : bool; ineq : bool; wild : bool }

val properties : algorithm -> properties

(** d_c: relative cost of decompressing one container record (ALM is the
    cheapest dictionary decode; bzip pays the full inverse pipeline). *)
val decompression_cost : algorithm -> float

type model =
  | M_huffman of Huffman.model
  | M_alm of Alm.model
  | M_arith of Arith.model
  | M_hu_tucker of Hu_tucker.model
  | M_bzip
  | M_numeric of Ipack.model

exception Unsupported of string

val algorithm_of_model : model -> algorithm

(** Train a source model on container values; raises {!Unsupported}
    when the algorithm cannot represent them. *)
val train : algorithm -> string list -> model

val compress : model -> string -> string

val decompress : model -> string -> string

val model_size : model -> int

(** Valid whenever the algorithm's [eq] holds and both sides share the
    model. *)
val equal_compressed : model -> string -> string -> bool

(** Valid only when the algorithm's [ineq] property holds. *)
val compare_compressed : model -> string -> string -> int

val supports : algorithm -> [ `Eq | `Ineq | `Wild ] -> bool
