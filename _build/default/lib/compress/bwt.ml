(* Burrows-Wheeler transform over cyclic rotations, using prefix-doubling
   rank sort (O(n log² n)) so adversarial inputs (long runs) stay fast. *)

type t = { data : string; primary : int }

let transform (s : string) : t =
  let n = String.length s in
  if n = 0 then { data = ""; primary = 0 }
  else begin
    let sa = Array.init n (fun i -> i) in
    let rank = Array.init n (fun i -> Char.code s.[i]) in
    let tmp = Array.make n 0 in
    let k = ref 1 in
    let continue = ref true in
    while !continue && !k < n do
      let key i = (rank.(i), rank.((i + !k) mod n)) in
      Array.sort (fun a b -> compare (key a) (key b)) sa;
      tmp.(sa.(0)) <- 0;
      for i = 1 to n - 1 do
        tmp.(sa.(i)) <-
          (tmp.(sa.(i - 1)) + if key sa.(i) = key sa.(i - 1) then 0 else 1)
      done;
      Array.blit tmp 0 rank 0 n;
      if rank.(sa.(n - 1)) = n - 1 then continue := false;
      k := !k * 2
    done;
    let primary = ref 0 in
    let out =
      String.init n (fun i ->
          let rot = sa.(i) in
          if rot = 0 then primary := i;
          s.[(rot + n - 1) mod n])
    in
    { data = out; primary = !primary }
  end

let inverse (t : t) : string =
  let n = String.length t.data in
  if n = 0 then ""
  else begin
    (* LF mapping via counting sort of the last column. *)
    let counts = Array.make 256 0 in
    String.iter (fun c -> counts.(Char.code c) <- counts.(Char.code c) + 1) t.data;
    let starts = Array.make 256 0 in
    let acc = ref 0 in
    for c = 0 to 255 do
      starts.(c) <- !acc;
      acc := !acc + counts.(c)
    done;
    let lf = Array.make n 0 in
    let seen = Array.make 256 0 in
    for i = 0 to n - 1 do
      let c = Char.code t.data.[i] in
      lf.(i) <- starts.(c) + seen.(c);
      seen.(c) <- seen.(c) + 1
    done;
    let out = Bytes.create n in
    let row = ref t.primary in
    for i = n - 1 downto 0 do
      Bytes.set out i t.data.[!row];
      row := lf.(!row)
    done;
    Bytes.to_string out
  end
