(** Move-to-front transform. *)

val encode : string -> string

val decode : string -> string
