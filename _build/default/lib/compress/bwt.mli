(** Burrows-Wheeler transform over cyclic rotations (prefix-doubling
    sort, O(n log^2 n)). *)

type t = { data : string; primary : int }

val transform : string -> t

val inverse : t -> string
