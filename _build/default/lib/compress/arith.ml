(* Static arithmetic coding (Witten-Neal-Cleary style integer coder) —
   the third order-preserving candidate of §2.1.

   The cumulative-frequency table lists symbols in alphabetical order with
   the end-of-string symbol first, so the code maps strings to disjoint
   sub-intervals of [0,1) in lexicographic order: byte comparison of
   zero-padded code strings coincides with plaintext comparison. *)

let symbol_count = 257
let eos = 0
let sym_of_char c = Char.code c + 1

type model = {
  cum : int array; (* cum.(s) .. cum.(s+1): symbol s's slice; length 258 *)
  total : int;
}

exception Corrupt of string

let precision = 32
let top = 1 lsl precision
let half = top / 2
let quarter = top / 4
let three_quarters = 3 * quarter
let max_total = 1 lsl 16

let of_freqs (freqs : int array) : model =
  if Array.length freqs <> symbol_count then invalid_arg "Arith.of_freqs";
  (* Scale so the total stays below [max_total] while every symbol keeps a
     nonzero slice (the code must stay total). *)
  let sum = Array.fold_left ( + ) 0 freqs in
  let scale f =
    if sum <= max_total - symbol_count then max 1 f
    else max 1 (f * (max_total - symbol_count) / sum)
  in
  let cum = Array.make (symbol_count + 1) 0 in
  for s = 0 to symbol_count - 1 do
    cum.(s + 1) <- cum.(s) + scale freqs.(s)
  done;
  { cum; total = cum.(symbol_count) }

let train (values : string list) : model =
  let freqs = Array.make symbol_count 1 in
  freqs.(eos) <- max 1 (List.length values);
  List.iter
    (fun v ->
      String.iter (fun c -> let s = sym_of_char c in freqs.(s) <- freqs.(s) + 1) v)
    values;
  of_freqs freqs

let compress (m : model) (value : string) : string =
  let w = Bitio.Writer.create ~size:(String.length value / 2) () in
  let low = ref 0 and high = ref (top - 1) and pending = ref 0 in
  let emit bit =
    Bitio.Writer.add_bit w bit;
    for _ = 1 to !pending do
      Bitio.Writer.add_bit w (not bit)
    done;
    pending := 0
  in
  let encode_symbol s =
    let range = !high - !low + 1 in
    high := !low + (range * m.cum.(s + 1) / m.total) - 1;
    low := !low + (range * m.cum.(s) / m.total);
    let continue = ref true in
    while !continue do
      if !high < half then begin
        emit false;
        low := !low * 2;
        high := (!high * 2) + 1
      end
      else if !low >= half then begin
        emit true;
        low := (!low - half) * 2;
        high := ((!high - half) * 2) + 1
      end
      else if !low >= quarter && !high < three_quarters then begin
        incr pending;
        low := (!low - quarter) * 2;
        high := ((!high - quarter) * 2) + 1
      end
      else continue := false
    done
  in
  String.iter (fun c -> encode_symbol (sym_of_char c)) value;
  encode_symbol eos;
  (* Termination: two more bits pin the value inside the final interval. *)
  incr pending;
  if !low < quarter then emit false else emit true;
  Bitio.Writer.contents w

let decompress (m : model) (compressed : string) : string =
  let r = Bitio.Reader.of_string compressed in
  let next_bit () =
    if Bitio.Reader.bits_remaining r > 0 then Bitio.Reader.read_bit r else false
  in
  let value = ref 0 in
  for _ = 1 to precision do
    value := (!value * 2) lor (if next_bit () then 1 else 0)
  done;
  let low = ref 0 and high = ref (top - 1) in
  let buf = Buffer.create 16 in
  let rec decode () =
    let range = !high - !low + 1 in
    let scaled = (((!value - !low + 1) * m.total) - 1) / range in
    (* Binary search for s with cum.(s) <= scaled < cum.(s+1). *)
    let s =
      let lo = ref 0 and hi = ref (symbol_count - 1) in
      while !lo < !hi do
        let mid = (!lo + !hi + 1) / 2 in
        if m.cum.(mid) <= scaled then lo := mid else hi := mid - 1
      done;
      !lo
    in
    high := !low + (range * m.cum.(s + 1) / m.total) - 1;
    low := !low + (range * m.cum.(s) / m.total);
    let continue = ref true in
    while !continue do
      if !high < half then begin
        low := !low * 2;
        high := (!high * 2) + 1;
        value := (!value * 2) lor (if next_bit () then 1 else 0)
      end
      else if !low >= half then begin
        low := (!low - half) * 2;
        high := ((!high - half) * 2) + 1;
        value := ((!value - half) * 2) lor (if next_bit () then 1 else 0)
      end
      else if !low >= quarter && !high < three_quarters then begin
        low := (!low - quarter) * 2;
        high := ((!high - quarter) * 2) + 1;
        value := ((!value - quarter) * 2) lor (if next_bit () then 1 else 0)
      end
      else continue := false
    done;
    if s <> eos then begin
      Buffer.add_char buf (Char.chr (s - 1));
      decode ()
    end
  in
  decode ();
  Buffer.contents buf

(** Order-preserving: compare compressed values directly. *)
let compare_compressed (a : string) (b : string) = String.compare a b

let serialize_model (m : model) : string =
  let buf = Buffer.create (2 * symbol_count) in
  for s = 0 to symbol_count - 1 do
    Buffer.add_uint16_be buf (m.cum.(s + 1) - m.cum.(s))
  done;
  Buffer.contents buf

let deserialize_model (s : string) : model =
  if String.length s <> 2 * symbol_count then raise (Corrupt "bad model size");
  let freqs =
    Array.init symbol_count (fun i ->
        (Char.code s.[2 * i] lsl 8) lor Char.code s.[(2 * i) + 1])
  in
  (* Frequencies are already scaled; rebuild the cumulative table as-is. *)
  let cum = Array.make (symbol_count + 1) 0 in
  Array.iteri (fun i f -> cum.(i + 1) <- cum.(i) + f) freqs;
  { cum; total = cum.(symbol_count) }

let model_size m = String.length (serialize_model m)
