(* bzip2-like block compressor: BWT + MTF + zero-RLE + Huffman.
   This is the "generic compression algorithm (e.g. bzip)" of §3.3 (the
   blind initial assignment of the greedy search) and the per-container
   back-end of the XMill baseline.

   Frame layout (per block):
     varint block plaintext length
     varint BWT primary index
     varint RLE-stream length
     u8     mode (0 = huffman, 1 = stored)
     [mode 0] 257-byte Huffman model, varint code byte count, code bytes
     [mode 1] RLE bytes verbatim
   A leading varint gives the total plaintext length; blocks follow until
   it is covered. Tiny inputs skip the Huffman stage automatically, so the
   codec degrades gracefully when (mis)used per-value. *)

let block_size = 1 lsl 18

exception Corrupt of string

let add_varint = Rle.add_varint
let read_varint = Rle.read_varint

let compress_block buf (block : string) =
  let bwt = Bwt.transform block in
  let rle = Rle.encode (Mtf.encode bwt.Bwt.data) in
  add_varint buf (String.length block);
  add_varint buf bwt.Bwt.primary;
  add_varint buf (String.length rle);
  let model = Huffman.train_raw rle in
  let coded = Huffman.compress_raw model rle in
  let huffman_cost = Huffman.model_size model + String.length coded in
  if huffman_cost < String.length rle then begin
    Buffer.add_char buf '\000';
    Buffer.add_string buf (Huffman.serialize_model model);
    add_varint buf (String.length coded);
    Buffer.add_string buf coded
  end
  else begin
    Buffer.add_char buf '\001';
    Buffer.add_string buf rle
  end

let compress (data : string) : string =
  let buf = Buffer.create (String.length data / 2) in
  add_varint buf (String.length data);
  let n = String.length data in
  let pos = ref 0 in
  while !pos < n do
    let len = min block_size (n - !pos) in
    compress_block buf (String.sub data !pos len);
    pos := !pos + len
  done;
  Buffer.contents buf

let decompress (data : string) : string =
  let (total, pos) = read_varint data 0 in
  let out = Buffer.create total in
  let pos = ref pos in
  while Buffer.length out < total do
    let (block_len, p) = read_varint data !pos in
    let (primary, p) = read_varint data p in
    let (rle_len, p) = read_varint data p in
    let mode = Char.code data.[p] in
    let p = p + 1 in
    let (rle, p) =
      match mode with
      | 0 ->
        let model =
          Huffman.deserialize_model (String.sub data p Huffman.symbol_count)
        in
        let p = p + Huffman.symbol_count in
        let (coded_len, p) = read_varint data p in
        let coded = String.sub data p coded_len in
        (Huffman.decompress_raw model ~count:rle_len coded, p + coded_len)
      | 1 -> (String.sub data p rle_len, p + rle_len)
      | m -> raise (Corrupt (Printf.sprintf "bad block mode %d" m))
    in
    pos := p;
    let block = Bwt.inverse { Bwt.data = Mtf.decode (Rle.decode rle); primary } in
    if String.length block <> block_len then raise (Corrupt "block length mismatch");
    Buffer.add_string out block
  done;
  Buffer.contents out
