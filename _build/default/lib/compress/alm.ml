(* ALM (Antoshenkov-Lomet-Murray) dictionary-based order-preserving string
   compression, as used by XQueC (EDBT'04, §2.1 and Fig. 2).

   The string space is partitioned into disjoint lexicographic intervals.
   Each interval is associated with a dictionary token that is a prefix of
   every string in the interval, and with a fixed-width integer code;
   codes are assigned in interval order. Encoding a string repeatedly
   locates the interval containing the remaining suffix, emits its code and
   strips the token. Because (a) intervals are code-ordered, (b) stripping
   a shared prefix preserves relative order, and (c) code 0 is reserved for
   padding (so a shorter code sequence always compares below any
   continuation), the byte-string comparison of two compressed values
   coincides with the comparison of the plaintexts — inequality and
   equality predicates run entirely in the compressed domain.

   A token that is a proper prefix of other tokens receives several codes,
   one per gap between the longer tokens' regions: this is exactly the
   paper's Fig. 2, where "the" maps to codes c and e around the code d of
   "there". *)

type interval = {
  lo : string;           (* inclusive lower bound *)
  hi : string option;    (* exclusive upper bound; None = +infinity *)
  token : string;        (* prefix stripped/emitted for this interval *)
}

type model = {
  intervals : interval array; (* sorted by [lo]; code of interval i is i+1 *)
  width : int;                (* bits per code; code 0 is padding *)
}

exception Corrupt of string

(* Smallest string strictly greater than every string with prefix [t]. *)
let next_prefix (t : string) : string option =
  let rec go i =
    if i < 0 then None
    else if t.[i] = '\xff' then go (i - 1)
    else Some (String.sub t 0 i ^ String.make 1 (Char.chr (Char.code t.[i] + 1)))
  in
  go (String.length t - 1)

let below_hi (s : string) (hi : string option) =
  match hi with None -> true | Some h -> String.compare s h < 0

let bound_lt (a : string option) (b : string option) =
  (* Compare exclusive upper bounds / lower bounds where None = +inf. *)
  match a, b with
  | None, _ -> false
  | Some _, None -> true
  | Some x, Some y -> String.compare x y < 0

let is_prefix ~prefix s =
  String.length prefix <= String.length s
  && String.sub s 0 (String.length prefix) = prefix

(* ------------------------------------------------------------------ *)
(* Token mining                                                        *)
(* ------------------------------------------------------------------ *)

(** Frequent-substring mining: counts substrings of lengths 2..12 over a
    byte-bounded sample of the values and keeps the [max_tokens] best by
    estimated savings (occurrences x length). *)
let mine_tokens ?(max_tokens = 512) ?(sample_bytes = 1 lsl 20) (values : string list) :
    string list =
  let counts : (string, int ref) Hashtbl.t = Hashtbl.create 4096 in
  let budget = ref sample_bytes in
  let lengths = [ 2; 3; 4; 5; 6; 8; 10; 12; 16; 20; 24 ] in
  let scan v =
    let n = String.length v in
    budget := !budget - n;
    for i = 0 to n - 2 do
      List.iter
        (fun l ->
          if i + l <= n then begin
            let sub = String.sub v i l in
            match Hashtbl.find_opt counts sub with
            | Some r -> incr r
            | None ->
              if Hashtbl.length counts < 1 lsl 18 then
                Hashtbl.add counts sub (ref 1)
          end)
        lengths
    done
  in
  let rec sample = function
    | [] -> ()
    | v :: rest ->
      if !budget > 0 then begin
        scan v;
        sample rest
      end
  in
  sample values;
  let scored =
    (* savings estimate: each occurrence replaces len bytes by ~1.5 code
       bytes; require enough occurrences to pay for the dictionary entry *)
    Hashtbl.fold
      (fun tok r acc ->
        if !r >= 3 then ((!r * (2 * String.length tok - 3)) - (2 * String.length tok), tok) :: acc
        else acc)
      counts []
  in
  let sorted = List.sort (fun (s, _) (s', _) -> compare s' s) scored in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | (_, tok) :: rest -> tok :: take (n - 1) rest
  in
  take max_tokens sorted

(* ------------------------------------------------------------------ *)
(* Model construction                                                  *)
(* ------------------------------------------------------------------ *)

let build_intervals (tokens : string list) : interval array =
  (* All 256 single bytes guarantee total coverage of nonempty strings. *)
  let all =
    List.sort_uniq String.compare
      (List.init 256 (fun i -> String.make 1 (Char.chr i)) @ tokens)
  in
  let arr = Array.of_list all in
  let n = Array.length arr in
  let intervals = ref [] in
  for i = 0 to n - 1 do
    let t = arr.(i) in
    (* Minimal extensions of [t]: walk the sorted successors with prefix
       [t], skipping descendants of an already-kept extension. *)
    let exts = ref [] in
    let last_kept = ref None in
    let j = ref (i + 1) in
    let continue = ref true in
    while !continue && !j < n do
      let u = arr.(!j) in
      if is_prefix ~prefix:t u then begin
        (match !last_kept with
        | Some k when is_prefix ~prefix:k u -> ()
        | Some _ | None ->
          exts := u :: !exts;
          last_kept := Some u);
        incr j
      end
      else continue := false
    done;
    let exts = List.rev !exts in
    (* Gaps of [t, next t) not covered by any extension's prefix range. *)
    let t_hi = next_prefix t in
    let lo = ref (Some t) in
    List.iter
      (fun u ->
        (match !lo with
        | Some lo_s when String.compare lo_s u < 0 ->
          intervals := { lo = lo_s; hi = Some u; token = t } :: !intervals
        | Some _ | None -> ());
        lo := next_prefix u)
      exts;
    (match !lo with
    | Some lo_s when bound_lt (Some lo_s) t_hi ->
      intervals := { lo = lo_s; hi = t_hi; token = t } :: !intervals
    | Some _ | None -> ())
  done;
  let arr = Array.of_list !intervals in
  Array.sort (fun a b -> String.compare a.lo b.lo) arr;
  arr

let of_tokens (tokens : string list) : model =
  let intervals = build_intervals tokens in
  let width = Bitio.width_for (Array.length intervals + 1) in
  { intervals; width }

(** Train on container values: mined frequent substrings + total byte
    coverage. The dictionary budget adapts to the container size so the
    source model never dwarfs the data it compresses. *)
let train ?max_tokens ?sample_bytes (values : string list) : model =
  let max_tokens =
    match max_tokens with
    | Some m -> m
    | None ->
      let total = List.fold_left (fun acc v -> acc + String.length v) 0 values in
      min 1024 (max 8 (total / 96))
  in
  of_tokens (mine_tokens ~max_tokens ?sample_bytes values)

(* ------------------------------------------------------------------ *)
(* Encoding / decoding                                                 *)
(* ------------------------------------------------------------------ *)

(* Rightmost interval whose [lo] is <= [s]; intervals are disjoint and
   cover all nonempty strings, so this is the containing interval. *)
let find_interval (m : model) (s : string) : int =
  let lo = ref 0 and hi = ref (Array.length m.intervals - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if String.compare m.intervals.(mid).lo s <= 0 then lo := mid else hi := mid - 1
  done;
  let itv = m.intervals.(!lo) in
  if String.compare itv.lo s > 0 || not (below_hi s itv.hi) then
    raise (Corrupt "ALM: no covering interval");
  !lo

let compress (m : model) (value : string) : string =
  let w = Bitio.Writer.create ~size:(String.length value) () in
  let rec go r =
    if String.length r > 0 then begin
      let i = find_interval m r in
      let itv = m.intervals.(i) in
      if not (is_prefix ~prefix:itv.token r) then
        raise (Corrupt "ALM: interval token is not a prefix");
      Bitio.Writer.add_bits w (i + 1) m.width;
      go (String.sub r (String.length itv.token)
            (String.length r - String.length itv.token))
    end
  in
  go value;
  Bitio.Writer.contents w

let decompress (m : model) (compressed : string) : string =
  let r = Bitio.Reader.of_string compressed in
  let buf = Buffer.create 16 in
  let rec go () =
    if Bitio.Reader.bits_remaining r >= m.width then begin
      let code = Bitio.Reader.read_bits r m.width in
      if code <> 0 then begin
        if code > Array.length m.intervals then raise (Corrupt "ALM: bad code");
        Buffer.add_string buf m.intervals.(code - 1).token;
        go ()
      end
    end
  in
  go ();
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Compressed-domain operations                                        *)
(* ------------------------------------------------------------------ *)

(** Order-preserving: compare compressed values directly. *)
let compare_compressed (a : string) (b : string) = String.compare a b

let equal_compressed (a : string) (b : string) = String.equal a b

(** Compressed bounds for a prefix-wildcard [p*]: ALM being
    order-preserving, matching strings are exactly those in
    [compress p, compress (next_prefix p)). This goes beyond the paper's
    wild=false (kept false in the cost model) but is exposed as an
    extension. *)
let prefix_range (m : model) (prefix : string) : string * string option =
  let lo = compress m prefix in
  let hi = Option.map (compress m) (next_prefix prefix) in
  (lo, hi)

let model_entries (m : model) = Array.length m.intervals

(* ------------------------------------------------------------------ *)
(* Model serialization                                                 *)
(* ------------------------------------------------------------------ *)

(* The interval set is a pure function of the token set, so the source
   model on storage is just the mined (multi-byte) tokens; the 256
   single-byte tokens are implicit. *)

let model_tokens (m : model) : string list =
  Array.to_list m.intervals
  |> List.filter_map (fun itv -> if String.length itv.token > 1 then Some itv.token else None)
  |> List.sort_uniq String.compare

let serialize_model (m : model) : string =
  let buf = Buffer.create 1024 in
  let tokens = model_tokens m in
  Buffer.add_uint16_be buf (List.length tokens);
  List.iter
    (fun t ->
      Buffer.add_char buf (Char.chr (String.length t));
      Buffer.add_string buf t)
    tokens;
  Buffer.contents buf

let deserialize_model (s : string) : model =
  let pos = ref 0 in
  let n = (Char.code s.[0] lsl 8) lor Char.code s.[1] in
  pos := 2;
  let tokens =
    List.init n (fun _ ->
        let len = Char.code s.[!pos] in
        let v = String.sub s (!pos + 1) len in
        pos := !pos + 1 + len;
        v)
  in
  of_tokens tokens

let model_size m = String.length (serialize_model m)
