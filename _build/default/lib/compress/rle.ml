(* Zero-run-length coding for post-MTF streams, where byte 0 dominates.
   A zero byte is followed by a varint giving (run length - 1). *)

let add_varint buf v =
  let v = ref v in
  let continue = ref true in
  while !continue do
    let b = !v land 0x7f in
    v := !v lsr 7;
    if !v = 0 then begin
      Buffer.add_char buf (Char.chr b);
      continue := false
    end
    else Buffer.add_char buf (Char.chr (b lor 0x80))
  done

let read_varint s pos =
  let v = ref 0 and shift = ref 0 and p = ref pos in
  let continue = ref true in
  while !continue do
    let b = Char.code s.[!p] in
    incr p;
    v := !v lor ((b land 0x7f) lsl !shift);
    shift := !shift + 7;
    if b land 0x80 = 0 then continue := false
  done;
  (!v, !p)

let encode (s : string) : string =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    if c = '\000' then begin
      let j = ref !i in
      while !j < n && s.[!j] = '\000' do
        incr j
      done;
      Buffer.add_char buf '\000';
      add_varint buf (!j - !i - 1);
      i := !j
    end
    else begin
      Buffer.add_char buf c;
      incr i
    end
  done;
  Buffer.contents buf

let decode (s : string) : string =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    incr i;
    if c = '\000' then begin
      let (run, p) = read_varint s !i in
      i := p;
      for _ = 0 to run do
        Buffer.add_char buf '\000'
      done
    end
    else Buffer.add_char buf c
  done;
  Buffer.contents buf
