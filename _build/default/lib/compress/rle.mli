(** Zero-run-length coding for post-MTF streams, plus the varint
    primitives shared by the storage serializers. *)

val add_varint : Buffer.t -> int -> unit

(** [read_varint s pos] returns the value and the position after it. *)
val read_varint : string -> int -> int * int

val encode : string -> string

val decode : string -> string
