(* Bit-level I/O shared by all codecs.

   Bits are written most-significant-first inside each byte, so that the
   natural byte-string comparison of two zero-padded bit streams coincides
   with the bit-sequence comparison — the property all order-preserving
   codecs in this library rely on. *)

module Writer = struct
  type t = { buf : Buffer.t; mutable acc : int; mutable used : int }

  let create ?(size = 64) () = { buf = Buffer.create size; acc = 0; used = 0 }

  let add_bit w b =
    w.acc <- (w.acc lsl 1) lor (if b then 1 else 0);
    w.used <- w.used + 1;
    if w.used = 8 then begin
      Buffer.add_char w.buf (Char.chr w.acc);
      w.acc <- 0;
      w.used <- 0
    end

  (** [add_bits w v width] writes the [width] low bits of [v],
      most significant first. *)
  let add_bits w v width =
    for i = width - 1 downto 0 do
      add_bit w ((v lsr i) land 1 = 1)
    done

  let bit_length w = (8 * Buffer.length w.buf) + w.used

  (** Zero-pad to a byte boundary and return the bytes. *)
  let contents w =
    if w.used = 0 then Buffer.contents w.buf
    else begin
      let last = w.acc lsl (8 - w.used) in
      Buffer.contents w.buf ^ String.make 1 (Char.chr last)
    end
end

module Reader = struct
  type t = { src : string; mutable pos : int (* bit position *) }

  let of_string src = { src; pos = 0 }

  let bits_remaining r = (8 * String.length r.src) - r.pos

  exception Out_of_bits

  let read_bit r =
    let byte = r.pos lsr 3 in
    if byte >= String.length r.src then raise Out_of_bits;
    let off = 7 - (r.pos land 7) in
    r.pos <- r.pos + 1;
    (Char.code r.src.[byte] lsr off) land 1 = 1

  let read_bits r width =
    let v = ref 0 in
    for _ = 1 to width do
      v := (!v lsl 1) lor (if read_bit r then 1 else 0)
    done;
    !v
end

(** Number of bits needed to represent values in [0, n-1]; at least 1. *)
let width_for n =
  let rec go w cap = if cap >= n then w else go (w + 1) (cap * 2) in
  go 1 2
