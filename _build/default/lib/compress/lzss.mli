(** LZSS (LZ77 family) with a 4 KiB window and hash-chain match finder —
    stands in for the gzip second pass of the XMill baseline. *)

val compress : string -> string

val decompress : string -> string
