lib/compress/codec.ml: Alm Arith Bzip Hu_tucker Huffman Ipack String
