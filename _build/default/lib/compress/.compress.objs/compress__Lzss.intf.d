lib/compress/lzss.mli:
