lib/compress/hu_tucker.ml: Array Bitio Buffer Char List String
