lib/compress/rle.mli: Buffer
