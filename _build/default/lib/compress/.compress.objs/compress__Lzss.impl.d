lib/compress/lzss.ml: Array Bitio Buffer Char Rle String
