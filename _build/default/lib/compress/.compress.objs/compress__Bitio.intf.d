lib/compress/bitio.mli:
