lib/compress/ipack.mli:
