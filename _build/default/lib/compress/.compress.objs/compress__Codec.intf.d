lib/compress/codec.mli: Alm Arith Hu_tucker Huffman Ipack
