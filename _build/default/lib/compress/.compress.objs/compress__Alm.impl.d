lib/compress/alm.ml: Array Bitio Buffer Char Hashtbl List Option String
