lib/compress/hu_tucker.mli:
