lib/compress/bwt.mli:
