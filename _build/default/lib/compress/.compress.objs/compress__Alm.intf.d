lib/compress/alm.mli:
