lib/compress/bzip.mli:
