lib/compress/mtf.ml: Array Char String
