lib/compress/huffman.mli:
