lib/compress/ipack.ml: Char Float List Printf String
