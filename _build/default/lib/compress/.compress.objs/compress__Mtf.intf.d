lib/compress/mtf.mli:
