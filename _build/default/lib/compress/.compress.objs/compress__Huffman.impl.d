lib/compress/huffman.ml: Array Bitio Buffer Char List Queue String
