lib/compress/arith.mli:
