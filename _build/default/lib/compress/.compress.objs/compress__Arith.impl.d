lib/compress/arith.ml: Array Bitio Buffer Char List String
