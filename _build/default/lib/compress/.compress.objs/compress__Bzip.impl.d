lib/compress/bzip.ml: Buffer Bwt Char Huffman Mtf Printf Rle String
