(** Streaming (SAX-style) XML parser. Supports elements, attributes,
    character data, CDATA, comments, processing instructions, DOCTYPE
    skipping, predefined entities and character references.
    Whitespace-only text between elements is dropped. *)

type event =
  | Start_element of string * (string * string) list
  | End_element of string
  | Characters of string

exception Malformed of string * int  (** message, byte offset *)

val parse_string : f:(event -> unit) -> string -> unit

(** Fold over events with matching-tag checking. *)
val fold : f:('a -> event -> 'a) -> init:'a -> string -> 'a
