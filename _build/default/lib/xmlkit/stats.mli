(** Document statistics: the figures the paper quotes (value share of
    70-80%, element counts, depth) for Table 1 and §2.2. *)

type t = {
  elements : int;
  attributes : int;
  text_nodes : int;
  distinct_tags : int;
  max_depth : int;
  text_bytes : int;
  markup_bytes : int;
  serialized_bytes : int;
}

val value_share : t -> float

val of_document : Tree.document -> t

val pp : Format.formatter -> t -> unit
