(** DOM parser built on the SAX layer. *)

exception Malformed of string * int

val parse_string : string -> Tree.document

val parse_file : string -> Tree.document
