(** In-memory XML tree: elements with attributes and children, and text
    nodes. *)

type t =
  | Element of string * (string * string) list * t list
  | Text of string

type document = { root : t }

val element : ?attrs:(string * string) list -> string -> t list -> t

val text : string -> t

val tag : t -> string option

val attrs : t -> (string * string) list

val children : t -> t list

val attr : t -> string -> string option

val is_text : t -> bool

(** Concatenation of all descendant text, document order. *)
val text_content : t -> string

(** Immediate text children only. *)
val immediate_text : t -> string

val children_with_tag : t -> string -> t list

val first_child_with_tag : t -> string -> t option

(** Pre-order fold over all nodes. *)
val fold : ('a -> t -> 'a) -> 'a -> t -> 'a

val iter : (t -> unit) -> t -> unit

val descendants_with_tag : t -> string -> t list

val count_nodes : t -> int

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
