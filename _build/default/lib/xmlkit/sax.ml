(* Streaming (SAX-style) XML parser, written from scratch.

   The parser is a recursive-descent scanner over a string. It supports
   elements, attributes, character data, CDATA sections, comments,
   processing instructions, an (ignored) DOCTYPE declaration, and the five
   predefined entities plus numeric character references.

   Whitespace-only text between elements is dropped (all the documents this
   system handles are data-centric); whitespace inside mixed content is
   preserved because such text nodes also carry non-space characters. *)

type event =
  | Start_element of string * (string * string) list
  | End_element of string
  | Characters of string

exception Malformed of string * int  (** message, byte offset *)

type state = { src : string; mutable pos : int }

let fail st msg = raise (Malformed (msg, st.pos))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | Some c' -> fail st (Printf.sprintf "expected %c, found %c" c c')
  | None -> fail st (Printf.sprintf "expected %c, found end of input" c)

let expect_string st s =
  let n = String.length s in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = s then
    st.pos <- st.pos + n
  else fail st (Printf.sprintf "expected %S" s)

let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'
  || Char.code c >= 0x80

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

let skip_space st =
  let rec go () =
    match peek st with
    | Some c when is_space c -> advance st; go ()
    | Some _ | None -> ()
  in
  go ()

let read_name st =
  let start = st.pos in
  (match peek st with
  | Some c when is_name_start c -> advance st
  | Some c -> fail st (Printf.sprintf "invalid name start: %c" c)
  | None -> fail st "unexpected end of input in name");
  let rec go () =
    match peek st with
    | Some c when is_name_char c -> advance st; go ()
    | Some _ | None -> ()
  in
  go ();
  String.sub st.src start (st.pos - start)

let read_entity st =
  (* Positioned just after '&'. *)
  let start = st.pos in
  let rec go () =
    match peek st with
    | Some ';' ->
      let body = String.sub st.src start (st.pos - start) in
      advance st;
      (try Escape.resolve_entity body with Failure m -> fail st m)
    | Some _ -> advance st; if st.pos - start > 12 then fail st "entity too long" else go ()
    | None -> fail st "unterminated entity"
  in
  go ()

let read_attr_value st =
  let quote =
    match peek st with
    | Some ('"' as q) | Some ('\'' as q) -> advance st; q
    | Some _ | None -> fail st "expected quoted attribute value"
  in
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | Some c when c = quote -> advance st; Buffer.contents buf
    | Some '&' -> advance st; Buffer.add_string buf (read_entity st); go ()
    | Some '<' -> fail st "'<' in attribute value"
    | Some c -> advance st; Buffer.add_char buf c; go ()
    | None -> fail st "unterminated attribute value"
  in
  go ()

let read_attributes st =
  let rec go acc =
    skip_space st;
    match peek st with
    | Some c when is_name_start c ->
      let name = read_name st in
      skip_space st;
      expect st '=';
      skip_space st;
      let value = read_attr_value st in
      go ((name, value) :: acc)
    | Some _ | None -> List.rev acc
  in
  go []

let skip_until st marker =
  (* Advance past the next occurrence of [marker]. *)
  let n = String.length marker in
  let limit = String.length st.src - n in
  let rec go () =
    if st.pos > limit then fail st (Printf.sprintf "missing %S" marker)
    else if String.sub st.src st.pos n = marker then st.pos <- st.pos + n
    else begin advance st; go () end
  in
  go ()

let read_cdata st =
  (* Positioned after "<![CDATA[". *)
  let start = st.pos in
  skip_until st "]]>";
  String.sub st.src start (st.pos - start - 3)

(* Skip a DOCTYPE declaration, including an optional internal subset. *)
let skip_doctype st =
  let rec go depth =
    match peek st with
    | Some '[' -> advance st; go (depth + 1)
    | Some ']' -> advance st; go (depth - 1)
    | Some '>' when depth = 0 -> advance st
    | Some _ -> advance st; go depth
    | None -> fail st "unterminated DOCTYPE"
  in
  go 0

let blank s = String.for_all is_space s

(** Parse [src], feeding events to [f]. Raises {!Malformed} on errors. *)
let parse_string ~f src =
  let st = { src; pos = 0 } in
  let text_buf = Buffer.create 256 in
  let flush_text () =
    if Buffer.length text_buf > 0 then begin
      let s = Buffer.contents text_buf in
      Buffer.clear text_buf;
      if not (blank s) then f (Characters s)
    end
  in
  let depth = ref 0 in
  let seen_root = ref false in
  let rec events () =
    match peek st with
    | None ->
      flush_text ();
      if !depth > 0 then fail st "unexpected end of input: unclosed elements";
      if not !seen_root then fail st "no root element"
    | Some '<' ->
      advance st;
      (match peek st with
      | Some '?' ->
        advance st;
        skip_until st "?>";
        events ()
      | Some '!' ->
        advance st;
        if st.pos + 1 < String.length st.src && st.src.[st.pos] = '-'
           && st.src.[st.pos + 1] = '-'
        then begin
          st.pos <- st.pos + 2;
          skip_until st "-->";
          events ()
        end
        else if
          st.pos + 7 <= String.length st.src
          && String.sub st.src st.pos 7 = "[CDATA["
        then begin
          st.pos <- st.pos + 7;
          let data = read_cdata st in
          Buffer.add_string text_buf data;
          events ()
        end
        else begin
          expect_string st "DOCTYPE";
          skip_doctype st;
          events ()
        end
      | Some '/' ->
        advance st;
        flush_text ();
        let name = read_name st in
        skip_space st;
        expect st '>';
        if !depth = 0 then fail st "closing tag without opening";
        decr depth;
        f (End_element name);
        events ()
      | Some _ ->
        flush_text ();
        if !depth = 0 && !seen_root then fail st "multiple root elements";
        let name = read_name st in
        let attributes = read_attributes st in
        skip_space st;
        (match peek st with
        | Some '/' ->
          advance st;
          expect st '>';
          seen_root := true;
          f (Start_element (name, attributes));
          f (End_element name)
        | Some '>' ->
          advance st;
          seen_root := true;
          incr depth;
          f (Start_element (name, attributes))
        | Some c -> fail st (Printf.sprintf "unexpected %c in tag" c)
        | None -> fail st "unterminated tag");
        events ()
      | None -> fail st "unterminated markup")
    | Some '&' ->
      advance st;
      Buffer.add_string text_buf (read_entity st);
      events ()
    | Some c ->
      if !depth = 0 then begin
        if not (is_space c) then fail st "text outside root element";
        advance st;
        events ()
      end
      else begin
        advance st;
        Buffer.add_char text_buf c;
        events ()
      end
  in
  events ()

(** Fold over events with matching-tag checking of end elements. *)
let fold ~f ~init src =
  let acc = ref init in
  let stack = ref [] in
  let handle ev =
    (match ev with
    | Start_element (name, _) -> stack := name :: !stack
    | End_element name -> (
      match !stack with
      | top :: rest when String.equal top name -> stack := rest
      | top :: _ ->
        raise (Malformed (Printf.sprintf "mismatched tags: <%s> closed by </%s>" top name, 0))
      | [] -> raise (Malformed ("stray closing tag", 0)))
    | Characters _ -> ());
    acc := f !acc ev
  in
  parse_string ~f:handle src;
  !acc
