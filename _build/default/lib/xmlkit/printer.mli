(** XML serialization. *)

val add_node : ?indent:bool -> Buffer.t -> Tree.t -> unit

val node_to_string : ?indent:bool -> Tree.t -> string

val to_string : ?indent:bool -> Tree.document -> string

val to_file : ?indent:bool -> string -> Tree.document -> unit
