lib/xmlkit/sax.mli:
