lib/xmlkit/stats.ml: Fmt Hashtbl List Printer String Tree
