lib/xmlkit/tree.mli: Format
