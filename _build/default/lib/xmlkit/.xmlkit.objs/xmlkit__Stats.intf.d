lib/xmlkit/stats.mli: Format Tree
