lib/xmlkit/printer.ml: Buffer Escape List String Tree
