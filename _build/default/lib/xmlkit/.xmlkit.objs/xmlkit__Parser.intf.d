lib/xmlkit/parser.mli: Tree
