lib/xmlkit/sax.ml: Buffer Char Escape List Printf String
