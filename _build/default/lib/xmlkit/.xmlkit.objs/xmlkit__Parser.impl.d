lib/xmlkit/parser.ml: List Printf Sax String Tree
