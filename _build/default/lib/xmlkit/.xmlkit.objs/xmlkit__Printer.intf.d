lib/xmlkit/printer.mli: Buffer Tree
