lib/xmlkit/escape.ml: Buffer String Uchar
