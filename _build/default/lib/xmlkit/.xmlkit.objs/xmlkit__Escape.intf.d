lib/xmlkit/escape.mli:
