lib/xmlkit/tree.ml: Buffer Fmt List String
