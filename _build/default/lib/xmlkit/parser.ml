(* DOM parser built on the SAX layer. *)

exception Malformed = Sax.Malformed

type frame = { tag : string; attributes : (string * string) list; mutable rev_children : Tree.t list }

(** Parse a complete document; returns the root element. *)
let parse_string src : Tree.document =
  let stack : frame list ref = ref [] in
  let root : Tree.t option ref = ref None in
  let handle ev =
    match ev with
    | Sax.Start_element (tag, attributes) ->
      stack := { tag; attributes; rev_children = [] } :: !stack
    | Sax.End_element name -> (
      match !stack with
      | fr :: rest ->
        if not (String.equal fr.tag name) then
          raise
            (Malformed
               (Printf.sprintf "mismatched tags: <%s> closed by </%s>" fr.tag name, 0));
        let node = Tree.Element (fr.tag, fr.attributes, List.rev fr.rev_children) in
        (match rest with
        | parent :: _ -> parent.rev_children <- node :: parent.rev_children
        | [] -> root := Some node);
        stack := rest
      | [] -> raise (Malformed ("stray closing tag", 0)))
    | Sax.Characters s -> (
      match !stack with
      | fr :: _ -> fr.rev_children <- Tree.Text s :: fr.rev_children
      | [] -> raise (Malformed ("text outside root element", 0)))
  in
  Sax.parse_string ~f:handle src;
  match !root with
  | Some r -> { Tree.root = r }
  | None -> raise (Malformed ("no root element", 0))

let parse_file path : Tree.document =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  parse_string s
