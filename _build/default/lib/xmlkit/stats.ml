(* Document statistics: the figures the paper quotes (value share of 70-80%,
   element counts, depth) are computed here for Table 1 and §2.2. *)

type t = {
  elements : int;
  attributes : int;
  text_nodes : int;
  distinct_tags : int;
  max_depth : int;
  text_bytes : int;  (** bytes of PCDATA + attribute values *)
  markup_bytes : int;  (** serialized size minus text bytes *)
  serialized_bytes : int;
}

let value_share st =
  if st.serialized_bytes = 0 then 0.0
  else float_of_int st.text_bytes /. float_of_int st.serialized_bytes

let of_document (doc : Tree.document) =
  let elements = ref 0 in
  let attributes = ref 0 in
  let text_nodes = ref 0 in
  let text_bytes = ref 0 in
  let max_depth = ref 0 in
  let tags = Hashtbl.create 64 in
  let rec go depth node =
    match node with
    | Tree.Text s ->
      incr text_nodes;
      text_bytes := !text_bytes + String.length s
    | Tree.Element (tag, atts, kids) ->
      if depth > !max_depth then max_depth := depth;
      incr elements;
      Hashtbl.replace tags tag ();
      List.iter
        (fun (n, v) ->
          incr attributes;
          Hashtbl.replace tags ("@" ^ n) ();
          text_bytes := !text_bytes + String.length v)
        atts;
      List.iter (go (depth + 1)) kids
  in
  go 1 doc.Tree.root;
  let serialized_bytes = String.length (Printer.to_string doc) in
  {
    elements = !elements;
    attributes = !attributes;
    text_nodes = !text_nodes;
    distinct_tags = Hashtbl.length tags;
    max_depth = !max_depth;
    text_bytes = !text_bytes;
    markup_bytes = serialized_bytes - !text_bytes;
    serialized_bytes;
  }

let pp ppf st =
  Fmt.pf ppf
    "elements=%d attributes=%d text_nodes=%d distinct_tags=%d max_depth=%d \
     text_bytes=%d serialized_bytes=%d value_share=%.1f%%"
    st.elements st.attributes st.text_nodes st.distinct_tags st.max_depth
    st.text_bytes st.serialized_bytes
    (100.0 *. value_share st)
