(* In-memory XML tree (DOM-like), deliberately minimal: elements carry a tag,
   an attribute list and children; character data is a [Text] node. *)

type t =
  | Element of string * (string * string) list * t list
  | Text of string

(** A document is a root element (prolog/PIs/comments are dropped at parse). *)
type document = { root : t }

let element ?(attrs = []) tag children = Element (tag, attrs, children)
let text s = Text s

let tag = function Element (t, _, _) -> Some t | Text _ -> None
let attrs = function Element (_, a, _) -> a | Text _ -> []
let children = function Element (_, _, c) -> c | Text _ -> []

let attr node name =
  match node with
  | Element (_, a, _) -> List.assoc_opt name a
  | Text _ -> None

let is_text = function Text _ -> true | Element _ -> false

(** Concatenation of all descendant text nodes, in document order. *)
let rec text_content node =
  match node with
  | Text s -> s
  | Element (_, _, kids) -> String.concat "" (List.map text_content kids)

(** Immediate text children concatenated (no descent into sub-elements). *)
let immediate_text node =
  match node with
  | Text s -> s
  | Element (_, _, kids) ->
    let buf = Buffer.create 16 in
    let add = function Text s -> Buffer.add_string buf s | Element _ -> () in
    List.iter add kids;
    Buffer.contents buf

let children_with_tag node name =
  let keep = function
    | Element (t, _, _) -> String.equal t name
    | Text _ -> false
  in
  List.filter keep (children node)

let first_child_with_tag node name =
  match children_with_tag node name with [] -> None | k :: _ -> Some k

(** Pre-order fold over all nodes (elements and text). *)
let rec fold f acc node =
  let acc = f acc node in
  match node with
  | Text _ -> acc
  | Element (_, _, kids) -> List.fold_left (fold f) acc kids

let iter f node = fold (fun () n -> f n) () node

(** All descendant-or-self elements with the given tag, document order. *)
let descendants_with_tag node name =
  let collect acc n =
    match n with
    | Element (t, _, _) when String.equal t name -> n :: acc
    | Element _ | Text _ -> acc
  in
  List.rev (fold collect [] node)

let count_nodes node =
  fold (fun n _ -> n + 1) 0 node

let rec equal a b =
  match a, b with
  | Text s, Text s' -> String.equal s s'
  | Element (t, at, k), Element (t', at', k') ->
    String.equal t t'
    && List.length at = List.length at'
    && List.for_all2
         (fun (n, v) (n', v') -> String.equal n n' && String.equal v v')
         at at'
    && List.length k = List.length k'
    && List.for_all2 equal k k'
  | Text _, Element _ | Element _, Text _ -> false

let rec pp ppf node =
  match node with
  | Text s -> Fmt.pf ppf "Text %S" s
  | Element (t, a, k) ->
    Fmt.pf ppf "@[<2>Element %s %a@ %a@]" t
      Fmt.(list ~sep:sp (pair ~sep:(any "=") string string))
      a
      Fmt.(brackets (list ~sep:semi pp))
      k
