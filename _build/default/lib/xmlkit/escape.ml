(* XML character escaping and entity resolution. *)

let escape_text s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let escape_attr s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | '\'' -> Buffer.add_string buf "&apos;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(** Resolve a named or numeric entity body (without [&] and [;]).
    Raises [Failure] on unknown entities. *)
let resolve_entity body =
  match body with
  | "lt" -> "<"
  | "gt" -> ">"
  | "amp" -> "&"
  | "quot" -> "\""
  | "apos" -> "'"
  | _ ->
    let len = String.length body in
    if len >= 2 && body.[0] = '#' then begin
      let code =
        if body.[1] = 'x' || body.[1] = 'X' then
          int_of_string_opt ("0x" ^ String.sub body 2 (len - 2))
        else int_of_string_opt (String.sub body 1 (len - 1))
      in
      match code with
      | Some c when c >= 0 && c < 0x110000 ->
        (* Encode the code point as UTF-8. *)
        let buf = Buffer.create 4 in
        Buffer.add_utf_8_uchar buf (Uchar.of_int c);
        Buffer.contents buf
      | Some _ | None -> failwith ("invalid character reference: &" ^ body ^ ";")
    end
    else failwith ("unknown entity: &" ^ body ^ ";")
