(** XML character escaping and entity resolution. *)

val escape_text : string -> string

val escape_attr : string -> string

(** Resolve a named or numeric entity body (without [&] / [;]).
    Raises [Failure] on unknown entities. *)
val resolve_entity : string -> string
