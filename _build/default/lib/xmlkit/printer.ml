(* XML serialization. *)

let add_node ?(indent = false) buf node =
  let rec go depth node =
    match node with
    | Tree.Text s -> Buffer.add_string buf (Escape.escape_text s)
    | Tree.Element (tag, attributes, kids) ->
      if indent && Buffer.length buf > 0 then begin
        Buffer.add_char buf '\n';
        Buffer.add_string buf (String.make (2 * depth) ' ')
      end;
      Buffer.add_char buf '<';
      Buffer.add_string buf tag;
      List.iter
        (fun (n, v) ->
          Buffer.add_char buf ' ';
          Buffer.add_string buf n;
          Buffer.add_string buf "=\"";
          Buffer.add_string buf (Escape.escape_attr v);
          Buffer.add_char buf '"')
        attributes;
      (match kids with
      | [] -> Buffer.add_string buf "/>"
      | kids ->
        Buffer.add_char buf '>';
        let only_elements = List.for_all (fun k -> not (Tree.is_text k)) kids in
        List.iter (go (depth + 1)) kids;
        if indent && only_elements then begin
          Buffer.add_char buf '\n';
          Buffer.add_string buf (String.make (2 * depth) ' ')
        end;
        Buffer.add_string buf "</";
        Buffer.add_string buf tag;
        Buffer.add_char buf '>')
  in
  go 0 node

let node_to_string ?indent node =
  let buf = Buffer.create 1024 in
  add_node ?indent buf node;
  Buffer.contents buf

let to_string ?indent (doc : Tree.document) = node_to_string ?indent doc.Tree.root

let to_file ?indent path doc =
  let oc = open_out_bin path in
  output_string oc (to_string ?indent doc);
  output_char oc '\n';
  close_out oc
