(* XMark-like auction document generator — the stand-in for the xmlgen
   tool of the XMark benchmark [8]. It reproduces the schema outline of
   the paper's Fig. 1: a site with regions/items, categories, people,
   open and closed auctions, connected by IDREF attributes, with
   Shakespeare-vocabulary description text (including the nested
   parlist/listitem/text/emph/keyword structures Q15/Q16 navigate).

   [generate ~scale] produces roughly [scale] megabytes of XML; element
   ratios follow xmlgen's (items : people : open : closed ≈ 4:5:6:3 per
   unit). *)

type counts = {
  items_per_region : int;
  people : int;
  open_auctions : int;
  closed_auctions : int;
  categories : int;
}

let regions = [| "africa"; "asia"; "australia"; "europe"; "namerica"; "samerica" |]

let counts_of_scale scale =
  let n = max 0.02 scale in
  {
    items_per_region = max 1 (int_of_float (95.0 *. n));
    people = max 3 (int_of_float (360.0 *. n));
    open_auctions = max 2 (int_of_float (175.0 *. n));
    closed_auctions = max 2 (int_of_float (95.0 *. n));
    categories = max 2 (int_of_float (25.0 *. n));
  }

type gen = { rng : Rng.t; buf : Buffer.t; counts : counts }

let total_items g = g.counts.items_per_region * Array.length regions

let add g s = Buffer.add_string g.buf s
let addf g fmt = Printf.ksprintf (Buffer.add_string g.buf) fmt

let sentence g n =
  let words = List.init n (fun _ -> Rng.pick g.rng Wordpool.shakespeare) in
  String.concat " " words

let text_block g =
  sentence g (45 + Rng.int g.rng 90)

let date g =
  Printf.sprintf "%02d/%02d/%4d" (1 + Rng.int g.rng 12) (1 + Rng.int g.rng 28)
    (1998 + Rng.int g.rng 4)

let time g = Printf.sprintf "%02d:%02d:%02d" (Rng.int g.rng 24) (Rng.int g.rng 60) (Rng.int g.rng 60)

let price g = Printf.sprintf "%d.%02d" (1 + Rng.int g.rng 300) (Rng.int g.rng 100)

let person_name g =
  Rng.pick g.rng Wordpool.first_names ^ " " ^ Rng.pick g.rng Wordpool.last_names

(* description: plain text, or the nested parlist structure that XMark's
   Q15/Q16 long paths navigate. *)
let description g =
  add g "\n<description>";
  if Rng.chance g.rng 0.35 then begin
    add g "<parlist><listitem>";
    if Rng.chance g.rng 0.5 then begin
      (* the Q15 path: parlist/listitem/parlist/listitem/text/emph/keyword *)
      addf g "<parlist><listitem><text>%s<emph><keyword>%s</keyword></emph></text></listitem></parlist>"
        (text_block g) (sentence g 2)
    end
    else addf g "<text>%s</text>" (text_block g);
    add g "</listitem>";
    if Rng.chance g.rng 0.4 then addf g "<listitem><text>%s</text></listitem>" (text_block g);
    add g "</parlist>"
  end
  else addf g "<text>%s</text>" (text_block g);
  add g "</description>"

let annotation g =
  addf g "\n<annotation><author person=\"person%d\"/>" (Rng.int g.rng g.counts.people);
  description g;
  addf g "<happiness>%d</happiness></annotation>" (1 + Rng.int g.rng 10)

let item g ~id =
  addf g "\n<item id=\"item%d\"" id;
  if Rng.chance g.rng 0.1 then add g " featured=\"yes\"";
  add g ">";
  addf g "\n  <location>%s</location>" (Rng.pick g.rng Wordpool.countries);
  addf g "<quantity>%d</quantity>" (1 + Rng.int g.rng 5);
  addf g "\n  <name>%s %s %d</name>"
    (Rng.pick g.rng Wordpool.item_adjectives)
    (Rng.pick g.rng Wordpool.item_nouns)
    id;
  add g "<payment>Creditcard</payment>";
  description g;
  addf g "<shipping>Will ship %s</shipping>"
    (if Rng.bool g.rng then "internationally" else "only within country");
  let ncat = 1 + Rng.int g.rng 3 in
  for _ = 1 to ncat do
    addf g "<incategory category=\"category%d\"/>" (Rng.int g.rng g.counts.categories)
  done;
  if Rng.chance g.rng 0.5 then
    addf g "<mailbox><mail><from>%s</from><to>%s</to><date>%s</date><text>%s</text></mail></mailbox>"
      (person_name g) (person_name g) (date g) (text_block g);
  add g "</item>"

let person g ~id =
  addf g "\n<person id=\"person%d\">" id;
  addf g "\n  <name>%s</name>" (person_name g);
  addf g "\n  <emailaddress>mailto:user%d@example.com</emailaddress>" id;
  if Rng.chance g.rng 0.6 then
    addf g "<phone>+%d (%d) %d</phone>" (1 + Rng.int g.rng 40) (Rng.int g.rng 999)
      (1000000 + Rng.int g.rng 8999999);
  if Rng.chance g.rng 0.7 then
    addf g
      "<address><street>%d %s St</street><city>%s</city><country>%s</country><zipcode>%d</zipcode></address>"
      (1 + Rng.int g.rng 99)
      (Rng.pick g.rng Wordpool.streets)
      (Rng.pick g.rng Wordpool.cities)
      (Rng.pick g.rng Wordpool.countries)
      (10000 + Rng.int g.rng 89999);
  if Rng.chance g.rng 0.5 then
    addf g "<homepage>http://www.example.com/~user%d</homepage>" id;
  if Rng.chance g.rng 0.6 then
    addf g "<creditcard>%04d %04d %04d %04d</creditcard>" (Rng.int g.rng 10000)
      (Rng.int g.rng 10000) (Rng.int g.rng 10000) (Rng.int g.rng 10000);
  if Rng.chance g.rng 0.8 then begin
    addf g "<profile income=\"%d.%02d\">" (9000 + Rng.int g.rng 91000) (Rng.int g.rng 100);
    let nint = Rng.int g.rng 4 in
    for _ = 1 to nint do
      addf g "<interest category=\"category%d\"/>" (Rng.int g.rng g.counts.categories)
    done;
    if Rng.chance g.rng 0.6 then
      addf g "<education>%s</education>" (Rng.pick g.rng Wordpool.education);
    if Rng.chance g.rng 0.7 then
      addf g "<gender>%s</gender>" (if Rng.bool g.rng then "male" else "female");
    addf g "<business>%s</business>" (if Rng.bool g.rng then "Yes" else "No");
    if Rng.chance g.rng 0.5 then addf g "<age>%d</age>" (18 + Rng.int g.rng 60);
    add g "</profile>"
  end;
  if Rng.chance g.rng 0.4 then begin
    add g "<watches>";
    let nw = 1 + Rng.int g.rng 3 in
    for _ = 1 to nw do
      addf g "<watch open_auction=\"open_auction%d\"/>" (Rng.int g.rng g.counts.open_auctions)
    done;
    add g "</watches>"
  end;
  add g "</person>"

let bidder g =
  addf g "\n<bidder><date>%s</date><time>%s</time><personref person=\"person%d\"/><increase>%s</increase></bidder>"
    (date g) (time g) (Rng.int g.rng g.counts.people) (price g)

let open_auction g ~id =
  addf g "\n<open_auction id=\"open_auction%d\">" id;
  addf g "\n  <initial>%s</initial>" (price g);
  if Rng.chance g.rng 0.4 then addf g "<reserve>%s</reserve>" (price g);
  let nbid = Rng.int g.rng 6 in
  for _ = 1 to nbid do
    bidder g
  done;
  addf g "\n  <current>%s</current>" (price g);
  if Rng.chance g.rng 0.3 then add g "<privacy>Yes</privacy>";
  addf g "\n  <itemref item=\"item%d\"/>" (Rng.int g.rng (total_items g));
  addf g "\n  <seller person=\"person%d\"/>" (Rng.int g.rng g.counts.people);
  annotation g;
  addf g "<quantity>%d</quantity>" (1 + Rng.int g.rng 5);
  addf g "<type>%s</type>" (if Rng.bool g.rng then "Regular" else "Featured");
  addf g "<interval><start>%s</start><end>%s</end></interval>" (date g) (date g);
  add g "</open_auction>"

let closed_auction g =
  add g "\n<closed_auction>";
  addf g "\n  <seller person=\"person%d\"/>" (Rng.int g.rng g.counts.people);
  addf g "<buyer person=\"person%d\"/>" (Rng.int g.rng g.counts.people);
  addf g "\n  <itemref item=\"item%d\"/>" (Rng.int g.rng (total_items g));
  addf g "\n  <price>%s</price>" (price g);
  addf g "<date>%s</date>" (date g);
  addf g "<quantity>%d</quantity>" (1 + Rng.int g.rng 5);
  addf g "<type>%s</type>" (if Rng.bool g.rng then "Regular" else "Featured");
  annotation g;
  add g "</closed_auction>"

let category g ~id =
  addf g "\n<category id=\"category%d\"><name>%s</name>" id (sentence g 2);
  description g;
  add g "</category>"

(** Generate an auction document of roughly [scale] megabytes. *)
let generate ?(seed = 42) ~scale () : string =
  let counts = counts_of_scale scale in
  let g = { rng = Rng.of_int seed; buf = Buffer.create (1 lsl 20); counts } in
  add g "<site>";
  add g "\n<regions>";
  let item_id = ref 0 in
  Array.iter
    (fun region ->
      addf g "<%s>" region;
      for _ = 1 to counts.items_per_region do
        item g ~id:!item_id;
        incr item_id
      done;
      addf g "</%s>" region)
    regions;
  add g "\n</regions>";
  add g "\n<categories>";
  for id = 0 to counts.categories - 1 do
    category g ~id
  done;
  add g "\n</categories>";
  add g "\n<catgraph>";
  for _ = 1 to counts.categories do
    addf g "<edge from=\"category%d\" to=\"category%d\"/>" (Rng.int g.rng counts.categories)
      (Rng.int g.rng counts.categories)
  done;
  add g "\n</catgraph>";
  add g "\n<people>";
  for id = 0 to counts.people - 1 do
    person g ~id
  done;
  add g "\n</people>";
  add g "\n<open_auctions>";
  for id = 0 to counts.open_auctions - 1 do
    open_auction g ~id
  done;
  add g "\n</open_auctions>";
  add g "\n<closed_auctions>";
  for _ = 1 to counts.closed_auctions do
    closed_auction g
  done;
  add g "\n</closed_auctions>";
  add g "</site>";
  Buffer.contents g.buf
