(* The XMark query set (Q1-Q20), expressed in the XQuery subset both
   engines parse. Queries involving XQuery features outside the subset
   are adapted minimally; each adaptation is noted. The [classes] field
   records the predicate classes a query exercises — the input the
   workload-driven compression chooser consumes (§3). *)

type query = {
  id : string;
  description : string;
  text : string;
  adapted : string option; (* what differs from the original XMark query *)
}

let q id ?adapted description text = { id; description; text; adapted }

let doc = "document(\"auction.xml\")"

let all : query list =
  [
    q "Q1" "exact match on person id"
      (Printf.sprintf
         "for $b in %s/site/people/person[@id = \"person0\"] return $b/name/text()" doc);
    q "Q2" "first bid of each open auction"
      (Printf.sprintf
         "for $b in %s/site/open_auctions/open_auction return <increase>{$b/bidder[1]/increase/text()}</increase>"
         doc);
    q "Q3"
      "auctions whose final increase is at least twice the first"
      (Printf.sprintf
         "for $b in %s/site/open_auctions/open_auction where exists($b/bidder) and $b/bidder[1]/increase/text() * 2 <= $b/bidder[last()]/increase/text() return <increase first=\"{$b/bidder[1]/increase/text()}\" last=\"{$b/bidder[last()]/increase/text()}\"/>"
         doc);
    q "Q4" "auctions a given person bid on"
      ~adapted:"existential bidder test instead of the before() ordering test"
      (Printf.sprintf
         "for $b in %s/site/open_auctions/open_auction where some $pr in $b/bidder/personref satisfies $pr/@person = \"person18\" return <history>{$b/initial/text()}</history>"
         doc);
    q "Q5" "count closed auctions above a price"
      (Printf.sprintf
         "count(for $i in %s/site/closed_auctions/closed_auction where $i/price/text() >= 40 return $i/price)"
         doc);
    q "Q6" "items per region (descendant axis)"
      (Printf.sprintf "for $b in %s/site/regions return count($b//item)" doc);
    q "Q7" "count pieces of prose"
      (Printf.sprintf
         "for $p in %s/site return count($p//description) + count($p//mail) + count($p//emailaddress)"
         doc);
    q "Q8" "items bought per person (value join)"
      (Printf.sprintf
         "for $p in %s/site/people/person let $a := for $t in %s/site/closed_auctions/closed_auction where $t/buyer/@person = $p/@id return $t return <item person=\"{$p/name/text()}\">{count($a)}</item>"
         doc doc);
    q "Q9" "items bought per person, with European item names (3-way join)"
      (Printf.sprintf
         "for $p in %s/site/people/person let $a := for $t in %s/site/closed_auctions/closed_auction, $t2 in %s/site/regions/europe/item where $t/itemref/@item = $t2/@id and $p/@id = $t/buyer/@person return <item>{$t2/name/text()}</item> return <person name=\"{$p/name/text()}\">{$a}</person>"
         doc doc doc)
      ~adapted:"inner double-FOR replaces the doubly nested FLWOR";
    q "Q10" "group people by interest category"
      (Printf.sprintf
         "for $i in distinct-values(%s/site/people/person/profile/interest/@category) let $p := for $t in %s/site/people/person where $t/profile/interest/@category = $i return <personne><statistiques><sexe>{$t/profile/gender/text()}</sexe><age>{$t/profile/age/text()}</age><education>{$t/profile/education/text()}</education><revenu>{$t/profile/@income}</revenu></statistiques><coordonnees><nom>{$t/name/text()}</nom><rue>{$t/address/street/text()}</rue><ville>{$t/address/city/text()}</ville><pays>{$t/address/country/text()}</pays><email>{$t/emailaddress/text()}</email></coordonnees></personne> return <categorie>{<id>{$i}</id>}{$p}</categorie>"
         doc doc);
    q "Q11" "initial prices a person's income can cover (inequality join)"
      (Printf.sprintf
         "for $p in %s/site/people/person let $l := for $i in %s/site/open_auctions/open_auction/initial where $p/profile/@income > 5000 * $i/text() return $i return <items name=\"{$p/name/text()}\">{count($l)}</items>"
         doc doc);
    q "Q12" "like Q11 restricted to high incomes"
      (Printf.sprintf
         "for $p in %s/site/people/person let $l := for $i in %s/site/open_auctions/open_auction/initial where $p/profile/@income > 5000 * $i/text() return $i where $p/profile/@income > 50000 return <items person=\"{$p/name/text()}\">{count($l)}</items>"
         doc doc);
    q "Q13" "names and descriptions of Australian items (reconstruction)"
      (Printf.sprintf
         "for $i in %s/site/regions/australia/item return <item name=\"{$i/name/text()}\">{$i/description}</item>"
         doc);
    q "Q14" "items whose description mentions gold (full-text)"
      (Printf.sprintf
         "for $i in %s/site//item where contains($i/description, \"gold\") return $i/name/text()"
         doc);
    q "Q15" "deeply nested keyword path"
      (Printf.sprintf
         "for $a in %s/site/closed_auctions/closed_auction/annotation/description/parlist/listitem/parlist/listitem/text/emph/keyword/text() return <text>{$a}</text>"
         doc);
    q "Q16" "auctions whose annotation has the deep keyword path"
      (Printf.sprintf
         "for $a in %s/site/closed_auctions/closed_auction where exists($a/annotation/description/parlist/listitem/parlist/listitem/text/emph/keyword/text()) return <person id=\"{$a/seller/@person}\"/>"
         doc);
    q "Q17" "people without a homepage"
      (Printf.sprintf
         "for $p in %s/site/people/person where empty($p/homepage/text()) return <person name=\"{$p/name/text()}\"/>"
         doc);
    q "Q18" "converted reserve prices"
      ~adapted:"the user-defined currency function is inlined"
      (Printf.sprintf
         "for $i in %s/site/open_auctions/open_auction/reserve return $i/text() * 2.2" doc);
    q "Q19" "items ordered by name"
      (Printf.sprintf
         "for $b in %s/site/regions//item let $k := $b/name/text() order by $k return <item name=\"{$k}\">{$b/location/text()}</item>"
         doc);
    q "Q20" "customers by income bracket"
      (Printf.sprintf
         "<result><preferred>{count(%s/site/people/person/profile[@income >= 100000])}</preferred><standard>{count(%s/site/people/person/profile[@income >= 30000][@income < 100000])}</standard><challenge>{count(%s/site/people/person/profile[@income < 30000])}</challenge><na>{count(for $p in %s/site/people/person where empty($p/profile/@income) return $p)}</na></result>"
         doc doc doc doc);
  ]

let by_id id = List.find (fun q -> String.equal q.id id) all

(** The Fig. 7 chart omits Q8/Q9 (reported separately in the text). *)
let fig7_ids =
  [ "Q1"; "Q2"; "Q3"; "Q4"; "Q5"; "Q6"; "Q7"; "Q10"; "Q11"; "Q12"; "Q13"; "Q14";
    "Q15"; "Q16"; "Q17"; "Q18"; "Q19"; "Q20" ]
