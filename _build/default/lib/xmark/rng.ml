(* Small deterministic PRNG (xorshift64-star) so generated documents are
   reproducible across runs and platforms. *)

type t = { mutable state : int64 }

let create ?(seed = 0x9E3779B97F4A7C15L) () =
  { state = (if seed = 0L then 1L else seed) }

let of_int seed = create ~seed:(Int64.of_int (seed lxor 0x5DEECE66D)) ()

let next (t : t) : int64 =
  let x = t.state in
  let x = Int64.logxor x (Int64.shift_left x 13) in
  let x = Int64.logxor x (Int64.shift_right_logical x 7) in
  let x = Int64.logxor x (Int64.shift_left x 17) in
  t.state <- x;
  Int64.mul x 0x2545F4914F6CDD1DL

(** Uniform int in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int";
  Int64.to_int (Int64.rem (Int64.logand (next t) Int64.max_int) (Int64.of_int bound))

let float t scale = float_of_int (int t 1_000_000) /. 1_000_000.0 *. scale

let bool t = int t 2 = 0

let chance t p = float t 1.0 < p

let pick t (arr : 'a array) = arr.(int t (Array.length arr))
