(* Word pools for synthetic text. xmlgen fills auction descriptions with
   Shakespeare vocabulary; we do the same with a fixed sample, so the
   compressibility profile (skewed word frequencies, shared stems)
   matches the paper's data. *)

let shakespeare =
  [|
    "the"; "and"; "to"; "of"; "i"; "you"; "my"; "that"; "in"; "a"; "is"; "not";
    "me"; "it"; "with"; "be"; "his"; "your"; "this"; "but"; "he"; "have"; "as";
    "thou"; "him"; "so"; "will"; "what"; "thy"; "all"; "her"; "no"; "by"; "do";
    "shall"; "if"; "are"; "we"; "thee"; "on"; "lord"; "our"; "king"; "good";
    "now"; "sir"; "from"; "come"; "at"; "they"; "she"; "or"; "here"; "let";
    "would"; "more"; "was"; "well"; "then"; "love"; "man"; "hath"; "which";
    "there"; "than"; "am"; "how"; "like"; "their"; "may"; "upon"; "make";
    "such"; "us"; "when"; "one"; "them"; "yet"; "must"; "say"; "out"; "who";
    "did"; "should"; "go"; "see"; "can"; "know"; "were"; "enter"; "give";
    "o"; "take"; "speak"; "some"; "death"; "night"; "day"; "time"; "heart";
    "father"; "most"; "why"; "never"; "where"; "these"; "had"; "heaven";
    "therefore"; "madam"; "exeunt"; "honour"; "majesty"; "gracious";
    "gentleman"; "daughter"; "mistress"; "gold"; "purse"; "duke"; "crown";
  |]

let first_names =
  [|
    "Alba"; "Bruno"; "Carmen"; "Dieter"; "Elena"; "Farid"; "Greta"; "Hakim";
    "Ines"; "Jurgen"; "Keiko"; "Luigi"; "Marta"; "Nils"; "Olga"; "Pavel";
    "Quentin"; "Rosa"; "Sven"; "Tamar"; "Ulrich"; "Vera"; "Walid"; "Xenia";
    "Yusuf"; "Zelda"; "Andrei"; "Beatriz"; "Cosimo"; "Dalia";
  |]

let last_names =
  [|
    "Abel"; "Bauer"; "Costa"; "Duarte"; "Engel"; "Ferrari"; "Gomez"; "Huber";
    "Ito"; "Jensen"; "Keller"; "Lopez"; "Meyer"; "Novak"; "Olsen"; "Petrov";
    "Quaranta"; "Rossi"; "Schmidt"; "Tanaka"; "Ueda"; "Vogel"; "Weber";
    "Xu"; "Yamada"; "Zhang"; "Arion"; "Bonifati"; "Manolescu"; "Pugliese";
  |]

let cities =
  [|
    "Paris"; "Rome"; "Berlin"; "Madrid"; "Lisbon"; "Vienna"; "Prague";
    "Warsaw"; "Athens"; "Dublin"; "Oslo"; "Helsinki"; "Tokyo"; "Osaka";
    "Sydney"; "Toronto"; "Boston"; "Seattle"; "Austin"; "Denver";
  |]

let countries =
  [|
    "United States"; "Germany"; "France"; "Italy"; "Spain"; "Japan";
    "Australia"; "Canada"; "Norway"; "Poland";
  |]

let streets =
  [| "Oak"; "Maple"; "Cedar"; "Pine"; "Elm"; "Birch"; "Willow"; "Chestnut" |]

let education =
  [| "High School"; "College"; "Graduate School"; "Other" |]

let item_adjectives =
  [|
    "great"; "pristine"; "rare"; "vintage"; "golden"; "antique"; "broken";
    "huge"; "tiny"; "special"; "ordinary"; "magnificent";
  |]

let item_nouns =
  [|
    "chair"; "table"; "painting"; "vase"; "clock"; "ring"; "book"; "lamp";
    "mirror"; "carpet"; "statue"; "coin"; "stamp"; "guitar"; "camera";
  |]
