(** Synthetic stand-ins for the real-life corpora of Table 1 /
    Fig. 6-left, matching each original's structural profile. *)

val shakespeare : ?seed:int -> scale:float -> unit -> string

val course : ?seed:int -> scale:float -> unit -> string

val baseball : ?seed:int -> scale:float -> unit -> string

type dataset = { name : string; xml : string }

val real_life_corpus : unit -> dataset list
