lib/xmark/queries.mli:
