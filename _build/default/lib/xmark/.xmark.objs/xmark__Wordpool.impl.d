lib/xmark/wordpool.ml:
