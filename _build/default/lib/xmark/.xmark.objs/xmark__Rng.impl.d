lib/xmark/rng.ml: Array Int64
