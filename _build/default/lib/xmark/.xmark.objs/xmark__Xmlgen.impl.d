lib/xmark/xmlgen.ml: Array Buffer List Printf Rng String Wordpool
