lib/xmark/queries.ml: List Printf String
