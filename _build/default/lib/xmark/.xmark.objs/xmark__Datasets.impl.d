lib/xmark/datasets.ml: Buffer List Printf Rng String Wordpool
