lib/xmark/datasets.mli:
