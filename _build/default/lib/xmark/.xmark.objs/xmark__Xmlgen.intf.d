lib/xmark/xmlgen.mli:
