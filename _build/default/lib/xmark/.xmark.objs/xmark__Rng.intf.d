lib/xmark/rng.mli:
