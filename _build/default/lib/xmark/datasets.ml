(* Stand-ins for the real-life corpora of Table 1 / Fig. 6-left:
   Shakespeare.xml (text-heavy drama markup), Washington-Course.xml
   (short structured records) and Baseball.xml (numeric statistics).
   Each generator mirrors the structural profile that drives the
   compression-factor comparison: text/markup ratio, value types, and
   repetitiveness. *)

let shakespeare ?(seed = 7) ~scale () : string =
  let rng = Rng.of_int seed in
  let buf = Buffer.create (1 lsl 18) in
  let add = Buffer.add_string buf in
  let addf fmt = Printf.ksprintf add fmt in
  let line () =
    String.concat " "
      (List.init (4 + Rng.int rng 8) (fun _ -> Rng.pick rng Wordpool.shakespeare))
  in
  let n_acts = max 1 (int_of_float (6.0 *. scale)) in
  add "<PLAY>";
  addf "<TITLE>The Tragedie of %s</TITLE>" (Rng.pick rng Wordpool.first_names);
  for act = 1 to n_acts do
    addf "<ACT><TITLE>ACT %d</TITLE>" act;
    for scene = 1 to 5 do
      addf "<SCENE><TITLE>SCENE %d. %s.</TITLE>" scene (Rng.pick rng Wordpool.cities);
      for _ = 1 to 14 do
        addf "<SPEECH><SPEAKER>%s</SPEAKER>"
          (String.uppercase_ascii (Rng.pick rng Wordpool.first_names));
        for _ = 1 to 2 + Rng.int rng 5 do
          addf "<LINE>%s</LINE>" (line ())
        done;
        add "</SPEECH>"
      done;
      if Rng.chance rng 0.3 then addf "<STAGEDIR>Exeunt %s</STAGEDIR>" (line ());
      add "</SCENE>"
    done;
    add "</ACT>"
  done;
  add "</PLAY>";
  Buffer.contents buf

let course ?(seed = 11) ~scale () : string =
  let rng = Rng.of_int seed in
  let buf = Buffer.create (1 lsl 18) in
  let add = Buffer.add_string buf in
  let addf fmt = Printf.ksprintf add fmt in
  let depts = [| "CSE"; "MATH"; "PHYS"; "CHEM"; "BIOL"; "HIST"; "ECON"; "PSYCH" |] in
  let titles =
    [|
      "Introduction to Programming"; "Data Structures"; "Algorithms";
      "Database Systems"; "Operating Systems"; "Linear Algebra"; "Calculus";
      "Organic Chemistry"; "World History"; "Microeconomics"; "Statistics";
    |]
  in
  let n = max 10 (int_of_float (900.0 *. scale)) in
  add "<root>";
  for i = 0 to n - 1 do
    addf
      "<course_listing reg_num=\"%05d\"><code>%s %d</code><title>%s</title><credits>%d</credits><days>%s</days><place><building>%s</building><room>%d</room></place><instructor>%s %s</instructor><enrollment cap=\"%d\" enrolled=\"%d\"/></course_listing>"
      (10000 + i) (Rng.pick rng depts)
      (100 + Rng.int rng 499)
      (Rng.pick rng titles)
      (1 + Rng.int rng 5)
      (if Rng.bool rng then "MWF" else "TTh")
      (Rng.pick rng Wordpool.streets)
      (100 + Rng.int rng 400)
      (Rng.pick rng Wordpool.first_names)
      (Rng.pick rng Wordpool.last_names)
      (20 + Rng.int rng 200)
      (Rng.int rng 200)
  done;
  add "</root>";
  Buffer.contents buf

let baseball ?(seed = 13) ~scale () : string =
  let rng = Rng.of_int seed in
  let buf = Buffer.create (1 lsl 18) in
  let add = Buffer.add_string buf in
  let addf fmt = Printf.ksprintf add fmt in
  let n_teams = max 2 (int_of_float (28.0 *. scale)) in
  add "<SEASON><YEAR>1998</YEAR>";
  for league = 1 to 2 do
    addf "<LEAGUE><LEAGUE_NAME>%s</LEAGUE_NAME>"
      (if league = 1 then "National League" else "American League");
    for t = 0 to (n_teams / 2) - 1 do
      addf "<TEAM><TEAM_CITY>%s</TEAM_CITY><TEAM_NAME>%ss</TEAM_NAME>"
        (Rng.pick rng Wordpool.cities)
        (Rng.pick rng Wordpool.item_nouns);
      ignore t;
      for _ = 1 to 25 do
        addf
          "<PLAYER><SURNAME>%s</SURNAME><GIVEN_NAME>%s</GIVEN_NAME><POSITION>%s</POSITION><GAMES>%d</GAMES><AT_BATS>%d</AT_BATS><RUNS>%d</RUNS><HITS>%d</HITS><DOUBLES>%d</DOUBLES><TRIPLES>%d</TRIPLES><HOME_RUNS>%d</HOME_RUNS><RBI>%d</RBI><STEALS>%d</STEALS><WALKS>%d</WALKS><STRIKE_OUTS>%d</STRIKE_OUTS></PLAYER>"
          (Rng.pick rng Wordpool.last_names)
          (Rng.pick rng Wordpool.first_names)
          (Rng.pick rng [| "First Base"; "Catcher"; "Pitcher"; "Outfield"; "Shortstop" |])
          (Rng.int rng 162) (Rng.int rng 600) (Rng.int rng 120) (Rng.int rng 200)
          (Rng.int rng 45) (Rng.int rng 12) (Rng.int rng 50) (Rng.int rng 140)
          (Rng.int rng 40) (Rng.int rng 110) (Rng.int rng 160)
      done;
      add "</TEAM>"
    done;
    add "</LEAGUE>"
  done;
  add "</SEASON>";
  Buffer.contents buf

type dataset = { name : string; xml : string }

(** The Fig. 6-left corpus at sizes comparable (scaled down) to Table 1. *)
let real_life_corpus () : dataset list =
  [
    { name = "shakespeare"; xml = shakespeare ~scale:1.5 () };
    { name = "washington-course"; xml = course ~scale:1.5 () };
    { name = "baseball"; xml = baseball ~scale:1.0 () };
  ]
