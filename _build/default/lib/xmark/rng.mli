(** Deterministic PRNG (xorshift64-star) for reproducible documents. *)

type t

val create : ?seed:int64 -> unit -> t

val of_int : int -> t

val next : t -> int64

(** Uniform int in [0, bound). *)
val int : t -> int -> int

val float : t -> float -> float

val bool : t -> bool

val chance : t -> float -> bool

val pick : t -> 'a array -> 'a
