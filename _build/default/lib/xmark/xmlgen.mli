(** XMark-like auction document generator (the xmlgen stand-in):
    reproduces the paper's Fig. 1 schema — regions/items, categories,
    people, open and closed auctions, IDREF links, Shakespeare-vocabulary
    descriptions including the nested parlist paths of Q15/Q16.
    [scale] is roughly megabytes of output. *)

type counts = {
  items_per_region : int;
  people : int;
  open_auctions : int;
  closed_auctions : int;
  categories : int;
}

val regions : string array

val counts_of_scale : float -> counts

val generate : ?seed:int -> scale:float -> unit -> string
