(** The XMark query set (Q1-Q20) in the XQuery subset; adaptations from
    the originals are recorded per query. *)

type query = {
  id : string;
  description : string;
  text : string;
  adapted : string option;
}

val all : query list

(** Raises [Not_found] on an unknown id. *)
val by_id : string -> query

(** The Fig. 7 chart set (Q8/Q9 are reported separately). *)
val fig7_ids : string list
