(* Hand-built physical plans, in the spirit of the paper's Fig. 5: the
   XMark Q9 execution plan that joins persons, buyers and European items
   entirely on compressed attributes, with Decompress at the very top.
   Used by the examples and the ablation benchmarks (the paper's own
   measurements also used hand-chosen plans). *)

open Storage

let find_container repo path =
  match Repository.find_container_by_path repo path with
  | Some c -> c.Container.id
  | None -> invalid_arg ("no container for path " ^ path)

(** Fig. 5: Q9's three-way join.

    person/@id  ⋈  buyer/@person      (merge join on compressed codes when
    itemref/@item ⋈ europe/item/@id    both pairs share a source model,
                                       hash join otherwise)
    then Parent/Child steps fetch each person's name and each item's name
    via TextContent, and only those two columns are decompressed. *)
let q9 (repo : Repository.t) : (string * string) list =
  let person_id = find_container repo "/site/people/person/@id" in
  let buyer_person = find_container repo "/site/closed_auctions/closed_auction/buyer/@person" in
  let itemref_item = find_container repo "/site/closed_auctions/closed_auction/itemref/@item" in
  let europe_item_id = find_container repo "/site/regions/europe/item/@id" in
  let person_name = find_container repo "/site/people/person/name/#text" in
  let item_name = find_container repo "/site/regions/europe/item/name/#text" in
  let same_model a b =
    (Repository.container repo a).Container.model_id
    = (Repository.container repo b).Container.model_id
  in
  let join l ~lcol r ~rcol ~shared =
    (* compressed-domain merge join when the containers share a source
       model (ContScan order = value order on both sides); otherwise a
       hash join keyed on decompressed strings *)
    if shared then Physical.merge_join l ~lcol r ~rcol
    else
      Physical.hash_join
        ~key:(fun it ->
          match it with
          | Executor.Cval { cont; code } -> Compress.Codec.decompress cont.Container.model code
          | Executor.Str s -> s
          | _ -> invalid_arg "bad join key")
        l ~lcol r ~rcol
  in
  (* buyers(person_code, closed_auction-buyer node) x persons *)
  let persons = Physical.cont_scan repo person_id in
  let buyers = Physical.cont_scan repo buyer_person in
  let pb =
    join persons ~lcol:0 buyers ~rcol:0 ~shared:(same_model person_id buyer_person)
    (* cols: 0 person-id code, 1 @id attr node, 2 buyer code, 3 buyer attr node *)
  in
  (* attach the closed_auction element: parent of the buyer attr node is
     the buyer element, whose parent is the closed_auction *)
  let pb = Physical.parent repo pb ~col:3 in (* 4: buyer element *)
  let pb = Physical.parent repo pb ~col:4 in (* 5: closed_auction *)
  (* itemrefs of those closed_auctions: child itemref, then its @item value *)
  let itemrefs = Physical.cont_scan repo itemref_item in (* 0: code, 1: @item attr node *)
  let items = Physical.cont_scan repo europe_item_id in (* 0: code, 1: @id attr node *)
  let ii =
    join itemrefs ~lcol:0 items ~rcol:0 ~shared:(same_model itemref_item europe_item_id)
    (* 0 itemref code, 1 @item node, 2 item-id code, 3 @id node *)
  in
  let ii = Physical.parent repo ii ~col:1 in (* 4: itemref element *)
  let ii = Physical.parent repo ii ~col:4 in (* 5: closed_auction *)
  let ii = Physical.parent repo ii ~col:3 in (* 6: europe item element *)
  (* join the two halves on the closed_auction node id *)
  let node_key = function
    | Executor.Node id -> string_of_int id
    | _ -> invalid_arg "bad node key"
  in
  let joined = Physical.hash_join ~key:node_key pb ~lcol:5 ii ~rcol:5 in
  (* pb: 0..5 ; ii at offset 6: item element at col 6+6=12 *)
  (* person element: parent of @id attr node (col 1); then Child steps
     down to the name elements whose text containers hold the names *)
  let joined = Physical.parent repo joined ~col:1 in (* 13: person element *)
  let joined = Physical.child repo ~tag:"name" joined ~col:13 in (* 14: person/name *)
  let joined = Physical.child repo ~tag:"name" joined ~col:12 in (* 15: item/name *)
  let with_pname = Physical.text_content repo [ person_name ] joined ~col:14 in (* 16 *)
  let with_iname = Physical.text_content repo [ item_name ] with_pname ~col:15 in (* 17 *)
  (* Decompress only at the very top, then serialize *)
  let final = Physical.decompress repo (Physical.decompress repo with_iname ~col:16) ~col:17 in
  Physical.run final
  |> List.map (fun tup ->
         let s = function Executor.Str s -> s | _ -> "" in
         (s tup.(16), s tup.(17)))

(** The same result computed naively (nested loops over uncompressed
    values) — the comparison point for the late-decompression ablation. *)
let q9_naive (repo : Repository.t) : (string * string) list =
  let dump path =
    Container.dump (Repository.container repo (find_container repo path))
  in
  let persons = dump "/site/people/person/@id" in
  let buyers = dump "/site/closed_auctions/closed_auction/buyer/@person" in
  let itemrefs = dump "/site/closed_auctions/closed_auction/itemref/@item" in
  let items = dump "/site/regions/europe/item/@id" in
  let tree = repo.Repository.tree in
  let auction_of attr_node = Structure_tree.parent tree (Structure_tree.parent tree attr_node) in
  let name_tag = Option.get (Name_dict.code repo.Repository.dict "name") in
  let text_of path node =
    (* node is the person/item element; its name child holds the text *)
    let name_elems = Structure_tree.children_with_tag tree node name_tag in
    let cid = find_container repo path in
    let cont = Repository.container repo cid in
    Array.to_list (Container.scan cont)
    |> List.filter_map (fun (r : Container.record) ->
           if List.mem r.Container.parent name_elems then
             Some (Container.decompress_record cont r)
           else None)
    |> String.concat ""
  in
  List.concat_map
    (fun (pid, pnode) ->
      List.concat_map
        (fun (bid, bnode) ->
          if String.equal pid bid then begin
            let auction = auction_of bnode in
            List.concat_map
              (fun (iref, irnode) ->
                if auction_of irnode = auction then
                  List.filter_map
                    (fun (iid, idnode) ->
                      if String.equal iref iid then begin
                        let item = Structure_tree.parent tree idnode in
                        let person = Structure_tree.parent tree pnode in
                        Some
                          ( text_of "/site/people/person/name/#text" person,
                            text_of "/site/regions/europe/item/name/#text" item )
                      end
                      else None)
                    items
                else [])
              itemrefs
          end
          else [])
        buyers)
    persons
