(** Physical algebra (§4): the paper's operator set as explicit
    tuple-stream combinators — data access (ContScan, ContAccess,
    StructureSummaryAccess, Parent, Child, TextContent), data
    combination (selections, merge/hash/nested-loop joins, sort), and
    the compression-aware Decompress / XMLSerialize. ContScan order is
    value order (containers are sorted), which is what makes the 1-pass
    merge join valid. *)

open Storage

type item = Executor.item

type tuple = item array

type plan = { width : int; run : unit -> tuple Seq.t }

val run : plan -> tuple list

val cardinality : plan -> int

val cont_scan : Repository.t -> int -> plan

val cont_access_eq : Repository.t -> int -> value:string -> plan

val cont_access_range : Repository.t -> int -> ?lo:string -> ?hi:string -> unit -> plan

val summary_access : Repository.t -> Summary.step list -> plan

val child : Repository.t -> tag:string -> plan -> col:int -> plan

val parent : Repository.t -> plan -> col:int -> plan

(** Hash join pairing element ids with their immediate text values. *)
val text_content : Repository.t -> int list -> plan -> col:int -> plan

val select : (tuple -> bool) -> plan -> plan

val project : int list -> plan -> plan

(** 1-pass merge join on compressed codes; inputs must be sorted on
    their join columns (ContScan order) and share a source model. *)
val merge_join : plan -> lcol:int -> plan -> rcol:int -> plan

val hash_join : ?key:(item -> string) -> plan -> lcol:int -> plan -> rcol:int -> plan

val nl_join : (tuple -> tuple -> bool) -> plan -> plan -> plan

val sort : (item -> item -> int) -> col:int -> plan -> plan

(** Decompress a column (Cval -> Str); placed as late as possible. *)
val decompress : Repository.t -> plan -> col:int -> plan

val xml_serialize : Repository.t -> plan -> col:int -> string
