(* Physical algebra (§4): the operator set of the XQueC query engine,
   as explicit tuple-stream combinators.

   Three operator classes, as in the paper:
   - data access: ContScan, ContAccess, StructureSummaryAccess, Parent,
     Child, TextContent;
   - data combination: selections, merge / hash / nested-loop joins;
   - compression-aware: Decompress (and compressed constants are produced
     by {!Storage.Container.compress_constant}).

   ContScan / ContAccess deliver tuples in *data order* (containers are
   value-sorted, §2.2), which is what enables 1-pass merge joins;
   StructureSummaryAccess / Child / Parent preserve *document order*.
   The executor uses the same access paths internally; this module makes
   plans first-class so they can be built by hand (the paper's own
   experiments used hand-chosen plans — its optimizer was "not finalized")
   and costed by the ablation benchmarks. *)

open Storage

type item = Executor.item

type tuple = item array

(** A plan produces a fresh tuple stream on each [run]. *)
type plan = { width : int; run : unit -> tuple Seq.t }

let run (p : plan) : tuple list = List.of_seq (p.run ())

let cardinality (p : plan) : int = Seq.fold_left (fun n _ -> n + 1) 0 (p.run ())

(* ------------------------------------------------------------------ *)
(* Data access                                                         *)
(* ------------------------------------------------------------------ *)

(** ContScan: all (value, parent) records of a container, in compressed-
    value order. *)
let cont_scan (repo : Repository.t) (cid : int) : plan =
  let cont = repo.Repository.containers.(cid) in
  {
    width = 2;
    run =
      (fun () ->
        Array.to_seq (Container.scan cont)
        |> Seq.map (fun (r : Container.record) ->
               [| Executor.Cval { cont; code = r.Container.code }; Executor.Node r.Container.parent |]));
  }

(** ContAccess: records matching an equality criterion on the compressed
    constant (binary search). *)
let cont_access_eq (repo : Repository.t) (cid : int) ~(value : string) : plan =
  let cont = repo.Repository.containers.(cid) in
  {
    width = 2;
    run =
      (fun () ->
        let code = Container.compress_constant cont value in
        List.to_seq (Container.lookup_eq cont code)
        |> Seq.map (fun (r : Container.record) ->
               [| Executor.Cval { cont; code = r.Container.code }; Executor.Node r.Container.parent |]));
  }

(** ContAccess with an interval criterion (order-preserving codecs). *)
let cont_access_range (repo : Repository.t) (cid : int) ?(lo : string option)
    ?(hi : string option) () : plan =
  let cont = repo.Repository.containers.(cid) in
  {
    width = 2;
    run =
      (fun () ->
        let lo = Option.map (Container.compress_constant cont) lo in
        let hi = Option.map (Container.compress_constant cont) hi in
        List.to_seq (Container.lookup_range cont ?lo ?hi ())
        |> Seq.map (fun (r : Container.record) ->
               [| Executor.Cval { cont; code = r.Container.code }; Executor.Node r.Container.parent |]));
  }

(** StructureSummaryAccess: element ids reachable by a path, in document
    order, straight from the summary — no structure-tree parse. *)
let summary_access (repo : Repository.t) (steps : Summary.step list) : plan =
  {
    width = 1;
    run =
      (fun () ->
        let snodes = Summary.match_steps repo.Repository.summary steps in
        Array.to_seq (Summary.merged_ids snodes) |> Seq.map (fun id -> [| Executor.Node id |]));
  }

let node_exn = function
  | Executor.Node id -> id
  | _ -> invalid_arg "expected a node column"

(** Child: append the children (with a given tag) of column [col];
    order-preserving with respect to the input. *)
let child (repo : Repository.t) ~(tag : string) (input : plan) ~(col : int) : plan =
  let code = Name_dict.code repo.Repository.dict tag in
  {
    width = input.width + 1;
    run =
      (fun () ->
        input.run ()
        |> Seq.concat_map (fun tup ->
               match code with
               | None -> Seq.empty
               | Some code ->
                 Structure_tree.children_with_tag repo.Repository.tree (node_exn tup.(col)) code
                 |> List.to_seq
                 |> Seq.map (fun c -> Array.append tup [| Executor.Node c |])));
  }

(** Parent: append the parent of column [col]; order-preserving. *)
let parent (repo : Repository.t) (input : plan) ~(col : int) : plan =
  {
    width = input.width + 1;
    run =
      (fun () ->
        input.run ()
        |> Seq.filter_map (fun tup ->
               let p = Structure_tree.parent repo.Repository.tree (node_exn tup.(col)) in
               if p < 0 then None else Some (Array.append tup [| Executor.Node p |])));
  }

(** TextContent: pair element ids in [col] with their immediate text
    values — implemented as a hash join against a ContScan, as in §4. *)
let text_content (repo : Repository.t) (cids : int list) (input : plan) ~(col : int) : plan =
  {
    width = input.width + 1;
    run =
      (fun () ->
        let table : (int, item list) Hashtbl.t = Hashtbl.create 1024 in
        List.iter
          (fun cid ->
            let cont = repo.Repository.containers.(cid) in
            Array.iter
              (fun (r : Container.record) ->
                let prev = Option.value ~default:[] (Hashtbl.find_opt table r.Container.parent) in
                Hashtbl.replace table r.Container.parent
                  (Executor.Cval { cont; code = r.Container.code } :: prev))
              (Container.scan cont))
          cids;
        input.run ()
        |> Seq.concat_map (fun tup ->
               match Hashtbl.find_opt table (node_exn tup.(col)) with
               | Some values ->
                 List.to_seq (List.rev values)
                 |> Seq.map (fun v -> Array.append tup [| v |])
               | None -> Seq.empty));
  }

(* ------------------------------------------------------------------ *)
(* Data combination                                                    *)
(* ------------------------------------------------------------------ *)

let select (pred : tuple -> bool) (input : plan) : plan =
  { width = input.width; run = (fun () -> Seq.filter pred (input.run ())) }

let project (cols : int list) (input : plan) : plan =
  let cols = Array.of_list cols in
  {
    width = Array.length cols;
    run = (fun () -> Seq.map (fun tup -> Array.map (fun c -> tup.(c)) cols) (input.run ()));
  }

let key_code = function
  | Executor.Cval { code; _ } -> code
  | Executor.Att (_, Executor.Cval { code; _ }) -> code
  | _ -> invalid_arg "expected a compressed-value column"

(** MergeJoin on compressed codes: both inputs must be sorted on their
    join column (ContScan order). 1-pass, no decompression. *)
let merge_join (left : plan) ~(lcol : int) (right : plan) ~(rcol : int) : plan =
  {
    width = left.width + right.width;
    run =
      (fun () ->
        (* materialize the smaller side groups lazily is overkill here:
           classic sorted-merge with group buffering on the right *)
        let ls = Array.of_seq (left.run ()) in
        let rs = Array.of_seq (right.run ()) in
        let out = ref [] in
        let i = ref 0 and j = ref 0 in
        while !i < Array.length ls && !j < Array.length rs do
          let lk = key_code ls.(!i).(lcol) and rk = key_code rs.(!j).(rcol) in
          let c = String.compare lk rk in
          if c < 0 then incr i
          else if c > 0 then incr j
          else begin
            (* emit the group product *)
            let j0 = !j in
            let rec last k =
              if k < Array.length rs && String.equal (key_code rs.(k).(rcol)) lk then last (k + 1)
              else k
            in
            let j1 = last j0 in
            let rec emit_l k =
              if k < Array.length ls && String.equal (key_code ls.(k).(lcol)) lk then begin
                for jj = j0 to j1 - 1 do
                  out := Array.append ls.(k) rs.(jj) :: !out
                done;
                emit_l (k + 1)
              end
              else k
            in
            i := emit_l !i;
            j := j1
          end
        done;
        List.to_seq (List.rev !out));
  }

(** HashJoin on compressed codes (or any item key via [key]). *)
let hash_join ?(key = key_code) (left : plan) ~(lcol : int) (right : plan) ~(rcol : int) : plan
    =
  {
    width = left.width + right.width;
    run =
      (fun () ->
        let table : (string, tuple list) Hashtbl.t = Hashtbl.create 1024 in
        Seq.iter
          (fun tup ->
            let k = key tup.(rcol) in
            Hashtbl.replace table k
              (tup :: Option.value ~default:[] (Hashtbl.find_opt table k)))
          (right.run ());
        left.run ()
        |> Seq.concat_map (fun ltup ->
               match Hashtbl.find_opt table (key ltup.(lcol)) with
               | Some rtups ->
                 List.to_seq (List.rev rtups) |> Seq.map (fun rtup -> Array.append ltup rtup)
               | None -> Seq.empty));
  }

(** Nested-loop join (arbitrary predicate) — the fallback operator. *)
let nl_join (pred : tuple -> tuple -> bool) (left : plan) (right : plan) : plan =
  {
    width = left.width + right.width;
    run =
      (fun () ->
        let rs = List.of_seq (right.run ()) in
        left.run ()
        |> Seq.concat_map (fun ltup ->
               List.to_seq rs
               |> Seq.filter_map (fun rtup ->
                      if pred ltup rtup then Some (Array.append ltup rtup) else None)));
  }

(** Sort on a column with an item comparison. *)
let sort (cmp : item -> item -> int) ~(col : int) (input : plan) : plan =
  {
    width = input.width;
    run =
      (fun () ->
        let arr = Array.of_seq (input.run ()) in
        Array.stable_sort (fun a b -> cmp a.(col) b.(col)) arr;
        Array.to_seq arr);
  }

(* ------------------------------------------------------------------ *)
(* Compression-aware operators                                         *)
(* ------------------------------------------------------------------ *)

(** Decompress a column: Cval -> Str. Placed as late as possible in
    plans (Fig. 5 decompresses only the two name columns, at the top). *)
let decompress (repo : Repository.t) (input : plan) ~(col : int) : plan =
  ignore repo;
  {
    width = input.width;
    run =
      (fun () ->
        input.run ()
        |> Seq.map (fun tup ->
               let tup = Array.copy tup in
               (match tup.(col) with
               | Executor.Cval { cont; code } ->
                 tup.(col) <- Executor.Str (Compress.Codec.decompress cont.Container.model code)
               | _ -> ());
               tup));
  }

(** XMLSerialize: render one column of every tuple. *)
let xml_serialize (repo : Repository.t) (input : plan) ~(col : int) : string =
  let items = List.of_seq (Seq.map (fun tup -> tup.(col)) (input.run ())) in
  Executor.serialize repo items
