(** Static analysis over XQuery expressions: free variables, conjunct
    splitting, join-predicate detection — the basis of the executor's
    join and decorrelation planning. *)

module Sset : Set.S with type elt = string

val free_vars : Xquery.Ast.expr -> Sset.t

val conjuncts : Xquery.Ast.expr -> Xquery.Ast.expr list

val conjoin : Xquery.Ast.expr list -> Xquery.Ast.expr option

(** A comparison usable as a join between [left_vars] and [right_vars]
    (either may also mention [outer] variables); the result is oriented
    left-side-first, flipping the operator if needed. *)
val join_conjunct :
  left_vars:Sset.t ->
  right_vars:Sset.t ->
  outer:Sset.t ->
  Xquery.Ast.expr ->
  (Xquery.Ast.cmp_op * Xquery.Ast.expr * Xquery.Ast.expr) option

val mentions : Sset.t -> Xquery.Ast.expr -> bool
