(** Cost model for compression configurations (§3.2): a weighted sum of
    measured container storage, source-model storage, and the
    decompression the workload would incur (the section's three cases:
    different algorithms / different source models / unsupported
    predicate class). *)

open Storage

type configuration = { sets : (int list * Compress.Codec.algorithm) list }

type weights = { w_storage : float; w_model : float; w_decompression : float }

val default_weights : weights

type t

val create : ?weights:weights -> Repository.t -> Workload.t -> t

(** (storage cost, model cost) estimate for one partition set, measured
    on samples under a model trained on the merged sample; infinite when
    the algorithm cannot represent the values. *)
val estimate_set : t -> int list -> Compress.Codec.algorithm -> float * float

(** 0 when the predicate runs in the compressed domain under the
    configuration, else record counts weighted by d_c. *)
val predicate_cost : t -> configuration -> Workload.predicate -> float

val cost : t -> configuration -> float

type cost_breakdown = { storage : float; model : float; decompression : float; total : float }

val breakdown : t -> configuration -> cost_breakdown
