(* Static analysis over XQuery expressions: free variables, conjunct
   splitting and join-predicate detection. The executor's optimizer uses
   these to (a) evaluate uncorrelated FOR/LET sources once, (b) turn
   cross-products + where into hash/merge joins, and (c) decorrelate
   nested FLWORs (the Q8/Q9 pattern). *)

open Xquery

module Sset = Set.Make (String)

let rec free_vars (e : Ast.expr) : Sset.t =
  match e with
  | Ast.Literal_string _ | Ast.Literal_number _ | Ast.Doc _ -> Sset.empty
  | Ast.Var v -> Sset.singleton v
  | Ast.Context -> Sset.singleton "."
  | Ast.Path (src, steps) ->
    List.fold_left
      (fun acc (st : Ast.step) ->
        List.fold_left
          (fun acc p ->
            match p with
            | Ast.Pos _ | Ast.Pos_last -> acc
            | Ast.Cond e ->
              (* "." inside the predicate is bound by the step itself *)
              Sset.union acc (Sset.remove "." (free_vars e)))
          acc st.Ast.predicates)
      (free_vars src) steps
  | Ast.Flwor (clauses, ret) ->
    let rec go bound acc = function
      | [] -> Sset.union acc (Sset.diff (free_vars ret) bound)
      | Ast.For (v, e) :: rest | Ast.Let (v, e) :: rest ->
        let acc = Sset.union acc (Sset.diff (free_vars e) bound) in
        go (Sset.add v bound) acc rest
      | Ast.Where e :: rest -> go bound (Sset.union acc (Sset.diff (free_vars e) bound)) rest
      | Ast.Order_by keys :: rest ->
        let acc =
          List.fold_left
            (fun acc (e, _) -> Sset.union acc (Sset.diff (free_vars e) bound))
            acc keys
        in
        go bound acc rest
    in
    go Sset.empty Sset.empty clauses
  | Ast.If (a, b, c) -> Sset.union (free_vars a) (Sset.union (free_vars b) (free_vars c))
  | Ast.Cmp (_, a, b)
  | Ast.Arith (_, a, b)
  | Ast.And (a, b)
  | Ast.Or (a, b)
  | Ast.Contains (a, b)
  | Ast.Starts_with (a, b) -> Sset.union (free_vars a) (free_vars b)
  | Ast.Ftcontains (a, _)
  | Ast.Not a
  | Ast.Aggregate (_, a)
  | Ast.Empty a
  | Ast.Exists a
  | Ast.Distinct_values a
  | Ast.String_of a
  | Ast.Number_of a
  | Ast.Name_of a -> free_vars a
  | Ast.Some_satisfies (v, e, c) | Ast.Every_satisfies (v, e, c) ->
    Sset.union (free_vars e) (Sset.remove v (free_vars c))
  | Ast.Element (_, attrs, kids) ->
    let from_attrs =
      List.fold_left
        (fun acc (_, v) ->
          match v with
          | Ast.Attr_string _ -> acc
          | Ast.Attr_expr e -> Sset.union acc (free_vars e))
        Sset.empty attrs
    in
    List.fold_left (fun acc k -> Sset.union acc (free_vars k)) from_attrs kids
  | Ast.Sequence es ->
    List.fold_left (fun acc e -> Sset.union acc (free_vars e)) Sset.empty es

(** Split a where-expression into its top-level conjuncts. *)
let rec conjuncts (e : Ast.expr) : Ast.expr list =
  match e with Ast.And (a, b) -> conjuncts a @ conjuncts b | e -> [ e ]

let conjoin = function
  | [] -> None
  | e :: rest -> Some (List.fold_left (fun acc c -> Ast.And (acc, c)) e rest)

(** A join conjunct [Cmp (op, a, b)] usable when one side depends only on
    [left_vars] (plus outer context) and the other only on [right_vars].
    Returns (op, left-side expr, right-side expr) with the sides oriented
    so the first depends on [left_vars]. *)
let join_conjunct ~(left_vars : Sset.t) ~(right_vars : Sset.t) ~(outer : Sset.t)
    (e : Ast.expr) : (Ast.cmp_op * Ast.expr * Ast.expr) option =
  match e with
  | Ast.Cmp (op, a, b) ->
    let fa = free_vars a and fb = free_vars b in
    let only vars outer s = (not (Sset.is_empty (Sset.inter s vars))) && Sset.subset s (Sset.union vars outer) in
    if only left_vars outer fa && only right_vars outer fb then Some (op, a, b)
    else if only left_vars outer fb && only right_vars outer fa then
      Some
        ( (match op with
          | Ast.Eq -> Ast.Eq
          | Ast.Neq -> Ast.Neq
          | Ast.Lt -> Ast.Gt
          | Ast.Le -> Ast.Ge
          | Ast.Gt -> Ast.Lt
          | Ast.Ge -> Ast.Le),
          b,
          a )
    else None
  | _ -> None

(** Does [e] mention any variable of [vars]? *)
let mentions vars e = not (Sset.is_empty (Sset.inter vars (free_vars e)))
