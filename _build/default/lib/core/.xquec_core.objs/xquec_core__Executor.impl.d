lib/core/executor.ml: Analysis Array Ast Buffer Compress Container Float Fmt Hashtbl List Name_dict Option Printf Repository Storage String Structure_tree Summary Xmlkit Xquery
