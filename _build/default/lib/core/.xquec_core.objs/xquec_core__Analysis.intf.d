lib/core/analysis.mli: Set Xquery
