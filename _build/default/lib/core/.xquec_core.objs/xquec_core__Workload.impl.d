lib/core/workload.ml: Array Ast Fmt List Name_dict Option Repository Storage String Summary Xquery
