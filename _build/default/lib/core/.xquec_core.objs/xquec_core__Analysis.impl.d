lib/core/analysis.ml: Ast List Set String Xquery
