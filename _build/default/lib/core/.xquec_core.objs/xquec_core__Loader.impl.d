lib/core/loader.ml: Array Buffer Compress Container Filename Hashtbl List Name_dict Option Repository Storage String Structure_tree Summary Sys Xmlkit
