lib/core/workload.mli: Format Repository Storage Summary Xquery
