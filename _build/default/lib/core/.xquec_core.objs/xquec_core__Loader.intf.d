lib/core/loader.mli: Compress Storage Xmlkit
