lib/core/partitioner.ml: Array Compress Container Cost_model Hashtbl List Repository Storage Structure_tree Workload Xquery
