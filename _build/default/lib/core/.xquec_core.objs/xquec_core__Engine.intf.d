lib/core/engine.mli: Executor Loader Partitioner Storage Xmlkit Xquery
