lib/core/cost_model.ml: Array Compress Container Float Hashtbl List Repository Storage String Workload
