lib/core/executor.mli: Container Repository Storage Summary Xmlkit Xquery
