lib/core/engine.ml: Executor List Loader Partitioner Repository Storage Xmlkit Xquery
