lib/core/plans.mli: Repository Storage
