lib/core/plans.ml: Array Compress Container Executor List Name_dict Option Physical Repository Storage String Structure_tree
