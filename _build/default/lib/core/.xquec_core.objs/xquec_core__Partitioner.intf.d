lib/core/partitioner.mli: Cost_model Repository Storage Workload Xquery
