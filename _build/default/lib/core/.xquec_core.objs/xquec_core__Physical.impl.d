lib/core/physical.ml: Array Compress Container Executor Hashtbl List Name_dict Option Repository Seq Storage String Structure_tree Summary
