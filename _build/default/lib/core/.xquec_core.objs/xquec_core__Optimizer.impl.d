lib/core/optimizer.ml: Analysis Ast Compress Container Executor Fmt List Repository Storage String Summary Xquery
