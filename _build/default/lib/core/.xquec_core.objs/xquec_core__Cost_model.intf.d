lib/core/cost_model.mli: Compress Repository Storage Workload
