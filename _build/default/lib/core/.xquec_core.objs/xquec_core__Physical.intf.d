lib/core/physical.mli: Executor Repository Seq Storage Summary
