lib/core/optimizer.mli: Format Repository Storage Xquery
