(** Loader / compressor (§1.1 module 1): one SAX pass shreds an XML
    document into the repository structures; values land in the
    container of their root-to-leaf path (projection "prepared in
    advance", §2.3). Numeric containers get the packed codec; strings
    default to ALM, the paper's no-workload choice. *)

type options = {
  default_string_algorithm : Compress.Codec.algorithm;
  detect_numeric : bool;
  spill_directory : string option;
      (** stage container values in spill files on secondary storage
          during parsing (the paper's §6 plan for very large documents);
          [None] keeps them in memory *)
}

val default_options : options

val load : ?options:options -> name:string -> string -> Storage.Repository.t

val load_document :
  ?options:options -> name:string -> Xmlkit.Tree.document -> Storage.Repository.t
