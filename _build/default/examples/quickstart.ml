(* Quickstart: compress an XML document and query it while compressed.

   Run with:  dune exec examples/quickstart.exe *)

let catalogue =
  {|<catalogue>
  <book isbn="0-201-53082-1" price="55.00">
    <title>Principles of Distributed Database Systems</title>
    <author>Ozsu</author><author>Valduriez</author>
    <topic>databases</topic>
  </book>
  <book isbn="0-262-03293-7" price="74.95">
    <title>Introduction to Algorithms</title>
    <author>Cormen</author><author>Leiserson</author>
    <topic>algorithms</topic>
  </book>
  <book isbn="0-13-110362-8" price="39.99">
    <title>The C Programming Language</title>
    <author>Kernighan</author><author>Ritchie</author>
    <topic>languages</topic>
  </book>
</catalogue>|}

let () =
  (* 1. Compress. Without a workload, strings get ALM (order-preserving)
     and numeric containers the packed codec. *)
  let engine = Xquec_core.Engine.load ~name:"catalogue.xml" catalogue in
  Fmt.pr "compressed %d bytes at compression factor %.1f%%@.@." (String.length catalogue)
    (100.0 *. Xquec_core.Engine.compression_factor engine);

  (* 2. Query in the compressed domain. The price comparison runs on
     packed numeric codes; only the returned titles are decompressed. *)
  let q =
    {|for $b in document("catalogue.xml")/catalogue/book
      where $b/@price < 60
      return <cheap title="{$b/title/text()}" price="{$b/@price}"/>|}
  in
  Fmt.pr "query:%s@.@." q;
  Fmt.pr "%s@.@." (Xquec_core.Engine.query_serialized engine q);

  (* 3. Aggregates never decompress: count touches only the summary. *)
  Fmt.pr "books: %s@."
    (Xquec_core.Engine.query_serialized engine "count(document(\"catalogue.xml\")//book)");
  Fmt.pr "authors: %s@."
    (Xquec_core.Engine.query_serialized engine "count(document(\"catalogue.xml\")//author)");

  (* 4. Round-trip: the repository reconstructs the document. *)
  let back = Xquec_core.Engine.to_xml engine in
  let same =
    Xmlkit.Tree.equal
      (Xmlkit.Parser.parse_string back).Xmlkit.Tree.root
      (Xmlkit.Parser.parse_string catalogue).Xmlkit.Tree.root
  in
  Fmt.pr "@.decompressed document tree-equal to the original: %b@." same
