(* Workload tuning: how the §3 cost model and greedy search choose
   compression configurations, on the paper's §3.3 example shape —
   textual containers under an inequality workload.

   Run with:  dune exec examples/workload_tuning.exe *)

open Xquec_core

let () =
  (* a corpus with three flavours of containers: prose sentences,
     person names, and dates (the §3.3 example) *)
  let rng = Xmark.Rng.of_int 99 in
  let sentence () =
    String.concat " "
      (List.init (8 + Xmark.Rng.int rng 10) (fun _ -> Xmark.Rng.pick rng Xmark.Wordpool.shakespeare))
  in
  let name () =
    Xmark.Rng.pick rng Xmark.Wordpool.first_names ^ " " ^ Xmark.Rng.pick rng Xmark.Wordpool.last_names
  in
  let date () =
    Printf.sprintf "2001-%02d-%02d" (1 + Xmark.Rng.int rng 12) (1 + Xmark.Rng.int rng 28)
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "<corpus>";
  for _ = 1 to 300 do
    Buffer.add_string buf (Printf.sprintf "<quote>%s</quote>" (sentence ()))
  done;
  for _ = 1 to 200 do
    Buffer.add_string buf (Printf.sprintf "<pname>%s</pname>" (name ()))
  done;
  for _ = 1 to 200 do
    Buffer.add_string buf (Printf.sprintf "<date>%s</date>" (date ()))
  done;
  Buffer.add_string buf "</corpus>";
  let xml = Buffer.contents buf in

  let workload =
    [
      "for $q in document(\"c.xml\")/corpus/quote where $q/text() >= \"king\" return $q";
      "for $p in document(\"c.xml\")/corpus/pname where $p/text() < \"Marta\" return $p";
      "for $d in document(\"c.xml\")/corpus/date where $d/text() >= \"2001-07-01\" return $d";
    ]
  in

  let repo = Loader.load ~name:"c.xml" xml in
  let w = Workload.analyze repo (List.map Xquery.Parser.parse workload) in
  Fmt.pr "extracted %d predicates from the workload:@." (List.length w.Workload.predicates);
  List.iter (fun p -> Fmt.pr "  %a@." Workload.pp_predicate p) w.Workload.predicates;

  let result = Partitioner.search repo w in
  Fmt.pr "@.greedy search: cost %.0f (all-bzip singletons) -> %.0f@."
    result.Partitioner.initial_cost result.Partitioner.final_cost;
  Fmt.pr "chosen configuration:@.";
  List.iter
    (fun (ids, alg) ->
      let paths =
        List.map (fun id -> (Storage.Repository.container repo id).Storage.Container.path) ids
      in
      Fmt.pr "  {%s} -> %s@." (String.concat ", " paths) (Compress.Codec.algorithm_name alg))
    result.Partitioner.configuration.Cost_model.sets;

  (* every move the greedy search evaluated *)
  Fmt.pr "@.moves (the paper's configuration moves, one per predicate):@.";
  List.iter
    (fun (m : Partitioner.move_trace) ->
      Fmt.pr "  %a: %.0f -> %.0f %s@." Workload.pp_predicate m.Partitioner.predicate
        m.Partitioner.cost_before m.Partitioner.cost_after
        (if m.Partitioner.accepted then "(accepted)" else "(kept previous)"))
    result.Partitioner.trace;

  (* apply it and show the effect on the repository *)
  let cf_before = Storage.Repository.compression_factor repo in
  Partitioner.apply repo result.Partitioner.configuration;
  let cf_after = Storage.Repository.compression_factor repo in
  Fmt.pr "@.compression factor: %.1f%% (loader defaults) -> %.1f%% (tuned)@."
    (100.0 *. cf_before) (100.0 *. cf_after);

  (* and inequality predicates now run without decompression *)
  let q = List.hd workload in
  Fmt.pr "@.sample query result (inequality evaluated on compressed codes):@.";
  let results = Executor.run_string repo q in
  Fmt.pr "  %d quotes >= \"king\"@." (List.length results);

  (* the optimizer's strategy report for that query *)
  Fmt.pr "@.explain:@.%s@." (Optimizer.explain_string repo q)
