(* Compressed result shipping: the paper's third motivation — query
   results can stay compressed until they reach the consumer, saving
   bandwidth. A repository is built on the "server", saved, shipped,
   restored on the "client", and queried there; only the final answer is
   decompressed.

   Run with:  dune exec examples/compressed_shipping.exe *)

let () =
  (* server side: compress the auction site *)
  let xml = Xmark.Xmlgen.generate ~scale:0.4 () in
  let server = Xquec_core.Engine.load ~name:"auction.xml" xml in
  let wire = Xquec_core.Engine.save server in
  Fmt.pr "server: document %d KB, shipped repository %d KB (%.1f%% saved)@."
    (String.length xml / 1024) (String.length wire / 1024)
    (100.0 *. (1.0 -. (float_of_int (String.length wire) /. float_of_int (String.length xml))));

  (* client side: restore and query without ever seeing the raw XML *)
  let client = Xquec_core.Engine.restore wire in
  let queries =
    [
      ("cheap items", "count(document(\"auction.xml\")//item)");
      ( "European locations",
        "distinct-values(document(\"auction.xml\")/site/regions/europe/item/location/text())" );
      ( "big spenders",
        "for $p in document(\"auction.xml\")/site/people/person[profile/@income >= 80000] \
         return $p/name/text()" );
    ]
  in
  List.iter
    (fun (label, q) ->
      let r = Xquec_core.Engine.query_serialized client q in
      let lines = String.split_on_char '\n' r in
      Fmt.pr "@.client %s:@." label;
      List.iteri (fun i l -> if i < 5 then Fmt.pr "  %s@." l) lines;
      if List.length lines > 5 then Fmt.pr "  ... (%d more)@." (List.length lines - 5))
    queries;

  (* verify fidelity end to end *)
  let back = Xquec_core.Engine.to_xml client in
  Fmt.pr "@.client can reconstruct the document: %d KB, tree-equal %b@."
    (String.length back / 1024)
    (Xmlkit.Tree.equal
       (Xmlkit.Parser.parse_string back).Xmlkit.Tree.root
       (Xmlkit.Parser.parse_string xml).Xmlkit.Tree.root)
