(* Auction analytics: the paper's motivating scenario. A ~1 MB XMark
   auction site is compressed once, then analytical queries — including
   the join-heavy Q8/Q9 the naive engine chokes on — run directly over
   the compressed repository.

   Run with:  dune exec examples/auction_analytics.exe *)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, 1000.0 *. (Unix.gettimeofday () -. t0))

let () =
  Fmt.pr "generating an XMark auction document...@.";
  let xml = Xmark.Xmlgen.generate ~scale:1.0 () in
  Fmt.pr "document: %d KB@." (String.length xml / 1024);

  (* compress with the full XMark workload so the cost model co-locates
     join partners under shared source models *)
  let workload = List.map (fun q -> q.Xmark.Queries.text) Xmark.Queries.all in
  let (engine, load_ms) =
    time (fun () -> Xquec_core.Engine.load ~name:"auction.xml" ~workload xml)
  in
  Fmt.pr "compressed in %.0f ms, compression factor %.1f%%@.@." load_ms
    (100.0 *. Xquec_core.Engine.compression_factor engine);

  let show id title query =
    let (result, ms) = time (fun () -> Xquec_core.Engine.query_serialized engine query) in
    let preview =
      match String.index_opt result '\n' with
      | Some i -> String.sub result 0 i ^ " ..."
      | None -> result
    in
    Fmt.pr "[%s] %s (%.1f ms)@.      %s@.@." id title ms preview
  in

  show "Q1" "name of person0" (Xmark.Queries.by_id "Q1").Xmark.Queries.text;
  show "Q5" "closed auctions above 40" (Xmark.Queries.by_id "Q5").Xmark.Queries.text;
  show "Q8" "items bought per person (value join)" (Xmark.Queries.by_id "Q8").Xmark.Queries.text;
  show "Q9" "European items per person (3-way join)" (Xmark.Queries.by_id "Q9").Xmark.Queries.text;
  show "Q14" "descriptions mentioning gold" (Xmark.Queries.by_id "Q14").Xmark.Queries.text;

  (* the same Q9, as the hand-built Fig. 5 physical plan *)
  let (rows, ms) = time (fun () -> Xquec_core.Plans.q9 (Xquec_core.Engine.repo engine)) in
  Fmt.pr "[Fig.5] hand-built Q9 plan: %d (person, item) pairs in %.1f ms@." (List.length rows) ms;
  (match rows with
  | (person, item) :: _ -> Fmt.pr "        e.g. %s bought %s@." person item
  | [] -> ());

  (* contrast with the naive engine on the uncompressed document *)
  Fmt.pr "@.naive engine on the uncompressed document (Q8):@.";
  let doc = Xmlkit.Parser.parse_string xml in
  let (_, naive_ms) =
    time (fun () ->
        Baselines.Galax_like.run ~docs:[ ("auction.xml", doc) ]
          (Xquery.Parser.parse (Xmark.Queries.by_id "Q8").Xmark.Queries.text))
  in
  Fmt.pr "naive Q8: %.0f ms (the compressed engine's hash join wins by decorrelating)@."
    naive_ms
