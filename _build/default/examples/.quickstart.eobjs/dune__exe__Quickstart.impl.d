examples/quickstart.ml: Fmt String Xmlkit Xquec_core
