examples/compressed_shipping.mli:
