examples/quickstart.mli:
