examples/workload_tuning.mli:
