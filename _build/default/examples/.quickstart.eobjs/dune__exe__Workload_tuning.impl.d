examples/workload_tuning.ml: Buffer Compress Cost_model Executor Fmt List Loader Optimizer Partitioner Printf Storage String Workload Xmark Xquec_core Xquery
