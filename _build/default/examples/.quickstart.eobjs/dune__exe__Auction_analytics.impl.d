examples/auction_analytics.ml: Baselines Fmt List String Unix Xmark Xmlkit Xquec_core Xquery
