examples/compressed_shipping.ml: Fmt List String Xmark Xmlkit Xquec_core
