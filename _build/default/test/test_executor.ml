(* Semantics tests for the XQueC executor on hand-built documents, plus
   compressed-domain specific behaviour (pushdowns, algorithm
   independence, late decompression). *)

open Xquec_core

let doc =
  "<shop>\
   <item id=\"i1\" price=\"10.50\"><name>chair</name><tag>wood</tag><tag>old</tag></item>\
   <item id=\"i2\" price=\"5.00\"><name>table</name><tag>wood</tag></item>\
   <item id=\"i3\" price=\"99.99\"><name>mirror</name></item>\
   <sale><ref item=\"i2\"/><ref item=\"i3\"/></sale>\
   <note>gold plated mirror available</note>\
   </shop>"

let repo = lazy (Loader.load ~name:"shop.xml" doc)

let run q = Executor.serialize (Lazy.force repo) (Executor.run_string (Lazy.force repo) q)

let check name expected q = Alcotest.(check string) name expected (run q)

let test_paths () =
  check "child text" "chair\ntable\nmirror" "document(\"shop.xml\")/shop/item/name/text()";
  check "descendant" "chair\ntable\nmirror" "document(\"shop.xml\")/shop//name/text()";
  check "attribute" "id=\"i1\"\nid=\"i2\"\nid=\"i3\"" "document(\"shop.xml\")/shop/item/@id";
  check "wildcard count" "5" "count(document(\"shop.xml\")/shop/*)"

let test_predicates () =
  check "eq predicate on attr" "table" "document(\"shop.xml\")/shop/item[@id = \"i2\"]/name/text()";
  check "eq predicate on child" "chair"
    "document(\"shop.xml\")/shop/item[name = \"chair\"]/name/text()";
  check "numeric range predicate" "chair\nmirror"
    "document(\"shop.xml\")/shop/item[@price >= 10]/name/text()";
  check "positional" "wood" "document(\"shop.xml\")/shop/item[1]/tag[1]/text()";
  check "existence predicate" "chair\ntable"
    "document(\"shop.xml\")/shop/item[tag]/name/text()"

let test_flwor () =
  check "where + return" "mirror"
    "for $i in document(\"shop.xml\")/shop/item where $i/@price > 50 return $i/name/text()";
  check "let binding" "2"
    "for $s in document(\"shop.xml\")/shop let $n := $s/sale/ref return count($n)";
  check "join" "table\nmirror"
    "for $r in document(\"shop.xml\")/shop/sale/ref, $i in document(\"shop.xml\")/shop/item \
     where $r/@item = $i/@id return $i/name/text()";
  check "order by" "chair\nmirror\ntable"
    "for $i in document(\"shop.xml\")/shop/item let $n := $i/name/text() order by $n return $n";
  check "order by descending" "table\nmirror\nchair"
    "for $i in document(\"shop.xml\")/shop/item let $n := $i/name/text() order by $n descending return $n"

let test_aggregates () =
  check "count" "3" "count(document(\"shop.xml\")/shop/item)";
  check "sum" "115.49" "sum(document(\"shop.xml\")/shop/item/@price)";
  check "min" "5.00" "min(document(\"shop.xml\")/shop/item/@price)";
  check "max" "99.99" "max(document(\"shop.xml\")/shop/item/@price)";
  check "avg" "5" "avg((5, 5, 5))";
  check "distinct-values" "wood\nold"
    "distinct-values(document(\"shop.xml\")/shop/item/tag/text())"

let test_functions () =
  check "contains true" "true" "contains(document(\"shop.xml\")/shop/note, \"gold\")";
  check "contains false" "false" "contains(document(\"shop.xml\")/shop/note, \"silver\")";
  check "starts-with" "chair"
    "for $i in document(\"shop.xml\")/shop/item where starts-with($i/name/text(), \"ch\") return $i/name/text()";
  check "empty" "mirror"
    "for $i in document(\"shop.xml\")/shop/item where empty($i/tag) return $i/name/text()";
  check "exists" "chair\ntable"
    "for $i in document(\"shop.xml\")/shop/item where exists($i/tag) return $i/name/text()";
  check "string" "chair" "string(document(\"shop.xml\")/shop/item[1]/name)";
  check "name" "item" "name(document(\"shop.xml\")/shop/item[1])";
  check "number arithmetic" "21" "document(\"shop.xml\")/shop/item[1]/@price * 2"

let test_last_and_fulltext () =
  check "last()" "old" "document(\"shop.xml\")/shop/item[1]/tag[last()]/text()";
  check "first vs last" "true"
    "document(\"shop.xml\")/shop/item[1]/tag[1]/text() != document(\"shop.xml\")/shop/item[1]/tag[last()]/text()";
  check "ftcontains all words" "true"
    "ftcontains(document(\"shop.xml\")/shop/note, \"mirror gold\")";
  check "ftcontains case-insensitive" "true"
    "ftcontains(document(\"shop.xml\")/shop/note, \"GOLD\")";
  check "ftcontains missing word" "false"
    "ftcontains(document(\"shop.xml\")/shop/note, \"gold silver\")"

let test_quantifiers () =
  check "some true" "true"
    "some $t in document(\"shop.xml\")/shop/item/tag satisfies $t/text() = \"old\"";
  check "every false" "false"
    "every $t in document(\"shop.xml\")/shop/item/tag satisfies $t/text() = \"wood\"";
  check "if/then/else" "yes"
    "if (count(document(\"shop.xml\")/shop/item) = 3) then \"yes\" else \"no\""

let test_construction () =
  (* @price in content becomes an attribute per the XQuery rules *)
  check "constructor with attr and content" "<r n=\"chair\" price=\"10.50\"/>"
    "for $i in document(\"shop.xml\")/shop/item[1] return <r n=\"{$i/name/text()}\">{$i/@price}</r>";
  (* the attribute item rule: @id in content becomes an attribute *)
  check "attr item becomes attribute" "<r id=\"i1\"/>"
    "for $i in document(\"shop.xml\")/shop/item[1] return <r>{$i/@id}</r>";
  check "node copy reconstructs subtree"
    "<item id=\"i3\" price=\"99.99\"><name>mirror</name></item>"
    "document(\"shop.xml\")/shop/item[@id = \"i3\"]"

let test_nested_flwor_decorrelation () =
  (* the Q8 pattern: correlated inner FLWOR in a let *)
  check "decorrelated counts" "<c n=\"chair\">0</c>\n<c n=\"table\">1</c>\n<c n=\"mirror\">1</c>"
    "for $i in document(\"shop.xml\")/shop/item \
     let $r := for $s in document(\"shop.xml\")/shop/sale/ref where $s/@item = $i/@id return $s \
     return <c n=\"{$i/name/text()}\">{count($r)}</c>"

(* The same queries must give identical answers whatever codec the
   containers use — compressed-domain operations are semantically
   transparent. *)
let test_algorithm_independence () =
  let queries =
    [
      "for $i in document(\"shop.xml\")/shop/item where $i/@price >= 10 return $i/name/text()";
      "document(\"shop.xml\")/shop/item[name = \"chair\"]/@price";
      "count(document(\"shop.xml\")/shop/item/tag)";
      "for $r in document(\"shop.xml\")/shop/sale/ref, $i in document(\"shop.xml\")/shop/item \
       where $r/@item = $i/@id return $i/name/text()";
    ]
  in
  let algorithms =
    [ Compress.Codec.Alm_alg; Compress.Codec.Huffman_alg; Compress.Codec.Arith_alg;
      Compress.Codec.Hu_tucker_alg ]
  in
  let results_for alg =
    let options = { Loader.default_string_algorithm = alg; detect_numeric = true; spill_directory = None } in
    let repo = Loader.load ~options ~name:"shop.xml" doc in
    List.map (fun q -> Executor.serialize repo (Executor.run_string repo q)) queries
  in
  let reference = results_for Compress.Codec.Alm_alg in
  List.iter
    (fun alg ->
      Alcotest.(check (list string))
        (Compress.Codec.algorithm_name alg ^ " agrees")
        reference (results_for alg))
    algorithms

let test_pushdown_agrees_with_generic () =
  (* the pushdown path (summary + container) and the per-node fallback
     must agree: compare a pushable predicate with its not-pushable
     twin (arithmetic on the right side defeats recognition) *)
  let a = run "document(\"shop.xml\")/shop/item[@price >= 10]/name/text()" in
  let b = run "document(\"shop.xml\")/shop/item[@price >= 5 + 5]/name/text()" in
  Alcotest.(check string) "pushdown = generic" a b

let test_errors () =
  (match Executor.run_string (Lazy.force repo) "$undefined" with
  | exception Executor.Eval_error _ -> ()
  | _ -> Alcotest.fail "expected Eval_error on unbound variable");
  match Executor.run_string (Lazy.force repo) "sum(document(\"shop.xml\")/shop/item) * (1,2)" with
  | exception Executor.Eval_error _ -> ()
  | _ -> Alcotest.fail "expected Eval_error on non-singleton arithmetic"

let suites =
  [
    ( "executor",
      [
        Alcotest.test_case "paths" `Quick test_paths;
        Alcotest.test_case "predicates" `Quick test_predicates;
        Alcotest.test_case "flwor" `Quick test_flwor;
        Alcotest.test_case "aggregates" `Quick test_aggregates;
        Alcotest.test_case "functions" `Quick test_functions;
        Alcotest.test_case "quantifiers and conditionals" `Quick test_quantifiers;
        Alcotest.test_case "last() and full-text extension" `Quick test_last_and_fulltext;
        Alcotest.test_case "construction" `Quick test_construction;
        Alcotest.test_case "nested-flwor decorrelation" `Quick test_nested_flwor_decorrelation;
        Alcotest.test_case "algorithm independence" `Quick test_algorithm_independence;
        Alcotest.test_case "pushdown agrees with generic" `Quick test_pushdown_agrees_with_generic;
        Alcotest.test_case "errors" `Quick test_errors;
      ] );
  ]
