(* Tests for the benchmark substrate: generators and query set. *)

open Xmlkit

let test_generator_well_formed () =
  let xml = Xmark.Xmlgen.generate ~scale:0.2 () in
  let doc = Parser.parse_string xml in
  Alcotest.(check (option string)) "root" (Some "site") (Tree.tag doc.Tree.root);
  let st = Stats.of_document doc in
  Alcotest.(check bool) "has elements" true (st.Stats.elements > 100);
  (* the paper's observation: values are the large share of documents *)
  Alcotest.(check bool) "value share over 50%" true (Stats.value_share st > 0.5)

let test_generator_deterministic () =
  let a = Xmark.Xmlgen.generate ~seed:7 ~scale:0.03 () in
  let b = Xmark.Xmlgen.generate ~seed:7 ~scale:0.03 () in
  let c = Xmark.Xmlgen.generate ~seed:8 ~scale:0.03 () in
  Alcotest.(check bool) "same seed same doc" true (String.equal a b);
  Alcotest.(check bool) "different seed different doc" false (String.equal a c)

let test_generator_scales () =
  let small = String.length (Xmark.Xmlgen.generate ~scale:0.05 ()) in
  let big = String.length (Xmark.Xmlgen.generate ~scale:0.2 ()) in
  Alcotest.(check bool) "bigger scale bigger doc" true (big > 2 * small)

let test_generator_idrefs_resolve () =
  let xml = Xmark.Xmlgen.generate ~scale:0.05 () in
  let doc = Parser.parse_string xml in
  let people =
    Tree.descendants_with_tag doc.Tree.root "person"
    |> List.filter_map (fun p -> Tree.attr p "id")
  in
  let buyers =
    Tree.descendants_with_tag doc.Tree.root "buyer"
    |> List.filter_map (fun b -> Tree.attr b "person")
  in
  Alcotest.(check bool) "buyers reference existing people" true
    (buyers <> [] && List.for_all (fun b -> List.mem b people) buyers)

let test_generator_has_q15_paths () =
  let xml = Xmark.Xmlgen.generate ~scale:0.2 () in
  let repo = Xquec_core.Loader.load ~name:"a" xml in
  let hits =
    Xquec_core.Executor.run_string repo
      ("count(document(\"a\")/site/closed_auctions/closed_auction/annotation/description"
      ^ "/parlist/listitem/parlist/listitem/text/emph/keyword/text())")
  in
  match hits with
  | [ Xquec_core.Executor.Num n ] -> Alcotest.(check bool) "deep keyword paths exist" true (n > 0.0)
  | _ -> Alcotest.fail "expected a count"

let test_datasets_well_formed () =
  List.iter
    (fun (d : Xmark.Datasets.dataset) ->
      let doc = Parser.parse_string d.Xmark.Datasets.xml in
      let st = Stats.of_document doc in
      Alcotest.(check bool) (d.Xmark.Datasets.name ^ " nonempty") true (st.Stats.elements > 50))
    (Xmark.Datasets.real_life_corpus ())

let test_dataset_profiles () =
  (* the three corpora have the intended value-type profiles *)
  let share xml = Stats.value_share (Stats.of_document (Parser.parse_string xml)) in
  let shak = share (Xmark.Datasets.shakespeare ~scale:0.3 ()) in
  let base = share (Xmark.Datasets.baseball ~scale:0.3 ()) in
  Alcotest.(check bool) "shakespeare is text-heavy" true (shak > 0.55);
  Alcotest.(check bool) "baseball is markup-heavy" true (base < shak)

let test_queries_complete () =
  Alcotest.(check int) "20 queries" 20 (List.length Xmark.Queries.all);
  List.iteri
    (fun i (q : Xmark.Queries.query) ->
      Alcotest.(check string) "ids in order" (Printf.sprintf "Q%d" (i + 1)) q.Xmark.Queries.id)
    Xmark.Queries.all;
  Alcotest.(check int) "fig7 set excludes Q8/Q9" 18 (List.length Xmark.Queries.fig7_ids);
  Alcotest.(check bool) "by_id works" true
    (String.equal (Xmark.Queries.by_id "Q14").Xmark.Queries.id "Q14")

let test_rng_uniformity () =
  let rng = Xmark.Rng.of_int 123 in
  let counts = Array.make 10 0 in
  for _ = 1 to 10000 do
    let v = Xmark.Rng.int rng 10 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      Alcotest.(check bool) (Printf.sprintf "bucket %d roughly uniform" i) true
        (c > 700 && c < 1300))
    counts

let suites =
  [
    ( "xmark",
      [
        Alcotest.test_case "generator well-formed" `Quick test_generator_well_formed;
        Alcotest.test_case "generator deterministic" `Quick test_generator_deterministic;
        Alcotest.test_case "generator scales" `Quick test_generator_scales;
        Alcotest.test_case "IDREFs resolve" `Quick test_generator_idrefs_resolve;
        Alcotest.test_case "Q15 deep paths exist" `Slow test_generator_has_q15_paths;
        Alcotest.test_case "datasets well-formed" `Quick test_datasets_well_formed;
        Alcotest.test_case "dataset profiles" `Quick test_dataset_profiles;
        Alcotest.test_case "query set complete" `Quick test_queries_complete;
        Alcotest.test_case "rng uniformity" `Quick test_rng_uniformity;
      ] );
  ]
