(* Differential testing: the XQueC engine must agree with the naive
   Galax-like reference on every XMark query, across generator seeds,
   with and without workload-driven partitioning, and after a
   serialize/deserialize cycle. *)

let galax_result doc ast =
  Baselines.Galax_like.serialize (Baselines.Galax_like.run ~docs:[ ("auction.xml", doc) ] ast)

let xquec_result repo ast =
  Xquec_core.Executor.serialize repo (Xquec_core.Executor.run repo ast)

let check_all_queries ~name doc repo =
  List.iter
    (fun (q : Xmark.Queries.query) ->
      let ast = Xquery.Parser.parse q.Xmark.Queries.text in
      Alcotest.(check string)
        (Printf.sprintf "%s/%s" name q.Xmark.Queries.id)
        (galax_result doc ast) (xquec_result repo ast))
    Xmark.Queries.all

let test_seed seed () =
  let xml = Xmark.Xmlgen.generate ~seed ~scale:0.04 () in
  let doc = Xmlkit.Parser.parse_string xml in
  let repo = Xquec_core.Loader.load ~name:"auction.xml" xml in
  check_all_queries ~name:(Printf.sprintf "seed%d" seed) doc repo

let test_partitioned () =
  let xml = Xmark.Xmlgen.generate ~seed:5 ~scale:0.05 () in
  let doc = Xmlkit.Parser.parse_string xml in
  let workload = List.map (fun q -> q.Xmark.Queries.text) Xmark.Queries.all in
  let engine = Xquec_core.Engine.load ~name:"auction.xml" ~workload xml in
  check_all_queries ~name:"partitioned" doc (Xquec_core.Engine.repo engine)

let test_after_reload () =
  let xml = Xmark.Xmlgen.generate ~seed:9 ~scale:0.04 () in
  let doc = Xmlkit.Parser.parse_string xml in
  let engine = Xquec_core.Engine.load ~name:"auction.xml" xml in
  let engine = Xquec_core.Engine.restore (Xquec_core.Engine.save engine) in
  check_all_queries ~name:"reloaded" doc (Xquec_core.Engine.repo engine)

let test_huffman_everywhere () =
  (* force the order-agnostic codec as the string default: inequality
     predicates must fall back to scans yet stay correct *)
  let xml = Xmark.Xmlgen.generate ~seed:3 ~scale:0.04 () in
  let doc = Xmlkit.Parser.parse_string xml in
  let options =
    { Xquec_core.Loader.default_string_algorithm = Compress.Codec.Huffman_alg;
      detect_numeric = false; spill_directory = None }
  in
  let repo = Xquec_core.Loader.load ~options ~name:"auction.xml" xml in
  check_all_queries ~name:"huffman" doc repo

let suites =
  [
    ( "differential",
      [
        Alcotest.test_case "xmark seed 1" `Slow (test_seed 1);
        Alcotest.test_case "xmark seed 2" `Slow (test_seed 2);
        Alcotest.test_case "xmark seed 42" `Slow (test_seed 42);
        Alcotest.test_case "with partitioning" `Slow test_partitioned;
        Alcotest.test_case "after save/restore" `Slow test_after_reload;
        Alcotest.test_case "huffman-only repository" `Slow test_huffman_everywhere;
      ] );
  ]
