test/test_xquery.ml: Alcotest Ast List Parser Xmark Xquery
