test/test_fuzz.ml: Alcotest Baselines Compress Filename List Parser Printer Printf QCheck2 QCheck_alcotest Storage String Tree Xmark Xmlkit Xquec_core Xquery
