test/test_differential.ml: Alcotest Baselines Compress List Printf Xmark Xmlkit Xquec_core Xquery
