test/test_executor.ml: Alcotest Compress Executor Lazy List Loader Xquec_core
