test/test_storage.ml: Alcotest Array Btree Compress Container List Name_dict Option Printf QCheck2 QCheck_alcotest Repository Storage String Structure_tree Summary Xmark Xquec_core Xquery
