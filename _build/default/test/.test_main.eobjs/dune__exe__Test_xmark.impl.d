test/test_xmark.ml: Alcotest Array List Parser Printf Stats String Tree Xmark Xmlkit Xquec_core
