test/test_compress.ml: Alcotest Alm Arith Bitio Buffer Bwt Bzip Char Codec Compress Hu_tucker Huffman Ipack Lazy List Lzss Mtf Printf QCheck2 QCheck_alcotest Rle String
