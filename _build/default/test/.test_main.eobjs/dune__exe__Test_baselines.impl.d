test/test_baselines.ml: Alcotest Baselines Lazy List Parser Stats Storage Tree Xmark Xmlkit Xquec_core Xquery
