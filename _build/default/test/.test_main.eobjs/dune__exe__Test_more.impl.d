test/test_more.ml: Alcotest Array Char Compress Engine Executor Lazy List Loader Option Partitioner Physical Printf QCheck2 QCheck_alcotest Storage String Workload Xquec_core
