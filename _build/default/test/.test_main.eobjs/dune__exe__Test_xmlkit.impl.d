test/test_xmlkit.ml: Alcotest Escape List Parser Printer Printf QCheck2 QCheck_alcotest Sax Stats String Tree Xmlkit
