test/test_core.ml: Alcotest Array Char Compress Cost_model Executor Float List Loader Optimizer Option Partitioner Physical Plans Printf Storage String Workload Xmark Xquec_core Xquery
