(* Tests for the XQuery front-end: each syntactic construct of the
   subset, error reporting, and a print/reparse sanity property. *)

open Xquery

let parse = Parser.parse

let parses name src =
  Alcotest.test_case name `Quick (fun () -> ignore (parse src))

let rejects name src =
  Alcotest.test_case name `Quick (fun () ->
      match parse src with
      | exception Parser.Syntax_error _ -> ()
      | _ -> Alcotest.fail "expected Syntax_error")

let test_path_shape () =
  match parse "document(\"d\")/site//item/@id" with
  | Ast.Path (Ast.Doc "d", [ s1; s2; s3 ]) ->
    Alcotest.(check bool) "child" true (s1.Ast.axis = Ast.Child);
    Alcotest.(check bool) "descendant" true (s2.Ast.axis = Ast.Descendant);
    Alcotest.(check bool) "attribute" true (s3.Ast.axis = Ast.Attribute)
  | _ -> Alcotest.fail "unexpected shape"

let test_predicates () =
  match parse "$x/a[2]/b[@id = \"k\"][c]" with
  | Ast.Path (Ast.Var "x", [ s1; s2 ]) ->
    (match s1.Ast.predicates with
    | [ Ast.Pos 2 ] -> ()
    | _ -> Alcotest.fail "expected positional predicate");
    Alcotest.(check int) "two predicates on b" 2 (List.length s2.Ast.predicates)
  | _ -> Alcotest.fail "unexpected shape"

let test_flwor_clauses () =
  match parse "for $a in $x, $b in $y let $c := $a where $a = $b order by $c return $c" with
  | Ast.Flwor (clauses, Ast.Var "c") ->
    let shapes =
      List.map
        (function
          | Ast.For (v, _) -> "for " ^ v
          | Ast.Let (v, _) -> "let " ^ v
          | Ast.Where _ -> "where"
          | Ast.Order_by _ -> "order")
        clauses
    in
    Alcotest.(check (list string)) "clauses"
      [ "for a"; "for b"; "let c"; "where"; "order" ]
      shapes
  | _ -> Alcotest.fail "unexpected shape"

let test_operator_precedence () =
  match parse "1 + 2 * 3 = 7 and 2 < 3" with
  | Ast.And (Ast.Cmp (Ast.Eq, Ast.Arith (Ast.Add, _, Ast.Arith (Ast.Mul, _, _)), _), Ast.Cmp (Ast.Lt, _, _))
    -> ()
  | e -> Alcotest.failf "unexpected: %s" (Ast.to_string e)

let test_constructor () =
  match parse "<item id=\"{$i}\" k=\"x\">text{$v}<sub/></item>" with
  | Ast.Element ("item", [ ("id", Ast.Attr_expr (Ast.Var "i")); ("k", Ast.Attr_string "x") ], kids)
    ->
    Alcotest.(check int) "three children" 3 (List.length kids)
  | e -> Alcotest.failf "unexpected: %s" (Ast.to_string e)

let test_functions () =
  (match parse "count($x)" with
  | Ast.Aggregate (Ast.Count, Ast.Var "x") -> ()
  | _ -> Alcotest.fail "count");
  (match parse "contains($x/a, \"gold\")" with
  | Ast.Contains (_, Ast.Literal_string "gold") -> ()
  | _ -> Alcotest.fail "contains");
  match parse "not(empty($x))" with
  | Ast.Not (Ast.Empty _) -> ()
  | _ -> Alcotest.fail "not/empty"

let test_quantifier () =
  match parse "some $p in $b/bidder satisfies $p/@person = \"p1\"" with
  | Ast.Some_satisfies ("p", _, Ast.Cmp (Ast.Eq, _, _)) -> ()
  | _ -> Alcotest.fail "quantifier"

let test_context_forms () =
  (match parse "$x/a[@id = \"1\"]" with
  | Ast.Path (_, [ { Ast.predicates = [ Ast.Cond (Ast.Cmp (_, Ast.Path (Ast.Context, _), _)) ]; _ } ])
    -> ()
  | _ -> Alcotest.fail "attr predicate rooted at context");
  match parse "$x/a[b = \"v\"]" with
  | Ast.Path (_, [ { Ast.predicates = [ Ast.Cond (Ast.Cmp (_, Ast.Path (Ast.Context, _), _)) ]; _ } ])
    -> ()
  | _ -> Alcotest.fail "bare-name predicate rooted at context"

let test_comment_skipping () =
  match parse "(: outer (: nested :) :) count($x)" with
  | Ast.Aggregate (Ast.Count, _) -> ()
  | _ -> Alcotest.fail "comments"

let test_xmark_queries_parse () =
  List.iter
    (fun (q : Xmark.Queries.query) ->
      match parse q.Xmark.Queries.text with
      | _ -> ()
      | exception Parser.Syntax_error (m, p) ->
        Alcotest.failf "%s does not parse: %s at %d" q.Xmark.Queries.id m p)
    Xmark.Queries.all

let test_print_reparse () =
  (* pretty-printed ASTs should at least stay parseable and stable *)
  List.iter
    (fun src ->
      let a = parse src in
      let printed = Ast.to_string a in
      let b = parse printed in
      Alcotest.(check string) ("stable print: " ^ src) printed (Ast.to_string b))
    [
      "for $a in document(\"d\")/site/a where $a/b = 3 return $a";
      "count($x/a[2])";
      "if ($x = 1) then \"a\" else \"b\"";
      "some $p in $b/c satisfies $p = \"v\"";
    ]

let suites =
  [
    ( "xquery-parser",
      [
        Alcotest.test_case "path shape" `Quick test_path_shape;
        Alcotest.test_case "predicates" `Quick test_predicates;
        Alcotest.test_case "flwor clauses" `Quick test_flwor_clauses;
        Alcotest.test_case "operator precedence" `Quick test_operator_precedence;
        Alcotest.test_case "element constructor" `Quick test_constructor;
        Alcotest.test_case "functions" `Quick test_functions;
        Alcotest.test_case "quantifier" `Quick test_quantifier;
        Alcotest.test_case "context-relative forms" `Quick test_context_forms;
        Alcotest.test_case "nested comments" `Quick test_comment_skipping;
        Alcotest.test_case "all XMark queries parse" `Quick test_xmark_queries_parse;
        Alcotest.test_case "print/reparse stable" `Quick test_print_reparse;
        parses "arithmetic div/mod" "$x div 2 mod 3";
        parses "order by descending" "for $a in $x order by $a descending return $a";
        parses "sequence" "($a, $b, 3)";
        parses "nested flwor" "for $a in $x return for $b in $a return $b";
        parses "string escapes" "\"he said \"\"hi\"\"\"";
        rejects "unclosed paren" "count($x";
        rejects "missing return" "for $a in $x where $a";
        rejects "trailing garbage" "count($x) garbage";
        rejects "bad var" "$";
        rejects "mismatched constructor" "<a>{$x}</b>";
      ] );
  ]
