(* Tests for the XML toolkit: parser, SAX events, printer, stats. *)

open Xmlkit

let parse s = (Parser.parse_string s).Tree.root

let check_roundtrip name src =
  Alcotest.test_case name `Quick (fun () ->
      let doc = Parser.parse_string src in
      let printed = Printer.to_string doc in
      let doc' = Parser.parse_string printed in
      Alcotest.(check bool) "reparse equal" true (Tree.equal doc.Tree.root doc'.Tree.root))

let test_simple () =
  match parse "<a><b>hello</b><c x=\"1\"/></a>" with
  | Tree.Element ("a", [], [ b; c ]) ->
    Alcotest.(check (option string)) "b tag" (Some "b") (Tree.tag b);
    Alcotest.(check string) "b text" "hello" (Tree.text_content b);
    Alcotest.(check (option string)) "c attr" (Some "1") (Tree.attr c "x")
  | _ -> Alcotest.fail "unexpected shape"

let test_attributes () =
  let n = parse "<e a=\"x\" b='y' c=\"a&amp;b\"/>" in
  Alcotest.(check (option string)) "a" (Some "x") (Tree.attr n "a");
  Alcotest.(check (option string)) "b" (Some "y") (Tree.attr n "b");
  Alcotest.(check (option string)) "c" (Some "a&b") (Tree.attr n "c")

let test_entities () =
  let n = parse "<e>&lt;tag&gt; &amp; &quot;q&quot; &apos;a&apos; &#65;&#x42;</e>" in
  Alcotest.(check string) "resolved" "<tag> & \"q\" 'a' AB" (Tree.text_content n)

let test_cdata () =
  let n = parse "<e><![CDATA[<not-a-tag> & raw]]></e>" in
  Alcotest.(check string) "cdata" "<not-a-tag> & raw" (Tree.text_content n)

let test_comments_pi () =
  let n = parse "<?xml version=\"1.0\"?><!-- c --><e><!-- inner -->x<?pi data?></e>" in
  Alcotest.(check string) "text survives" "x" (Tree.text_content n)

let test_doctype () =
  let n = parse "<!DOCTYPE e [ <!ELEMENT e (#PCDATA)> ]><e>t</e>" in
  Alcotest.(check string) "text" "t" (Tree.text_content n)

let test_nested_deep () =
  let depth = 500 in
  let src =
    String.concat "" (List.init depth (fun i -> Printf.sprintf "<n%d>" i))
    ^ "x"
    ^ String.concat "" (List.init depth (fun i -> Printf.sprintf "</n%d>" (depth - 1 - i)))
  in
  let n = parse src in
  Alcotest.(check string) "deep text" "x" (Tree.text_content n)

let test_mixed_content () =
  let n = parse "<p>one <b>two</b> three</p>" in
  Alcotest.(check string) "mixed" "one two three" (Tree.text_content n);
  Alcotest.(check string) "immediate" "one  three" (Tree.immediate_text n)

let test_whitespace_dropped () =
  let n = parse "<a>\n  <b>x</b>\n</a>" in
  Alcotest.(check int) "children" 1 (List.length (Tree.children n))

let malformed name src =
  Alcotest.test_case name `Quick (fun () ->
      match Parser.parse_string src with
      | exception Parser.Malformed _ -> ()
      | _ -> Alcotest.fail "expected Malformed")

let test_sax_events () =
  let events = ref [] in
  Sax.parse_string ~f:(fun e -> events := e :: !events) "<a x=\"1\"><b>t</b></a>";
  let expected =
    [
      Sax.Start_element ("a", [ ("x", "1") ]);
      Sax.Start_element ("b", []);
      Sax.Characters "t";
      Sax.End_element "b";
      Sax.End_element "a";
    ]
  in
  Alcotest.(check int) "event count" (List.length expected) (List.length !events);
  List.iter2
    (fun got want ->
      let show = function
        | Sax.Start_element (t, _) -> "<" ^ t
        | Sax.End_element t -> "</" ^ t
        | Sax.Characters c -> "#" ^ c
      in
      Alcotest.(check string) "event" (show want) (show got))
    (List.rev !events) expected

let test_sax_fold_mismatch () =
  match Sax.fold ~init:0 ~f:(fun n _ -> n + 1) "<a><b></a></b>" with
  | exception Sax.Malformed _ -> ()
  | _ -> Alcotest.fail "expected mismatch error"

let test_descendants () =
  let n = parse "<a><b><c/><b><c/></b></b><c/></a>" in
  Alcotest.(check int) "c count" 3 (List.length (Tree.descendants_with_tag n "c"));
  Alcotest.(check int) "b count" 2 (List.length (Tree.descendants_with_tag n "b"))

let test_stats () =
  let doc = Parser.parse_string "<a x=\"12\"><b>hello</b><b>world</b></a>" in
  let st = Stats.of_document doc in
  Alcotest.(check int) "elements" 3 st.Stats.elements;
  Alcotest.(check int) "attributes" 1 st.Stats.attributes;
  Alcotest.(check int) "text nodes" 2 st.Stats.text_nodes;
  Alcotest.(check int) "text bytes" 12 st.Stats.text_bytes;
  Alcotest.(check int) "max depth" 2 st.Stats.max_depth

let test_escape_roundtrip () =
  let s = "a<b>&\"'\xc3\xa9" in
  let doc = Parser.parse_string ("<e>" ^ Escape.escape_text s ^ "</e>") in
  Alcotest.(check string) "escape roundtrip" s (Tree.text_content doc.Tree.root)

let gen_tree =
  (* Random small trees for printer/parser round-trip. *)
  let open QCheck2.Gen in
  let tag = oneofl [ "a"; "b"; "item"; "name"; "x1" ] in
  let safe_text =
    string_size ~gen:(oneofl [ 'a'; 'b'; ' '; '<'; '&'; '>'; '"'; 'z' ]) (int_range 1 12)
  in
  fix
    (fun self depth ->
      if depth = 0 then map Tree.text safe_text
      else
        frequency
          [
            (2, map Tree.text safe_text);
            ( 3,
              map3
                (fun t ats kids -> Tree.Element (t, ats, kids))
                tag
                (small_list (pair (oneofl [ "id"; "k" ]) safe_text)
                 |> map (fun l ->
                        (* attribute names must be unique *)
                        List.sort_uniq (fun (a, _) (b, _) -> compare a b) l))
                (list_size (int_range 0 4) (self (depth - 1))) );
          ])
    2

let prop_print_parse =
  QCheck2.Test.make ~name:"printer/parser roundtrip" ~count:200 gen_tree (fun t ->
      (* Wrap in a root element since bare text is not a document. *)
      let root = Tree.Element ("root", [], [ t ]) in
      let printed = Printer.node_to_string root in
      let reparsed = (Parser.parse_string printed).Tree.root in
      (* Normalize both sides: adjacent generated text nodes merge on
         reparse, and whitespace-only text nodes are legitimately dropped. *)
      let rec norm n =
        match n with
        | Tree.Text _ -> n
        | Tree.Element (t, a, k) ->
          let k = List.map norm k in
          let merged =
            List.fold_left
              (fun acc child ->
                match acc, child with
                | Tree.Text s :: rest, Tree.Text s' -> Tree.Text (s ^ s') :: rest
                | acc, child -> child :: acc)
              [] k
            |> List.rev
          in
          let keep = function
            | Tree.Text s -> String.trim s <> ""
            | Tree.Element _ -> true
          in
          Tree.Element (t, a, List.filter keep merged)
      in
      Tree.equal (norm root) (norm reparsed))

let suites =
  [
    ( "xmlkit",
      [
        Alcotest.test_case "simple" `Quick test_simple;
        Alcotest.test_case "attributes" `Quick test_attributes;
        Alcotest.test_case "entities" `Quick test_entities;
        Alcotest.test_case "cdata" `Quick test_cdata;
        Alcotest.test_case "comments and PIs" `Quick test_comments_pi;
        Alcotest.test_case "doctype" `Quick test_doctype;
        Alcotest.test_case "deep nesting" `Quick test_nested_deep;
        Alcotest.test_case "mixed content" `Quick test_mixed_content;
        Alcotest.test_case "whitespace dropped" `Quick test_whitespace_dropped;
        Alcotest.test_case "sax events" `Quick test_sax_events;
        Alcotest.test_case "sax mismatch" `Quick test_sax_fold_mismatch;
        Alcotest.test_case "descendants" `Quick test_descendants;
        Alcotest.test_case "stats" `Quick test_stats;
        Alcotest.test_case "escape roundtrip" `Quick test_escape_roundtrip;
        check_roundtrip "roundtrip simple" "<a><b>hello</b><c x=\"1\">t</c></a>";
        check_roundtrip "roundtrip escaped" "<a b=\"&lt;&amp;&quot;\">x &amp; y</a>";
        malformed "unclosed" "<a><b></a>";
        malformed "stray close" "</a>";
        malformed "two roots" "<a/><b/>";
        malformed "bad entity" "<a>&nope;</a>";
        malformed "text outside root" "x<a/>";
        malformed "lt in attr" "<a b=\"<\"/>";
        QCheck_alcotest.to_alcotest prop_print_parse;
      ] );
  ]
