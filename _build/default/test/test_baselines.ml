(* Tests for the reimplemented comparison systems: XMill, XGrind, XPRESS
   and the Galax-like reference engine. *)

open Xmlkit

let auction = lazy (Xmark.Xmlgen.generate ~scale:0.12 ())

(* ------------------------------------------------------------------ *)
(* XMill                                                               *)
(* ------------------------------------------------------------------ *)

let test_xmill_roundtrip () =
  let xml = Lazy.force auction in
  let xm = Baselines.Xmill.compress xml in
  let back = Baselines.Xmill.decompress xm in
  (* whitespace-only text is dropped on both paths; compare trees *)
  Alcotest.(check bool) "tree-equal after roundtrip" true
    (Tree.equal (Parser.parse_string back).Tree.root (Parser.parse_string xml).Tree.root)

let test_xmill_compresses_best () =
  let xml = Lazy.force auction in
  let xm = Baselines.Xmill.compression_factor (Baselines.Xmill.compress xml) in
  let xg = Baselines.Xgrind.compression_factor (Baselines.Xgrind.compress xml) in
  let xp = Baselines.Xpress.compression_factor (Baselines.Xpress.compress xml) in
  let repo = Xquec_core.Loader.load ~name:"a" xml in
  let xq = Storage.Repository.compression_factor repo in
  (* Fig. 6 ordering: the non-queryable compressor wins *)
  Alcotest.(check bool) "xmill > xgrind" true (xm > xg);
  Alcotest.(check bool) "xmill > xpress" true (xm > xp);
  Alcotest.(check bool) "xmill > xquec" true (xm > xq);
  Alcotest.(check bool) "all compress" true (xm > 0.0 && xg > 0.0 && xp > 0.0 && xq > 0.0)

(* ------------------------------------------------------------------ *)
(* XGrind                                                              *)
(* ------------------------------------------------------------------ *)

let test_xgrind_exact_match () =
  let xml = Lazy.force auction in
  let xg = Baselines.Xgrind.compress xml in
  (* reference answer via Galax on the uncompressed document *)
  let doc = Parser.parse_string xml in
  let expected =
    Baselines.Galax_like.run ~docs:[ ("a", doc) ]
      (Xquery.Parser.parse "document(\"a\")/site/people/person[@id = \"person3\"]/name/text()")
    |> List.map Baselines.Galax_like.string_of_item
  in
  let got =
    Baselines.Xgrind.query_exact xg ~target_path:"site/people/person/name/#text"
      ~pred_path:"site/people/person/@id" ~value:"person3"
  in
  Alcotest.(check (list string)) "xgrind exact-match = reference" expected got

let test_xgrind_no_match () =
  let xml = Lazy.force auction in
  let xg = Baselines.Xgrind.compress xml in
  Alcotest.(check (list string)) "no hit" []
    (Baselines.Xgrind.query_exact xg ~target_path:"site/people/person/name/#text"
       ~pred_path:"site/people/person/@id" ~value:"person999999")

let test_xgrind_scan_visits_everything () =
  let xml = Lazy.force auction in
  let xg = Baselines.Xgrind.compress xml in
  let starts = ref 0 and values = ref 0 in
  Baselines.Xgrind.scan xg ~f:(fun ev ->
      match ev with
      | Baselines.Xgrind.Start _ -> incr starts
      | Baselines.Xgrind.Value _ -> incr values
      | Baselines.Xgrind.End _ -> ());
  let st = Stats.of_document (Parser.parse_string xml) in
  Alcotest.(check int) "elements+attributes" (st.Stats.elements + st.Stats.attributes) !starts;
  Alcotest.(check int) "text+attr values" (st.Stats.text_nodes + st.Stats.attributes) !values

(* ------------------------------------------------------------------ *)
(* XPRESS                                                              *)
(* ------------------------------------------------------------------ *)

let test_xpress_path_query () =
  let xml = Lazy.force auction in
  let xp = Baselines.Xpress.compress xml in
  let doc = Parser.parse_string xml in
  let expected =
    Baselines.Galax_like.run ~docs:[ ("a", doc) ]
      (Xquery.Parser.parse "document(\"a\")/site/regions/europe/item/location/text()")
    |> List.map Baselines.Galax_like.string_of_item
    |> List.sort compare
  in
  let got =
    Baselines.Xpress.query_path xp [ "site"; "regions"; "europe"; "item"; "location" ]
    |> List.sort compare
  in
  Alcotest.(check (list string)) "xpress path = reference" expected got

let test_xpress_suffix_path () =
  let xml = Lazy.force auction in
  let xp = Baselines.Xpress.compress xml in
  let doc = Parser.parse_string xml in
  let expected =
    Baselines.Galax_like.run ~docs:[ ("a", doc) ]
      (Xquery.Parser.parse "document(\"a\")//location/text()")
    |> List.map Baselines.Galax_like.string_of_item
    |> List.sort compare
  in
  (* a single-tag RAE query is a suffix test: //location *)
  let got = Baselines.Xpress.query_path xp [ "location" ] |> List.sort compare in
  Alcotest.(check (list string)) "xpress suffix path = reference" expected got

let test_xpress_range_query () =
  let xml = Lazy.force auction in
  let xp = Baselines.Xpress.compress xml in
  let doc = Parser.parse_string xml in
  let expected =
    Baselines.Galax_like.run ~docs:[ ("a", doc) ]
      (Xquery.Parser.parse
         "for $p in document(\"a\")//price where $p/text() >= 100 and $p/text() <= 200 return $p/text()")
    |> List.map Baselines.Galax_like.string_of_item
    |> List.sort compare
  in
  let got =
    Baselines.Xpress.query_path xp ~range:(Some 100.0, Some 200.0) [ "price" ]
    |> List.sort compare
  in
  Alcotest.(check (list string)) "xpress range = reference" expected got

(* ------------------------------------------------------------------ *)
(* Galax-like reference engine                                         *)
(* ------------------------------------------------------------------ *)

let test_galax_basics () =
  let doc = Parser.parse_string "<a><b>1</b><b>2</b><c x=\"9\">3</c></a>" in
  let run q =
    Baselines.Galax_like.serialize
      (Baselines.Galax_like.run ~docs:[ ("d", doc) ] (Xquery.Parser.parse q))
  in
  Alcotest.(check string) "path" "1\n2" (run "document(\"d\")/a/b/text()");
  Alcotest.(check string) "attr" "x=\"9\"" (run "document(\"d\")/a/c/@x");
  Alcotest.(check string) "count" "3" (run "count(document(\"d\")/a/*)");
  Alcotest.(check string) "sum" "6" (run "sum(document(\"d\")/a/*/text())");
  Alcotest.(check string) "where" "2"
    (run "for $b in document(\"d\")/a/b where $b/text() > 1 return $b/text()");
  Alcotest.(check string) "constructor" "<r n=\"2\"/>"
    (run "for $x in document(\"d\")/a/c return <r n=\"{count(document(\"d\")/a/b)}\"/>")

let suites =
  [
    ( "xmill",
      [
        Alcotest.test_case "roundtrip" `Slow test_xmill_roundtrip;
        Alcotest.test_case "best compression factor (fig. 6 order)" `Slow
          test_xmill_compresses_best;
      ] );
    ( "xgrind",
      [
        Alcotest.test_case "exact-match query" `Slow test_xgrind_exact_match;
        Alcotest.test_case "no match" `Slow test_xgrind_no_match;
        Alcotest.test_case "scan visits whole document" `Slow test_xgrind_scan_visits_everything;
      ] );
    ( "xpress",
      [
        Alcotest.test_case "rooted path query" `Slow test_xpress_path_query;
        Alcotest.test_case "suffix path query" `Slow test_xpress_suffix_path;
        Alcotest.test_case "numeric range query" `Slow test_xpress_range_query;
      ] );
    ( "galax-like", [ Alcotest.test_case "basics" `Quick test_galax_basics ] );
  ]
