(* Property/fuzz tests across layer boundaries: random documents through
   the full load -> query/reconstruct -> compare pipeline, plus codec
   edge cases. *)

open Xmlkit

(* ------------------------------------------------------------------ *)
(* Random document generator                                           *)
(* ------------------------------------------------------------------ *)

let gen_doc : Tree.document QCheck2.Gen.t =
  let open QCheck2.Gen in
  let tag = oneofl [ "a"; "b"; "item"; "name"; "x" ] in
  let attr_name = oneofl [ "id"; "k"; "v" ] in
  let word = oneofl [ "alpha"; "beta"; "42"; "3.14"; "gold ring"; ""; "z" ] in
  let node =
    fix
      (fun self depth ->
        if depth = 0 then map Tree.text word
        else
          frequency
            [
              (2, map Tree.text word);
              ( 3,
                map3
                  (fun t ats kids -> Tree.Element (t, ats, kids))
                  tag
                  (small_list (pair attr_name word)
                  |> map (fun l -> List.sort_uniq (fun (a, _) (b, _) -> compare a b) l))
                  (list_size (int_range 0 3) (self (depth - 1))) );
            ])
  in
  map3
    (fun t ats kids -> { Tree.root = Tree.Element (t, ats, kids) })
    tag
    (small_list (pair attr_name word)
    |> map (fun l -> List.sort_uniq (fun (a, _) (b, _) -> compare a b) l))
    (list_size (int_range 0 5) (node 2))

(* The loader drops whitespace-only text, and adjacent generated text
   nodes merge when printed and reparsed; normalize both sides the same
   way for comparison. *)
let rec normalize (n : Tree.t) : Tree.t option =
  match n with
  | Tree.Text s -> if String.trim s = "" then None else Some n
  | Tree.Element (t, a, k) ->
    let merged =
      List.fold_left
        (fun acc child ->
          match acc, child with
          | Tree.Text s :: rest, Tree.Text s' -> Tree.Text (s ^ s') :: rest
          | acc, child -> child :: acc)
        [] k
      |> List.rev
    in
    Some (Tree.Element (t, a, List.filter_map normalize merged))

let normalize_doc (d : Tree.document) =
  match normalize d.Tree.root with
  | Some r -> r
  | None -> Tree.Element ("empty", [], [])

(* ------------------------------------------------------------------ *)
(* Whole-pipeline properties                                           *)
(* ------------------------------------------------------------------ *)

let prop_load_reconstruct =
  QCheck2.Test.make ~name:"load -> reconstruct is the identity (mod whitespace)" ~count:150
    gen_doc (fun doc ->
      let xml = Printer.to_string doc in
      let engine = Xquec_core.Engine.load ~name:"f.xml" xml in
      let back = Xquec_core.Engine.to_document engine in
      Tree.equal (normalize_doc doc) (normalize_doc back))

let prop_save_restore_reconstruct =
  QCheck2.Test.make ~name:"save -> restore -> reconstruct is the identity" ~count:60 gen_doc
    (fun doc ->
      let xml = Printer.to_string doc in
      let engine = Xquec_core.Engine.load ~name:"f.xml" xml in
      let engine' = Xquec_core.Engine.restore (Xquec_core.Engine.save engine) in
      Tree.equal
        (normalize_doc (Xquec_core.Engine.to_document engine))
        (normalize_doc (Xquec_core.Engine.to_document engine')))

let prop_counts_agree =
  QCheck2.Test.make ~name:"descendant counts agree with the DOM" ~count:100 gen_doc
    (fun doc ->
      let xml = Printer.to_string doc in
      let engine = Xquec_core.Engine.load ~name:"f.xml" xml in
      List.for_all
        (fun tag ->
          let q = Printf.sprintf "count(document(\"f.xml\")//%s)" tag in
          let got = Xquec_core.Engine.query_serialized engine q in
          (* descendants_with_tag is descendant-or-self, which matches
             what //tag from the document node returns *)
          let expected = List.length (Tree.descendants_with_tag doc.Tree.root tag) in
          String.equal got (string_of_int expected))
        [ "a"; "item"; "x" ])

let prop_random_value_queries =
  (* pick a value present in the document; an equality query must find
     at least one match under every codec *)
  QCheck2.Test.make ~name:"equality pushdown finds planted values" ~count:80
    QCheck2.Gen.(pair gen_doc (oneofl [ "alpha"; "gold ring"; "42" ]))
    (fun (doc, needle) ->
      let planted =
        Tree.Element ("planted", [], [ Tree.Element ("v", [], [ Tree.Text needle ]) ])
      in
      let root =
        match doc.Tree.root with
        | Tree.Element (t, a, k) -> Tree.Element (t, a, planted :: k)
        | Tree.Text _ -> planted
      in
      let xml = Printer.to_string { Tree.root } in
      List.for_all
        (fun alg ->
          let options =
            { Xquec_core.Loader.default_string_algorithm = alg; detect_numeric = false; spill_directory = None }
          in
          let repo = Xquec_core.Loader.load ~options ~name:"f.xml" xml in
          let q =
            Printf.sprintf "count(document(\"f.xml\")//v[. = \"%s\"])" needle
          in
          match Xquec_core.Executor.run_string repo q with
          | [ Xquec_core.Executor.Num n ] -> n >= 1.0
          | _ -> false)
        [ Compress.Codec.Alm_alg; Compress.Codec.Huffman_alg; Compress.Codec.Hu_tucker_alg ])

(* ------------------------------------------------------------------ *)
(* Randomized query differential testing                               *)
(* ------------------------------------------------------------------ *)

(* Random simple queries over random documents, checked against the
   naive reference engine: paths over both axes, attribute and text
   steps, equality/existence predicates, counts and wrappers. *)
let gen_query : string QCheck2.Gen.t =
  let open QCheck2.Gen in
  let tag = oneofl [ "a"; "b"; "item"; "name"; "x" ] in
  let attr = oneofl [ "id"; "k"; "v" ] in
  let word = oneofl [ "alpha"; "beta"; "42"; "z" ] in
  let sep = oneofl [ "/"; "//" ] in
  let pred =
    oneof
      [
        return "";
        map (fun t -> Printf.sprintf "[%s]" t) tag;
        map2 (fun a w -> Printf.sprintf "[@%s = \"%s\"]" a w) attr word;
        map2 (fun t w -> Printf.sprintf "[%s = \"%s\"]" t w) tag word;
        return "[1]";
        return "[last()]";
      ]
  in
  let step = map3 (fun s t p -> s ^ t ^ p) sep tag pred in
  let steps = map (String.concat "") (list_size (int_range 1 3) step) in
  let leaf = oneof [ return ""; return "/text()"; map (fun a -> "/@" ^ a) attr ] in
  let path = map2 (fun st l -> "document(\"f.xml\")" ^ st ^ l) steps leaf in
  oneof
    [
      path;
      map (fun p -> Printf.sprintf "count(%s)" p) path;
      map2
        (fun p w ->
          Printf.sprintf
            "for $i in %s where contains(string($i), \"%s\") return string($i)" p w)
        path word;
    ]

let prop_random_queries_agree =
  QCheck2.Test.make ~name:"random queries: executor = naive reference" ~count:250
    QCheck2.Gen.(pair gen_doc gen_query)
    (fun (doc, query) ->
      let xml = Printer.to_string doc in
      let parsed = Parser.parse_string xml in
      let ast = Xquery.Parser.parse query in
      let reference =
        Baselines.Galax_like.serialize
          (Baselines.Galax_like.run ~docs:[ ("f.xml", parsed) ] ast)
      in
      let repo = Xquec_core.Loader.load ~name:"f.xml" xml in
      let got = Xquec_core.Executor.serialize repo (Xquec_core.Executor.run repo ast) in
      String.equal reference got)

(* ------------------------------------------------------------------ *)
(* Codec edge cases                                                    *)
(* ------------------------------------------------------------------ *)

let test_degenerate_containers () =
  (* single-value, all-identical, and highly repetitive containers must
     roundtrip under every trainable codec *)
  let cases =
    [
      [ "x" ];
      List.init 50 (fun _ -> "same");
      [ String.make 5000 'a' ];
      [ "" ; "" ; "" ];
      [ "\x00\x01\x02"; "\xff\xfe" ];
    ]
  in
  List.iter
    (fun values ->
      List.iter
        (fun alg ->
          match Compress.Codec.train alg values with
          | exception Compress.Codec.Unsupported _ -> ()
          | model ->
            List.iter
              (fun v ->
                Alcotest.(check string)
                  (Compress.Codec.algorithm_name alg ^ " degenerate roundtrip")
                  v
                  (Compress.Codec.decompress model (Compress.Codec.compress model v)))
              values)
        Compress.Codec.all_algorithms)
    cases

let test_empty_document_parts () =
  let engine = Xquec_core.Engine.load ~name:"e.xml" "<root/>" in
  Alcotest.(check string) "count on empty" "0"
    (Xquec_core.Engine.query_serialized engine "count(document(\"e.xml\")//anything)");
  Alcotest.(check string) "reconstruct empty" "<root/>" (Xquec_core.Engine.to_xml engine)

let test_malformed_repository_rejected () =
  (* corrupting a serialized repository must raise, not crash or return
     garbage silently *)
  let engine = Xquec_core.Engine.load ~name:"m.xml" "<a><b>x</b></a>" in
  let data = Xquec_core.Engine.save engine in
  let corrupt = String.sub data 0 (String.length data / 2) in
  match Xquec_core.Engine.restore corrupt with
  | exception _ -> ()
  | _ ->
    (* a truncated prefix may coincidentally parse; ensure byte damage in
       the header is caught too *)
    let damaged = "\xff\xff\xff" ^ data in
    (match Xquec_core.Engine.restore damaged with
    | exception _ -> ()
    | _ -> Alcotest.fail "corrupted repository accepted")

let test_spill_loader_identical () =
  (* the secondary-storage staging path must build a byte-identical
     repository *)
  let xml = Xmark.Xmlgen.generate ~scale:0.05 () in
  let in_memory = Xquec_core.Loader.load ~name:"s.xml" xml in
  let dir = Filename.get_temp_dir_name () in
  let options = { Xquec_core.Loader.default_options with spill_directory = Some dir } in
  let spilled = Xquec_core.Loader.load ~options ~name:"s.xml" xml in
  Alcotest.(check bool) "identical serialized repositories" true
    (String.equal
       (Storage.Repository.serialize in_memory)
       (Storage.Repository.serialize spilled))

let test_huge_values () =
  let big = String.concat " " (List.init 2000 (fun i -> string_of_int (i mod 37))) in
  let xml = Printf.sprintf "<d><t>%s</t><t>short</t></d>" big in
  let engine = Xquec_core.Engine.load ~name:"h.xml" xml in
  Alcotest.(check string) "huge value roundtrips" big
    (Xquec_core.Engine.query_serialized engine "document(\"h.xml\")/d/t[1]/text()")

let suites =
  [
    ( "fuzz",
      [
        QCheck_alcotest.to_alcotest prop_load_reconstruct;
        QCheck_alcotest.to_alcotest prop_save_restore_reconstruct;
        QCheck_alcotest.to_alcotest prop_counts_agree;
        QCheck_alcotest.to_alcotest prop_random_value_queries;
        QCheck_alcotest.to_alcotest prop_random_queries_agree;
        Alcotest.test_case "degenerate containers" `Quick test_degenerate_containers;
        Alcotest.test_case "empty document" `Quick test_empty_document_parts;
        Alcotest.test_case "malformed repository rejected" `Quick
          test_malformed_repository_rejected;
        Alcotest.test_case "spill loader identical" `Quick test_spill_loader_identical;
        Alcotest.test_case "huge values" `Quick test_huge_values;
      ] );
  ]
