(* Tests for the compression substrate: round-trips for every codec,
   order-preservation and compressed-domain predicates, model
   serialization, and the bzip pipeline stages. *)

open Compress

let sample_values =
  [
    "there"; "their"; "these"; "the"; "theology"; "zebra"; "apple"; "banana";
    "a"; ""; "mango mango mango"; "Shakespeare wrote many plays";
    "creditcard"; "2001-05-04"; "united states"; "gold ring";
  ]

let words =
  [ "the"; "quick"; "brown"; "fox"; "jumps"; "over"; "lazy"; "dog"; "auction";
    "person"; "item"; "europe"; "gold"; "silver"; "bidder"; "increase" ]

let big_text =
  let buf = Buffer.create 4096 in
  let state = ref 12345 in
  for _ = 1 to 800 do
    state := ((!state * 1103515245) + 12345) land 0x3fffffff;
    Buffer.add_string buf (List.nth words (!state mod List.length words));
    Buffer.add_char buf ' '
  done;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

let gen_string =
  QCheck2.Gen.(string_size ~gen:(map Char.chr (int_range 0 255)) (int_range 0 40))

let gen_text =
  QCheck2.Gen.(
    string_size ~gen:(oneofl [ 'a'; 'b'; 'c'; 'e'; 't'; 'h'; ' '; 'r'; 's' ]) (int_range 0 30))

let gen_pair g = QCheck2.Gen.pair g g

(* ------------------------------------------------------------------ *)
(* Bitio                                                               *)
(* ------------------------------------------------------------------ *)

let test_bitio_roundtrip () =
  let w = Bitio.Writer.create () in
  Bitio.Writer.add_bits w 0b101 3;
  Bitio.Writer.add_bits w 0xABCD 16;
  Bitio.Writer.add_bit w true;
  let s = Bitio.Writer.contents w in
  let r = Bitio.Reader.of_string s in
  Alcotest.(check int) "3 bits" 0b101 (Bitio.Reader.read_bits r 3);
  Alcotest.(check int) "16 bits" 0xABCD (Bitio.Reader.read_bits r 16);
  Alcotest.(check bool) "1 bit" true (Bitio.Reader.read_bit r)

let test_bitio_width () =
  Alcotest.(check int) "w1" 1 (Bitio.width_for 2);
  Alcotest.(check int) "w2" 2 (Bitio.width_for 3);
  Alcotest.(check int) "w8" 8 (Bitio.width_for 256);
  Alcotest.(check int) "w9" 9 (Bitio.width_for 257)

let prop_bitio =
  QCheck2.Test.make ~name:"bitio roundtrip" ~count:300
    QCheck2.Gen.(small_list (pair (int_bound 0xffff) (int_range 1 16)))
    (fun specs ->
      let specs = List.map (fun (v, w) -> (v land ((1 lsl w) - 1), w)) specs in
      let w = Bitio.Writer.create () in
      List.iter (fun (v, width) -> Bitio.Writer.add_bits w v width) specs;
      let r = Bitio.Reader.of_string (Bitio.Writer.contents w) in
      List.for_all (fun (v, width) -> Bitio.Reader.read_bits r width = v) specs)

(* ------------------------------------------------------------------ *)
(* Per-codec round-trip + property suites                              *)
(* ------------------------------------------------------------------ *)

let roundtrip_tests name train compress decompress =
  let model = train sample_values in
  let rt v =
    Alcotest.(check string)
      (Printf.sprintf "%s roundtrip %S" name v)
      v
      (decompress model (compress model v))
  in
  Alcotest.test_case (name ^ " roundtrips") `Quick (fun () ->
      List.iter rt sample_values;
      rt "unseen value entirely new";
      rt (String.make 200 'x');
      rt "\x00\x01\xff binary \xfe")

let prop_roundtrip name gen train compress decompress =
  QCheck2.Test.make ~name:(name ^ " roundtrip (random)") ~count:300 gen (fun v ->
      let model = train sample_values in
      decompress model (compress model v) = v)

(* Training happens once per property run to keep tests fast. *)
let huffman_model = lazy (Huffman.train sample_values)
let alm_model = lazy (Alm.train sample_values)
let arith_model = lazy (Arith.train sample_values)
let hu_model = lazy (Hu_tucker.train sample_values)

let prop_cached name gen f = QCheck2.Test.make ~name ~count:400 gen f

(* --- Huffman --- *)

let test_huffman_equality () =
  let m = Lazy.force huffman_model in
  let a = Huffman.compress m "gold ring" in
  let b = Huffman.compress m "gold ring" in
  let c = Huffman.compress m "gold rings" in
  Alcotest.(check bool) "equal" true (Huffman.equal_compressed a b);
  Alcotest.(check bool) "not equal" false (Huffman.equal_compressed a c)

let test_huffman_prefix () =
  let m = Lazy.force huffman_model in
  let v = Huffman.compress m "gold ring" in
  let yes = Huffman.compress_prefix m "gold" in
  let no = Huffman.compress_prefix m "silver" in
  Alcotest.(check bool) "prefix matches" true (Huffman.matches_prefix ~prefix_bits:yes v);
  Alcotest.(check bool) "prefix rejects" false (Huffman.matches_prefix ~prefix_bits:no v)

let prop_huffman_prefix =
  prop_cached "huffman prefix-wildcard agrees with plaintext" (gen_pair gen_text)
    (fun (v, p) ->
      let m = Lazy.force huffman_model in
      let compressed = Huffman.compress m v in
      let prefix_bits = Huffman.compress_prefix m p in
      let plain =
        String.length p <= String.length v && String.sub v 0 (String.length p) = p
      in
      Huffman.matches_prefix ~prefix_bits compressed = plain)

let test_huffman_model_serial () =
  let m = Lazy.force huffman_model in
  let m' = Huffman.deserialize_model (Huffman.serialize_model m) in
  List.iter
    (fun v ->
      Alcotest.(check string) "serial roundtrip" v (Huffman.decompress m' (Huffman.compress m v)))
    sample_values

let test_huffman_compresses () =
  let m = Huffman.train [ big_text ] in
  let c = Huffman.compress m big_text in
  Alcotest.(check bool) "smaller than input" true
    (String.length c < String.length big_text)

(* --- ALM --- *)

let test_alm_fig2 () =
  (* The paper's Fig. 2 scenario: "the" must receive several codes around
     the longer token "there", and order must be preserved. *)
  let m = Alm.of_tokens [ "the"; "there"; "ir"; "se" ] in
  let enc = Alm.compress m in
  let check_lt a b =
    Alcotest.(check bool)
      (Printf.sprintf "%s < %s compressed" a b)
      true
      (Alm.compare_compressed (enc a) (enc b) < 0)
  in
  check_lt "their" "there";
  check_lt "there" "these";
  check_lt "the" "their";
  check_lt "the" "there";
  List.iter
    (fun v -> Alcotest.(check string) "fig2 roundtrip" v (Alm.decompress m (enc v)))
    [ "their"; "there"; "these"; "the"; "th"; "t"; "" ]

let prop_alm_order =
  prop_cached "alm order preservation" (gen_pair gen_text) (fun (a, b) ->
      let m = Lazy.force alm_model in
      let ca = Alm.compress m a and cb = Alm.compress m b in
      compare (Alm.compare_compressed ca cb) 0 = compare (String.compare a b) 0)

let prop_alm_order_binary =
  prop_cached "alm order preservation (binary)" (gen_pair gen_string) (fun (a, b) ->
      let m = Lazy.force alm_model in
      let ca = Alm.compress m a and cb = Alm.compress m b in
      compare (Alm.compare_compressed ca cb) 0 = compare (String.compare a b) 0)

let test_alm_prefix_range () =
  let m = Lazy.force alm_model in
  let (lo, hi) = Alm.prefix_range m "the" in
  let inside = Alm.compress m "theology" in
  let outside = Alm.compress m "tha" in
  let matches c =
    Alm.compare_compressed lo c <= 0
    && match hi with None -> true | Some h -> Alm.compare_compressed c h < 0
  in
  Alcotest.(check bool) "inside" true (matches inside);
  Alcotest.(check bool) "outside" false (matches outside)

let test_alm_model_serial () =
  let m = Lazy.force alm_model in
  let m' = Alm.deserialize_model (Alm.serialize_model m) in
  List.iter
    (fun v ->
      Alcotest.(check string) "serial roundtrip" v (Alm.decompress m' (Alm.compress m v)))
    sample_values

let test_alm_compresses () =
  let m = Alm.train [ big_text ] in
  let c = Alm.compress m big_text in
  Alcotest.(check bool) "smaller than input" true
    (String.length c < String.length big_text)

(* --- Arithmetic --- *)

let prop_arith_order =
  prop_cached "arith order preservation" (gen_pair gen_text) (fun (a, b) ->
      let m = Lazy.force arith_model in
      let ca = Arith.compress m a and cb = Arith.compress m b in
      compare (Arith.compare_compressed ca cb) 0 = compare (String.compare a b) 0)

let test_arith_model_serial () =
  let m = Lazy.force arith_model in
  let m' = Arith.deserialize_model (Arith.serialize_model m) in
  List.iter
    (fun v ->
      Alcotest.(check string) "serial roundtrip" v (Arith.decompress m' (Arith.compress m' v)))
    sample_values

(* --- Hu-Tucker --- *)

let prop_hu_order =
  prop_cached "hu-tucker order preservation" (gen_pair gen_text) (fun (a, b) ->
      let m = Lazy.force hu_model in
      let ca = Hu_tucker.compress m a and cb = Hu_tucker.compress m b in
      compare (Hu_tucker.compare_compressed ca cb) 0 = compare (String.compare a b) 0)

let test_hu_optimality_sanity () =
  (* Hu-Tucker is optimal among alphabetic codes; on a heavily skewed
     distribution it must beat the fixed-width 9-bit encoding. *)
  let values = List.init 200 (fun _ -> "aaaaaaaaab") in
  let m = Hu_tucker.train values in
  let c = Hu_tucker.compress m "aaaaaaaaab" in
  Alcotest.(check bool) "beats fixed width" true (String.length c < 10)

let test_hu_model_serial () =
  let m = Lazy.force hu_model in
  let m' = Hu_tucker.deserialize_model (Hu_tucker.serialize_model m) in
  List.iter
    (fun v ->
      Alcotest.(check string) "serial roundtrip" v
        (Hu_tucker.decompress m' (Hu_tucker.compress m v)))
    sample_values

(* --- BWT / MTF / RLE / Bzip / LZSS --- *)

let prop_bwt =
  QCheck2.Test.make ~name:"bwt roundtrip" ~count:300 gen_string (fun s ->
      Bwt.inverse (Bwt.transform s) = s)

let prop_mtf =
  QCheck2.Test.make ~name:"mtf roundtrip" ~count:300 gen_string (fun s ->
      Mtf.decode (Mtf.encode s) = s)

let prop_rle =
  QCheck2.Test.make ~name:"rle roundtrip" ~count:300
    QCheck2.Gen.(string_size ~gen:(map Char.chr (int_range 0 3)) (int_range 0 80))
    (fun s -> Rle.decode (Rle.encode s) = s)

let prop_bzip =
  QCheck2.Test.make ~name:"bzip roundtrip" ~count:100 gen_string (fun s ->
      Bzip.decompress (Bzip.compress s) = s)

let test_bzip_big () =
  Alcotest.(check string) "big text" big_text (Bzip.decompress (Bzip.compress big_text));
  let c = Bzip.compress big_text in
  Alcotest.(check bool) "compresses repetitive text" true
    (String.length c < String.length big_text / 2)

let test_bzip_multiblock () =
  let data = String.concat "" (List.init 80 (fun i -> big_text ^ string_of_int i)) in
  Alcotest.(check bool) "spans blocks" true (String.length data > 1 lsl 18);
  Alcotest.(check string) "multiblock roundtrip" data (Bzip.decompress (Bzip.compress data))

let prop_lzss =
  QCheck2.Test.make ~name:"lzss roundtrip" ~count:200 gen_string (fun s ->
      Lzss.decompress (Lzss.compress s) = s)

let test_lzss_big () =
  Alcotest.(check string) "big text" big_text (Lzss.decompress (Lzss.compress big_text));
  let c = Lzss.compress big_text in
  Alcotest.(check bool) "compresses repetitive text" true
    (String.length c < String.length big_text)

(* --- Numeric --- *)

let test_numeric_int () =
  let m = Ipack.train [ "0"; "5"; "123"; "99999" ] in
  List.iter
    (fun v -> Alcotest.(check string) "int roundtrip" v (Ipack.decompress m (Ipack.compress m v)))
    [ "0"; "5"; "123"; "99999"; "1000000" ];
  let lt a b =
    Ipack.compare_compressed (Ipack.compress m a) (Ipack.compress m b) < 0
  in
  Alcotest.(check bool) "9 < 10 numerically" true (lt "9" "10");
  Alcotest.(check bool) "100 > 99" true (lt "99" "100")

let test_numeric_decimal () =
  let m = Ipack.train [ "0.00"; "58.43"; "1.99" ] in
  List.iter
    (fun v ->
      Alcotest.(check string) "decimal roundtrip" v (Ipack.decompress m (Ipack.compress m v)))
    [ "0.00"; "58.43"; "1.99"; "40.00"; "12345.67" ];
  let lt a b =
    Ipack.compare_compressed (Ipack.compress m a) (Ipack.compress m b) < 0
  in
  Alcotest.(check bool) "9.50 < 10.20" true (lt "9.50" "10.20")

let test_numeric_rejects_text () =
  match Ipack.train [ "12"; "gold" ] with
  | exception Ipack.Unsupported _ -> ()
  | _ -> Alcotest.fail "expected Unsupported"

let prop_numeric_order =
  QCheck2.Test.make ~name:"numeric order = numeric comparison" ~count:300
    QCheck2.Gen.(pair (int_bound 100000) (int_bound 100000))
    (fun (a, b) ->
      let m = Ipack.train [ "1" ] in
      let ca = Ipack.compress m (string_of_int a)
      and cb = Ipack.compress m (string_of_int b) in
      compare (Ipack.compare_compressed ca cb) 0 = compare a b)

(* --- Codec layer --- *)

let test_codec_dispatch () =
  List.iter
    (fun alg ->
      match Codec.train alg sample_values with
      | exception Codec.Unsupported _ ->
        Alcotest.(check string) "only numeric may reject" "numeric"
          (Codec.algorithm_name alg)
      | model ->
        Alcotest.(check string) "name roundtrip" (Codec.algorithm_name alg)
          (Codec.algorithm_name (Codec.algorithm_of_name (Codec.algorithm_name alg)));
        List.iter
          (fun v ->
            Alcotest.(check string)
              (Codec.algorithm_name alg ^ " codec roundtrip")
              v
              (Codec.decompress model (Codec.compress model v)))
          sample_values)
    Codec.all_algorithms

let test_codec_properties () =
  let p = Codec.properties Codec.Alm_alg in
  Alcotest.(check bool) "alm ineq" true p.Codec.ineq;
  Alcotest.(check bool) "alm wild" false p.Codec.wild;
  let p = Codec.properties Codec.Huffman_alg in
  Alcotest.(check bool) "huffman ineq" false p.Codec.ineq;
  Alcotest.(check bool) "huffman wild" true p.Codec.wild;
  Alcotest.(check bool) "bzip nothing" false (Codec.supports Codec.Bzip_alg `Eq);
  Alcotest.(check bool) "alm cheaper than huffman" true
    (Codec.decompression_cost Codec.Alm_alg < Codec.decompression_cost Codec.Huffman_alg)

let suites =
  [
    ( "bitio",
      [
        Alcotest.test_case "roundtrip" `Quick test_bitio_roundtrip;
        Alcotest.test_case "width_for" `Quick test_bitio_width;
        QCheck_alcotest.to_alcotest prop_bitio;
      ] );
    ( "huffman",
      [
        roundtrip_tests "huffman" Huffman.train Huffman.compress Huffman.decompress;
        Alcotest.test_case "equality in compressed domain" `Quick test_huffman_equality;
        Alcotest.test_case "prefix wildcard" `Quick test_huffman_prefix;
        Alcotest.test_case "model serialization" `Quick test_huffman_model_serial;
        Alcotest.test_case "actually compresses" `Quick test_huffman_compresses;
        QCheck_alcotest.to_alcotest
          (prop_roundtrip "huffman" gen_string Huffman.train Huffman.compress
             Huffman.decompress);
        QCheck_alcotest.to_alcotest prop_huffman_prefix;
      ] );
    ( "alm",
      [
        roundtrip_tests "alm" Alm.train Alm.compress Alm.decompress;
        Alcotest.test_case "paper fig. 2 scenario" `Quick test_alm_fig2;
        Alcotest.test_case "prefix range extension" `Quick test_alm_prefix_range;
        Alcotest.test_case "model serialization" `Quick test_alm_model_serial;
        Alcotest.test_case "actually compresses" `Quick test_alm_compresses;
        QCheck_alcotest.to_alcotest
          (prop_roundtrip "alm" gen_string Alm.train Alm.compress Alm.decompress);
        QCheck_alcotest.to_alcotest prop_alm_order;
        QCheck_alcotest.to_alcotest prop_alm_order_binary;
      ] );
    ( "arith",
      [
        roundtrip_tests "arith" Arith.train Arith.compress Arith.decompress;
        Alcotest.test_case "model serialization" `Quick test_arith_model_serial;
        QCheck_alcotest.to_alcotest
          (prop_roundtrip "arith" gen_string Arith.train Arith.compress Arith.decompress);
        QCheck_alcotest.to_alcotest prop_arith_order;
      ] );
    ( "hu-tucker",
      [
        roundtrip_tests "hu-tucker" Hu_tucker.train Hu_tucker.compress
          Hu_tucker.decompress;
        Alcotest.test_case "optimality sanity" `Quick test_hu_optimality_sanity;
        Alcotest.test_case "model serialization" `Quick test_hu_model_serial;
        QCheck_alcotest.to_alcotest
          (prop_roundtrip "hu-tucker" gen_string Hu_tucker.train Hu_tucker.compress
             Hu_tucker.decompress);
        QCheck_alcotest.to_alcotest prop_hu_order;
      ] );
    ( "bzip-pipeline",
      [
        Alcotest.test_case "bzip big text" `Quick test_bzip_big;
        Alcotest.test_case "bzip multi-block" `Quick test_bzip_multiblock;
        Alcotest.test_case "lzss big text" `Quick test_lzss_big;
        QCheck_alcotest.to_alcotest prop_bwt;
        QCheck_alcotest.to_alcotest prop_mtf;
        QCheck_alcotest.to_alcotest prop_rle;
        QCheck_alcotest.to_alcotest prop_bzip;
        QCheck_alcotest.to_alcotest prop_lzss;
      ] );
    ( "numeric",
      [
        Alcotest.test_case "integers" `Quick test_numeric_int;
        Alcotest.test_case "decimals" `Quick test_numeric_decimal;
        Alcotest.test_case "rejects text" `Quick test_numeric_rejects_text;
        QCheck_alcotest.to_alcotest prop_numeric_order;
      ] );
    ( "codec",
      [
        Alcotest.test_case "dispatch all algorithms" `Quick test_codec_dispatch;
        Alcotest.test_case "properties table" `Quick test_codec_properties;
      ] );
  ]
