# Convenience targets; everything below is plain dune.

XQUEC := dune exec bin/xquec.exe --
SMOKE_DIR := _smoke
GATE_DIR := _gate

# The fast, deterministic experiments the quick bench gate reruns on
# every `make check` (counts, sizes and digests only — quick mode skips
# timing metrics, and experiments not on this list are skipped).
GATE_QUICK_EXPERIMENTS := table1 storage_occupancy ablations homomorphic_scan parallel join heat serve watch compact

.PHONY: all build check test bench bench-gate smoke serve-smoke docs clean

all: build

build:
	dune build

# tier-1 gate: everything compiles and the full test suite passes,
# including (called out explicitly because the fixtures live on disk)
# the v1- and v3-format backward-compatibility reads of
# test/fixtures/v1_small.xqc and test/fixtures/v3_small.xqc.
# The storage suite runs three times more: with a 4-domain decode pool
# (parallel block decode exercised everywhere), with 0 domains (the
# sequential fallback), and with XQUEC_FORMAT=v3 (the v4 kill switch:
# freshly written images fall back to the packed record tree), all of
# which must agree with the default run.
# Finally the quick bench gate reruns the fast experiments and diffs
# their counts and digests against the committed baseline, and a tiny
# generate -> compress -> query -> profile round-trip asserts the
# workload profiler resolves at least one container from the query log.
check:
	dune build
	dune runtest
	cd test && dune exec ./test_main.exe -- test storage
	cd test && XQUEC_DECODE_DOMAINS=4 dune exec ./test_main.exe -- test storage
	cd test && XQUEC_DECODE_DOMAINS=0 dune exec ./test_main.exe -- test storage
	cd test && XQUEC_FORMAT=v3 dune exec ./test_main.exe -- test storage
	cd test && XQUEC_FORMAT=v3 dune exec ./test_main.exe -- test succinct
	mkdir -p $(GATE_DIR)
	dune exec bench/main.exe -- --json $(GATE_DIR)/quick.json $(GATE_QUICK_EXPERIMENTS) \
	  > $(GATE_DIR)/quick.log
	dune exec tools/bench_gate.exe -- --quick --candidate $(GATE_DIR)/quick.json
	$(XQUEC) generate -d xmark -s 0.05 -o $(GATE_DIR)/auction.xml
	$(XQUEC) compress $(GATE_DIR)/auction.xml -o $(GATE_DIR)/auction.xqc
	$(XQUEC) query $(GATE_DIR)/auction.xqc \
	  'for $$p in document("auction.xml")/site/people/person where $$p/@id = "person0" return $$p/name' \
	  --query-log $(GATE_DIR)/query-log.jsonl > /dev/null
	$(XQUEC) profile $(GATE_DIR)/query-log.jsonl --json | grep -q '"container"'
	$(MAKE) serve-smoke

# full bench regression gate: rerun the whole suite (~3 min at the
# default scale) and diff every metric — timings included, with 2x
# slack — against the committed BENCH_results.json. The verdict also
# lands in $(GATE_DIR)/verdict.json for machines.
bench-gate: build
	mkdir -p $(GATE_DIR)
	dune exec bench/main.exe -- --json $(GATE_DIR)/results.json > $(GATE_DIR)/bench.log
	dune exec tools/bench_gate.exe -- --candidate $(GATE_DIR)/results.json \
	  --json $(GATE_DIR)/verdict.json

test: check

# serving smoke: boot the real `xquec serve` process on a small
# repository, fire concurrent requests at it (queries interleaved with
# /metrics scrapes, results checked against a sequential reference),
# replay a shifted query mix until the drift watchdog raises
# drift_sustained on /alerts and in the alert log, and assert it shuts
# down cleanly on SIGTERM. See docs/SERVING.md.
serve-smoke: build
	mkdir -p $(GATE_DIR)
	test -f $(GATE_DIR)/auction.xml || $(XQUEC) generate -d xmark -s 0.05 -o $(GATE_DIR)/auction.xml
	test -f $(GATE_DIR)/auction.xqc || $(XQUEC) compress $(GATE_DIR)/auction.xml -o $(GATE_DIR)/auction.xqc
	dune exec tools/serve_smoke.exe -- _build/default/bin/xquec.exe $(GATE_DIR)/auction.xqc

# documentation gate: every exported item in the storage, compress,
# core, obs, xquery and xmark interfaces must carry an odoc comment (no
# odoc install needed), and the operator guide's flags/metric names and
# the format reference's magics/flag constants must all resolve against
# the sources (--xref; see tools/doc_lint.ml)
docs: build
	ocaml tools/doc_lint.ml lib/storage lib/compress lib/core lib/obs \
	  lib/xquery lib/xmark \
	  --xref docs/SERVING.md --xref docs/FORMATS.md --xref docs/OBSERVABILITY.md

bench:
	dune exec bench/main.exe

# end-to-end smoke: generate an XMark document, compress it with a small
# workload, then EXPLAIN ANALYZE a query against the repository with
# tracing + metrics on.
smoke: build
	mkdir -p $(SMOKE_DIR)
	$(XQUEC) generate -d xmark -s 0.05 -o $(SMOKE_DIR)/auction.xml
	printf 'for $$p in document("auction.xml")/site/people/person where $$p/@id = "person0" return $$p/name\n' \
	  > $(SMOKE_DIR)/workload.xq
	$(XQUEC) compress $(SMOKE_DIR)/auction.xml -w $(SMOKE_DIR)/workload.xq \
	  -o $(SMOKE_DIR)/auction.xqc --trace-out $(SMOKE_DIR)/compress-trace.json
	$(XQUEC) explain $(SMOKE_DIR)/auction.xqc \
	  'for $$p in document("auction.xml")/site/people/person where $$p/@id = "person0" return $$p/name/text()' \
	  --stats --trace-out $(SMOKE_DIR)/query-trace.json \
	  --query-log $(SMOKE_DIR)/query-log.jsonl
	$(XQUEC) profile $(SMOKE_DIR)/query-log.jsonl
	$(XQUEC) query $(SMOKE_DIR)/auction.xqc \
	  'document("auction.xml")/site/people/person[@id = "person0"]/name' \
	  > $(SMOKE_DIR)/answer-before.txt
	$(XQUEC) compact $(SMOKE_DIR)/auction.xqc --block-size 4096 \
	  -o $(SMOKE_DIR)/auction-compact.xqc
	$(XQUEC) query $(SMOKE_DIR)/auction-compact.xqc \
	  'document("auction.xml")/site/people/person[@id = "person0"]/name' \
	  > $(SMOKE_DIR)/answer-after.txt
	cmp $(SMOKE_DIR)/answer-before.txt $(SMOKE_DIR)/answer-after.txt
	dune exec bench/main.exe -- --scale 0.1 --domains 1 \
	  --json $(SMOKE_DIR)/parallel.json parallel
	dune exec bench/main.exe -- --scale 0.1 \
	  --json $(SMOKE_DIR)/join.json join
	@echo "smoke artifacts in $(SMOKE_DIR)/"

clean:
	dune clean
	rm -rf $(SMOKE_DIR) $(GATE_DIR)
