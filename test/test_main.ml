let () =
  Alcotest.run "xquec"
    (Test_xmlkit.suites @ Test_compress.suites @ Test_storage.suites @ Test_succinct.suites
    @ Test_xquery.suites @ Test_executor.suites @ Test_core.suites
    @ Test_baselines.suites @ Test_xmark.suites @ Test_fuzz.suites @ Test_more.suites
    @ Test_obs.suites @ Test_workload.suites @ Test_serve.suites @ Test_watch.suites
    @ Test_compact.suites @ Test_differential.suites)
