(* Additional coverage: physical operator combinators, summary
   serialization, codec misuse, workload corner cases, and the CLI's
   workload-file format helpers exercised through the engine. *)

open Xquec_core

let shop =
  "<shop><item id=\"i1\" price=\"10.50\"><name>chair</name></item>\
   <item id=\"i2\" price=\"5.00\"><name>table</name></item>\
   <item id=\"i3\" price=\"99.99\"><name>mirror</name></item></shop>"

let repo = lazy (Loader.load ~name:"shop.xml" shop)

let cid path =
  match Storage.Repository.find_container_by_path (Lazy.force repo) path with
  | Some c -> c.Storage.Container.id
  | None -> Alcotest.failf "no container %s" path

(* ------------------------------------------------------------------ *)
(* Physical combinators                                                *)
(* ------------------------------------------------------------------ *)

let test_project_select_sort () =
  let repo = Lazy.force repo in
  let prices = Physical.cont_scan repo (cid "/shop/item/@price") in
  let projected = Physical.project [ 0 ] prices in
  Alcotest.(check int) "project width" 1 projected.Physical.width;
  let sorted =
    Physical.sort
      (fun a b ->
        compare
          (Executor.atom_number (Executor.mk_ctx repo) a)
          (Executor.atom_number (Executor.mk_ctx repo) b))
      ~col:0 projected
  in
  let values =
    Physical.run sorted
    |> List.map (fun t -> Executor.atom_string (Executor.mk_ctx repo) t.(0))
  in
  Alcotest.(check (list string)) "numeric sort" [ "5.00"; "10.50"; "99.99" ] values;
  let selected =
    Physical.select
      (fun t ->
        match Executor.atom_number (Executor.mk_ctx repo) t.(0) with
        | Some f -> f > 6.0
        | None -> false)
      projected
  in
  Alcotest.(check int) "select" 2 (Physical.cardinality selected)

let test_text_content_operator () =
  let repo = Lazy.force repo in
  let code n = Option.get (Storage.Name_dict.code repo.Storage.Repository.dict n) in
  let names =
    Physical.summary_access repo [ `Child (code "shop"); `Child (code "item"); `Child (code "name") ]
  in
  let with_text = Physical.text_content repo [ cid "/shop/item/name/#text" ] names ~col:0 in
  let texts =
    Physical.run with_text |> List.map (fun t -> Executor.atom_string (Executor.mk_ctx repo) t.(1))
  in
  Alcotest.(check (list string)) "text content doc order" [ "chair"; "table"; "mirror" ] texts

let test_xml_serialize_operator () =
  let repo = Lazy.force repo in
  let plan = Physical.cont_access_eq repo (cid "/shop/item/@id") ~value:"i2" in
  let plan = Physical.decompress repo plan ~col:0 in
  Alcotest.(check string) "serialize column" "i2" (Physical.xml_serialize repo plan ~col:0)

(* ------------------------------------------------------------------ *)
(* Codec misuse / properties                                           *)
(* ------------------------------------------------------------------ *)

let test_order_agnostic_compare_rejected () =
  let m = Compress.Codec.train Compress.Codec.Huffman_alg [ "a"; "b" ] in
  match Compress.Codec.compare_compressed m "x" "y" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "Huffman must reject order comparison"

let test_alm_model_is_token_function () =
  (* the serialized model is the token list; rebuilding from tokens gives
     identical encodings *)
  let values = List.init 80 (fun i -> Printf.sprintf "value number %d" i) in
  let m = Compress.Alm.train values in
  let m' = Compress.Alm.of_tokens (Compress.Alm.model_tokens m) in
  List.iter
    (fun v ->
      Alcotest.(check string) "same encoding" (Compress.Alm.compress m v)
        (Compress.Alm.compress m' v))
    values

let prop_bzip_idempotent_frames =
  QCheck2.Test.make ~name:"bzip roundtrip of its own output" ~count:50
    QCheck2.Gen.(string_size ~gen:(map Char.chr (int_range 0 255)) (int_range 0 200))
    (fun s ->
      let once = Compress.Bzip.compress s in
      let twice = Compress.Bzip.compress once in
      Compress.Bzip.decompress (Compress.Bzip.decompress twice) = s)

let prop_hu_tucker_optimal_vs_huffman =
  (* alphabetic codes cannot beat unconstrained Huffman codes *)
  QCheck2.Test.make ~name:"hu-tucker >= huffman expected length" ~count:50
    QCheck2.Gen.(list_size (int_range 5 30) (string_size ~gen:(oneofl [ 'a'; 'b'; 'c'; 'z' ]) (int_range 1 10)))
    (fun values ->
      values = []
      ||
      let hu = Compress.Hu_tucker.train values in
      let hf = Compress.Huffman.train values in
      let total codec = List.fold_left (fun a v -> a + String.length (codec v)) 0 values in
      (* allow one padding byte of slack per value *)
      total (Compress.Hu_tucker.compress hu) + List.length values
      >= total (Compress.Huffman.compress hf))

(* ------------------------------------------------------------------ *)
(* Workload corner cases                                               *)
(* ------------------------------------------------------------------ *)

let test_workload_ftcontains_is_wild () =
  let repo = Lazy.force repo in
  let w =
    Workload.of_query_strings repo
      [ "for $i in document(\"shop.xml\")/shop/item where ftcontains($i/name/text(), \"chair\") return $i" ]
  in
  Alcotest.(check bool) "one wild predicate" true
    (List.exists
       (fun (p : Workload.predicate) -> p.Workload.cls = Workload.Cls_wild)
       w.Workload.predicates)

let test_workload_unresolvable_paths_ignored () =
  let repo = Lazy.force repo in
  let w =
    Workload.of_query_strings repo
      [ "for $i in document(\"shop.xml\")/shop/nonexistent where $i/foo = \"x\" return $i" ]
  in
  Alcotest.(check int) "no predicates from unknown paths" 0 (List.length w.Workload.predicates)

(* ------------------------------------------------------------------ *)
(* Engine-level behaviour                                              *)
(* ------------------------------------------------------------------ *)

let test_engine_workload_load () =
  let workload =
    [ "for $i in document(\"shop.xml\")/shop/item where $i/@price >= 10 return $i/name/text()" ]
  in
  let engine = Engine.load ~name:"shop.xml" ~workload shop in
  (match engine.Engine.partitioning with
  | Some r ->
    Alcotest.(check bool) "search ran" true (r.Partitioner.trace <> []);
    Alcotest.(check bool) "cost did not increase" true
      (r.Partitioner.final_cost <= r.Partitioner.initial_cost)
  | None -> Alcotest.fail "expected partitioning");
  Alcotest.(check string) "query result" "chair\nmirror"
    (Engine.query_serialized engine
       "for $i in document(\"shop.xml\")/shop/item where $i/@price >= 10 return $i/name/text()")

let test_engine_indent_output () =
  let engine = Engine.load ~name:"s.xml" "<a><b>x</b><c/></a>" in
  let plain = Engine.to_xml engine in
  let indented = Engine.to_xml ~indent:true engine in
  Alcotest.(check bool) "indent adds newlines" true
    (String.contains indented '\n' && not (String.contains plain '\n'))

let suites =
  [
    ( "physical-extra",
      [
        Alcotest.test_case "project/select/sort" `Quick test_project_select_sort;
        Alcotest.test_case "text_content operator" `Quick test_text_content_operator;
        Alcotest.test_case "xml_serialize operator" `Quick test_xml_serialize_operator;
      ] );
    ( "codec-extra",
      [
        Alcotest.test_case "order-agnostic compare rejected" `Quick
          test_order_agnostic_compare_rejected;
        Alcotest.test_case "alm model = token function" `Quick test_alm_model_is_token_function;
        QCheck_alcotest.to_alcotest prop_bzip_idempotent_frames;
        QCheck_alcotest.to_alcotest prop_hu_tucker_optimal_vs_huffman;
      ] );
    ( "workload-extra",
      [
        Alcotest.test_case "ftcontains classifies as wild" `Quick test_workload_ftcontains_is_wild;
        Alcotest.test_case "unresolvable paths ignored" `Quick
          test_workload_unresolvable_paths_ignored;
      ] );
    ( "engine",
      [
        Alcotest.test_case "workload-driven load" `Quick test_engine_workload_load;
        Alcotest.test_case "indented output" `Quick test_engine_indent_output;
      ] );
  ]
