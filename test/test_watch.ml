(* Drift watchdog and alert engine tests: streaming-vs-offline
   fingerprint parity (the watchdog and `xquec profile` must agree on
   the same query stream), window expiry, empty-window drift semantics,
   alert sustain-K hysteresis / flapping suppression / missing-signal
   behavior, the JSONL alert log, and the /watch /alerts /healthz
   routes. *)

open Xquec_core
module Obs = Xquec_obs

let with_fresh_telemetry f =
  Obs.reset ();
  Obs.Watch.set_enabled false;
  Obs.Watch.configure ~window_seconds:10.0 ~windows:6 ~alpha:0.3 ();
  Obs.Watch.set_baseline None;
  Obs.Watch.reset ();
  Obs.Alert.set_rules [];
  Obs.Alert.set_log None;
  Fun.protect
    ~finally:(fun () ->
      Obs.Watch.set_enabled false;
      Obs.Watch.set_baseline None;
      Obs.Watch.reset ();
      Obs.Alert.set_rules [];
      Obs.Alert.set_log None;
      Obs.Query_log.set_path None;
      Obs.reset ())
    (fun () -> Obs.with_enabled f)

let xmark_xml = lazy (Xmark.Xmlgen.generate ~scale:0.05 ())
let shared_engine = lazy (Engine.load ~name:"auction.xml" (Lazy.force xmark_xml))

let tmp_file suffix =
  let path = Filename.temp_file "xquec_watch" suffix in
  at_exit (fun () -> try Sys.remove path with Sys_error _ -> ());
  path

let contains s sub =
  let ls = String.length s and lb = String.length sub in
  let rec go k = k + lb <= ls && (String.sub s k lb = sub || go (k + 1)) in
  go 0

(* The standard point/scan/wild mix the serving tests use. *)
let mix_a =
  [
    "document(\"auction.xml\")/site/people/person[@id = \"person1\"]/name";
    "for $p in document(\"auction.xml\")/site/people/person where $p/name = \"Aloys Rommel\" \
     return $p/emailaddress";
    "for $i in document(\"auction.xml\")/site/regions/europe/item return $i/name";
  ]

(* A deliberately shifted mix: different containers, different kinds. *)
let mix_b =
  [
    "for $p in document(\"auction.xml\")/site/people/person where contains($p/profile/education, \
     \"Grad\") return $p/name";
    "for $a in document(\"auction.xml\")/site/closed_auctions/closed_auction where $a/price > \
     100.0 return $a/price";
  ]

(* ------------------------------------------------------------------ *)
(* Streaming vs offline parity                                         *)
(* ------------------------------------------------------------------ *)

let test_parity_with_offline_profile () =
  with_fresh_telemetry @@ fun () ->
  let engine = Lazy.force shared_engine in
  let log = tmp_file ".jsonl" in
  Obs.Query_log.set_path (Some log);
  Obs.Watch.set_enabled true;
  (* the engine's fan-in stamps observations with the wall clock; keep
     the whole stream well inside the rolling window *)
  Obs.Watch.configure ~window_seconds:3600.0 ~windows:6 ();
  List.iter (fun q -> ignore (Engine.query_serialized_logged engine q)) (mix_a @ mix_b @ mix_a);
  Obs.Query_log.set_path None;
  let offline = Obs.Profile.of_records (Obs.Profile.load_jsonl log) in
  let streaming = Obs.Watch.fingerprint ~now:(Unix.gettimeofday ()) () in
  Alcotest.(check int) "same record count" offline.Obs.Profile.records
    streaming.Obs.Profile.records;
  Alcotest.(check bool) "fingerprint not empty" true (offline.Obs.Profile.weights <> []);
  let d = Obs.Profile.drift offline streaming in
  Alcotest.(check bool)
    (Printf.sprintf "drift %.12f within 1e-9" d)
    true (d <= 1e-9);
  (* identical advice from identical fingerprints *)
  let recs fp =
    List.map
      (fun (r : Obs.Profile.recommendation) ->
        (r.Obs.Profile.r_container, r.Obs.Profile.r_action, r.Obs.Profile.r_factor))
      (Obs.Profile.recommend fp)
  in
  Alcotest.(check bool) "identical recommendations" true (recs offline = recs streaming);
  (* and the weight distributions agree key-for-key *)
  Alcotest.(check int) "same weight keys"
    (List.length offline.Obs.Profile.weights)
    (List.length streaming.Obs.Profile.weights)

(* ------------------------------------------------------------------ *)
(* Watch window mechanics                                              *)
(* ------------------------------------------------------------------ *)

let obs container kind =
  { Obs.Profile.ob_container = container; ob_kind = kind; ob_candidates = 10; ob_matches = 2 }

let test_window_expiry () =
  with_fresh_telemetry @@ fun () ->
  Obs.Watch.set_enabled true;
  Obs.Watch.configure ~window_seconds:10.0 ~windows:3 ();
  let t0 = 1000.0 in
  Obs.Watch.observe ~now:t0 ~predicates:[ obs "/a" "eq" ] ~containers:[ ("/a", 100) ] ();
  let fp = Obs.Watch.fingerprint ~now:t0 () in
  Alcotest.(check int) "observation lands in the window" 1 fp.Obs.Profile.records;
  (* same ring slot two full rotations later: the bucket is recycled *)
  let fp' = Obs.Watch.fingerprint ~now:(t0 +. 100.0) () in
  Alcotest.(check int) "expired window drops the observation" 0 fp'.Obs.Profile.records;
  (* a new observation after expiry starts a fresh bucket *)
  Obs.Watch.observe ~now:(t0 +. 100.0) ~predicates:[ obs "/b" "range" ]
    ~containers:[ ("/b", 50) ] ();
  let fp'' = Obs.Watch.fingerprint ~now:(t0 +. 100.0) () in
  Alcotest.(check int) "fresh bucket after recycling" 1 fp''.Obs.Profile.records

let test_drift_semantics_and_ewma () =
  with_fresh_telemetry @@ fun () ->
  Obs.Watch.set_enabled true;
  Obs.Watch.configure ~window_seconds:10.0 ~windows:3 ~alpha:0.5 ();
  let t0 = 2000.0 in
  (* no baseline: a tick computes no drift *)
  Obs.Watch.observe ~now:t0 ~predicates:[ obs "/a" "eq" ] ~containers:[ ("/a", 10) ] ();
  let st = Obs.Watch.tick ~now:t0 () in
  Alcotest.(check bool) "no baseline -> no drift" true (st.Obs.Watch.w_drift = None);
  (* identical baseline: drift 0 *)
  Obs.Watch.set_baseline (Some (Obs.Profile.of_weighted_events [ (("/a", "eq"), 1.0) ]));
  let st = Obs.Watch.tick ~now:t0 () in
  (match st.Obs.Watch.w_drift with
  | Some d -> Alcotest.(check (float 1e-9)) "identical mix drifts 0" 0.0 d
  | None -> Alcotest.fail "drift expected with baseline + observations");
  (* disjoint baseline: drift 1; EWMA moves halfway (alpha 0.5) *)
  Obs.Watch.set_baseline (Some (Obs.Profile.of_weighted_events [ (("/z", "wild"), 1.0) ]));
  let st = Obs.Watch.tick ~now:t0 () in
  (match (st.Obs.Watch.w_drift, st.Obs.Watch.w_drift_ewma) with
  | Some d, Some e ->
    Alcotest.(check (float 1e-9)) "disjoint mix drifts 1" 1.0 d;
    Alcotest.(check (float 1e-9)) "ewma smooths the step" 0.5 e
  | _ -> Alcotest.fail "drift and ewma expected");
  (* empty window: drift None, EWMA untouched *)
  let st = Obs.Watch.tick ~now:(t0 +. 100.0) () in
  Alcotest.(check bool) "empty window -> no drift" true (st.Obs.Watch.w_drift = None);
  (match st.Obs.Watch.w_drift_ewma with
  | Some e -> Alcotest.(check (float 1e-9)) "empty window leaves ewma" 0.5 e
  | None -> Alcotest.fail "ewma survives the empty window")

(* ------------------------------------------------------------------ *)
(* Alert engine                                                        *)
(* ------------------------------------------------------------------ *)

let rule ?(name = "r") ?(signal = "s") ?(op = Obs.Alert.Gt) ?(threshold = 1.0) ?(sustain = 3)
    ?(resolve = 2) () =
  { Obs.Alert.a_name = name; a_signal = signal; a_op = op; a_threshold = threshold;
    a_sustain = sustain; a_resolve = resolve }

let events ts = List.map (fun t -> (t.Obs.Alert.t_rule, t.Obs.Alert.t_event)) ts

let test_alert_sustain_hysteresis () =
  with_fresh_telemetry @@ fun () ->
  Obs.Alert.set_rules [ rule ~sustain:3 ~resolve:2 () ];
  let eval v = Obs.Alert.evaluate ~now:0.0 [ ("s", v) ] in
  Alcotest.(check (list (pair string string))) "breach 1: silent" [] (events (eval 2.0));
  Alcotest.(check (list (pair string string))) "breach 2: silent" [] (events (eval 2.0));
  Alcotest.(check (list (pair string string)))
    "breach 3: fires" [ ("r", "fired") ] (events (eval 2.0));
  Alcotest.(check (list (pair string string))) "already active: no re-fire" []
    (events (eval 2.0));
  Alcotest.(check (list (pair string string))) "clear 1: still active" [] (events (eval 0.5));
  Alcotest.(check (list (pair string string)))
    "clear 2: resolves" [ ("r", "resolved") ] (events (eval 0.5));
  Alcotest.(check (list (pair string string))) "inactive clear: silent" [] (events (eval 0.5));
  Alcotest.(check bool) "nothing active at the end" true (Obs.Alert.active () = [])

let test_alert_flapping_suppression () =
  with_fresh_telemetry @@ fun () ->
  Obs.Alert.set_rules [ rule ~sustain:3 ~resolve:2 () ];
  (* breach/clear alternation never accumulates 3 consecutive breaches *)
  for _ = 1 to 10 do
    Alcotest.(check (list (pair string string)))
      "flapping: breach silent" []
      (events (Obs.Alert.evaluate ~now:0.0 [ ("s", 2.0) ]));
    Alcotest.(check (list (pair string string)))
      "flapping: clear silent" []
      (events (Obs.Alert.evaluate ~now:0.0 [ ("s", 0.5) ]))
  done;
  Alcotest.(check bool) "never fired" true (Obs.Alert.active () = [] && Obs.Alert.recent () = [])

let test_alert_missing_signal () =
  with_fresh_telemetry @@ fun () ->
  Obs.Alert.set_rules [ rule ~sustain:3 ~resolve:2 () ];
  let eval signals = events (Obs.Alert.evaluate ~now:0.0 signals) in
  Alcotest.(check (list (pair string string))) "breach 1" [] (eval [ ("s", 2.0) ]);
  Alcotest.(check (list (pair string string))) "breach 2" [] (eval [ ("s", 2.0) ]);
  (* empty-window tick: no signal at all — streak must survive *)
  Alcotest.(check (list (pair string string))) "missing signal: silent" [] (eval []);
  Alcotest.(check (list (pair string string)))
    "breach 3 after the gap still fires" [ ("r", "fired") ] (eval [ ("s", 2.0) ]);
  (* while active, missing signals must not resolve *)
  Alcotest.(check (list (pair string string))) "missing signal keeps it active" [] (eval []);
  Alcotest.(check bool) "still active" true (List.mem_assoc "r" (Obs.Alert.active ()));
  (* Lt-direction rule, and unrelated signals are ignored *)
  Obs.Alert.set_rules [ rule ~name:"low" ~op:Obs.Alert.Lt ~threshold:0.5 ~sustain:2 () ];
  Alcotest.(check (list (pair string string)))
    "lt breach 1" []
    (eval [ ("s", 0.1); ("other", 99.0) ]);
  Alcotest.(check (list (pair string string)))
    "lt breach 2 fires" [ ("low", "fired") ] (eval [ ("s", 0.1) ])

let test_alert_log_and_metrics () =
  with_fresh_telemetry @@ fun () ->
  let log = tmp_file ".jsonl" in
  Obs.Alert.set_rules [ rule ~sustain:1 ~resolve:1 () ];
  Obs.Alert.set_log (Some log);
  Alcotest.(check (float 1e-9)) "gauge pre-registered at 0" 0.0
    (Option.value ~default:(-1.0) (Obs.Metrics.gauge_value "alert.r.active"));
  ignore (Obs.Alert.evaluate ~now:1234.5 [ ("s", 2.0) ]);
  Alcotest.(check (float 1e-9)) "gauge flips to 1" 1.0
    (Option.value ~default:(-1.0) (Obs.Metrics.gauge_value "alert.r.active"));
  ignore (Obs.Alert.evaluate ~now:1240.0 [ ("s", 0.0) ]);
  Alcotest.(check (float 1e-9)) "gauge flips back" 0.0
    (Option.value ~default:(-1.0) (Obs.Metrics.gauge_value "alert.r.active"));
  Alcotest.(check int) "two transitions counted" 2 (Obs.Metrics.counter_value "alert.transitions");
  let lines =
    let ic = open_in log in
    let rec go acc = match input_line ic with
      | l -> go (l :: acc)
      | exception End_of_file -> close_in ic; List.rev acc
    in
    go []
  in
  Alcotest.(check int) "two log lines" 2 (List.length lines);
  Alcotest.(check bool) "fired line" true (contains (List.nth lines 0) "\"event\":\"fired\"");
  Alcotest.(check bool) "resolved line" true
    (contains (List.nth lines 1) "\"event\":\"resolved\"");
  Alcotest.(check bool) "iso timestamp" true (contains (List.nth lines 0) "\"ts\":\"1970-01-01T00:20:34Z\"");
  (* recent ring is newest-first *)
  (match Obs.Alert.recent () with
  | newest :: _ -> Alcotest.(check string) "ring newest first" "resolved" newest.Obs.Alert.t_event
  | [] -> Alcotest.fail "ring empty");
  (* prometheus exposition uses the rule label form *)
  let prom = Obs.Metrics.to_prometheus () in
  Alcotest.(check bool) "labelled alert gauge" true
    (contains prom "xquec_alert_active{rule=\"r\"}")

(* ------------------------------------------------------------------ *)
(* Serve integration: watch_tick signals and the HTTP surfaces         *)
(* ------------------------------------------------------------------ *)

let test_watch_tick_drift_alert () =
  with_fresh_telemetry @@ fun () ->
  let engine = Lazy.force shared_engine in
  Obs.Watch.set_enabled true;
  Obs.Watch.configure ~window_seconds:3600.0 ~windows:6 ();
  Obs.Alert.set_rules (Serve.default_rules ~drift_threshold:0.3 ());
  Serve.watch_tick_reset ();
  (* baseline = the declared mix, stream = the same mix: drift ~ 0 *)
  let repo = Engine.repo engine in
  Obs.Watch.set_baseline
    (Some (Workload.fingerprint repo (Workload.of_query_strings repo mix_a)));
  List.iter (fun q -> ignore (Engine.query_serialized_logged engine q)) mix_a;
  let now = Unix.gettimeofday () in
  let st, trs = Serve.watch_tick ~now () in
  (match st.Obs.Watch.w_drift with
  | Some d -> Alcotest.(check bool) (Printf.sprintf "declared mix drift %.3f low" d) true (d < 0.3)
  | None -> Alcotest.fail "drift expected");
  Alcotest.(check (list (pair string string))) "no transitions on the declared mix" []
    (events trs);
  (* shift the mix hard and tick through the sustain count *)
  Obs.Watch.reset ();
  Serve.watch_tick_reset ();
  List.iter (fun q -> ignore (Engine.query_serialized_logged engine q)) mix_b;
  let fired = ref [] in
  for i = 1 to 3 do
    let _, trs = Serve.watch_tick ~now:(now +. float_of_int i) () in
    fired := !fired @ events trs
  done;
  Alcotest.(check (list (pair string string)))
    "drift_sustained fires after 3 sustained windows"
    [ ("drift_sustained", "fired") ]
    (List.filter (fun (r, _) -> r = "drift_sustained") !fired)

let test_http_surfaces () =
  with_fresh_telemetry @@ fun () ->
  let engine = Lazy.force shared_engine in
  Obs.Watch.set_enabled true;
  Obs.Alert.set_rules (Serve.default_rules ());
  Serve.set_server_info ~format:"v4" ();
  let get path =
    match
      Serve.handler engine { Obs.Expo.meth = "GET"; path; query = []; body = "" }
    with
    | Some r -> r
    | None -> Alcotest.failf "no response for %s" path
  in
  ignore (Serve.run_query engine "1+2");
  ignore (Serve.watch_tick ());
  let r = get "/watch" in
  Alcotest.(check int) "/watch status" 200 r.Obs.Expo.status;
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("/watch has " ^ needle) true (contains r.Obs.Expo.body needle))
    [ "\"enabled\":true"; "\"weights\""; "\"recommendations\""; "\"ticks\":1" ];
  let r = get "/alerts" in
  Alcotest.(check int) "/alerts status" 200 r.Obs.Expo.status;
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("/alerts has " ^ needle) true (contains r.Obs.Expo.body needle))
    [ "\"rules\""; "drift_sustained"; "\"active\":["; "\"recent\":[" ];
  let r = get "/healthz" in
  Alcotest.(check int) "/healthz status" 200 r.Obs.Expo.status;
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("/healthz has " ^ needle) true (contains r.Obs.Expo.body needle))
    [ "\"status\":\"ok\""; "\"format\":\"v4\""; "\"uptime_s\""; "\"watchdog\"";
      "\"enabled\":true" ]

let suites =
  [
    ( "watch",
      [
        Alcotest.test_case "streaming = offline profile (parity)" `Quick
          test_parity_with_offline_profile;
        Alcotest.test_case "window expiry recycles buckets" `Quick test_window_expiry;
        Alcotest.test_case "drift semantics + EWMA" `Quick test_drift_semantics_and_ewma;
        Alcotest.test_case "watch_tick drives drift_sustained" `Quick
          test_watch_tick_drift_alert;
        Alcotest.test_case "/watch /alerts /healthz payloads" `Quick test_http_surfaces;
      ] );
    ( "alert",
      [
        Alcotest.test_case "sustain-K hysteresis" `Quick test_alert_sustain_hysteresis;
        Alcotest.test_case "flapping suppression" `Quick test_alert_flapping_suppression;
        Alcotest.test_case "missing signals leave streaks" `Quick test_alert_missing_signal;
        Alcotest.test_case "JSONL log + gauges + prometheus" `Quick test_alert_log_and_metrics;
      ] );
  ]
