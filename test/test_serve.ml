(* Concurrent serving tests: plan-cache LRU semantics and digest
   stability, accept-time admission (503 + Retry-After past
   max-inflight), per-query budget enforcement (408 with a structured
   body), mid-response client disconnects (EPIPE must not kill the
   server), result correctness under genuinely concurrent clients, and
   the SLO window under concurrent writers. *)

open Xquec_core
module Obs = Xquec_obs

let with_fresh_telemetry f =
  Obs.reset ();
  Fun.protect ~finally:(fun () -> Obs.reset ()) (fun () -> Obs.with_enabled f)

(* One small generated XMark document, compressed once and shared by
   the tests that only read it. Budget tests load their own copy so
   every block access is a real decode (fresh uid = nothing resident). *)
let xmark_xml = lazy (Xmark.Xmlgen.generate ~scale:0.05 ())

let shared_engine = lazy (Engine.load ~name:"auction.xml" (Lazy.force xmark_xml))

(* A raw HTTP exchange that keeps the full response text, so tests can
   assert on headers (Hammer.request only surfaces status + body). *)
let raw_request ~port (payload : string) : string =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with _ -> ())
    (fun () ->
      Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      ignore (Unix.write_substring sock payload 0 (String.length payload));
      let buf = Buffer.create 512 in
      let chunk = Bytes.create 4096 in
      let rec recv () =
        match Unix.read sock chunk 0 (Bytes.length chunk) with
        | 0 -> ()
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          recv ()
        | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> ()
      in
      recv ();
      Buffer.contents buf)

let contains s sub =
  let ls = String.length s and lb = String.length sub in
  let rec go k = k + lb <= ls && (String.sub s k lb = sub || go (k + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Plan cache                                                          *)
(* ------------------------------------------------------------------ *)

let test_plan_cache_lru () =
  Plan_cache.set_capacity 2;
  Plan_cache.clear ();
  Plan_cache.reset_stats ();
  Fun.protect ~finally:(fun () -> Plan_cache.set_capacity 0)
  @@ fun () ->
  let compile q = fst (Plan_cache.find_or_add ~key:q (fun () -> Engine.parse_query q)) in
  let q1 = "1+2" and q2 = "2+3" and q3 = "3+4" in
  ignore (compile q1);
  (* miss *)
  ignore (compile q2);
  (* miss; cache = [q2; q1] *)
  ignore (compile q1);
  (* hit; cache = [q1; q2] *)
  ignore (compile q3);
  (* miss; evicts q2 (LRU tail); cache = [q3; q1] *)
  ignore (compile q2);
  (* miss again: q2 was evicted; evicts q1; cache = [q2; q3] *)
  ignore (compile q1);
  (* miss: q1 was just evicted; evicts q3; cache = [q1; q2] *)
  let s = Plan_cache.snapshot () in
  Alcotest.(check int) "hits" 1 s.Plan_cache.s_hits;
  Alcotest.(check int) "misses" 5 s.Plan_cache.s_misses;
  Alcotest.(check int) "evictions" 3 s.Plan_cache.s_evictions;
  Alcotest.(check int) "entries" 2 s.Plan_cache.s_entries;
  Alcotest.(check int) "capacity" 2 s.Plan_cache.s_capacity;
  (* a parse error must propagate and cache nothing *)
  (match Plan_cache.find_or_add ~key:"broken" (fun () -> Engine.parse_query "for $x") with
  | _ -> Alcotest.fail "parse error did not propagate"
  | exception _ -> ());
  let s2 = Plan_cache.snapshot () in
  Alcotest.(check int) "failed compile not cached" 2 s2.Plan_cache.s_entries

let test_plan_cache_hit_digest_identical () =
  with_fresh_telemetry @@ fun () ->
  let engine = Lazy.force shared_engine in
  Plan_cache.set_capacity 8;
  Plan_cache.clear ();
  Plan_cache.reset_stats ();
  Fun.protect ~finally:(fun () -> Plan_cache.set_capacity 0)
  @@ fun () ->
  let q = "document(\"auction.xml\")/site/people/person[@id = \"person0\"]/name" in
  let r1 = Serve.run_query engine q in
  let r2 = Serve.run_query engine q in
  Alcotest.(check int) "cold status" 200 r1.Obs.Expo.status;
  Alcotest.(check int) "warm status" 200 r2.Obs.Expo.status;
  Alcotest.(check string) "hit returns identical bytes"
    (Digest.to_hex (Digest.string r1.Obs.Expo.body))
    (Digest.to_hex (Digest.string r2.Obs.Expo.body));
  let s = Plan_cache.snapshot () in
  Alcotest.(check int) "one miss (cold)" 1 s.Plan_cache.s_misses;
  Alcotest.(check int) "one hit (warm)" 1 s.Plan_cache.s_hits

(* ------------------------------------------------------------------ *)
(* Admission control                                                   *)
(* ------------------------------------------------------------------ *)

let test_admission_sheds_beyond_max_inflight () =
  with_fresh_telemetry @@ fun () ->
  (* a controllable handler: /block parks until the test releases it,
     occupying a worker and an admission slot deterministically *)
  let m = Mutex.create () in
  let cv = Condition.create () in
  let released = ref false in
  let extra (req : Obs.Expo.request) =
    if req.Obs.Expo.path = "/block" then begin
      Mutex.lock m;
      while not !released do
        Condition.wait cv m
      done;
      Mutex.unlock m;
      Some (Obs.Expo.respond 200 "text/plain" "unblocked\n")
    end
    else None
  in
  Obs.Expo.reset_stats ();
  let server = Obs.Expo.start ~port:0 ~workers:2 ~max_inflight:2 ~extra () in
  let port = Obs.Expo.port server in
  let release () =
    Mutex.lock m;
    released := true;
    Condition.broadcast cv;
    Mutex.unlock m
  in
  Fun.protect ~finally:(fun () -> release (); Obs.Expo.stop server)
  @@ fun () ->
  let blocked = List.init 2 (fun _ -> Domain.spawn (fun () -> Obs.Hammer.request ~port "/block")) in
  (* wait until both requests are admitted and parked in the handler *)
  let deadline = Unix.gettimeofday () +. 5.0 in
  while
    (Obs.Expo.stats ()).Obs.Expo.e_inflight < 2 && Unix.gettimeofday () < deadline
  do
    Unix.sleepf 0.005
  done;
  Alcotest.(check int) "both connections in flight" 2
    (Obs.Expo.stats ()).Obs.Expo.e_inflight;
  (* the third connection must be shed without touching a worker *)
  let raw = raw_request ~port "GET /healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n" in
  Alcotest.(check bool) "shed with 503" true (contains raw "HTTP/1.1 503");
  Alcotest.(check bool) "Retry-After header present" true (contains raw "Retry-After: 1");
  Alcotest.(check bool) "structured body" true (contains raw "\"error\":\"saturated\"");
  release ();
  let replies = List.map Domain.join blocked in
  List.iter
    (fun (r : Obs.Hammer.reply) ->
      Alcotest.(check int) "blocked requests finish with 200" 200 r.Obs.Hammer.r_status)
    replies;
  let s = Obs.Expo.stats () in
  Alcotest.(check bool) "rejection counted" true (s.Obs.Expo.e_rejected >= 1);
  Alcotest.(check int) "nothing left in flight" 0 s.Obs.Expo.e_inflight

(* ------------------------------------------------------------------ *)
(* Budgets                                                             *)
(* ------------------------------------------------------------------ *)

let test_decode_budget_trips_408 () =
  with_fresh_telemetry @@ fun () ->
  (* fresh load: fresh container uids, so nothing is resident and every
     block access decodes (and charges the budget) for real *)
  let engine = Engine.load ~name:"auction.xml" (Lazy.force xmark_xml) in
  Serve.set_budgets ~decode_bytes:1 ();
  Fun.protect ~finally:(fun () -> Serve.set_budgets ())
  @@ fun () ->
  let r = Serve.run_query engine "document(\"auction.xml\")/site/people/person/name" in
  Alcotest.(check int) "terminated with 408" 408 r.Obs.Expo.status;
  Alcotest.(check bool) "structured error body" true
    (contains r.Obs.Expo.body "\"error\":\"budget_exceeded\"");
  Alcotest.(check bool) "names the tripped budget" true
    (contains r.Obs.Expo.body "\"budget\":\"decode_bytes\"");
  (* the evaluating domain must be disarmed afterwards: the same query
     without budgets succeeds *)
  Serve.set_budgets ();
  let ok = Serve.run_query engine "document(\"auction.xml\")/site/people/person[@id = \"person0\"]/name" in
  Alcotest.(check int) "disarmed afterwards" 200 ok.Obs.Expo.status

let test_wall_budget_trips_408 () =
  with_fresh_telemetry @@ fun () ->
  let engine = Lazy.force shared_engine in
  (* microscopic wall budget: the first block-access poll is already
     past it (parsing alone takes longer) *)
  Serve.set_budgets ~wall_ms:0.0001 ();
  Fun.protect ~finally:(fun () -> Serve.set_budgets ())
  @@ fun () ->
  let r = Serve.run_query engine "document(\"auction.xml\")/site/people/person/name" in
  Alcotest.(check int) "terminated with 408" 408 r.Obs.Expo.status;
  Alcotest.(check bool) "names the tripped budget" true
    (contains r.Obs.Expo.body "\"budget\":\"wall_ms\"")

(* ------------------------------------------------------------------ *)
(* Client disconnects                                                  *)
(* ------------------------------------------------------------------ *)

let test_epipe_mid_response_survives () =
  with_fresh_telemetry @@ fun () ->
  let engine = Lazy.force shared_engine in
  let server =
    Obs.Expo.start ~port:0 ~workers:1 ~extra:(Serve.handler engine) ()
  in
  let port = Obs.Expo.port server in
  Fun.protect ~finally:(fun () -> Obs.Expo.stop server)
  @@ fun () ->
  (* ask for a large result, then vanish with an RST (SO_LINGER 0) the
     moment the request is sent — the server's response write hits a
     dead connection mid-stream *)
  for _ = 1 to 3 do
    let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
    let q = "document(\"auction.xml\")/site" in
    let payload =
      Printf.sprintf
        "POST /query HTTP/1.1\r\nHost: x\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
        (String.length q) q
    in
    ignore (Unix.write_substring sock payload 0 (String.length payload));
    Unix.setsockopt_optint sock Unix.SO_LINGER (Some 0);
    Unix.close sock
  done;
  (* the server must still be alive and serving *)
  let r = Obs.Hammer.request ~port "/healthz" in
  Alcotest.(check int) "server survives RST storms" 200 r.Obs.Hammer.r_status;
  let q = Obs.Hammer.request ~port ~meth:"POST"
      ~body:"document(\"auction.xml\")/site/people/person[@id = \"person0\"]/name" "/query"
  in
  Alcotest.(check int) "queries still served" 200 q.Obs.Hammer.r_status

(* ------------------------------------------------------------------ *)
(* Concurrent correctness                                              *)
(* ------------------------------------------------------------------ *)

let test_concurrent_clients_correct_results () =
  with_fresh_telemetry @@ fun () ->
  let engine = Lazy.force shared_engine in
  Plan_cache.set_capacity 32;
  Plan_cache.clear ();
  Fun.protect ~finally:(fun () -> Plan_cache.set_capacity 0)
  @@ fun () ->
  let server =
    Obs.Expo.start ~port:0 ~workers:3 ~max_inflight:64 ~extra:(Serve.handler engine)
      ~collect:Serve.publish_pool_metrics ()
  in
  let port = Obs.Expo.port server in
  Fun.protect ~finally:(fun () -> Obs.Expo.stop server)
  @@ fun () ->
  (* every client computes a different arithmetic expression: the reply
     is predictable per (client, seq), so any cross-request mixup under
     concurrency is caught exactly *)
  let clients = 12 and per_client = 4 in
  let outcomes =
    Obs.Hammer.drive ~port ~clients ~requests_per_client:per_client
      ~target:(fun client seq ->
        ("POST", "/query", Printf.sprintf "%d+%d" (10 * client) seq))
      ()
  in
  Alcotest.(check int) "every request answered" (clients * per_client)
    (List.length outcomes);
  List.iter
    (fun (o : Obs.Hammer.outcome) ->
      Alcotest.(check int)
        (Printf.sprintf "client %d seq %d status" o.Obs.Hammer.o_client o.Obs.Hammer.o_seq)
        200 o.Obs.Hammer.o_reply.Obs.Hammer.r_status;
      Alcotest.(check string)
        (Printf.sprintf "client %d seq %d result" o.Obs.Hammer.o_client o.Obs.Hammer.o_seq)
        (Printf.sprintf "%d\n" ((10 * o.Obs.Hammer.o_client) + o.Obs.Hammer.o_seq))
        o.Obs.Hammer.o_reply.Obs.Hammer.r_body)
    outcomes

let test_window_concurrent_writers () =
  with_fresh_telemetry @@ fun () ->
  Serve.window_reset ();
  let writers = 4 and per_writer = 250 in
  let domains =
    List.init writers (fun i ->
        Domain.spawn (fun () ->
            for _ = 1 to per_writer do
              Serve.window_observe ~error:(i = 0) 1.0
            done))
  in
  List.iter Domain.join domains;
  let w = Serve.window_stats () in
  Alcotest.(check int) "no observation lost" (writers * per_writer) w.Serve.ws_requests;
  Alcotest.(check int) "errors from exactly one writer" per_writer w.Serve.ws_errors;
  Serve.window_reset ()

let suites =
  [
    ( "serve-concurrent",
      [
        Alcotest.test_case "plan-cache LRU." `Quick test_plan_cache_lru;
        Alcotest.test_case "plan-cache hit digest-identical." `Quick
          test_plan_cache_hit_digest_identical;
        Alcotest.test_case "admission sheds with 503." `Quick
          test_admission_sheds_beyond_max_inflight;
        Alcotest.test_case "decode budget trips 408." `Quick test_decode_budget_trips_408;
        Alcotest.test_case "wall budget trips 408." `Quick test_wall_budget_trips_408;
        Alcotest.test_case "EPIPE mid-response survives." `Quick
          test_epipe_mid_response_survives;
        Alcotest.test_case "concurrent clients correct." `Quick
          test_concurrent_clients_correct_results;
        Alcotest.test_case "SLO window concurrent writers." `Quick
          test_window_concurrent_writers;
      ] );
  ]
