(* Differential testing: the XQueC engine must agree with the naive
   Galax-like reference on every XMark query, across generator seeds,
   with and without workload-driven partitioning, and after a
   serialize/deserialize cycle. *)

let galax_result doc ast =
  Baselines.Galax_like.serialize (Baselines.Galax_like.run ~docs:[ ("auction.xml", doc) ] ast)

let xquec_result repo ast =
  Xquec_core.Executor.serialize repo (Xquec_core.Executor.run repo ast)

let check_all_queries ~name doc repo =
  List.iter
    (fun (q : Xmark.Queries.query) ->
      let ast = Xquery.Parser.parse q.Xmark.Queries.text in
      Alcotest.(check string)
        (Printf.sprintf "%s/%s" name q.Xmark.Queries.id)
        (galax_result doc ast) (xquec_result repo ast))
    Xmark.Queries.all

let test_seed seed () =
  let xml = Xmark.Xmlgen.generate ~seed ~scale:0.04 () in
  let doc = Xmlkit.Parser.parse_string xml in
  let repo = Xquec_core.Loader.load ~name:"auction.xml" xml in
  check_all_queries ~name:(Printf.sprintf "seed%d" seed) doc repo

let test_partitioned () =
  let xml = Xmark.Xmlgen.generate ~seed:5 ~scale:0.05 () in
  let doc = Xmlkit.Parser.parse_string xml in
  let workload = List.map (fun q -> q.Xmark.Queries.text) Xmark.Queries.all in
  let engine = Xquec_core.Engine.load ~name:"auction.xml" ~workload xml in
  check_all_queries ~name:"partitioned" doc (Xquec_core.Engine.repo engine)

let test_after_reload () =
  let xml = Xmark.Xmlgen.generate ~seed:9 ~scale:0.04 () in
  let doc = Xmlkit.Parser.parse_string xml in
  let engine = Xquec_core.Engine.load ~name:"auction.xml" xml in
  let engine = Xquec_core.Engine.restore (Xquec_core.Engine.save engine) in
  check_all_queries ~name:"reloaded" doc (Xquec_core.Engine.repo engine)

let test_huffman_everywhere () =
  (* force the order-agnostic codec as the string default: inequality
     predicates must fall back to scans yet stay correct *)
  let xml = Xmark.Xmlgen.generate ~seed:3 ~scale:0.04 () in
  let doc = Xmlkit.Parser.parse_string xml in
  let options =
    { Xquec_core.Loader.default_string_algorithm = Compress.Codec.Huffman_alg;
      detect_numeric = false; spill_directory = None }
  in
  let repo = Xquec_core.Loader.load ~options ~name:"auction.xml" xml in
  check_all_queries ~name:"huffman" doc repo

(* The block merge join is an optimization, never a semantics change:
   its answer must be byte-identical to the hash join's on randomized
   inputs (duplicate-heavy keys so equal runs straddle block
   boundaries), across block sizes from 1 KiB to 64 KiB, both decode
   pool shapes (sequential and 4 domains), and both join
   orientations. *)
let test_block_join_vs_hash () =
  let mk_doc ~items ~lookups ~keyspace ~seed =
    let buf = Buffer.create (items * 32) in
    let st = ref (seed * 7919 + 1) in
    let rand m =
      st := ((!st * 1103515245) + 12345) land 0x3FFFFFFF;
      !st mod m
    in
    Buffer.add_string buf "<db><items>";
    for _ = 1 to items do
      Buffer.add_string buf (Printf.sprintf "<item><key>k%04d</key></item>" (rand keyspace))
    done;
    Buffer.add_string buf "</items><lookups>";
    for _ = 1 to lookups do
      Buffer.add_string buf (Printf.sprintf "<lookup><ref>k%04d</ref></lookup>" (rand keyspace))
    done;
    Buffer.add_string buf "</lookups></db>";
    Buffer.contents buf
  in
  let queries =
    [
      "for $l in doc('j.xml')/db/lookups/lookup for $i in doc('j.xml')/db/items/item \
       where $i/key = $l/ref return $i/key";
      "for $l in doc('j.xml')/db/lookups/lookup for $i in doc('j.xml')/db/items/item \
       where $l/ref = $i/key return $i/key";
    ]
  in
  let saved_bs = Storage.Container.default_block_size () in
  let saved_domains = Storage.Domain_pool.size () in
  let block_joins = ref 0 in
  Fun.protect
    ~finally:(fun () ->
      Storage.Container.set_default_block_size saved_bs;
      Storage.Domain_pool.set_size saved_domains;
      Xquec_core.Executor.set_block_join true)
  @@ fun () ->
  List.iter
    (fun bs ->
      Storage.Container.set_default_block_size bs;
      List.iter
        (fun domains ->
          Storage.Domain_pool.set_size domains;
          List.iter
            (fun seed ->
              let xml = mk_doc ~items:600 ~lookups:25 ~keyspace:200 ~seed in
              let eng = Xquec_core.Engine.load ~name:"j.xml" ~workload:queries xml in
              List.iter
                (fun q ->
                  Xquec_core.Executor.set_block_join false;
                  let hash = Xquec_core.Engine.query_serialized eng q in
                  Xquec_core.Executor.set_block_join true;
                  Xquec_core.Executor.reset_join_stats ();
                  let block = Xquec_core.Engine.query_serialized eng q in
                  let s = Xquec_core.Executor.join_stats () in
                  block_joins := !block_joins + s.Xquec_core.Executor.j_block_joins;
                  Alcotest.(check string)
                    (Printf.sprintf "bs=%d domains=%d seed=%d" bs domains seed)
                    hash block)
                queries)
            [ 1; 2; 3 ])
        [ 0; 4 ])
    [ 1024; 4096; 65536 ];
  Alcotest.(check bool) "block join exercised at least once" true (!block_joins > 0)

let suites =
  [
    ( "differential",
      [
        Alcotest.test_case "xmark seed 1" `Slow (test_seed 1);
        Alcotest.test_case "xmark seed 2" `Slow (test_seed 2);
        Alcotest.test_case "xmark seed 42" `Slow (test_seed 42);
        Alcotest.test_case "with partitioning" `Slow test_partitioned;
        Alcotest.test_case "after save/restore" `Slow test_after_reload;
        Alcotest.test_case "huffman-only repository" `Slow test_huffman_everywhere;
        Alcotest.test_case "block join vs hash join" `Slow test_block_join_vs_hash;
      ] );
  ]
