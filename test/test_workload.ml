(* Workload-observatory tests: heat accounting semantics, profile
   fingerprints and drift, block-size recommendations, the serve
   rolling window, HTTP hardening of the exposition server, and the
   query-log <-> heat reconciliation. *)

module Obs = Xquec_obs
open Xquec_core

let j_num n = Obs.Json.Num (float_of_int n)
let j_str s = Obs.Json.Str s

let contains ~needle hay =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Heat accounting                                                     *)
(* ------------------------------------------------------------------ *)

(* a real pool uid keeps the tests off every other container's row *)
let fresh_uid () = Storage.Buffer_pool.fresh_uid ()

let stat_of uid =
  List.find_opt (fun (s : Obs.Heat.stat) -> s.Obs.Heat.uid = uid) (Obs.Heat.snapshot ())

let test_heat_touch_semantics () =
  let uid = fresh_uid () in
  Obs.Heat.register ~uid ~label:"heat:/site/a/#text" ~blocks:4;
  (* run 1: block 0 touched twice (collapses), then 1, 2 sequentially;
     run 2: back to block 0, re-touch collapses again *)
  List.iter (fun blk -> Obs.Heat.note_touch ~uid ~blk) [ 0; 0; 1; 2; 0; 0 ];
  Obs.Heat.note_decode ~uid ~blk:0 ~bytes:100;
  Obs.Heat.note_skip ~uid ~blocks:2 ~bytes:555;
  let s = Option.get (stat_of uid) in
  Alcotest.(check string) "label" "heat:/site/a/#text" s.Obs.Heat.label;
  Alcotest.(check int) "blocks" 4 s.Obs.Heat.blocks;
  Alcotest.(check int) "touches collapse same-block repeats" 4 s.Obs.Heat.touches;
  Alcotest.(check int) "two run starts" 2 s.Obs.Heat.runs;
  Alcotest.(check int) "two sequential continuations" 2 s.Obs.Heat.seq_touches;
  Alcotest.(check int) "decodes" 1 s.Obs.Heat.decodes;
  Alcotest.(check int) "hits = touches - decodes" 3 s.Obs.Heat.hits;
  Alcotest.(check int) "header skips" 2 s.Obs.Heat.header_skips;
  Alcotest.(check int) "bytes decoded" 100 s.Obs.Heat.bytes_decoded;
  Alcotest.(check int) "bytes skipped" 555 s.Obs.Heat.bytes_skipped;
  Alcotest.(check (list (pair int int)))
    "hot blocks order by touches then index"
    [ (0, 2); (1, 1) ]
    (Obs.Heat.hot_blocks ~uid ~top:2);
  (* re-registration updates metadata but keeps the counters *)
  Obs.Heat.register ~uid ~label:"heat:/site/a/#text-v2" ~blocks:8;
  let s = Option.get (stat_of uid) in
  Alcotest.(check string) "label updated" "heat:/site/a/#text-v2" s.Obs.Heat.label;
  Alcotest.(check int) "blocks updated" 8 s.Obs.Heat.blocks;
  Alcotest.(check int) "touches preserved" 4 s.Obs.Heat.touches

let test_heat_reset_and_switch () =
  let uid = fresh_uid () in
  Obs.Heat.register ~uid ~label:"heat:/reset" ~blocks:2;
  List.iter (fun blk -> Obs.Heat.note_touch ~uid ~blk) [ 0; 1 ];
  Obs.Heat.note_decode ~uid ~blk:1 ~bytes:10;
  Obs.Heat.reset ();
  let s = Option.get (stat_of uid) in
  Alcotest.(check string) "registration survives reset" "heat:/reset" s.Obs.Heat.label;
  Alcotest.(check int) "touches zeroed" 0 s.Obs.Heat.touches;
  Alcotest.(check int) "decodes zeroed" 0 s.Obs.Heat.decodes;
  Alcotest.(check int) "runs zeroed" 0 s.Obs.Heat.runs;
  Alcotest.(check (list (pair int int))) "hot blocks zeroed" [] (Obs.Heat.hot_blocks ~uid ~top:4);
  (* the switch gates all note_* hooks *)
  Obs.Heat.set_enabled false;
  Fun.protect ~finally:(fun () -> Obs.Heat.set_enabled true) @@ fun () ->
  let ghost = fresh_uid () in
  Obs.Heat.note_touch ~uid:ghost ~blk:0;
  Obs.Heat.note_decode ~uid:ghost ~blk:0 ~bytes:1;
  Alcotest.(check bool) "disabled records nothing" true (stat_of ghost = None)

let test_heat_snapshot_json () =
  let uid = fresh_uid () in
  Obs.Heat.register ~uid ~label:"heat:/json" ~blocks:1;
  Obs.Heat.note_touch ~uid ~blk:0;
  let j = Obs.Heat.snapshot_json () in
  Alcotest.(check (option bool)) "enabled flag" (Some true)
    (match Obs.Json.member "enabled" j with Some (Obs.Json.Bool b) -> Some b | _ -> None);
  let containers = Option.get (Option.bind (Obs.Json.member "containers" j) Obs.Json.to_list) in
  let mine =
    List.find
      (fun c -> Obs.Json.member "container" c = Some (Obs.Json.Str "heat:/json"))
      containers
  in
  List.iter
    (fun field ->
      Alcotest.(check bool) (field ^ " present") true (Obs.Json.member field mine <> None))
    [ "uid"; "blocks"; "touches"; "decodes"; "hits"; "header_skips"; "bytes_decoded";
      "bytes_skipped"; "seq_touches"; "runs"; "hot_blocks" ];
  (* top_blocks:0 drops the per-block lists *)
  let j0 = Obs.Heat.snapshot_json ~top_blocks:0 () in
  let containers0 = Option.get (Option.bind (Obs.Json.member "containers" j0) Obs.Json.to_list) in
  List.iter
    (fun c ->
      Alcotest.(check bool) "no hot_blocks at top 0" true (Obs.Json.member "hot_blocks" c = None))
    containers0

(* ------------------------------------------------------------------ *)
(* Profile: fingerprints, drift, recommendations                       *)
(* ------------------------------------------------------------------ *)

let test_drift_identical_and_shifted () =
  let mix_a = [ (("/a", "eq"), 2.0); (("/b", "range"), 1.0) ] in
  let fa = Obs.Profile.of_weighted_events mix_a in
  let fa' = Obs.Profile.of_weighted_events mix_a in
  let fb = Obs.Profile.of_weighted_events [ (("/c", "join"), 3.0) ] in
  let fc = Obs.Profile.of_weighted_events [ (("/a", "eq"), 2.0) ] in
  Alcotest.(check (float 1e-12)) "identical mixes drift exactly 0" 0.0 (Obs.Profile.drift fa fa');
  Alcotest.(check (float 1e-12)) "disjoint mixes drift 1" 1.0 (Obs.Profile.drift fa fb);
  let partial = Obs.Profile.drift fa fc in
  Alcotest.(check bool) "shifted mix drifts strictly above identical" true
    (partial > Obs.Profile.drift fa fa');
  Alcotest.(check bool) "partial overlap drifts below disjoint" true (partial < 1.0);
  Alcotest.(check (float 1e-12)) "drift is symmetric" (Obs.Profile.drift fb fa)
    (Obs.Profile.drift fa fb)

let pred_json ~container ~kind ~candidates ~matches =
  Obs.Json.Obj
    [
      ("container", j_str container); ("kind", j_str kind);
      ("candidates", j_num candidates); ("matches", j_num matches);
    ]

let cont_json ~container ~decoded =
  Obs.Json.Obj [ ("container", j_str container); ("touches", j_num 1); ("decoded_bytes", j_num decoded) ]

let test_of_records_aggregates () =
  let r1 =
    Obs.Json.Obj
      [
        ("predicates", Obs.Json.List
           [
             pred_json ~container:"/a" ~kind:"eq" ~candidates:10 ~matches:2;
             pred_json ~container:"/a" ~kind:"eq" ~candidates:6 ~matches:1;
             pred_json ~container:"/b" ~kind:"range" ~candidates:4 ~matches:4;
           ]);
        ("containers", Obs.Json.List [ cont_json ~container:"/a" ~decoded:128 ]);
      ]
  in
  let r2 = Obs.Json.Obj [ ("containers", Obs.Json.List [ cont_json ~container:"/a" ~decoded:64 ]) ] in
  let fp = Obs.Profile.of_records [ r1; r2 ] in
  Alcotest.(check int) "records" 2 fp.Obs.Profile.records;
  let weight k = List.assoc_opt k fp.Obs.Profile.weights in
  Alcotest.(check (option (float 1e-9))) "eq weight 2/3" (Some (2.0 /. 3.0)) (weight ("/a", "eq"));
  Alcotest.(check (option (float 1e-9))) "range weight 1/3" (Some (1.0 /. 3.0))
    (weight ("/b", "range"));
  let a = List.find (fun c -> c.Obs.Profile.c_container = "/a") fp.Obs.Profile.containers in
  Alcotest.(check int) "eq predicates on /a" 2 a.Obs.Profile.c_eq;
  Alcotest.(check int) "candidates summed" 16 a.Obs.Profile.c_candidates;
  Alcotest.(check int) "matches summed" 3 a.Obs.Profile.c_matches;
  Alcotest.(check int) "decoded bytes summed across records" 192 a.Obs.Profile.c_decoded_bytes;
  Alcotest.(check int) "queries touching /a" 2 a.Obs.Profile.c_queries;
  Alcotest.(check (option (float 1e-9))) "selectivity = matches/candidates" (Some (3.0 /. 16.0))
    (Obs.Profile.selectivity a);
  (* a log with no pushed predicates anywhere falls back to touch events *)
  let fp2 = Obs.Profile.of_records [ r2 ] in
  Alcotest.(check (option (float 1e-9))) "navigation-only log fingerprints as touches" (Some 1.0)
    (List.assoc_opt ("/a", "touch") fp2.Obs.Profile.weights)

let heat_json entries =
  Obs.Json.Obj
    [
      ("enabled", Obs.Json.Bool true);
      ( "containers",
        Obs.Json.List
          (List.map
             (fun (path, seq, runs, skips, decodes) ->
               Obs.Json.Obj
                 [
                   ("container", j_str path); ("seq_touches", j_num seq); ("runs", j_num runs);
                   ("header_skips", j_num skips); ("decodes", j_num decodes);
                 ])
             entries) );
    ]

let test_recommendations () =
  let records =
    [
      Obs.Json.Obj
        [
          ("predicates", Obs.Json.List
             [
               pred_json ~container:"/point" ~kind:"eq" ~candidates:1000 ~matches:2;
               pred_json ~container:"/scan" ~kind:"range" ~candidates:100 ~matches:50;
             ]);
        ];
    ]
  in
  let fp = Obs.Profile.of_records records in
  let heat =
    heat_json [ ("/point", 1, 9, 0, 10); ("/scan", 95, 5, 0, 10) ]
  in
  let recs = Obs.Profile.recommend ~heat fp in
  let rec_of path = List.find (fun r -> r.Obs.Profile.r_container = path) recs in
  let point = rec_of "/point" and scan = rec_of "/scan" in
  Alcotest.(check string) "selective random access shrinks" "shrink" point.Obs.Profile.r_action;
  Alcotest.(check (float 1e-9)) "shrink factor" 0.25 point.Obs.Profile.r_factor;
  Alcotest.(check string) "sequential unpruned scans grow" "grow" scan.Obs.Profile.r_action;
  Alcotest.(check (float 1e-9)) "grow factor" 4.0 scan.Obs.Profile.r_factor;
  (* without heat evidence the scan container has nothing to grow on *)
  let recs = Obs.Profile.recommend fp in
  Alcotest.(check string) "no heat: scan keeps its size" "keep"
    (List.find (fun r -> r.Obs.Profile.r_container = "/scan") recs).Obs.Profile.r_action

(* ------------------------------------------------------------------ *)
(* Serve rolling window                                                *)
(* ------------------------------------------------------------------ *)

let test_serve_window () =
  (* gauge publication goes through the telemetry-gated registry; an
     earlier suite may have left the gate off *)
  Obs.set_enabled true;
  Serve.window_reset ();
  let z = Serve.window_stats () in
  Alcotest.(check int) "empty window has no requests" 0 z.Serve.ws_requests;
  Alcotest.(check (float 0.0)) "empty window error rate" 0.0 z.Serve.ws_error_rate;
  Alcotest.(check (float 0.0)) "empty window p99" 0.0 z.Serve.ws_p99_ms;
  for i = 1 to 90 do
    Serve.window_observe ~error:false (float_of_int i)
  done;
  for _ = 1 to 10 do
    Serve.window_observe ~error:true 200.0
  done;
  let w = Serve.window_stats () in
  Alcotest.(check int) "requests counted" 100 w.Serve.ws_requests;
  Alcotest.(check int) "errors counted" 10 w.Serve.ws_errors;
  Alcotest.(check (float 1e-9)) "error rate" 0.1 w.Serve.ws_error_rate;
  Alcotest.(check bool) "p50 within observed range" true
    (w.Serve.ws_p50_ms >= 1.0 && w.Serve.ws_p50_ms <= 200.0);
  Alcotest.(check bool) "percentiles ordered" true
    (w.Serve.ws_p50_ms <= w.Serve.ws_p95_ms && w.Serve.ws_p95_ms <= w.Serve.ws_p99_ms);
  Alcotest.(check bool) "p99 bounded by max" true (w.Serve.ws_p99_ms <= 200.0);
  Serve.publish_window_metrics ();
  let dump = Obs.Metrics.dump_json () in
  Alcotest.(check bool) "window gauges published" true
    (contains ~needle:"serve.window.requests" dump);
  Serve.window_reset ();
  Alcotest.(check int) "reset empties the window" 0 (Serve.window_stats ()).Serve.ws_requests

let test_histogram_percentile_sentinels () =
  Obs.set_enabled true;
  Alcotest.(check (option (float 0.0))) "missing histogram" None
    (Obs.Metrics.histogram_percentile "workload.absent" 0.5);
  let name = "workload.p.single" in
  Obs.Metrics.observe name 7.0;
  List.iter
    (fun p ->
      Alcotest.(check (option (float 1e-9))) "single observation pins every percentile"
        (Some 7.0)
        (Obs.Metrics.histogram_percentile name p))
    [ -1.0; 0.0; 0.5; 1.0; 2.0 ];
  let name = "workload.p.bucket" in
  Obs.Metrics.observe name 3.0;
  Obs.Metrics.observe name 3.5;
  Alcotest.(check (option (float 1e-9))) "p0 is the recorded min" (Some 3.0)
    (Obs.Metrics.histogram_percentile name 0.0);
  Alcotest.(check (option (float 1e-9))) "p100 is the recorded max" (Some 3.5)
    (Obs.Metrics.histogram_percentile name 1.0);
  let p50 = Option.get (Obs.Metrics.histogram_percentile name 0.5) in
  Alcotest.(check bool) "one-bucket interpolation stays inside min..max" true
    (p50 >= 3.0 && p50 <= 3.5)

(* ------------------------------------------------------------------ *)
(* Expo HTTP hardening                                                 *)
(* ------------------------------------------------------------------ *)

(* Ship raw (possibly malformed) bytes and return the status line's
   code, or None when the server just closed the connection. *)
let raw_request ~port ?(close_write = true) payload =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  ignore (Unix.write_substring sock payload 0 (String.length payload));
  if close_write then Unix.shutdown sock Unix.SHUTDOWN_SEND;
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 1024 in
  let rec drain () =
    match Unix.read sock chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
      Buffer.add_subbytes buf chunk 0 n;
      drain ()
    | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> ()
  in
  drain ();
  let raw = Buffer.contents buf in
  match String.index_opt raw ' ' with
  | Some i when String.length raw >= i + 4 -> Some (int_of_string (String.sub raw (i + 1) 3))
  | _ -> None

let test_expo_rejects_malformed_requests () =
  let server = Obs.Expo.start ~port:0 () in
  Fun.protect ~finally:(fun () -> Obs.Expo.stop server) @@ fun () ->
  let port = Obs.Expo.port server in
  let alive label =
    Alcotest.(check (option int)) (label ^ ": server still answers") (Some 200)
      (raw_request ~port "GET /healthz HTTP/1.1\r\n\r\n")
  in
  Alcotest.(check (option int)) "garbage request line" (Some 400)
    (raw_request ~port "BLARG\r\n\r\n");
  alive "garbage request line";
  Alcotest.(check (option int)) "oversized header line" (Some 400)
    (raw_request ~port ("GET /" ^ String.make 9000 'a' ^ " HTTP/1.1\r\n\r\n"));
  alive "oversized header line";
  Alcotest.(check (option int)) "POST without Content-Length" (Some 400)
    (raw_request ~port "POST /query HTTP/1.1\r\n\r\n");
  alive "POST without Content-Length";
  Alcotest.(check (option int)) "malformed Content-Length" (Some 400)
    (raw_request ~port "POST /query HTTP/1.1\r\nContent-Length: banana\r\n\r\n");
  alive "malformed Content-Length";
  Alcotest.(check (option int)) "negative Content-Length" (Some 400)
    (raw_request ~port "POST /query HTTP/1.1\r\nContent-Length: -5\r\n\r\n");
  alive "negative Content-Length";
  Alcotest.(check (option int)) "oversized body declaration" (Some 400)
    (raw_request ~port "POST /query HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n");
  alive "oversized body declaration";
  Alcotest.(check (option int)) "truncated body" (Some 400)
    (raw_request ~port "POST /query HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc");
  alive "truncated body";
  Alcotest.(check (option int)) "premature end of headers" (Some 400)
    (raw_request ~port "GET /healthz HTTP/1.1\r\nHost: x");
  alive "premature end of headers"

(* ------------------------------------------------------------------ *)
(* Query-log <-> heat reconciliation                                   *)
(* ------------------------------------------------------------------ *)

let xmark_doc =
  "<site><people>\
   <person id=\"person0\"><name>Kasidit Treweek</name><age>32</age></person>\
   <person id=\"person1\"><name>Aloys Rommel</name><age>40</age></person>\
   <person id=\"person2\"><name>Obadiah Shore</name><age>25</age></person>\
   </people></site>"

let with_query_log f =
  let file = Filename.temp_file "xquec_wl_" ".jsonl" in
  Obs.Query_log.set_path (Some file);
  Fun.protect
    ~finally:(fun () ->
      Obs.Query_log.set_path None;
      try Sys.remove file with Sys_error _ -> ())
    (fun () -> f file)

let read_records file =
  let ic = open_in file in
  let rec go acc =
    match input_line ic with
    | line -> go (Obs.Json.parse line :: acc)
    | exception End_of_file ->
      close_in ic;
      List.rev acc
  in
  go []

(* sum an int field per container label across all "containers" tags *)
let sum_by_container records field =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun r ->
      match Option.bind (Obs.Json.member "containers" r) Obs.Json.to_list with
      | None -> ()
      | Some tags ->
        List.iter
          (fun tag ->
            match (Obs.Json.member "container" tag, Obs.Json.member field tag) with
            | Some (Obs.Json.Str label), Some (Obs.Json.Num v) ->
              Hashtbl.replace tbl label
                (int_of_float v + Option.value ~default:0 (Hashtbl.find_opt tbl label))
            | _ -> ())
          tags)
    records;
  tbl

let test_query_log_heat_reconcile () =
  let eng = Engine.load ~name:"xmark.xml" xmark_doc in
  Obs.Heat.reset ();
  let records =
    with_query_log @@ fun file ->
    List.iter
      (fun q -> ignore (Engine.query_serialized_logged eng q))
      [
        "for $p in document(\"xmark.xml\")/site/people/person where $p/age > \"30\" return $p/name";
        "document(\"xmark.xml\")/site/people/person[@id = \"person1\"]/name";
        "for $p in document(\"xmark.xml\")/site/people/person return $p/age";
      ];
    read_records file
  in
  Alcotest.(check int) "one record per query" 3 (List.length records);
  (* the per-query heat deltas must sum back to the live heat table *)
  let logged = sum_by_container records "decoded_bytes" in
  let live = Hashtbl.create 8 in
  List.iter
    (fun (s : Obs.Heat.stat) ->
      if s.Obs.Heat.bytes_decoded > 0 then
        Hashtbl.replace live s.Obs.Heat.label
          (s.Obs.Heat.bytes_decoded
          + Option.value ~default:0 (Hashtbl.find_opt live s.Obs.Heat.label)))
    (Obs.Heat.snapshot ());
  Alcotest.(check bool) "queries decoded at least one container" true (Hashtbl.length live > 0);
  Hashtbl.iter
    (fun label bytes ->
      Alcotest.(check int)
        (Printf.sprintf "log sums to heat for %s" label)
        bytes
        (Option.value ~default:0 (Hashtbl.find_opt logged label)))
    live;
  Hashtbl.iter
    (fun label bytes ->
      if bytes > 0 then
        Alcotest.(check bool)
          (Printf.sprintf "log container %s is known to heat" label)
          true (Hashtbl.mem live label))
    logged;
  (* the where-query tagged container-resolved predicates *)
  let kinds =
    List.concat_map
      (fun r ->
        match Option.bind (Obs.Json.member "predicates" r) Obs.Json.to_list with
        | None -> []
        | Some ps ->
          List.filter_map
            (fun p ->
              match Obs.Json.member "kind" p with Some (Obs.Json.Str k) -> Some k | _ -> None)
            ps)
      records
  in
  Alcotest.(check bool) "a range predicate was observed" true (List.mem "range" kinds);
  (* and the log profiles into a non-empty fingerprint whose drift
     against itself is zero — the `xquec profile` path end to end *)
  let fp = Obs.Profile.of_records records in
  Alcotest.(check bool) "fingerprint is non-empty" true (fp.Obs.Profile.weights <> []);
  Alcotest.(check (float 1e-12)) "self-drift is zero" 0.0 (Obs.Profile.drift fp fp)

let test_declared_workload_fingerprint () =
  let eng = Engine.load ~name:"xmark.xml" xmark_doc in
  let repo = Engine.repo eng in
  let queries =
    [
      "for $p in document(\"xmark.xml\")/site/people/person where $p/age = \"32\" return $p/name";
      "for $p in document(\"xmark.xml\")/site/people/person where $p/age > \"30\" return $p/name";
    ]
  in
  let wl = Workload.of_query_strings repo queries in
  let fp = Workload.fingerprint repo wl in
  Alcotest.(check bool) "declared workload fingerprints" true (fp.Obs.Profile.weights <> []);
  List.iter
    (fun ((_, kind), _) ->
      Alcotest.(check bool) ("declared kind " ^ kind) true
        (List.mem kind [ "eq"; "range"; "wild" ]))
    fp.Obs.Profile.weights;
  Alcotest.(check (float 1e-12)) "declared self-drift is zero" 0.0 (Obs.Profile.drift fp fp);
  let d = Obs.Profile.drift fp (Obs.Profile.of_weighted_events [ (("/elsewhere", "join"), 1.0) ]) in
  Alcotest.(check (float 1e-12)) "declared vs disjoint observed drift is 1" 1.0 d

let suites =
  [
    ( "workload-heat",
      [
        Alcotest.test_case "touch semantics" `Quick test_heat_touch_semantics;
        Alcotest.test_case "reset and switch" `Quick test_heat_reset_and_switch;
        Alcotest.test_case "snapshot json" `Quick test_heat_snapshot_json;
      ] );
    ( "workload-profile",
      [
        Alcotest.test_case "drift identical and shifted" `Quick test_drift_identical_and_shifted;
        Alcotest.test_case "of_records aggregates" `Quick test_of_records_aggregates;
        Alcotest.test_case "recommendations" `Quick test_recommendations;
      ] );
    ( "workload-serve",
      [
        Alcotest.test_case "rolling window" `Quick test_serve_window;
        Alcotest.test_case "histogram percentile sentinels" `Quick
          test_histogram_percentile_sentinels;
      ] );
    ( "workload-expo",
      [
        Alcotest.test_case "rejects malformed requests" `Quick
          test_expo_rejects_malformed_requests;
      ] );
    ( "workload-reconcile",
      [
        Alcotest.test_case "query log matches heat" `Quick test_query_log_heat_reconcile;
        Alcotest.test_case "declared workload fingerprint" `Quick
          test_declared_workload_fingerprint;
      ] );
  ]
