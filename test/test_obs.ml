(* Telemetry layer tests: span nesting and the trace ring buffer,
   log-scale histogram bucketing, metrics JSON round-trips through the
   hand-rolled parser, and an EXPLAIN golden test asserting operator
   names and row counts on a small XMark-style document. *)

open Xquec_core
module Obs = Xquec_obs

let with_fresh_telemetry f =
  Obs.reset ();
  Fun.protect ~finally:(fun () -> Obs.reset ()) (fun () -> Obs.with_enabled f)

(* ------------------------------------------------------------------ *)
(* Trace                                                               *)
(* ------------------------------------------------------------------ *)

let test_span_nesting () =
  with_fresh_telemetry @@ fun () ->
  let result =
    Obs.Trace.with_span ~name:"outer" ~attrs:[ ("k", "v") ] (fun () ->
        Obs.Trace.with_span ~name:"inner" (fun () -> 6 * 7))
  in
  Alcotest.(check int) "value threads through" 42 result;
  match Obs.Trace.spans () with
  | [ inner; outer ] ->
    (* spans complete innermost-first *)
    Alcotest.(check string) "inner name" "inner" inner.Obs.Trace.name;
    Alcotest.(check string) "outer name" "outer" outer.Obs.Trace.name;
    Alcotest.(check int) "outer depth" 0 outer.Obs.Trace.depth;
    Alcotest.(check int) "inner depth" 1 inner.Obs.Trace.depth;
    Alcotest.(check bool) "inner within outer (start)" true
      (inner.Obs.Trace.start_us >= outer.Obs.Trace.start_us);
    Alcotest.(check bool) "inner within outer (duration)" true
      (inner.Obs.Trace.dur_us <= outer.Obs.Trace.dur_us);
    Alcotest.(check (list (pair string string))) "attrs kept" [ ("k", "v") ]
      outer.Obs.Trace.attrs
  | spans -> Alcotest.failf "expected 2 spans, got %d" (List.length spans)

let test_span_disabled_records_nothing () =
  Obs.reset ();
  Alcotest.(check bool) "telemetry off" false (Obs.is_enabled ());
  let r = Obs.Trace.with_span ~name:"ghost" (fun () -> 1) in
  Alcotest.(check int) "still runs" 1 r;
  Alcotest.(check int) "no spans" 0 (List.length (Obs.Trace.spans ()))

let test_ring_buffer_overwrites () =
  with_fresh_telemetry @@ fun () ->
  Obs.Trace.set_capacity 4;
  Fun.protect ~finally:(fun () -> Obs.Trace.set_capacity Obs.Trace.default_capacity)
  @@ fun () ->
  for i = 1 to 10 do
    Obs.Trace.with_span ~name:(Printf.sprintf "s%d" i) (fun () -> ())
  done;
  let names = List.map (fun s -> s.Obs.Trace.name) (Obs.Trace.spans ()) in
  Alcotest.(check (list string)) "newest 4 survive, oldest first"
    [ "s7"; "s8"; "s9"; "s10" ] names;
  Alcotest.(check int) "dropped count" 6 (Obs.Trace.dropped ())

let test_chrome_trace_json () =
  with_fresh_telemetry @@ fun () ->
  Obs.Trace.with_span ~name:"load" (fun () ->
      Obs.Trace.with_span ~name:"parse" (fun () -> ()));
  let json = Obs.Json.parse (Obs.Trace.to_chrome_json ()) in
  let all_events =
    match Option.bind (Obs.Json.member "traceEvents" json) Obs.Json.to_list with
    | Some l -> l
    | None -> Alcotest.fail "no traceEvents array"
  in
  let phase ev = Option.bind (Obs.Json.member "ph" ev) Obs.Json.to_str in
  (* "M" events are per-domain thread_name metadata *)
  let meta, events = List.partition (fun ev -> phase ev = Some "M") all_events in
  Alcotest.(check bool) "has thread_name metadata" true (List.length meta >= 1);
  Alcotest.(check int) "two span events" 2 (List.length events);
  List.iter
    (fun ev ->
      Alcotest.(check (option string)) "phase" (Some "X") (phase ev);
      Alcotest.(check bool) "has ts" true
        (Option.bind (Obs.Json.member "ts" ev) Obs.Json.to_float <> None);
      Alcotest.(check bool) "has tid" true
        (Option.bind (Obs.Json.member "tid" ev) Obs.Json.to_float <> None))
    events

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_histogram_bucketing () =
  (* bucket 0 holds v <= lowest_bound; bucket i covers
     (lb * 2^(i-1), lb * 2^i] *)
  Alcotest.(check int) "at lowest bound" 0 (Obs.Metrics.bucket_index 0.001);
  Alcotest.(check int) "below lowest bound" 0 (Obs.Metrics.bucket_index 0.0001);
  Alcotest.(check int) "just above" 1 (Obs.Metrics.bucket_index 0.0015);
  Alcotest.(check int) "upper edge inclusive" 1 (Obs.Metrics.bucket_index 0.002);
  Alcotest.(check int) "next bucket" 2 (Obs.Metrics.bucket_index 0.003);
  Alcotest.(check int) "huge values clamp to last" (Obs.Metrics.bucket_count - 1)
    (Obs.Metrics.bucket_index 1e30);
  Alcotest.(check (float 1e-9)) "bucket 1 upper bound" 0.002
    (Obs.Metrics.bucket_upper_bound 1);
  with_fresh_telemetry @@ fun () ->
  List.iter (Obs.Metrics.observe "h") [ 0.0005; 0.0015; 0.0016; 100.0 ];
  (match Obs.Metrics.histogram_stats "h" with
  | None -> Alcotest.fail "histogram missing"
  | Some s ->
    Alcotest.(check int) "count" 4 s.Obs.Metrics.count;
    Alcotest.(check (float 1e-9)) "min" 0.0005 s.Obs.Metrics.min;
    Alcotest.(check (float 1e-9)) "max" 100.0 s.Obs.Metrics.max);
  match Obs.Metrics.histogram_buckets "h" with
  | None -> Alcotest.fail "buckets missing"
  | Some buckets ->
    Alcotest.(check int) "three occupied buckets" 3 (List.length buckets);
    Alcotest.(check (list int)) "bucket counts" [ 1; 2; 1 ] (List.map snd buckets)

let test_metrics_json_roundtrip () =
  with_fresh_telemetry @@ fun () ->
  Obs.Metrics.incr ~by:3 "loader.documents";
  Obs.Metrics.incr "loader.documents";
  Obs.Metrics.set_gauge "partitioner.final_cost" 123.5;
  Obs.Metrics.observe "loader.parse_ms" 2.25;
  Obs.Metrics.observe "loader.parse_ms" 4.75;
  let json = Obs.Json.parse (Obs.Metrics.dump_json ()) in
  let path keys =
    List.fold_left (fun v k -> Option.bind v (Obs.Json.member k)) (Some json) keys
  in
  Alcotest.(check (option (float 1e-9))) "counter" (Some 4.0)
    (Option.bind (path [ "counters"; "loader.documents" ]) Obs.Json.to_float);
  Alcotest.(check (option (float 1e-9))) "gauge" (Some 123.5)
    (Option.bind (path [ "gauges"; "partitioner.final_cost" ]) Obs.Json.to_float);
  Alcotest.(check (option (float 1e-9))) "histogram count" (Some 2.0)
    (Option.bind (path [ "histograms"; "loader.parse_ms"; "count" ]) Obs.Json.to_float);
  Alcotest.(check (option (float 1e-9))) "histogram sum" (Some 7.0)
    (Option.bind (path [ "histograms"; "loader.parse_ms"; "sum" ]) Obs.Json.to_float);
  (* disabled registry refuses writes but still dumps *)
  Obs.set_enabled false;
  Obs.Metrics.incr "ignored.counter";
  Alcotest.(check int) "write gated off" 0 (Obs.Metrics.counter_value "ignored.counter")

let test_json_parser_rejects_garbage () =
  List.iter
    (fun s ->
      match Obs.Json.parse s with
      | exception Obs.Json.Parse_error _ -> ()
      | _ -> Alcotest.failf "parser accepted %S" s)
    [ ""; "{"; "[1,]"; "{\"a\" 1}"; "nulll"; "\"unterminated" ]

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_json_escaping () =
  List.iter
    (fun (input, expected) ->
      Alcotest.(check string) (Printf.sprintf "escape %S" input) expected
        (Obs.Json.escape input))
    [
      ("plain", "plain");
      ("a\"b", "a\\\"b");
      ("back\\slash", "back\\\\slash");
      ("line1\nline2", "line1\\nline2");
      ("\r\t", "\\r\\t");
      ("\x00\x01\x1f", "\\u0000\\u0001\\u001f");
      ("caf\xc3\xa9", "caf\xc3\xa9") (* UTF-8 bytes pass through *);
    ];
  (* printer + parser round-trip the tricky string exactly *)
  let tricky = "he said \"hi\"\n\tC:\\path\x01end" in
  match Obs.Json.parse (Obs.Json.to_string (Obs.Json.Obj [ ("k", Obs.Json.Str tricky) ])) with
  | Obs.Json.Obj [ ("k", Obs.Json.Str s) ] ->
    Alcotest.(check string) "round-trips through printer and parser" tricky s
  | _ -> Alcotest.fail "unexpected round-trip shape"

let test_histogram_percentiles () =
  with_fresh_telemetry @@ fun () ->
  Alcotest.(check bool) "missing histogram" true
    (Obs.Metrics.histogram_percentile "nope" 0.5 = None);
  for i = 1 to 100 do
    Obs.Metrics.observe "lat" (float_of_int i)
  done;
  let pct p =
    match Obs.Metrics.histogram_percentile "lat" p with
    | Some v -> v
    | None -> Alcotest.fail "histogram disappeared"
  in
  let p50 = pct 0.50 and p95 = pct 0.95 and p99 = pct 0.99 in
  (* estimates interpolate inside log2 buckets: the true p50 of 1..100
     is 50, inside bucket (32, 64]; p95/p99 land in the last occupied
     bucket, whose upper edge is clamped to the observed max *)
  Alcotest.(check bool) "p50 within its bucket" true (p50 >= 32.0 && p50 <= 64.0);
  Alcotest.(check bool) "p95 within its bucket" true (p95 >= 64.0 && p95 <= 100.0);
  Alcotest.(check bool) "p99 within its bucket" true (p99 >= 64.0 && p99 <= 100.0);
  Alcotest.(check bool) "monotonic p50 <= p95 <= p99" true (p50 <= p95 && p95 <= p99);
  Alcotest.(check (float 1e-9)) "p100 is the max" 100.0 (pct 1.0);
  Alcotest.(check bool) "p0 at least the min" true (pct 0.0 >= 1.0 -. 1e-9)

let test_prometheus_exposition () =
  with_fresh_telemetry @@ fun () ->
  Obs.Metrics.incr ~by:3 "serve.queries";
  Obs.Metrics.set_gauge "decodepool.domains" 4.0;
  Obs.Metrics.observe "serve.query_ms" 0.5;
  Obs.Metrics.observe "serve.query_ms" 3.0;
  Obs.Metrics.incr ~by:7 "container./site/a/#text.blocks_decoded";
  let text = Obs.Metrics.to_prometheus () in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("exposition contains " ^ needle) true (contains ~needle text))
    [
      "# TYPE xquec_serve_queries counter";
      "xquec_serve_queries 3";
      "# TYPE xquec_decodepool_domains gauge";
      "xquec_decodepool_domains 4";
      "# TYPE xquec_serve_query_ms histogram";
      "xquec_serve_query_ms_bucket{le=\"+Inf\"} 2";
      "xquec_serve_query_ms_sum 3.5";
      "xquec_serve_query_ms_count 2";
      (* per-container counters become one series with a path label *)
      "xquec_container_blocks_decoded{path=\"/site/a/#text\"} 7";
    ];
  (* _bucket counts are cumulative and end at the total *)
  let bucket_counts =
    String.split_on_char '\n' text
    |> List.filter_map (fun l ->
           if contains ~needle:"xquec_serve_query_ms_bucket" l then
             String.rindex_opt l ' '
             |> Option.map (fun i ->
                    float_of_string (String.sub l (i + 1) (String.length l - i - 1)))
           else None)
  in
  Alcotest.(check bool) "cumulative buckets" true
    (List.sort compare bucket_counts = bucket_counts);
  Alcotest.(check (float 1e-9)) "last bucket = count" 2.0
    (List.nth bucket_counts (List.length bucket_counts - 1))

(* The tentpole acceptance: decode work run on the domain pool lands in
   per-domain ring buffers, and the merged chrome trace shows it on
   distinct worker tids. Two tasks rendezvous before returning, so no
   single domain can drain both. *)
let test_spans_from_worker_domains () =
  with_fresh_telemetry @@ fun () ->
  let saved = Storage.Domain_pool.size () in
  Fun.protect ~finally:(fun () -> Storage.Domain_pool.set_size saved) @@ fun () ->
  Storage.Domain_pool.set_size 2;
  let m = Mutex.create () in
  let c = Condition.create () in
  let started = ref 0 in
  let task () =
    Obs.Trace.with_span ~name:"decode.task" (fun () ->
        Mutex.lock m;
        incr started;
        Condition.broadcast c;
        while !started < 2 do
          Condition.wait c m
        done;
        Mutex.unlock m)
  in
  Storage.Domain_pool.run [| task; task |];
  let tids =
    Obs.Trace.spans ()
    |> List.filter (fun (s : Obs.Trace.span) -> s.Obs.Trace.name = "decode.task")
    |> List.map (fun (s : Obs.Trace.span) -> s.Obs.Trace.tid)
    |> List.sort_uniq compare
  in
  Alcotest.(check bool) "spans on >= 2 distinct tids" true (List.length tids >= 2);
  (* the chrome export carries both executors: per-tid thread_name
     metadata plus the spans themselves *)
  let json = Obs.Json.parse (Obs.Trace.to_chrome_json ()) in
  let events =
    match Option.bind (Obs.Json.member "traceEvents" json) Obs.Json.to_list with
    | Some l -> l
    | None -> Alcotest.fail "no traceEvents"
  in
  let tid_of ev = Option.bind (Obs.Json.member "tid" ev) Obs.Json.to_float in
  let name_of ev = Option.bind (Obs.Json.member "name" ev) Obs.Json.to_str in
  let task_tids =
    List.filter (fun ev -> name_of ev = Some "decode.task") events
    |> List.filter_map tid_of |> List.sort_uniq compare
  in
  Alcotest.(check bool) "chrome trace has tasks on >= 2 tids" true
    (List.length task_tids >= 2);
  let meta_tids =
    List.filter
      (fun ev -> Option.bind (Obs.Json.member "ph" ev) Obs.Json.to_str = Some "M")
      events
    |> List.filter_map tid_of |> List.sort_uniq compare
  in
  List.iter
    (fun t ->
      Alcotest.(check bool) "every task tid has thread_name metadata" true
        (List.mem t meta_tids))
    task_tids

(* ------------------------------------------------------------------ *)
(* Explain golden test                                                 *)
(* ------------------------------------------------------------------ *)

let xmark_doc =
  "<site><people>\
   <person id=\"person0\"><name>Kasidit Treweek</name><emailaddress>mailto:k@t</emailaddress></person>\
   <person id=\"person1\"><name>Aloys Rommel</name></person>\
   <person id=\"person2\"><name>Obadiah Shore</name></person>\
   </people></site>"

let find_op (root : Obs.Explain.node) (op : string) : Obs.Explain.node =
  match
    Obs.Explain.fold
      (fun acc n -> if acc = None && n.Obs.Explain.op = op then Some n else acc)
      None root
  with
  | Some n -> n
  | None -> Alcotest.failf "operator %S not in plan:\n%s" op (Obs.Explain.render root)

let test_explain_path_query () =
  let eng = Engine.load ~name:"xmark.xml" xmark_doc in
  let (items, plan) = Engine.query_profiled eng "document(\"xmark.xml\")/site/people/person/name" in
  Alcotest.(check int) "result cardinality" 3 (List.length items);
  Alcotest.(check int) "root rows" 3 plan.Obs.Explain.rows;
  List.iter
    (fun (op, rows) ->
      let n = find_op plan op in
      Alcotest.(check string) "kind" "step" n.Obs.Explain.kind;
      Alcotest.(check int) (op ^ " rows") rows n.Obs.Explain.rows;
      Alcotest.(check bool) (op ^ " timed") true (n.Obs.Explain.wall_us >= 0.0))
    [ ("child::site", 1); ("child::people", 1); ("child::person", 3); ("child::name", 3) ];
  (* the rendered tree shows every operator with wall time and rows *)
  let rendered = Obs.Explain.render plan in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("render mentions " ^ needle) true
        (contains ~needle rendered))
    [ "child::person"; "ms, 3 rows" ]

let test_explain_pushdown_rows () =
  let eng = Engine.load ~name:"xmark.xml" xmark_doc in
  let (items, plan) =
    Engine.query_profiled eng
      "document(\"xmark.xml\")/site/people/person[@id = \"person1\"]/name"
  in
  Alcotest.(check int) "one person matches" 1 (List.length items);
  let pushdown = find_op plan "pushdown [./@id = \"person1\"]" in
  Alcotest.(check string) "pushdown kind" "pushdown" pushdown.Obs.Explain.kind;
  Alcotest.(check int) "pushdown rows" 1 pushdown.Obs.Explain.rows;
  Alcotest.(check bool) "decided on compressed codes" true
    (pushdown.Obs.Explain.cmp_compressed > 0);
  let totals = Obs.Explain.totals plan in
  Alcotest.(check bool) "totals see it" true (totals.Obs.Explain.compressed > 0)

let test_explain_flwor_operators () =
  let eng = Engine.load ~name:"xmark.xml" xmark_doc in
  let (items, plan) =
    Engine.query_profiled eng
      "for $p in document(\"xmark.xml\")/site/people/person where $p/@id = \"person0\" \
       return $p/name/text()"
  in
  Alcotest.(check int) "one result" 1 (List.length items);
  let flwor = find_op plan "flwor" in
  Alcotest.(check string) "flwor kind" "flwor" flwor.Obs.Explain.kind;
  let for_node = find_op plan "for $p" in
  Alcotest.(check string) "for kind" "for" for_node.Obs.Explain.kind;
  Alcotest.(check int) "tuples after binding" 3 for_node.Obs.Explain.rows;
  let where = find_op plan "where [$p/@id = \"person0\"]" in
  Alcotest.(check int) "tuples after where" 1 where.Obs.Explain.rows;
  let ret = find_op plan "return" in
  Alcotest.(check int) "returned items" 1 ret.Obs.Explain.rows

(* ------------------------------------------------------------------ *)
(* Query log                                                           *)
(* ------------------------------------------------------------------ *)

let with_query_log f =
  let file = Filename.temp_file "xquec_qlog" ".jsonl" in
  Fun.protect ~finally:(fun () ->
      Obs.Query_log.set_path None;
      if Sys.file_exists file then Sys.remove file)
  @@ fun () ->
  Obs.Query_log.set_path (Some file);
  f file

let read_lines file =
  let ic = open_in_bin file in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  String.split_on_char '\n' s |> List.filter (fun l -> String.trim l <> "")

let num_field record keys =
  let v =
    List.fold_left (fun v k -> Option.bind v (Obs.Json.member k)) (Some record) keys
  in
  match Option.bind v Obs.Json.to_float with
  | Some f -> f
  | None -> Alcotest.failf "query-log record missing %s" (String.concat "." keys)

let test_query_log_one_record_per_query () =
  with_query_log @@ fun file ->
  let eng = Engine.load ~name:"xmark.xml" xmark_doc in
  let q1 = "document(\"xmark.xml\")/site/people/person/name" in
  let q2 = "document(\"xmark.xml\")/site/people/person[@id = \"person1\"]/name" in
  let out1, _ = Engine.query_serialized_logged eng q1 in
  let out2, _ = Engine.query_serialized_logged eng q2 in
  let records = List.map Obs.Json.parse (read_lines file) in
  Alcotest.(check int) "exactly one record per query" 2 (List.length records);
  let r1 = List.nth records 0 and r2 = List.nth records 1 in
  Alcotest.(check (option string)) "query text" (Some q1)
    (Option.bind (Obs.Json.member "query" r1) Obs.Json.to_str);
  Alcotest.(check (option string)) "query hash" (Some (Digest.to_hex (Digest.string q1)))
    (Option.bind (Obs.Json.member "query_hash" r1) Obs.Json.to_str);
  Alcotest.(check (float 1e-9)) "rows" 3.0 (num_field r1 [ "rows" ]);
  Alcotest.(check (float 1e-9)) "result bytes" (float_of_int (String.length out1))
    (num_field r1 [ "result_bytes" ]);
  Alcotest.(check bool) "wall time recorded" true (num_field r1 [ "wall_ms" ] >= 0.0);
  Alcotest.(check bool) "plan shape recorded" true
    (match Option.bind (Obs.Json.member "plan_shape" r1) Obs.Json.to_str with
    | Some s -> contains ~needle:"step" s
    | None -> false);
  Alcotest.(check (float 1e-9)) "second record rows" 1.0 (num_field r2 [ "rows" ]);
  Alcotest.(check bool) "second result bytes" true
    (num_field r2 [ "result_bytes" ] = float_of_int (String.length out2))

let test_query_log_reconciles_with_pool_counters () =
  with_query_log @@ fun file ->
  let eng = Engine.load ~name:"xmark.xml" xmark_doc in
  Storage.Buffer_pool.clear ();
  let s0 = Storage.Buffer_pool.snapshot () in
  ignore (Engine.query_serialized_logged eng "document(\"xmark.xml\")/site/people/person/name");
  let s1 = Storage.Buffer_pool.snapshot () in
  match List.map Obs.Json.parse (read_lines file) with
  | [ r ] ->
    (* the record's byte and pool counters equal the pool deltas around
       the call — the reconciliation contract with `--stats` *)
    List.iter
      (fun (keys, delta) ->
        Alcotest.(check (float 1e-9))
          (String.concat "." keys)
          (float_of_int delta) (num_field r keys))
      [
        ( [ "bytes"; "decoded" ],
          s1.Storage.Buffer_pool.s_decoded_bytes - s0.Storage.Buffer_pool.s_decoded_bytes );
        ( [ "bytes"; "payload_decoded" ],
          s1.Storage.Buffer_pool.s_payload_bytes - s0.Storage.Buffer_pool.s_payload_bytes );
        ( [ "bytes"; "payload_skipped" ],
          s1.Storage.Buffer_pool.s_skipped_bytes - s0.Storage.Buffer_pool.s_skipped_bytes );
        ( [ "pool"; "misses" ],
          s1.Storage.Buffer_pool.s_misses - s0.Storage.Buffer_pool.s_misses );
        ( [ "pool"; "scan_inserts" ],
          s1.Storage.Buffer_pool.s_scan_inserts - s0.Storage.Buffer_pool.s_scan_inserts );
      ]
  | rs -> Alcotest.failf "expected 1 record, got %d" (List.length rs)

(* Block-join counters must tell one story everywhere: the query-log
   record's "join" object equals the Executor.join_stats delta around
   the query, and publish_pool_metrics mirrors the cumulative stats
   into the executor.join.* series that /metrics and /stats expose. *)
let test_query_log_join_counters_reconcile () =
  with_query_log @@ fun file ->
  let xml =
    "<db><items>"
    ^ String.concat ""
        (List.init 300 (fun i -> Printf.sprintf "<item><key>k%04d</key></item>" i))
    ^ "</items><lookups><lookup><ref>k0007</ref></lookup></lookups></db>"
  in
  let q =
    "for $l in doc('j.xml')/db/lookups/lookup for $i in doc('j.xml')/db/items/item \
     where $i/key = $l/ref return $i/key"
  in
  let saved_bs = Storage.Container.default_block_size () in
  Storage.Container.set_default_block_size 512;
  Fun.protect ~finally:(fun () -> Storage.Container.set_default_block_size saved_bs)
  @@ fun () ->
  let eng = Engine.load ~name:"j.xml" ~workload:[ q ] xml in
  let j0 = Executor.join_stats () in
  ignore (Engine.query_serialized_logged eng q);
  let j1 = Executor.join_stats () in
  Alcotest.(check bool) "the query took the block-join path" true
    (j1.Executor.j_block_joins > j0.Executor.j_block_joins);
  Alcotest.(check bool) "headers pruned at least one block" true
    (j1.Executor.j_blocks_skipped > j0.Executor.j_blocks_skipped);
  (match List.map Obs.Json.parse (read_lines file) with
  | [ r ] ->
    List.iter
      (fun (keys, delta) ->
        Alcotest.(check (float 1e-9))
          (String.concat "." keys)
          (float_of_int delta) (num_field r keys))
      [
        ([ "join"; "block_joins" ], j1.Executor.j_block_joins - j0.Executor.j_block_joins);
        ([ "join"; "blocks_probed" ], j1.Executor.j_blocks_probed - j0.Executor.j_blocks_probed);
        ( [ "join"; "blocks_skipped" ],
          j1.Executor.j_blocks_skipped - j0.Executor.j_blocks_skipped );
        ([ "join"; "skipped_bytes" ], j1.Executor.j_skipped_bytes - j0.Executor.j_skipped_bytes)
      ]
  | rs -> Alcotest.failf "expected 1 record, got %d" (List.length rs));
  (* the /metrics collector syncs the same cumulative counters (the
     registry only accepts writes while telemetry is on, as in serve) *)
  Obs.with_enabled @@ fun () ->
  Serve.publish_pool_metrics ();
  Alcotest.(check int) "metrics block_joins" j1.Executor.j_block_joins
    (Obs.Metrics.counter_value "executor.join.block_joins");
  Alcotest.(check int) "metrics blocks_probed" j1.Executor.j_blocks_probed
    (Obs.Metrics.counter_value "executor.join.blocks_probed");
  Alcotest.(check int) "metrics blocks_skipped" j1.Executor.j_blocks_skipped
    (Obs.Metrics.counter_value "executor.join.blocks_skipped");
  Alcotest.(check int) "metrics skipped_bytes" j1.Executor.j_skipped_bytes
    (Obs.Metrics.counter_value "executor.join.skipped_bytes")

let test_query_log_disabled_writes_nothing () =
  Obs.Query_log.set_path None;
  let eng = Engine.load ~name:"xmark.xml" xmark_doc in
  let out, _ = Engine.query_serialized_logged eng "document(\"xmark.xml\")/site/people/person/name" in
  Alcotest.(check bool) "query still answers" true (String.length out > 0);
  Alcotest.(check bool) "no log configured" true (Obs.Query_log.path () = None)

(* ------------------------------------------------------------------ *)
(* HTTP exposition server                                              *)
(* ------------------------------------------------------------------ *)

let http_request ~port ?(meth = "GET") ?(body = "") target =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  let req =
    Printf.sprintf "%s %s HTTP/1.1\r\nHost: localhost\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
      meth target (String.length body) body
  in
  ignore (Unix.write_substring sock req 0 (String.length req));
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 4096 in
  let rec drain () =
    match Unix.read sock chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
      Buffer.add_subbytes buf chunk 0 n;
      drain ()
  in
  drain ();
  let raw = Buffer.contents buf in
  let status =
    match String.index_opt raw ' ' with
    | Some i -> int_of_string (String.sub raw (i + 1) 3)
    | None -> Alcotest.failf "malformed response: %S" raw
  in
  let body =
    let rec find i =
      if i + 3 >= String.length raw then ""
      else if String.sub raw i 4 = "\r\n\r\n" then
        String.sub raw (i + 4) (String.length raw - i - 4)
      else find (i + 1)
    in
    find 0
  in
  (status, body)

let test_expo_http_roundtrip () =
  with_fresh_telemetry @@ fun () ->
  let eng = Engine.load ~name:"xmark.xml" xmark_doc in
  let server =
    Obs.Expo.start ~port:0 ~extra:(Serve.handler eng)
      ~collect:Serve.publish_pool_metrics ()
  in
  Fun.protect ~finally:(fun () -> Obs.Expo.stop server) @@ fun () ->
  let port = Obs.Expo.port server in
  Alcotest.(check bool) "bound an ephemeral port" true (port > 0);
  let status, body = http_request ~port "/healthz" in
  Alcotest.(check int) "healthz status" 200 status;
  Alcotest.(check bool) "healthz readiness json" true (contains ~needle:"\"status\":\"ok\"" body);
  Alcotest.(check bool) "healthz reports watchdog" true (contains ~needle:"\"watchdog\"" body);
  let status, body = http_request ~port "/metrics" in
  Alcotest.(check int) "metrics status" 200 status;
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("metrics contains " ^ needle) true (contains ~needle body))
    [ "# TYPE"; "xquec_bufferpool_hits"; "xquec_decodepool_domains" ];
  (* query over POST and percent-encoded GET *)
  let q = "document(\"xmark.xml\")/site/people/person[@id = \"person1\"]/name" in
  let status, body = http_request ~port ~meth:"POST" ~body:q "/query" in
  Alcotest.(check int) "post query status" 200 status;
  Alcotest.(check bool) "post query result" true (contains ~needle:"Aloys Rommel" body);
  let status, body = http_request ~port "/query?q=1%2B2" in
  Alcotest.(check int) "get query status" 200 status;
  Alcotest.(check string) "get query result" "3\n" body;
  let status, _ = http_request ~port "/query" in
  Alcotest.(check int) "get query without q" 400 status;
  let status, body = http_request ~port ~meth:"POST" ~body:"for $x in" "/query" in
  Alcotest.(check int) "malformed query is a client error" 400 status;
  Alcotest.(check bool) "error text returned" true (String.length body > 0);
  let status, _ = http_request ~port "/nope" in
  Alcotest.(check int) "unknown path" 404 status;
  let status, _ = http_request ~port ~meth:"DELETE" "/metrics" in
  Alcotest.(check int) "method not allowed" 405 status;
  let status, body = http_request ~port "/stats" in
  Alcotest.(check int) "stats status" 200 status;
  Alcotest.(check bool) "stats is json" true
    (match Obs.Json.parse body with Obs.Json.Obj _ -> true | _ -> false | exception _ -> false)

(* ------------------------------------------------------------------ *)
(* Bench regression gate                                               *)
(* ------------------------------------------------------------------ *)

let gate_results counts_v digest_v ms_v =
  Obs.Json.Obj
    [
      ( "experiments",
        Obs.Json.Obj
          [
            ( "exp1",
              Obs.Json.Obj
                [
                  ("wall_s", Obs.Json.Num 1.5);
                  ("cold_ms", Obs.Json.Num ms_v);
                  ("total_bytes", Obs.Json.Num counts_v);
                  ("scan_digest", Obs.Json.Str digest_v);
                  ( "rows",
                    Obs.Json.List
                      [
                        Obs.Json.Obj
                          [ ("name", Obs.Json.Str "a"); ("ratio", Obs.Json.Num 0.5) ];
                      ] );
                ] );
          ] );
    ]

let test_gate_pass_and_perturb () =
  let baseline = gate_results 1000.0 "abc" 10.0 in
  (* identical run passes, and harness wall time is never compared *)
  let r = Obs.Gate.compare_results ~mode:Obs.Gate.Full ~baseline ~candidate:baseline in
  Alcotest.(check bool) "identical passes" true r.Obs.Gate.r_passed;
  Alcotest.(check int) "nothing failed" 0 r.Obs.Gate.r_failed;
  (* a count drifting 10% fails; 2% passes (5% tolerance) *)
  let r = Obs.Gate.compare_results ~mode:Obs.Gate.Full ~baseline
      ~candidate:(gate_results 1100.0 "abc" 10.0) in
  Alcotest.(check bool) "10% count drift fails" false r.Obs.Gate.r_passed;
  let r = Obs.Gate.compare_results ~mode:Obs.Gate.Full ~baseline
      ~candidate:(gate_results 1020.0 "abc" 10.0) in
  Alcotest.(check bool) "2% count drift passes" true r.Obs.Gate.r_passed;
  (* digests are exact *)
  let r = Obs.Gate.compare_results ~mode:Obs.Gate.Full ~baseline
      ~candidate:(gate_results 1000.0 "beef" 10.0) in
  Alcotest.(check bool) "digest mismatch fails" false r.Obs.Gate.r_passed;
  (* timings have generous slack in full mode and are skipped in quick *)
  let r = Obs.Gate.compare_results ~mode:Obs.Gate.Full ~baseline
      ~candidate:(gate_results 1000.0 "abc" 100.0) in
  Alcotest.(check bool) "10x timing fails in full mode" false r.Obs.Gate.r_passed;
  let r = Obs.Gate.compare_results ~mode:Obs.Gate.Quick ~baseline
      ~candidate:(gate_results 1000.0 "abc" 100.0) in
  Alcotest.(check bool) "timing skipped in quick mode" true r.Obs.Gate.r_passed

let test_gate_missing_and_skipped () =
  let baseline = gate_results 1000.0 "abc" 10.0 in
  (* a metric that disappears fails the gate *)
  let without_metric =
    Obs.Json.Obj
      [
        ( "experiments",
          Obs.Json.Obj [ ("exp1", Obs.Json.Obj [ ("wall_s", Obs.Json.Num 1.0) ]) ] );
      ]
  in
  let r = Obs.Gate.compare_results ~mode:Obs.Gate.Full ~baseline ~candidate:without_metric in
  Alcotest.(check bool) "missing metric fails" false r.Obs.Gate.r_passed;
  Alcotest.(check bool) "counted as missing" true (r.Obs.Gate.r_missing > 0);
  (* a whole absent experiment is skipped (how --quick runs a subset) *)
  let empty = Obs.Json.Obj [ ("experiments", Obs.Json.Obj []) ] in
  let r = Obs.Gate.compare_results ~mode:Obs.Gate.Full ~baseline ~candidate:empty in
  Alcotest.(check int) "no failures" 0 r.Obs.Gate.r_failed;
  Alcotest.(check bool) "but an all-skipped run cannot pass" false r.Obs.Gate.r_passed;
  Alcotest.(check bool) "skipped counted" true (r.Obs.Gate.r_skipped > 0);
  (* the verdict JSON round-trips with the summary counters *)
  let r = Obs.Gate.compare_results ~mode:Obs.Gate.Full ~baseline ~candidate:baseline in
  match Obs.Gate.report_to_json r with
  | Obs.Json.Obj fields ->
    Alcotest.(check (option bool)) "passed field" (Some true)
      (match List.assoc_opt "passed" fields with
      | Some (Obs.Json.Bool b) -> Some b
      | _ -> None)
  | _ -> Alcotest.fail "verdict not an object"

let suites =
  [
    ( "obs-trace",
      [
        Alcotest.test_case "span nesting" `Quick test_span_nesting;
        Alcotest.test_case "disabled records nothing" `Quick test_span_disabled_records_nothing;
        Alcotest.test_case "ring buffer overwrites" `Quick test_ring_buffer_overwrites;
        Alcotest.test_case "chrome trace json" `Quick test_chrome_trace_json;
        Alcotest.test_case "spans from worker domains" `Quick test_spans_from_worker_domains;
      ] );
    ( "obs-metrics",
      [
        Alcotest.test_case "histogram bucketing" `Quick test_histogram_bucketing;
        Alcotest.test_case "histogram percentiles" `Quick test_histogram_percentiles;
        Alcotest.test_case "json round-trip" `Quick test_metrics_json_roundtrip;
        Alcotest.test_case "json escaping" `Quick test_json_escaping;
        Alcotest.test_case "parser rejects garbage" `Quick test_json_parser_rejects_garbage;
        Alcotest.test_case "prometheus exposition" `Quick test_prometheus_exposition;
      ] );
    ( "obs-query-log",
      [
        Alcotest.test_case "one record per query" `Quick test_query_log_one_record_per_query;
        Alcotest.test_case "reconciles with pool counters" `Quick
          test_query_log_reconciles_with_pool_counters;
        Alcotest.test_case "join counters reconcile" `Quick
          test_query_log_join_counters_reconcile;
        Alcotest.test_case "disabled writes nothing" `Quick test_query_log_disabled_writes_nothing;
      ] );
    ( "obs-expo",
      [ Alcotest.test_case "http round-trip" `Quick test_expo_http_roundtrip ] );
    ( "obs-gate",
      [
        Alcotest.test_case "pass and perturb" `Quick test_gate_pass_and_perturb;
        Alcotest.test_case "missing and skipped" `Quick test_gate_missing_and_skipped;
      ] );
    ( "obs-explain",
      [
        Alcotest.test_case "path query golden" `Quick test_explain_path_query;
        Alcotest.test_case "pushdown rows" `Quick test_explain_pushdown_rows;
        Alcotest.test_case "flwor operators" `Quick test_explain_flwor_operators;
      ] );
  ]
