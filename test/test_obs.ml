(* Telemetry layer tests: span nesting and the trace ring buffer,
   log-scale histogram bucketing, metrics JSON round-trips through the
   hand-rolled parser, and an EXPLAIN golden test asserting operator
   names and row counts on a small XMark-style document. *)

open Xquec_core
module Obs = Xquec_obs

let with_fresh_telemetry f =
  Obs.reset ();
  Fun.protect ~finally:(fun () -> Obs.reset ()) (fun () -> Obs.with_enabled f)

(* ------------------------------------------------------------------ *)
(* Trace                                                               *)
(* ------------------------------------------------------------------ *)

let test_span_nesting () =
  with_fresh_telemetry @@ fun () ->
  let result =
    Obs.Trace.with_span ~name:"outer" ~attrs:[ ("k", "v") ] (fun () ->
        Obs.Trace.with_span ~name:"inner" (fun () -> 6 * 7))
  in
  Alcotest.(check int) "value threads through" 42 result;
  match Obs.Trace.spans () with
  | [ inner; outer ] ->
    (* spans complete innermost-first *)
    Alcotest.(check string) "inner name" "inner" inner.Obs.Trace.name;
    Alcotest.(check string) "outer name" "outer" outer.Obs.Trace.name;
    Alcotest.(check int) "outer depth" 0 outer.Obs.Trace.depth;
    Alcotest.(check int) "inner depth" 1 inner.Obs.Trace.depth;
    Alcotest.(check bool) "inner within outer (start)" true
      (inner.Obs.Trace.start_us >= outer.Obs.Trace.start_us);
    Alcotest.(check bool) "inner within outer (duration)" true
      (inner.Obs.Trace.dur_us <= outer.Obs.Trace.dur_us);
    Alcotest.(check (list (pair string string))) "attrs kept" [ ("k", "v") ]
      outer.Obs.Trace.attrs
  | spans -> Alcotest.failf "expected 2 spans, got %d" (List.length spans)

let test_span_disabled_records_nothing () =
  Obs.reset ();
  Alcotest.(check bool) "telemetry off" false (Obs.is_enabled ());
  let r = Obs.Trace.with_span ~name:"ghost" (fun () -> 1) in
  Alcotest.(check int) "still runs" 1 r;
  Alcotest.(check int) "no spans" 0 (List.length (Obs.Trace.spans ()))

let test_ring_buffer_overwrites () =
  with_fresh_telemetry @@ fun () ->
  Obs.Trace.set_capacity 4;
  Fun.protect ~finally:(fun () -> Obs.Trace.set_capacity Obs.Trace.default_capacity)
  @@ fun () ->
  for i = 1 to 10 do
    Obs.Trace.with_span ~name:(Printf.sprintf "s%d" i) (fun () -> ())
  done;
  let names = List.map (fun s -> s.Obs.Trace.name) (Obs.Trace.spans ()) in
  Alcotest.(check (list string)) "newest 4 survive, oldest first"
    [ "s7"; "s8"; "s9"; "s10" ] names;
  Alcotest.(check int) "dropped count" 6 (Obs.Trace.dropped ())

let test_chrome_trace_json () =
  with_fresh_telemetry @@ fun () ->
  Obs.Trace.with_span ~name:"load" (fun () ->
      Obs.Trace.with_span ~name:"parse" (fun () -> ()));
  let json = Obs.Json.parse (Obs.Trace.to_chrome_json ()) in
  let events =
    match Option.bind (Obs.Json.member "traceEvents" json) Obs.Json.to_list with
    | Some l -> l
    | None -> Alcotest.fail "no traceEvents array"
  in
  Alcotest.(check int) "two events" 2 (List.length events);
  List.iter
    (fun ev ->
      let field name = Option.bind (Obs.Json.member name ev) Obs.Json.to_str in
      Alcotest.(check (option string)) "phase" (Some "X") (field "ph");
      Alcotest.(check bool) "has ts" true
        (Option.bind (Obs.Json.member "ts" ev) Obs.Json.to_float <> None))
    events

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_histogram_bucketing () =
  (* bucket 0 holds v <= lowest_bound; bucket i covers
     (lb * 2^(i-1), lb * 2^i] *)
  Alcotest.(check int) "at lowest bound" 0 (Obs.Metrics.bucket_index 0.001);
  Alcotest.(check int) "below lowest bound" 0 (Obs.Metrics.bucket_index 0.0001);
  Alcotest.(check int) "just above" 1 (Obs.Metrics.bucket_index 0.0015);
  Alcotest.(check int) "upper edge inclusive" 1 (Obs.Metrics.bucket_index 0.002);
  Alcotest.(check int) "next bucket" 2 (Obs.Metrics.bucket_index 0.003);
  Alcotest.(check int) "huge values clamp to last" (Obs.Metrics.bucket_count - 1)
    (Obs.Metrics.bucket_index 1e30);
  Alcotest.(check (float 1e-9)) "bucket 1 upper bound" 0.002
    (Obs.Metrics.bucket_upper_bound 1);
  with_fresh_telemetry @@ fun () ->
  List.iter (Obs.Metrics.observe "h") [ 0.0005; 0.0015; 0.0016; 100.0 ];
  (match Obs.Metrics.histogram_stats "h" with
  | None -> Alcotest.fail "histogram missing"
  | Some s ->
    Alcotest.(check int) "count" 4 s.Obs.Metrics.count;
    Alcotest.(check (float 1e-9)) "min" 0.0005 s.Obs.Metrics.min;
    Alcotest.(check (float 1e-9)) "max" 100.0 s.Obs.Metrics.max);
  match Obs.Metrics.histogram_buckets "h" with
  | None -> Alcotest.fail "buckets missing"
  | Some buckets ->
    Alcotest.(check int) "three occupied buckets" 3 (List.length buckets);
    Alcotest.(check (list int)) "bucket counts" [ 1; 2; 1 ] (List.map snd buckets)

let test_metrics_json_roundtrip () =
  with_fresh_telemetry @@ fun () ->
  Obs.Metrics.incr ~by:3 "loader.documents";
  Obs.Metrics.incr "loader.documents";
  Obs.Metrics.set_gauge "partitioner.final_cost" 123.5;
  Obs.Metrics.observe "loader.parse_ms" 2.25;
  Obs.Metrics.observe "loader.parse_ms" 4.75;
  let json = Obs.Json.parse (Obs.Metrics.dump_json ()) in
  let path keys =
    List.fold_left (fun v k -> Option.bind v (Obs.Json.member k)) (Some json) keys
  in
  Alcotest.(check (option (float 1e-9))) "counter" (Some 4.0)
    (Option.bind (path [ "counters"; "loader.documents" ]) Obs.Json.to_float);
  Alcotest.(check (option (float 1e-9))) "gauge" (Some 123.5)
    (Option.bind (path [ "gauges"; "partitioner.final_cost" ]) Obs.Json.to_float);
  Alcotest.(check (option (float 1e-9))) "histogram count" (Some 2.0)
    (Option.bind (path [ "histograms"; "loader.parse_ms"; "count" ]) Obs.Json.to_float);
  Alcotest.(check (option (float 1e-9))) "histogram sum" (Some 7.0)
    (Option.bind (path [ "histograms"; "loader.parse_ms"; "sum" ]) Obs.Json.to_float);
  (* disabled registry refuses writes but still dumps *)
  Obs.set_enabled false;
  Obs.Metrics.incr "ignored.counter";
  Alcotest.(check int) "write gated off" 0 (Obs.Metrics.counter_value "ignored.counter")

let test_json_parser_rejects_garbage () =
  List.iter
    (fun s ->
      match Obs.Json.parse s with
      | exception Obs.Json.Parse_error _ -> ()
      | _ -> Alcotest.failf "parser accepted %S" s)
    [ ""; "{"; "[1,]"; "{\"a\" 1}"; "nulll"; "\"unterminated" ]

(* ------------------------------------------------------------------ *)
(* Explain golden test                                                 *)
(* ------------------------------------------------------------------ *)

let xmark_doc =
  "<site><people>\
   <person id=\"person0\"><name>Kasidit Treweek</name><emailaddress>mailto:k@t</emailaddress></person>\
   <person id=\"person1\"><name>Aloys Rommel</name></person>\
   <person id=\"person2\"><name>Obadiah Shore</name></person>\
   </people></site>"

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let find_op (root : Obs.Explain.node) (op : string) : Obs.Explain.node =
  match
    Obs.Explain.fold
      (fun acc n -> if acc = None && n.Obs.Explain.op = op then Some n else acc)
      None root
  with
  | Some n -> n
  | None -> Alcotest.failf "operator %S not in plan:\n%s" op (Obs.Explain.render root)

let test_explain_path_query () =
  let eng = Engine.load ~name:"xmark.xml" xmark_doc in
  let (items, plan) = Engine.query_profiled eng "document(\"xmark.xml\")/site/people/person/name" in
  Alcotest.(check int) "result cardinality" 3 (List.length items);
  Alcotest.(check int) "root rows" 3 plan.Obs.Explain.rows;
  List.iter
    (fun (op, rows) ->
      let n = find_op plan op in
      Alcotest.(check string) "kind" "step" n.Obs.Explain.kind;
      Alcotest.(check int) (op ^ " rows") rows n.Obs.Explain.rows;
      Alcotest.(check bool) (op ^ " timed") true (n.Obs.Explain.wall_us >= 0.0))
    [ ("child::site", 1); ("child::people", 1); ("child::person", 3); ("child::name", 3) ];
  (* the rendered tree shows every operator with wall time and rows *)
  let rendered = Obs.Explain.render plan in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("render mentions " ^ needle) true
        (contains ~needle rendered))
    [ "child::person"; "ms, 3 rows" ]

let test_explain_pushdown_rows () =
  let eng = Engine.load ~name:"xmark.xml" xmark_doc in
  let (items, plan) =
    Engine.query_profiled eng
      "document(\"xmark.xml\")/site/people/person[@id = \"person1\"]/name"
  in
  Alcotest.(check int) "one person matches" 1 (List.length items);
  let pushdown = find_op plan "pushdown [./@id = \"person1\"]" in
  Alcotest.(check string) "pushdown kind" "pushdown" pushdown.Obs.Explain.kind;
  Alcotest.(check int) "pushdown rows" 1 pushdown.Obs.Explain.rows;
  Alcotest.(check bool) "decided on compressed codes" true
    (pushdown.Obs.Explain.cmp_compressed > 0);
  let totals = Obs.Explain.totals plan in
  Alcotest.(check bool) "totals see it" true (totals.Obs.Explain.compressed > 0)

let test_explain_flwor_operators () =
  let eng = Engine.load ~name:"xmark.xml" xmark_doc in
  let (items, plan) =
    Engine.query_profiled eng
      "for $p in document(\"xmark.xml\")/site/people/person where $p/@id = \"person0\" \
       return $p/name/text()"
  in
  Alcotest.(check int) "one result" 1 (List.length items);
  let flwor = find_op plan "flwor" in
  Alcotest.(check string) "flwor kind" "flwor" flwor.Obs.Explain.kind;
  let for_node = find_op plan "for $p" in
  Alcotest.(check string) "for kind" "for" for_node.Obs.Explain.kind;
  Alcotest.(check int) "tuples after binding" 3 for_node.Obs.Explain.rows;
  let where = find_op plan "where [$p/@id = \"person0\"]" in
  Alcotest.(check int) "tuples after where" 1 where.Obs.Explain.rows;
  let ret = find_op plan "return" in
  Alcotest.(check int) "returned items" 1 ret.Obs.Explain.rows

let suites =
  [
    ( "obs-trace",
      [
        Alcotest.test_case "span nesting" `Quick test_span_nesting;
        Alcotest.test_case "disabled records nothing" `Quick test_span_disabled_records_nothing;
        Alcotest.test_case "ring buffer overwrites" `Quick test_ring_buffer_overwrites;
        Alcotest.test_case "chrome trace json" `Quick test_chrome_trace_json;
      ] );
    ( "obs-metrics",
      [
        Alcotest.test_case "histogram bucketing" `Quick test_histogram_bucketing;
        Alcotest.test_case "json round-trip" `Quick test_metrics_json_roundtrip;
        Alcotest.test_case "parser rejects garbage" `Quick test_json_parser_rejects_garbage;
      ] );
    ( "obs-explain",
      [
        Alcotest.test_case "path query golden" `Quick test_explain_path_query;
        Alcotest.test_case "pushdown rows" `Quick test_explain_pushdown_rows;
        Alcotest.test_case "flwor operators" `Quick test_explain_flwor_operators;
      ] );
  ]
