(* Succinct substrate of the v4 structure tree: bitvector rank/select,
   wavelet tag array, balanced-parentheses navigation. Mostly
   differential tests against naive reference implementations, plus the
   edge shapes (empty, single node, deep right spine, wide flat fan-out)
   that stress block and superblock boundaries. *)

open Storage

let rng = Random.State.make [| 0x5ecc; 0x7ee |]

(* ------------------------------------------------------------------ *)
(* Bitvec                                                              *)
(* ------------------------------------------------------------------ *)

let check_bitvec len =
  let bits = Array.init len (fun _ -> Random.State.bool rng) in
  let bv = Bitvec.init len (fun i -> bits.(i)) in
  Alcotest.(check int) (Printf.sprintf "len %d" len) len (Bitvec.length bv);
  let r1 = ref 0 in
  for i = 0 to len do
    Alcotest.(check int) (Printf.sprintf "rank1 %d/%d" i len) !r1 (Bitvec.rank1 bv i);
    Alcotest.(check int) (Printf.sprintf "rank0 %d/%d" i len) (i - !r1) (Bitvec.rank0 bv i);
    if i < len then begin
      Alcotest.(check bool) "get" bits.(i) (Bitvec.get bv i);
      if bits.(i) then incr r1
    end
  done;
  let pos = ref 0 in
  for k = 1 to Bitvec.ones bv do
    while not bits.(!pos) do incr pos done;
    Alcotest.(check int) (Printf.sprintf "select1 %d" k) !pos (Bitvec.select1 bv k);
    incr pos
  done;
  let pos = ref 0 in
  for k = 1 to Bitvec.zeros bv do
    while bits.(!pos) do incr pos done;
    Alcotest.(check int) (Printf.sprintf "select0 %d" k) !pos (Bitvec.select0 bv k);
    incr pos
  done;
  let buf = Buffer.create 16 in
  Bitvec.serialize buf bv;
  let (bv2, consumed) = Bitvec.deserialize (Buffer.contents buf) 0 in
  Alcotest.(check int) "consumed all" (Buffer.length buf) consumed;
  Alcotest.(check int) "roundtrip len" len (Bitvec.length bv2);
  for i = 0 to len - 1 do
    Alcotest.(check bool) "roundtrip bit" bits.(i) (Bitvec.get bv2 i)
  done

let test_bitvec_differential () =
  (* edge lengths straddle byte, block (64) and superblock (512)
     boundaries *)
  List.iter check_bitvec [ 0; 1; 7; 8; 63; 64; 65; 511; 512; 513; 1000; 5000; 20000 ]

(* ------------------------------------------------------------------ *)
(* Wavelet                                                             *)
(* ------------------------------------------------------------------ *)

let check_wavelet n sigma =
  let codes = Array.init n (fun _ -> Random.State.int rng sigma) in
  let width = Bitvec.Wavelet.width_for (sigma - 1) in
  let wt = Bitvec.Wavelet.build ~width codes in
  for i = 0 to n - 1 do
    Alcotest.(check int) (Printf.sprintf "access %d" i) codes.(i) (Bitvec.Wavelet.access wt i)
  done;
  for c = 0 to sigma - 1 do
    let cnt = ref 0 in
    for i = 0 to n do
      Alcotest.(check int)
        (Printf.sprintf "rank c=%d i=%d" c i)
        !cnt
        (Bitvec.Wavelet.rank wt ~code:c i);
      if i < n && codes.(i) = c then incr cnt
    done;
    let k = ref 0 in
    Array.iteri
      (fun i ci ->
        if ci = c then begin
          incr k;
          Alcotest.(check (option int))
            (Printf.sprintf "select c=%d k=%d" c !k)
            (Some i)
            (Bitvec.Wavelet.select wt ~code:c !k)
        end)
      codes;
    Alcotest.(check (option int)) "select past end" None (Bitvec.Wavelet.select wt ~code:c (!k + 1))
  done;
  let buf = Buffer.create 16 in
  Bitvec.Wavelet.serialize buf wt;
  let (wt2, consumed) = Bitvec.Wavelet.deserialize (Buffer.contents buf) 0 in
  Alcotest.(check int) "wavelet consumed all" (Buffer.length buf) consumed;
  for i = 0 to n - 1 do
    Alcotest.(check int) "wavelet roundtrip" codes.(i) (Bitvec.Wavelet.access wt2 i)
  done

let test_wavelet_differential () =
  List.iter
    (fun (n, sigma) -> check_wavelet n sigma)
    [ (0, 4); (1, 1); (1, 3); (100, 2); (500, 90); (3000, 7); (2000, 128) ]

(* ------------------------------------------------------------------ *)
(* Bp_tree                                                             *)
(* ------------------------------------------------------------------ *)

(* Differential check of every navigation op against a naive pointer
   tree described by a pre-order parent array. *)
let check_bp (parents : int array) =
  let n = Array.length parents in
  let children = Array.make (max n 1) [] in
  for i = n - 1 downto 1 do
    children.(parents.(i)) <- i :: children.(parents.(i))
  done;
  let bits = Array.make (2 * n) false in
  let pos = ref 0 in
  let rec emit i =
    bits.(!pos) <- true;
    incr pos;
    List.iter emit children.(i);
    incr pos
  in
  if n > 0 then emit 0;
  let bp = Bp_tree.of_bits (Bitvec.init (2 * n) (fun i -> bits.(i))) in
  Alcotest.(check int) "node count" n (Bp_tree.node_count bp);
  let depth = Array.make (max n 1) 0 in
  for i = 1 to n - 1 do
    depth.(i) <- depth.(parents.(i)) + 1
  done;
  let last = Array.init (max n 1) (fun i -> i) in
  for i = n - 1 downto 1 do
    let p = parents.(i) in
    if last.(i) > last.(p) then last.(p) <- last.(i)
  done;
  let post = Array.make (max n 1) 0 in
  let cnt = ref 0 in
  let rec po i =
    List.iter po children.(i);
    post.(i) <- !cnt;
    incr cnt
  in
  if n > 0 then po 0;
  for i = 0 to n - 1 do
    Alcotest.(check int) "parent" (if i = 0 then -1 else parents.(i)) (Bp_tree.parent bp i);
    Alcotest.(check int) "depth" depth.(i) (Bp_tree.depth bp i);
    Alcotest.(check (list int)) "children" children.(i) (Bp_tree.children bp i);
    Alcotest.(check int) "degree" (List.length children.(i)) (Bp_tree.degree bp i);
    Alcotest.(check (option int)) "first_child"
      (match children.(i) with [] -> None | c :: _ -> Some c)
      (Bp_tree.first_child bp i);
    Alcotest.(check int) "last_descendant" last.(i) (Bp_tree.last_descendant bp i);
    Alcotest.(check int) "subtree_size" (last.(i) - i + 1) (Bp_tree.subtree_size bp i);
    Alcotest.(check int) "post_rank" post.(i) (Bp_tree.post_rank bp i);
    let ns =
      if i = 0 then None
      else
        let rec after = function
          | x :: y :: _ when x = i -> Some y
          | _ :: tl -> after tl
          | [] -> None
        in
        after children.(parents.(i))
    in
    Alcotest.(check (option int)) "next_sibling" ns (Bp_tree.next_sibling bp i);
    (* findopen inverts findclose, and positions map back to ids *)
    let p = Bp_tree.pos_of_node bp i in
    let c = Bp_tree.findclose bp p in
    Alcotest.(check int) "findopen . findclose = id" p (Bp_tree.findopen bp c);
    Alcotest.(check int) "node_of_open" i (Bp_tree.node_of_open bp p)
  done;
  for _ = 1 to min 2000 (n * n) do
    let a = Random.State.int rng (max n 1) and d = Random.State.int rng (max n 1) in
    Alcotest.(check bool) "is_ancestor"
      (a < d && last.(a) >= d)
      (Bp_tree.is_ancestor bp ~ancestor:a ~descendant:d)
  done

(* Random pre-order parent arrays: each node's parent is drawn from the
   rightmost path so ids stay pre-order ranks. *)
let random_preorder_parents n =
  let parents = Array.make n (-1) in
  let stack = ref [ 0 ] in
  for i = 1 to n - 1 do
    let len = List.length !stack in
    let pops = if Random.State.bool rng then 0 else Random.State.int rng len in
    for _ = 1 to pops do
      stack := List.tl !stack
    done;
    parents.(i) <- List.hd !stack;
    stack := i :: !stack
  done;
  parents

let test_bp_edge_shapes () =
  check_bp [||];
  (* empty tree *)
  check_bp [| -1 |];
  (* single node *)
  check_bp [| -1; 0 |];
  check_bp [| -1; 0; 0 |];
  check_bp [| -1; 0; 1 |]

let test_bp_deep_spine () =
  (* right spine >= 10^4 nodes: excess grows monotonically across many
     256-bit blocks, the worst case for bwd_search (parent/enclose) *)
  check_bp (Array.init 12000 (fun i -> i - 1))

let test_bp_wide_flat () =
  (* one root with thousands of leaf children: findclose of the root
     spans the whole sequence, siblings chain across blocks *)
  check_bp (Array.init 5000 (fun i -> if i = 0 then -1 else 0))

let test_bp_random_trees () =
  List.iter (fun n -> check_bp (random_preorder_parents n)) [ 50; 200; 1000; 4000; 20000 ]

let test_bp_rejects_malformed () =
  let of_bools l =
    let a = Array.of_list l in
    Bitvec.init (Array.length a) (fun i -> a.(i))
  in
  List.iter
    (fun bits ->
      Alcotest.check_raises "malformed BP" (Failure "Bp_tree.of_bits: close before open")
        (fun () -> ignore (Bp_tree.of_bits (of_bools bits))))
    [ [ false; true ]; [ true; false; false; true ] ];
  Alcotest.check_raises "odd length" (Failure "Bp_tree.of_bits: odd length") (fun () ->
      ignore (Bp_tree.of_bits (of_bools [ true ])));
  Alcotest.check_raises "unbalanced" (Failure "Bp_tree.of_bits: unbalanced") (fun () ->
      ignore (Bp_tree.of_bits (of_bools [ true; true ])))

(* ------------------------------------------------------------------ *)
(* Succinct structure tree vs the explicit builder arrays              *)
(* ------------------------------------------------------------------ *)

let test_tree_differential_vs_pointer_semantics () =
  (* build a structure tree from an XMark document and check the
     succinct navigation against references computed from child_entries
     alone (the explicit pointer semantics of the v3 tree) *)
  let xml = Xmark.Xmlgen.generate ~scale:0.05 () in
  let repo = Xquec_core.Loader.load ~name:"a" xml in
  let tree = repo.Repository.tree in
  let n = Structure_tree.node_count tree in
  Alcotest.(check bool) "non-trivial" true (n > 1000);
  (* reference arrays from the raw child entries *)
  let kids = Array.init n (fun id -> Structure_tree.child_nodes tree id) in
  let parents = Array.make n (-1) in
  Array.iteri (fun id cs -> List.iter (fun c -> parents.(c) <- id) cs) kids;
  let last = Array.init n (fun i -> i) in
  for i = n - 1 downto 1 do
    if last.(i) > last.(parents.(i)) then last.(parents.(i)) <- last.(i)
  done;
  let level = Array.make n 0 in
  for i = 1 to n - 1 do
    level.(i) <- level.(parents.(i)) + 1
  done;
  for id = 0 to n - 1 do
    Alcotest.(check int) "parent" parents.(id) (Structure_tree.parent tree id);
    Alcotest.(check int) "level" level.(id) (Structure_tree.level tree id);
    Alcotest.(check int) "last_descendant" last.(id) (Structure_tree.last_descendant tree id);
    Alcotest.(check int) "subtree_size" (last.(id) - id + 1) (Structure_tree.subtree_size tree id);
    Alcotest.(check (option int)) "first_child"
      (match kids.(id) with [] -> None | c :: _ -> Some c)
      (Structure_tree.first_child tree id)
  done;
  (* descendants_with_tag agrees with the filter-based definition for
     every tag that occurs *)
  let dict = repo.Repository.dict in
  List.iter
    (fun name ->
      match Storage.Name_dict.code dict name with
      | None -> ()
      | Some code ->
        let naive =
          Structure_tree.descendants tree 0
          |> List.filter (fun d -> Structure_tree.tag tree d = code)
        in
        Alcotest.(check (list int))
          ("descendants_with_tag " ^ name)
          naive
          (Structure_tree.descendants_with_tag tree 0 code))
    [ "site"; "people"; "person"; "name"; "@id"; "item"; "description" ]

let suites =
  [
    ( "succinct",
      [
        Alcotest.test_case "bitvec rank/select differential" `Quick test_bitvec_differential;
        Alcotest.test_case "wavelet differential" `Quick test_wavelet_differential;
        Alcotest.test_case "bp edge shapes" `Quick test_bp_edge_shapes;
        Alcotest.test_case "bp deep right spine" `Quick test_bp_deep_spine;
        Alcotest.test_case "bp wide flat tree" `Quick test_bp_wide_flat;
        Alcotest.test_case "bp random trees" `Quick test_bp_random_trees;
        Alcotest.test_case "bp rejects malformed input" `Quick test_bp_rejects_malformed;
        Alcotest.test_case "tree navigation differential" `Quick
          test_tree_differential_vs_pointer_semantics;
      ] );
  ]
