(* Adaptive block sizing, online compaction and sequential prefetch:
   block-size picking and clamping, in-place reblocking invariants, the
   adaptive-sizing serialization extension (flags bit 3), per-container
   buffer-pool invalidation accounting, sequential read-ahead through
   the pool, the compactor's copy-on-write container swap (including
   under genuinely concurrent serve clients), profile-report
   consumption, and the drift-triggered auto-compaction loop. *)

open Xquec_core
module Obs = Xquec_obs

let with_fresh_telemetry f =
  Obs.reset ();
  Obs.Watch.set_enabled false;
  Obs.Watch.set_baseline None;
  Obs.Watch.reset ();
  Obs.Alert.set_rules [];
  Storage.Compactor.reset_stats ();
  let finally () =
    Serve.set_auto_compact None;
    Obs.Watch.set_enabled false;
    Obs.Watch.set_baseline None;
    Obs.Watch.reset ();
    Obs.Alert.set_rules [];
    Obs.reset ()
  in
  Fun.protect ~finally (fun () -> Obs.with_enabled f)

(* Compaction mutates the repository, so every test loads its own
   engine from the shared generated document. *)
let xmark_xml = lazy (Xmark.Xmlgen.generate ~scale:0.05 ())
let fresh_engine () = Engine.load ~name:"auction.xml" (Lazy.force xmark_xml)

(* A bigger document for the tests that need low eq selectivity
   (1 match among > 20 candidates) to trip the shrink rule. *)
let xmark_xml_big = lazy (Xmark.Xmlgen.generate ~scale:0.1 ())

let ids_path = "/site/people/person/@id"
let names_path = "/site/people/person/name/#text"

let container_of repo path =
  match Storage.Repository.find_container_by_path repo path with
  | Some c -> c
  | None -> Alcotest.failf "no container with path %s" path

let contains s sub =
  let ls = String.length s and lb = String.length sub in
  let rec go k = k + lb <= ls && (String.sub s k lb = sub || go (k + 1)) in
  go 0

(* Run one query and return its serialized result (the bytes a serve
   client would receive, minus the trailing newline). *)
let answer engine q = fst (Engine.query_serialized_logged engine q)

(* ------------------------------------------------------------------ *)
(* Block-size picking                                                  *)
(* ------------------------------------------------------------------ *)

let test_pick_and_clamp () =
  Alcotest.(check int) "clamp floor" 1024 (Storage.Container.clamp_block_size 10);
  Alcotest.(check int) "clamp ceiling" 262144
    (Storage.Container.clamp_block_size 10_000_000);
  Alcotest.(check int) "clamp identity" 8192 (Storage.Container.clamp_block_size 8192);
  let pick access =
    Storage.Container.pick_block_size ~plain_bytes:100_000 ~n_records:1000 ~access
  in
  let seq = pick Storage.Container.Seq_heavy in
  let mixed = pick Storage.Container.Mixed in
  let random = pick Storage.Container.Random_selective in
  Alcotest.(check bool) "scans get larger blocks" true (seq > mixed);
  Alcotest.(check bool) "point lookups get smaller blocks" true (random < mixed);
  Alcotest.(check int) "mixed keeps the default" (Storage.Container.default_block_size ())
    mixed;
  (* very wide records: the 8-records-per-block floor beats the pattern *)
  let wide =
    Storage.Container.pick_block_size ~plain_bytes:1_000_000 ~n_records:10
      ~access:Storage.Container.Random_selective
  in
  Alcotest.(check int) "wide records hit the clamp ceiling" 262144 wide

(* ------------------------------------------------------------------ *)
(* In-place reblocking                                                 *)
(* ------------------------------------------------------------------ *)

let test_reblock_preserves_records () =
  with_fresh_telemetry @@ fun () ->
  let engine = fresh_engine () in
  let repo = Engine.repo engine in
  let c = container_of repo names_path in
  let dump_before = Storage.Container.dump c in
  let blocks_before = Storage.Container.block_count c in
  let gen_before = c.Storage.Container.generation in
  let probe = Storage.Container.compress_constant c (fst (List.hd dump_before)) in
  let hits_before = List.length (Storage.Container.lookup_eq c probe) in
  Storage.Container.reblock c ~block_size:64;
  Alcotest.(check bool) "smaller blocks mean more blocks" true
    (Storage.Container.block_count c > blocks_before);
  Alcotest.(check int) "block_size recorded" 64 c.Storage.Container.block_size;
  Alcotest.(check int) "generation bumped" (gen_before + 1) c.Storage.Container.generation;
  Alcotest.(check int) "reblock keeps the epoch" 0 c.Storage.Container.compaction_epoch;
  Alcotest.(check (list (pair string int))) "record sequence preserved" dump_before
    (Storage.Container.dump c);
  Alcotest.(check int) "lookup_eq unchanged" hits_before
    (List.length (Storage.Container.lookup_eq c probe));
  (* growing back coalesces again *)
  Storage.Container.reblock c ~block_size:1_000_000;
  Alcotest.(check int) "one big block" 1 (Storage.Container.block_count c);
  Alcotest.(check (list (pair string int))) "still the same records" dump_before
    (Storage.Container.dump c)

(* ------------------------------------------------------------------ *)
(* Serialization: the adaptive-sizing extension (flags bit 3)          *)
(* ------------------------------------------------------------------ *)

let test_block_size_epoch_roundtrip () =
  with_fresh_telemetry @@ fun () ->
  let engine = fresh_engine () in
  let repo = Engine.repo engine in
  let q = "document(\"auction.xml\")/site/people/person[@id = \"person1\"]/name" in
  let before = answer engine q in
  (* an untouched repository re-saves without the extension: twice
     through serialize/deserialize is byte-stable *)
  let image0 = Storage.Repository.serialize repo in
  Alcotest.(check string) "default sizes re-save byte-identically"
    (Digest.to_hex (Digest.string image0))
    (Digest.to_hex
       (Digest.string (Storage.Repository.serialize (Storage.Repository.deserialize image0))));
  (* compact one container: block size and epoch must survive the disk *)
  let id = (container_of repo ids_path).Storage.Container.id in
  let r = Storage.Compactor.compact_container repo ~id ~block_size:2048 in
  Alcotest.(check int) "result epoch" 1 r.Storage.Compactor.c_epoch;
  let image1 = Storage.Repository.serialize repo in
  let repo' = Storage.Repository.deserialize image1 in
  let c' = container_of repo' ids_path in
  Alcotest.(check int) "block_size survives save/load" 2048
    c'.Storage.Container.block_size;
  Alcotest.(check int) "compaction_epoch survives save/load" 1
    c'.Storage.Container.compaction_epoch;
  let c_other = container_of repo' names_path in
  Alcotest.(check int) "untouched container keeps the default"
    (Storage.Container.default_block_size ())
    c_other.Storage.Container.block_size;
  Alcotest.(check string) "adaptive image re-saves byte-identically"
    (Digest.to_hex (Digest.string image1))
    (Digest.to_hex (Digest.string (Storage.Repository.serialize repo')));
  let engine' = Engine.restore image1 in
  Alcotest.(check string) "query identical across save/load" before (answer engine' q)

(* ------------------------------------------------------------------ *)
(* Buffer-pool invalidation accounting                                 *)
(* ------------------------------------------------------------------ *)

let test_invalidate_container_accounting () =
  with_fresh_telemetry @@ fun () ->
  let engine = fresh_engine () in
  let repo = Engine.repo engine in
  let c1 = container_of repo ids_path in
  let c2 = container_of repo names_path in
  ignore (Storage.Container.scan c1);
  ignore (Storage.Container.scan c2);
  Alcotest.(check bool) "c2 resident before" true
    (Storage.Buffer_pool.resident ~uid:c2.Storage.Container.uid
       ~gen:c2.Storage.Container.generation ~blk:0);
  Storage.Buffer_pool.reset_stats ();
  let n = Storage.Buffer_pool.invalidate_container ~uid:c1.Storage.Container.uid in
  Alcotest.(check int) "every resident block released"
    (Storage.Container.block_count c1) n;
  let s = Storage.Buffer_pool.snapshot () in
  Alcotest.(check int) "booked as invalidations" n s.Storage.Buffer_pool.s_invalidations;
  Alcotest.(check int) "not booked as capacity evictions" 0
    s.Storage.Buffer_pool.s_evictions;
  Alcotest.(check bool) "c1 no longer resident" false
    (Storage.Buffer_pool.resident ~uid:c1.Storage.Container.uid
       ~gen:c1.Storage.Container.generation ~blk:0);
  Alcotest.(check bool) "other container untouched" true
    (Storage.Buffer_pool.resident ~uid:c2.Storage.Container.uid
       ~gen:c2.Storage.Container.generation ~blk:0);
  Alcotest.(check int) "second invalidation finds nothing" 0
    (Storage.Buffer_pool.invalidate_container ~uid:c1.Storage.Container.uid)

(* ------------------------------------------------------------------ *)
(* Sequential prefetch                                                 *)
(* ------------------------------------------------------------------ *)

let test_sequential_prefetch () =
  with_fresh_telemetry @@ fun () ->
  (* force the inline decode path so the read-ahead pattern (and so the
     hit/miss ledger) is deterministic *)
  let saved_pool = Storage.Domain_pool.size () in
  Storage.Domain_pool.set_size 0;
  let finally () =
    Storage.Container.set_prefetch_depth 0;
    Storage.Domain_pool.set_size saved_pool
  in
  Fun.protect ~finally @@ fun () ->
  let engine = fresh_engine () in
  let repo = Engine.repo engine in
  let c = container_of repo names_path in
  (* one record per block: the longest possible sequential run *)
  Storage.Container.reblock c ~block_size:1;
  let nblocks = Storage.Container.block_count c in
  Alcotest.(check bool) "enough blocks to scan through" true (nblocks > 4);
  let walk () =
    Array.init (Storage.Container.length c) (fun i ->
        (Storage.Container.get c i).Storage.Container.code)
  in
  (* control: depth 0 decodes every block on demand *)
  Storage.Container.set_prefetch_depth 0;
  Storage.Buffer_pool.clear ();
  Storage.Buffer_pool.reset_stats ();
  let codes_off = walk () in
  let off = Storage.Buffer_pool.snapshot () in
  Alcotest.(check int) "no read-ahead: one miss per block" nblocks
    off.Storage.Buffer_pool.s_misses;
  Alcotest.(check int) "no read-ahead: no prefetch fills" 0
    off.Storage.Buffer_pool.s_prefetch_fills;
  (* read-ahead: the run is detected at the second block, everything
     after arrives through the prefetch window *)
  Storage.Container.set_prefetch_depth 3;
  Storage.Buffer_pool.clear ();
  Storage.Buffer_pool.reset_stats ();
  let codes_on = walk () in
  let on = Storage.Buffer_pool.snapshot () in
  Alcotest.(check int) "read-ahead: only the first two blocks miss" 2
    on.Storage.Buffer_pool.s_misses;
  Alcotest.(check int) "read-ahead: the rest were prefetched" (nblocks - 2)
    on.Storage.Buffer_pool.s_prefetch_fills;
  Alcotest.(check int) "every prefetched block was then used" (nblocks - 2)
    on.Storage.Buffer_pool.s_prefetch_hits;
  Alcotest.(check bool) "demand misses strictly reduced" true
    (on.Storage.Buffer_pool.s_misses < off.Storage.Buffer_pool.s_misses);
  Alcotest.(check (array string)) "identical records either way" codes_off codes_on

(* ------------------------------------------------------------------ *)
(* Compactor: plan + copy-on-write swap                                *)
(* ------------------------------------------------------------------ *)

let test_compactor_swap_and_plan () =
  with_fresh_telemetry @@ fun () ->
  let saved_pool = Storage.Domain_pool.size () in
  Storage.Domain_pool.set_size 0;
  Fun.protect ~finally:(fun () -> Storage.Domain_pool.set_size saved_pool)
  @@ fun () ->
  let engine = fresh_engine () in
  let repo = Engine.repo engine in
  let q = "document(\"auction.xml\")/site/people/person[@id = \"person1\"]/name" in
  let before = answer engine q in
  let old_c = container_of repo ids_path in
  let old_uid = old_c.Storage.Container.uid in
  Storage.Compactor.reset_stats ();
  let r =
    Storage.Compactor.compact_container repo ~id:old_c.Storage.Container.id
      ~block_size:2048
  in
  let fresh = Storage.Repository.container repo old_c.Storage.Container.id in
  Alcotest.(check bool) "swap installed a fresh pool identity" true
    (fresh.Storage.Container.uid <> old_uid);
  Alcotest.(check int) "fresh container epoch" 1
    fresh.Storage.Container.compaction_epoch;
  Alcotest.(check int) "fresh container block size" 2048
    fresh.Storage.Container.block_size;
  Alcotest.(check int) "result records the path change" 2048
    r.Storage.Compactor.c_block_size_after;
  Alcotest.(check string) "result names the container" ids_path
    r.Storage.Compactor.c_path;
  Alcotest.(check string) "query byte-identical after the swap" before (answer engine q);
  Alcotest.(check (list (pair string int))) "old and fresh hold the same records"
    (Storage.Container.dump old_c)
    (Storage.Container.dump fresh);
  let s = Storage.Compactor.snapshot () in
  Alcotest.(check int) "one compaction counted" 1 s.Storage.Compactor.k_compactions;
  (match Storage.Compactor.recent () with
  | newest :: _ ->
    Alcotest.(check string) "recent ring sees it" ids_path newest.Storage.Compactor.c_path
  | [] -> Alcotest.fail "recent ring empty");
  (* plan: keep-factors, unknown paths and no-ops are dropped; real
     factors scale the current size under the clamp *)
  let targets =
    Storage.Compactor.plan repo
      [ (ids_path, 0.25); ("/no/such/container", 0.25); (names_path, 1.0) ]
  in
  Alcotest.(check (list (pair int int))) "plan keeps only the actionable target"
    [ (old_c.Storage.Container.id, 1024) ]
    targets;
  Alcotest.(check bool) "empty request refuses" false
    (Storage.Compactor.request repo ~targets:[]);
  (* sequential pool: the request runs inline and completes before
     returning *)
  Alcotest.(check bool) "request starts" true (Storage.Compactor.request repo ~targets);
  Alcotest.(check bool) "inline request already finished" false (Storage.Compactor.busy ());
  Alcotest.(check int) "requested compaction applied" 1024
    (Storage.Repository.container repo old_c.Storage.Container.id)
      .Storage.Container.block_size;
  Alcotest.(check string) "query still byte-identical" before (answer engine q);
  let status = Obs.Json.to_string (Storage.Compactor.status_json ()) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("status has " ^ needle) true (contains status needle))
    [ "\"busy\":false"; "\"compactions\":2"; "\"recent\":["; ids_path ]

(* ------------------------------------------------------------------ *)
(* Mid-run reconfigure under concurrent serve clients                  *)
(* ------------------------------------------------------------------ *)

let test_midrun_swap_under_concurrent_clients () =
  with_fresh_telemetry @@ fun () ->
  let engine = fresh_engine () in
  let repo = Engine.repo engine in
  Plan_cache.set_capacity 32;
  Plan_cache.clear ();
  Fun.protect ~finally:(fun () -> Plan_cache.set_capacity 0)
  @@ fun () ->
  let query_of client =
    Printf.sprintf
      "document(\"auction.xml\")/site/people/person[@id = \"person%d\"]/name" (client mod 3)
  in
  (* expected bytes per client, computed before any swap *)
  let expected =
    Array.init 3 (fun k ->
        let r = Serve.run_query engine (query_of k) in
        Alcotest.(check int) "warmup status" 200 r.Obs.Expo.status;
        r.Obs.Expo.body)
  in
  let server =
    Obs.Expo.start ~port:0 ~workers:3 ~max_inflight:64 ~extra:(Serve.handler engine)
      ~collect:Serve.publish_pool_metrics ()
  in
  let port = Obs.Expo.port server in
  Fun.protect ~finally:(fun () -> Obs.Expo.stop server)
  @@ fun () ->
  let id = (container_of repo ids_path).Storage.Container.id in
  (* a dedicated domain swapping the container back and forth while the
     clients hammer it *)
  let swapper =
    Domain.spawn (fun () ->
        for i = 1 to 6 do
          let block_size = if i mod 2 = 1 then 2048 else 16384 in
          ignore (Storage.Compactor.compact_container repo ~id ~block_size);
          Unix.sleepf 0.002
        done)
  in
  let outcomes =
    Obs.Hammer.drive ~port ~clients:9 ~requests_per_client:6
      ~target:(fun client _seq -> ("POST", "/query", query_of client))
      ()
  in
  Domain.join swapper;
  Alcotest.(check int) "every request answered" (9 * 6) (List.length outcomes);
  List.iter
    (fun (o : Obs.Hammer.outcome) ->
      Alcotest.(check int)
        (Printf.sprintf "client %d seq %d status" o.Obs.Hammer.o_client o.Obs.Hammer.o_seq)
        200 o.Obs.Hammer.o_reply.Obs.Hammer.r_status;
      Alcotest.(check string)
        (Printf.sprintf "client %d seq %d bytes identical across swaps"
           o.Obs.Hammer.o_client o.Obs.Hammer.o_seq)
        expected.(o.Obs.Hammer.o_client mod 3)
        o.Obs.Hammer.o_reply.Obs.Hammer.r_body)
    outcomes;
  Alcotest.(check int) "six swaps happened" 6
    (Storage.Compactor.snapshot ()).Storage.Compactor.k_compactions;
  Alcotest.(check int) "epoch counted every swap" 6
    (Storage.Repository.container repo id).Storage.Container.compaction_epoch;
  (* the serve surface reports the compactor *)
  let r = Obs.Hammer.request ~port "/compact" in
  Alcotest.(check int) "/compact status" 200 r.Obs.Hammer.r_status;
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("/compact has " ^ needle) true
        (contains r.Obs.Hammer.r_body needle))
    [ "\"busy\":false"; "\"compactions\":6"; ids_path ]

(* ------------------------------------------------------------------ *)
(* Profile-report consumption                                          *)
(* ------------------------------------------------------------------ *)

let test_recommendations_of_report () =
  let report =
    Obs.Json.parse
      {|{"records": 4, "recommendations": [
          {"container": "/a/@id", "action": "shrink", "factor": 0.25, "reason": "x"},
          {"container": "/a/b", "action": "keep", "factor": 1.0, "reason": "y"},
          {"container": "/a/c", "action": "grow", "factor": 4.0, "reason": "z"},
          {"container": "/a/d", "action": "shrink", "factor": -1.0, "reason": "bad"},
          {"action": "grow", "factor": 4.0}]}|}
  in
  Alcotest.(check (list (pair string (float 0.0))))
    "keep, bad factors and malformed entries dropped"
    [ ("/a/@id", 0.25); ("/a/c", 4.0) ]
    (Obs.Profile.recommendations_of_report report);
  Alcotest.(check (list (pair string (float 0.0)))) "no recommendations key" []
    (Obs.Profile.recommendations_of_report (Obs.Json.parse "{}"))

(* ------------------------------------------------------------------ *)
(* Drift-sustained auto-compaction                                     *)
(* ------------------------------------------------------------------ *)

let test_auto_compact_on_sustained_drift () =
  with_fresh_telemetry @@ fun () ->
  let saved_pool = Storage.Domain_pool.size () in
  Storage.Domain_pool.set_size 0;
  Fun.protect ~finally:(fun () -> Storage.Domain_pool.set_size saved_pool)
  @@ fun () ->
  (* the bigger document keeps eq selectivity on @id under the 5 %
     shrink threshold (1 match among ~35 candidates) *)
  let engine = Engine.load ~name:"auction.xml" (Lazy.force xmark_xml_big) in
  let repo = Engine.repo engine in
  let q = "document(\"auction.xml\")/site/people/person[@id = \"person1\"]/name" in
  let before = answer engine q in
  Obs.Watch.set_enabled true;
  Obs.Watch.configure ~window_seconds:3600.0 ~windows:6 ();
  Obs.Alert.set_rules (Serve.default_rules ~drift_threshold:0.3 ());
  Serve.set_auto_compact (Some repo);
  Serve.watch_tick_reset ();
  (* declared mix: scans elsewhere; observed mix: pure selective point
     lookups on @id — maximal drift, low selectivity *)
  Obs.Watch.set_baseline
    (Some
       (Workload.fingerprint repo
          (Workload.of_query_strings repo
             [ "for $i in document(\"auction.xml\")/site/regions/europe/item return $i/name" ])));
  for k = 0 to 4 do
    ignore
      (answer engine
         (Printf.sprintf
            "document(\"auction.xml\")/site/people/person[@id = \"person%d\"]/name" k))
  done;
  let now = Unix.gettimeofday () in
  let fired = ref false in
  for i = 1 to 3 do
    let _, trs = Serve.watch_tick ~now:(now +. float_of_int i) () in
    if
      List.exists
        (fun (t : Obs.Alert.transition) ->
          t.Obs.Alert.t_rule = "drift_sustained" && t.Obs.Alert.t_event = "fired")
        trs
    then fired := true
  done;
  Alcotest.(check bool) "drift_sustained fired" true !fired;
  (* the hook planned a shrink for the point-lookup container and ran
     it inline (sequential pool) *)
  let c = container_of repo ids_path in
  Alcotest.(check int) "auto-compaction shrank the hot container"
    (Storage.Container.clamp_block_size (Storage.Container.default_block_size () / 4))
    c.Storage.Container.block_size;
  Alcotest.(check int) "exactly one compaction epoch" 1
    c.Storage.Container.compaction_epoch;
  Alcotest.(check bool) "trigger counter bumped" true
    (Obs.Metrics.counter_value "serve.compactions_triggered" >= 1);
  Alcotest.(check string) "query byte-identical after the auto swap" before
    (answer engine q)

let suites =
  [
    ( "compact",
      [
        Alcotest.test_case "block-size pick + clamp." `Quick test_pick_and_clamp;
        Alcotest.test_case "reblock preserves records." `Quick
          test_reblock_preserves_records;
        Alcotest.test_case "block size + epoch round-trip." `Quick
          test_block_size_epoch_roundtrip;
        Alcotest.test_case "invalidate_container accounting." `Quick
          test_invalidate_container_accounting;
        Alcotest.test_case "sequential prefetch." `Quick test_sequential_prefetch;
        Alcotest.test_case "compactor swap + plan." `Quick test_compactor_swap_and_plan;
        Alcotest.test_case "mid-run swap under concurrent clients." `Quick
          test_midrun_swap_under_concurrent_clients;
        Alcotest.test_case "profile report consumption." `Quick
          test_recommendations_of_report;
        Alcotest.test_case "auto-compact on sustained drift." `Quick
          test_auto_compact_on_sustained_drift;
      ] );
  ]
