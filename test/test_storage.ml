(* Tests for the storage layer: B+tree, name dictionary, containers,
   structure tree, summary and full-repository serialization. *)

open Storage

(* ------------------------------------------------------------------ *)
(* B+ tree                                                             *)
(* ------------------------------------------------------------------ *)

let test_btree_basic () =
  let t = Btree.create ~order:4 () in
  List.iter (fun k -> Btree.insert t k (k * 10)) [ 5; 1; 9; 3; 7; 2; 8; 4; 6; 0 ];
  Btree.check_invariants t;
  Alcotest.(check int) "length" 10 (Btree.length t);
  Alcotest.(check (option int)) "find 7" (Some 70) (Btree.find t 7);
  Alcotest.(check (option int)) "find missing" None (Btree.find t 11);
  Btree.insert t 7 (-1);
  Alcotest.(check (option int)) "replace" (Some (-1)) (Btree.find t 7);
  Alcotest.(check int) "length after replace" 10 (Btree.length t)

let test_btree_bulk () =
  let n = 1000 in
  let t = Btree.of_sorted_array ~order:8 (Array.init n (fun i -> (i * 2, i))) in
  Btree.check_invariants t;
  Alcotest.(check int) "length" n (Btree.length t);
  Alcotest.(check (option int)) "find" (Some 250) (Btree.find t 500);
  Alcotest.(check (option int)) "odd key missing" None (Btree.find t 501);
  Alcotest.(check bool) "depth > 1" true (Btree.depth t > 1)

let test_btree_find_le () =
  let t = Btree.of_sorted_array (Array.init 100 (fun i -> (i * 10, i))) in
  Alcotest.(check (option (pair int int))) "exact" (Some (50, 5)) (Btree.find_le t 50);
  Alcotest.(check (option (pair int int))) "below" (Some (50, 5)) (Btree.find_le t 57);
  Alcotest.(check (option (pair int int))) "first" (Some (0, 0)) (Btree.find_le t 3);
  Alcotest.(check (option (pair int int))) "none" None (Btree.find_le t (-1));
  Alcotest.(check (option (pair int int))) "last" (Some (990, 99)) (Btree.find_le t 10000)

let test_btree_range () =
  let t = Btree.of_sorted_array (Array.init 50 (fun i -> (i, i))) in
  let collected = Btree.fold_range t ~lo:10 ~hi:19 ~init:[] ~f:(fun acc k _ -> k :: acc) in
  Alcotest.(check (list int)) "range" (List.init 10 (fun i -> 10 + i)) (List.rev collected)

let prop_btree_model =
  QCheck2.Test.make ~name:"btree agrees with assoc-list model" ~count:100
    QCheck2.Gen.(small_list (pair (int_bound 100) (int_bound 1000)))
    (fun bindings ->
      let t = Btree.create ~order:4 () in
      List.iter (fun (k, v) -> Btree.insert t k v) bindings;
      Btree.check_invariants t;
      (* last write wins in the model *)
      let model =
        List.fold_left (fun acc (k, v) -> (k, v) :: List.remove_assoc k acc) [] bindings
      in
      List.for_all (fun (k, v) -> Btree.find t k = Some v) model
      && Btree.length t = List.length model)

(* ------------------------------------------------------------------ *)
(* Name dictionary                                                     *)
(* ------------------------------------------------------------------ *)

let test_name_dict () =
  let d = Name_dict.create () in
  let a = Name_dict.intern d "site" in
  let b = Name_dict.intern d "person" in
  let a' = Name_dict.intern d "site" in
  Alcotest.(check int) "stable" a a';
  Alcotest.(check bool) "distinct" true (a <> b);
  Alcotest.(check string) "name" "person" (Name_dict.name d b);
  Alcotest.(check (option int)) "code" (Some b) (Name_dict.code d "person");
  Alcotest.(check (option int)) "missing" None (Name_dict.code d "nope")

let test_name_dict_bits () =
  let d = Name_dict.create () in
  for i = 0 to 91 do
    ignore (Name_dict.intern d (Printf.sprintf "tag%d" i))
  done;
  (* the paper's example: 92 names fit on 7 bits *)
  Alcotest.(check int) "92 names on 7 bits" 7 (Name_dict.bits_per_code d)

(* ------------------------------------------------------------------ *)
(* Containers                                                          *)
(* ------------------------------------------------------------------ *)

let sample_container algorithm =
  Container.build ~id:0 ~path:"/a/b/#text" ~kind:Container.Text ~algorithm
    [ ("delta", 1); ("alpha", 2); ("charlie", 3); ("bravo", 4); ("alpha", 5) ]

let test_container_sorted () =
  let c = sample_container Compress.Codec.Alm_alg in
  let codes = Array.to_list (Container.scan c) |> List.map (fun r -> r.Container.code) in
  Alcotest.(check bool) "sorted by code" true
    (List.sort String.compare codes = codes);
  (* order-preserving codec: code order = plaintext order *)
  let values = Array.to_list (Container.scan c) |> List.map (Container.decompress_record c) in
  Alcotest.(check (list string)) "plaintext order" [ "alpha"; "alpha"; "bravo"; "charlie"; "delta" ]
    values

let test_container_lookup_eq () =
  let c = sample_container Compress.Codec.Alm_alg in
  let hits = Container.lookup_eq c (Container.compress_constant c "alpha") in
  Alcotest.(check int) "two alphas" 2 (List.length hits);
  Alcotest.(check (list int)) "parents" [ 2; 5 ]
    (List.map (fun r -> r.Container.parent) hits |> List.sort compare);
  Alcotest.(check int) "no miss" 0
    (List.length (Container.lookup_eq c (Container.compress_constant c "zulu")))

let test_container_lookup_range () =
  let c = sample_container Compress.Codec.Alm_alg in
  let lo = Container.compress_constant c "b" in
  let hi = Container.compress_constant c "d" in
  let hits = Container.lookup_range c ~lo ~hi () in
  let values = List.map (Container.decompress_record c) hits in
  Alcotest.(check (list string)) "range [b,d)" [ "bravo"; "charlie" ] values

let test_container_recompress () =
  let c = sample_container Compress.Codec.Alm_alg in
  let before = Container.dump c in
  let model = Compress.Codec.train Compress.Codec.Huffman_alg (List.map fst before) in
  let remap = Container.recompress c ~algorithm:Compress.Codec.Huffman_alg ~model ~model_id:9 in
  Alcotest.(check int) "remap size" 5 (Array.length remap);
  let after = Container.dump c in
  Alcotest.(check bool) "same multiset" true
    (List.sort compare before = List.sort compare after);
  (* the permutation maps old positions to the same (value, parent) *)
  let before_arr = Array.of_list before in
  Array.iteri
    (fun old_idx new_idx ->
      let r = (Container.scan c).(new_idx) in
      let (v, p) = before_arr.(old_idx) in
      Alcotest.(check string) "value follows remap" v (Container.decompress_record c r);
      Alcotest.(check int) "parent follows remap" p r.Container.parent)
    remap

(* ------------------------------------------------------------------ *)
(* Blocks and the buffer pool                                          *)
(* ------------------------------------------------------------------ *)

(* a container with many tiny values and a 1-byte block budget: every
   record lands in its own block *)
let blocky_container ?(n = 40) () =
  let values = List.init n (fun i -> (Printf.sprintf "v%03d" i, i + 1)) in
  Container.build ~block_size:1 ~id:0 ~path:"/a/b/#text" ~kind:Container.Text
    ~algorithm:Compress.Codec.Alm_alg values

let test_container_blocks () =
  let c = blocky_container () in
  Alcotest.(check int) "one record per block" 40 (Container.block_count c);
  (* headers partition the index space *)
  let next = ref 0 in
  Array.iter
    (fun (b : Container.block) ->
      Alcotest.(check int) "contiguous" !next b.Container.b_start;
      next := b.Container.b_start + b.Container.b_count)
    c.Container.blocks;
  Alcotest.(check int) "covers all records" (Container.length c) !next;
  (* random access agrees with a full scan *)
  let all = Container.scan c in
  for i = 0 to Container.length c - 1 do
    Alcotest.(check string) "get = scan" all.(i).Container.code (Container.get c i).Container.code
  done;
  (* range decodes agree too *)
  let r = Container.range c ~lo:5 ~hi:12 in
  Alcotest.(check int) "range size" 7 (List.length r);
  List.iteri
    (fun k (r : Container.record) ->
      Alcotest.(check string) "range = scan slice" all.(5 + k).Container.code r.Container.code)
    r

let test_block_pruning () =
  let c = blocky_container () in
  Buffer_pool.clear ();
  let s0 = Buffer_pool.snapshot () in
  let hits = Container.lookup_eq c (Container.compress_constant c "v007") in
  let s1 = Buffer_pool.snapshot () in
  Alcotest.(check int) "one match" 1 (List.length hits);
  (* min/max pruning: at most a couple of the 40 blocks decode *)
  let decoded = s1.Buffer_pool.s_misses - s0.Buffer_pool.s_misses in
  Alcotest.(check bool) "decodes at most 2 of 40 blocks" true (decoded <= 2);
  Alcotest.(check bool) "pruned most blocks" true
    (s1.Buffer_pool.s_blocks_skipped - s0.Buffer_pool.s_blocks_skipped >= 38);
  (* a range lookup is also pruned *)
  let s2 = Buffer_pool.snapshot () in
  let lo = Container.compress_constant c "v010" in
  let hi = Container.compress_constant c "v015" in
  let rs = Container.lookup_range c ~lo ~hi () in
  let s3 = Buffer_pool.snapshot () in
  Alcotest.(check int) "five in range" 5 (List.length rs);
  Alcotest.(check bool) "range pruned too" true
    (s3.Buffer_pool.s_blocks_skipped - s2.Buffer_pool.s_blocks_skipped >= 30)

let test_buffer_pool_hits_and_eviction () =
  let saved = Buffer_pool.budget_bytes () in
  Buffer_pool.clear ();
  let uid = Buffer_pool.fresh_uid () in
  let mk i =
    (* a decoded block charging exactly 100 bytes *)
    { Buffer_pool.codes = [| Printf.sprintf "c%d" i |]; parents = [| i |]; d_bytes = 100 }
  in
  let decodes = ref 0 in
  let fetch i =
    Buffer_pool.fetch ~uid ~gen:0 ~blk:i (fun () -> incr decodes; mk i)
  in
  Fun.protect ~finally:(fun () ->
      Buffer_pool.set_budget ~bytes:saved;
      Buffer_pool.clear ())
  @@ fun () ->
  Buffer_pool.set_budget ~bytes:250;
  let s0 = Buffer_pool.snapshot () in
  ignore (fetch 0);
  ignore (fetch 0);
  let s1 = Buffer_pool.snapshot () in
  Alcotest.(check int) "second fetch hits" 1 (s1.Buffer_pool.s_hits - s0.Buffer_pool.s_hits);
  Alcotest.(check int) "one decode" 1 !decodes;
  Alcotest.(check int) "byte accounting" 100 s1.Buffer_pool.s_resident_bytes;
  (* 250-byte budget holds two 100-byte blocks; the third evicts the LRU *)
  ignore (fetch 1);
  ignore (fetch 0) (* touch 0: block 1 becomes LRU *);
  ignore (fetch 2);
  let s2 = Buffer_pool.snapshot () in
  Alcotest.(check int) "one eviction" 1 (s2.Buffer_pool.s_evictions - s1.Buffer_pool.s_evictions);
  Alcotest.(check int) "two resident" 2 s2.Buffer_pool.s_resident_blocks;
  (* block 1 was evicted (LRU), 0 and 2 still hit *)
  ignore (fetch 0);
  ignore (fetch 2);
  let s3 = Buffer_pool.snapshot () in
  Alcotest.(check int) "0 and 2 hit" 2 (s3.Buffer_pool.s_hits - s2.Buffer_pool.s_hits);
  ignore (fetch 1);
  let s4 = Buffer_pool.snapshot () in
  Alcotest.(check int) "1 re-decodes" 1 (s4.Buffer_pool.s_misses - s3.Buffer_pool.s_misses);
  (* invalidation drops the container's blocks *)
  Buffer_pool.invalidate ~uid;
  Alcotest.(check int) "invalidate empties" 0 (Buffer_pool.snapshot ()).Buffer_pool.s_resident_blocks

let test_scan_resistant_admission () =
  let saved = Buffer_pool.budget_bytes () in
  Buffer_pool.clear ();
  let uid = Buffer_pool.fresh_uid () in
  let mk i =
    { Buffer_pool.codes = [| Printf.sprintf "c%d" i |]; parents = [| i |]; d_bytes = 100 }
  in
  let fetch ?admission i = Buffer_pool.fetch ?admission ~uid ~gen:0 ~blk:i (fun () -> mk i) in
  Fun.protect ~finally:(fun () ->
      Buffer_pool.set_budget ~bytes:saved;
      Buffer_pool.clear ())
  @@ fun () ->
  (* 250-byte budget: exactly the two-block hot set *)
  Buffer_pool.set_budget ~bytes:250;
  ignore (fetch 0);
  ignore (fetch 1);
  let s0 = Buffer_pool.snapshot () in
  (* a "scan" sweeps 5 cold blocks with Tail admission: each enters at
     the LRU end and is itself the first eviction victim, so the hot
     set never leaves the pool *)
  for i = 10 to 14 do
    ignore (fetch ~admission:Buffer_pool.Tail i)
  done;
  let s1 = Buffer_pool.snapshot () in
  Alcotest.(check int) "scan inserts counted" 5
    (s1.Buffer_pool.s_scan_inserts - s0.Buffer_pool.s_scan_inserts);
  Alcotest.(check bool) "stays within budget" true (s1.Buffer_pool.s_resident_bytes <= 250);
  ignore (fetch 0);
  ignore (fetch 1);
  let s2 = Buffer_pool.snapshot () in
  Alcotest.(check int) "hot set survives the scan (hits)" 2
    (s2.Buffer_pool.s_hits - s1.Buffer_pool.s_hits);
  Alcotest.(check int) "hot set survives the scan (no re-decode)" 0
    (s2.Buffer_pool.s_misses - s1.Buffer_pool.s_misses);
  (* a hit on a tail-admitted block still promotes it to MRU *)
  Buffer_pool.set_budget ~bytes:350;
  ignore (fetch ~admission:Buffer_pool.Tail 10) (* resident: 1, 0, 10(tail) *);
  ignore (fetch 10) (* hit: promoted to MRU *);
  ignore (fetch 2) (* over budget: evicts the true LRU (block 0), not 10 *);
  let s3 = Buffer_pool.snapshot () in
  ignore (fetch 10);
  let s4 = Buffer_pool.snapshot () in
  Alcotest.(check int) "promoted scan block survives eviction" 1
    (s4.Buffer_pool.s_hits - s3.Buffer_pool.s_hits);
  ignore (fetch 0);
  let s5 = Buffer_pool.snapshot () in
  Alcotest.(check int) "unpromoted LRU block was the victim" 1
    (s5.Buffer_pool.s_misses - s4.Buffer_pool.s_misses)

let test_scan_admission_via_container () =
  let c = blocky_container () in
  Buffer_pool.clear ();
  let s0 = Buffer_pool.snapshot () in
  ignore (Container.scan c);
  let s1 = Buffer_pool.snapshot () in
  Alcotest.(check int) "every scan decode is tail-admitted"
    (s1.Buffer_pool.s_misses - s0.Buffer_pool.s_misses)
    (s1.Buffer_pool.s_scan_inserts - s0.Buffer_pool.s_scan_inserts);
  Alcotest.(check bool) "payload bytes accounted" true
    (s1.Buffer_pool.s_payload_bytes - s0.Buffer_pool.s_payload_bytes > 0);
  (* a pruned point lookup charges the skipped blocks' payload bytes to
     the skipped counter, in the same (compressed payload) unit *)
  Buffer_pool.clear ();
  let s2 = Buffer_pool.snapshot () in
  ignore (Container.lookup_eq c (Container.compress_constant c "v007"));
  let s3 = Buffer_pool.snapshot () in
  Alcotest.(check bool) "pruning skipped blocks" true
    (s3.Buffer_pool.s_blocks_skipped - s2.Buffer_pool.s_blocks_skipped > 0);
  Alcotest.(check bool) "skipped payload bytes accounted" true
    (s3.Buffer_pool.s_skipped_bytes - s2.Buffer_pool.s_skipped_bytes > 0)

let test_executor_pruning_via_counters () =
  (* a selective pushed-down predicate must decode strictly less than the
     whole container (the acceptance criterion of the block design) *)
  let xml =
    "<r>"
    ^ String.concat ""
        (List.init 200 (fun i -> Printf.sprintf "<e a=\"key%03d\"/>" i))
    ^ "</r>"
  in
  let saved = Container.default_block_size () in
  Container.set_default_block_size 64;
  Fun.protect ~finally:(fun () -> Container.set_default_block_size saved)
  @@ fun () ->
  let repo = Xquec_core.Loader.load ~name:"t" xml in
  let k = Option.get (Repository.find_container_by_path repo "/r/e/@a") in
  Alcotest.(check bool) "container split into many blocks" true
    (Container.block_count k > 10);
  Buffer_pool.clear ();
  let s0 = Buffer_pool.snapshot () in
  let items =
    Xquec_core.Executor.run_string repo "document(\"t\")/r/e[@a = \"key123\"]"
  in
  let s1 = Buffer_pool.snapshot () in
  Alcotest.(check int) "one element matches" 1 (List.length items);
  let decoded = s1.Buffer_pool.s_misses - s0.Buffer_pool.s_misses in
  Alcotest.(check bool) "decoded a strict subset of blocks" true
    (decoded > 0 && decoded < Container.block_count k);
  Alcotest.(check bool) "skipped blocks were counted" true
    (s1.Buffer_pool.s_blocks_skipped - s0.Buffer_pool.s_blocks_skipped > 0)

(* ------------------------------------------------------------------ *)
(* Parallel decode: domain pool + thread-safe buffer pool              *)
(* ------------------------------------------------------------------ *)

let read_fixture name =
  let path = Filename.concat "fixtures" name in
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Run [f] with the decode pool resized to [n] domains, restoring the
   ambient size (whatever $XQUEC_DECODE_DOMAINS / the host picked)
   afterwards so the other suites keep their configuration. *)
let with_pool_size n f =
  let saved = Domain_pool.size () in
  Domain_pool.set_size n;
  Fun.protect ~finally:(fun () -> Domain_pool.set_size saved) f

let record_list (rs : Container.record array) =
  Array.to_list rs |> List.map (fun (r : Container.record) -> (r.Container.code, r.Container.parent))

let test_parallel_scan_parity () =
  let c = blocky_container ~n:60 () in
  let reference =
    with_pool_size 0 (fun () ->
        Buffer_pool.clear ();
        record_list (Container.scan c))
  in
  List.iter
    (fun domains ->
      with_pool_size domains (fun () ->
          Buffer_pool.clear ();
          let cold = record_list (Container.scan c) in
          Alcotest.(check bool)
            (Printf.sprintf "cold scan identical at %d domains" domains)
            true (cold = reference);
          let warm = record_list (Container.scan c) in
          Alcotest.(check bool)
            (Printf.sprintf "warm scan identical at %d domains" domains)
            true (warm = reference);
          (* the pruned access paths agree too *)
          Buffer_pool.clear ();
          let eq = Container.lookup_eq c (Container.compress_constant c "v007") in
          Alcotest.(check int)
            (Printf.sprintf "lookup_eq at %d domains" domains)
            1 (List.length eq);
          Buffer_pool.clear ();
          let r = Container.range c ~lo:5 ~hi:35 in
          Alcotest.(check int)
            (Printf.sprintf "range size at %d domains" domains)
            30 (List.length r)))
    [ 1; 2; 4 ]

let test_parallel_latch_dedup () =
  (* N raw domains scanning the same cold container concurrently: the
     in-flight latches must dedup decodes, so the total number of misses
     (= decode thunk runs) stays <= the block count, and every domain
     sees the same records. *)
  let c = blocky_container ~n:50 () in
  with_pool_size 0 (fun () ->
      (* pool size 0: contention comes purely from the raw domains, so
         the miss accounting below isn't mixed with helper activity *)
      Buffer_pool.clear ();
      let reference = record_list (Container.scan c) in
      Buffer_pool.clear ();
      let s0 = Buffer_pool.snapshot () in
      let scans =
        List.init 4 (fun _ -> Domain.spawn (fun () -> record_list (Container.scan c)))
      in
      let results = List.map Domain.join scans in
      let s1 = Buffer_pool.snapshot () in
      List.iteri
        (fun i r ->
          Alcotest.(check bool)
            (Printf.sprintf "domain %d scan identical" i)
            true (r = reference))
        results;
      let misses = s1.Buffer_pool.s_misses - s0.Buffer_pool.s_misses in
      Alcotest.(check bool) "each block decoded at most once" true
        (misses <= Container.block_count c);
      (* 4 scans x 50 blocks = 200 accesses, each exactly one of
         hit / miss / latch wait *)
      let hits = s1.Buffer_pool.s_hits - s0.Buffer_pool.s_hits in
      let waits = s1.Buffer_pool.s_latch_waits - s0.Buffer_pool.s_latch_waits in
      Alcotest.(check int) "accesses partition into hit/miss/wait"
        (4 * Container.block_count c)
        (hits + misses + waits))

let test_prefetch_blocks () =
  let c = blocky_container ~n:30 () in
  with_pool_size 2 (fun () ->
      Buffer_pool.clear ();
      Container.prefetch_blocks c ~b0:0 ~b1:(Container.block_count c - 1);
      let s0 = Buffer_pool.snapshot () in
      ignore (Container.scan c);
      let s1 = Buffer_pool.snapshot () in
      Alcotest.(check int) "scan after prefetch decodes nothing" 0
        (s1.Buffer_pool.s_misses - s0.Buffer_pool.s_misses);
      Alcotest.(check int) "scan after prefetch all hits"
        (Container.block_count c)
        (s1.Buffer_pool.s_hits - s0.Buffer_pool.s_hits))

let test_sequential_parity_v1_fixture () =
  (* --decode-domains 0 on the v1 fixture must agree with a parallel
     pool, and must never block on a latch (no other domain exists). *)
  let data = read_fixture "v1_small.xqc" in
  let queries =
    [
      "document(\"v1_small.xml\")/site/people/person/name";
      "document(\"v1_small.xml\")/site/people/person[age > 30]/name";
      "document(\"v1_small.xml\")/site/people/person[@id = \"p2\"]";
    ]
  in
  let answers domains =
    with_pool_size domains (fun () ->
        Buffer_pool.clear ();
        let repo = Repository.deserialize data in
        let s0 = Buffer_pool.snapshot () in
        let out =
          List.map
            (fun q ->
              Xquec_core.Executor.serialize repo (Xquec_core.Executor.run_string repo q))
            queries
        in
        let s1 = Buffer_pool.snapshot () in
        (out, s1.Buffer_pool.s_latch_waits - s0.Buffer_pool.s_latch_waits))
  in
  let (seq, seq_waits) = answers 0 in
  let (par, _) = answers 4 in
  Alcotest.(check (list string)) "0-domain answers = 4-domain answers" seq par;
  Alcotest.(check int) "sequential path never waits on a latch" 0 seq_waits

(* ------------------------------------------------------------------ *)
(* distinct_parents precompute                                         *)
(* ------------------------------------------------------------------ *)

let test_distinct_parents_bit () =
  let distinct =
    Container.build ~id:0 ~path:"/a/b/#text" ~kind:Container.Text
      ~algorithm:Compress.Codec.Alm_alg
      [ ("x", 1); ("y", 2); ("z", 3) ]
  in
  Alcotest.(check bool) "distinct parents detected" true distinct.Container.distinct_parents;
  let dup =
    Container.build ~id:1 ~path:"/a/b/#text" ~kind:Container.Text
      ~algorithm:Compress.Codec.Alm_alg
      [ ("x", 1); ("y", 1); ("z", 3) ]
  in
  Alcotest.(check bool) "duplicate parent detected" false dup.Container.distinct_parents;
  (* recompress recomputes *)
  let before = Container.dump dup in
  let model = Compress.Codec.train Compress.Codec.Huffman_alg (List.map fst before) in
  ignore (Container.recompress dup ~algorithm:Compress.Codec.Huffman_alg ~model ~model_id:9);
  Alcotest.(check bool) "recompress keeps the bit honest" false dup.Container.distinct_parents

let container_bits (repo : Repository.t) =
  Array.to_list repo.Repository.containers
  |> List.map (fun (c : Container.t) -> (c.Container.path, c.Container.distinct_parents))
  |> List.sort compare

let test_distinct_parents_persisted () =
  (* the bit survives a v2 save/load, and is recomputed on v1 loads *)
  let xml = Xmark.Xmlgen.generate ~scale:0.03 () in
  let repo = Xquec_core.Loader.load ~name:"auction.xml" xml in
  let repo' = Repository.deserialize (Repository.serialize repo) in
  Alcotest.(check bool) "v2 roundtrip preserves bits" true
    (container_bits repo = container_bits repo');
  let v1 = Repository.deserialize (read_fixture "v1_small.xqc") in
  let fresh = Xquec_core.Loader.load ~name:"v1_small.xml" (read_fixture "v1_small.xml") in
  Alcotest.(check bool) "v1 load recomputes the same bits" true
    (container_bits v1 = container_bits fresh)

let test_bare_element_predicate_pruned () =
  (* regression: bare-element predicates used to re-derive parent
     distinctness with a full Container.scan per query, decoding every
     block; with the precomputed bit they prune like attribute
     predicates *)
  let xml =
    "<r>"
    ^ String.concat ""
        (List.init 200 (fun i -> Printf.sprintf "<e><c>key%03d</c></e>" i))
    ^ "</r>"
  in
  let saved = Container.default_block_size () in
  Container.set_default_block_size 64;
  Fun.protect ~finally:(fun () -> Container.set_default_block_size saved)
  @@ fun () ->
  let repo = Xquec_core.Loader.load ~name:"t" xml in
  let k = Option.get (Repository.find_container_by_path repo "/r/e/c/#text") in
  Alcotest.(check bool) "container split into many blocks" true
    (Container.block_count k > 10);
  Alcotest.(check bool) "bit precomputed as distinct" true k.Container.distinct_parents;
  Buffer_pool.clear ();
  let s0 = Buffer_pool.snapshot () in
  let items = Xquec_core.Executor.run_string repo "document(\"t\")/r/e[c = \"key123\"]" in
  let s1 = Buffer_pool.snapshot () in
  Alcotest.(check int) "one element matches" 1 (List.length items);
  let decoded = s1.Buffer_pool.s_misses - s0.Buffer_pool.s_misses in
  Alcotest.(check bool) "bare-element predicate decodes a strict subset" true
    (decoded > 0 && decoded < Container.block_count k)

(* ------------------------------------------------------------------ *)
(* Structure tree + summary via the loader                             *)
(* ------------------------------------------------------------------ *)

let small_repo () =
  Xquec_core.Loader.load ~name:"t"
    "<a><b id=\"1\"><c>x</c><c>y</c></b><b id=\"2\"><c>z</c></b><d/></a>"

let test_tree_navigation () =
  let repo = small_repo () in
  let tree = repo.Repository.tree in
  let dict = repo.Repository.dict in
  let code n = Option.get (Name_dict.code dict n) in
  Alcotest.(check int) "node count (a,2xb,3xc,d,2x@id)" 9 (Structure_tree.node_count tree);
  let bs = Structure_tree.children_with_tag tree 0 (code "b") in
  Alcotest.(check int) "two b children" 2 (List.length bs);
  let b1 = List.hd bs in
  Alcotest.(check int) "parent of b" 0 (Structure_tree.parent tree b1);
  let cs = Structure_tree.children_with_tag tree b1 (code "c") in
  Alcotest.(check int) "two c under first b" 2 (List.length cs);
  (* ancestors via pre/post *)
  List.iter
    (fun c ->
      Alcotest.(check bool) "b ancestor of c" true
        (Structure_tree.is_ancestor tree ~ancestor:b1 ~descendant:c);
      Alcotest.(check bool) "a ancestor of c" true
        (Structure_tree.is_ancestor tree ~ancestor:0 ~descendant:c))
    cs;
  let all_desc = Structure_tree.descendants tree 0 in
  Alcotest.(check int) "descendants of root" 8 (List.length all_desc)

let test_tree_find_via_index () =
  let repo = small_repo () in
  let tree = repo.Repository.tree in
  for id = 0 to Structure_tree.node_count tree - 1 do
    Alcotest.(check (option int)) "find through sparse index" (Some id)
      (Structure_tree.find tree id)
  done;
  Alcotest.(check (option int)) "out of range" None (Structure_tree.find tree 999)

let test_summary_matching () =
  let repo = small_repo () in
  let s = repo.Repository.summary in
  let dict = repo.Repository.dict in
  let code n = Option.get (Name_dict.code dict n) in
  let is_attr c = (Name_dict.name dict c).[0] = '@' in
  let m = Summary.match_steps ~is_attr s [ `Child (code "a"); `Child (code "b") ] in
  Alcotest.(check int) "one b snode" 1 (List.length m);
  Alcotest.(check int) "b instances" 2 (Array.length (List.hd m).Summary.ids);
  let m = Summary.match_steps ~is_attr s [ `Desc (code "c") ] in
  Alcotest.(check int) "desc c snode" 1 (List.length m);
  Alcotest.(check int) "c instances" 3 (Array.length (List.hd m).Summary.ids);
  let m = Summary.match_steps ~is_attr s [ `Child (code "a"); `Child_any ] in
  Alcotest.(check int) "any children of a: b and d" 2 (List.length m)

let test_summary_node_count () =
  let repo = small_repo () in
  (* root + a + b + @id + c + c/#text? (text containers are not summary
     nodes) + d: the path tree is tiny compared to the document *)
  Alcotest.(check int) "summary nodes" 5 (Summary.node_count repo.Repository.summary - 1)

(* ------------------------------------------------------------------ *)
(* Repository serialization                                            *)
(* ------------------------------------------------------------------ *)

let test_repository_roundtrip () =
  let xml = Xmark.Xmlgen.generate ~scale:0.03 () in
  let repo = Xquec_core.Loader.load ~name:"auction.xml" xml in
  let data = Repository.serialize repo in
  let repo' = Repository.deserialize data in
  Alcotest.(check int) "node count" (Structure_tree.node_count repo.Repository.tree)
    (Structure_tree.node_count repo'.Repository.tree);
  Alcotest.(check int) "containers" (Array.length repo.Repository.containers)
    (Array.length repo'.Repository.containers);
  (* queries give identical answers on the restored repository *)
  List.iter
    (fun (q : Xmark.Queries.query) ->
      let ast = Xquery.Parser.parse q.Xmark.Queries.text in
      let a = Xquec_core.Executor.serialize repo (Xquec_core.Executor.run repo ast) in
      let b = Xquec_core.Executor.serialize repo' (Xquec_core.Executor.run repo' ast) in
      Alcotest.(check string) (q.Xmark.Queries.id ^ " identical after reload") a b)
    Xmark.Queries.all

(* The magic a default [Repository.serialize] writes: follows the kill
   switch, so the storage suite can be re-run under XQUEC_FORMAT=v3. *)
let expected_magic () =
  match Repository.default_format () with `V3 -> "XQC\x03" | `V4 -> "XQC\x04"

let test_repository_byte_exact () =
  let xml = Xmark.Xmlgen.generate ~scale:0.03 () in
  let repo = Xquec_core.Loader.load ~name:"auction.xml" xml in
  let data = Repository.serialize repo in
  Alcotest.(check string) "default-format magic" (expected_magic ()) (String.sub data 0 4);
  let repo' = Repository.deserialize data in
  let data' = Repository.serialize repo' in
  Alcotest.(check bool) "save/load/save is byte-exact" true (String.equal data data');
  (* both explicit formats round-trip byte-exactly regardless of the
     process default *)
  List.iter
    (fun (format, magic) ->
      let data = Repository.serialize ~format repo in
      Alcotest.(check string) "explicit-format magic" magic (String.sub data 0 4);
      Alcotest.(check bool) "explicit format is byte-exact" true
        (String.equal data (Repository.serialize ~format (Repository.deserialize data))))
    [ (`V3, "XQC\x03"); (`V4, "XQC\x04") ]

let test_repository_v1_fixture () =
  (* a repository written by the pre-block (v1) format must still load *)
  let data = read_fixture "v1_small.xqc" in
  Alcotest.(check bool) "fixture is not v2" true (String.sub data 0 4 <> "XQC\x02");
  let repo = Repository.deserialize data in
  Alcotest.(check string) "source name" "v1_small.xml" repo.Repository.source_name;
  (* it answers queries like the freshly-loaded equivalent *)
  let fresh = Xquec_core.Loader.load ~name:"v1_small.xml" (read_fixture "v1_small.xml") in
  List.iter
    (fun q ->
      let a = Xquec_core.Executor.serialize repo (Xquec_core.Executor.run_string repo q) in
      let b = Xquec_core.Executor.serialize fresh (Xquec_core.Executor.run_string fresh q) in
      Alcotest.(check string) (q ^ " matches fresh load") a b)
    [
      "document(\"v1_small.xml\")/site/people/person/name";
      "document(\"v1_small.xml\")/site/people/person[age > 30]/name";
      "document(\"v1_small.xml\")/site/people/person[@id = \"p2\"]";
    ];
  (* and re-saving upgrades it to the current format, which then
     round-trips byte-exactly *)
  let cur = Repository.serialize repo in
  Alcotest.(check string) "re-save upgrades to current format" (expected_magic ())
    (String.sub cur 0 4);
  Alcotest.(check bool) "upgraded image round-trips" true
    (String.equal cur (Repository.serialize (Repository.deserialize cur)))

let test_size_breakdown_consistent () =
  let xml = Xmark.Xmlgen.generate ~scale:0.05 () in
  let repo = Xquec_core.Loader.load ~name:"a" xml in
  let sz = Repository.size_breakdown repo in
  Alcotest.(check bool) "total = sum of parts" true
    (sz.Repository.total_bytes
    = sz.Repository.name_dict_bytes + sz.Repository.tree_bytes
      + sz.Repository.containers_bytes + sz.Repository.models_bytes
      + sz.Repository.summary_bytes + sz.Repository.index_bytes);
  Alcotest.(check bool) "essential < total" true
    (sz.Repository.essential_bytes < sz.Repository.total_bytes)

let test_packed_tree_roundtrip () =
  (* the delta+varint packed encoding preserves every field of the
     structure tree and beats the legacy plain-varint encoding *)
  let xml = Xmark.Xmlgen.generate ~scale:0.05 () in
  let repo = Xquec_core.Loader.load ~name:"a" xml in
  let tree = repo.Repository.tree in
  let packed = Buffer.create 4096 and legacy = Buffer.create 4096 in
  Structure_tree.serialize_packed packed tree;
  Structure_tree.serialize legacy tree;
  Alcotest.(check bool) "packed encoding is smaller" true
    (Buffer.length packed < Buffer.length legacy);
  let (t', consumed) = Structure_tree.deserialize_packed (Buffer.contents packed) 0 in
  Alcotest.(check int) "consumed whole image" (Buffer.length packed) consumed;
  (* both encodings leave value-pointer containers unresolved (the
     repository resolves them against the summary on load), so the
     packed round-trip must agree field-for-field with the legacy one *)
  let (tl, _) = Structure_tree.deserialize (Buffer.contents legacy) 0 in
  let n = Structure_tree.node_count tl in
  Alcotest.(check int) "node count" n (Structure_tree.node_count t');
  for id = 0 to n - 1 do
    if Structure_tree.tag tl id <> Structure_tree.tag t' id
       || Structure_tree.parent tl id <> Structure_tree.parent t' id
       || Structure_tree.level tl id <> Structure_tree.level t' id
       || Structure_tree.value_pointers tl id <> Structure_tree.value_pointers t' id
       || Structure_tree.child_entries tl id <> Structure_tree.child_entries t' id
    then Alcotest.failf "node %d differs between packed and legacy decode" id
  done

let test_repository_v2_read_compat () =
  (* a v2 image (block containers, legacy plain-varint tree, no flags
     byte) must still load; the reader is exercised against an image we
     write here with the v2 layout *)
  let xml = Xmark.Xmlgen.generate ~scale:0.03 () in
  let repo = Xquec_core.Loader.load ~name:"auction.xml" xml in
  let buf = Buffer.create (1 lsl 16) in
  let add_varint = Compress.Rle.add_varint in
  let add_str s =
    add_varint buf (String.length s);
    Buffer.add_string buf s
  in
  Buffer.add_string buf "XQC\x02";
  add_str repo.Repository.source_name;
  add_varint buf repo.Repository.original_size;
  let names = Name_dict.to_list repo.Repository.dict in
  add_varint buf (List.length names);
  List.iter add_str names;
  let ms = Repository.models repo in
  add_varint buf (List.length ms);
  List.iter
    (fun (id, m) ->
      add_varint buf id;
      add_str (Compress.Codec.algorithm_name (Compress.Codec.algorithm_of_model m));
      let body =
        match m with
        | Compress.Codec.M_huffman h -> Compress.Huffman.serialize_model h
        | Compress.Codec.M_alm a -> Compress.Alm.serialize_model a
        | Compress.Codec.M_arith a -> Compress.Arith.serialize_model a
        | Compress.Codec.M_hu_tucker h -> Compress.Hu_tucker.serialize_model h
        | Compress.Codec.M_bzip -> ""
        | Compress.Codec.M_numeric n -> Compress.Ipack.serialize_model n
      in
      add_str body)
    ms;
  Summary.serialize buf repo.Repository.summary;
  Structure_tree.serialize buf repo.Repository.tree;
  add_varint buf (Array.length repo.Repository.containers);
  Array.iter (fun c -> Container.serialize buf c) repo.Repository.containers;
  let v2 = Repository.deserialize (Buffer.contents buf) in
  List.iter
    (fun q ->
      let a = Xquec_core.Executor.serialize v2 (Xquec_core.Executor.run_string v2 q) in
      let b = Xquec_core.Executor.serialize repo (Xquec_core.Executor.run_string repo q) in
      Alcotest.(check string) (q ^ " matches v3 twin") b a)
    [
      "document(\"auction.xml\")/site/people/person/name";
      "document(\"auction.xml\")/site/people/person[@id = \"person0\"]";
    ];
  (* re-saving the v2 load upgrades it to the current format *)
  let cur = Repository.serialize v2 in
  Alcotest.(check string) "re-save upgrades to current format" (expected_magic ())
    (String.sub cur 0 4);
  Alcotest.(check bool) "upgraded image round-trips" true
    (String.equal cur (Repository.serialize (Repository.deserialize cur)))

let test_repository_v3_fixture () =
  (* a committed v3 image (packed record tree) must keep loading
     byte-for-byte now that new images are v4 *)
  let data = read_fixture "v3_small.xqc" in
  Alcotest.(check string) "fixture is v3" "XQC\x03" (String.sub data 0 4);
  let repo = Repository.deserialize data in
  Alcotest.(check string) "source name" "v3_small.xml" repo.Repository.source_name;
  (* the v3 writer still reproduces the fixture exactly *)
  Alcotest.(check bool) "v3 re-save is byte-identical to the fixture" true
    (String.equal data (Repository.serialize ~format:`V3 repo));
  (* it answers queries like the freshly-loaded equivalent — including
     mixed content, where the succinct tree must re-interleave text
     markers between element children *)
  let fresh = Xquec_core.Loader.load ~name:"v3_small.xml" (read_fixture "v3_small.xml") in
  List.iter
    (fun q ->
      let a = Xquec_core.Executor.serialize repo (Xquec_core.Executor.run_string repo q) in
      let b = Xquec_core.Executor.serialize fresh (Xquec_core.Executor.run_string fresh q) in
      Alcotest.(check string) (q ^ " matches fresh load") a b)
    [
      "document(\"v3_small.xml\")/site/people/person/name";
      "document(\"v3_small.xml\")/site/people/person[age > 30]/bio";
      "document(\"v3_small.xml\")/site/people/person[@id = \"p2\"]";
      "document(\"v3_small.xml\")//item/price";
    ]

let test_v3_v4_query_identity () =
  (* the same document serialized as v3 and as v4 must answer the whole
     XMark workload identically, and the v4 image must round-trip
     byte-exactly through its own save/load *)
  let xml = Xmark.Xmlgen.generate ~scale:0.03 () in
  let repo = Xquec_core.Loader.load ~name:"auction.xml" xml in
  let v3 = Repository.deserialize (Repository.serialize ~format:`V3 repo) in
  let v4_image = Repository.serialize ~format:`V4 repo in
  let v4 = Repository.deserialize v4_image in
  List.iter
    (fun (q : Xmark.Queries.query) ->
      let ast = Xquery.Parser.parse q.Xmark.Queries.text in
      let a = Xquec_core.Executor.serialize v3 (Xquec_core.Executor.run v3 ast) in
      let b = Xquec_core.Executor.serialize v4 (Xquec_core.Executor.run v4 ast) in
      Alcotest.(check string) (q.Xmark.Queries.id ^ " identical on v3 and v4") a b)
    Xmark.Queries.all;
  Alcotest.(check bool) "v4 save/load/save byte-exact" true
    (String.equal v4_image (Repository.serialize ~format:`V4 v4));
  (* and the succinct tree is the smaller encoding even at this scale *)
  let sz = Repository.size_breakdown repo in
  Alcotest.(check bool) "succinct tree below packed tree" true
    (sz.Repository.tree_bytes < sz.Repository.tree_packed_bytes)

let test_capped_bounds_conservative () =
  (* codes longer than the 8-byte header cap: the exact bit must clear
     and min/max pruning must stay conservative — equality lookups
     still find every value even though all bounds share one capped
     prefix *)
  let saved = Container.default_block_size () in
  Container.set_default_block_size 512;
  Fun.protect ~finally:(fun () -> Container.set_default_block_size saved)
  @@ fun () ->
  let values =
    List.init 100 (fun i ->
        (Printf.sprintf "a-very-long-shared-prefix-%04d-%020d" i i, i + 1))
  in
  let c =
    Container.build ~id:0 ~path:"/r/e/#text" ~kind:Container.Text
      ~algorithm:Compress.Codec.Alm_alg values
  in
  Alcotest.(check bool) "split into several blocks" true (Container.block_count c > 3);
  let hs = Container.headers c in
  Alcotest.(check bool) "long codes clear the exact bit" true
    (Array.exists (fun h -> not h.Container.h_exact) hs);
  Array.iter
    (fun h ->
      Alcotest.(check bool) "bounds capped at 8 bytes" true
        (String.length h.Container.h_min <= 8 && String.length h.Container.h_max <= 8))
    hs;
  (* every value still found through min/max pruning *)
  List.iter
    (fun (v, p) ->
      let hits = Container.lookup_eq c (Container.compress_constant c v) in
      Alcotest.(check (list int)) ("finds " ^ v) [ p ]
        (List.map (fun r -> r.Container.parent) hits))
    values;
  (* and a header-only join estimate over capped bounds reports itself
     inexact while still pairing every block with its equals *)
  let est = Xquec_core.Cost_model.block_join_estimate hs hs in
  Alcotest.(check bool) "estimate marked inexact" true
    (not est.Xquec_core.Cost_model.bj_exact);
  let paired_self =
    List.for_all
      (fun i -> List.mem (i, i) est.Xquec_core.Cost_model.bj_pairs)
      (List.init (Array.length hs) (fun i -> i))
  in
  Alcotest.(check bool) "every block pairs with itself" true paired_self

let suites =
  [
    ( "btree",
      [
        Alcotest.test_case "insert/find" `Quick test_btree_basic;
        Alcotest.test_case "bulk load" `Quick test_btree_bulk;
        Alcotest.test_case "find_le" `Quick test_btree_find_le;
        Alcotest.test_case "range fold" `Quick test_btree_range;
        QCheck_alcotest.to_alcotest prop_btree_model;
      ] );
    ( "storage",
      [
        Alcotest.test_case "name dictionary" `Quick test_name_dict;
        Alcotest.test_case "name dictionary bits (paper example)" `Quick test_name_dict_bits;
        Alcotest.test_case "container is value-sorted" `Quick test_container_sorted;
        Alcotest.test_case "container equality lookup" `Quick test_container_lookup_eq;
        Alcotest.test_case "container range lookup" `Quick test_container_lookup_range;
        Alcotest.test_case "container recompression remap" `Quick test_container_recompress;
        Alcotest.test_case "block structure invariants" `Quick test_container_blocks;
        Alcotest.test_case "min/max block pruning" `Quick test_block_pruning;
        Alcotest.test_case "buffer pool LRU + accounting" `Quick test_buffer_pool_hits_and_eviction;
        Alcotest.test_case "scan-resistant tail admission" `Quick test_scan_resistant_admission;
        Alcotest.test_case "scan admission via container" `Quick test_scan_admission_via_container;
        Alcotest.test_case "executor pruning skips decodes" `Quick test_executor_pruning_via_counters;
        Alcotest.test_case "parallel scan parity (1/2/4 domains)" `Quick test_parallel_scan_parity;
        Alcotest.test_case "latch dedup under contention" `Quick test_parallel_latch_dedup;
        Alcotest.test_case "prefetch warms the pool" `Quick test_prefetch_blocks;
        Alcotest.test_case "decode-domains 0 parity on v1 fixture" `Quick test_sequential_parity_v1_fixture;
        Alcotest.test_case "distinct_parents precompute" `Quick test_distinct_parents_bit;
        Alcotest.test_case "distinct_parents persisted / recomputed" `Quick test_distinct_parents_persisted;
        Alcotest.test_case "bare-element predicate pruned" `Quick test_bare_element_predicate_pruned;
        Alcotest.test_case "structure tree navigation" `Quick test_tree_navigation;
        Alcotest.test_case "B+ index lookup" `Quick test_tree_find_via_index;
        Alcotest.test_case "summary matching" `Quick test_summary_matching;
        Alcotest.test_case "summary is small" `Quick test_summary_node_count;
        Alcotest.test_case "repository roundtrip" `Slow test_repository_roundtrip;
        Alcotest.test_case "repository image byte-exact" `Quick test_repository_byte_exact;
        Alcotest.test_case "repository v1 fixture read" `Quick test_repository_v1_fixture;
        Alcotest.test_case "repository v2 read compat" `Quick test_repository_v2_read_compat;
        Alcotest.test_case "repository v3 fixture read" `Quick test_repository_v3_fixture;
        Alcotest.test_case "v3 vs v4 query identity" `Quick test_v3_v4_query_identity;
        Alcotest.test_case "size breakdown consistent" `Quick test_size_breakdown_consistent;
        Alcotest.test_case "packed tree round-trip" `Quick test_packed_tree_roundtrip;
        Alcotest.test_case "capped bounds stay conservative" `Quick test_capped_bounds_conservative;
      ] );
  ]
