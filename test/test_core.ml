(* Tests for the §3 machinery (workload, cost model, greedy partitioner)
   and the §4 physical plans. *)

open Xquec_core

let repo_and_workload () =
  let xml = Xmark.Xmlgen.generate ~scale:0.05 () in
  let repo = Loader.load ~name:"auction.xml" xml in
  let workload =
    Workload.of_query_strings repo (List.map (fun q -> q.Xmark.Queries.text) Xmark.Queries.all)
  in
  (repo, workload)

let container_id repo path =
  match Storage.Repository.find_container_by_path repo path with
  | Some c -> c.Storage.Container.id
  | None -> Alcotest.failf "no container %s" path

(* ------------------------------------------------------------------ *)
(* Workload analysis                                                   *)
(* ------------------------------------------------------------------ *)

let test_workload_extraction () =
  let (repo, w) = repo_and_workload () in
  Alcotest.(check bool) "predicates found" true (List.length w.Workload.predicates >= 10);
  (* Q1's predicate: person/@id vs constant, equality *)
  let pid = container_id repo "/site/people/person/@id" in
  Alcotest.(check bool) "Q1 eq-vs-const present" true
    (List.exists
       (fun (p : Workload.predicate) ->
         p.Workload.cls = Workload.Cls_eq && p.Workload.left = [ pid ] && p.Workload.right = [])
       w.Workload.predicates);
  (* Q8's join: buyer/@person vs person/@id *)
  let buyer = container_id repo "/site/closed_auctions/closed_auction/buyer/@person" in
  Alcotest.(check bool) "Q8 join present" true
    (List.exists
       (fun (p : Workload.predicate) ->
         p.Workload.cls = Workload.Cls_eq
         && List.sort compare (p.Workload.left @ p.Workload.right) = List.sort compare [ pid; buyer ])
       w.Workload.predicates);
  (* Q14's contains: wildcard class *)
  Alcotest.(check bool) "wildcard predicate present" true
    (List.exists (fun (p : Workload.predicate) -> p.Workload.cls = Workload.Cls_wild)
       w.Workload.predicates);
  (* Q11's inequality join involving income *)
  let income = container_id repo "/site/people/person/profile/@income" in
  Alcotest.(check bool) "ineq on income present" true
    (List.exists
       (fun (p : Workload.predicate) ->
         p.Workload.cls = Workload.Cls_ineq && List.mem income (p.Workload.left @ p.Workload.right))
       w.Workload.predicates)

let test_eid_matrices () =
  let (repo, w) = repo_and_workload () in
  let (e, i, d) = Workload.matrices w in
  let n = w.Workload.container_count in
  Alcotest.(check int) "matrix size" (n + 1) (Array.length e);
  (* symmetry *)
  let symmetric m =
    let ok = ref true in
    Array.iteri (fun a row -> Array.iteri (fun b v -> if m.(b).(a) <> v then ok := false) row) m;
    !ok
  in
  Alcotest.(check bool) "E symmetric" true (symmetric e);
  Alcotest.(check bool) "I symmetric" true (symmetric i);
  Alcotest.(check bool) "D symmetric" true (symmetric d);
  (* Q1: person/@id vs constant is an equality entry in the last column *)
  let pid = container_id repo "/site/people/person/@id" in
  Alcotest.(check bool) "Q1 counted in E vs const" true (e.(pid).(n) >= 1);
  (* Q8's join appears off-diagonal in E *)
  let buyer = container_id repo "/site/closed_auctions/closed_auction/buyer/@person" in
  Alcotest.(check bool) "Q8 join counted in E" true (e.(pid).(buyer) >= 1);
  (* Q11's income inequality lands in I *)
  let income = container_id repo "/site/people/person/profile/@income" in
  let row_sum = Array.fold_left ( + ) 0 i.(income) in
  Alcotest.(check bool) "income row of I nonzero" true (row_sum >= 1)

(* ------------------------------------------------------------------ *)
(* Cost model                                                          *)
(* ------------------------------------------------------------------ *)

let test_cost_prefers_enabling_algorithm () =
  let (repo, w) = repo_and_workload () in
  let pid = container_id repo "/site/people/person/@id" in
  let buyer = container_id repo "/site/closed_auctions/closed_auction/buyer/@person" in
  let w =
    { w with
      Workload.predicates =
        List.filter
          (fun (p : Workload.predicate) ->
            List.for_all (fun c -> c = pid || c = buyer) (p.Workload.left @ p.Workload.right))
          w.Workload.predicates }
  in
  let cm = Cost_model.create repo w in
  let cost sets = Cost_model.cost cm { Cost_model.sets } in
  let separate_bzip =
    cost [ ([ pid ], Compress.Codec.Bzip_alg); ([ buyer ], Compress.Codec.Bzip_alg) ]
  in
  let merged_alm = cost [ ([ pid; buyer ], Compress.Codec.Alm_alg) ] in
  Alcotest.(check bool) "shared ALM beats separate bzip" true (merged_alm < separate_bzip);
  (* the join needs a shared model: separate ALM sets still pay
     decompression for the join predicate *)
  let separate_alm =
    cost [ ([ pid ], Compress.Codec.Alm_alg); ([ buyer ], Compress.Codec.Alm_alg) ]
  in
  let bd_model = Cost_model.create repo w in
  let bd_sep =
    Cost_model.breakdown bd_model
      { Cost_model.sets = [ ([ pid ], Compress.Codec.Alm_alg); ([ buyer ], Compress.Codec.Alm_alg) ] }
  in
  let bd_merged =
    Cost_model.breakdown bd_model { Cost_model.sets = [ ([ pid; buyer ], Compress.Codec.Alm_alg) ] }
  in
  Alcotest.(check bool) "separate models pay decompression" true
    (bd_sep.Cost_model.decompression > 0.0);
  Alcotest.(check bool) "shared model avoids decompression" true
    (bd_merged.Cost_model.decompression = 0.0);
  ignore separate_alm

let test_numeric_rejected_on_text () =
  let (repo, w) = repo_and_workload () in
  let cm = Cost_model.create repo w in
  let name = container_id repo "/site/people/person/name/#text" in
  let (s, _) = Cost_model.estimate_set cm [ name ] Compress.Codec.Numeric_alg in
  Alcotest.(check bool) "numeric codec impossible on names" true (s = Float.infinity)

(* ------------------------------------------------------------------ *)
(* Partitioner                                                         *)
(* ------------------------------------------------------------------ *)

let test_partitioner_improves_and_colocates () =
  let (repo, w) = repo_and_workload () in
  let result = Partitioner.search repo w in
  Alcotest.(check bool) "final <= initial" true
    (result.Partitioner.final_cost <= result.Partitioner.initial_cost);
  (* the Q8 join partners must share a set with an eq-capable algorithm *)
  let pid = container_id repo "/site/people/person/@id" in
  let buyer = container_id repo "/site/closed_auctions/closed_auction/buyer/@person" in
  let set_of id =
    List.find_opt (fun (ids, _) -> List.mem id ids)
      result.Partitioner.configuration.Cost_model.sets
  in
  (match set_of pid, set_of buyer with
  | Some (ids1, alg1), Some (ids2, _) ->
    Alcotest.(check bool) "join partners share a set" true (ids1 = ids2);
    Alcotest.(check bool) "their algorithm supports eq" true
      (Compress.Codec.supports alg1 `Eq)
  | _ -> Alcotest.fail "join containers not in any set");
  (* numeric inequality containers end up on an ineq-capable codec *)
  let income = container_id repo "/site/people/person/profile/@income" in
  match set_of income with
  | Some (_, alg) ->
    Alcotest.(check bool) "income codec supports ineq" true (Compress.Codec.supports alg `Ineq)
  | None -> Alcotest.fail "income not in any set"

let test_partitioner_apply_preserves_data () =
  let xml = Xmark.Xmlgen.generate ~scale:0.04 () in
  let repo = Loader.load ~name:"auction.xml" xml in
  let before =
    Array.to_list repo.Storage.Repository.containers
    |> List.map (fun c -> (c.Storage.Container.path, List.sort compare (Storage.Container.dump c)))
  in
  let queries = List.map (fun q -> Xquery.Parser.parse q.Xmark.Queries.text) Xmark.Queries.all in
  ignore (Partitioner.optimize repo queries);
  let after =
    Array.to_list repo.Storage.Repository.containers
    |> List.map (fun c -> (c.Storage.Container.path, List.sort compare (Storage.Container.dump c)))
  in
  Alcotest.(check bool) "container contents preserved" true (before = after)

(* The §3.3 flavour: with an inequality workload over textual containers,
   the partitioner moves them from bzip to an order-preserving codec. *)
let test_partitioner_section33_example () =
  let values tagname n f =
    List.init n (fun i -> Printf.sprintf "<%s>%s</%s>" tagname (f i) tagname)
  in
  let words = [| "the"; "quick"; "brown"; "shakespeare"; "wrote"; "plays" |] in
  let xml =
    "<corpus>"
    ^ String.concat ""
        (values "sentence" 120 (fun i ->
             Printf.sprintf "%s %s %s" words.(i mod 6) words.((i / 2) mod 6) words.((i / 3) mod 6)))
    ^ String.concat "" (values "pname" 80 (fun i -> Printf.sprintf "Person %c" (Char.chr (65 + (i mod 26)))))
    ^ String.concat "" (values "date" 80 (fun i -> Printf.sprintf "2001-%02d-%02d" (1 + (i mod 12)) (1 + (i mod 28))))
    ^ "</corpus>"
  in
  let repo = Loader.load ~name:"c.xml" xml in
  let queries =
    List.map Xquery.Parser.parse
      [
        "for $s in document(\"c.xml\")/corpus/sentence where $s/text() > \"m\" return $s";
        "for $p in document(\"c.xml\")/corpus/pname where $p/text() < \"Person M\" return $p";
        "for $d in document(\"c.xml\")/corpus/date where $d/text() >= \"2001-06\" return $d";
      ]
  in
  let w = Workload.analyze repo queries in
  let result = Partitioner.search repo w in
  List.iter
    (fun (ids, alg) ->
      Alcotest.(check bool)
        (Printf.sprintf "set {%s} got an order-preserving codec"
           (String.concat "," (List.map string_of_int ids)))
        true
        (Compress.Codec.supports alg `Ineq))
    result.Partitioner.configuration.Cost_model.sets

(* ------------------------------------------------------------------ *)
(* Optimizer / explain                                                 *)
(* ------------------------------------------------------------------ *)

let test_explain_q1 () =
  let xml = Xmark.Xmlgen.generate ~scale:0.04 () in
  let repo = Loader.load ~name:"auction.xml" xml in
  let ds = Optimizer.explain repo (Xquery.Parser.parse (Xmark.Queries.by_id "Q1").Xmark.Queries.text) in
  (* Q1's @id = "person0" predicate pushes into the @id container in the
     compressed domain (ALM supports eq) *)
  Alcotest.(check bool) "pushdown present" true
    (List.exists
       (function
         | Optimizer.Pushdown p ->
           p.Optimizer.compressed_domain
           && List.mem "/site/people/person/@id" p.Optimizer.containers
         | _ -> false)
       ds)

let test_explain_q8_decorrelates () =
  let xml = Xmark.Xmlgen.generate ~scale:0.04 () in
  let repo = Loader.load ~name:"auction.xml" xml in
  let ds = Optimizer.explain repo (Xquery.Parser.parse (Xmark.Queries.by_id "Q8").Xmark.Queries.text) in
  Alcotest.(check bool) "Q8 nested flwor decorrelates" true
    (List.exists (function Optimizer.Decorrelate _ -> true | _ -> false) ds)

let test_explain_join_on_codes_after_partitioning () =
  let xml = Xmark.Xmlgen.generate ~scale:0.05 () in
  let repo = Loader.load ~name:"auction.xml" xml in
  let q8 = Xquery.Parser.parse (Xmark.Queries.by_id "Q8").Xmark.Queries.text in
  let before = Optimizer.explain repo q8 in
  let codes = function Optimizer.Decorrelate { on_codes; _ } -> Some on_codes | _ -> None in
  Alcotest.(check (option bool)) "string keys before partitioning" (Some false)
    (List.find_map codes before);
  ignore
    (Partitioner.optimize repo
       (List.map (fun q -> Xquery.Parser.parse q.Xmark.Queries.text) Xmark.Queries.all));
  let after = Optimizer.explain repo q8 in
  Alcotest.(check (option bool)) "compressed-code keys after partitioning" (Some true)
    (List.find_map codes after)

let test_explain_q9_join () =
  let xml = Xmark.Xmlgen.generate ~scale:0.04 () in
  let repo = Loader.load ~name:"auction.xml" xml in
  let ds = Optimizer.explain repo (Xquery.Parser.parse (Xmark.Queries.by_id "Q9").Xmark.Queries.text) in
  Alcotest.(check bool) "inner double-FOR plans a hash join" true
    (List.exists (function Optimizer.Hash_join _ -> true | _ -> false) ds)

let test_explain_block_join () =
  (* when both join sides share a source model and are sorted runs,
     EXPLAIN reports the header-driven block merge join with its static
     probe/skip split *)
  let xml =
    "<db><items>"
    ^ String.concat ""
        (List.init 400 (fun i -> Printf.sprintf "<item><key>k%04d</key></item>" i))
    ^ "</items><lookups><lookup><ref>k0003</ref></lookup></lookups></db>"
  in
  let q =
    "for $l in doc('j.xml')/db/lookups/lookup for $i in doc('j.xml')/db/items/item \
     where $i/key = $l/ref return $i/key"
  in
  let saved = Storage.Container.default_block_size () in
  Storage.Container.set_default_block_size 512;
  Fun.protect ~finally:(fun () -> Storage.Container.set_default_block_size saved)
  @@ fun () ->
  let eng = Engine.load ~name:"j.xml" ~workload:[ q ] xml in
  let ds = Optimizer.explain (Engine.repo eng) (Xquery.Parser.parse q) in
  match
    List.find_map
      (function
        | Optimizer.Block_join { blocks_probed; blocks_skipped; skip_fraction; _ } ->
          Some (blocks_probed, blocks_skipped, skip_fraction)
        | _ -> None)
      ds
  with
  | Some (probed, skipped, frac) ->
    Alcotest.(check bool) "skips blocks statically" true (skipped > 0);
    Alcotest.(check bool) "probes at least one block" true (probed > 0);
    Alcotest.(check bool) "skip fraction in (0,1]" true (frac > 0.0 && frac <= 1.0)
  | None -> Alcotest.fail "no block join decision in EXPLAIN"

(* ------------------------------------------------------------------ *)
(* Physical plans                                                      *)
(* ------------------------------------------------------------------ *)

let test_q9_plan_matches_naive_and_executor () =
  let xml = Xmark.Xmlgen.generate ~scale:0.15 () in
  let repo = Loader.load ~name:"auction.xml" xml in
  let plan = List.sort compare (Plans.q9 repo) in
  let naive = List.sort compare (Plans.q9_naive repo) in
  Alcotest.(check bool) "plan = naive" true (plan = naive);
  Alcotest.(check bool) "plan nonempty" true (plan <> [])

let test_physical_operators () =
  let xml = "<r><p k=\"b\"/><p k=\"a\"/><p k=\"c\"/><q k=\"b\"/><q k=\"c\"/></r>" in
  let repo = Loader.load ~name:"r" xml in
  let p_k = container_id repo "/r/p/@k" in
  let q_k = container_id repo "/r/q/@k" in
  Alcotest.(check int) "cont_scan" 3 (Physical.cardinality (Physical.cont_scan repo p_k));
  Alcotest.(check int) "cont_access_eq" 1
    (Physical.cardinality (Physical.cont_access_eq repo p_k ~value:"b"));
  Alcotest.(check int) "cont_access_range" 2
    (Physical.cardinality (Physical.cont_access_range repo p_k ~lo:"b" ()));
  (* merge join only when models are shared; re-key on strings instead *)
  let str_key = function
    | Executor.Cval { cont; code } -> Compress.Codec.decompress cont.Storage.Container.model code
    | _ -> ""
  in
  let joined =
    Physical.hash_join ~key:str_key (Physical.cont_scan repo p_k) ~lcol:0
      (Physical.cont_scan repo q_k) ~rcol:0
  in
  Alcotest.(check int) "hash_join b,c" 2 (Physical.cardinality joined);
  let code n = Option.get (Storage.Name_dict.code repo.Storage.Repository.dict n) in
  let summary_plan = Physical.summary_access repo [ `Child (code "r"); `Child (code "p") ] in
  Alcotest.(check int) "summary access" 3 (Physical.cardinality summary_plan);
  let with_parent = Physical.parent repo summary_plan ~col:0 in
  Alcotest.(check int) "parent keeps cardinality" 3 (Physical.cardinality with_parent)

let test_merge_join_shared_model () =
  (* after partitioning onto one model, the compressed-domain merge join
     applies and agrees with the string hash join *)
  let xml = Xmark.Xmlgen.generate ~scale:0.08 () in
  let repo = Loader.load ~name:"auction.xml" xml in
  let queries = List.map (fun q -> Xquery.Parser.parse q.Xmark.Queries.text) Xmark.Queries.all in
  ignore (Partitioner.optimize repo queries);
  let pid = container_id repo "/site/people/person/@id" in
  let buyer = container_id repo "/site/closed_auctions/closed_auction/buyer/@person" in
  let shared =
    (Storage.Repository.container repo pid).Storage.Container.model_id
    = (Storage.Repository.container repo buyer).Storage.Container.model_id
  in
  Alcotest.(check bool) "partitioner shared the model" true shared;
  let merge =
    Physical.merge_join (Physical.cont_scan repo pid) ~lcol:0
      (Physical.cont_scan repo buyer) ~rcol:0
  in
  let str_key = function
    | Executor.Cval { cont; code } -> Compress.Codec.decompress cont.Storage.Container.model code
    | _ -> ""
  in
  let hash =
    Physical.hash_join ~key:str_key (Physical.cont_scan repo pid) ~lcol:0
      (Physical.cont_scan repo buyer) ~rcol:0
  in
  Alcotest.(check int) "merge join = hash join cardinality" (Physical.cardinality hash)
    (Physical.cardinality merge)

let suites =
  [
    ( "workload",
      [
        Alcotest.test_case "predicate extraction" `Quick test_workload_extraction;
        Alcotest.test_case "E/I/D matrices" `Quick test_eid_matrices;
      ] );
    ( "cost-model",
      [
        Alcotest.test_case "prefers enabling algorithms" `Quick test_cost_prefers_enabling_algorithm;
        Alcotest.test_case "numeric rejected on text" `Quick test_numeric_rejected_on_text;
      ] );
    ( "partitioner",
      [
        Alcotest.test_case "improves cost and co-locates joins" `Quick
          test_partitioner_improves_and_colocates;
        Alcotest.test_case "apply preserves container data" `Quick
          test_partitioner_apply_preserves_data;
        Alcotest.test_case "section 3.3 example shape" `Quick test_partitioner_section33_example;
      ] );
    ( "optimizer",
      [
        Alcotest.test_case "explain Q1 pushdown" `Quick test_explain_q1;
        Alcotest.test_case "explain Q8 decorrelation" `Quick test_explain_q8_decorrelates;
        Alcotest.test_case "explain join keys vs partitioning" `Quick
          test_explain_join_on_codes_after_partitioning;
        Alcotest.test_case "explain Q9 hash join" `Quick test_explain_q9_join;
        Alcotest.test_case "explain block merge join" `Quick test_explain_block_join;
      ] );
    ( "physical-plans",
      [
        Alcotest.test_case "operators" `Quick test_physical_operators;
        Alcotest.test_case "fig. 5 Q9 plan" `Slow test_q9_plan_matches_naive_and_executor;
        Alcotest.test_case "compressed-domain merge join" `Slow test_merge_join_shared_model;
      ] );
  ]
