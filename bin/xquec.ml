(* Command-line interface to XQueC: compress / decompress / query /
   inspect, plus the synthetic document generators. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* Workload files come from all sorts of editors: tolerate a UTF-8 byte
   order mark and CRLF line endings. *)
let strip_bom s =
  if String.length s >= 3 && String.sub s 0 3 = "\xef\xbb\xbf" then
    String.sub s 3 (String.length s - 3)
  else s

let strip_cr line =
  let n = String.length line in
  if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line

let read_workload = function
  | None -> None
  | Some path ->
    (* one query per stanza; stanzas separated by lines containing ';;' *)
    let body = strip_bom (read_file path) in
    let stanzas =
      String.split_on_char '\n' body
      |> List.map strip_cr
      |> List.fold_left
           (fun (acc, cur) line ->
             if String.trim line = ";;" then (List.rev cur :: acc, [])
             else (acc, line :: cur))
           ([], [])
      |> fun (acc, cur) -> List.rev (List.rev cur :: acc)
    in
    let queries =
      List.filter_map
        (fun lines ->
          let q = String.trim (String.concat "\n" lines) in
          if q = "" then None else Some q)
        stanzas
    in
    if queries = [] then None else Some queries

(* --- telemetry options (shared by compress / query / explain) ------- *)

let stats_flag =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:"Collect telemetry and dump the metrics registry (counters, gauges, \
              histograms) to stderr when the command finishes.")

let trace_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:"Collect telemetry and write the recorded spans as chrome-trace JSON to \
              $(docv) (open in chrome://tracing or ui.perfetto.dev).")

let cache_mb =
  Arg.(
    value
    & opt (some int) None
    & info [ "cache-mb" ] ~docv:"MB"
        ~doc:"Byte budget of the shared buffer pool that caches decoded container \
              blocks, in MiB (default 64). 0 effectively disables caching: every \
              block access beyond the most recent one decodes again.")

let decode_domains =
  Arg.(
    value
    & opt (some int) None
    & info [ "decode-domains" ] ~docv:"N"
        ~doc:"Number of worker domains decoding container blocks in parallel. 0 forces \
              the sequential path (byte-identical to the pre-parallel engine); the \
              default is one worker per spare core, or \\$XQUEC_DECODE_DOMAINS when \
              set.")

let prefetch =
  Arg.(
    value
    & opt (some int) None
    & info [ "prefetch" ] ~docv:"N"
        ~doc:"Sequential read-ahead depth: when consecutive blocks of one container are \
              touched in order, decode the next $(docv) blocks in the background (on the \
              decode pool) before the cursor reaches them. 0 disables read-ahead. \
              Default 0 for one-shot commands, 4 under $(b,serve).")

let query_log =
  Arg.(
    value
    & opt (some string) None
    & info [ "query-log" ] ~docv:"FILE"
        ~doc:"Append one JSONL record per query to $(docv): query hash, plan shape, \
              wall/CPU time, per-operator cardinalities, bytes decoded vs. pruned, \
              buffer-pool and decode-pool activity, GC allocation (schema in \
              docs/OBSERVABILITY.md). \\$XQUEC_QUERY_LOG sets a process-wide default.")

let buffer_pool_summary () =
  let s = Storage.Buffer_pool.snapshot () in
  let p = Storage.Domain_pool.snapshot () in
  Printf.sprintf
    "buffer pool: %d hits / %d misses / %d latch waits / %d evictions; %d blocks pruned; %d scan inserts; %d B decoded (payload %d B decoded / %d B pruned); %d B resident in %d blocks (budget %d B)\n\
     decode pool: %d domains; %d batches / %d tasks (%d inline); max queue depth %d; %.1f ms parallel-decode wall\n"
    s.Storage.Buffer_pool.s_hits s.Storage.Buffer_pool.s_misses
    s.Storage.Buffer_pool.s_latch_waits s.Storage.Buffer_pool.s_evictions
    s.Storage.Buffer_pool.s_blocks_skipped s.Storage.Buffer_pool.s_scan_inserts
    s.Storage.Buffer_pool.s_decoded_bytes s.Storage.Buffer_pool.s_payload_bytes
    s.Storage.Buffer_pool.s_skipped_bytes s.Storage.Buffer_pool.s_resident_bytes
    s.Storage.Buffer_pool.s_resident_blocks
    (Storage.Buffer_pool.budget_bytes ())
    p.Storage.Domain_pool.p_domains p.Storage.Domain_pool.p_batches
    p.Storage.Domain_pool.p_tasks p.Storage.Domain_pool.p_inline
    p.Storage.Domain_pool.p_max_queue_depth p.Storage.Domain_pool.p_wall_ms
  ^ (let j = Xquec_core.Executor.join_stats () in
     if j.Xquec_core.Executor.j_block_joins = 0 then ""
     else
       Printf.sprintf
         "block join: %d joins; %d blocks probed / %d skipped from headers (%d B never decoded)\n"
         j.Xquec_core.Executor.j_block_joins j.Xquec_core.Executor.j_blocks_probed
         j.Xquec_core.Executor.j_blocks_skipped j.Xquec_core.Executor.j_skipped_bytes)
  ^
  (* container heat: the hottest containers by block touches *)
  let heat =
    Xquec_obs.Heat.snapshot ()
    |> List.filter (fun (h : Xquec_obs.Heat.stat) -> h.Xquec_obs.Heat.touches > 0)
    |> List.sort (fun (a : Xquec_obs.Heat.stat) b ->
           compare b.Xquec_obs.Heat.touches a.Xquec_obs.Heat.touches)
  in
  if heat = [] then ""
  else
    "container heat (top 5 by block touches):\n"
    ^ String.concat ""
        (List.filteri (fun i _ -> i < 5) heat
        |> List.map (fun (h : Xquec_obs.Heat.stat) ->
               Printf.sprintf
                 "  %-48s %d touches (%d decodes / %d hits); %d skipped; %d B decoded / %d B pruned\n"
                 h.Xquec_obs.Heat.label h.Xquec_obs.Heat.touches h.Xquec_obs.Heat.decodes
                 h.Xquec_obs.Heat.hits h.Xquec_obs.Heat.header_skips
                 h.Xquec_obs.Heat.bytes_decoded h.Xquec_obs.Heat.bytes_skipped))

let with_telemetry ~stats ~trace_out ?cache_mb ?decode_domains ?query_log f =
  if stats || trace_out <> None then Xquec_obs.set_enabled true;
  (match query_log with
  | Some file -> Xquec_obs.Query_log.set_path (Some file)
  | None -> ());
  (match cache_mb with
  | Some mb -> Storage.Buffer_pool.set_budget ~bytes:(mb * 1024 * 1024)
  | None -> ());
  (match decode_domains with
  | Some n -> Storage.Domain_pool.set_size n
  | None -> ());
  let finish () =
    (match trace_out with
    | Some path ->
      Xquec_obs.Trace.export path;
      Fmt.epr "wrote %d spans to %s@." (List.length (Xquec_obs.Trace.spans ())) path
    | None -> ());
    if stats then begin
      prerr_string (Xquec_obs.Metrics.dump_text ());
      prerr_string (buffer_pool_summary ())
    end
  in
  Fun.protect ~finally:finish f

(* A repository argument that also accepts raw XML: sniff the first
   non-whitespace byte — documents start with '<', serialized
   repositories never do. Returns the engine plus the input's format
   string ("v4" from the XQC magic, "v1" for magicless repositories,
   "xml" for a document compressed on the fly) for /healthz. *)
let load_engine_any_with_format path =
  let data = strip_bom (read_file path) in
  let rec first_nonspace i =
    if i >= String.length data then None
    else
      match data.[i] with
      | ' ' | '\t' | '\r' | '\n' -> first_nonspace (i + 1)
      | c -> Some c
  in
  if first_nonspace 0 = Some '<' then
    (Xquec_core.Engine.load ~name:(Filename.basename path) data, "xml")
  else if String.length data >= 4 && String.sub data 0 3 = "XQC" then
    (Xquec_core.Engine.restore data, Printf.sprintf "v%d" (Char.code data.[3]))
  else (Xquec_core.Engine.restore data, "v1")

let load_engine_any path = fst (load_engine_any_with_format path)

(* --- compress ------------------------------------------------------- *)

let compress_cmd =
  let input = Arg.(required & pos 0 (some file) None & info [] ~docv:"INPUT.xml") in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"OUT.xqc")
  in
  let workload =
    Arg.(
      value
      & opt (some file) None
      & info [ "w"; "workload" ] ~docv:"QUERIES"
          ~doc:"File of XQuery queries (separated by lines containing ';;') used to choose \
                the compression configuration (paper §3).")
  in
  let format =
    let format_conv =
      Arg.enum [ ("v4", (`V4 : Storage.Repository.format)); ("v3", `V3) ]
    in
    Arg.(
      value
      & opt (some format_conv) None
      & info [ "format" ] ~docv:"FORMAT"
          ~doc:"Repository format to write: $(b,v4) (succinct structure tree, the default) \
                or $(b,v3) (packed record tree — the kill switch, also reachable via \
                XQUEC_FORMAT=v3).")
  in
  let adaptive_blocks =
    Arg.(
      value & flag
      & info [ "adaptive-blocks" ]
          ~doc:"Per-container block sizing from the declared workload (requires \
                $(b,--workload)): containers dominated by wildcard scans get larger \
                blocks, containers dominated by equality point lookups get smaller \
                ones. Without this flag every container keeps the global block size.")
  in
  let blocks_from =
    Arg.(
      value
      & opt (some file) None
      & info [ "blocks-from" ] ~docv:"PROFILE.json"
          ~doc:"Seed per-container block sizes from a committed $(b,xquec profile \
                --json) report: its block-size recommendations are applied to the \
                freshly built repository before it is written.")
  in
  let run input output workload format adaptive_blocks blocks_from stats trace_out =
    with_telemetry ~stats ~trace_out @@ fun () ->
    Option.iter Storage.Repository.set_default_format format;
    let xml = read_file input in
    let name = Filename.basename input in
    let workload_queries = read_workload workload in
    let engine = Xquec_core.Engine.load ~name ?workload:workload_queries xml in
    let repo = Xquec_core.Engine.repo engine in
    (if adaptive_blocks then
       match workload_queries with
       | None ->
         Fmt.epr "xquec compress: --adaptive-blocks needs --workload; ignoring@."
       | Some queries ->
         let wl = Xquec_core.Workload.of_query_strings repo queries in
         List.iter
           (fun (path, before, after) ->
             Fmt.pr "adaptive blocks: %s %d -> %d@." path before after)
           (Xquec_core.Partitioner.size_blocks repo wl));
    (match blocks_from with
    | None -> ()
    | Some file ->
      let report = Xquec_obs.Json.parse (strip_bom (read_file file)) in
      let recs = Xquec_obs.Profile.recommendations_of_report report in
      let targets = Storage.Compactor.plan repo recs in
      List.iter
        (fun (r : Storage.Compactor.result) ->
          Fmt.pr "profile blocks: %s %d -> %d (%d -> %d blocks)@."
            r.Storage.Compactor.c_path r.Storage.Compactor.c_block_size_before
            r.Storage.Compactor.c_block_size_after r.Storage.Compactor.c_blocks_before
            r.Storage.Compactor.c_blocks_after)
        (Storage.Compactor.compact repo ~targets));
    let out = Option.value ~default:(input ^ ".xqc") output in
    write_file out (Xquec_core.Engine.save engine);
    let sz = Xquec_core.Engine.size_breakdown engine in
    Fmt.pr "%s: %d bytes -> %d bytes (compression factor %.2f%%)@." input
      (String.length xml) sz.Storage.Repository.total_bytes
      (100.0 *. Xquec_core.Engine.compression_factor engine);
    (match engine.Xquec_core.Engine.partitioning with
    | Some r ->
      Fmt.pr "workload-driven configuration: cost %.0f -> %.0f over %d sets@."
        r.Xquec_core.Partitioner.initial_cost r.Xquec_core.Partitioner.final_cost
        (List.length r.Xquec_core.Partitioner.configuration.Xquec_core.Cost_model.sets)
    | None -> ());
    Fmt.pr "wrote %s@." out
  in
  Cmd.v (Cmd.info "compress" ~doc:"Compress an XML document into a queryable repository")
    Term.(
      const run $ input $ output $ workload $ format $ adaptive_blocks $ blocks_from
      $ stats_flag $ trace_out)

(* --- decompress ----------------------------------------------------- *)

let decompress_cmd =
  let input = Arg.(required & pos 0 (some file) None & info [] ~docv:"INPUT.xqc") in
  let output = Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"OUT.xml") in
  let run input output =
    let engine = Xquec_core.Engine.restore (read_file input) in
    let xml = Xquec_core.Engine.to_xml engine in
    match output with
    | Some out ->
      write_file out xml;
      Fmt.pr "wrote %s (%d bytes)@." out (String.length xml)
    | None -> print_string xml
  in
  Cmd.v (Cmd.info "decompress" ~doc:"Reconstruct the XML document from a repository")
    Term.(const run $ input $ output)

(* --- query ---------------------------------------------------------- *)

let query_cmd =
  let input = Arg.(required & pos 0 (some file) None & info [] ~docv:"INPUT.xqc") in
  let query = Arg.(required & pos 1 (some string) None & info [] ~docv:"XQUERY") in
  let timing = Arg.(value & flag & info [ "t"; "time" ] ~doc:"Print the evaluation time.") in
  let run input query timing stats trace_out cache_mb decode_domains query_log prefetch =
    with_telemetry ~stats ~trace_out ?cache_mb ?decode_domains ?query_log @@ fun () ->
    Option.iter Storage.Container.set_prefetch_depth prefetch;
    let engine = load_engine_any input in
    let t0 = Unix.gettimeofday () in
    let result, _prof = Xquec_core.Engine.query_serialized_logged engine query in
    let dt = Unix.gettimeofday () -. t0 in
    print_endline result;
    if timing then Fmt.epr "query evaluated in %.1f ms@." (1000.0 *. dt)
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:"Evaluate an XQuery expression over a compressed repository (results are \
             decompressed only for output)")
    Term.(
      const run $ input $ query $ timing $ stats_flag $ trace_out $ cache_mb
      $ decode_domains $ query_log $ prefetch)

(* --- explain -------------------------------------------------------- *)

let explain_cmd =
  let input =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"INPUT"
         (* .xqc repository or raw .xml *))
  in
  let query = Arg.(required & pos 1 (some string) None & info [] ~docv:"XQUERY") in
  let plan_only =
    Arg.(
      value & flag
      & info [ "plan-only" ]
          ~doc:"Only analyze the strategy (the classic EXPLAIN); do not evaluate the \
                query or print the profiled plan.")
  in
  let run input query plan_only stats trace_out cache_mb decode_domains query_log =
    with_telemetry ~stats ~trace_out ?cache_mb ?decode_domains ?query_log @@ fun () ->
    let engine = load_engine_any input in
    let repo = Xquec_core.Engine.repo engine in
    if plan_only then print_endline (Xquec_core.Optimizer.explain_string repo query)
    else begin
      (* Route through the logged evaluation path so `explain --query-log`
         appends the same one-record-per-query accounting as `query`. *)
      let _out, prof = Xquec_core.Engine.query_serialized_logged engine query in
      print_string (Xquec_core.Optimizer.render_profiled repo query prof)
    end
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"EXPLAIN ANALYZE a query: the evaluation strategy (summary accesses, \
             compressed-domain pushdowns, join methods, decorrelations) plus the \
             profiled physical plan with per-operator wall time, cardinalities, \
             compressed vs. decompressed predicate counts, and per-operator buffer-pool \
             activity (hits, misses, latch waits, pruned blocks, bytes decoded). INPUT \
             may be a compressed repository or a raw XML document.")
    Term.(
      const run $ input $ query $ plan_only $ stats_flag $ trace_out $ cache_mb
      $ decode_domains $ query_log)

(* --- serve ----------------------------------------------------------- *)

let serve_cmd =
  let input = Arg.(required & pos 0 (some file) None & info [] ~docv:"INPUT") in
  let port =
    Arg.(
      value & opt int 9464
      & info [ "p"; "port" ] ~docv:"PORT"
          ~doc:"TCP port to listen on (0 picks a free port; the bound port is printed \
                on startup).")
  in
  let host =
    Arg.(
      value
      & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"ADDR" ~doc:"Address to bind (default loopback only).")
  in
  let serve_workers =
    Arg.(
      value
      & opt (some int) None
      & info [ "serve-workers" ] ~docv:"N"
          ~doc:"Connection-handling worker domains. Default: available cores minus one \
                (at least 1). 0 reverts to the sequential accept loop (one request at \
                a time on the accept domain).")
  in
  let max_inflight =
    Arg.(
      value & opt int 64
      & info [ "max-inflight" ] ~docv:"N"
          ~doc:"Admission gate: connections beyond N accepted-but-unfinished requests \
                are shed immediately with 503 and Retry-After. 0 = unlimited.")
  in
  let query_wall_ms =
    Arg.(
      value & opt float 0.0
      & info [ "query-wall-ms" ] ~docv:"MS"
          ~doc:"Per-query wall-clock budget in milliseconds; a query still decoding \
                blocks past it is terminated with 408 and a structured error body. \
                0 = unlimited.")
  in
  let query_decode_mb =
    Arg.(
      value & opt float 0.0
      & info [ "query-decode-mb" ] ~docv:"MB"
          ~doc:"Per-query decoded-bytes budget in MiB (decompressed block bytes \
                charged as they leave the codecs); exceeded queries are terminated \
                with 408. 0 = unlimited.")
  in
  let plan_cache =
    Arg.(
      value & opt int 128
      & info [ "plan-cache" ] ~docv:"N"
          ~doc:"LRU plan-cache capacity in entries, keyed by the MD5 hash of the query \
                text; repeated queries skip the parse. 0 disables the cache.")
  in
  let watch_window =
    Arg.(
      value & opt float 10.0
      & info [ "watch-window" ] ~docv:"SECONDS"
          ~doc:"Drift-watchdog window length in seconds: the streaming workload \
                fingerprint rolls over a ring of recent windows, and the alert rules \
                are evaluated once per window. 0 disables the watchdog.")
  in
  let drift_alert =
    Arg.(
      value & opt float 0.3
      & info [ "drift-alert" ] ~docv:"SCORE"
          ~doc:"Total-variation drift threshold (0..1) for the $(b,drift_sustained) \
                alert: fires after the observed mix stays further than this from the \
                declared workload for 3 consecutive windows.")
  in
  let alerts_log =
    Arg.(
      value
      & opt (some string) None
      & info [ "alerts-log" ] ~docv:"FILE"
          ~doc:"Append one JSON line per alert firing/resolving transition to FILE \
                (created if missing).")
  in
  let serve_workload =
    Arg.(
      value
      & opt (some file) None
      & info [ "w"; "workload" ] ~docv:"QUERIES"
          ~doc:"File of XQuery queries (separated by lines containing ';;') declaring \
                the workload the repository was tuned for; the watchdog scores live \
                drift against its fingerprint. Without it the watchdog still tracks \
                the rolling fingerprint but computes no drift.")
  in
  let no_auto_compact =
    Arg.(
      value & flag
      & info [ "no-auto-compact" ]
          ~doc:"Do not start a background re-compaction when the \
                $(b,drift_sustained) alert fires. By default a sustained drift \
                turns the live fingerprint into block-size advice and re-blocks \
                the affected containers online (copy-on-write swap; queries keep \
                flowing). GET /compact reports either way.")
  in
  let run input port host serve_workers max_inflight query_wall_ms query_decode_mb
      plan_cache watch_window drift_alert alerts_log serve_workload no_auto_compact
      cache_mb decode_domains query_log prefetch =
    with_telemetry ~stats:false ~trace_out:None ?cache_mb ?decode_domains ?query_log
    @@ fun () ->
    (* metrics + spans always on under serve: the endpoint exists to be scraped *)
    Xquec_obs.set_enabled true;
    (* read-ahead on by default for a long-lived server; --prefetch 0 disables *)
    Storage.Container.set_prefetch_depth (Option.value ~default:4 prefetch);
    let workers =
      match serve_workers with
      | Some n -> max 0 n
      | None -> max 1 (Domain.recommended_domain_count () - 1)
    in
    Xquec_core.Plan_cache.set_capacity plan_cache;
    Xquec_core.Serve.set_budgets ~wall_ms:query_wall_ms
      ~decode_bytes:(int_of_float (query_decode_mb *. 1024.0 *. 1024.0))
      ();
    let engine, format = load_engine_any_with_format input in
    Xquec_core.Serve.set_server_info ~format ();
    Xquec_core.Serve.set_auto_compact
      (if no_auto_compact then None else Some (Xquec_core.Engine.repo engine));
    (* declared build-time mix: re-analyze the workload queries against
       the served repository (the on-disk format does not retain the
       workload the repository was compressed under) *)
    let baseline =
      match read_workload serve_workload with
      | Some queries ->
        let repo = Xquec_core.Engine.repo engine in
        Some
          (Xquec_core.Workload.fingerprint repo
             (Xquec_core.Workload.of_query_strings repo queries))
      | None -> None
    in
    let watch_on = watch_window > 0.0 in
    if watch_on then begin
      Xquec_obs.Watch.configure ~window_seconds:watch_window ();
      Xquec_obs.Watch.set_baseline baseline;
      Xquec_obs.Watch.set_enabled true;
      Xquec_obs.Alert.set_rules
        (Xquec_core.Serve.default_rules ~drift_threshold:drift_alert ());
      Xquec_obs.Alert.set_log alerts_log;
      Xquec_core.Serve.start_watchdog ~period:watch_window ()
    end;
    let server =
      Xquec_obs.Expo.start ~host ~port ~workers ~max_inflight
        ~extra:(Xquec_core.Serve.handler engine)
        ~collect:Xquec_core.Serve.publish_pool_metrics ()
    in
    Fmt.pr
      "xquec serve: listening on http://%s:%d (endpoints: /metrics /healthz /query /stats \
       /heat /watch /alerts /compact)@."
      host (Xquec_obs.Expo.port server);
    Fmt.pr
      "xquec serve: %d worker(s), max-inflight %s, plan cache %s, budgets wall %s decode %s@."
      workers
      (if max_inflight > 0 then string_of_int max_inflight else "unlimited")
      (if plan_cache > 0 then Fmt.str "%d entries" plan_cache else "off")
      (if query_wall_ms > 0.0 then Fmt.str "%.0fms" query_wall_ms else "off")
      (if query_decode_mb > 0.0 then Fmt.str "%.1fMiB" query_decode_mb else "off");
    if watch_on then
      Fmt.pr "xquec serve: watchdog window %.1fs, drift alert > %.2f%s, baseline %s@."
        watch_window drift_alert
        (match alerts_log with Some f -> Fmt.str ", alert log %s" f | None -> "")
        (if baseline <> None then "declared" else "none");
    Xquec_obs.Expo.wait server;
    if watch_on then Xquec_core.Serve.stop_watchdog ()
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve a repository over HTTP: POST /query (or GET /query?q=...) evaluates \
             XQuery; GET /metrics exposes the counters, gauges, and histograms in \
             Prometheus text format (buffer-pool, decode-pool, per-container, \
             admission, plan-cache, watchdog, and per-query series); GET /healthz \
             (readiness JSON) and GET /stats (JSON) for probes and debugging; GET /watch \
             and GET /alerts surface the streaming drift watchdog. Connections fan out \
             onto a worker-domain pool with accept-time admission control, per-query \
             wall/decode budgets, and an LRU plan cache; GET /compact reports the \
             background compactor that re-blocks drifted containers online — see \
             docs/SERVING.md for the operator guide.")
    Term.(
      const run $ input $ port $ host $ serve_workers $ max_inflight $ query_wall_ms
      $ query_decode_mb $ plan_cache $ watch_window $ drift_alert $ alerts_log
      $ serve_workload $ no_auto_compact $ cache_mb $ decode_domains $ query_log
      $ prefetch)

(* --- compact ---------------------------------------------------------- *)

let compact_cmd =
  let input = Arg.(required & pos 0 (some file) None & info [] ~docv:"INPUT.xqc") in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"OUT.xqc"
          ~doc:"Where to write the re-blocked repository (default: rewrite INPUT in \
                place).")
  in
  let profile =
    Arg.(
      value
      & opt (some file) None
      & info [ "profile" ] ~docv:"PROFILE.json"
          ~doc:"An $(b,xquec profile --json) report: its block-size recommendations \
                pick the containers and target sizes.")
  in
  let container =
    Arg.(
      value
      & opt (some string) None
      & info [ "container" ] ~docv:"PATH"
          ~doc:"Re-block only the container with this assignment path (requires \
                $(b,--block-size)).")
  in
  let block_size =
    Arg.(
      value
      & opt (some int) None
      & info [ "block-size" ] ~docv:"BYTES"
          ~doc:"Target block size in plain-text bytes (clamped to the supported \
                range). Alone it re-blocks every non-empty container; with \
                $(b,--container) only that one.")
  in
  let run input output profile container block_size stats trace_out =
    with_telemetry ~stats ~trace_out @@ fun () ->
    let engine, format = load_engine_any_with_format input in
    let repo = Xquec_core.Engine.repo engine in
    let targets =
      match (profile, (container, block_size)) with
      | Some _, (Some _, _ | _, Some _) ->
        Fmt.epr "xquec compact: --profile cannot be combined with --container / \
                 --block-size@.";
        exit 2
      | Some file, (None, None) ->
        let report = Xquec_obs.Json.parse (strip_bom (read_file file)) in
        Storage.Compactor.plan repo (Xquec_obs.Profile.recommendations_of_report report)
      | None, (Some path, Some size) -> (
        match Storage.Repository.find_container_by_path repo path with
        | Some c -> [ (c.Storage.Container.id, size) ]
        | None ->
          Fmt.epr "xquec compact: no container with path %s@." path;
          exit 1)
      | None, (Some _, None) ->
        Fmt.epr "xquec compact: --container requires --block-size@.";
        exit 2
      | None, (None, Some size) ->
        Array.to_list repo.Storage.Repository.containers
        |> List.filter_map (fun (c : Storage.Container.t) ->
               if c.Storage.Container.n_records = 0 then None
               else Some (c.Storage.Container.id, size))
      | None, (None, None) ->
        Fmt.epr "xquec compact: nothing to do — pass --profile, or --block-size \
                 (optionally with --container)@.";
        exit 2
    in
    let results = Storage.Compactor.compact repo ~targets in
    if results = [] then Fmt.pr "nothing to re-block (all targets were no-ops)@."
    else
      List.iter
        (fun (r : Storage.Compactor.result) ->
          Fmt.pr "%-48s %7d B -> %7d B  (%d -> %d blocks, %d records, epoch %d, %.1f ms)@."
            r.Storage.Compactor.c_path r.Storage.Compactor.c_block_size_before
            r.Storage.Compactor.c_block_size_after r.Storage.Compactor.c_blocks_before
            r.Storage.Compactor.c_blocks_after r.Storage.Compactor.c_records
            r.Storage.Compactor.c_epoch r.Storage.Compactor.c_wall_ms)
        results;
    (* keep the input's on-disk format: a v3 repository stays v3 *)
    if format = "v3" then Storage.Repository.set_default_format `V3;
    let out = Option.value ~default:input output in
    write_file out (Xquec_core.Engine.save engine);
    Fmt.pr "wrote %s@." out
  in
  Cmd.v
    (Cmd.info "compact"
       ~doc:"Re-block a repository's value containers toward profiled block sizes: \
             either apply the recommendations of an $(b,xquec profile --json) report \
             (--profile) or force an explicit size (--block-size, optionally scoped by \
             --container). Record order, compression algorithms and query results are \
             unchanged — only the block boundaries (and so header pruning granularity \
             and decode batch size) move.")
    Term.(
      const run $ input $ output $ profile $ container $ block_size $ stats_flag
      $ trace_out)

(* --- profile --------------------------------------------------------- *)

let profile_cmd =
  let logs = Arg.(non_empty & pos_all file [] & info [] ~docv:"QUERY_LOG.jsonl") in
  let baseline =
    Arg.(
      value
      & opt (some file) None
      & info [ "baseline" ] ~docv:"LOG"
          ~doc:"A second query log to compare against: the report gains a drift score \
                (total variation distance between the two workload fingerprints, 0 = \
                identical mix, 1 = disjoint).")
  in
  let heat =
    Arg.(
      value
      & opt (some file) None
      & info [ "heat" ] ~docv:"FILE"
          ~doc:"A heat snapshot (the GET /heat payload) joined into the block-size \
                recommendations: sequential-vs-random access patterns refine the \
                per-container advice.")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON instead of a table.")
  in
  let run logs baseline heat json =
    let records = List.concat_map Xquec_obs.Profile.load_jsonl logs in
    if records = [] then begin
      Fmt.epr "xquec profile: no query-log records in %s@." (String.concat ", " logs);
      exit 1
    end;
    let fp = Xquec_obs.Profile.of_records records in
    let baseline =
      Option.map
        (fun file -> Xquec_obs.Profile.of_records (Xquec_obs.Profile.load_jsonl file))
        baseline
    in
    let heat =
      Option.map (fun file -> Xquec_obs.Json.parse (strip_bom (read_file file))) heat
    in
    if json then
      print_endline (Xquec_obs.Json.to_string (Xquec_obs.Profile.report_json ?baseline ?heat fp))
    else print_string (Xquec_obs.Profile.render ?baseline ?heat fp)
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Aggregate one or more JSONL query logs (from --query-log / \
             \\$XQUEC_QUERY_LOG) into a workload fingerprint: per-container predicate \
             mix (eq/range/wild/exists/join), observed selectivity, decode volume, and \
             per-container block-size recommendations. With --baseline, also a drift \
             score between the two workloads; with --heat, access patterns from a heat \
             snapshot refine the recommendations.")
    Term.(const run $ logs $ baseline $ heat $ json)

(* --- stats ---------------------------------------------------------- *)

let stats_cmd =
  let input = Arg.(required & pos 0 (some file) None & info [] ~docv:"INPUT.xqc") in
  let run input =
    let data = read_file input in
    let engine = Xquec_core.Engine.restore data in
    let repo = Xquec_core.Engine.repo engine in
    let sz = Xquec_core.Engine.size_breakdown engine in
    let format =
      if String.length data >= 4 && String.sub data 0 3 = "XQC" then
        Printf.sprintf "v%d (magic XQC\\x%02x)" (Char.code data.[3]) (Char.code data.[3])
      else "v1 (no magic)"
    in
    Fmt.pr "source:              %s (%d bytes)@." repo.Storage.Repository.source_name
      repo.Storage.Repository.original_size;
    Fmt.pr "format:              %s@." format;
    Fmt.pr "compression factor:  %.2f%%@." (100.0 *. Xquec_core.Engine.compression_factor engine);
    Fmt.pr "structure tree:      %d bytes (%d nodes)@." sz.Storage.Repository.tree_bytes
      (Storage.Structure_tree.node_count repo.Storage.Repository.tree);
    Fmt.pr "value containers:    %d bytes (%d containers)@."
      sz.Storage.Repository.containers_bytes
      (Array.length repo.Storage.Repository.containers);
    Fmt.pr "source models:       %d bytes@." sz.Storage.Repository.models_bytes;
    Fmt.pr "structure summary:   %d bytes (%d paths)@." sz.Storage.Repository.summary_bytes
      (Storage.Summary.node_count repo.Storage.Repository.summary);
    Fmt.pr "nav directories:     %d bytes@." sz.Storage.Repository.index_bytes;
    Fmt.pr "name dictionary:     %d bytes (%d names, %d bits/code)@."
      sz.Storage.Repository.name_dict_bytes
      (Storage.Name_dict.size repo.Storage.Repository.dict)
      (Storage.Name_dict.bits_per_code repo.Storage.Repository.dict);
    Fmt.pr "containers by algorithm:@.";
    let by_alg = Hashtbl.create 8 in
    Array.iter
      (fun (c : Storage.Container.t) ->
        let k = Compress.Codec.algorithm_name c.Storage.Container.algorithm in
        Hashtbl.replace by_alg k (1 + Option.value ~default:0 (Hashtbl.find_opt by_alg k)))
      repo.Storage.Repository.containers;
    Hashtbl.iter (fun k v -> Fmt.pr "  %-10s %d@." k v) by_alg
  in
  Cmd.v (Cmd.info "stats" ~doc:"Show the storage breakdown of a repository")
    Term.(const run $ input)

(* --- generate ------------------------------------------------------- *)

let generate_cmd =
  let dataset =
    Arg.(
      value
      & opt (enum [ ("xmark", `Xmark); ("shakespeare", `Shak); ("course", `Course); ("baseball", `Base) ]) `Xmark
      & info [ "d"; "dataset" ] ~docv:"KIND")
  in
  let scale = Arg.(value & opt float 1.0 & info [ "s"; "scale" ] ~docv:"SCALE") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ]) in
  let output = Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"OUT.xml") in
  let run dataset scale seed output =
    let xml =
      match dataset with
      | `Xmark -> Xmark.Xmlgen.generate ~seed ~scale ()
      | `Shak -> Xmark.Datasets.shakespeare ~seed ~scale ()
      | `Course -> Xmark.Datasets.course ~seed ~scale ()
      | `Base -> Xmark.Datasets.baseball ~seed ~scale ()
    in
    write_file output xml;
    Fmt.pr "wrote %s (%d bytes)@." output (String.length xml)
  in
  Cmd.v (Cmd.info "generate" ~doc:"Generate a synthetic benchmark document")
    Term.(const run $ dataset $ scale $ seed $ output)

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group ~default
          (Cmd.info "xquec" ~version:"1.0.0"
             ~doc:"XQueC: an XQuery processor and compressor (EDBT 2004 reproduction)")
          [
            compress_cmd; decompress_cmd; query_cmd; explain_cmd; stats_cmd; serve_cmd;
            compact_cmd; profile_cmd; generate_cmd;
          ]))
