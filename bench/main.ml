(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§5), plus the §2.2 / §3.3 numbers quoted in the text and
   a set of design-choice ablations.

     dune exec bench/main.exe                 -- run everything (modest sizes)
     dune exec bench/main.exe -- fig7         -- run one experiment
     dune exec bench/main.exe -- --scale 9 fig7   -- the paper's 11 MB setting

   Absolute numbers differ from the paper (different machine, language and
   substrate); EXPERIMENTS.md records the shape comparison. *)

let scale = ref 2.0
let fig6_scales = ref [ 0.25; 0.5; 1.0; 2.0; 4.0 ]

(* ------------------------------------------------------------------ *)
(* Timing helpers                                                      *)
(* ------------------------------------------------------------------ *)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, 1000.0 *. (Unix.gettimeofday () -. t0))

(* median of a few runs; one warmup *)
let time_median ?(runs = 3) f =
  ignore (f ());
  let samples = List.init runs (fun _ -> snd (time f)) in
  List.nth (List.sort compare samples) (runs / 2)

(* Bechamel measurement for sub-millisecond operations: one Test.make per
   query, measured with the monotonic clock. *)
let bechamel_ms (tests : (string * (unit -> unit)) list) : (string * float) list =
  let open Bechamel in
  let open Toolkit in
  let tests = List.map (fun (name, f) -> Test.make ~name (Staged.stage f)) tests in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.3) ~stabilize:false () in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"" ~fmt:"%s%s" tests) in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.fold
    (fun name ols acc ->
      match Analyze.OLS.estimates ols with
      | Some [ ns ] -> (name, ns /. 1e6) :: acc
      | _ -> acc)
    results []

let header title = Fmt.pr "@.=== %s ===@." title
let rule () = Fmt.pr "%s@." (String.make 78 '-')

(* ------------------------------------------------------------------ *)
(* Machine-readable results                                            *)
(* ------------------------------------------------------------------ *)

(* Every experiment records its headline numbers as it prints them; the
   driver writes the collected datapoints to BENCH_results.json
   (override with --json FILE, disable with --no-json) so runs can be
   diffed and plotted without scraping the textual report. *)

let json_out = ref (Some "BENCH_results.json")
let results : (string * string * Xquec_obs.Json.t) list ref = ref []
let num x = Xquec_obs.Json.Num x
let str s = Xquec_obs.Json.Str s
let obj fields = Xquec_obs.Json.Obj fields
let record ~exp key v = results := (exp, key, v) :: !results

(* group by experiment, preserving first-occurrence order; a key recorded
   several times (one per table row) becomes a JSON array *)
let results_json () =
  let recs = List.rev !results in
  let order key_of =
    List.fold_left (fun acc r -> if List.mem (key_of r) acc then acc else acc @ [ key_of r ]) []
  in
  let group exp =
    let entries = List.filter_map (fun (e, k, v) -> if e = exp then Some (k, v) else None) recs in
    obj
      (List.map
         (fun k ->
           match List.filter_map (fun (k', v) -> if k' = k then Some v else None) entries with
           | [ v ] -> (k, v)
           | vs -> (k, Xquec_obs.Json.List vs))
         (order fst entries))
  in
  obj
    [
      ("harness", str "xquec-bench");
      ("xmark_scale", num !scale);
      ("experiments", obj (List.map (fun e -> (e, group e)) (order (fun (e, _, _) -> e) recs)));
    ]

(* ------------------------------------------------------------------ *)
(* Shared fixtures                                                     *)
(* ------------------------------------------------------------------ *)

let corpus = lazy (Xmark.Datasets.real_life_corpus ())

let xmark_doc = lazy (Xmark.Xmlgen.generate ~scale:!scale ())

let xmark_engine =
  lazy
    (let xml = Lazy.force xmark_doc in
     let workload = List.map (fun q -> q.Xmark.Queries.text) Xmark.Queries.all in
     let (engine, ms) =
       time (fun () -> Xquec_core.Engine.load ~name:"auction.xml" ~workload xml)
     in
     Fmt.pr "[setup] XMark document %d KB compressed in %.1f s (CF %.1f%%)@."
       (String.length xml / 1024) (ms /. 1000.0)
       (100.0 *. Xquec_core.Engine.compression_factor engine);
     engine)

let xmark_dom = lazy (Xmlkit.Parser.parse_string (Lazy.force xmark_doc))

(* ------------------------------------------------------------------ *)
(* Table 1: data sets                                                  *)
(* ------------------------------------------------------------------ *)

let table1 () =
  header "Table 1: data sets used in the experiments";
  Fmt.pr "%-20s %9s %9s %8s %7s %6s %10s@." "dataset" "size(KB)" "elements" "attrs"
    "depth" "tags" "text share";
  rule ();
  let row name xml =
    let st = Xmlkit.Stats.of_document (Xmlkit.Parser.parse_string xml) in
    record ~exp:"table1" "dataset"
      (obj
         [
           ("name", str name);
           ("size_kb", num (float_of_int (String.length xml / 1024)));
           ("elements", num (float_of_int st.Xmlkit.Stats.elements));
           ("attributes", num (float_of_int st.Xmlkit.Stats.attributes));
           ("max_depth", num (float_of_int st.Xmlkit.Stats.max_depth));
           ("distinct_tags", num (float_of_int st.Xmlkit.Stats.distinct_tags));
           ("text_share", num (Xmlkit.Stats.value_share st));
         ]);
    Fmt.pr "%-20s %9d %9d %8d %7d %6d %9.1f%%@." name
      (String.length xml / 1024)
      st.Xmlkit.Stats.elements st.Xmlkit.Stats.attributes st.Xmlkit.Stats.max_depth
      st.Xmlkit.Stats.distinct_tags
      (100.0 *. Xmlkit.Stats.value_share st)
  in
  List.iter (fun (d : Xmark.Datasets.dataset) -> row d.Xmark.Datasets.name d.Xmark.Datasets.xml)
    (Lazy.force corpus);
  row (Printf.sprintf "xmark (scale %.2g)" !scale) (Lazy.force xmark_doc)

(* ------------------------------------------------------------------ *)
(* Fig. 6: compression factors                                         *)
(* ------------------------------------------------------------------ *)

let cf_row ~exp name xml =
  let xm = Baselines.Xmill.compression_factor (Baselines.Xmill.compress xml) in
  let xg = Baselines.Xgrind.compression_factor (Baselines.Xgrind.compress xml) in
  let xp = Baselines.Xpress.compression_factor (Baselines.Xpress.compress xml) in
  let repo = Xquec_core.Loader.load ~name xml in
  let xq = Storage.Repository.compression_factor repo in
  (* Tree-encoding deltas: how much the succinct (v4) structure tree
     saves over the packed delta+varint (v3) and the plain-varint
     legacy (v2) encodings, expressed as the change each makes to the
     compression factor. CF is the saved fraction (1 - compressed /
     original), so a fatter tree lowers it. *)
  let sb = Storage.Repository.size_breakdown repo in
  let cf_with tree_bytes =
    xq
    -. float_of_int (tree_bytes - sb.Storage.Repository.tree_bytes)
       /. float_of_int (String.length xml)
  in
  let xq_packed_tree = cf_with sb.Storage.Repository.tree_packed_bytes in
  let xq_legacy_tree = cf_with sb.Storage.Repository.tree_legacy_bytes in
  record ~exp "row"
    (obj
       [ ("name", str name); ("xmill", num xm); ("xgrind", num xg); ("xpress", num xp);
         ("xquec", num xq);
         ("tree_succinct_bytes", num (float_of_int sb.Storage.Repository.tree_bytes));
         ("tree_packed_bytes", num (float_of_int sb.Storage.Repository.tree_packed_bytes));
         ("tree_legacy_bytes", num (float_of_int sb.Storage.Repository.tree_legacy_bytes));
         ("xquec_cf_packed_tree", num xq_packed_tree);
         ("xquec_cf_legacy_tree", num xq_legacy_tree) ]);
  Fmt.pr "%-22s %8.1f%% %8.1f%% %8.1f%% %8.1f%%@." name (100. *. xm) (100. *. xg)
    (100. *. xp) (100. *. xq);
  (xm, xg, xp, xq)

let fig6_left () =
  header "Fig. 6 (left): average compression factor, real-life corpus";
  Fmt.pr "%-22s %9s %9s %9s %9s@." "dataset" "XMill" "XGrind" "XPRESS" "XQueC";
  rule ();
  let rows =
    List.map
      (fun (d : Xmark.Datasets.dataset) ->
        cf_row ~exp:"fig6_left" d.Xmark.Datasets.name d.Xmark.Datasets.xml)
      (Lazy.force corpus)
  in
  let n = float_of_int (List.length rows) in
  let avg f = 100.0 *. List.fold_left (fun a r -> a +. f r) 0.0 rows /. n in
  rule ();
  record ~exp:"fig6_left" "average"
    (obj
       [
         ("xmill", num (avg (fun (a, _, _, _) -> a) /. 100.0));
         ("xgrind", num (avg (fun (_, b, _, _) -> b) /. 100.0));
         ("xpress", num (avg (fun (_, _, c, _) -> c) /. 100.0));
         ("xquec", num (avg (fun (_, _, _, d) -> d) /. 100.0));
       ]);
  Fmt.pr "%-22s %8.1f%% %8.1f%% %8.1f%% %8.1f%%@." "average"
    (avg (fun (a, _, _, _) -> a))
    (avg (fun (_, b, _, _) -> b))
    (avg (fun (_, _, c, _) -> c))
    (avg (fun (_, _, _, d) -> d))

let fig6_right () =
  header "Fig. 6 (right): compression factor vs XMark document size";
  Fmt.pr "%-22s %9s %9s %9s %9s@." "document" "XMill" "XGrind" "XPRESS" "XQueC";
  rule ();
  List.iter
    (fun s ->
      let xml = Xmark.Xmlgen.generate ~scale:s () in
      ignore (cf_row ~exp:"fig6_right" (Printf.sprintf "xmark %d KB" (String.length xml / 1024)) xml))
    !fig6_scales

(* ------------------------------------------------------------------ *)
(* Fig. 7: query execution times                                       *)
(* ------------------------------------------------------------------ *)

let fig7 () =
  header "Fig. 7: QET, XQueC (compressed) vs Galax-like (uncompressed)";
  let engine = Lazy.force xmark_engine in
  let dom = Lazy.force xmark_dom in
  Fmt.pr "(XQueC times include decompressing and serializing the result, as in the paper)@.";
  Fmt.pr "%-5s %12s %12s %8s  %s@." "query" "XQueC(ms)" "Galax(ms)" "ratio" "note";
  rule ();
  let xquec_run (q : Xmark.Queries.query) () =
    ignore
      (Xquec_core.Executor.serialize
         (Xquec_core.Engine.repo engine)
         (Xquec_core.Engine.query engine q.Xmark.Queries.text))
  in
  (* every query gets a registered Bechamel Test.make; sub-millisecond
     ones take their estimate from it, slower ones from a wall-clock
     median *)
  let bech =
    bechamel_ms
      (List.map (fun id -> (id, xquec_run (Xmark.Queries.by_id id))) Xmark.Queries.fig7_ids)
  in
  List.iter
    (fun id ->
      let q = Xmark.Queries.by_id id in
      let ast = Xquery.Parser.parse q.Xmark.Queries.text in
      let xq_ms =
        match List.assoc_opt id bech with
        | Some ms when ms < 10.0 -> ms
        | _ -> time_median (fun () -> xquec_run q ())
      in
      let galax_ms =
        time_median ~runs:1 (fun () ->
            ignore (Baselines.Galax_like.run ~docs:[ ("auction.xml", dom) ] ast))
      in
      let note = match q.Xmark.Queries.adapted with Some _ -> "(adapted)" | None -> "" in
      record ~exp:"fig7" "query"
        (obj
           [ ("id", str id); ("xquec_ms", num xq_ms); ("galax_ms", num galax_ms);
             ("adapted", str note) ]);
      Fmt.pr "%-5s %12.2f %12.2f %7.1fx  %s@." id xq_ms galax_ms (galax_ms /. xq_ms) note)
    Xmark.Queries.fig7_ids

let q8_q9 () =
  header "Q8/Q9 (reported separately in the paper's text)";
  let engine = Lazy.force xmark_engine in
  let dom = Lazy.force xmark_dom in
  let run_xquec id =
    let q = Xmark.Queries.by_id id in
    time_median (fun () ->
        ignore
          (Xquec_core.Executor.serialize
             (Xquec_core.Engine.repo engine)
             (Xquec_core.Engine.query engine q.Xmark.Queries.text)))
  in
  let run_galax id =
    let q = Xmark.Queries.by_id id in
    let ast = Xquery.Parser.parse q.Xmark.Queries.text in
    time_median ~runs:1 (fun () ->
        ignore (Baselines.Galax_like.run ~docs:[ ("auction.xml", dom) ] ast))
  in
  Fmt.pr "%-5s %12s %12s@." "query" "XQueC(ms)" "Galax(ms)";
  rule ();
  let q8x = run_xquec "Q8" and q9x = run_xquec "Q9" in
  let q8g = run_galax "Q8" in
  record ~exp:"q8_q9" "q8" (obj [ ("xquec_ms", num q8x); ("galax_ms", num q8g) ]);
  Fmt.pr "%-5s %12.1f %12.1f@." "Q8" q8x q8g;
  if !scale <= 2.5 then begin
    let q9g = run_galax "Q9" in
    record ~exp:"q8_q9" "q9" (obj [ ("xquec_ms", num q9x); ("galax_ms", num q9g) ]);
    Fmt.pr "%-5s %12.1f %12.1f@." "Q9" q9x q9g
  end
  else begin
    Fmt.pr "%-5s %12.1f %12s@." "Q9" q9x "n/a (*)";
    Fmt.pr "(*) the naive engine's nested-loop Q9 is quadratic and does not complete in@.";
    Fmt.pr "    reasonable time at this scale - the paper could not measure Galax on Q9 either.@."
  end;
  let repo = Xquec_core.Engine.repo engine in
  let plan_ms = time_median (fun () -> ignore (Xquec_core.Plans.q9 repo)) in
  record ~exp:"q8_q9" "q9_fig5_plan_ms" (num plan_ms);
  Fmt.pr "%-5s %12.1f %12s  (hand-built Fig. 5 physical plan)@." "Q9*" plan_ms "-"

(* ------------------------------------------------------------------ *)
(* Section 2.2: storage occupancy                                      *)
(* ------------------------------------------------------------------ *)

let storage_occupancy () =
  header "Storage occupancy (the figures quoted in paper section 2.2)";
  let engine = Lazy.force xmark_engine in
  let repo = Xquec_core.Engine.repo engine in
  let sz = Xquec_core.Engine.size_breakdown engine in
  let os = float_of_int repo.Storage.Repository.original_size in
  let pct x = 100.0 *. float_of_int x /. os in
  (* The v4 acceptance pin: the succinct tree must undercut the v3
     packed tree, and a v3 image and a v4 image of the same document
     must answer the whole XMark workload identically. Both facts are
     recorded exactly (bool/string) so the quick gate trips on any
     regression. *)
  let v4_below_v3 = sz.Storage.Repository.tree_bytes < sz.Storage.Repository.tree_packed_bytes in
  let digest_of format =
    let image = Storage.Repository.serialize ~format repo in
    let eng = Xquec_core.Engine.restore image in
    let buf = Buffer.create 4096 in
    List.iter
      (fun (q : Xmark.Queries.query) ->
        Buffer.add_string buf (Xquec_core.Engine.query_serialized eng q.Xmark.Queries.text))
      Xmark.Queries.all;
    Digest.to_hex (Digest.string (Buffer.contents buf))
  in
  let v3_digest = digest_of `V3 and v4_digest = digest_of `V4 in
  let digests_match = if String.equal v3_digest v4_digest then "match" else "mismatch" in
  record ~exp:"storage_occupancy" "bytes"
    (obj
       [
         ("original", num os);
         ("total", num (float_of_int sz.Storage.Repository.total_bytes));
         ("tree", num (float_of_int sz.Storage.Repository.tree_bytes));
         ("tree_packed", num (float_of_int sz.Storage.Repository.tree_packed_bytes));
         ("v4_below_v3", Xquec_obs.Json.Bool v4_below_v3);
         ("v3_v4_digests", str digests_match);
         ("containers", num (float_of_int sz.Storage.Repository.containers_bytes));
         ("models", num (float_of_int sz.Storage.Repository.models_bytes));
         ("summary", num (float_of_int sz.Storage.Repository.summary_bytes));
         ("index", num (float_of_int sz.Storage.Repository.index_bytes));
         ("essential", num (float_of_int sz.Storage.Repository.essential_bytes));
       ]);
  Fmt.pr "original document:        %9d bytes@." repo.Storage.Repository.original_size;
  Fmt.pr "full repository:          %9d bytes (%.1f%% of original; CF %.1f%%)@."
    sz.Storage.Repository.total_bytes
    (pct sz.Storage.Repository.total_bytes)
    (100.0 *. Xquec_core.Engine.compression_factor engine);
  Fmt.pr "  structure tree (v4):    %9d bytes (%.1f%%; v3 packed %d, v4 %s it)@."
    sz.Storage.Repository.tree_bytes
    (pct sz.Storage.Repository.tree_bytes)
    sz.Storage.Repository.tree_packed_bytes
    (if v4_below_v3 then "beats" else "DOES NOT beat");
  Fmt.pr "  v3/v4 query digests:    %s@." digests_match;
  Fmt.pr "  value containers:       %9d bytes (%.1f%%)@." sz.Storage.Repository.containers_bytes
    (pct sz.Storage.Repository.containers_bytes);
  Fmt.pr "  source models:          %9d bytes (%.1f%%)@." sz.Storage.Repository.models_bytes
    (pct sz.Storage.Repository.models_bytes);
  Fmt.pr "  structure summary:      %9d bytes (%.1f%% of original; paper: ~19%%)@."
    sz.Storage.Repository.summary_bytes
    (pct sz.Storage.Repository.summary_bytes);
  Fmt.pr "  nav directories:        %9d bytes (%.1f%%)@." sz.Storage.Repository.index_bytes
    (pct sz.Storage.Repository.index_bytes);
  Fmt.pr "essential (no access structures): %d bytes@." sz.Storage.Repository.essential_bytes;
  Fmt.pr "access-structure factor:  %.2fx (paper: 3-4x)@."
    (float_of_int sz.Storage.Repository.total_bytes
    /. float_of_int sz.Storage.Repository.essential_bytes)

(* ------------------------------------------------------------------ *)
(* Section 3.3: NaiveConf vs GoodConf                                  *)
(* ------------------------------------------------------------------ *)

let partitioning_gain () =
  header "Section 3.3 example: NaiveConf (single shared ALM) vs GoodConf (partitioned)";
  let rng = Xmark.Rng.of_int 7 in
  let sentence () =
    String.concat " "
      (List.init (10 + Xmark.Rng.int rng 14) (fun _ -> Xmark.Rng.pick rng Xmark.Wordpool.shakespeare))
  in
  let name () =
    Xmark.Rng.pick rng Xmark.Wordpool.first_names ^ " " ^ Xmark.Rng.pick rng Xmark.Wordpool.last_names
  in
  let date () =
    Printf.sprintf "%02d/%02d/%4d" (1 + Xmark.Rng.int rng 12) (1 + Xmark.Rng.int rng 28)
      (1998 + Xmark.Rng.int rng 5)
  in
  let buf = Buffer.create (1 lsl 16) in
  Buffer.add_string buf "<doc>";
  List.iter
    (fun (tag, gen, n) ->
      for _ = 1 to n do
        Buffer.add_string buf (Printf.sprintf "<%s>%s</%s>" tag (gen ()) tag)
      done)
    [
      (* the paper's example containers are ~6 MB each; a few hundred KB
         is enough for the dictionary codecs to amortize their models *)
      ("act1", sentence, 2500); ("act2", sentence, 2500); ("act3", sentence, 2500);
      ("pname", name, 8000); ("pdate", date, 8000);
    ];
  Buffer.add_string buf "</doc>";
  let xml = Buffer.contents buf in
  let repo = Xquec_core.Loader.load ~name:"d.xml" xml in
  let workload_queries =
    List.map Xquery.Parser.parse
      [
        "for $x in document(\"d.xml\")/doc/act1 where $x/text() > \"king\" return $x";
        "for $x in document(\"d.xml\")/doc/act2 where $x/text() > \"queen\" return $x";
        "for $x in document(\"d.xml\")/doc/act3 where $x/text() < \"mad\" return $x";
        "for $x in document(\"d.xml\")/doc/pname where $x/text() >= \"Marta\" return $x";
        "for $x in document(\"d.xml\")/doc/pdate where $x/text() >= \"06/01/2000\" return $x";
      ]
  in
  let workload = Xquec_core.Workload.analyze repo workload_queries in
  let all_ids =
    Array.to_list repo.Storage.Repository.containers |> List.map (fun c -> c.Storage.Container.id)
  in
  let cm = Xquec_core.Cost_model.create repo workload in
  let naive = { Xquec_core.Cost_model.sets = [ (all_ids, Compress.Codec.Alm_alg) ] } in
  let naive_cost = Xquec_core.Cost_model.breakdown cm naive in
  let result = Xquec_core.Partitioner.search repo workload in
  let good = result.Xquec_core.Partitioner.configuration in
  let good_cost = Xquec_core.Cost_model.breakdown cm good in
  let container_cf config =
    let repo = Xquec_core.Loader.load ~name:"d.xml" xml in
    Xquec_core.Partitioner.apply repo config;
    List.map
      (fun (ids, alg) ->
        let plain =
          List.fold_left
            (fun a id -> a + (Storage.Repository.container repo id).Storage.Container.plain_bytes)
            0 ids
        in
        let compressed =
          List.fold_left
            (fun a id ->
              a + Storage.Container.compressed_bytes (Storage.Repository.container repo id))
            0 ids
        in
        let paths =
          List.map (fun id -> (Storage.Repository.container repo id).Storage.Container.path) ids
        in
        (paths, alg, 1.0 -. (float_of_int compressed /. float_of_int plain)))
      config.Xquec_core.Cost_model.sets
  in
  Fmt.pr "NaiveConf: one shared ALM source model over all five containers@.";
  List.iter
    (fun (paths, alg, cf) ->
      Fmt.pr "  {%d containers} %s: value CF %.2f%%@." (List.length paths)
        (Compress.Codec.algorithm_name alg) (100.0 *. cf))
    (container_cf naive);
  Fmt.pr "  model cost %.0f, decompression cost %.0f, total %.0f@."
    naive_cost.Xquec_core.Cost_model.model naive_cost.Xquec_core.Cost_model.decompression
    naive_cost.Xquec_core.Cost_model.total;
  Fmt.pr "@.GoodConf: the greedy section-3.3 search (%d sets)@."
    (List.length good.Xquec_core.Cost_model.sets);
  List.iter
    (fun (paths, alg, cf) ->
      Fmt.pr "  {%s} %s: value CF %.2f%%@." (String.concat ", " paths)
        (Compress.Codec.algorithm_name alg) (100.0 *. cf))
    (container_cf good);
  Fmt.pr "  model cost %.0f, decompression cost %.0f, total %.0f@."
    good_cost.Xquec_core.Cost_model.model good_cost.Xquec_core.Cost_model.decompression
    good_cost.Xquec_core.Cost_model.total;
  record ~exp:"partitioning_gain" "costs"
    (obj
       [
         ("naive_total", num naive_cost.Xquec_core.Cost_model.total);
         ("good_total", num good_cost.Xquec_core.Cost_model.total);
         ("good_sets", num (float_of_int (List.length good.Xquec_core.Cost_model.sets)));
         ( "gain",
           num
             (1.0
             -. (good_cost.Xquec_core.Cost_model.total /. naive_cost.Xquec_core.Cost_model.total))
         );
       ]);
  Fmt.pr "@.total cost gain: %.1f%% (the paper's example gains 21.4%%/28.6%% on text/names)@."
    (100.0 *. (1.0 -. (good_cost.Xquec_core.Cost_model.total /. naive_cost.Xquec_core.Cost_model.total)))

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let ablations () =
  header "Ablations: the design choices DESIGN.md calls out";
  let engine = Lazy.force xmark_engine in
  let repo = Xquec_core.Engine.repo engine in
  let find path = Option.get (Storage.Repository.find_container_by_path repo path) in

  (* (a) per-value compression vs whole-container chunks *)
  let cont = find "/site/people/person/name/#text" in
  let values = List.map fst (Storage.Container.dump cont) in
  let chunk = String.concat "\000" values in
  let compressed_chunk = Compress.Bzip.compress chunk in
  let target = List.nth values (List.length values / 2) in
  let per_value_ms =
    time_median ~runs:5 (fun () ->
        let code = Storage.Container.compress_constant cont target in
        ignore (Storage.Container.lookup_eq cont code))
  in
  let whole_chunk_ms =
    time_median ~runs:5 (fun () ->
        ignore (String.length (Compress.Bzip.decompress compressed_chunk)))
  in
  record ~exp:"ablations" "per_value_access"
    (obj [ ("per_value_ms", num per_value_ms); ("whole_chunk_ms", num whole_chunk_ms) ]);
  Fmt.pr "(a) access one of %d values: individually compressed %.3f ms, \
          XMill-style chunk decompression %.3f ms (%.0fx)@."
    (List.length values) per_value_ms whole_chunk_ms (whole_chunk_ms /. per_value_ms);

  (* (b) value join: sorted-container merge join vs decompressing nested loop *)
  let pid = find "/site/people/person/@id" in
  let buyer = find "/site/closed_auctions/closed_auction/buyer/@person" in
  let shared = pid.Storage.Container.model_id = buyer.Storage.Container.model_id in
  let merge_ms =
    time_median (fun () ->
        ignore
          (Xquec_core.Physical.cardinality
             (Xquec_core.Physical.merge_join
                (Xquec_core.Physical.cont_scan repo pid.Storage.Container.id) ~lcol:0
                (Xquec_core.Physical.cont_scan repo buyer.Storage.Container.id) ~rcol:0)))
  in
  let nl_ms =
    time_median ~runs:1 (fun () ->
        let key = function
          | Xquec_core.Executor.Cval { cont; code } ->
            Compress.Codec.decompress cont.Storage.Container.model code
          | _ -> ""
        in
        ignore
          (Xquec_core.Physical.cardinality
             (Xquec_core.Physical.nl_join
                (fun l r -> String.equal (key l.(0)) (key r.(0)))
                (Xquec_core.Physical.cont_scan repo pid.Storage.Container.id)
                (Xquec_core.Physical.cont_scan repo buyer.Storage.Container.id))))
  in
  record ~exp:"ablations" "value_join"
    (obj [ ("merge_join_ms", num merge_ms); ("nested_loop_ms", num nl_ms) ]);
  Fmt.pr "(b) person-buyer join (shared model: %b): 1-pass merge join %.2f ms, \
          decompressing nested loop %.1f ms (%.0fx)@."
    shared merge_ms nl_ms (nl_ms /. merge_ms);

  (* (c) compressed-domain inequality vs scan-and-decompress *)
  let prices = find "/site/closed_auctions/closed_auction/price/#text" in
  let in_domain_ms =
    time_median ~runs:5 (fun () ->
        ignore
          (Xquec_core.Physical.cardinality
             (Xquec_core.Physical.cont_access_range repo prices.Storage.Container.id
                ~lo:"100.00" ())))
  in
  let scan_ms =
    time_median ~runs:5 (fun () ->
        let n = ref 0 in
        Array.iter
          (fun (r : Storage.Container.record) ->
            match float_of_string_opt (Storage.Container.decompress_record prices r) with
            | Some v when v >= 100.0 -> incr n
            | _ -> ())
          (Storage.Container.scan prices);
        ignore !n)
  in
  record ~exp:"ablations" "inequality"
    (obj [ ("compressed_domain_ms", num in_domain_ms); ("scan_decompress_ms", num scan_ms) ]);
  Fmt.pr "(c) price >= 100 over %d records: compressed-domain range %.4f ms, \
          scan+decompress %.3f ms (%.0fx)@."
    (Storage.Container.length prices) in_domain_ms scan_ms (scan_ms /. in_domain_ms);

  (* (d) summary access vs structure scan *)
  let summary_ms =
    time_median ~runs:5 (fun () ->
        ignore (Xquec_core.Executor.run_string repo "count(document(\"auction.xml\")//item)"))
  in
  let tree = repo.Storage.Repository.tree in
  let code = Option.get (Storage.Name_dict.code repo.Storage.Repository.dict "item") in
  let nav_ms =
    time_median ~runs:3 (fun () ->
        let n = ref 0 in
        for id = 0 to Storage.Structure_tree.node_count tree - 1 do
          if Storage.Structure_tree.tag tree id = code then incr n
        done;
        ignore !n)
  in
  record ~exp:"ablations" "summary_access"
    (obj [ ("summary_ms", num summary_ms); ("structure_scan_ms", num nav_ms) ]);
  Fmt.pr "(d) //item count: structure-summary access %.4f ms, full structure scan %.3f ms@."
    summary_ms nav_ms;

  (* (e) 3-valued structural ids vs parent-chain walks *)
  let items = Xquec_core.Executor.run_string repo "document(\"auction.xml\")/site/regions//item" in
  let item_ids =
    List.filter_map (function Xquec_core.Executor.Node id -> Some id | _ -> None) items
  in
  let regions_id =
    match Xquec_core.Executor.run_string repo "document(\"auction.xml\")/site/regions" with
    | [ Xquec_core.Executor.Node id ] -> id
    | _ -> 0
  in
  let structural_ms =
    time_median ~runs:5 (fun () ->
        List.iter
          (fun id ->
            ignore (Storage.Structure_tree.is_ancestor tree ~ancestor:regions_id ~descendant:id))
          item_ids)
  in
  let walk_ms =
    time_median ~runs:5 (fun () ->
        List.iter
          (fun id ->
            let rec up i =
              i = regions_id || (i >= 0 && up (Storage.Structure_tree.parent tree i))
            in
            ignore (up id))
          item_ids)
  in
  record ~exp:"ablations" "ancestor_check"
    (obj [ ("structural_ids_ms", num structural_ms); ("parent_walk_ms", num walk_ms) ]);
  Fmt.pr "(e) %d ancestor checks: (pre,post) structural ids %.4f ms, parent-chain walks %.4f ms@."
    (List.length item_ids) structural_ms walk_ms

(* ------------------------------------------------------------------ *)
(* Extensions beyond the paper's own experiments                       *)
(* ------------------------------------------------------------------ *)

(* The paper could not compare query times against XGrind/XPRESS ("fully
   working versions ... are not publicly available", §5); our
   reimplementations make the comparison possible. It quantifies §1.2's
   point: the homomorphic systems' fixed top-down scan pays the whole
   document on every query, while XQueC's ContAccess is selective. *)
let homomorphic_scan () =
  header "Extension: selective query, XQueC vs the homomorphic systems";
  let xml = Lazy.force xmark_doc in
  let engine = Lazy.force xmark_engine in
  let (xg, xg_build) = time (fun () -> Baselines.Xgrind.compress xml) in
  let (xp, xp_build) = time (fun () -> Baselines.Xpress.compress xml) in
  Fmt.pr "(compressors built in %.0f / %.0f ms)@." xg_build xp_build;
  (* Q1-style exact match: person0's name *)
  let xquec_ms =
    time_median (fun () ->
        ignore
          (Xquec_core.Engine.query_serialized engine
             (Xmark.Queries.by_id "Q1").Xmark.Queries.text))
  in
  let xgrind_ms =
    time_median (fun () ->
        ignore
          (Baselines.Xgrind.query_exact xg ~target_path:"site/people/person/name/#text"
             ~pred_path:"site/people/person/@id" ~value:"person0"))
  in
  (* XPRESS: fetch one location path (its native query class) *)
  let xpress_ms =
    time_median (fun () ->
        ignore
          (Baselines.Xpress.query_path xp [ "site"; "regions"; "europe"; "item"; "location" ]))
  in
  record ~exp:"homomorphic_scan" "times"
    (obj
       [ ("xquec_ms", num xquec_ms); ("xgrind_ms", num xgrind_ms); ("xpress_ms", num xpress_ms) ]);
  Fmt.pr "%-42s %10s@." "system / query" "time(ms)";
  rule ();
  Fmt.pr "%-42s %10.3f@." "XQueC: Q1 exact match (ContAccess)" xquec_ms;
  Fmt.pr "%-42s %10.1f@." "XGrind: exact match (full-stream scan)" xgrind_ms;
  Fmt.pr "%-42s %10.1f@." "XPRESS: path query (full-stream scan)" xpress_ms;
  Fmt.pr "the homomorphic systems scan the whole compressed document per query;@.";
  Fmt.pr "XQueC's summary + containers touch only the data the query needs (Fig. 4).@."

(* Measured codec characteristics, validating the d_c constants the §3.2
   cost model uses (the paper: "ALM decompresses faster than Huffman,
   since it outputs bigger portions of a string at a time"). *)
let codec_costs () =
  header "Extension: measured codec characteristics (cost-model inputs)";
  let rng = Xmark.Rng.of_int 3 in
  let values =
    List.init 4000 (fun _ ->
        String.concat " "
          (List.init (6 + Xmark.Rng.int rng 10) (fun _ ->
               Xmark.Rng.pick rng Xmark.Wordpool.shakespeare)))
  in
  let plain = List.fold_left (fun a v -> a + String.length v) 0 values in
  Fmt.pr "%d values, %d KB of text@." (List.length values) (plain / 1024);
  Fmt.pr "%-12s %10s %12s %14s %6s@." "codec" "ratio" "model(B)" "decomp(MB/s)" "d_c";
  rule ();
  List.iter
    (fun alg ->
      match Compress.Codec.train alg values with
      | exception Compress.Codec.Unsupported _ -> ()
      | model ->
        let codes = List.map (Compress.Codec.compress model) values in
        let compressed = List.fold_left (fun a c -> a + String.length c) 0 codes in
        let ms =
          time_median ~runs:3 (fun () ->
              List.iter (fun c -> ignore (Compress.Codec.decompress model c)) codes)
        in
        let mbps = float_of_int plain /. 1048576.0 /. (ms /. 1000.0) in
        record ~exp:"codec_costs" "codec"
          (obj
             [
               ("name", str (Compress.Codec.algorithm_name alg));
               ("ratio", num (1.0 -. (float_of_int compressed /. float_of_int plain)));
               ("model_bytes", num (float_of_int (Compress.Codec.model_size model)));
               ("decompress_mbps", num mbps);
               ("d_c", num (Compress.Codec.decompression_cost alg));
             ]);
        Fmt.pr "%-12s %9.2f%% %12d %14.1f %6.1f@."
          (Compress.Codec.algorithm_name alg)
          (100.0 *. (1.0 -. (float_of_int compressed /. float_of_int plain)))
          (Compress.Codec.model_size model)
          mbps
          (Compress.Codec.decompression_cost alg))
    Compress.Codec.all_algorithms

(* ------------------------------------------------------------------ *)
(* Buffer pool: cold vs. warm cache, and the block-size sweep           *)
(* ------------------------------------------------------------------ *)

(* Cold run: pool cleared, every touched block decodes. Warm run: the
   same query again, the working set resident. The gap is what the
   buffer pool buys on repeated / overlapping queries; decoded bytes per
   run show the demand-paging effect of header pruning. *)
let cache () =
  header "Buffer pool: cold vs. warm cache";
  let engine = Lazy.force xmark_engine in
  let queries =
    [
      ("selective_eq", "document(\"auction.xml\")/site/people/person[@id = \"person100\"]/name");
      ("range", "document(\"auction.xml\")/site/open_auctions/open_auction[initial > 200]/reserve");
      ("join_q8",
       "for $p in document(\"auction.xml\")/site/people/person let $a := \
        for $t in document(\"auction.xml\")/site/closed_auctions/closed_auction where \
        $t/buyer/@person = $p/@id return $t return <item person=\"{$p/name/text()}\">{count($a)}</item>");
    ]
  in
  Fmt.pr "%-14s %11s %11s %8s %14s %14s@." "query" "cold(ms)" "warm(ms)" "speedup"
    "cold dec(B)" "warm dec(B)";
  rule ();
  List.iter
    (fun (name, q) ->
      let run () = ignore (Xquec_core.Engine.query_serialized engine q) in
      Storage.Buffer_pool.clear ();
      let s0 = Storage.Buffer_pool.snapshot () in
      let (_, cold_ms) = time run in
      let s1 = Storage.Buffer_pool.snapshot () in
      let warm_ms = time_median ~runs:5 run in
      let s2 = Storage.Buffer_pool.snapshot () in
      let cold_dec = s1.Storage.Buffer_pool.s_decoded_bytes - s0.Storage.Buffer_pool.s_decoded_bytes in
      (* per warm run: 1 warmup + 5 timed runs happened since s1 *)
      let warm_dec = (s2.Storage.Buffer_pool.s_decoded_bytes - s1.Storage.Buffer_pool.s_decoded_bytes) / 6 in
      let speedup = if warm_ms > 0.0 then cold_ms /. warm_ms else 0.0 in
      record ~exp:"cache" "query"
        (obj
           [
             ("name", str name);
             ("cold_ms", num cold_ms);
             ("warm_ms", num warm_ms);
             ("speedup", num speedup);
             ("cold_decoded_bytes", num (float_of_int cold_dec));
             ("warm_decoded_bytes_per_run", num (float_of_int warm_dec));
           ]);
      Fmt.pr "%-14s %11.2f %11.2f %7.1fx %14d %14d@." name cold_ms warm_ms speedup cold_dec
        warm_dec)
    queries;
  (* Block-size sweep: rebuild the repository at several block budgets
     and watch the storage / selectivity trade-off — smaller blocks prune
     more precisely but pay more per-block overhead. *)
  header "Block-size sweep (selective equality query, cold cache)";
  let xml = Lazy.force xmark_doc in
  let saved = Storage.Container.default_block_size () in
  Fmt.pr "%-12s %14s %12s %14s %10s@." "block(B)" "containers(B)" "blocks" "cold dec(B)"
    "cold(ms)";
  rule ();
  List.iter
    (fun bs ->
      Storage.Container.set_default_block_size bs;
      let repo = Xquec_core.Loader.load ~name:"auction.xml" xml in
      let sz = Storage.Repository.size_breakdown repo in
      let nblocks =
        Array.fold_left (fun a c -> a + Storage.Container.block_count c) 0
          repo.Storage.Repository.containers
      in
      Storage.Buffer_pool.clear ();
      let s0 = Storage.Buffer_pool.snapshot () in
      let (_, cold_ms) =
        time (fun () ->
            ignore
              (Xquec_core.Executor.run_string repo
                 "document(\"auction.xml\")/site/people/person[@id = \"person100\"]/name"))
      in
      let s1 = Storage.Buffer_pool.snapshot () in
      let dec = s1.Storage.Buffer_pool.s_decoded_bytes - s0.Storage.Buffer_pool.s_decoded_bytes in
      record ~exp:"cache" "block_size"
        (obj
           [
             ("bytes", num (float_of_int bs));
             ("containers_bytes", num (float_of_int sz.Storage.Repository.containers_bytes));
             ("blocks", num (float_of_int nblocks));
             ("cold_decoded_bytes", num (float_of_int dec));
             ("cold_ms", num cold_ms);
           ]);
      Fmt.pr "%-12d %14d %12d %14d %10.2f@." bs sz.Storage.Repository.containers_bytes nblocks
        dec cold_ms)
    [ 1024; 4096; 16384; 65536 ];
  Storage.Container.set_default_block_size saved;
  (* Scan resistance: a full container scan (Tail admission) must not
     evict a warmed working set. Warm the selective query's blocks under
     a tight budget, scan the largest container, then re-run the
     selective query — a scan-resistant pool re-runs it without new
     misses. *)
  header "Scan resistance (tight budget, full scan between warm runs)";
  let repo = Xquec_core.Engine.repo engine in
  let biggest =
    Array.fold_left
      (fun acc (c : Storage.Container.t) ->
        if Storage.Container.block_count c > Storage.Container.block_count acc then c else acc)
      repo.Storage.Repository.containers.(0) repo.Storage.Repository.containers
  in
  let selective = "document(\"auction.xml\")/site/people/person[@id = \"person100\"]/name" in
  let budget = 256 * 1024 in
  let saved_budget = Storage.Buffer_pool.budget_bytes () in
  Fun.protect ~finally:(fun () -> Storage.Buffer_pool.set_budget ~bytes:saved_budget)
  @@ fun () ->
  Storage.Buffer_pool.set_budget ~bytes:budget;
  Storage.Buffer_pool.clear ();
  ignore (Xquec_core.Engine.query_serialized engine selective);
  ignore (Xquec_core.Engine.query_serialized engine selective) (* fully warm *);
  let s0 = Storage.Buffer_pool.snapshot () in
  ignore (Storage.Container.scan biggest);
  let s1 = Storage.Buffer_pool.snapshot () in
  ignore (Xquec_core.Engine.query_serialized engine selective);
  let s2 = Storage.Buffer_pool.snapshot () in
  let scan_inserts = s1.Storage.Buffer_pool.s_scan_inserts - s0.Storage.Buffer_pool.s_scan_inserts in
  let hot_misses_after_scan = s2.Storage.Buffer_pool.s_misses - s1.Storage.Buffer_pool.s_misses in
  let within_budget = if s2.Storage.Buffer_pool.s_resident_bytes <= budget then 1.0 else 0.0 in
  record ~exp:"cache" "scan_resistance"
    (obj
       [
         ("budget_bytes", num (float_of_int budget));
         ("scan_blocks", num (float_of_int (Storage.Container.block_count biggest)));
         ("scan_inserts", num (float_of_int scan_inserts));
         ("hot_misses_after_scan", num (float_of_int hot_misses_after_scan));
         ("resident_within_budget", num within_budget);
       ]);
  Fmt.pr
    "budget %d B: scan of %s (%d blocks) tail-admitted %d blocks; selective re-run after \
     scan: %d misses (scan-resistant = 0); resident %d B %s budget@."
    budget biggest.Storage.Container.path
    (Storage.Container.block_count biggest)
    scan_inserts hot_misses_after_scan s2.Storage.Buffer_pool.s_resident_bytes
    (if within_budget = 1.0 then "within" else "OVER")

(* ------------------------------------------------------------------ *)
(* Parallel block decode: the domains sweep                             *)
(* ------------------------------------------------------------------ *)

let domains_sweep = ref [ 0; 1; 2; 4; 8 ]

(* Cold decode throughput as a function of the decode-pool size. Two
   workloads per row: a cold full scan of the largest container (pure
   decode, the upper bound on what the pool can buy) and a cold
   selective engine query (decode amortized behind pruning and executor
   work). Results are digest-checked across all pool sizes — parallelism
   must never change an answer. NOTE: the speedups are bounded by the
   host's physical cores; on a single-core machine
   (Domain.recommended_domain_count () = 1) every row degenerates to the
   sequential path and the table documents exactly that. *)
let parallel () =
  header "Parallel block decode: domains sweep (cold cache)";
  let engine = Lazy.force xmark_engine in
  let repo = Xquec_core.Engine.repo engine in
  let biggest =
    Array.fold_left
      (fun acc (c : Storage.Container.t) ->
        if Storage.Container.block_count c > Storage.Container.block_count acc then c else acc)
      repo.Storage.Repository.containers.(0) repo.Storage.Repository.containers
  in
  Fmt.pr "host: Domain.recommended_domain_count () = %d (speedup is bounded by physical \
          cores)@."
    (Domain.recommended_domain_count ());
  Fmt.pr "largest container: %s (%d records in %d blocks)@." biggest.Storage.Container.path
    (Storage.Container.length biggest)
    (Storage.Container.block_count biggest);
  let query = "document(\"auction.xml\")/site/people/person[@id = \"person100\"]/name" in
  let saved = Storage.Domain_pool.size () in
  Fun.protect ~finally:(fun () -> Storage.Domain_pool.set_size saved) @@ fun () ->
  let scan_digest (rs : Storage.Container.record array) =
    let buf = Buffer.create 4096 in
    Array.iter
      (fun (r : Storage.Container.record) ->
        Buffer.add_string buf r.Storage.Container.code;
        Buffer.add_string buf (string_of_int r.Storage.Container.parent))
      rs;
    Digest.to_hex (Digest.string (Buffer.contents buf))
  in
  let cold_median f =
    let sample () =
      Storage.Buffer_pool.clear ();
      snd (time f)
    in
    ignore (sample ());
    let samples = List.init 3 (fun _ -> sample ()) in
    List.nth (List.sort compare samples) 1
  in
  Fmt.pr "%-8s %14s %9s %14s %9s %10s@." "domains" "full_scan(ms)" "speedup" "selective(ms)"
    "speedup" "waits";
  rule ();
  let base_scan = ref 0.0 and base_sel = ref 0.0 in
  let digests = ref [] in
  List.iter
    (fun d ->
      Storage.Domain_pool.set_size d;
      Storage.Buffer_pool.clear ();
      let scan_result = ref [||] in
      let scan_ms = cold_median (fun () -> scan_result := Storage.Container.scan biggest) in
      let digest = scan_digest !scan_result in
      let query_out = ref "" in
      let sel_ms =
        cold_median (fun () -> query_out := Xquec_core.Engine.query_serialized engine query)
      in
      digests := (d, digest, !query_out) :: !digests;
      let s = Storage.Buffer_pool.snapshot () in
      if d = 1 then begin
        base_scan := scan_ms;
        base_sel := sel_ms
      end;
      let speedup base ms = if base > 0.0 && ms > 0.0 then base /. ms else 0.0 in
      record ~exp:"parallel" "domains"
        (obj
           [
             ("domains", num (float_of_int d));
             ("full_scan_cold_ms", num scan_ms);
             ("selective_cold_ms", num sel_ms);
             ("scan_speedup_vs_1", num (speedup !base_scan scan_ms));
             ("selective_speedup_vs_1", num (speedup !base_sel sel_ms));
             ("scan_digest", str digest);
           ]);
      Fmt.pr "%-8d %14.2f %8.2fx %14.2f %8.2fx %10d@." d scan_ms (speedup !base_scan scan_ms)
        sel_ms (speedup !base_sel sel_ms) s.Storage.Buffer_pool.s_latch_waits)
    !domains_sweep;
  (* byte-identical answers across every pool size *)
  let identical =
    match !digests with
    | [] -> true
    | (_, d0, q0) :: rest -> List.for_all (fun (_, d, q) -> d = d0 && q = q0) rest
  in
  record ~exp:"parallel" "results_identical"
    (obj
       [
         ("identical", num (if identical then 1.0 else 0.0));
         ( "recommended_domain_count",
           num (float_of_int (Domain.recommended_domain_count ())) );
       ]);
  Fmt.pr "results byte-identical across domain counts: %b@." identical;
  if not identical then failwith "parallel decode changed query results"

(* ------------------------------------------------------------------ *)
(* Block-skipping compressed-domain join                                *)
(* ------------------------------------------------------------------ *)

let join_fracs = [ 0.01; 0.1; 0.5; 1.0 ]

(* Header-driven block merge join vs the hash join, at controlled join
   selectivity: one side holds [items] sorted keys, the other [lookups]
   references drawn (deterministic LCG) from the first [frac] of the
   key space. With small (2 KiB) blocks the item side spans enough
   blocks for header pruning to bite: as [frac] shrinks, more item
   blocks fall outside the lookup side's bound intervals and are
   skipped without ever being decoded. Every point digest-checks the
   block-join answer against the hash join's, and the probe/skip
   counters recorded here are what the quick gate pins. XMark Q8
   (person/@id = buyer/@person) is replayed the same way as the
   realistic-document case. *)
let join () =
  header "Block-skipping join: header pruning vs selectivity";
  let mk_doc ~items ~lookups ~frac =
    let buf = Buffer.create (items * 32) in
    Buffer.add_string buf "<db><items>";
    for i = 0 to items - 1 do
      Buffer.add_string buf (Printf.sprintf "<item><key>k%05d</key></item>" i)
    done;
    Buffer.add_string buf "</items><lookups>";
    let range = max 1 (int_of_float (frac *. float_of_int items)) in
    let st = ref 12345 in
    for _ = 0 to lookups - 1 do
      st := (!st * 1103515245 + 12345) land 0x3FFFFFFF;
      Buffer.add_string buf (Printf.sprintf "<lookup><ref>k%05d</ref></lookup>" (!st mod range))
    done;
    Buffer.add_string buf "</lookups></db>";
    Buffer.contents buf
  in
  let q =
    "for $l in doc('join.xml')/db/lookups/lookup for $i in doc('join.xml')/db/items/item \
     where $i/key = $l/ref return $i/key"
  in
  let saved_bs = Storage.Container.default_block_size () in
  Fun.protect
    ~finally:(fun () ->
      Storage.Container.set_default_block_size saved_bs;
      Xquec_core.Executor.set_block_join true)
  @@ fun () ->
  Storage.Container.set_default_block_size 2048;
  Fmt.pr "%-8s %9s %9s %10s %12s %6s %10s %10s@." "frac" "probed" "skipped" "skip%"
    "pruned(B)" "equal" "hash(ms)" "block(ms)";
  rule ();
  List.iter
    (fun frac ->
      let xml = mk_doc ~items:4000 ~lookups:40 ~frac in
      let eng = Xquec_core.Engine.load ~name:"join.xml" ~workload:[ q ] xml in
      Xquec_core.Executor.set_block_join false;
      let hash_out = ref "" in
      let hash_ms =
        time_median (fun () -> hash_out := Xquec_core.Engine.query_serialized eng q)
      in
      Xquec_core.Executor.set_block_join true;
      Xquec_core.Executor.reset_join_stats ();
      let block_out = ref (Xquec_core.Engine.query_serialized eng q) in
      let s = Xquec_core.Executor.join_stats () in
      let block_ms =
        time_median (fun () -> block_out := Xquec_core.Engine.query_serialized eng q)
      in
      let equal = String.equal !hash_out !block_out in
      let total = s.Xquec_core.Executor.j_blocks_probed + s.Xquec_core.Executor.j_blocks_skipped in
      let skip_ratio =
        if total = 0 then 0.0
        else float_of_int s.Xquec_core.Executor.j_blocks_skipped /. float_of_int total
      in
      record ~exp:"join" "frac"
        (obj
           [
             ("frac", num frac);
             ("block_joins", num (float_of_int s.Xquec_core.Executor.j_block_joins));
             ("blocks_probed", num (float_of_int s.Xquec_core.Executor.j_blocks_probed));
             ("blocks_skipped", num (float_of_int s.Xquec_core.Executor.j_blocks_skipped));
             ("skipped_bytes", num (float_of_int s.Xquec_core.Executor.j_skipped_bytes));
             ("skip_ratio", num skip_ratio);
             ("digest_equal", str (if equal then "yes" else "NO"));
             ("hash_ms", num hash_ms);
             ("block_ms", num block_ms);
           ]);
      Fmt.pr "%-8.2f %9d %9d %9.0f%% %12d %6s %10.2f %10.2f@." frac
        s.Xquec_core.Executor.j_blocks_probed s.Xquec_core.Executor.j_blocks_skipped
        (100.0 *. skip_ratio) s.Xquec_core.Executor.j_skipped_bytes
        (if equal then "yes" else "NO") hash_ms block_ms;
      if not equal then failwith "block join changed the answer")
    join_fracs;
  (* realistic document: the Q8 join condition as a plain two-For join
     (Q8 itself is a correlated LET and takes the decorrelation path)
     on the shared engine — its containers share source models because
     it is loaded with the full query workload *)
  Storage.Container.set_default_block_size saved_bs;
  let engine = Lazy.force xmark_engine in
  let q8 =
    "for $a in document(\"auction.xml\")/site/closed_auctions/closed_auction for $p in \
     document(\"auction.xml\")/site/people/person where $p/@id = $a/buyer/@person return \
     $p/name"
  in
  Xquec_core.Executor.set_block_join false;
  let hash_out = ref "" in
  let hash_ms = time_median (fun () -> hash_out := Xquec_core.Engine.query_serialized engine q8) in
  Xquec_core.Executor.set_block_join true;
  Xquec_core.Executor.reset_join_stats ();
  let block_out = ref (Xquec_core.Engine.query_serialized engine q8) in
  let s = Xquec_core.Executor.join_stats () in
  let block_ms =
    time_median (fun () -> block_out := Xquec_core.Engine.query_serialized engine q8)
  in
  let equal = String.equal !hash_out !block_out in
  record ~exp:"join" "xmark_q8"
    (obj
       [
         ("block_joins", num (float_of_int s.Xquec_core.Executor.j_block_joins));
         ("blocks_probed", num (float_of_int s.Xquec_core.Executor.j_blocks_probed));
         ("blocks_skipped", num (float_of_int s.Xquec_core.Executor.j_blocks_skipped));
         ("digest_equal", str (if equal then "yes" else "NO"));
         ("hash_ms", num hash_ms);
         ("block_ms", num block_ms);
       ]);
  Fmt.pr
    "XMark Q8-join: %d block joins, %d probed / %d skipped; equal=%s; hash %.1f ms, block %.1f \
     ms@."
    s.Xquec_core.Executor.j_block_joins s.Xquec_core.Executor.j_blocks_probed
    s.Xquec_core.Executor.j_blocks_skipped
    (if equal then "yes" else "NO")
    hash_ms block_ms;
  if not equal then failwith "block join changed the XMark Q8 answer"

(* ------------------------------------------------------------------ *)
(* Workload observatory: heat overhead + drift                         *)
(* ------------------------------------------------------------------ *)

(* Two claims gated here: (1) the always-on heat accounting costs <= 2%
   wall time on the standard XMark chart mix (A/B via Heat.set_enabled,
   interleaved min-of-reps so both arms see the same machine state);
   (2) the drift score separates workloads — identical mixes score ~0,
   a shifted mix scores strictly higher. Both drift values come from
   deterministic record counts, so they are stable across runs. *)
let heat () =
  header "Workload observatory: heat overhead and drift score";
  let engine = Lazy.force xmark_engine in
  let queries =
    List.map (fun id -> (Xmark.Queries.by_id id).Xmark.Queries.text) Xmark.Queries.fig7_ids
  in
  let run_mix () =
    List.iter (fun q -> ignore (Xquec_core.Engine.query_serialized engine q)) queries
  in
  (* Finely interleaved best-of: single mixes timed on/off/on/off...,
     minimum per side. This VM's dominant noise is CPU-steal windows of
     up to a few seconds that contaminate whole stretches of
     measurements — at single-mix (~100 ms) granularity any clean
     stretch contains samples of BOTH sides, so both minima land in
     clean windows and their difference isolates the instrumentation
     cost. Coarser schemes (best-of-long-reps, paired rep deltas) were
     tried first and still swung by several ms run-to-run. One heap
     flush up front; a major slice landing mid-sample just makes that
     sample an outlier the minimum discards. *)
  run_mix ();
  let samples = 25 in
  let best_on = ref infinity and best_off = ref infinity in
  let measure enabled best =
    Xquec_obs.Heat.set_enabled enabled;
    let t = snd (time run_mix) in
    if t < !best then best := t
  in
  Gc.full_major ();
  for _ = 1 to samples do
    measure true best_on;
    measure false best_off
  done;
  Xquec_obs.Heat.set_enabled true;
  let overhead_ms = !best_on -. !best_off in
  (* 2% relative with a 1 ms absolute noise floor *)
  let overhead_ok = overhead_ms <= Float.max (0.02 *. !best_off) 1.0 in
  Fmt.pr "instrumentation: mix off %.1f ms, on %.1f ms (Δ %+.2f ms) → %s@." !best_off
    !best_on overhead_ms
    (if overhead_ok then "within 2%" else "OVER BUDGET");
  (* drift: same mix twice vs. a shifted mix, through the real query
     log (the files a production profile run would read) *)
  let mix_a =
    [
      "for $p in document(\"auction.xml\")/site/people/person where $p/profile/@income > \
       \"80000\" return $p/name";
      "for $i in document(\"auction.xml\")/site/regions/europe/item where $i/location = \
       \"United States\" return $i/name";
    ]
  in
  let mix_b =
    [
      "for $o in document(\"auction.xml\")/site/open_auctions/open_auction where $o/reserve > \
       \"100\" return $o/reserve";
      "for $a in document(\"auction.xml\")/site/closed_auctions/closed_auction for $p in \
       document(\"auction.xml\")/site/people/person where $p/@id = $a/buyer/@person return \
       $p/name";
    ]
  in
  let log_mix mix =
    let path = Filename.temp_file "xquec_heat_" ".jsonl" in
    Xquec_obs.Query_log.set_path (Some path);
    List.iter (fun q -> ignore (Xquec_core.Engine.query_serialized_logged engine q)) mix;
    Xquec_obs.Query_log.set_path None;
    let fp = Xquec_obs.Profile.of_records (Xquec_obs.Profile.load_jsonl path) in
    Sys.remove path;
    fp
  in
  let fp_a1 = log_mix mix_a in
  let fp_a2 = log_mix mix_a in
  let fp_b = log_mix mix_b in
  let drift_identical = Xquec_obs.Profile.drift fp_a1 fp_a2 in
  let drift_shifted = Xquec_obs.Profile.drift fp_a1 fp_b in
  Fmt.pr "drift: identical mixes %.4f, shifted mix %.4f@." drift_identical drift_shifted;
  record ~exp:"heat" "overhead"
    (obj
       [
         ("off_ms", num !best_off);
         ("on_ms", num !best_on);
         ("overhead_ms", num overhead_ms);
         ("overhead_ok", str (if overhead_ok then "yes" else "no"));
       ]);
  record ~exp:"heat" "drift"
    (obj
       [
         ("identical", num drift_identical);
         ("shifted", num drift_shifted);
         ("separates", str (if drift_shifted > drift_identical then "yes" else "no"));
       ]);
  if drift_shifted <= drift_identical then
    failwith "drift score failed to separate a shifted workload from an identical one"

(* ------------------------------------------------------------------ *)
(* Concurrent serving                                                  *)
(* ------------------------------------------------------------------ *)

(* The serving claims gated here: (1) >= 100 concurrent clients are all
   served (nothing shed below the admission gate, every reply a 200);
   (2) the bytes each client receives are digest-identical to
   sequential evaluation of the same schedule — concurrency changes
   latency, never answers; (3) a repeated-query workload runs > 90%
   plan-cache hits. Latency percentiles come from the server's own
   rolling SLO window scraped over /metrics, so the bench exercises the
   same series an operator would alert on (timings are full-gate-only;
   the quick gate pins the counts, digests and hit rate). *)
let serve () =
  header "Concurrent serving: worker fan-out, admission, plan cache";
  let engine = Lazy.force xmark_engine in
  let module Expo = Xquec_obs.Expo in
  let module Hammer = Xquec_obs.Hammer in
  let module Plan_cache = Xquec_core.Plan_cache in
  (* the repeated-query mix: a few cheap point lookups and one scan-ish
     query, cycled by every client *)
  let queries =
    [|
      "document(\"auction.xml\")/site/people/person[@id = \"person0\"]/name";
      "document(\"auction.xml\")/site/people/person[@id = \"person1\"]/name";
      "document(\"auction.xml\")/site/people/person[@id = \"person2\"]/name";
      "document(\"auction.xml\")/site/people/person[@id = \"person3\"]/name";
      "for $p in document(\"auction.xml\")/site/people/person where $p/profile/@income > \
       \"80000\" return $p/name";
      "document(\"auction.xml\")/site/regions/europe/item/name";
      "for $o in document(\"auction.xml\")/site/open_auctions/open_auction where \
       $o/reserve > \"100\" return $o/reserve";
      "document(\"auction.xml\")/site/people/person[@id = \"person4\"]/emailaddress";
    |]
  in
  let clients = 100 and per_client = 3 in
  let pick client seq = queries.((client + (seq * 7)) mod Array.length queries) in
  (* sequential reference, evaluated before any serving state exists *)
  let expected = Array.map (fun q -> Xquec_core.Engine.query_serialized engine q ^ "\n") queries in
  let expected_digest =
    let buf = Buffer.create 4096 in
    for client = 0 to clients - 1 do
      for seq = 0 to per_client - 1 do
        Buffer.add_string buf expected.((client + (seq * 7)) mod Array.length queries)
      done
    done;
    Digest.to_hex (Digest.string (Buffer.contents buf))
  in
  Plan_cache.set_capacity 64;
  Plan_cache.clear ();
  Plan_cache.reset_stats ();
  Expo.reset_stats ();
  Xquec_core.Serve.window_reset ();
  (* metrics on, as under `xquec serve` — the SLO gauges the experiment
     scrapes are published through the registry *)
  let was_enabled = Xquec_obs.is_enabled () in
  Xquec_obs.set_enabled true;
  let server =
    Expo.start ~port:0 ~workers:4 ~max_inflight:512
      ~extra:(Xquec_core.Serve.handler engine)
      ~collect:Xquec_core.Serve.publish_pool_metrics ()
  in
  let port = Expo.port server in
  Fun.protect ~finally:(fun () ->
      Expo.stop server;
      Plan_cache.set_capacity 0;
      Xquec_obs.set_enabled was_enabled)
  @@ fun () ->
  (* deterministic warm-up: one sequential pass compiles each distinct
     query exactly once (8 misses), so the concurrent phase is the
     steady state a long-running server sees — and the hit/miss split
     stays exact under any interleaving *)
  Array.iter
    (fun q ->
      let r = Hammer.request ~port ~meth:"POST" ~body:q "/query" in
      if r.Hammer.r_status <> 200 then
        failwith (Fmt.str "warmup query failed: HTTP %d" r.Hammer.r_status))
    queries;
  let outcomes, elapsed_ms =
    time (fun () ->
        Hammer.drive ~port ~clients ~requests_per_client:per_client
          ~target:(fun client seq -> ("POST", "/query", pick client seq))
          ())
  in
  let metrics_text = (Hammer.request ~port "/metrics").Hammer.r_body in
  let gauge name =
    (* first "<name> <value>" line of the exposition *)
    let rec find = function
      | [] -> nan
      | line :: rest ->
        let pfx = name ^ " " in
        if String.length line > String.length pfx
           && String.sub line 0 (String.length pfx) = pfx
        then
          float_of_string
            (String.sub line (String.length pfx) (String.length line - String.length pfx))
        else find rest
    in
    find (String.split_on_char '\n' metrics_text)
  in
  let p95 = gauge "xquec_serve_window_p95_ms" in
  let p99 = gauge "xquec_serve_window_p99_ms" in
  let n_ok =
    List.length (List.filter (fun o -> o.Hammer.o_reply.Hammer.r_status = 200) outcomes)
  in
  let got_digest =
    let buf = Buffer.create 4096 in
    List.iter (fun o -> Buffer.add_string buf o.Hammer.o_reply.Hammer.r_body) outcomes;
    Digest.to_hex (Digest.string (Buffer.contents buf))
  in
  let identical = got_digest = expected_digest in
  let pc = Plan_cache.snapshot () in
  let hit_rate =
    let total = pc.Plan_cache.s_hits + pc.Plan_cache.s_misses in
    if total = 0 then 0.0 else float_of_int pc.Plan_cache.s_hits /. float_of_int total
  in
  let e = Expo.stats () in
  Fmt.pr
    "%d clients x %d requests: %d ok, %d rejected (high-water %d) in %.0f ms; p95 %.1f \
     ms, p99 %.1f ms@."
    clients per_client n_ok e.Expo.e_rejected e.Expo.e_inflight_high_water elapsed_ms p95
    p99;
  Fmt.pr "plan cache: %d hits / %d misses / %d evictions (hit rate %.3f); digests %s@."
    pc.Plan_cache.s_hits pc.Plan_cache.s_misses pc.Plan_cache.s_evictions hit_rate
    (if identical then "identical" else "DIFFER");
  record ~exp:"serve" "load"
    (obj
       [
         ("clients", num (float_of_int clients));
         ("requests", num (float_of_int (clients * per_client)));
         ("ok", num (float_of_int n_ok));
         ("rejected", num (float_of_int e.Expo.e_rejected));
         ("elapsed_ms", num elapsed_ms);
         ("p95_ms", num p95);
         ("p99_ms", num p99);
       ]);
  record ~exp:"serve" "plan_cache"
    (obj
       [
         ("hits", num (float_of_int pc.Plan_cache.s_hits));
         ("misses", num (float_of_int pc.Plan_cache.s_misses));
         ("evictions", num (float_of_int pc.Plan_cache.s_evictions));
         ("hit_rate", num hit_rate);
       ]);
  record ~exp:"serve" "results"
    (obj
       [
         ("digest", str got_digest);
         ("identical", str (if identical then "yes" else "NO"));
       ]);
  if n_ok <> clients * per_client then
    failwith (Fmt.str "serve: %d of %d requests failed" (clients * per_client - n_ok)
                (clients * per_client));
  if not identical then failwith "serve: concurrent results differ from sequential";
  if hit_rate <= 0.9 then failwith (Fmt.str "serve: plan-cache hit rate %.3f <= 0.9" hit_rate)

(* ------------------------------------------------------------------ *)
(* Drift watchdog: streaming overhead + deterministic alerting         *)
(* ------------------------------------------------------------------ *)

(* Three claims gated here: (1) the watchdog's per-query fan-in (two
   heat snapshots + one windowed aggregation) costs <= 2% wall time on
   the serve path — A/B via Watch.set_enabled with the same finely
   interleaved best-of scheme as the heat experiment; (2) streaming
   the declared mix against its own fingerprint scores drift ~0 —
   fingerprint weights depend only on the deterministic predicate
   observations, not on caching, so the score is exactly reproducible;
   (3) streaming a shifted mix trips the drift_sustained rule after
   exactly its sustain count of watchdog ticks. *)
let watch () =
  header "Drift watchdog: fan-in overhead, drift score, alert firing";
  let engine = Lazy.force xmark_engine in
  let module Watch = Xquec_obs.Watch in
  let module Alert = Xquec_obs.Alert in
  let was_enabled = Xquec_obs.is_enabled () in
  Xquec_obs.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Watch.set_enabled false;
      Watch.set_baseline None;
      Watch.reset ();
      Alert.set_rules [];
      Xquec_obs.set_enabled was_enabled)
  @@ fun () ->
  (* drop heat registrations accumulated by earlier experiments, then
     re-register this engine's containers: a server process tracks one
     engine, and the fan-in snapshots the whole table per query, so
     dozens of stale engines would overstate the overhead several-fold *)
  Xquec_obs.Heat.clear ();
  Array.iter
    (fun (c : Storage.Container.t) ->
      Xquec_obs.Heat.register ~uid:c.uid ~label:c.path ~blocks:(Array.length c.blocks))
    (Xquec_core.Engine.repo engine).Storage.Repository.containers;
  (* --- overhead: serve-path queries with the fan-in on vs off ------- *)
  let queries =
    List.map (fun id -> (Xmark.Queries.by_id id).Xmark.Queries.text) Xmark.Queries.fig7_ids
  in
  let run_mix () =
    List.iter (fun q -> ignore (Xquec_core.Engine.query_serialized_logged engine q)) queries
  in
  (* one huge window: every observation of the run stays live *)
  Watch.configure ~window_seconds:3600.0 ~windows:6 ();
  Watch.set_enabled true;
  run_mix ();
  let samples = 25 in
  let best_on = ref infinity and best_off = ref infinity in
  let measure enabled best =
    Watch.set_enabled enabled;
    let t = snd (time run_mix) in
    if t < !best then best := t
  in
  Gc.full_major ();
  for _ = 1 to samples do
    measure true best_on;
    measure false best_off
  done;
  let overhead_ms = !best_on -. !best_off in
  let overhead_ok = overhead_ms <= Float.max (0.02 *. !best_off) 1.0 in
  Fmt.pr "fan-in: mix off %.1f ms, on %.1f ms (Δ %+.2f ms) → %s@." !best_off !best_on
    overhead_ms
    (if overhead_ok then "within 2%" else "OVER BUDGET");
  (* --- drift ~0 on the declared mix --------------------------------- *)
  let mix_declared =
    [
      "for $p in document(\"auction.xml\")/site/people/person where $p/profile/@income > \
       \"80000\" return $p/name";
      "for $i in document(\"auction.xml\")/site/regions/europe/item where $i/location = \
       \"United States\" return $i/name";
    ]
  in
  let mix_shifted =
    [
      "for $o in document(\"auction.xml\")/site/open_auctions/open_auction where $o/reserve > \
       \"100\" return $o/reserve";
      "for $a in document(\"auction.xml\")/site/closed_auctions/closed_auction for $p in \
       document(\"auction.xml\")/site/people/person where $p/@id = $a/buyer/@person return \
       $p/name";
    ]
  in
  let stream mix =
    Watch.reset ();
    Xquec_core.Serve.watch_tick_reset ();
    List.iter (fun q -> ignore (Xquec_core.Engine.query_serialized_logged engine q)) mix
  in
  Watch.set_enabled true;
  Alert.set_rules (Xquec_core.Serve.default_rules ~drift_threshold:0.3 ());
  (* declare the mix by streaming it once and keeping its fingerprint *)
  stream mix_declared;
  Watch.set_baseline (Some (Watch.fingerprint ()));
  stream mix_declared;
  let st, trs = Xquec_core.Serve.watch_tick () in
  let drift_declared =
    match st.Watch.w_drift with Some d -> d | None -> failwith "watch: no drift on declared mix"
  in
  let declared_fired =
    List.exists (fun (t : Alert.transition) -> t.Alert.t_rule = "drift_sustained") trs
  in
  (* --- deterministic fire on the shifted mix ------------------------ *)
  stream mix_shifted;
  Alert.reset ();
  let drift_shifted = ref nan and fired_at = ref 0 in
  let sustain = 3 in
  for i = 1 to sustain do
    let st, trs = Xquec_core.Serve.watch_tick () in
    (match st.Watch.w_drift with Some d -> drift_shifted := d | None -> ());
    if
      !fired_at = 0
      && List.exists
           (fun (t : Alert.transition) ->
             t.Alert.t_rule = "drift_sustained" && t.Alert.t_event = "fired")
           trs
    then fired_at := i
  done;
  let fired = !fired_at = sustain in
  Fmt.pr "drift: declared mix %.4f, shifted mix %.4f; drift_sustained %s@." drift_declared
    !drift_shifted
    (if fired then Fmt.str "fired at tick %d" !fired_at else "DID NOT FIRE");
  record ~exp:"watch" "overhead"
    (obj
       [
         ("off_ms", num !best_off);
         ("on_ms", num !best_on);
         ("overhead_ms", num overhead_ms);
         ("overhead_ok", str (if overhead_ok then "yes" else "no"));
       ]);
  record ~exp:"watch" "drift"
    (obj
       [
         ("declared", num drift_declared);
         ("shifted", num !drift_shifted);
         ("separates", str (if !drift_shifted > drift_declared +. 0.3 then "yes" else "no"));
       ]);
  record ~exp:"watch" "alert"
    (obj
       [
         ("fired", str (if fired then "yes" else "no"));
         ("fired_at_tick", num (float_of_int !fired_at));
         ("declared_mix_fired", str (if declared_fired then "YES" else "no"));
       ]);
  if drift_declared > 0.01 then
    failwith (Fmt.str "watch: declared mix drifted %.4f > 0.01" drift_declared);
  if declared_fired then failwith "watch: drift_sustained fired on the declared mix";
  if not fired then
    failwith
      (Fmt.str "watch: drift_sustained did not fire after %d sustained windows (drift %.4f)"
         sustain !drift_shifted)

(* ------------------------------------------------------------------ *)
(* Adaptive blocks: online re-compaction and sequential prefetch       *)
(* ------------------------------------------------------------------ *)

(* Claims gated here: (1) when the workload shifts from scans to
   selective range lookups, re-blocking the hot text containers from
   scan-era 64 KiB blocks down to 1 KiB makes the shifted mix no
   slower cold (post <= pre, best-of minima) while header pruning cuts
   the decoded payload bytes at least in half; (2) answers are
   byte-identical across the mid-run copy-on-write swap, including for
   a query domain racing the compaction; (3) with sequential-scan
   read-ahead on, a cold block-by-block walk turns all but the first
   two demand misses into prefetch fills that are then consumed.
   Timings are full-gate-only; the quick gate pins the digests, block
   counts, payload bytes and the yes/no claims. *)
let compact () =
  header "Adaptive blocks: online compaction + sequential prefetch";
  let module Container = Storage.Container in
  let module Buffer_pool = Storage.Buffer_pool in
  let module Compactor = Storage.Compactor in
  (* private engine: this experiment re-blocks containers mid-run, so
     it must never touch the shared engine other experiments time *)
  let xml = Xmark.Xmlgen.generate ~scale:0.4 () in
  let engine = Xquec_core.Engine.load ~name:"auction.xml" xml in
  let repo = Xquec_core.Engine.repo engine in
  Compactor.reset_stats ();
  let saved_pool = Storage.Domain_pool.size () in
  let saved_depth = Container.prefetch_depth () in
  let finally () =
    Container.set_prefetch_depth saved_depth;
    Storage.Domain_pool.set_size saved_pool
  in
  Fun.protect ~finally @@ fun () ->
  (* the hot containers of the scan era: the large text containers *)
  let targets =
    Array.to_list repo.Storage.Repository.containers
    |> List.filter (fun (c : Container.t) ->
           c.Container.plain_bytes >= 8000 && c.Container.n_records >= 16)
    |> List.sort (fun (a : Container.t) (b : Container.t) ->
           compare a.Container.path b.Container.path)
  in
  if targets = [] then failwith "compact: no large text containers at this scale";
  let ids = List.map (fun (c : Container.t) -> c.Container.id) targets in
  let target_bytes =
    List.fold_left (fun a (c : Container.t) -> a + c.Container.plain_bytes) 0 targets
  in
  (* the shifted mix: one selective range lookup per hot container *)
  let bounds = [| "b"; "c"; "ad"; "al"; "ba"; "bo" |] in
  let queries =
    List.mapi
      (fun i (c : Container.t) ->
        let p = c.Container.path in
        let elem_path =
          if Filename.check_suffix p "/#text" then String.sub p 0 (String.length p - 6)
          else p
        in
        Fmt.str "document(\"auction.xml\")%s[text() < \"%s\"]" elem_path
          bounds.(i mod Array.length bounds))
      targets
  in
  let run_mix () =
    String.concat "|" (List.map (fun q -> Xquec_core.Engine.query_serialized engine q) queries)
  in
  let md5 s = Digest.to_hex (Digest.string s) in
  let blocks_of_ids () =
    List.fold_left
      (fun a id -> a + Container.block_count repo.Storage.Repository.containers.(id))
      0 ids
  in
  let cold_payload_stats () =
    Buffer_pool.clear ();
    Buffer_pool.reset_stats ();
    ignore (run_mix ());
    Buffer_pool.snapshot ()
  in
  let time_mix_cold samples =
    Gc.full_major ();
    let best = ref infinity in
    for _ = 1 to samples do
      Buffer_pool.clear ();
      let t = snd (time (fun () -> ignore (run_mix ()))) in
      if t < !best then best := t
    done;
    !best
  in
  (* --- scan-era layout: 64 KiB blocks ------------------------------- *)
  let pre_results =
    Compactor.compact repo ~targets:(List.map (fun id -> (id, 65536)) ids)
  in
  let pre_blocks = blocks_of_ids () in
  let digest_pre = md5 (run_mix ()) in
  let pre = cold_payload_stats () in
  let samples = 15 in
  let pre_ms = time_mix_cold samples in
  (* --- the workload has shifted: re-block to 1 KiB mid-run, with a
     query domain racing the copy-on-write swap -------------------- *)
  let race_rounds = 8 in
  let racer =
    Domain.spawn (fun () ->
        let bad = ref 0 in
        for _ = 1 to race_rounds do
          if md5 (run_mix ()) <> digest_pre then incr bad
        done;
        !bad)
  in
  let post_results =
    Compactor.compact repo ~targets:(List.map (fun id -> (id, 1024)) ids)
  in
  let race_bad = Domain.join racer in
  let post_blocks = blocks_of_ids () in
  let digest_post = md5 (run_mix ()) in
  let post = cold_payload_stats () in
  let post_ms = time_mix_cold samples in
  let k = Compactor.snapshot () in
  let race_ok = race_bad = 0 in
  let digests_ok = digest_post = digest_pre in
  let decode_reduced = 2 * post.Buffer_pool.s_payload_bytes <= pre.Buffer_pool.s_payload_bytes in
  let post_le_pre = post_ms <= pre_ms in
  Fmt.pr "shifted mix over %d containers (%d KB of values):@." (List.length targets)
    (target_bytes / 1024);
  Fmt.pr "  64 KiB blocks: %3d blocks, %6d payload bytes decoded cold, best %.2f ms@."
    pre_blocks pre.Buffer_pool.s_payload_bytes pre_ms;
  Fmt.pr "  1 KiB blocks:  %3d blocks, %6d payload bytes decoded cold, best %.2f ms@."
    post_blocks post.Buffer_pool.s_payload_bytes post_ms;
  Fmt.pr "  digests %s, race %d/%d identical, post %s pre@."
    (if digests_ok then "identical" else "DIFFER")
    (race_rounds - race_bad) race_rounds
    (if post_le_pre then "<=" else "SLOWER THAN");
  record ~exp:"compact" "reblock"
    (obj
       [
         ("targets_count", num (float_of_int (List.length targets)));
         ("target_bytes", num (float_of_int target_bytes));
         ("pre_block_bytes", num 65536.0);
         ("post_block_bytes", num 1024.0);
         ("pre_blocks", num (float_of_int pre_blocks));
         ("post_blocks", num (float_of_int post_blocks));
         ("compactions_count", num (float_of_int k.Compactor.k_compactions));
       ]);
  record ~exp:"compact" "decode"
    (obj
       [
         ("pre_payload_bytes", num (float_of_int pre.Buffer_pool.s_payload_bytes));
         ("post_payload_bytes", num (float_of_int post.Buffer_pool.s_payload_bytes));
         ("post_skipped_bytes", num (float_of_int post.Buffer_pool.s_skipped_bytes));
         ("reduced", str (if decode_reduced then "yes" else "no"));
       ]);
  record ~exp:"compact" "timing"
    (obj
       [
         ("pre_ms", num pre_ms);
         ("post_ms", num post_ms);
         ("speedup", num (pre_ms /. post_ms));
         ("post_le_pre", str (if post_le_pre then "yes" else "no"));
       ]);
  record ~exp:"compact" "digest"
    (obj
       [
         ("mix", str digest_pre);
         ("identical", str (if digests_ok then "yes" else "no"));
         ("race_identical", str (if race_ok then "yes" else "no"));
       ]);
  (* --- sequential-scan read-ahead on the biggest container ---------- *)
  Storage.Domain_pool.set_size 0;
  let big_id =
    (List.fold_left
       (fun (best : Container.t) (c : Container.t) ->
         if c.Container.plain_bytes > best.Container.plain_bytes then c else best)
       (List.hd targets) (List.tl targets))
      .Container.id
  in
  let big = repo.Storage.Repository.containers.(big_id) in
  Container.reblock big ~block_size:512;
  let nblocks = Container.block_count big in
  let walk () =
    for i = 0 to Container.length big - 1 do
      ignore (Container.get big i)
    done
  in
  let scan depth =
    Container.set_prefetch_depth depth;
    Buffer_pool.clear ();
    Buffer_pool.reset_stats ();
    walk ();
    Buffer_pool.snapshot ()
  in
  let off = scan 0 in
  let on = scan 8 in
  Container.set_prefetch_depth 0;
  let rate (s : Buffer_pool.stats) =
    float_of_int s.Buffer_pool.s_hits
    /. float_of_int (s.Buffer_pool.s_hits + s.Buffer_pool.s_misses)
  in
  let gain = rate on -. rate off in
  Fmt.pr "read-ahead over %d blocks: misses %d -> %d, %d prefetched (%d consumed), hit rate \
          %.2f -> %.2f@."
    nblocks off.Buffer_pool.s_misses on.Buffer_pool.s_misses on.Buffer_pool.s_prefetch_fills
    on.Buffer_pool.s_prefetch_hits (rate off) (rate on);
  record ~exp:"compact" "prefetch"
    (obj
       [
         ("scan_blocks", num (float_of_int nblocks));
         ("off_misses", num (float_of_int off.Buffer_pool.s_misses));
         ("on_demand_misses", num (float_of_int on.Buffer_pool.s_misses));
         ("prefetched_blocks", num (float_of_int on.Buffer_pool.s_prefetch_fills));
         ("prefetch_hits", num (float_of_int on.Buffer_pool.s_prefetch_hits));
         ("hit_rate_off", num (rate off));
         ("hit_rate_on", num (rate on));
         ("gain_positive", str (if gain > 0.0 then "yes" else "no"));
       ]);
  ignore pre_results;
  ignore post_results;
  if not digests_ok then failwith "compact: query digest changed across re-blocking";
  if not race_ok then
    failwith
      (Fmt.str "compact: %d/%d racing queries saw a non-identical answer mid-swap" race_bad
         race_rounds);
  if not decode_reduced then
    failwith
      (Fmt.str "compact: small blocks did not halve decoded payload bytes (%d -> %d)"
         pre.Buffer_pool.s_payload_bytes post.Buffer_pool.s_payload_bytes);
  if not post_le_pre then
    failwith (Fmt.str "compact: shifted mix slower after compaction (%.2f ms -> %.2f ms)" pre_ms post_ms);
  if on.Buffer_pool.s_misses >= off.Buffer_pool.s_misses || on.Buffer_pool.s_prefetch_fills = 0
  then failwith "compact: read-ahead did not reduce demand misses";
  if gain <= 0.0 then failwith "compact: read-ahead did not raise the buffer-pool hit rate"

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("table1", table1);
    ("fig6_left", fig6_left);
    ("fig6_right", fig6_right);
    ("fig7", fig7);
    ("q8_q9", q8_q9);
    ("storage_occupancy", storage_occupancy);
    ("partitioning_gain", partitioning_gain);
    ("ablations", ablations);
    ("homomorphic_scan", homomorphic_scan);
    ("codec_costs", codec_costs);
    ("cache", cache);
    ("parallel", parallel);
    ("join", join);
    ("heat", heat);
    ("serve", serve);
    ("watch", watch);
    ("compact", compact);
  ]

let () =
  let selected = ref [] in
  let rec parse_args = function
    | [] -> ()
    | "--scale" :: v :: rest ->
      scale := float_of_string v;
      parse_args rest
    | "--fig6-scales" :: v :: rest ->
      fig6_scales := List.map float_of_string (String.split_on_char ',' v);
      parse_args rest
    | "--domains" :: v :: rest ->
      domains_sweep := List.map int_of_string (String.split_on_char ',' v);
      parse_args rest
    | "--json" :: v :: rest ->
      json_out := Some v;
      parse_args rest
    | "--no-json" :: rest ->
      json_out := None;
      parse_args rest
    | name :: rest ->
      if List.mem_assoc name experiments then selected := name :: !selected
      else begin
        Fmt.epr "unknown experiment %S; available: %s@." name
          (String.concat ", " (List.map fst experiments));
        exit 1
      end;
      parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let to_run = match List.rev !selected with [] -> List.map fst experiments | l -> l in
  Fmt.pr "XQueC benchmark harness (XMark scale %.2g)@." !scale;
  List.iter
    (fun name ->
      let t0 = Unix.gettimeofday () in
      (List.assoc name experiments) ();
      record ~exp:name "wall_s" (num (Unix.gettimeofday () -. t0)))
    to_run;
  (match !json_out with
  | Some path ->
    let oc = open_out path in
    output_string oc (Xquec_obs.Json.to_string (results_json ()));
    output_char oc '\n';
    close_out oc;
    Fmt.pr "@.wrote %s@." path
  | None -> ());
  Fmt.pr "@.done.@."
