for $b in document("auction.xml")/site/people/person[@id = "person0"]
return $b/name/text()
;;
for $p in document("auction.xml")/site/people/person
let $a := for $t in document("auction.xml")/site/closed_auctions/closed_auction
          where $t/buyer/@person = $p/@id return $t
return <item person="{$p/name/text()}">{count($a)}</item>
;;
count(for $i in document("auction.xml")/site/closed_auctions/closed_auction
      where $i/price/text() >= 40 return $i/price)
;;
for $p in document("auction.xml")/site/people/person
let $l := for $i in document("auction.xml")/site/open_auctions/open_auction/initial
          where $p/profile/@income > 5000 * $i/text() return $i
return <items name="{$p/name/text()}">{count($l)}</items>
