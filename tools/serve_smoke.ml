(* Serving smoke check (`make serve-smoke`): start the real `xquec
   serve` binary against a small repository, fire a burst of concurrent
   requests at it through Xquec_obs.Hammer (the curl-equivalent),
   replay a shifted query mix until the drift watchdog raises
   [drift_sustained] on /alerts and in the alert log, and assert a
   clean shutdown on SIGTERM. This is the one place the whole serving
   stack — CLI flag parsing, worker fan-out, admission, plan cache,
   metrics endpoints, watchdog ticker, signal-driven teardown — runs as
   an operator would run it, process boundary included.

     serve_smoke XQUEC_EXE INPUT.xqc

   Exit 0 on success; nonzero with a message on the first failed
   assertion. *)

let die fmt = Fmt.kstr (fun s -> prerr_endline ("serve_smoke: " ^ s); exit 1) fmt

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec scan i = i + nl <= hl && (String.sub hay i nl = needle || scan (i + 1)) in
  scan 0

let () =
  let exe, input =
    match Sys.argv with
    | [| _; exe; input |] -> (exe, input)
    | _ -> die "usage: serve_smoke XQUEC_EXE INPUT.xqc"
  in
  (* declared workload: the same point query the burst replays, so the
     watchdog sees drift ~0 until the shifted phase starts *)
  let q = "document(\"auction.xml\")/site/people/person[@id = \"person0\"]/name" in
  let workload_file = Filename.temp_file "serve_smoke_workload" ".xq" in
  let alerts_log = Filename.temp_file "serve_smoke_alerts" ".jsonl" in
  let oc = open_out workload_file in
  output_string oc (q ^ "\n");
  close_out oc;
  (* port 0: the server picks a free port and prints it; modest worker
     and admission settings so the flags themselves are exercised; a
     sub-second watch window so the drift alert can fire within the
     smoke budget *)
  let argv =
    [|
      exe; "serve"; input; "-p"; "0"; "--serve-workers"; "2"; "--max-inflight"; "32";
      "--plan-cache"; "16"; "--watch-window"; "0.2"; "--drift-alert"; "0.5";
      "--alerts-log"; alerts_log; "-w"; workload_file;
    |]
  in
  let out_read, out_write = Unix.pipe () in
  let pid = Unix.create_process exe argv Unix.stdin out_write Unix.stderr in
  Unix.close out_write;
  let ic = Unix.in_channel_of_descr out_read in
  (* first line announces the bound port:
     "xquec serve: listening on http://127.0.0.1:NNNN (endpoints: ...)" *)
  let port =
    let deadline = Unix.gettimeofday () +. 30.0 in
    let rec find () =
      if Unix.gettimeofday () > deadline then die "server did not announce a port in 30s";
      match input_line ic with
      | line -> (
        match
          let n = String.length line in
          let rec last_colon i = if i < 0 then None else if line.[i] = ':' then Some i else last_colon (i - 1) in
          if n > 0 && String.length line > 20
             && (try String.sub line 0 26 = "xquec serve: listening on " with _ -> false)
          then
            (* strip everything after the port number *)
            let upto = match String.index_opt line '(' with Some i -> i | None -> n in
            let head = String.trim (String.sub line 0 upto) in
            match last_colon (String.length head - 1) with
            | Some c ->
              int_of_string_opt (String.trim (String.sub head (c + 1) (String.length head - c - 1)))
            | None -> None
          else None
        with
        | Some p -> p
        | None -> find ())
      | exception End_of_file -> die "server exited before announcing a port"
    in
    find ()
  in
  Printf.printf "serve_smoke: server up on port %d\n%!" port;
  (* health + one sequential query first, then the concurrent burst *)
  let h = Xquec_obs.Hammer.request ~port "/healthz" in
  if h.Xquec_obs.Hammer.r_status <> 200 then die "healthz returned %d" h.Xquec_obs.Hammer.r_status;
  if not (contains h.Xquec_obs.Hammer.r_body "\"status\":\"ok\"") then
    die "healthz is not the readiness JSON: %s" h.Xquec_obs.Hammer.r_body;
  if not (contains h.Xquec_obs.Hammer.r_body "\"watchdog\"") then
    die "healthz readiness JSON lacks the watchdog section: %s" h.Xquec_obs.Hammer.r_body;
  let r = Xquec_obs.Hammer.request ~port ~meth:"POST" ~body:q "/query" in
  if r.Xquec_obs.Hammer.r_status <> 200 then
    die "query returned %d: %s" r.Xquec_obs.Hammer.r_status r.Xquec_obs.Hammer.r_body;
  let reference = r.Xquec_obs.Hammer.r_body in
  let clients = 20 and per_client = 3 in
  let outcomes =
    Xquec_obs.Hammer.drive ~port ~clients ~requests_per_client:per_client
      ~target:(fun _ seq ->
        if seq = 1 then ("GET", "/metrics", "") else ("POST", "/query", q))
      ()
  in
  if List.length outcomes <> clients * per_client then
    die "expected %d outcomes, got %d" (clients * per_client) (List.length outcomes);
  List.iter
    (fun (o : Xquec_obs.Hammer.outcome) ->
      let rep = o.Xquec_obs.Hammer.o_reply in
      if rep.Xquec_obs.Hammer.r_status <> 200 then
        die "client %d seq %d: HTTP %d" o.Xquec_obs.Hammer.o_client
          o.Xquec_obs.Hammer.o_seq rep.Xquec_obs.Hammer.r_status;
      if o.Xquec_obs.Hammer.o_seq <> 1 && rep.Xquec_obs.Hammer.r_body <> reference then
        die "client %d seq %d: result differs from the sequential reference"
          o.Xquec_obs.Hammer.o_client o.Xquec_obs.Hammer.o_seq)
    outcomes;
  (* the /metrics replies must carry the serving series *)
  let metrics_seen =
    List.exists
      (fun (o : Xquec_obs.Hammer.outcome) ->
        o.Xquec_obs.Hammer.o_seq = 1
        && contains o.Xquec_obs.Hammer.o_reply.Xquec_obs.Hammer.r_body
             "xquec_serve_plan_cache_hits")
      outcomes
  in
  if not metrics_seen then die "/metrics never exposed xquec_serve_plan_cache_hits";
  Printf.printf "serve_smoke: %d concurrent requests ok (results consistent, metrics live)\n%!"
    (clients * per_client);
  (* --- drift watchdog: replay a shifted mix until the alert fires --- *)
  let w = Xquec_obs.Hammer.request ~port "/watch" in
  if w.Xquec_obs.Hammer.r_status <> 200 || not (contains w.Xquec_obs.Hammer.r_body "\"enabled\":true")
  then die "/watch did not report an enabled watchdog: %s" w.Xquec_obs.Hammer.r_body;
  let shifted =
    [
      "for $o in document(\"auction.xml\")/site/open_auctions/open_auction where $o/reserve > \
       \"100\" return $o/reserve";
      "for $a in document(\"auction.xml\")/site/closed_auctions/closed_auction for $p in \
       document(\"auction.xml\")/site/people/person where $p/@id = $a/buyer/@person return \
       $p/name";
    ]
  in
  let fired = ref false in
  let deadline = Unix.gettimeofday () +. 15.0 in
  while (not !fired) && Unix.gettimeofday () < deadline do
    List.iter
      (fun sq ->
        let rep = Xquec_obs.Hammer.request ~port ~meth:"POST" ~body:sq "/query" in
        if rep.Xquec_obs.Hammer.r_status <> 200 then
          die "shifted query returned %d: %s" rep.Xquec_obs.Hammer.r_status
            rep.Xquec_obs.Hammer.r_body)
      shifted;
    let a = Xquec_obs.Hammer.request ~port "/alerts" in
    if
      a.Xquec_obs.Hammer.r_status = 200
      && contains a.Xquec_obs.Hammer.r_body "\"rule\":\"drift_sustained\",\"event\":\"fired\""
    then fired := true
    else Unix.sleepf 0.1
  done;
  if not !fired then die "drift_sustained never fired on /alerts within 15s of the shifted mix";
  (* the fired transition must also be in the alert log on disk *)
  let log_data =
    let ic = open_in_bin alerts_log in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  if not (contains log_data "\"rule\":\"drift_sustained\",\"event\":\"fired\"") then
    die "alert log %s lacks the drift_sustained fired transition" alerts_log;
  Printf.printf "serve_smoke: drift_sustained fired on /alerts and in the alert log\n%!";
  (* clean shutdown: SIGTERM, then the process must go away *)
  Unix.kill pid Sys.sigterm;
  (match Unix.waitpid [] pid with
  | _, Unix.WSIGNALED s when s = Sys.sigterm -> ()
  | _, Unix.WEXITED 0 -> ()
  | _, status ->
    let describe = function
      | Unix.WEXITED c -> Fmt.str "exited %d" c
      | Unix.WSIGNALED s -> Fmt.str "killed by signal %d" s
      | Unix.WSTOPPED s -> Fmt.str "stopped by signal %d" s
    in
    die "unclean shutdown: %s" (describe status));
  close_in_noerr ic;
  (try Sys.remove workload_file with Sys_error _ -> ());
  (try Sys.remove alerts_log with Sys_error _ -> ());
  Printf.printf "serve_smoke: clean shutdown\n%!"
