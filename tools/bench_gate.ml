(* Bench regression gate CLI: diff a fresh bench run against the
   committed baseline (BENCH_results.json) with per-metric-class
   tolerances and emit a machine-readable verdict.

   The comparison logic lives in Xquec_obs.Gate (pure JSON in / report
   out); this executable is just argument parsing, file IO and exit
   codes:

     bench_gate --candidate _gate/results.json            # full diff
     bench_gate --quick --candidate _gate/results.json    # skip timings
     bench_gate --json verdict.json ...                   # write verdict

   Every run also appends one compact summary line to the committed
   BENCH_history.jsonl (see docs/OBSERVABILITY.md for the schema), so
   the perf trajectory across PRs stays visible instead of only the
   latest BENCH_results.json surviving. --history FILE redirects it;
   --history '' disables the append.

   Exit status: 0 = gate passed, 1 = regression (failed or missing
   metrics), 2 = bad usage / unreadable input. *)

let usage =
  "bench_gate [--baseline FILE] [--candidate FILE] [--quick] [--json OUT] [--history FILE]"

let baseline = ref "BENCH_results.json"
let candidate = ref ""
let quick = ref false
let json_out = ref ""
let history = ref "BENCH_history.jsonl"

let spec =
  [
    ( "--baseline",
      Arg.Set_string baseline,
      "FILE  committed baseline (default BENCH_results.json)" );
    ("--candidate", Arg.Set_string candidate, "FILE  fresh bench results to check");
    ( "--quick",
      Arg.Set quick,
      "  skip timing metrics (machine-speed independent; what `make check` uses)" );
    ("--json", Arg.Set_string json_out, "OUT  also write the verdict as JSON to OUT");
    ( "--history",
      Arg.Set_string history,
      "FILE  append a one-line run summary (default BENCH_history.jsonl; '' disables)" );
  ]

let die fmt = Printf.ksprintf (fun s -> prerr_endline ("bench_gate: " ^ s); exit 2) fmt

let read_json ~what path =
  let data =
    try
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    with Sys_error e -> die "cannot read %s %s: %s" what path e
  in
  try Xquec_obs.Json.parse data
  with Xquec_obs.Json.Parse_error e -> die "%s %s: %s" what path e

let iso8601 t =
  let tm = Unix.gmtime t in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec

(* One compact line per run: verdict counters plus each candidate
   experiment's harness wall time, so `git log -p BENCH_history.jsonl`
   shows the perf trajectory. A failed append is a warning, not an
   error — the gate verdict must not depend on a writable worktree. *)
let append_history ~cand (report : Xquec_obs.Gate.report) =
  let module J = Xquec_obs.Json in
  let walls =
    match J.member "experiments" cand with
    | Some (J.Obj exps) ->
        List.filter_map
          (fun (name, body) ->
            match J.member "wall_s" body with
            | Some (J.Num _ as n) -> Some (name, n)
            | _ -> None)
          exps
    | _ -> []
  in
  let n i = J.Num (float_of_int i) in
  let line =
    J.Obj
      [
        ("ts", J.Str (iso8601 (Unix.gettimeofday ())));
        ("mode", J.Str (if !quick then "quick" else "full"));
        ("passed", J.Bool report.Xquec_obs.Gate.r_passed);
        ("compared", n report.Xquec_obs.Gate.r_compared);
        ("failed", n report.Xquec_obs.Gate.r_failed);
        ("missing", n report.Xquec_obs.Gate.r_missing);
        ("skipped", n report.Xquec_obs.Gate.r_skipped);
        ("wall_s", J.Obj walls);
      ]
  in
  try
    let oc = open_out_gen [ Open_append; Open_creat ] 0o644 !history in
    output_string oc (J.to_string line);
    output_char oc '\n';
    close_out oc
  with Sys_error e -> prerr_endline ("bench_gate: history append failed: " ^ e)

let () =
  Arg.parse spec (fun a -> die "unexpected argument %S" a) usage;
  if !candidate = "" then die "missing --candidate FILE (fresh bench results)";
  let mode = if !quick then Xquec_obs.Gate.Quick else Xquec_obs.Gate.Full in
  let cand = read_json ~what:"candidate" !candidate in
  let report =
    Xquec_obs.Gate.compare_results ~mode
      ~baseline:(read_json ~what:"baseline" !baseline)
      ~candidate:cand
  in
  if !history <> "" then append_history ~cand report;
  if !json_out <> "" then begin
    let oc = open_out !json_out in
    output_string oc (Xquec_obs.Json.to_string (Xquec_obs.Gate.report_to_json report));
    output_char oc '\n';
    close_out oc
  end;
  print_string (Xquec_obs.Gate.render report);
  exit (if report.Xquec_obs.Gate.r_passed then 0 else 1)
