(* Bench regression gate CLI: diff a fresh bench run against the
   committed baseline (BENCH_results.json) with per-metric-class
   tolerances and emit a machine-readable verdict.

   The comparison logic lives in Xquec_obs.Gate (pure JSON in / report
   out); this executable is just argument parsing, file IO and exit
   codes:

     bench_gate --candidate _gate/results.json            # full diff
     bench_gate --quick --candidate _gate/results.json    # skip timings
     bench_gate --json verdict.json ...                   # write verdict

   Exit status: 0 = gate passed, 1 = regression (failed or missing
   metrics), 2 = bad usage / unreadable input. *)

let usage = "bench_gate [--baseline FILE] [--candidate FILE] [--quick] [--json OUT]"

let baseline = ref "BENCH_results.json"
let candidate = ref ""
let quick = ref false
let json_out = ref ""

let spec =
  [
    ( "--baseline",
      Arg.Set_string baseline,
      "FILE  committed baseline (default BENCH_results.json)" );
    ("--candidate", Arg.Set_string candidate, "FILE  fresh bench results to check");
    ( "--quick",
      Arg.Set quick,
      "  skip timing metrics (machine-speed independent; what `make check` uses)" );
    ("--json", Arg.Set_string json_out, "OUT  also write the verdict as JSON to OUT");
  ]

let die fmt = Printf.ksprintf (fun s -> prerr_endline ("bench_gate: " ^ s); exit 2) fmt

let read_json ~what path =
  let data =
    try
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    with Sys_error e -> die "cannot read %s %s: %s" what path e
  in
  try Xquec_obs.Json.parse data
  with Xquec_obs.Json.Parse_error e -> die "%s %s: %s" what path e

let () =
  Arg.parse spec (fun a -> die "unexpected argument %S" a) usage;
  if !candidate = "" then die "missing --candidate FILE (fresh bench results)";
  let mode = if !quick then Xquec_obs.Gate.Quick else Xquec_obs.Gate.Full in
  let report =
    Xquec_obs.Gate.compare_results ~mode
      ~baseline:(read_json ~what:"baseline" !baseline)
      ~candidate:(read_json ~what:"candidate" !candidate)
  in
  if !json_out <> "" then begin
    let oc = open_out !json_out in
    output_string oc (Xquec_obs.Json.to_string (Xquec_obs.Gate.report_to_json report));
    output_char oc '\n';
    close_out oc
  end;
  print_string (Xquec_obs.Gate.render report);
  exit (if report.Xquec_obs.Gate.r_passed then 0 else 1)
