(* Documentation lint for .mli interfaces: every exported item (val,
   type, exception, external, module) must carry an odoc comment —
   either a [(** ... *)] block directly above it, inline on the same
   line, or directly below the declaration.

   Run as a plain script (no odoc needed):

     ocaml tools/doc_lint.ml lib/storage lib/compress

   Exits 1 and lists the offenders if any exported item is undocumented;
   `make docs` treats that as a build failure.

   Cross-reference mode (`--xref FILE.md`, repeatable): additionally
   checks an operator document against the sources, so guides like
   docs/SERVING.md cannot drift silently —

   - every `--flag` token the document mentions must exist as a quoted
     flag name somewhere under bin/, bench/ or tools/ (cmdliner
     declares flags as [info [ "serve-workers" ]], the bench parses
     "--scale" literals; both spellings are accepted);
   - every `xquec_*` metric token must correspond to a metric-name
     string literal in the sources: the exposition maps registry name
     "a.b.c" to "xquec_a_b_c", so the token (minus the histogram
     `_bucket`/`_sum`/`_count` suffixes and any label braces) must
     match a literal with dots normalized to underscores, or extend
     one (dynamically-suffixed families like "serve.budget." ^ kind
     and per-container series match by prefix);
   - format constants cited in backtick code spans must resolve: a
     magic like `XQC\x04` must appear as a string literal in the
     sources (the literal extractor strips the backslash, so source
     "XQC\x04" and doc `XQC\x04` both normalize to "XQCx04"), and
     flag / header-field identifiers (`flag_*`, `h_*`, `b_*`) must
     exist as words in the OCaml sources — docs/FORMATS.md cannot
     name a constant the code does not define. *)

let item_prefixes = [ "val "; "type "; "exception "; "external "; "module " ]

let starts_with p s = String.length s >= String.length p && String.sub s 0 (String.length p) = p

let trim = String.trim

(* Per line: does a doc comment end on it? Tracks comment nesting so a
   close marker inside a plain comment does not count. *)
let analyze_lines (lines : string array) =
  let n = Array.length lines in
  let closes_doc = Array.make n false in
  let depth = ref 0 in
  let in_doc = ref false in
  for i = 0 to n - 1 do
    let line = lines.(i) in
    let len = String.length line in
    let j = ref 0 in
    while !j < len do
      if !j + 2 < len && String.sub line !j 3 = "(**" && !depth = 0 then begin
        depth := 1;
        in_doc := true;
        j := !j + 3
      end
      else if !j + 1 < len && String.sub line !j 2 = "(*" then begin
        if !depth = 0 then in_doc := false;
        incr depth;
        j := !j + 2
      end
      else if !j + 1 < len && String.sub line !j 2 = "*)" then begin
        decr depth;
        if !depth = 0 && !in_doc then closes_doc.(i) <- true;
        j := !j + 2
      end
      else incr j
    done
  done;
  closes_doc

let check_file path =
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let lines = Array.of_list (List.rev !lines) in
  let closes_doc = analyze_lines lines in
  let n = Array.length lines in
  let missing = ref [] in
  for i = 0 to n - 1 do
    let line = lines.(i) in
    if List.exists (fun p -> starts_with p line) item_prefixes then begin
      (* skip "module type of"-style aliases and local opens *)
      let prev_doc =
        (* nearest non-blank line above ends a doc comment *)
        let rec above k = if k < 0 then false
          else if trim lines.(k) = "" then false
          else closes_doc.(k)
        in
        above (i - 1)
      in
      let contains_sub s sub =
        let ls = String.length s and lb = String.length sub in
        let rec go k = k + lb <= ls && (String.sub s k lb = sub || go (k + 1)) in
        go 0
      in
      let inline_doc =
        (* a doc opener on the declaration line itself or right after *)
        let has k = k < n && contains_sub lines.(k) "(**" in
        has i || has (i + 1)
      in
      if not (prev_doc || inline_doc) then missing := (i + 1, trim line) :: !missing
    end
  done;
  List.rev !missing

(* --- markdown cross-reference ----------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* every .ml/.mli file under [roots], recursively *)
let source_files roots =
  let out = ref [] in
  let rec walk dir =
    if Sys.file_exists dir && Sys.is_directory dir then
      Array.iter
        (fun entry ->
          let p = Filename.concat dir entry in
          if Sys.is_directory p then (if entry <> "_build" then walk p)
          else if Filename.check_suffix p ".ml" || Filename.check_suffix p ".mli" then
            out := p :: !out)
        (Sys.readdir dir)
  in
  List.iter walk roots;
  !out

(* all double-quoted string literals in an OCaml source (good enough:
   skips backslash escapes, does not exclude comments — a literal
   inside a comment only widens what the doc may reference) *)
let string_literals (src : string) : string list =
  let out = ref [] in
  let n = String.length src in
  let i = ref 0 in
  while !i < n do
    if src.[!i] = '"' then begin
      let buf = Buffer.create 16 in
      incr i;
      let fin = ref false in
      while (not !fin) && !i < n do
        if src.[!i] = '\\' && !i + 1 < n then begin
          Buffer.add_char buf src.[!i + 1];
          i := !i + 2
        end
        else if src.[!i] = '"' then fin := true
        else begin
          Buffer.add_char buf src.[!i];
          incr i
        end
      done;
      incr i;
      out := Buffer.contents buf :: !out
    end
    else incr i
  done;
  !out

let is_word_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'

let is_flag_char c = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '-'

(* `--flag-name` tokens in a markdown text *)
let doc_flags (text : string) : string list =
  let out = ref [] in
  let n = String.length text in
  let i = ref 0 in
  while !i + 1 < n do
    if text.[!i] = '-' && text.[!i + 1] = '-'
       && (!i = 0 || not (is_flag_char text.[!i - 1] || text.[!i - 1] = '-'))
    then begin
      let j = ref (!i + 2) in
      while !j < n && is_flag_char text.[!j] do incr j done;
      let name = String.sub text (!i + 2) (!j - !i - 2) in
      if String.length name >= 2 && name.[0] >= 'a' && name.[0] <= 'z' then
        out := name :: !out;
      i := !j
    end
    else incr i
  done;
  List.sort_uniq compare !out

(* `xquec_*` metric tokens in a markdown text *)
let doc_metrics (text : string) : string list =
  let out = ref [] in
  let needle = "xquec_" in
  let nl = String.length needle in
  let n = String.length text in
  let i = ref 0 in
  while !i + nl <= n do
    if String.sub text !i nl = needle && (!i = 0 || not (is_word_char text.[!i - 1]))
    then begin
      let j = ref (!i + nl) in
      while !j < n && is_word_char text.[!j] do incr j done;
      out := String.sub text !i (!j - !i) :: !out;
      i := !j
    end
    else incr i
  done;
  List.sort_uniq compare !out

(* single-backtick `...` code spans in a markdown text (fenced blocks
   contribute nothing: ``` opens an empty span, which is skipped) *)
let doc_code_spans (text : string) : string list =
  let out = ref [] in
  let n = String.length text in
  let i = ref 0 in
  while !i < n do
    if text.[!i] = '`' then begin
      let j = ref (!i + 1) in
      while !j < n && text.[!j] <> '`' && text.[!j] <> '\n' do incr j done;
      if !j < n && text.[!j] = '`' && !j > !i + 1 then begin
        out := String.sub text (!i + 1) (!j - !i - 1) :: !out;
        i := !j + 1
      end
      else incr i
    end
    else incr i
  done;
  List.sort_uniq compare !out

let is_hex c = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

(* a repository magic cited as `XQC\xNN` *)
let is_magic_token s =
  String.length s = 7
  && String.sub s 0 3 = "XQC"
  && s.[3] = '\\' && s.[4] = 'x' && is_hex s.[5] && is_hex s.[6]

(* a format-flag or block/header-field identifier: `flag_*`, `h_*`, `b_*` *)
let is_const_ident s =
  let has_prefix p = starts_with p s && String.length s > String.length p in
  (has_prefix "flag_" || has_prefix "h_" || has_prefix "b_")
  && String.for_all (fun c -> (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '_') s

(* whole-word occurrence of [w] in [hay] *)
let contains_word (hay : string) (w : string) : bool =
  let lw = String.length w and lh = String.length hay in
  let rec go k =
    if k + lw > lh then false
    else if
      hay.[k] = w.[0]
      && String.sub hay k lw = w
      && (k = 0 || not (is_word_char hay.[k - 1]))
      && (k + lw = lh || not (is_word_char hay.[k + lw]))
    then true
    else go (k + 1)
  in
  lw > 0 && go 0

let strip_suffix s suf =
  if Filename.check_suffix s suf then String.sub s 0 (String.length s - String.length suf)
  else s

let dots_to_underscores s = String.map (fun c -> if c = '.' then '_' else c) s

let check_xref (md_path : string) : int =
  let text = read_file md_path in
  let sources = source_files [ "bin"; "lib"; "bench"; "tools" ] in
  let srcs = List.map read_file sources in
  let literals = List.concat_map string_literals srcs in
  (* flags: accept a literal "name" (cmdliner info) or "--name" (hand
     parsers) *)
  let lit_set = Hashtbl.create 1024 in
  List.iter (fun l -> Hashtbl.replace lit_set l ()) literals;
  let failures = ref 0 in
  List.iter
    (fun flag ->
      if not (Hashtbl.mem lit_set flag || Hashtbl.mem lit_set ("--" ^ flag)) then begin
        incr failures;
        Printf.eprintf "%s: flag --%s not found in any source\n" md_path flag
      end)
    (doc_flags text);
  (* metrics: normalized registry-name literals, matched exactly or by
     prefix (dynamic suffixes, per-container families) *)
  let norm_literals =
    List.filter_map
      (fun l ->
        if String.length l >= 4 && (String.contains l '.' || String.contains l '_') then
          Some (dots_to_underscores l)
        else None)
      literals
  in
  List.iter
    (fun token ->
      let core = String.sub token 6 (String.length token - 6) in
      let core = strip_suffix (strip_suffix (strip_suffix core "_bucket") "_sum") "_count" in
      let matched =
        List.exists
          (fun l ->
            l = core
            || String.length l >= 6
               && String.length l < String.length core
               && String.sub core 0 (String.length l) = l)
          norm_literals
      in
      if not matched then begin
        incr failures;
        Printf.eprintf "%s: metric %s has no matching metric-name literal in the sources\n"
          md_path token
      end)
    (doc_metrics text);
  (* format constants: `XQC\xNN` magics must match a source string
     literal (both sides normalize by dropping the backslash), and
     `flag_*` / `h_*` / `b_*` identifiers must exist as words in the
     OCaml sources *)
  List.iter
    (fun span ->
      if is_magic_token span then begin
        let norm = String.concat "" (String.split_on_char '\\' span) in
        if not (Hashtbl.mem lit_set norm) then begin
          incr failures;
          Printf.eprintf "%s: magic `%s` not found as a string literal in the sources\n"
            md_path span
        end
      end
      else if is_const_ident span then
        if not (List.exists (fun s -> contains_word s span) srcs) then begin
          incr failures;
          Printf.eprintf "%s: format constant `%s` not defined in the sources\n" md_path span
        end)
    (doc_code_spans text);
  !failures

let () =
  let args = match Array.to_list Sys.argv with _ :: rest -> rest | [] -> [] in
  let rec split dirs xrefs = function
    | [] -> (List.rev dirs, List.rev xrefs)
    | "--xref" :: f :: rest -> split dirs (f :: xrefs) rest
    | "--xref" :: [] -> (List.rev dirs, List.rev xrefs)
    | d :: rest -> split (d :: dirs) xrefs rest
  in
  let dirs, xrefs = split [] [] args in
  let dirs = if dirs = [] then [ "lib" ] else dirs in
  let files =
    List.concat_map
      (fun dir ->
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun f -> Filename.check_suffix f ".mli")
        |> List.map (Filename.concat dir)
        |> List.sort compare)
      dirs
  in
  let failures = ref 0 in
  List.iter
    (fun f ->
      match check_file f with
      | [] -> ()
      | missing ->
        List.iter
          (fun (lnum, decl) ->
            incr failures;
            Printf.eprintf "%s:%d: undocumented export: %s\n" f lnum decl)
          missing)
    files;
  let xref_failures = List.fold_left (fun acc f -> acc + check_xref f) 0 xrefs in
  if !failures > 0 || xref_failures > 0 then begin
    if !failures > 0 then
      Printf.eprintf "doc lint: %d undocumented exports in %d files checked\n" !failures
        (List.length files);
    if xref_failures > 0 then
      Printf.eprintf "doc lint: %d stale references in %d markdown files\n" xref_failures
        (List.length xrefs);
    exit 1
  end
  else
    Printf.printf "doc lint: %d interface files clean%s\n" (List.length files)
      (if xrefs = [] then ""
       else Printf.sprintf ", %d markdown files cross-checked" (List.length xrefs))
