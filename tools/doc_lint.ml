(* Documentation lint for .mli interfaces: every exported item (val,
   type, exception, external, module) must carry an odoc comment —
   either a [(** ... *)] block directly above it, inline on the same
   line, or directly below the declaration.

   Run as a plain script (no odoc needed):

     ocaml tools/doc_lint.ml lib/storage lib/compress

   Exits 1 and lists the offenders if any exported item is undocumented;
   `make docs` treats that as a build failure. *)

let item_prefixes = [ "val "; "type "; "exception "; "external "; "module " ]

let starts_with p s = String.length s >= String.length p && String.sub s 0 (String.length p) = p

let trim = String.trim

(* Per line: does a doc comment end on it? Tracks comment nesting so a
   close marker inside a plain comment does not count. *)
let analyze_lines (lines : string array) =
  let n = Array.length lines in
  let closes_doc = Array.make n false in
  let depth = ref 0 in
  let in_doc = ref false in
  for i = 0 to n - 1 do
    let line = lines.(i) in
    let len = String.length line in
    let j = ref 0 in
    while !j < len do
      if !j + 2 < len && String.sub line !j 3 = "(**" && !depth = 0 then begin
        depth := 1;
        in_doc := true;
        j := !j + 3
      end
      else if !j + 1 < len && String.sub line !j 2 = "(*" then begin
        if !depth = 0 then in_doc := false;
        incr depth;
        j := !j + 2
      end
      else if !j + 1 < len && String.sub line !j 2 = "*)" then begin
        decr depth;
        if !depth = 0 && !in_doc then closes_doc.(i) <- true;
        j := !j + 2
      end
      else incr j
    done
  done;
  closes_doc

let check_file path =
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let lines = Array.of_list (List.rev !lines) in
  let closes_doc = analyze_lines lines in
  let n = Array.length lines in
  let missing = ref [] in
  for i = 0 to n - 1 do
    let line = lines.(i) in
    if List.exists (fun p -> starts_with p line) item_prefixes then begin
      (* skip "module type of"-style aliases and local opens *)
      let prev_doc =
        (* nearest non-blank line above ends a doc comment *)
        let rec above k = if k < 0 then false
          else if trim lines.(k) = "" then false
          else closes_doc.(k)
        in
        above (i - 1)
      in
      let contains_sub s sub =
        let ls = String.length s and lb = String.length sub in
        let rec go k = k + lb <= ls && (String.sub s k lb = sub || go (k + 1)) in
        go 0
      in
      let inline_doc =
        (* a doc opener on the declaration line itself or right after *)
        let has k = k < n && contains_sub lines.(k) "(**" in
        has i || has (i + 1)
      in
      if not (prev_doc || inline_doc) then missing := (i + 1, trim line) :: !missing
    end
  done;
  List.rev !missing

let () =
  let dirs = match Array.to_list Sys.argv with _ :: rest when rest <> [] -> rest | _ -> [ "lib" ] in
  let files =
    List.concat_map
      (fun dir ->
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun f -> Filename.check_suffix f ".mli")
        |> List.map (Filename.concat dir)
        |> List.sort compare)
      dirs
  in
  let failures = ref 0 in
  List.iter
    (fun f ->
      match check_file f with
      | [] -> ()
      | missing ->
        List.iter
          (fun (lnum, decl) ->
            incr failures;
            Printf.eprintf "%s:%d: undocumented export: %s\n" f lnum decl)
          missing)
    files;
  if !failures > 0 then begin
    Printf.eprintf "doc lint: %d undocumented exports in %d files checked\n" !failures
      (List.length files);
    exit 1
  end
  else Printf.printf "doc lint: %d interface files clean\n" (List.length files)
