(** Public facade of XQueC: load (compress) a document — optionally
    tuned to a query workload — and evaluate XQuery over the compressed
    repository. *)

(** A loaded repository plus, when a workload guided compression, the
    partitioning decision that produced it. *)
type t = {
  repo : Storage.Repository.t;
  partitioning : Partitioner.result option;
}

(** Compress [xml] into a queryable repository. With [workload] queries,
    the §3 greedy search chooses algorithms and shared source models
    first. *)
val load :
  ?name:string -> ?workload:string list -> ?loader_options:Loader.options -> string -> t

(** The underlying storage repository. *)
val repo : t -> Storage.Repository.t

(** Parse an XQuery string to its AST (raises
    [Xquery.Parser.Syntax_error] on malformed input). *)
val parse_query : string -> Xquery.Ast.expr

(** MD5 hex of the query text — the query log's [query_hash] and the
    {!Plan_cache} key, computed in one place so they cannot drift. *)
val query_hash : string -> string

(** Parse through the process-wide {!Plan_cache}: the (possibly
    cached) immutable AST plus how the lookup resolved
    ({!Plan_cache.Bypass} while the cache capacity is 0). Parse errors
    propagate and are never cached. *)
val compile : string -> Xquery.Ast.expr * Plan_cache.lookup

(** Parse and evaluate a query, returning result items (still in their
    compressed-domain representation where possible). *)
val query : t -> string -> Executor.item list

(** Evaluate with per-operator profiling: results plus the annotated
    physical plan tree (see {!Xquec_obs.Explain}). *)
val query_profiled : t -> string -> Executor.item list * Xquec_obs.Explain.node

(** Evaluate an already-parsed query. *)
val query_ast : t -> Xquery.Ast.expr -> Executor.item list

(** Evaluate and serialize (decompressing the result, as the paper's QET
    measurements do). *)
val query_serialized : t -> string -> string

(** Evaluate, serialize, and — when a query-log file is configured
    (see {!Xquec_obs.Query_log}) — append exactly one JSONL record
    accounting for the query's full cost: wall/CPU time, plan shape
    and per-operator cardinalities, buffer-pool / decode-pool counter
    deltas, bytes decoded vs. bytes pruned, and GC allocation deltas
    (schema in [docs/OBSERVABILITY.md]). Deltas are taken around
    evaluation {e and} serialization, so they reconcile with the
    [--stats] pool summary of a single-query run. Also returns the
    profiled plan.

    [plan] (from {!compile}) skips the parse; [text] still provides
    the record's hash and echo. [admission] is attached verbatim as
    the record's ["admission"] field — the serving layer's description
    of how the request was admitted (in-flight depth, plan-cache
    outcome, armed budgets). *)
val query_serialized_logged :
  ?admission:Xquec_obs.Json.t ->
  ?plan:Xquery.Ast.expr ->
  t ->
  string ->
  string * Xquec_obs.Explain.node

(** Original document bytes / compressed repository bytes. *)
val compression_factor : t -> float

(** Per-component byte accounting of the compressed repository. *)
val size_breakdown : t -> Storage.Repository.size_breakdown

(** Serialize the repository to the on-disk container format (the bytes
    written by [xquec compress -o]). *)
val save : t -> string

(** Inverse of {!save}; accepts both v1 and v2 container layouts. *)
val restore : string -> t

(** Reconstruct the full document (the decompressor direction). *)
val to_document : t -> Xmlkit.Tree.document

(** {!to_document} serialized back to XML text. *)
val to_xml : ?indent:bool -> t -> string
