(** Public facade of XQueC: load (compress) a document — optionally
    tuned to a query workload — and evaluate XQuery over the compressed
    repository. *)

type t = {
  repo : Storage.Repository.t;
  partitioning : Partitioner.result option;
}

(** Compress [xml] into a queryable repository. With [workload] queries,
    the §3 greedy search chooses algorithms and shared source models
    first. *)
val load :
  ?name:string -> ?workload:string list -> ?loader_options:Loader.options -> string -> t

val repo : t -> Storage.Repository.t

val parse_query : string -> Xquery.Ast.expr

val query : t -> string -> Executor.item list

(** Evaluate with per-operator profiling: results plus the annotated
    physical plan tree (see {!Xquec_obs.Explain}). *)
val query_profiled : t -> string -> Executor.item list * Xquec_obs.Explain.node

val query_ast : t -> Xquery.Ast.expr -> Executor.item list

(** Evaluate and serialize (decompressing the result, as the paper's QET
    measurements do). *)
val query_serialized : t -> string -> string

val compression_factor : t -> float

val size_breakdown : t -> Storage.Repository.size_breakdown

val save : t -> string

val restore : string -> t

(** Reconstruct the full document (the decompressor direction). *)
val to_document : t -> Xmlkit.Tree.document

val to_xml : ?indent:bool -> t -> string
