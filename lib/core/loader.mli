(** Loader / compressor (§1.1 module 1): one SAX pass shreds an XML
    document into the repository structures; values land in the
    container of their root-to-leaf path (projection "prepared in
    advance", §2.3). Numeric containers get the packed codec; strings
    default to ALM, the paper's no-workload choice. *)

(** Knobs for the one-pass load. *)
type options = {
  default_string_algorithm : Compress.Codec.algorithm;
  detect_numeric : bool;
  spill_directory : string option;
      (** stage container values in spill files on secondary storage
          during parsing (the paper's §6 plan for very large documents);
          [None] keeps them in memory *)
}

(** ALM strings, numeric detection on, no spilling. *)
val default_options : options

(** Parse XML text and build a compressed repository registered under
    [name] (the [document("name")] queries resolve against it). *)
val load : ?options:options -> name:string -> string -> Storage.Repository.t

(** Same as {!load} but from an already-parsed DOM tree. *)
val load_document :
  ?options:options -> name:string -> Xmlkit.Tree.document -> Storage.Repository.t
