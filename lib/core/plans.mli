(** Hand-built physical plans in the spirit of the paper's Fig. 5 (its
    own measurements used hand-chosen plans). *)

open Storage

(** Container id whose root-to-leaf path ends with the given suffix
    (e.g. ["person/name/#text"]); raises if absent or ambiguous. *)
val find_container : Repository.t -> string -> int

(** Fig. 5: XMark Q9's three-way join on compressed attributes, with
    Decompress at the very top; returns (person name, item name) rows. *)
val q9 : Repository.t -> (string * string) list

(** The same result by decompress-first nested loops — the comparison
    point for the late-decompression ablation. *)
val q9_naive : Repository.t -> (string * string) list
