(** The [xquec serve] request handler: query evaluation over one loaded
    repository, mounted as the [extra] routes of an
    {!Xquec_obs.Expo} server (which contributes [/metrics] and
    [/healthz]).

    Routes: [POST /query] (body = XQuery text), [GET /query?q=...]
    (percent-encoded query), [GET /stats] (metrics registry as JSON),
    [GET /heat] (container heat snapshot as JSON, see
    {!Xquec_obs.Heat.snapshot_json}). Successful queries return the
    serialized result as [text/plain]; parse or evaluation errors
    return 400 with the exception text. Each query bumps the
    ["serve.queries"] counter, records ["serve.query_ms"], feeds the
    rolling SLO window, and appends a query-log record when a log file
    is configured. *)

(** Rolling-window serving aggregates: request and error counts over
    the live window, the error rate, and interpolated latency
    percentiles in milliseconds. Zero-valued when the window is empty
    ([ws_requests = 0]). *)
type window_stats = {
  ws_requests : int;
  ws_errors : int;
  ws_error_rate : float;
  ws_p50_ms : float;
  ws_p95_ms : float;
  ws_p99_ms : float;
}

(** Record one request into the rolling window ([ms] wall latency).
    Called by the handler for every [/query]; exposed so tests can
    drive the window directly. Single-writer: requests are handled
    sequentially on the server's accept domain. *)
val window_observe : error:bool -> float -> unit

(** Aggregates over the last 60 seconds of requests (p50/p95/p99 use
    the same bucket-interpolation estimator as
    {!Xquec_obs.Metrics.histogram_percentile}). *)
val window_stats : unit -> window_stats

(** Empty the rolling window (test isolation). *)
val window_reset : unit -> unit

(** Push the current {!window_stats} into the metrics registry as
    ["serve.window.requests"], ["serve.window.errors"],
    ["serve.window.error_rate"] and ["serve.window.p50_ms"] /
    [".p95_ms"] / [".p99_ms"] gauges. Part of
    {!publish_pool_metrics}. *)
val publish_window_metrics : unit -> unit

(** Sync the buffer-pool, decode-pool, join, heat and rolling-window
    counters into the metrics registry (as ["bufferpool.*"] /
    ["decodepool.*"] / ["heat.*"] / ["serve.window.*"] series) — the
    [collect] callback to pass to {!Xquec_obs.Expo.start} so every
    scrape is fresh. *)
val publish_pool_metrics : unit -> unit

(** Request handler over the given engine, to pass as
    {!Xquec_obs.Expo.start}'s [extra]. *)
val handler : Engine.t -> Xquec_obs.Expo.handler
