(** The [xquec serve] request handler: query evaluation over one loaded
    repository, mounted as the [extra] routes of an
    {!Xquec_obs.Expo} server (which contributes [/metrics] and
    [/healthz]).

    Routes: [POST /query] (body = XQuery text), [GET /query?q=...]
    (percent-encoded query), [GET /stats] (metrics registry as JSON),
    [GET /heat] (container heat snapshot as JSON, see
    {!Xquec_obs.Heat.snapshot_json}), [GET /watch] (live watchdog
    snapshot, {!Xquec_obs.Watch.snapshot_json}), [GET /alerts] (alert
    rules + active set + recent transitions,
    {!Xquec_obs.Alert.snapshot_json}), [GET /compact] (background
    compactor status, {!Storage.Compactor.status_json}) and [GET
    /healthz] (readiness
    JSON from {!healthz_json}, intercepting the Expo builtin while
    keeping its plain-200 contract). Successful queries return the
    serialized result as [text/plain]; parse or evaluation errors
    return 400 with the exception text; a query tripping an armed
    budget (see {!set_budgets}) returns 408 with a structured JSON
    body. Each query compiles through the {!Plan_cache}, bumps the
    ["serve.queries"] counter, records ["serve.query_ms"], feeds the
    rolling SLO window, and appends a query-log record (with an
    ["admission"] field) when a log file is configured.

    Every entry point here is safe for concurrent callers — requests
    may be handled by several Expo worker domains at once (see
    docs/CONCURRENCY.md and docs/SERVING.md). *)

(** Rolling-window serving aggregates: request and error counts over
    the live window, the error rate, and interpolated latency
    percentiles in milliseconds. Zero-valued when the window is empty
    ([ws_requests = 0]). *)
type window_stats = {
  ws_requests : int;
  ws_errors : int;
  ws_error_rate : float;
  ws_p50_ms : float;
  ws_p95_ms : float;
  ws_p99_ms : float;
}

(** Record one request into the rolling window ([ms] wall latency).
    Called by the handler for every [/query]; exposed so tests can
    drive the window directly. Thread-safe: the ring is mutex-guarded,
    so concurrent worker domains may observe simultaneously. *)
val window_observe : error:bool -> float -> unit

(** Aggregates over the last 60 seconds of requests (p50/p95/p99 use
    the same bucket-interpolation estimator as
    {!Xquec_obs.Metrics.histogram_percentile}). *)
val window_stats : unit -> window_stats

(** Empty the rolling window (test isolation). *)
val window_reset : unit -> unit

(** Push the current {!window_stats} into the metrics registry as
    ["serve.window.requests"], ["serve.window.errors"],
    ["serve.window.error_rate"] and ["serve.window.p50_ms"] /
    [".p95_ms"] / [".p99_ms"] gauges. Part of
    {!publish_pool_metrics}. *)
val publish_window_metrics : unit -> unit

(** Sync the buffer-pool, decode-pool, join, heat, admission
    ({!Xquec_obs.Expo.stats} as ["serve.admission.*"]), plan-cache
    ({!Plan_cache.snapshot} as ["serve.plan_cache.*"]) and
    rolling-window counters into the metrics registry — the [collect]
    callback to pass to {!Xquec_obs.Expo.start} so every scrape is
    fresh. *)
val publish_pool_metrics : unit -> unit

(** Configure the per-query budgets the handler arms (on the
    evaluating domain, via {!Xquec_obs.Budget}) around each query:
    [wall_ms] wall-clock milliseconds and [decode_bytes] decoded
    bytes; 0 (the default for both) = unlimited. Called once at server
    startup from [--query-wall-ms] / [--query-decode-mb]. *)
val set_budgets : ?wall_ms:float -> ?decode_bytes:int -> unit -> unit

(** {2 Watchdog ticks and alerting}

    The streaming watchdog ({!Xquec_obs.Watch}) is fed per query by
    the engine; once per window the serve layer closes the window,
    assembles this tick's signal readings and runs the alert rules
    ({!Xquec_obs.Alert}). *)

(** Register the repository that a sustained drift alert may
    auto-compact ([None] disables the loop — the [--no-auto-compact]
    path). When set, a [drift_sustained] "fired" transition inside
    {!watch_tick} turns the live fingerprint + heat into
    {!Xquec_obs.Profile.recommend} advice, plans concrete targets via
    {!Storage.Compactor.plan} and starts a background
    {!Storage.Compactor.request}, bumping
    ["serve.compactions_triggered"] when a pass actually starts. *)
val set_auto_compact : Storage.Repository.t option -> unit

(** Close one watchdog window: {!Xquec_obs.Watch.tick}, evaluate the
    alert rules against this tick's signals — [drift] / [drift_ewma]
    (when computable), [error_rate] and [budget_408_rate] (when the
    tick saw requests), [plan_cache_hit_rate] / [buffer_pool_hit_rate]
    (when the tick saw lookups; rates are per-tick counter deltas) —
    run the drift-triggered auto-compaction hook (see
    {!set_auto_compact}) and refresh the SLO-window gauges. Returns
    the watchdog reading and any alert transitions. [?now] for
    deterministic tests. *)
val watch_tick : ?now:float -> unit -> Xquec_obs.Watch.status * Xquec_obs.Alert.transition list

(** Re-anchor the per-tick counter deltas at the current values so the
    next {!watch_tick} doesn't see pre-watchdog history as one window.
    {!start_watchdog} calls it; exposed for tests. *)
val watch_tick_reset : unit -> unit

(** The default alert rule set: [drift_sustained] (drift >
    [drift_threshold], default 0.3, from [--drift-alert]),
    [error_rate_high] (> 5 %), [budget_408_high] (> 5 %),
    [plan_cache_hit_low] and [buffer_pool_hit_low] (< 50 %).
    Sustain/resolve counts are in watchdog windows. *)
val default_rules : ?drift_threshold:float -> unit -> Xquec_obs.Alert.rule list

(** Spawn the background ticker domain calling {!watch_tick} every
    [period] seconds (clamped to ≥ 0.05; sleeps in short slices so
    {!stop_watchdog} returns promptly). No-op when already running. *)
val start_watchdog : period:float -> unit -> unit

(** Stop and join the ticker domain (the SIGTERM path); no-op when not
    running. *)
val stop_watchdog : unit -> unit

(** Record the repository format string shown by [/healthz] and stamp
    the server start time (uptime baseline). *)
val set_server_info : ?format:string -> unit -> unit

(** The [GET /healthz] readiness payload: [{status:"ok", uptime_s,
    format, workers, inflight, watchdog:{enabled,ticks,
    last_tick_unix}}]. *)
val healthz_json : unit -> Xquec_obs.Json.t

(** Evaluate one query exactly as the [/query] route does (trim,
    compile through the plan cache, arm budgets, log, observe the SLO
    window) and produce the HTTP response. Exposed for tests. *)
val run_query : Engine.t -> string -> Xquec_obs.Expo.response

(** Request handler over the given engine, to pass as
    {!Xquec_obs.Expo.start}'s [extra]. *)
val handler : Engine.t -> Xquec_obs.Expo.handler
