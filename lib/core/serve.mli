(** The [xquec serve] request handler: query evaluation over one loaded
    repository, mounted as the [extra] routes of an
    {!Xquec_obs.Expo} server (which contributes [/metrics] and
    [/healthz]).

    Routes: [POST /query] (body = XQuery text), [GET /query?q=...]
    (percent-encoded query), [GET /stats] (metrics registry as JSON).
    Successful queries return the serialized result as [text/plain];
    parse or evaluation errors return 400 with the exception text.
    Each query bumps the ["serve.queries"] counter, records
    ["serve.query_ms"], and appends a query-log record when a log file
    is configured. *)

(** Sync the buffer-pool and decode-pool counters into the metrics
    registry (as ["bufferpool.*"] / ["decodepool.*"] series) — the
    [collect] callback to pass to {!Xquec_obs.Expo.start} so every
    scrape is fresh. *)
val publish_pool_metrics : unit -> unit

(** Request handler over the given engine, to pass as
    {!Xquec_obs.Expo.start}'s [extra]. *)
val handler : Engine.t -> Xquec_obs.Expo.handler
