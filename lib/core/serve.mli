(** The [xquec serve] request handler: query evaluation over one loaded
    repository, mounted as the [extra] routes of an
    {!Xquec_obs.Expo} server (which contributes [/metrics] and
    [/healthz]).

    Routes: [POST /query] (body = XQuery text), [GET /query?q=...]
    (percent-encoded query), [GET /stats] (metrics registry as JSON),
    [GET /heat] (container heat snapshot as JSON, see
    {!Xquec_obs.Heat.snapshot_json}). Successful queries return the
    serialized result as [text/plain]; parse or evaluation errors
    return 400 with the exception text; a query tripping an armed
    budget (see {!set_budgets}) returns 408 with a structured JSON
    body. Each query compiles through the {!Plan_cache}, bumps the
    ["serve.queries"] counter, records ["serve.query_ms"], feeds the
    rolling SLO window, and appends a query-log record (with an
    ["admission"] field) when a log file is configured.

    Every entry point here is safe for concurrent callers — requests
    may be handled by several Expo worker domains at once (see
    docs/CONCURRENCY.md and docs/SERVING.md). *)

(** Rolling-window serving aggregates: request and error counts over
    the live window, the error rate, and interpolated latency
    percentiles in milliseconds. Zero-valued when the window is empty
    ([ws_requests = 0]). *)
type window_stats = {
  ws_requests : int;
  ws_errors : int;
  ws_error_rate : float;
  ws_p50_ms : float;
  ws_p95_ms : float;
  ws_p99_ms : float;
}

(** Record one request into the rolling window ([ms] wall latency).
    Called by the handler for every [/query]; exposed so tests can
    drive the window directly. Thread-safe: the ring is mutex-guarded,
    so concurrent worker domains may observe simultaneously. *)
val window_observe : error:bool -> float -> unit

(** Aggregates over the last 60 seconds of requests (p50/p95/p99 use
    the same bucket-interpolation estimator as
    {!Xquec_obs.Metrics.histogram_percentile}). *)
val window_stats : unit -> window_stats

(** Empty the rolling window (test isolation). *)
val window_reset : unit -> unit

(** Push the current {!window_stats} into the metrics registry as
    ["serve.window.requests"], ["serve.window.errors"],
    ["serve.window.error_rate"] and ["serve.window.p50_ms"] /
    [".p95_ms"] / [".p99_ms"] gauges. Part of
    {!publish_pool_metrics}. *)
val publish_window_metrics : unit -> unit

(** Sync the buffer-pool, decode-pool, join, heat, admission
    ({!Xquec_obs.Expo.stats} as ["serve.admission.*"]), plan-cache
    ({!Plan_cache.snapshot} as ["serve.plan_cache.*"]) and
    rolling-window counters into the metrics registry — the [collect]
    callback to pass to {!Xquec_obs.Expo.start} so every scrape is
    fresh. *)
val publish_pool_metrics : unit -> unit

(** Configure the per-query budgets the handler arms (on the
    evaluating domain, via {!Xquec_obs.Budget}) around each query:
    [wall_ms] wall-clock milliseconds and [decode_bytes] decoded
    bytes; 0 (the default for both) = unlimited. Called once at server
    startup from [--query-wall-ms] / [--query-decode-mb]. *)
val set_budgets : ?wall_ms:float -> ?decode_bytes:int -> unit -> unit

(** Evaluate one query exactly as the [/query] route does (trim,
    compile through the plan cache, arm budgets, log, observe the SLO
    window) and produce the HTTP response. Exposed for tests. *)
val run_query : Engine.t -> string -> Xquec_obs.Expo.response

(** Request handler over the given engine, to pass as
    {!Xquec_obs.Expo.start}'s [extra]. *)
val handler : Engine.t -> Xquec_obs.Expo.handler
