(* Process-wide LRU cache of compiled query plans, keyed by the MD5
   hex of the query text — the same hash the query log records, so a
   log line's query_hash doubles as the cache key for that query.

   A "compiled plan" in this engine is the parsed, immutable
   Xquery.Ast.expr (there is no separate optimize-time artifact: the
   optimizer runs inside the executor against live container stats).
   ASTs are pure immutable data, so a cached plan is safely shared
   across worker domains evaluating the same query concurrently.

   Everything below one mutex: entry count is small (default capacity
   128) and a hit costs a hash lookup plus two list splices, orders of
   magnitude below parsing. LRU is the classic Hashtbl + intrusive
   doubly-linked list: most-recent at the head, evict from the tail.

   Invalidation: keys are query text only, NOT the repository — the
   engine parses a query identically whichever repository it runs
   against, so switching repositories does not require clearing the
   cache. [clear] exists for tests and for a future mutable-repository
   world (see docs/SERVING.md). *)

type lookup = Hit | Miss | Bypass

type node = {
  n_key : string;
  n_plan : Xquery.Ast.expr;
  mutable n_prev : node option;
  mutable n_next : node option;
}

type cache = {
  mutable capacity : int;  (* 0 = disabled *)
  tbl : (string, node) Hashtbl.t;
  mutable head : node option;  (* most recently used *)
  mutable tail : node option;  (* least recently used *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let cache =
  { capacity = 0; tbl = Hashtbl.create 64; head = None; tail = None;
    hits = 0; misses = 0; evictions = 0 }

let mutex = Mutex.create ()

let with_lock f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

(* --- intrusive list maintenance (call with the lock held) ------------- *)

let unlink (n : node) : unit =
  (match n.n_prev with
  | Some p -> p.n_next <- n.n_next
  | None -> cache.head <- n.n_next);
  (match n.n_next with
  | Some s -> s.n_prev <- n.n_prev
  | None -> cache.tail <- n.n_prev);
  n.n_prev <- None;
  n.n_next <- None

let push_front (n : node) : unit =
  n.n_prev <- None;
  n.n_next <- cache.head;
  (match cache.head with Some h -> h.n_prev <- Some n | None -> cache.tail <- Some n);
  cache.head <- Some n

let evict_tail () : unit =
  match cache.tail with
  | None -> ()
  | Some n ->
    unlink n;
    Hashtbl.remove cache.tbl n.n_key;
    cache.evictions <- cache.evictions + 1

let clear_locked () =
  Hashtbl.reset cache.tbl;
  cache.head <- None;
  cache.tail <- None

(* --- public API ------------------------------------------------------- *)

let set_capacity (n : int) : unit =
  with_lock (fun () ->
      cache.capacity <- max 0 n;
      if cache.capacity = 0 then clear_locked ()
      else
        while Hashtbl.length cache.tbl > cache.capacity do
          evict_tail ()
        done)

let capacity () : int = with_lock (fun () -> cache.capacity)

let clear () : unit = with_lock clear_locked

let reset_stats () : unit =
  with_lock (fun () ->
      cache.hits <- 0;
      cache.misses <- 0;
      cache.evictions <- 0)

let find_or_add ~(key : string) (compile : unit -> Xquery.Ast.expr) :
    Xquery.Ast.expr * lookup =
  let cached =
    with_lock (fun () ->
        if cache.capacity = 0 then Some (None, Bypass)
        else
          match Hashtbl.find_opt cache.tbl key with
          | Some n ->
            unlink n;
            push_front n;
            cache.hits <- cache.hits + 1;
            Some (Some n.n_plan, Hit)
          | None ->
            cache.misses <- cache.misses + 1;
            None)
  in
  match cached with
  | Some (Some plan, l) -> (plan, l)
  | Some (None, l) -> (compile (), l)
  | None ->
    (* Miss: compile OUTSIDE the lock (parsing an adversarial query must
       not stall every other worker's cache lookups), then insert. A
       concurrent compile of the same query inserts twice; last one
       wins, both plans are equivalent, and the duplicate node is
       unlinked before re-insertion. *)
    let plan = compile () in
    with_lock (fun () ->
        if cache.capacity > 0 then begin
          (match Hashtbl.find_opt cache.tbl key with
          | Some old -> unlink old; Hashtbl.remove cache.tbl old.n_key
          | None -> ());
          let n = { n_key = key; n_plan = plan; n_prev = None; n_next = None } in
          push_front n;
          Hashtbl.replace cache.tbl key n;
          while Hashtbl.length cache.tbl > cache.capacity do
            evict_tail ()
          done
        end);
    (plan, Miss)

type stats = {
  s_capacity : int;
  s_entries : int;
  s_hits : int;
  s_misses : int;
  s_evictions : int;
}

let snapshot () : stats =
  with_lock (fun () ->
      {
        s_capacity = cache.capacity;
        s_entries = Hashtbl.length cache.tbl;
        s_hits = cache.hits;
        s_misses = cache.misses;
        s_evictions = cache.evictions;
      })
