(* Public facade of XQueC: load (compress) a document — optionally tuned
   to a query workload — and evaluate XQuery over the compressed
   repository. *)

open Storage

type t = { repo : Repository.t; partitioning : Partitioner.result option }

(** Compress [xml] into a queryable repository. When [workload] queries
    are given, the §3 greedy search chooses the compression configuration
    (algorithms + shared source models) before the repository is
    finalized. *)
let load ?(name = "doc.xml") ?(workload : string list option) ?loader_options (xml : string) : t
    =
  Xquec_obs.Trace.with_span ~name:"engine.load" ~attrs:[ ("document", name) ]
  @@ fun () ->
  let repo = Loader.load ?options:loader_options ~name xml in
  let partitioning =
    match workload with
    | None | Some [] -> None
    | Some texts ->
      let queries = List.map Xquery.Parser.parse texts in
      Some (Partitioner.optimize repo queries)
  in
  { repo; partitioning }

let repo t = t.repo

let parse_query = Xquery.Parser.parse

(** MD5 hex of the query text — the query log's [query_hash] and the
    plan cache's key, computed in one place so they can never drift. *)
let query_hash (text : string) : string = Digest.to_hex (Digest.string text)

(** Parse [text] through the process-wide {!Plan_cache}: returns the
    (possibly cached) immutable AST plus how the lookup resolved. Parse
    errors propagate and are never cached. *)
let compile (text : string) : Xquery.Ast.expr * Plan_cache.lookup =
  Plan_cache.find_or_add ~key:(query_hash text) (fun () -> parse_query text)

(** Evaluate a query; results stay compressed where possible. *)
let query (t : t) (text : string) : Executor.item list =
  Executor.run t.repo (parse_query text)

(** Evaluate with per-operator profiling: returns the results plus the
    annotated physical plan tree. *)
let query_profiled (t : t) (text : string) :
    Executor.item list * Xquec_obs.Explain.node =
  Executor.run_profiled t.repo (parse_query text)

let query_ast (t : t) (ast : Xquery.Ast.expr) : Executor.item list = Executor.run t.repo ast

(** Evaluate and serialize (decompressing the result, as the paper's QET
    measurements do). *)
let query_serialized (t : t) (text : string) : string =
  Executor.serialize t.repo (query t text)

(* --- query log ------------------------------------------------------- *)

let iso8601 (t : float) : string =
  let tm = Unix.gmtime t in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec
    (int_of_float (Float.rem t 1.0 *. 1000.0))

let cpu_ms () =
  let tms = Unix.times () in
  (tms.Unix.tms_utime +. tms.Unix.tms_stime) *. 1000.0

(** Evaluate, serialize, and append one record to the JSONL query log
    ({!Xquec_obs.Query_log}) accounting for the query's full cost: wall
    and CPU time, the profiled plan (shape + per-operator
    cardinalities), buffer-pool and decode-pool counter deltas, bytes
    decoded vs. bytes pruned, and GC allocation deltas. Also returns
    the profile so callers (EXPLAIN, serve) can render it. The deltas
    are taken around evaluation {e and} serialization, so they
    reconcile with the CLI's [--stats] pool summary for a
    single-query run. When no log file is configured this is
    {!query_profiled} + serialization without the bookkeeping.

    [plan] is a pre-compiled AST (from {!compile}) — when given, the
    parse is skipped; [text] is still used for the log record's hash
    and echo. [admission] is an opaque JSON object the serving layer
    attaches describing how the request was admitted (in-flight depth,
    plan-cache outcome, armed budgets); it is logged verbatim as the
    record's ["admission"] field. *)
(* Per-container heat deltas between two snapshots, keyed by pool uid
   (hashtable lookup, so the diff is linear in the container count).
   Containers the query did not touch (no touches, header skips or
   decoded bytes) are dropped; heat disabled yields an empty list. *)
let heat_delta (heat0 : Xquec_obs.Heat.stat list) (heat1 : Xquec_obs.Heat.stat list) :
    Xquec_obs.Heat.stat list =
  let before : (int, Xquec_obs.Heat.stat) Hashtbl.t = Hashtbl.create (List.length heat0) in
  List.iter (fun (s : Xquec_obs.Heat.stat) -> Hashtbl.replace before s.uid s) heat0;
  List.filter_map
    (fun (s1 : Xquec_obs.Heat.stat) ->
      let z =
        match Hashtbl.find_opt before s1.uid with
        | Some s0 ->
          {
            s1 with
            touches = s1.touches - s0.Xquec_obs.Heat.touches;
            decodes = s1.decodes - s0.Xquec_obs.Heat.decodes;
            hits = s1.hits - s0.Xquec_obs.Heat.hits;
            header_skips = s1.header_skips - s0.Xquec_obs.Heat.header_skips;
            bytes_decoded = s1.bytes_decoded - s0.Xquec_obs.Heat.bytes_decoded;
            bytes_skipped = s1.bytes_skipped - s0.Xquec_obs.Heat.bytes_skipped;
          }
        | None -> s1
      in
      if
        z.Xquec_obs.Heat.touches = 0
        && z.Xquec_obs.Heat.header_skips = 0
        && z.Xquec_obs.Heat.bytes_decoded = 0
      then None
      else Some z)
    heat1

(* Feed one query's observations — the same values the log record
   carries — into the streaming watchdog. *)
let watch_observe (predicates : Executor.pred_obs list) (deltas : Xquec_obs.Heat.stat list) :
    unit =
  Xquec_obs.Watch.observe
    ~predicates:
      (List.map
         (fun (o : Executor.pred_obs) ->
           {
             Xquec_obs.Profile.ob_container = o.Executor.o_container;
             ob_kind = o.Executor.o_kind;
             ob_candidates = o.Executor.o_candidates;
             ob_matches = o.Executor.o_matches;
           })
         predicates)
    ~containers:
      (List.map
         (fun (z : Xquec_obs.Heat.stat) -> (z.Xquec_obs.Heat.label, z.Xquec_obs.Heat.bytes_decoded))
         deltas)
    ()

let query_serialized_logged ?(admission : Xquec_obs.Json.t option)
    ?(plan : Xquery.Ast.expr option) (t : t) (text : string) :
    string * Xquec_obs.Explain.node =
  let run_profiled () =
    match plan with
    | Some ast -> Executor.run_profiled t.repo ast
    | None -> query_profiled t text
  in
  let log_on = Xquec_obs.Query_log.enabled () in
  let watch_on = Xquec_obs.Watch.enabled () in
  if not (log_on || watch_on) then begin
    let items, prof = run_profiled () in
    (Executor.serialize t.repo items, prof)
  end
  else if not log_on then begin
    (* watchdog only: skip the pool / GC / join bookkeeping the log
       record needs — one heat diff and the executor's predicate
       observations are the whole cost *)
    let heat0 = Xquec_obs.Heat.snapshot () in
    let items, prof = run_profiled () in
    let out = Executor.serialize t.repo items in
    let heat1 = Xquec_obs.Heat.snapshot () in
    watch_observe (Executor.predicate_observations ()) (heat_delta heat0 heat1);
    (out, prof)
  end
  else begin
    let module Json = Xquec_obs.Json in
    let started_at = Unix.gettimeofday () in
    let pool0 = Buffer_pool.snapshot () in
    let dpool0 = Domain_pool.snapshot () in
    let j0 = Executor.join_stats () in
    let heat0 = Xquec_obs.Heat.snapshot () in
    let gc_alloc0 = Gc.allocated_bytes () in
    let gc0 = Gc.quick_stat () in
    let cpu0 = cpu_ms () in
    let t0 = Xquec_obs.Trace.now_us () in
    let items, prof = run_profiled () in
    let out = Executor.serialize t.repo items in
    (* deltas taken after serialization: decompressing the result is
       part of the query's cost (the paper's QET convention) *)
    let wall_ms = (Xquec_obs.Trace.now_us () -. t0) /. 1000.0 in
    let cpu = cpu_ms () -. cpu0 in
    let pool1 = Buffer_pool.snapshot () in
    let dpool1 = Domain_pool.snapshot () in
    let j1 = Executor.join_stats () in
    let heat1 = Xquec_obs.Heat.snapshot () in
    let gc_alloc1 = Gc.allocated_bytes () in
    let gc1 = Gc.quick_stat () in
    let n name v = (name, Json.Num (float_of_int v)) in
    (* per-container heat deltas and the executor's predicate
       observations: computed once, feeding both the log record and
       the streaming watchdog (the watchdog sees exactly the values
       the log records, so the two fingerprints agree). *)
    let deltas = heat_delta heat0 heat1 in
    let pred_obs = Executor.predicate_observations () in
    if watch_on then watch_observe pred_obs deltas;
    let containers =
      List.map
        (fun (z : Xquec_obs.Heat.stat) ->
          Json.Obj
            [
              ("container", Json.Str z.Xquec_obs.Heat.label);
              n "touches" z.Xquec_obs.Heat.touches;
              n "decodes" z.Xquec_obs.Heat.decodes;
              n "hits" z.Xquec_obs.Heat.hits;
              n "header_skips" z.Xquec_obs.Heat.header_skips;
              n "decoded_bytes" z.Xquec_obs.Heat.bytes_decoded;
              n "skipped_bytes" z.Xquec_obs.Heat.bytes_skipped;
            ])
        deltas
    in
    (* container-resolved predicate observations of this evaluation *)
    let predicates =
      List.map
        (fun (o : Executor.pred_obs) ->
          Json.Obj
            [
              ("container", Json.Str o.Executor.o_container);
              ("kind", Json.Str o.Executor.o_kind);
              n "candidates" o.Executor.o_candidates;
              n "matches" o.Executor.o_matches;
            ])
        pred_obs
    in
    let record =
      Json.Obj
        [
          ("ts", Json.Str (iso8601 started_at));
          ("query_hash", Json.Str (query_hash text));
          ("query", Json.Str text);
          ("plan_shape", Json.Str (Xquec_obs.Explain.shape prof));
          ("wall_ms", Json.Num wall_ms);
          ("cpu_ms", Json.Num cpu);
          n "rows" (List.length items);
          n "result_bytes" (String.length out);
          ( "bytes",
            Json.Obj
              [
                n "decoded" (pool1.Buffer_pool.s_decoded_bytes - pool0.Buffer_pool.s_decoded_bytes);
                n "payload_decoded"
                  (pool1.Buffer_pool.s_payload_bytes - pool0.Buffer_pool.s_payload_bytes);
                n "payload_skipped"
                  (pool1.Buffer_pool.s_skipped_bytes - pool0.Buffer_pool.s_skipped_bytes);
              ] );
          ( "pool",
            Json.Obj
              [
                n "hits" (pool1.Buffer_pool.s_hits - pool0.Buffer_pool.s_hits);
                n "misses" (pool1.Buffer_pool.s_misses - pool0.Buffer_pool.s_misses);
                n "latch_waits"
                  (pool1.Buffer_pool.s_latch_waits - pool0.Buffer_pool.s_latch_waits);
                n "evictions" (pool1.Buffer_pool.s_evictions - pool0.Buffer_pool.s_evictions);
                n "blocks_skipped"
                  (pool1.Buffer_pool.s_blocks_skipped - pool0.Buffer_pool.s_blocks_skipped);
                n "scan_inserts"
                  (pool1.Buffer_pool.s_scan_inserts - pool0.Buffer_pool.s_scan_inserts);
              ] );
          ( "decode_pool",
            Json.Obj
              [
                n "domains" dpool1.Domain_pool.p_domains;
                n "batches" (dpool1.Domain_pool.p_batches - dpool0.Domain_pool.p_batches);
                n "tasks" (dpool1.Domain_pool.p_tasks - dpool0.Domain_pool.p_tasks);
                n "inline_tasks" (dpool1.Domain_pool.p_inline - dpool0.Domain_pool.p_inline);
                n "max_queue_depth" dpool1.Domain_pool.p_max_queue_depth;
              ] );
          ( "join",
            Json.Obj
              [
                n "block_joins" (j1.Executor.j_block_joins - j0.Executor.j_block_joins);
                n "blocks_probed" (j1.Executor.j_blocks_probed - j0.Executor.j_blocks_probed);
                n "blocks_skipped" (j1.Executor.j_blocks_skipped - j0.Executor.j_blocks_skipped);
                n "skipped_bytes" (j1.Executor.j_skipped_bytes - j0.Executor.j_skipped_bytes);
              ] );
          ( "gc",
            Json.Obj
              [
                ("allocated_bytes", Json.Num (gc_alloc1 -. gc_alloc0));
                n "minor_collections" (gc1.Gc.minor_collections - gc0.Gc.minor_collections);
                n "major_collections" (gc1.Gc.major_collections - gc0.Gc.major_collections);
              ] );
          ("containers", Json.List containers);
          ("predicates", Json.List predicates);
          ("plan", Xquec_obs.Explain.summary_json prof);
        ]
    in
    let record =
      match (admission, record) with
      | Some adm, Json.Obj fields -> Json.Obj (fields @ [ ("admission", adm) ])
      | _ -> record
    in
    Xquec_obs.Query_log.append record;
    (out, prof)
  end

let compression_factor (t : t) = Repository.compression_factor t.repo

let size_breakdown (t : t) = Repository.size_breakdown t.repo

let save (t : t) : string = Repository.serialize t.repo

let restore (data : string) : t = { repo = Repository.deserialize data; partitioning = None }

(** Reconstruct the full document from the compressed repository (the
    decompressor direction). *)
let to_document (t : t) : Xmlkit.Tree.document =
  let ctx = Executor.mk_ctx t.repo in
  { Xmlkit.Tree.root = Executor.reconstruct ctx 0 }

let to_xml ?indent (t : t) : string = Xmlkit.Printer.to_string ?indent (to_document t)
