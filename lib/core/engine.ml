(* Public facade of XQueC: load (compress) a document — optionally tuned
   to a query workload — and evaluate XQuery over the compressed
   repository. *)

open Storage

type t = { repo : Repository.t; partitioning : Partitioner.result option }

(** Compress [xml] into a queryable repository. When [workload] queries
    are given, the §3 greedy search chooses the compression configuration
    (algorithms + shared source models) before the repository is
    finalized. *)
let load ?(name = "doc.xml") ?(workload : string list option) ?loader_options (xml : string) : t
    =
  Xquec_obs.Trace.with_span ~name:"engine.load" ~attrs:[ ("document", name) ]
  @@ fun () ->
  let repo = Loader.load ?options:loader_options ~name xml in
  let partitioning =
    match workload with
    | None | Some [] -> None
    | Some texts ->
      let queries = List.map Xquery.Parser.parse texts in
      Some (Partitioner.optimize repo queries)
  in
  { repo; partitioning }

let repo t = t.repo

let parse_query = Xquery.Parser.parse

(** Evaluate a query; results stay compressed where possible. *)
let query (t : t) (text : string) : Executor.item list =
  Executor.run t.repo (parse_query text)

(** Evaluate with per-operator profiling: returns the results plus the
    annotated physical plan tree. *)
let query_profiled (t : t) (text : string) :
    Executor.item list * Xquec_obs.Explain.node =
  Executor.run_profiled t.repo (parse_query text)

let query_ast (t : t) (ast : Xquery.Ast.expr) : Executor.item list = Executor.run t.repo ast

(** Evaluate and serialize (decompressing the result, as the paper's QET
    measurements do). *)
let query_serialized (t : t) (text : string) : string =
  Executor.serialize t.repo (query t text)

let compression_factor (t : t) = Repository.compression_factor t.repo

let size_breakdown (t : t) = Repository.size_breakdown t.repo

let save (t : t) : string = Repository.serialize t.repo

let restore (data : string) : t = { repo = Repository.deserialize data; partitioning = None }

(** Reconstruct the full document from the compressed repository (the
    decompressor direction). *)
let to_document (t : t) : Xmlkit.Tree.document =
  let ctx = Executor.mk_ctx t.repo in
  { Xmlkit.Tree.root = Executor.reconstruct ctx 0 }

let to_xml ?indent (t : t) : string = Xmlkit.Printer.to_string ?indent (to_document t)
