(** Query workload analysis (§3): extracts the value-comparison
    predicates of a set of queries, resolving each side to the
    containers it touches — the input of the cost model and the greedy
    partitioning search. *)

open Storage

(** Predicate class: equality, inequality/range, or wildcard (the paper's
    three classes — each algorithm supports a subset in the compressed
    domain). *)
type pred_class = Cls_eq | Cls_ineq | Cls_wild

(** A predicate between container sets; [right = []] means a constant. *)
type predicate = { cls : pred_class; left : int list; right : int list }

(** An analyzed workload: its predicates plus the repository's container
    count (the dimension of the {!matrices}). *)
type t = { predicates : predicate list; container_count : int }

(** Summary nodes a path expression reaches (static, no data access). *)
val resolve_snodes :
  Repository.t -> (string * Summary.node list) list -> Xquery.Ast.expr -> Summary.node list

(** Extract the predicates of a set of parsed queries. *)
val analyze : Repository.t -> Xquery.Ast.expr list -> t

(** {!analyze} after parsing each query string. *)
val of_query_strings : Repository.t -> string list -> t

(** The E/I/D comparison matrices of §3.2 ((|C|+1)², symmetric; the last
    row/column counts comparisons with constants). *)
val matrices : t -> int array array * int array array * int array array

(** Container ids mentioned by at least one predicate, ascending. *)
val queried_containers : t -> int list

(** Render a predicate as e.g. ["eq {3 5} ~ const"]. *)
val pp_predicate : Format.formatter -> predicate -> unit

(** Declared-workload fingerprint over (container path, predicate kind)
    events — [Cls_eq]/[Cls_ineq]/[Cls_wild] mapped to ["eq"]/["range"]/
    ["wild"] — directly comparable with an observed query-log
    fingerprint via {!Xquec_obs.Profile.drift}. *)
val fingerprint : Repository.t -> t -> Xquec_obs.Profile.fingerprint
