(** Greedy configuration search (§3.3): starting from all-bzip
    singletons, per workload predicate propose re-algorithm / extract /
    merge moves and keep the cheapest. *)

open Storage

(** One proposed move of the greedy search: the predicate that motivated
    it, whether it lowered the cost, and the costs either side. *)
type move_trace = {
  predicate : Workload.predicate;
  accepted : bool;
  cost_before : float;
  cost_after : float;
}

(** Outcome of a search: the winning configuration, the costs of the
    initial and final configurations, and the per-move trace. *)
type result = {
  configuration : Cost_model.configuration;
  initial_cost : float;
  final_cost : float;
  trace : move_trace list;
}

(** Run the search without applying it. *)
val search : ?seed:int -> ?weights:Cost_model.weights -> Repository.t -> Workload.t -> result

(** Apply a configuration: per set, train a shared source model on the
    union of values, recompress, and fix up tree value pointers. *)
val apply : Repository.t -> Cost_model.configuration -> unit

(** Build-time per-container block sizing: for every container the
    declared workload touches, derive its dominant access pattern from
    the predicate classes (wildcard-dominated → {!Container.Seq_heavy},
    eq-dominated → {!Container.Random_selective}, else
    {!Container.Mixed}), pick a size via {!Container.pick_block_size}
    and {!Container.reblock} in place when it differs from the current
    size. Record order is untouched — no pointer remapping. Returns
    [(path, old size, new size)] per re-blocked container. Opt-in from
    the CLI ([xquec compress --adaptive-blocks]); not part of
    {!optimize}, so default builds keep the global block size. *)
val size_blocks : Storage.Repository.t -> Workload.t -> (string * int * int) list

(** Analyze, search and apply in one call. *)
val optimize :
  ?seed:int -> ?weights:Cost_model.weights -> Repository.t -> Xquery.Ast.expr list -> result
