(** Greedy configuration search (§3.3): starting from all-bzip
    singletons, per workload predicate propose re-algorithm / extract /
    merge moves and keep the cheapest. *)

open Storage

(** One proposed move of the greedy search: the predicate that motivated
    it, whether it lowered the cost, and the costs either side. *)
type move_trace = {
  predicate : Workload.predicate;
  accepted : bool;
  cost_before : float;
  cost_after : float;
}

(** Outcome of a search: the winning configuration, the costs of the
    initial and final configurations, and the per-move trace. *)
type result = {
  configuration : Cost_model.configuration;
  initial_cost : float;
  final_cost : float;
  trace : move_trace list;
}

(** Run the search without applying it. *)
val search : ?seed:int -> ?weights:Cost_model.weights -> Repository.t -> Workload.t -> result

(** Apply a configuration: per set, train a shared source model on the
    union of values, recompress, and fix up tree value pointers. *)
val apply : Repository.t -> Cost_model.configuration -> unit

(** Analyze, search and apply in one call. *)
val optimize :
  ?seed:int -> ?weights:Cost_model.weights -> Repository.t -> Xquery.Ast.expr list -> result
