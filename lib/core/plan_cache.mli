(** Process-wide mutex-guarded LRU cache of compiled query plans,
    keyed by the MD5 hex of the query text (the query log's
    [query_hash], so log lines and cache keys coincide). A "compiled
    plan" is the parsed immutable {!Xquery.Ast.expr}; being pure data
    it is safely shared across domains. Capacity 0 (the default)
    disables the cache entirely — every lookup reports {!Bypass} and
    compiles. [xquec serve] sets the capacity from [--plan-cache]. *)

(** How a {!find_or_add} resolved: served from cache ({!Hit}),
    compiled and inserted ({!Miss}), or compiled with the cache
    disabled ({!Bypass}). *)
type lookup = Hit | Miss | Bypass

(** Set the maximum entry count. Shrinking evicts least-recently-used
    entries immediately; 0 disables and empties the cache. *)
val set_capacity : int -> unit

(** Current maximum entry count (0 = disabled). *)
val capacity : unit -> int

(** Drop every entry (capacity and cumulative stats are kept). For
    tests, and for operators after changing the repository under a
    running server — see docs/SERVING.md, "Invalidation". *)
val clear : unit -> unit

(** Zero the cumulative hit/miss/eviction counters. *)
val reset_stats : unit -> unit

(** [find_or_add ~key compile] returns the cached plan for [key]
    (marking it most recently used) or runs [compile] and caches the
    result, evicting from the LRU tail beyond capacity. [compile] runs
    outside the cache lock, so a slow parse never stalls other
    domains' lookups; concurrent misses on the same key may compile
    twice (both results are equivalent, last insert wins). Exceptions
    from [compile] (e.g. parse errors) propagate and cache nothing. *)
val find_or_add : key:string -> (unit -> Xquery.Ast.expr) -> Xquery.Ast.expr * lookup

(** Cumulative counters plus current occupancy. *)
type stats = {
  s_capacity : int;
  s_entries : int;
  s_hits : int;
  s_misses : int;
  s_evictions : int;
}

(** Snapshot the counters (one lock acquisition, mutually
    consistent). *)
val snapshot : unit -> stats
