(* Greedy configuration search (§3.3).

   The search starts from singleton sets all assigned a generic
   algorithm (bzip) and separate source models. For each workload
   predicate (visited in a deterministic shuffled order), it proposes
   configuration moves:
   - same set: re-assign the set an algorithm that enables the predicate
     in the compressed domain;
   - different sets: either extract the two containers into a fresh
     shared set, or merge the two sets, again with an enabling
     algorithm.
   Each move is kept only if it lowers the §3.2 cost. Candidate
   algorithms are every codec supporting the predicate class (the
   measured cost picks among them; the paper's property-count rule is
   the tie-break). *)

open Storage

type move_trace = {
  predicate : Workload.predicate;
  accepted : bool;
  cost_before : float;
  cost_after : float;
}

type result = {
  configuration : Cost_model.configuration;
  initial_cost : float;
  final_cost : float;
  trace : move_trace list;
}

let property_count alg =
  let p = Compress.Codec.properties alg in
  (if p.Compress.Codec.eq then 1 else 0)
  + (if p.Compress.Codec.ineq then 1 else 0)
  + if p.Compress.Codec.wild then 1 else 0

(* Candidate algorithms that run [cls] in the compressed domain, best
   property count first (the paper's preference), cheapest d_c next. *)
let candidates_for (cls : Workload.pred_class) : Compress.Codec.algorithm list =
  Compress.Codec.all_algorithms
  |> List.filter (fun a ->
         match cls with
         | Workload.Cls_eq -> Compress.Codec.supports a `Eq
         | Workload.Cls_ineq -> Compress.Codec.supports a `Ineq
         | Workload.Cls_wild -> Compress.Codec.supports a `Wild)
  |> List.sort (fun a b ->
         let c = compare (property_count b) (property_count a) in
         if c <> 0 then c
         else compare (Compress.Codec.decompression_cost a) (Compress.Codec.decompression_cost b))

(* Deterministic shuffle (the paper extracts predicates randomly; a seeded
   shuffle keeps runs reproducible). *)
let shuffle ~seed (l : 'a list) : 'a list =
  let arr = Array.of_list l in
  let state = ref (seed * 2654435761 + 1) in
  let next bound =
    state := (!state * 1103515245) + 12345;
    (!state lsr 16) mod bound
  in
  for i = Array.length arr - 1 downto 1 do
    let j = next (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list arr

(* Sets are compared structurally: a partition never holds two sets with
   the same container ids. *)
let replace_set config ~old_sets ~new_sets : Cost_model.configuration =
  {
    Cost_model.sets =
      List.filter (fun s -> not (List.mem s old_sets)) config.Cost_model.sets @ new_sets;
  }

(** Run the greedy search. Returns the chosen configuration without
    applying it. *)
let search ?(seed = 17) ?(weights = Cost_model.default_weights) (repo : Repository.t)
    (workload : Workload.t) : result =
  Xquec_obs.Trace.with_span ~name:"partitioner.search"
    ~attrs:
      [ ("predicates", string_of_int (List.length workload.Workload.predicates)) ]
  @@ fun () ->
  Xquec_obs.Metrics.time_ms "partitioner.search_ms" @@ fun () ->
  let model = Cost_model.create ~weights repo workload in
  let queried = Workload.queried_containers workload in
  let initial : Cost_model.configuration =
    { Cost_model.sets = List.map (fun id -> ([ id ], Compress.Codec.Bzip_alg)) queried }
  in
  let initial_cost = Cost_model.cost model initial in
  let config = ref initial in
  let trace = ref [] in
  let try_moves (pred : Workload.predicate) (proposals : Cost_model.configuration list) =
    let before = Cost_model.cost model !config in
    let best =
      List.fold_left
        (fun (bc, bcfg) cfg ->
          let c = Cost_model.cost model cfg in
          if c < bc then (c, cfg) else (bc, bcfg))
        (before, !config) proposals
    in
    let (after, chosen) = best in
    config := chosen;
    if Xquec_obs.is_enabled () then begin
      Xquec_obs.Metrics.incr ~by:(List.length proposals) "partitioner.moves_proposed";
      if after < before then Xquec_obs.Metrics.incr "partitioner.moves_accepted"
    end;
    trace :=
      { predicate = pred; accepted = after < before; cost_before = before; cost_after = after }
      :: !trace
  in
  Xquec_obs.Metrics.set_gauge "partitioner.initial_cost" initial_cost;
  let preds = shuffle ~seed workload.Workload.predicates in
  List.iter
    (fun (pred : Workload.predicate) ->
      let ids = List.sort_uniq compare (pred.Workload.left @ pred.Workload.right) in
      match ids with
      | [] -> ()
      | first :: _ -> (
        let algs = candidates_for pred.Workload.cls in
        let set_of id = List.find (fun (ids', _) -> List.mem id ids') !config.Cost_model.sets in
        let sets = List.sort_uniq compare (List.map set_of ids) in
        match sets with
        | [ ((set_ids, _) as old_set) ] ->
          (* all in one set: propose enabling algorithms for that set *)
          let proposals =
            List.map
              (fun alg -> replace_set !config ~old_sets:[ old_set ] ~new_sets:[ (set_ids, alg) ])
              algs
          in
          ignore first;
          try_moves pred proposals
        | _ :: _ :: _ ->
          let old_sets = sets in
          let others =
            List.map
              (fun (set_ids, alg) -> (List.filter (fun id -> not (List.mem id ids)) set_ids, alg))
              sets
            |> List.filter (fun (set_ids, _) -> set_ids <> [])
          in
          (* s': extract the predicate's containers into a fresh set *)
          let extracts =
            List.map (fun alg -> replace_set !config ~old_sets ~new_sets:((ids, alg) :: others)) algs
          in
          (* s'': merge the sets *)
          let merged_ids = List.concat_map fst sets |> List.sort_uniq compare in
          let merges =
            List.map
              (fun alg -> replace_set !config ~old_sets ~new_sets:[ (merged_ids, alg) ])
              algs
          in
          try_moves pred (extracts @ merges)
        | [] -> ()))
    preds;
  let final_cost = Cost_model.cost model !config in
  Xquec_obs.Metrics.set_gauge "partitioner.final_cost" final_cost;
  { configuration = !config; initial_cost; final_cost; trace = List.rev !trace }

(** Apply a configuration to the repository: per set, train a shared
    source model on the union of the containers' values and recompress.
    Containers outside the configuration are left as loaded. *)
let apply (repo : Repository.t) (config : Cost_model.configuration) : unit =
  Xquec_obs.Trace.with_span ~name:"partitioner.apply"
    ~attrs:[ ("sets", string_of_int (List.length config.Cost_model.sets)) ]
  @@ fun () ->
  Xquec_obs.Metrics.time_ms "partitioner.apply_ms" @@ fun () ->
  List.iter
    (fun (ids, alg) ->
      let containers = List.map (fun id -> repo.Repository.containers.(id)) ids in
      let all_values = List.concat_map (fun c -> List.map fst (Container.dump c)) containers in
      match Compress.Codec.train alg all_values with
      | exception Compress.Codec.Unsupported _ ->
        () (* cost model gave this infinite cost; defensive no-op *)
      | model ->
        let model_id = List.fold_left min max_int ids in
        let remaps = Hashtbl.create 8 in
        List.iter
          (fun (c : Container.t) ->
            let perm = Container.recompress c ~algorithm:alg ~model ~model_id in
            Hashtbl.add remaps c.Container.id perm)
          containers;
        Structure_tree.remap_values repo.Repository.tree (Hashtbl.find_opt remaps))
    config.Cost_model.sets

(* Tally how the declared workload touches each container: wildcard
   predicates imply scans, eq implies selective point access, ineq sits
   in between. The dominant class picks the access pattern fed to
   {!Container.pick_block_size}. *)
let access_pattern_of (workload : Workload.t) (id : int) : Container.access_pattern =
  let eq = ref 0 and ineq = ref 0 and wild = ref 0 in
  List.iter
    (fun (p : Workload.predicate) ->
      if List.mem id p.Workload.left || List.mem id p.Workload.right then begin
        match p.Workload.cls with
        | Workload.Cls_eq -> incr eq
        | Workload.Cls_ineq -> incr ineq
        | Workload.Cls_wild -> incr wild
      end)
    workload.Workload.predicates;
  let total = !eq + !ineq + !wild in
  if total = 0 then Container.Mixed
  else if !wild * 2 > total then Container.Seq_heavy
  else if !eq * 2 > total then Container.Random_selective
  else Container.Mixed

(** Build-time per-container block sizing: for every container the
    declared workload touches, pick a block size from its value width
    and dominant access pattern ({!Container.pick_block_size}) and
    {!Container.reblock} it in place when the choice differs from the
    current size. Record order is untouched, so no pointer remapping is
    needed. Returns [(path, old size, new size)] for each re-blocked
    container. Invoked by [xquec compress --adaptive-blocks] after
    {!optimize}. *)
let size_blocks (repo : Repository.t) (workload : Workload.t) :
    (string * int * int) list =
  Xquec_obs.Trace.with_span ~name:"partitioner.size_blocks" @@ fun () ->
  List.filter_map
    (fun id ->
      let c = repo.Repository.containers.(id) in
      let size =
        Container.pick_block_size ~plain_bytes:c.Container.plain_bytes
          ~n_records:c.Container.n_records
          ~access:(access_pattern_of workload id)
      in
      if size = c.Container.block_size || c.Container.n_records = 0 then None
      else begin
        let before = c.Container.block_size in
        Container.reblock c ~block_size:size;
        Some (c.Container.path, before, size)
      end)
    (Workload.queried_containers workload)

(** Convenience: analyze, search and apply in one call. *)
let optimize ?seed ?weights (repo : Repository.t) (queries : Xquery.Ast.expr list) : result =
  Xquec_obs.Trace.with_span ~name:"partitioner.optimize"
    ~attrs:[ ("queries", string_of_int (List.length queries)) ]
  @@ fun () ->
  let workload = Workload.analyze repo queries in
  let result = search ?seed ?weights repo workload in
  apply repo result.configuration;
  result
