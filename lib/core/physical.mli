(** Physical algebra (§4): the paper's operator set as explicit
    tuple-stream combinators — data access (ContScan, ContAccess,
    StructureSummaryAccess, Parent, Child, TextContent), data
    combination (selections, merge/hash/nested-loop joins, sort), and
    the compression-aware Decompress / XMLSerialize. ContScan order is
    value order (containers are sorted), which is what makes the 1-pass
    merge join valid. *)

open Storage

(** Tuple fields are executor items. *)
type item = Executor.item

(** A row: one item per column. *)
type tuple = item array

(** A lazily re-runnable operator tree of the given output width. *)
type plan = { width : int; run : unit -> tuple Seq.t }

(** Execute a plan and collect its rows. *)
val run : plan -> tuple list

(** Row count of a plan (executes it). *)
val cardinality : plan -> int

(** ContScan: all (element id, compressed value) pairs of a container,
    in value order. *)
val cont_scan : Repository.t -> int -> plan

(** ContAccess=: rows whose decompressed value equals [value], via the
    container's access support when present. *)
val cont_access_eq : Repository.t -> int -> value:string -> plan

(** ContAccess range: rows with value in [[lo, hi]] (either bound
    optional). *)
val cont_access_range : Repository.t -> int -> ?lo:string -> ?hi:string -> unit -> plan

(** StructureSummaryAccess: element ids of all instances reached by a
    summary path from the root. *)
val summary_access : Repository.t -> Summary.step list -> plan

(** Child: expand column [col] to its children with the given tag
    (one output row per child). *)
val child : Repository.t -> tag:string -> plan -> col:int -> plan

(** Parent: replace column [col] by each node's parent id. *)
val parent : Repository.t -> plan -> col:int -> plan

(** Hash join pairing element ids with their immediate text values. *)
val text_content : Repository.t -> int list -> plan -> col:int -> plan

(** Keep rows satisfying the predicate. *)
val select : (tuple -> bool) -> plan -> plan

(** Keep the listed columns, in the listed order. *)
val project : int list -> plan -> plan

(** 1-pass merge join on compressed codes; inputs must be sorted on
    their join columns (ContScan order) and share a source model. *)
val merge_join : plan -> lcol:int -> plan -> rcol:int -> plan

(** Hash join on equal join-column keys ([key] defaults to the raw
    compressed code / string identity). *)
val hash_join : ?key:(item -> string) -> plan -> lcol:int -> plan -> rcol:int -> plan

(** Nested-loop join on an arbitrary row predicate (the fallback the
    ablations compare against). *)
val nl_join : (tuple -> tuple -> bool) -> plan -> plan -> plan

(** Sort rows by column [col] under the item comparator. *)
val sort : (item -> item -> int) -> col:int -> plan -> plan

(** Decompress a column (Cval -> Str); placed as late as possible. *)
val decompress : Repository.t -> plan -> col:int -> plan

(** XMLSerialize: render column [col] of every row as XML text — the
    tail operator of every plan. *)
val xml_serialize : Repository.t -> plan -> col:int -> string
