(** Static analysis over XQuery expressions: free variables, conjunct
    splitting, join-predicate detection — the basis of the executor's
    join and decorrelation planning. *)

(** Sets of variable names (["$p"] and friends). *)
module Sset : Set.S with type elt = string

(** Variables an expression reads but does not bind itself. *)
val free_vars : Xquery.Ast.expr -> Sset.t

(** Split a [where] clause on top-level [and]s into its conjuncts
    (a non-conjunction is returned as a singleton). *)
val conjuncts : Xquery.Ast.expr -> Xquery.Ast.expr list

(** Rebuild a conjunction from {!conjuncts} output; [None] for the empty
    list (no residual predicate). *)
val conjoin : Xquery.Ast.expr list -> Xquery.Ast.expr option

(** A comparison usable as a join between [left_vars] and [right_vars]
    (either may also mention [outer] variables); the result is oriented
    left-side-first, flipping the operator if needed. *)
val join_conjunct :
  left_vars:Sset.t ->
  right_vars:Sset.t ->
  outer:Sset.t ->
  Xquery.Ast.expr ->
  (Xquery.Ast.cmp_op * Xquery.Ast.expr * Xquery.Ast.expr) option

(** Does the expression mention any variable of the set? (Used to decide
    which side of a join a conjunct belongs to.) *)
val mentions : Sset.t -> Xquery.Ast.expr -> bool
