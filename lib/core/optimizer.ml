(* Strategy analysis ("EXPLAIN"): reports, without touching any data, the
   evaluation strategy the executor will choose for a query — which paths
   resolve through the structure summary, which predicates push into
   containers (and whether they run in the compressed domain), which FOR
   variables join by hash/sorted probing, and which nested FLWORs
   decorrelate. The paper's optimizer was "not finalized" (§5); this
   module documents the heuristic planner the executor implements, and is
   what the workload examples and tests introspect. *)

open Storage
open Xquery

type predicate_plan = {
  predicate : string;            (* printed form *)
  containers : string list;      (* container paths it pushes into *)
  compressed_domain : bool;      (* evaluable on codes under current codecs *)
}

type decision =
  | Summary_path of { path : string; snodes : int }
      (** the path resolves entirely through the structure summary *)
  | Navigation of { path : string }
      (** per-node navigation (unknown provenance or positional preds) *)
  | Pushdown of predicate_plan
  | Scan_filter of predicate_plan
      (** pushed into containers but requires decompression *)
  | Hash_join of { variable : string; left : string; right : string; on_codes : bool }
  | Block_join of {
      variable : string;
      left : string;
      right : string;
      blocks_probed : int;
      blocks_skipped : int;
      skip_fraction : float;
    }
  | Sorted_probe of { variable : string; left : string; right : string; on_codes : bool }
  | Decorrelate of { variable : string; op : string; on_codes : bool }
  | Correlated_loop of { variable : string }

let pp_decision ppf = function
  | Summary_path { path; snodes } ->
    Fmt.pf ppf "summary access: %s (%d summary nodes, no tree parse)" path snodes
  | Navigation { path } -> Fmt.pf ppf "navigation: %s (per-node steps)" path
  | Pushdown p ->
    Fmt.pf ppf "pushdown [compressed domain]: %s -> {%s}" p.predicate
      (String.concat ", " p.containers)
  | Scan_filter p ->
    Fmt.pf ppf "pushdown [scan+decompress]: %s -> {%s}" p.predicate
      (String.concat ", " p.containers)
  | Hash_join { variable; left; right; on_codes } ->
    Fmt.pf ppf "hash join for $%s: %s = %s%s" variable left right
      (if on_codes then " (on compressed codes)" else "")
  | Block_join { variable; left; right; blocks_probed; blocks_skipped; skip_fraction } ->
    Fmt.pf ppf
      "block merge join for $%s: %s = %s (header overlap: %d blocks probed, %d skipped, %.0f%% skip)"
      variable left right blocks_probed blocks_skipped (100.0 *. skip_fraction)
  | Sorted_probe { variable; left; right; on_codes } ->
    Fmt.pf ppf "sorted probe for $%s: %s vs %s%s" variable left right
      (if on_codes then " (on compressed codes)" else "")
  | Decorrelate { variable; op; on_codes } ->
    Fmt.pf ppf "decorrelated nested flwor bound to $%s (%s join%s)" variable op
      (if on_codes then ", on compressed codes" else "")
  | Correlated_loop { variable } ->
    Fmt.pf ppf "correlated re-evaluation for $%s (no single join conjunct)" variable

module Sset = Analysis.Sset

(* Would a predicate of this class run on compressed codes for all the
   given containers (same model when comparing container-to-container)? *)
let class_in_domain (cls : [ `Eq | `Ineq | `Wild ]) (conts : Container.t list) =
  match conts with
  | [] -> false
  | first :: rest ->
    List.for_all
      (fun (c : Container.t) -> Compress.Codec.supports c.Container.algorithm cls)
      conts
    && (rest = []
       || List.for_all
            (fun (c : Container.t) -> c.Container.model_id = first.Container.model_id)
            rest)

let cls_of_op = function
  | Ast.Eq | Ast.Neq -> `Eq
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> `Ineq

let short e =
  let s = Ast.to_string e in
  if String.length s > 60 then String.sub s 0 57 ^ "..." else s

(** Analyze a query against a repository. *)
let explain (repo : Repository.t) (query : Ast.expr) : decision list =
  let ctx = Executor.mk_ctx repo in
  let out = ref [] in
  let emit d = out := d :: !out in
  let container_paths cs = List.map (fun (c : Container.t) -> c.Container.path) cs in
  (* walk the expression, maintaining an executor-style env of snode
     provenance (bindings carry empty item lists) *)
  let bind_snodes env v snodes =
    (v, { Executor.seq = Executor.Mat []; snodes }) :: env
  in
  let rec snodes_of env e : Summary.node list =
    match e with
    | Ast.Doc _ -> [ repo.Repository.summary.Summary.root ]
    | Ast.Var v -> (
      match List.assoc_opt v env with Some b -> b.Executor.snodes | None -> [])
    | Ast.Context -> (
      match List.assoc_opt "." env with Some b -> b.Executor.snodes | None -> [])
    | Ast.Path (src, steps) ->
      List.fold_left
        (fun sn (st : Ast.step) ->
          match st.Ast.test with
          | Ast.Text -> sn
          | _ -> Executor.advance_snodes ctx sn st)
        (snodes_of env src) steps
    | Ast.Distinct_values e -> snodes_of env e
    | _ -> []
  in
  let analyze_pred snodes (e : Ast.expr) =
    match Executor.recognize_pushable e with
    | None -> ()
    | Some p ->
      let (cls, printed, conts) =
        match p with
        | Executor.P_value (op, vsteps, _) ->
          let conts =
            match Executor.resolve_value_path ctx snodes vsteps with
            | Some resolved -> List.map fst resolved
            | None -> []
          in
          (cls_of_op op, short e, conts)
        | Executor.P_textual (kind, vsteps, _) ->
          let conts =
            match Executor.resolve_value_path ctx snodes vsteps with
            | Some resolved -> List.map fst resolved
            | None -> []
          in
          ((match kind with `Starts_with -> `Wild | `Contains -> `Wild), short e, conts)
        | Executor.P_exists _ -> (`Eq, short e, [])
      in
      if conts <> [] then begin
        let plan =
          { predicate = printed; containers = container_paths conts;
            compressed_domain = class_in_domain cls conts }
        in
        emit (if plan.compressed_domain then Pushdown plan else Scan_filter plan)
      end
  in
  let rec walk env (e : Ast.expr) =
    match e with
    | Ast.Path (src, steps) ->
      walk env src;
      let src_snodes = snodes_of env src in
      let final = snodes_of env e in
      let has_pos =
        List.exists
          (fun (st : Ast.step) ->
            List.exists
              (function Ast.Pos _ | Ast.Pos_last -> true | Ast.Cond _ -> false)
              st.Ast.predicates)
          steps
      in
      (match src with
      | Ast.Doc _ when final <> [] && not has_pos ->
        emit (Summary_path { path = short e; snodes = List.length final })
      | _ when final = [] || has_pos -> emit (Navigation { path = short e })
      | _ -> ());
      (* predicates inside steps *)
      let sn = ref src_snodes in
      List.iter
        (fun (st : Ast.step) ->
          sn := (match st.Ast.test with Ast.Text -> !sn | _ -> Executor.advance_snodes ctx !sn st);
          List.iter
            (function
              | Ast.Pos _ | Ast.Pos_last -> ()
              | Ast.Cond c ->
                analyze_pred !sn c;
                walk (bind_snodes env "." !sn) c)
            st.Ast.predicates)
        steps
    | Ast.Flwor (clauses, ret) -> walk_flwor env clauses ret
    | Ast.If (a, b, c) ->
      walk env a;
      walk env b;
      walk env c
    | Ast.Cmp (_, a, b) | Ast.Arith (_, a, b) | Ast.And (a, b) | Ast.Or (a, b)
    | Ast.Contains (a, b) | Ast.Starts_with (a, b) ->
      walk env a;
      walk env b
    | Ast.Ftcontains (a, _)
    | Ast.Not a | Ast.Aggregate (_, a) | Ast.Empty a | Ast.Exists a
    | Ast.Distinct_values a | Ast.String_of a | Ast.Number_of a | Ast.Name_of a ->
      walk env a
    | Ast.Some_satisfies (v, a, c) | Ast.Every_satisfies (v, a, c) ->
      walk env a;
      walk (bind_snodes env v (snodes_of env a)) c
    | Ast.Element (_, attrs, kids) ->
      List.iter
        (fun (_, v) -> match v with Ast.Attr_expr e -> walk env e | Ast.Attr_string _ -> ())
        attrs;
      List.iter (walk env) kids
    | Ast.Sequence es -> List.iter (walk env) es
    | Ast.Literal_string _ | Ast.Literal_number _ | Ast.Var _ | Ast.Context | Ast.Doc _ -> ()
  and walk_flwor env clauses ret =
    let base_vars = Sset.of_list (List.map fst env) in
    let conjuncts =
      List.concat_map (function Ast.Where e -> Analysis.conjuncts e | _ -> []) clauses
    in
    let bound = ref Sset.empty in
    let inner_env = ref env in
    let join_on_codes env left_e right_e =
      match Executor.join_key_mode ctx env left_e right_e with
      | Executor.Mode_code _ -> true
      | Executor.Mode_atom -> false
    in
    List.iter
      (fun clause ->
        match clause with
        | Ast.For (v, e) ->
          walk !inner_env e;
          let correlated = Analysis.mentions !bound e in
          if not correlated then begin
            let right_vars = Sset.singleton v in
            let join =
              List.find_map
                (fun c ->
                  Analysis.join_conjunct ~left_vars:!bound ~right_vars ~outer:base_vars c)
                conjuncts
            in
            match join with
            | Some (op, left_e, right_e) when op <> Ast.Neq ->
              let typing_env = bind_snodes !inner_env v (snodes_of !inner_env e) in
              let on_codes = join_on_codes typing_env left_e right_e in
              if op = Ast.Eq then begin
                (* Prefer the header-driven block merge join whenever it is
                   statically applicable and the header intersection says it
                   decodes no more than a hash join would at scale (the
                   executor re-checks at runtime with the real tuple count). *)
                match Executor.block_join_sides ctx typing_env ~var:v left_e right_e with
                | Some (lres, rres) ->
                  let ests =
                    List.concat_map
                      (fun ((lc : Container.t), _) ->
                        List.map
                          (fun ((rc : Container.t), _) ->
                            Cost_model.block_join_estimate (Container.headers lc)
                              (Container.headers rc))
                          rres)
                      lres
                  in
                  if Cost_model.prefer_block_join ests ~tuples:max_int then begin
                    let probed =
                      List.fold_left (fun a e -> a + e.Cost_model.bj_probed_blocks) 0 ests
                    in
                    let skipped =
                      List.fold_left (fun a e -> a + e.Cost_model.bj_skipped_blocks) 0 ests
                    in
                    let total = probed + skipped in
                    emit
                      (Block_join
                         { variable = v; left = short left_e; right = short right_e;
                           blocks_probed = probed; blocks_skipped = skipped;
                           skip_fraction =
                             (if total = 0 then 0.0 else float_of_int skipped /. float_of_int total)
                         })
                  end
                  else
                    emit
                      (Hash_join { variable = v; left = short left_e; right = short right_e; on_codes })
                | None ->
                  emit
                    (Hash_join { variable = v; left = short left_e; right = short right_e; on_codes })
              end
              else
                emit
                  (Sorted_probe { variable = v; left = short left_e; right = short right_e; on_codes })
            | _ -> ()
          end;
          inner_env := bind_snodes !inner_env v (snodes_of !inner_env e);
          bound := Sset.add v !bound
        | Ast.Let (v, e) ->
          let correlated = Analysis.mentions !bound e in
          (if correlated then begin
             match e with
             | Ast.Flwor (inner_clauses, _) ->
               let inner_bound =
                 List.fold_left
                   (fun acc c ->
                     match c with
                     | Ast.For (v, _) | Ast.Let (v, _) -> Sset.add v acc
                     | _ -> acc)
                   Sset.empty inner_clauses
               in
               let inner_conjs =
                 List.concat_map
                   (function Ast.Where e -> Analysis.conjuncts e | _ -> [])
                   inner_clauses
               in
               let correlated_conjs = List.filter (Analysis.mentions !bound) inner_conjs in
               (match correlated_conjs with
               | [ c ] -> (
                 match
                   Analysis.join_conjunct ~left_vars:!bound ~right_vars:inner_bound
                     ~outer:base_vars c
                 with
                 | Some (op, outer_e, inner_e) when op <> Ast.Neq ->
                   let typing_env =
                     List.fold_left
                       (fun env c ->
                         match c with
                         | Ast.For (w, e) | Ast.Let (w, e) ->
                           bind_snodes env w (snodes_of env e)
                         | Ast.Where _ | Ast.Order_by _ -> env)
                       !inner_env inner_clauses
                   in
                   emit
                     (Decorrelate
                        { variable = v; op = Ast.cmp_name op;
                          on_codes = join_on_codes typing_env outer_e inner_e })
                 | _ -> emit (Correlated_loop { variable = v }))
               | _ -> emit (Correlated_loop { variable = v }))
             | _ -> emit (Correlated_loop { variable = v })
           end);
          walk !inner_env e;
          inner_env := bind_snodes !inner_env v (snodes_of !inner_env e);
          bound := Sset.add v !bound
        | Ast.Where e ->
          (* constant-side conjuncts resolve to container pushdowns *)
          List.iter
            (fun c ->
              match c with
              | Ast.Cmp (op, Ast.Path (Ast.Var v, vsteps), rhs)
                when Executor.const_of_expr rhs <> None -> (
                match List.assoc_opt v !inner_env with
                | Some b -> (
                  match Executor.resolve_value_path ctx b.Executor.snodes vsteps with
                  | Some resolved ->
                    let conts = List.map fst resolved in
                    let plan =
                      { predicate = short c; containers = container_paths conts;
                        compressed_domain = class_in_domain (cls_of_op op) conts }
                    in
                    emit (if plan.compressed_domain then Pushdown plan else Scan_filter plan)
                  | None -> ())
                | None -> ())
              | _ -> ())
            (Analysis.conjuncts e);
          walk !inner_env e
        | Ast.Order_by keys -> List.iter (fun (k, _) -> walk !inner_env k) keys)
      clauses;
    walk !inner_env ret
  in
  walk [] query;
  List.rev !out

let explain_string (repo : Repository.t) (query : string) : string =
  let decisions = explain repo (Xquery.Parser.parse query) in
  Fmt.str "%a" Fmt.(list ~sep:(any "@.") pp_decision) decisions

(** Render the EXPLAIN ANALYZE report for an already-profiled plan:
    strategy decisions followed by the annotated physical plan —
    per-operator wall time, output cardinalities, and
    compressed-domain vs. decompress-then-compare predicate counts. *)
let render_profiled (repo : Repository.t) (query : string)
    (plan : Xquec_obs.Explain.node) : string =
  let decisions = explain repo (Xquery.Parser.parse query) in
  let t = Xquec_obs.Explain.totals plan in
  let buf = Buffer.create 1024 in
  if decisions <> [] then begin
    Buffer.add_string buf "strategy:\n";
    List.iter (fun d -> Buffer.add_string buf (Fmt.str "  %a\n" pp_decision d)) decisions;
    Buffer.add_char buf '\n'
  end;
  Buffer.add_string buf "profiled plan:\n";
  Buffer.add_string buf (Xquec_obs.Explain.render plan);
  Buffer.add_string buf
    (Printf.sprintf "%d operators; predicate cmps: %d compressed-domain, %d decompressed\n"
       t.Xquec_obs.Explain.operators t.Xquec_obs.Explain.compressed
       t.Xquec_obs.Explain.decompressed);
  Buffer.contents buf

(** EXPLAIN ANALYZE: evaluate the query with an attached profile and
    render it with {!render_profiled}. *)
let explain_profiled (repo : Repository.t) (query : string) : string =
  let (_items, plan) = Executor.run_profiled repo (Xquery.Parser.parse query) in
  render_profiled repo query plan
