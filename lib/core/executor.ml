(* XQueC query executor (§4): evaluates the XQuery subset directly over
   the compressed repository.

   The evaluation strategy realizes the paper's claims:
   - path expressions resolve against the structure summary, so queries
     never parse the whole structure tree (§2.3, Fig. 4);
   - value predicates are pushed into containers and evaluated on
     compressed codes whenever the container's algorithm supports the
     comparison class (eq / ineq / prefix-wildcard); otherwise the
     container is scanned and decompressed — the cost the §3 model and
     partitioner exist to avoid;
   - uncorrelated FOR/LET sources are evaluated once; value joins become
     hash joins (equality) or sorted-array lookups (inequality), probing
     compressed codes directly when both sides share a source model;
   - nested FLWORs correlated through a single comparison (the XMark
     Q8/Q9/Q10 pattern) are decorrelated into a build-once/probe-many
     join table;
   - decompression happens as late as possible: counting, equality and
     order tests run on codes; only results being returned (or values
     forced through string functions) are decompressed. *)

open Storage
open Xquery

type item =
  | Node of int  (** structure-tree node id *)
  | Cval of { cont : Container.t; code : string }  (** compressed value *)
  | Att of string * item  (** attribute node: name + (usually compressed) value *)
  | Str of string
  | Num of float
  | Bool of bool
  | Elem of Xmlkit.Tree.t  (** constructed element *)

(* A sequence with provenance: [snodes] are the summary nodes items came
   from (when known); [All] means "every instance under these summary
   nodes", which lets whole paths evaluate without touching instances. *)
type seqv =
  | Mat of item list
  | All_nodes of Summary.node list
  | All_values of Summary.node list (* element snodes whose text containers hold the values *)

type binding = { seq : seqv; snodes : Summary.node list }

let mat items = { seq = Mat items; snodes = [] }

type ctx = {
  repo : Repository.t;
  prof : Xquec_obs.Explain.t option;  (** attached EXPLAIN profile, if any *)
  prof_ops : bool;
      (** open operator nodes in the profile; switched off inside
          per-tuple / per-node evaluation so the plan tree mirrors
          operators, not data (cmp counts still accumulate) *)
}

let mk_ctx repo = { repo; prof = None; prof_ops = true }

(* Per-item evaluation under an operator: keep the profile (so predicate
   evaluations are still attributed to the innermost open operator) but
   stop opening new operator nodes. *)
let quiet ctx = if ctx.prof_ops then { ctx with prof_ops = false } else ctx

type env = (string * binding) list

exception Eval_error of string

let err fmt = Fmt.kstr (fun s -> raise (Eval_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Repository helpers                                                  *)
(* ------------------------------------------------------------------ *)

let tag_code ctx name = Name_dict.code ctx.repo.Repository.dict name

let tag_name ctx code = Name_dict.name ctx.repo.Repository.dict code

let is_attr_code ctx code =
  code >= 0 && String.length (tag_name ctx code) > 0 && (tag_name ctx code).[0] = '@'

let container ctx id = ctx.repo.Repository.containers.(id)

(* Values attached directly to a node, in slot order: an element's
   pointers are its immediate text children; an attribute node's single
   pointer is its value. *)
let node_text_values ctx id : item list =
  Structure_tree.value_pointers ctx.repo.Repository.tree id
  |> Array.to_list
  |> List.map (fun (cid, idx) ->
         let cont = container ctx cid in
         Cval { cont; code = (Container.get cont idx).Container.code })

(* The value of an attribute node. *)
let attr_node_value ctx id : item option =
  match Array.to_list (Structure_tree.value_pointers ctx.repo.Repository.tree id) with
  | (cid, idx) :: _ ->
    let cont = container ctx cid in
    Some (Cval { cont; code = (Container.get cont idx).Container.code })
  | [] -> None

let decompress_cval (cont : Container.t) code = Compress.Codec.decompress cont.Container.model code

(* String value of an element: concatenation of all descendant text, in
   document order (attributes excluded), decompressing on the way. *)
let node_string_value ctx id : string =
  let tree = ctx.repo.Repository.tree in
  let id = if id < 0 then 0 else id (* the document node's string value *) in
  let buf = Buffer.create 64 in
  let rec go id =
    let values = Structure_tree.value_pointers tree id in
    Array.iter
      (fun entry ->
        if entry >= 0 then begin
          if not (is_attr_code ctx (Structure_tree.tag tree entry)) then go entry
        end
        else begin
          let slot = -entry - 1 in
          let (cid, idx) = values.(slot) in
          let cont = container ctx cid in
          Buffer.add_string buf (decompress_cval cont (Container.get cont idx).Container.code)
        end)
      (Structure_tree.child_entries tree id)
  in
  go id;
  Buffer.contents buf

(** Reconstruct the XML subtree rooted at [id] — the XMLSerialize +
    Decompress tail of a plan (§4, Fig. 5). *)
let rec reconstruct ctx id : Xmlkit.Tree.t =
  if id < 0 then Xmlkit.Tree.Element ("#document", [], [ reconstruct ctx 0 ])
  else begin
  let tree = ctx.repo.Repository.tree in
  let tag = tag_name ctx (Structure_tree.tag tree id) in
  let values = Structure_tree.value_pointers tree id in
  let attrs = ref [] in
  let kids = ref [] in
  Array.iter
    (fun entry ->
      if entry >= 0 then begin
        let ctag = tag_name ctx (Structure_tree.tag tree entry) in
        if String.length ctag > 0 && ctag.[0] = '@' then begin
          let v =
            match attr_node_value ctx entry with
            | Some (Cval { cont; code }) -> decompress_cval cont code
            | Some _ | None -> ""
          in
          attrs := (String.sub ctag 1 (String.length ctag - 1), v) :: !attrs
        end
        else kids := reconstruct ctx entry :: !kids
      end
      else begin
        let slot = -entry - 1 in
        let (cid, idx) = values.(slot) in
        let cont = container ctx cid in
        kids :=
          Xmlkit.Tree.Text (decompress_cval cont (Container.get cont idx).Container.code)
          :: !kids
      end)
    (Structure_tree.child_entries tree id);
  Xmlkit.Tree.Element (tag, List.rev !attrs, List.rev !kids)
  end

(* ------------------------------------------------------------------ *)
(* Materialization and atomization                                     *)
(* ------------------------------------------------------------------ *)

(* The document node is virtual: the summary root (tag -1) has no stored
   instances, so it materializes as the pseudo-id -1, which the
   navigation code below understands. *)
let doc_node_id = -1

let merged_node_items (snodes : Summary.node list) : item list =
  let (roots, others) = List.partition (fun (sn : Summary.node) -> sn.Summary.tag < 0) snodes in
  let root_items = if roots = [] then [] else [ Node doc_node_id ] in
  root_items
  @ (Summary.merged_ids others |> Array.to_list |> List.map (fun id -> Node id))

let materialize ctx (b : binding) : item list =
  match b.seq with
  | Mat items -> items
  | All_nodes snodes -> merged_node_items snodes
  | All_values snodes ->
    (* Document order across ALL contributing summary nodes: collect the
       owning node ids, merge-sort them globally, then read each owner's
       values in slot order. Values of attribute snodes (path ends in
       @name) are wrapped as attribute nodes. *)
    let owners =
      List.concat_map
        (fun (sn : Summary.node) ->
          let attr_name =
            if sn.Summary.tag >= 0 then begin
              let n = tag_name ctx sn.Summary.tag in
              if String.length n > 0 && n.[0] = '@' then
                Some (String.sub n 1 (String.length n - 1))
              else None
            end
            else None
          in
          Array.to_list sn.Summary.ids |> List.map (fun id -> (id, attr_name)))
        snodes
      |> List.sort (fun (a, _) (b, _) -> compare a b)
    in
    List.concat_map
      (fun (id, attr_name) ->
        let vals = node_text_values ctx id in
        match attr_name with
        | Some name -> List.map (fun v -> Att (name, v)) vals
        | None -> vals)
      owners

let count ctx (b : binding) : int =
  match b.seq with
  | Mat items -> List.length items
  | All_nodes snodes ->
    List.fold_left
      (fun acc (sn : Summary.node) ->
        acc + if sn.Summary.tag < 0 then 1 else Array.length sn.Summary.ids)
      0 snodes
  | All_values _ -> List.length (materialize ctx b)

(* ------------------------------------------------------------------ *)
(* Profiling shims (free when the ctx carries no Explain profile)      *)
(* ------------------------------------------------------------------ *)

(* Stamp the buffer-pool activity of [f]'s whole evaluation onto [node]
   (inclusive of child operators, same convention as wall time). *)
let with_cache_delta (node : Xquec_obs.Explain.node) (f : unit -> 'a) : 'a =
  let s0 = Storage.Buffer_pool.snapshot () in
  let v = f () in
  let s1 = Storage.Buffer_pool.snapshot () in
  Xquec_obs.Explain.set_cache node
    ~skipped_bytes:
      (s1.Storage.Buffer_pool.s_skipped_bytes - s0.Storage.Buffer_pool.s_skipped_bytes)
    ~hits:(s1.Storage.Buffer_pool.s_hits - s0.Storage.Buffer_pool.s_hits)
    ~misses:(s1.Storage.Buffer_pool.s_misses - s0.Storage.Buffer_pool.s_misses)
    ~waits:(s1.Storage.Buffer_pool.s_latch_waits - s0.Storage.Buffer_pool.s_latch_waits)
    ~skipped:(s1.Storage.Buffer_pool.s_blocks_skipped - s0.Storage.Buffer_pool.s_blocks_skipped)
    ~decoded_bytes:(s1.Storage.Buffer_pool.s_decoded_bytes - s0.Storage.Buffer_pool.s_decoded_bytes)
    ();
  v

(* Run [f] as an operator node; [rows] extracts the output cardinality
   from its result. *)
let prof_rows ctx ?attrs ~kind op ~(rows : 'a -> int) (f : unit -> 'a) : 'a =
  match ctx.prof with
  | Some p when ctx.prof_ops ->
    Xquec_obs.Explain.with_op p ?attrs ~kind op (fun node ->
        let v = with_cache_delta node f in
        Xquec_obs.Explain.set_rows node (rows v);
        v)
  | _ -> f ()

let prof_binding ctx ?attrs ~kind op (f : unit -> binding) : binding =
  match ctx.prof with
  | Some p when ctx.prof_ops ->
    Xquec_obs.Explain.with_op p ?attrs ~kind op (fun node ->
        let b = with_cache_delta node (fun () -> f ()) in
        Xquec_obs.Explain.set_rows node (count ctx b);
        b)
  | _ -> f ()

(* [n] predicate evaluations decided on compressed codes ([compressed])
   or after decompression; attributed to the innermost open operator and
   to the global executor.cmp.* counters. *)
let note_cmp ctx ~compressed n =
  if n > 0 then begin
    (match ctx.prof with
    | Some p -> Xquec_obs.Explain.note_cmp p ~compressed n
    | None -> ());
    if Xquec_obs.is_enabled () then
      Xquec_obs.Metrics.incr ~by:n
        (if compressed then "executor.cmp.compressed" else "executor.cmp.decompressed")
  end

(* ------------------------------------------------------------------ *)
(* Block-interval merge join: counters, toggle and plan shape          *)
(* ------------------------------------------------------------------ *)

(* Process-wide counters for the block merge join, kept as atomics (like
   the buffer-pool stats) so they survive with telemetry off and can be
   synced into /metrics, --stats and the query log. *)
type join_stats = {
  j_block_joins : int;
  j_blocks_probed : int;
  j_blocks_skipped : int;
  j_skipped_bytes : int;
}

let a_block_joins = Atomic.make 0
let a_blocks_probed = Atomic.make 0
let a_blocks_skipped = Atomic.make 0
let a_skipped_bytes = Atomic.make 0

let join_stats () : join_stats =
  {
    j_block_joins = Atomic.get a_block_joins;
    j_blocks_probed = Atomic.get a_blocks_probed;
    j_blocks_skipped = Atomic.get a_blocks_skipped;
    j_skipped_bytes = Atomic.get a_skipped_bytes;
  }

let reset_join_stats () =
  Atomic.set a_block_joins 0;
  Atomic.set a_blocks_probed 0;
  Atomic.set a_blocks_skipped 0;
  Atomic.set a_skipped_bytes 0

let block_join_enabled =
  ref
    (match Sys.getenv_opt "XQUEC_BLOCK_JOIN" with
    | Some ("0" | "false" | "off") -> false
    | _ -> true)

let set_block_join on = block_join_enabled := on

let note_block_join ~probed ~skipped ~skipped_bytes =
  Atomic.incr a_block_joins;
  ignore (Atomic.fetch_and_add a_blocks_probed probed);
  ignore (Atomic.fetch_and_add a_blocks_skipped skipped);
  ignore (Atomic.fetch_and_add a_skipped_bytes skipped_bytes);
  if Xquec_obs.is_enabled () then begin
    Xquec_obs.Metrics.incr "executor.join.block_joins";
    if probed > 0 then Xquec_obs.Metrics.incr ~by:probed "executor.join.blocks_probed";
    if skipped > 0 then Xquec_obs.Metrics.incr ~by:skipped "executor.join.blocks_skipped"
  end

(* ------------------------------------------------------------------ *)
(* Predicate-mix observations                                          *)
(* ------------------------------------------------------------------ *)

(* One container-resolved predicate (pushed-down filter, existence
   test, or compressed-domain join side) as observed during
   evaluation — the raw material the engine tags query-log records
   with and [Obs.Profile] aggregates into a workload fingerprint.
   Accumulated in a plain ref, like the Explain profile: queries are
   evaluated one at a time and [run] / [run_profiled] reset it, so
   after a query the list describes exactly that query. Not
   thread-safe across concurrently evaluated queries. *)
type pred_obs = {
  o_container : string;  (* container (or summary) path *)
  o_kind : string;  (* "eq" | "range" | "wild" | "exists" | "join" *)
  o_candidates : int;  (* records / instances considered *)
  o_matches : int;  (* records / instances matched *)
}

(* Merged by (container, kind): per-tuple comparison notes (one per
   FLWOR tuple) would otherwise contribute thousands of entries, and
   the fingerprint only needs the sums. First-observation order is
   kept so the log record is stable.

   The accumulator lives in Domain.DLS so concurrent queries (one per
   serve worker domain) observe only their own predicates: [run] resets
   the evaluating domain's slot, predicate sites bump it, and the
   engine reads it back on the same domain immediately after
   evaluation. Predicate checks always execute on the evaluating domain
   — Domain_pool workers only decode blocks — so no observation is ever
   recorded against the wrong domain's slot. *)
type pred_obs_state = {
  po_tbl : (string * string, int ref * int ref) Hashtbl.t;
  mutable po_order : (string * string) list;
}

let pred_obs_key : pred_obs_state Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { po_tbl = Hashtbl.create 16; po_order = [] })

let reset_predicate_observations () =
  let st = Domain.DLS.get pred_obs_key in
  Hashtbl.reset st.po_tbl;
  st.po_order <- []

let predicate_observations () =
  let st = Domain.DLS.get pred_obs_key in
  List.rev_map
    (fun ((container, kind) as key) ->
      let c, m = Hashtbl.find st.po_tbl key in
      { o_container = container; o_kind = kind; o_candidates = !c; o_matches = !m })
    st.po_order

let note_pred ~container ~kind ~candidates ~matches =
  let st = Domain.DLS.get pred_obs_key in
  match Hashtbl.find_opt st.po_tbl (container, kind) with
  | Some (c, m) ->
    c := !c + candidates;
    m := !m + matches
  | None ->
    Hashtbl.add st.po_tbl (container, kind) (ref candidates, ref matches);
    st.po_order <- (container, kind) :: st.po_order

(* One (left container, right container) pairing of a block join with
   its header-overlap estimate; a side with several summary nodes
   contributes one pairing per container product. *)
type block_pairing = {
  bp_lc : Container.t;
  bp_lhops : int;
  bp_rc : Container.t;
  bp_rhops : int;
  bp_est : Cost_model.block_join_estimate;
}

(* A fully-decided block merge join: everything needed to execute it
   without re-checking applicability. [pl_tuple_nodes] pairs each outer
   tuple delta with the node id its probe-side variable is bound to;
   [pl_item_of_node] inverts the source items (all tree nodes) to their
   item index, so matched records map back to output positions. *)
type block_plan = {
  pl_items : item array;
  pl_item_of_node : (int, int) Hashtbl.t;
  pl_tuple_nodes : (env * int) list;
  pl_pairings : block_pairing list;
  pl_probed : int;
  pl_skipped : int;
  pl_skipped_bytes : int;
}

let short_expr ?(limit = 48) (e : Ast.expr) : string =
  let s = Ast.to_string e in
  if String.length s > limit then String.sub s 0 (limit - 3) ^ "..." else s

let step_label (st : Ast.step) : string =
  let axis =
    match st.Ast.axis with
    | Ast.Child -> "child"
    | Ast.Descendant -> "descendant"
    | Ast.Attribute -> "attribute"
  in
  let test =
    match st.Ast.test with Ast.Name n -> n | Ast.Any -> "*" | Ast.Text -> "text()"
  in
  axis ^ "::" ^ test

let rec atom_string ctx = function
  | Node id -> node_string_value ctx id
  | Cval { cont; code } -> decompress_cval cont code
  | Att (_, v) -> atom_string ctx v
  | Str s -> s
  | Num f -> if Float.is_integer f then string_of_int (int_of_float f) else Printf.sprintf "%g" f
  | Bool b -> if b then "true" else "false"
  | Elem t -> Xmlkit.Tree.text_content t

let atom_number ctx it =
  match it with
  | Num f -> Some f
  | Bool b -> Some (if b then 1.0 else 0.0)
  | Node _ | Cval _ | Att _ | Str _ | Elem _ ->
    float_of_string_opt (String.trim (atom_string ctx it))

let ebv ctx (b : binding) =
  match b.seq with
  | All_nodes snodes ->
    List.exists
      (fun (sn : Summary.node) -> sn.Summary.tag < 0 || Array.length sn.Summary.ids > 0)
      snodes
  | All_values _ -> materialize ctx b <> []
  | Mat [] -> false
  | Mat [ Bool b ] -> b
  | Mat [ Str s ] -> s <> ""
  | Mat [ Num f ] -> f <> 0.0 && not (Float.is_nan f)
  | Mat _ -> true

let singleton_number ctx (b : binding) =
  match materialize ctx b with
  | [ it ] -> (
    match atom_number ctx it with
    | Some f -> f
    | None -> err "cannot convert %S to a number" (atom_string ctx it))
  | [] -> Float.nan
  | _ -> err "expected a singleton numeric value"

(* Comparison of two items: stays in the compressed domain when both are
   codes under the same source model and the codec supports the class. *)
let rec compare_items ctx a b : int =
  match a, b with
  | Att (_, x), y -> compare_items ctx x y
  | x, Att (_, y) -> compare_items ctx x y
  | Cval x, Cval y
    when x.cont.Container.model_id = y.cont.Container.model_id
         && Compress.Codec.supports x.cont.Container.algorithm `Ineq ->
    String.compare x.code y.code
  | _ -> (
    match atom_number ctx a, atom_number ctx b with
    | Some x, Some y -> compare x y
    | _ -> compare (atom_string ctx a) (atom_string ctx b))

let cmp_holds ctx op a b =
  let a = match a with Att (_, v) -> v | a -> a in
  let b = match b with Att (_, v) -> v | b -> b in
  match op, a, b with
  | Ast.Eq, Cval x, Cval y
    when x.cont.Container.model_id = y.cont.Container.model_id
         && Compress.Codec.supports x.cont.Container.algorithm `Eq ->
    note_cmp ctx ~compressed:true 1;
    String.equal x.code y.code
  | _ ->
    let compressed =
      match a, b with
      | Cval x, Cval y ->
        x.cont.Container.model_id = y.cont.Container.model_id
        && Compress.Codec.supports x.cont.Container.algorithm `Ineq
      | _ -> false
    in
    note_cmp ctx ~compressed 1;
    let c = compare_items ctx a b in
    (match op with
    | Ast.Eq -> c = 0
    | Ast.Neq -> c <> 0
    | Ast.Lt -> c < 0
    | Ast.Le -> c <= 0
    | Ast.Gt -> c > 0
    | Ast.Ge -> c >= 0)

(* ------------------------------------------------------------------ *)
(* Summary-level step matching                                         *)
(* ------------------------------------------------------------------ *)

let summary_step ctx (st : Ast.step) : Summary.step option =
  match st.Ast.axis, st.Ast.test with
  | Ast.Child, Ast.Name n -> Option.map (fun c -> `Child c) (tag_code ctx n)
  | Ast.Child, Ast.Any -> Some `Child_any
  | Ast.Descendant, Ast.Name n -> Option.map (fun c -> `Desc c) (tag_code ctx n)
  | Ast.Descendant, Ast.Any -> Some `Desc_any
  | Ast.Attribute, Ast.Name n -> Option.map (fun c -> `Child c) (tag_code ctx ("@" ^ n))
  | Ast.Attribute, (Ast.Any | Ast.Text) | (Ast.Child | Ast.Descendant), Ast.Text -> None

(* Apply one summary step from a set of summary nodes. *)
let advance_snodes ctx (snodes : Summary.node list) (st : Ast.step) : Summary.node list =
  match summary_step ctx st with
  | None -> []
  | Some sstep -> Summary.step_from ~is_attr:(is_attr_code ctx) snodes sstep

(* ------------------------------------------------------------------ *)
(* Compressed-domain container filters                                 *)
(* ------------------------------------------------------------------ *)

type const_operand = Cstr of string | Cnum of float

let const_of_expr = function
  | Ast.Literal_string s -> Some (Cstr s)
  | Ast.Literal_number f -> Some (Cnum f)
  | _ -> None

(* Records of [cont] satisfying [value op const]. Uses the compressed
   domain when the codec supports the class; otherwise scans and
   decompresses (the §3 cost). Returns records (code, parent). *)
let rec filter_records ctx (cont : Container.t) (op : Ast.cmp_op) (const : const_operand) :
    Container.record list =
  let alg = cont.Container.algorithm in
  let scan_filter pred =
    note_cmp ctx ~compressed:false (Container.length cont);
    Array.to_list (Container.scan cont)
    |> List.filter (fun (r : Container.record) -> pred (decompress_cval cont r.Container.code))
  in
  (* a lookup decided in the compressed domain: every matched record is a
     comparison that never decompressed *)
  let in_domain records =
    note_cmp ctx ~compressed:true (List.length records);
    records
  in
  let generic () =
    (* decompressed comparison with XQuery general-comparison semantics *)
    let holds v =
      match const with
      | Cnum f -> (
        match float_of_string_opt (String.trim v) with
        | Some x -> (
          let c = compare x f in
          match op with
          | Ast.Eq -> c = 0
          | Ast.Neq -> c <> 0
          | Ast.Lt -> c < 0
          | Ast.Le -> c <= 0
          | Ast.Gt -> c > 0
          | Ast.Ge -> c >= 0)
        | None -> false)
      | Cstr s -> (
        let c =
          match float_of_string_opt (String.trim v), float_of_string_opt s with
          | Some x, Some y -> compare x y
          | _ -> String.compare v s
        in
        match op with
        | Ast.Eq -> c = 0
        | Ast.Neq -> c <> 0
        | Ast.Lt -> c < 0
        | Ast.Le -> c <= 0
        | Ast.Gt -> c > 0
        | Ast.Ge -> c >= 0)
    in
    scan_filter holds
  in
  match cont.Container.model, const with
  | Compress.Codec.M_numeric m, Cnum f -> (
    (* numeric containers: compare in the packed (order-preserving) domain *)
    match op with
    | Ast.Eq -> (
      match Compress.Ipack.pack_exact m f with
      | Some code -> in_domain (Container.lookup_eq cont code)
      | None -> [])
    | Ast.Neq -> generic ()
    | Ast.Lt ->
      in_domain (Container.lookup_range cont ~hi:(Compress.Ipack.pack_bound m ~dir:`Ceil f) ())
    | Ast.Le ->
      let b = Compress.Ipack.pack_bound m ~dir:`Floor f in
      in_domain (Container.range cont ~lo:0 ~hi:(Container.upper_bound cont b))
    | Ast.Gt ->
      let b = Compress.Ipack.pack_bound m ~dir:`Floor f in
      in_domain
        (Container.range cont ~lo:(Container.upper_bound cont b) ~hi:(Container.length cont))
    | Ast.Ge ->
      in_domain (Container.lookup_range cont ~lo:(Compress.Ipack.pack_bound m ~dir:`Ceil f) ()))
  | Compress.Codec.M_numeric m, Cstr s -> (
    match float_of_string_opt s with
    | Some f -> filter_records ctx cont op (Cnum f)
    | None ->
      (* the general-comparison rules fall back to string comparison when
         one side is not numeric: decompress and compare as strings *)
      ignore m;
      generic ())
  | _, Cstr s when Compress.Codec.supports alg `Eq && op = Ast.Eq ->
    in_domain (Container.lookup_eq cont (Container.compress_constant cont s))
  | _, Cstr s
    when Compress.Codec.supports alg `Ineq
         && (op = Ast.Lt || op = Ast.Le || op = Ast.Gt || op = Ast.Ge) -> (
    let code = Container.compress_constant cont s in
    match op with
    | Ast.Lt -> in_domain (Container.lookup_range cont ~hi:code ())
    | Ast.Le ->
      in_domain (Container.range cont ~lo:0 ~hi:(Container.upper_bound cont code))
    | Ast.Gt ->
      in_domain
        (Container.range cont ~lo:(Container.upper_bound cont code) ~hi:(Container.length cont))
    | Ast.Ge -> in_domain (Container.lookup_range cont ~lo:code ())
    | Ast.Eq | Ast.Neq -> assert false)
  | _ -> generic ()

(* contains / starts-with over a container. starts-with runs in the
   compressed domain for Huffman (bit-prefix match) and for
   order-preserving codecs (prefix range); contains always decompresses. *)
let filter_records_textual ctx (cont : Container.t) ~(kind : [ `Contains | `Starts_with ])
    (needle : string) : Container.record list =
  match kind with
  | `Starts_with -> (
    match cont.Container.model with
    | Compress.Codec.M_huffman h ->
      (* bit-prefix match on codes: every record is tested, none decompress *)
      note_cmp ctx ~compressed:true (Container.length cont);
      let prefix_bits = Compress.Huffman.compress_prefix h needle in
      Array.to_list (Container.scan cont)
      |> List.filter (fun (r : Container.record) ->
             Compress.Huffman.matches_prefix ~prefix_bits r.Container.code)
    | Compress.Codec.M_alm m ->
      let (lo, hi) = Compress.Alm.prefix_range m needle in
      let records = Container.lookup_range cont ~lo ?hi () in
      note_cmp ctx ~compressed:true (List.length records);
      records
    | _ ->
      note_cmp ctx ~compressed:false (Container.length cont);
      Array.to_list (Container.scan cont)
      |> List.filter (fun (r : Container.record) ->
             let v = decompress_cval cont r.Container.code in
             String.length needle <= String.length v
             && String.sub v 0 (String.length needle) = needle))
  | `Contains ->
    note_cmp ctx ~compressed:false (Container.length cont);
    let contains hay =
      let n = String.length needle and h = String.length hay in
      if n = 0 then true
      else begin
        let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
        go 0
      end
    in
    Array.to_list (Container.scan cont)
    |> List.filter (fun (r : Container.record) ->
           contains (decompress_cval cont r.Container.code))

(* Map a matched record's parent pointer to the element [hops] levels up.
   Attribute records point at the attribute node, whose parent is the
   owning element. *)
let record_element ctx (cont : Container.t) (r : Container.record) : int =
  match cont.Container.kind with
  | Container.Text -> r.Container.parent
  | Container.Attribute -> Structure_tree.parent ctx.repo.Repository.tree r.Container.parent

let rec ancestor_at ctx id hops =
  if hops <= 0 then id else ancestor_at ctx (Structure_tree.parent ctx.repo.Repository.tree id) (hops - 1)

(* ------------------------------------------------------------------ *)
(* Predicate analysis and pushdown                                     *)
(* ------------------------------------------------------------------ *)

(* Recognized predicate shapes that can be pushed into containers. *)
type pushable =
  | P_value of Ast.cmp_op * Ast.step list * const_operand
  | P_textual of [ `Contains | `Starts_with ] * Ast.step list * string
  | P_exists of Ast.step list

let flip_op = function
  | Ast.Eq -> Ast.Eq
  | Ast.Neq -> Ast.Neq
  | Ast.Lt -> Ast.Gt
  | Ast.Le -> Ast.Ge
  | Ast.Gt -> Ast.Lt
  | Ast.Ge -> Ast.Le

let recognize_pushable (e : Ast.expr) : pushable option =
  match e with
  | Ast.Cmp (op, Ast.Path (Ast.Context, vsteps), rhs) ->
    Option.map (fun c -> P_value (op, vsteps, c)) (const_of_expr rhs)
  | Ast.Cmp (op, lhs, Ast.Path (Ast.Context, vsteps)) ->
    Option.map (fun c -> P_value (flip_op op, vsteps, c)) (const_of_expr lhs)
  | Ast.Contains (Ast.Path (Ast.Context, vsteps), Ast.Literal_string s) ->
    Some (P_textual (`Contains, vsteps, s))
  | Ast.Starts_with (Ast.Path (Ast.Context, vsteps), Ast.Literal_string s) ->
    Some (P_textual (`Starts_with, vsteps, s))
  | Ast.Path (Ast.Context, esteps) -> Some (P_exists esteps)
  | _ -> None

(* Resolve a context-relative value path to (container, hops-to-context).
   Supports chains of child element steps ending in text(), @attr, or a
   bare element. A bare-element comparison atomizes the element's whole
   subtree, so it only resolves to the immediate-text container when that
   is provably the complete string value: exactly one text child per
   instance and no text anywhere below. *)
(* Precomputed per container at build/load time — the old per-query
   implementation did a full [Container.scan], decoding every block and
   defeating the header pruning it was meant to enable. *)
let parents_all_distinct (cont : Container.t) : bool = cont.Container.distinct_parents

let resolve_value_path ?(concat_semantics = false) ctx (snodes : Summary.node list)
    (vsteps : Ast.step list) : (Container.t * int) list option =
  let rec go snodes hops = function
    | [] ->
      (* bare element comparison *)
      let sound (sn : Summary.node) =
        (match sn.Summary.text_container with
        | Some cid ->
          let cont = container ctx cid in
          Array.length sn.Summary.ids = Container.length cont
          && parents_all_distinct cont
        | None -> false)
        && List.for_all
             (fun (d : Summary.node) -> d == sn || d.Summary.text_container = None)
             (Summary.descend_all sn [])
      in
      let conts =
        if snodes <> [] && List.for_all sound snodes then
          List.filter_map
            (fun (sn : Summary.node) -> Option.map (container ctx) sn.Summary.text_container)
            snodes
        else []
      in
      if conts = [] then None else Some (List.map (fun c -> (c, hops)) conts)
    | ({ Ast.axis = Ast.Child; test = Ast.Text; predicates = [] } : Ast.step) :: [] ->
      (* text() value comparisons are existential over the text nodes, so
         per-record matching is exact; contains/starts-with concatenate
         the sequence, so they additionally need one text node per
         instance *)
      let one_text_per_instance (sn : Summary.node) =
        match sn.Summary.text_container with
        | Some cid ->
          let cont = container ctx cid in
          Array.length sn.Summary.ids = Container.length cont
          && parents_all_distinct cont
        | None -> false
      in
      let usable =
        snodes <> []
        && ((not concat_semantics) || List.for_all one_text_per_instance snodes)
      in
      let conts =
        if usable then
          List.filter_map
            (fun (sn : Summary.node) -> Option.map (container ctx) sn.Summary.text_container)
            snodes
        else []
      in
      if conts = [] then None else Some (List.map (fun c -> (c, hops)) conts)
    | { Ast.axis = Ast.Attribute; test = Ast.Name _; predicates = [] } :: [] as steps ->
      let asnodes = advance_snodes ctx snodes (List.hd steps) in
      let conts =
        List.filter_map
          (fun (sn : Summary.node) -> Option.map (container ctx) sn.Summary.text_container)
          asnodes
      in
      (* attribute records resolve to the owning element at this level *)
      if conts = [] then None else Some (List.map (fun c -> (c, hops)) conts)
    | ({ Ast.axis = Ast.Child; test = Ast.Name _; predicates = [] } as st) :: rest ->
      let next = advance_snodes ctx snodes st in
      if next = [] then None else go next (hops + 1) rest
    | _ -> None
  in
  if snodes = [] then None else go snodes 0 vsteps

(* Static applicability of the block merge join for an Eq join binding
   [var] (header/summary analysis only — shared between the executor's
   plan builder and the optimizer's EXPLAIN): both key expressions must
   be value paths rooted at a single variable (the right side at [var],
   the left side at an earlier one), resolving to containers that share
   one source model with [`Eq] support and whose record sequences are
   verified [sorted_run]s. Returns the two sides'
   (container, hops-to-variable) resolutions. *)
let block_join_sides ctx (env : env) ~(var : string) (left_e : Ast.expr)
    (right_e : Ast.expr) : ((Container.t * int) list * (Container.t * int) list) option =
  let side_of e =
    let (root, steps) =
      match e with
      | Ast.Path (Ast.Var v, steps) -> (Some v, steps)
      | Ast.Var v -> (Some v, [])
      | _ -> (None, [])
    in
    match root with
    | None -> None
    | Some v -> (
      match List.assoc_opt v env with
      | None -> None
      | Some b -> Option.map (fun res -> (v, res)) (resolve_value_path ctx b.snodes steps))
  in
  match side_of left_e, side_of right_e with
  | Some (lv, lres), Some (rv, rres) when rv = var && lv <> var -> (
    match List.map fst (lres @ rres) with
    | [] -> None
    | (c0 : Container.t) :: _ as conts ->
      if
        Compress.Codec.supports c0.Container.algorithm `Eq
        && List.for_all
             (fun (c : Container.t) ->
               c.Container.model_id = c0.Container.model_id && c.Container.sorted_run)
             conts
      then Some (lres, rres)
      else None)
  | _ -> None

(* Matched element ids (at candidate level) for a pushable predicate,
   or None when it cannot be resolved statically. *)
let pushdown_matches ctx (snodes : Summary.node list) (p : pushable) : int array option =
  let of_records ~kind resolved records_of =
    let ids =
      List.concat_map
        (fun ((cont : Container.t), hops) ->
          let records = records_of cont in
          note_pred ~container:cont.Container.path ~kind ~candidates:(Container.length cont)
            ~matches:(List.length records);
          List.map
            (fun r -> ancestor_at ctx (record_element ctx cont r) hops)
            records)
        resolved
    in
    let arr = Array.of_list ids in
    Array.sort compare arr;
    Some arr
  in
  match p with
  | P_value (op, vsteps, const) -> (
    if op = Ast.Neq then None
    else
      match resolve_value_path ctx snodes vsteps with
      | None -> None
      | Some resolved ->
        of_records
          ~kind:(if op = Ast.Eq then "eq" else "range")
          resolved
          (fun cont -> filter_records ctx cont op const))
  | P_textual (kind, vsteps, needle) -> (
    match resolve_value_path ~concat_semantics:true ctx snodes vsteps with
    | None -> None
    | Some resolved ->
      of_records ~kind:"wild" resolved (fun cont -> filter_records_textual ctx cont ~kind needle))
  | P_exists esteps -> (
    (* existence of a child path: ids of the target snodes mapped up *)
    let rec advance snodes hops = function
      | [] -> Some (snodes, hops)
      | ({ Ast.axis = Ast.Child; test = Ast.Name _; predicates = [] } as st) :: rest ->
        let next = advance_snodes ctx snodes st in
        if next = [] then None else advance next (hops + 1) rest
      | ({ Ast.axis = Ast.Attribute; test = Ast.Name _; predicates = [] } as st) :: [] ->
        let next = advance_snodes ctx snodes st in
        if next = [] then None else Some (next, hops + 1)
      | _ -> None
    in
    match advance snodes 0 esteps with
    | None | Some (_, 0) -> None
    | Some (targets, hops) ->
      List.iter
        (fun (sn : Summary.node) ->
          let n = Array.length sn.Summary.ids in
          note_pred ~container:sn.Summary.path ~kind:"exists" ~candidates:n ~matches:n)
        targets;
      let ids =
        List.concat_map
          (fun (sn : Summary.node) ->
            Array.to_list sn.Summary.ids |> List.map (fun id -> ancestor_at ctx id hops))
          targets
      in
      let arr = Array.of_list (List.sort_uniq compare ids) in
      Some arr)

let mem_sorted (arr : int array) (x : int) : bool =
  let lo = ref 0 and hi = ref (Array.length arr - 1) in
  let found = ref false in
  while (not !found) && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    if arr.(mid) = x then found := true
    else if arr.(mid) < x then lo := mid + 1
    else hi := mid - 1
  done;
  !found

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

module Sset = Analysis.Sset

(* Join keys: [Kcode] probes compressed codes directly (both sides under
   one source model — the paper's compressed-domain joins); atoms fall
   back to numeric-then-string comparison semantics. *)
type join_key = Kcode of string | Knum of float | Kstr of string

type key_mode =
  | Mode_code of int * Container.t  (* shared model id + a container for re-compression *)
  | Mode_atom

let lookup env v =
  match List.assoc_opt v env with
  | Some b -> b
  | None -> err "unbound variable $%s" v

let rec eval ctx (env : env) (e : Ast.expr) : binding =
  match e with
  | Ast.Literal_string s -> mat [ Str s ]
  | Ast.Literal_number f -> mat [ Num f ]
  | Ast.Var v -> lookup env v
  | Ast.Context -> lookup env "."
  | Ast.Doc _ ->
    let root = ctx.repo.Repository.summary.Summary.root in
    { seq = All_nodes [ root ]; snodes = [ root ] }
  | Ast.Path (src, steps) ->
    let b = eval ctx env src in
    List.fold_left (eval_step ctx env) b steps
  | Ast.Flwor (clauses, ret) -> eval_flwor ctx env clauses ret
  | Ast.If (c, t, f) -> if ebv ctx (eval ctx env c) then eval ctx env t else eval ctx env f
  | Ast.Cmp (op, a, b) ->
    let xs = materialize ctx (eval ctx env a) and ys = materialize ctx (eval ctx env b) in
    let holds = List.exists (fun x -> List.exists (fun y -> cmp_holds ctx op x y) ys) xs in
    note_cmp_obs ctx env op ~a ~b ~xs ~ys ~holds;
    mat [ Bool holds ]
  | Ast.Arith (op, a, b) ->
    let x = singleton_number ctx (eval ctx env a)
    and y = singleton_number ctx (eval ctx env b) in
    let v =
      match op with
      | Ast.Add -> x +. y
      | Ast.Sub -> x -. y
      | Ast.Mul -> x *. y
      | Ast.Div -> x /. y
      | Ast.Mod -> Float.rem x y
    in
    mat [ Num v ]
  | Ast.And (a, b) -> mat [ Bool (ebv ctx (eval ctx env a) && ebv ctx (eval ctx env b)) ]
  | Ast.Or (a, b) -> mat [ Bool (ebv ctx (eval ctx env a) || ebv ctx (eval ctx env b)) ]
  | Ast.Not a -> mat [ Bool (not (ebv ctx (eval ctx env a))) ]
  | Ast.Aggregate (agg, e) -> eval_aggregate ctx env agg e
  | Ast.Contains (a, b) ->
    let hay = String.concat "" (List.map (atom_string ctx) (materialize ctx (eval ctx env a))) in
    let needle =
      String.concat "" (List.map (atom_string ctx) (materialize ctx (eval ctx env b)))
    in
    let contains hay needle =
      let n = String.length needle and h = String.length hay in
      if n = 0 then true
      else begin
        let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
        go 0
      end
    in
    mat [ Bool (contains hay needle) ]
  | Ast.Starts_with (a, b) ->
    let hay = String.concat "" (List.map (atom_string ctx) (materialize ctx (eval ctx env a))) in
    let needle =
      String.concat "" (List.map (atom_string ctx) (materialize ctx (eval ctx env b)))
    in
    mat
      [
        Bool
          (String.length needle <= String.length hay
          && String.sub hay 0 (String.length needle) = needle);
      ]
  | Ast.Ftcontains (a, words) ->
    let hay =
      String.lowercase_ascii
        (String.concat " " (List.map (atom_string ctx) (materialize ctx (eval ctx env a))))
    in
    let contains hay needle =
      let n = String.length needle and h = String.length hay in
      if n = 0 then true
      else begin
        let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
        go 0
      end
    in
    mat [ Bool (List.for_all (fun w -> contains hay w) words) ]
  | Ast.Empty e -> mat [ Bool (count ctx (eval ctx env e) = 0) ]
  | Ast.Exists e -> mat [ Bool (count ctx (eval ctx env e) > 0) ]
  | Ast.Distinct_values e -> eval_distinct ctx env e
  | Ast.String_of e ->
    mat [ Str (String.concat "" (List.map (atom_string ctx) (materialize ctx (eval ctx env e)))) ]
  | Ast.Number_of e -> mat [ Num (singleton_number ctx (eval ctx env e)) ]
  | Ast.Name_of e -> (
    match materialize ctx (eval ctx env e) with
    | Node id :: _ ->
      let n = tag_name ctx (Structure_tree.tag ctx.repo.Repository.tree id) in
      let n = if String.length n > 0 && n.[0] = '@' then String.sub n 1 (String.length n - 1) else n in
      mat [ Str n ]
    | Elem (Xmlkit.Tree.Element (t, _, _)) :: _ -> mat [ Str t ]
    | Att (n, _) :: _ -> mat [ Str n ]
    | _ -> mat [ Str "" ])
  | Ast.Some_satisfies (v, e, cond) ->
    let items = materialize ctx (eval ctx env e) in
    let qctx = quiet ctx in
    mat
      [ Bool (List.exists (fun it -> ebv qctx (eval qctx ((v, mat [ it ]) :: env) cond)) items) ]
  | Ast.Every_satisfies (v, e, cond) ->
    let items = materialize ctx (eval ctx env e) in
    let qctx = quiet ctx in
    mat
      [ Bool (List.for_all (fun it -> ebv qctx (eval qctx ((v, mat [ it ]) :: env) cond)) items) ]
  | Ast.Element (tag, attrs, kids) -> mat [ Elem (construct ctx env tag attrs kids) ]
  | Ast.Sequence es -> mat (List.concat_map (fun e -> materialize ctx (eval ctx env e)) es)

(* --- Path steps --- *)

and eval_step ctx env (b : binding) (st : Ast.step) : binding =
  prof_binding ctx ~kind:"step" (step_label st) @@ fun () ->
  eval_step_inner ctx env b st

and eval_step_inner ctx env (b : binding) (st : Ast.step) : binding =
  let has_pos =
    List.exists
      (function Ast.Pos _ | Ast.Pos_last -> true | Ast.Cond _ -> false)
      st.Ast.predicates
  in
  match st.Ast.axis, st.Ast.test with
  | (Ast.Child | Ast.Descendant), Ast.Text -> (
    match b.seq with
    | All_nodes snodes when st.Ast.predicates = [] && st.Ast.axis = Ast.Child ->
      { seq = All_values snodes; snodes = [] }
    | _ ->
      let items =
        materialize ctx b
        |> List.concat_map (fun it ->
               match it with
               | Node id when id < 0 -> []
               | Node id ->
                 if st.Ast.axis = Ast.Child then node_text_values ctx id
                 else
                   node_text_values ctx id
                   @ List.concat_map (node_text_values ctx)
                       (Structure_tree.descendants ctx.repo.Repository.tree id
                       |> List.filter (fun d ->
                              not (is_attr_code ctx (Structure_tree.tag ctx.repo.Repository.tree d))))
               | Elem t ->
                 List.filter_map
                   (function Xmlkit.Tree.Text s -> Some (Str s) | Xmlkit.Tree.Element _ -> None)
                   (Xmlkit.Tree.children t)
               | Att _ | Cval _ | Str _ | Num _ | Bool _ -> [])
      in
      { seq = Mat items; snodes = [] })
  | Ast.Attribute, Ast.Name n -> (
    let asnodes = advance_snodes ctx b.snodes st in
    match b.seq with
    | All_nodes _ when st.Ast.predicates = [] && asnodes <> [] ->
      { seq = All_values asnodes; snodes = asnodes }
    | _ ->
      let items =
        materialize ctx b
        |> List.concat_map (fun it ->
               match it with
               | Node id when id < 0 -> []
               | Node id -> (
                 match tag_code ctx ("@" ^ n) with
                 | None -> []
                 | Some code ->
                   Structure_tree.children_with_tag ctx.repo.Repository.tree id code
                   |> List.filter_map (attr_node_value ctx)
                   |> List.map (fun v -> Att (n, v)))
               | Elem t -> (
                 match Xmlkit.Tree.attr t n with Some v -> [ Att (n, Str v) ] | None -> [])
               | Att _ | Cval _ | Str _ | Num _ | Bool _ -> [])
      in
      { seq = Mat items; snodes = asnodes })
  | Ast.Attribute, (Ast.Any | Ast.Text) -> err "unsupported attribute step"
  | (Ast.Child | Ast.Descendant), (Ast.Name _ | Ast.Any) -> (
    let new_snodes = advance_snodes ctx b.snodes st in
    match b.seq with
    | All_nodes _ when (not has_pos) && new_snodes <> [] ->
      if st.Ast.predicates = [] then { seq = All_nodes new_snodes; snodes = new_snodes }
      else begin
        let candidates = Summary.merged_ids new_snodes in
        let filtered = apply_cond_predicates ctx env new_snodes candidates st.Ast.predicates in
        { seq = Mat (List.map (fun id -> Node id) (Array.to_list filtered)); snodes = new_snodes }
      end
    | _ ->
      (* navigate per context node, applying predicates per context *)
      let tree = ctx.repo.Repository.tree in
      (* the virtual document node (-1) has node 0 as its only child and
         every node as descendant *)
      let node_children id =
        if id = doc_node_id then [ 0 ] else Structure_tree.child_nodes tree id
      in
      let desc_range id =
        if id = doc_node_id then (0, Structure_tree.node_count tree - 1)
        else (id + 1, Structure_tree.last_descendant tree id)
      in
      let kids_of id =
        match st.Ast.axis, st.Ast.test with
        | Ast.Child, Ast.Name n -> (
          match tag_code ctx n with
          | None -> []
          | Some code ->
            node_children id |> List.filter (fun c -> Structure_tree.tag tree c = code))
        | Ast.Child, Ast.Any ->
          node_children id
          |> List.filter (fun c -> not (is_attr_code ctx (Structure_tree.tag tree c)))
        | Ast.Descendant, Ast.Name n -> (
          match tag_code ctx n with
          | None -> []
          | Some code ->
            let (first, stop) = desc_range id in
            if new_snodes <> [] then begin
              (* slice the summary's id lists to this subtree's pre range *)
              let all = Summary.merged_ids new_snodes in
              let lo =
                let l = ref 0 and h = ref (Array.length all) in
                while !l < !h do
                  let m = (!l + !h) / 2 in
                  if all.(m) < first then l := m + 1 else h := m
                done;
                !l
              in
              let rec take i acc =
                if i < Array.length all && all.(i) <= stop then take (i + 1) (all.(i) :: acc)
                else List.rev acc
              in
              take lo []
            end
            else if id = doc_node_id then
              (* whole-document tag lookup straight off the wavelet tree *)
              (match Structure_tree.node_count tree with
              | 0 -> []
              | _ ->
                let rest = Structure_tree.descendants_with_tag tree 0 code in
                if Structure_tree.tag tree 0 = code then 0 :: rest else rest)
            else
              (* no summary pruning available: wavelet rank/select over
                 the subtree's pre-order interval instead of scanning
                 every descendant *)
              Structure_tree.descendants_with_tag tree id code)
        | Ast.Descendant, Ast.Any ->
          let (first, stop) = desc_range id in
          List.init (stop - first + 1) (fun i -> first + i)
          |> List.filter (fun d -> not (is_attr_code ctx (Structure_tree.tag tree d)))
        | _, Ast.Text | Ast.Attribute, _ -> assert false
      in
      let per_context id =
        let kids = kids_of id in
        List.fold_left
          (fun kids p ->
            match p with
            | Ast.Pos i -> (
              match List.nth_opt kids (i - 1) with Some k -> [ k ] | None -> [])
            | Ast.Pos_last -> (
              match List.rev kids with k :: _ -> [ k ] | [] -> [])
            | Ast.Cond e ->
              let qctx = quiet ctx in
              List.filter
                (fun k -> ebv qctx (eval qctx (("." , mat [ Node k ]) :: env) e))
                kids)
          kids st.Ast.predicates
      in
      let ids =
        materialize ctx b
        |> List.concat_map (fun it ->
               match it with
               | Node id -> per_context id
               | Elem _ -> err "cannot navigate into constructed elements with this axis"
               | Att _ | Cval _ | Str _ | Num _ | Bool _ -> [])
      in
      let ids = if st.Ast.axis = Ast.Descendant then List.sort_uniq compare ids else ids in
      { seq = Mat (List.map (fun id -> Node id) ids); snodes = new_snodes })

(* Filter candidate ids (doc order) by Cond predicates, using container
   pushdown when the predicate shape allows, per-node evaluation
   otherwise. *)
and apply_cond_predicates ctx env snodes (candidates : int array) (preds : Ast.predicate list) :
    int array =
  List.fold_left
    (fun cands p ->
      match p with
      | Ast.Pos _ | Ast.Pos_last -> cands (* handled by the navigation path *)
      | Ast.Cond e -> (
        let per_node cands =
          prof_rows ctx ~kind:"where"
            ("filter [" ^ short_expr e ^ "]")
            ~rows:Array.length
            (fun () ->
              let qctx = quiet ctx in
              Array.to_list cands
              |> List.filter (fun id ->
                     ebv qctx (eval qctx (("." , mat [ Node id ]) :: env) e))
              |> Array.of_list)
        in
        match recognize_pushable e with
        | None -> per_node cands
        | Some pu ->
          prof_rows ctx ~kind:"pushdown"
            ("pushdown [" ^ short_expr e ^ "]")
            ~rows:Array.length
            (fun () ->
              match pushdown_matches ctx snodes pu with
              | Some matched ->
                Array.to_list cands |> List.filter (mem_sorted matched) |> Array.of_list
              | None -> per_node cands)))
    candidates preds

(* --- Aggregates, distinct --- *)

and eval_aggregate ctx env agg e : binding =
  let name =
    match agg with
    | Ast.Count -> "count"
    | Ast.Sum -> "sum"
    | Ast.Avg -> "avg"
    | Ast.Min -> "min"
    | Ast.Max -> "max"
  in
  prof_binding ctx ~kind:"aggregate" (name ^ "()") @@ fun () ->
  let b = eval ctx env e in
  match agg with
  | Ast.Count -> mat [ Num (float_of_int (count ctx b)) ]
  | Ast.Sum ->
    let items = materialize ctx b in
    mat
      [
        Num
          (List.fold_left
             (fun acc it -> acc +. Option.value ~default:0.0 (atom_number ctx it))
             0.0 items);
      ]
  | Ast.Avg -> (
    match materialize ctx b with
    | [] -> mat []
    | items ->
      mat
        [
          Num
            (List.fold_left
               (fun acc it -> acc +. Option.value ~default:0.0 (atom_number ctx it))
               0.0 items
            /. float_of_int (List.length items));
        ])
  | Ast.Min | Ast.Max -> (
    match materialize ctx b with
    | [] -> mat []
    | first :: rest ->
      let better a b =
        let c = compare_items ctx a b in
        match agg with Ast.Min -> c <= 0 | _ -> c >= 0
      in
      let winner = List.fold_left (fun best it -> if better best it then best else it) first rest in
      (* fn:min/max atomize: strip node-ness but keep compressed values
         compressed (they decompress only on output) *)
      let atomized =
        match winner with
        | Att (_, v) -> v
        | Node id -> Str (node_string_value ctx id)
        | it -> it
      in
      mat [ atomized ])

and eval_distinct ctx env e : binding =
  let items = materialize ctx (eval ctx env e) in
  (* Stay compressed when every item shares one eq-capable source model. *)
  let items = List.map (function Att (_, v) -> v | it -> it) items in
  let all_same_model =
    match items with
    | Cval { cont; _ } :: _ ->
      Compress.Codec.supports cont.Container.algorithm `Eq
      && List.for_all
           (function
             | Cval { cont = c; _ } -> c.Container.model_id = cont.Container.model_id
             | _ -> false)
           items
    | _ -> false
  in
  if all_same_model then begin
    let seen = Hashtbl.create 64 in
    mat
      (List.filter
         (fun it ->
           match it with
           | Cval { code; _ } ->
             if Hashtbl.mem seen code then false
             else begin
               Hashtbl.add seen code ();
               true
             end
           | _ -> false)
         items)
  end
  else begin
    let seen = Hashtbl.create 64 in
    mat
      (List.filter_map
         (fun it ->
           let k = atom_string ctx it in
           if Hashtbl.mem seen k then None
           else begin
             Hashtbl.add seen k ();
             Some (Str k)
           end)
         items)
  end

(* --- Element construction --- *)

and construct ctx env tag attrs kids : Xmlkit.Tree.t =
  let eval_attr (n, v) =
    match v with
    | Ast.Attr_string s -> (n, s)
    | Ast.Attr_expr e ->
      ( n,
        String.concat " " (List.map (atom_string ctx) (materialize ctx (eval ctx env e))) )
  in
  let static_attrs = List.map eval_attr attrs in
  let kid_items = List.concat_map (fun k -> materialize ctx (eval ctx env k)) kids in
  (* attribute items in content become attributes of the new element *)
  let dyn_attrs =
    List.filter_map
      (function Att (n, v) -> Some (n, atom_string ctx v) | _ -> None)
      kid_items
  in
  let rec content acc pending = function
    | [] -> List.rev (flush acc pending)
    | Att _ :: rest -> content acc pending rest
    | Node id :: rest -> content (reconstruct ctx id :: flush acc pending) [] rest
    | Elem t :: rest -> content (t :: flush acc pending) [] rest
    | it :: rest -> content acc (atom_string ctx it :: pending) rest
  and flush acc pending =
    match pending with
    | [] -> acc
    | atoms -> Xmlkit.Tree.Text (String.concat " " (List.rev atoms)) :: acc
  in
  Xmlkit.Tree.Element (tag, static_attrs @ dyn_attrs, content [] [] kid_items)

(* --- FLWOR with join detection and decorrelation --- *)

and eval_flwor ctx (base : env) (clauses : Ast.clause list) (ret : Ast.expr) : binding =
  prof_binding ctx ~kind:"flwor" "flwor" @@ fun () ->
  let qctx = quiet ctx in
  let base_vars = Sset.of_list (List.map fst base) in
  let all_conjuncts =
    List.concat_map (function Ast.Where e -> Analysis.conjuncts e | _ -> []) clauses
  in
  let pending = ref all_conjuncts in
  let bound = ref Sset.empty in
  (* tuples are deltas over [base] *)
  let tuples : env list ref = ref [ [] ] in
  (* static provenance env: every clause variable bound so far, carrying
     its summary nodes (and an empty sequence) — what join typing needs
     to resolve paths rooted at {e earlier} FOR/LET variables, which the
     per-tuple deltas can't provide statically *)
  let prov : env ref = ref base in
  let full delta = delta @ base in
  let apply_ready () =
    let (ready, rest) =
      List.partition
        (fun c -> Sset.subset (Analysis.free_vars c) (Sset.union !bound base_vars))
        !pending
    in
    pending := rest;
    List.iter
      (fun c ->
        prof_rows ctx ~kind:"where"
          ("where [" ^ short_expr c ^ "]")
          ~rows:(fun () -> List.length !tuples)
          (fun () ->
            tuples := List.filter (fun d -> ebv qctx (eval qctx (full d) c)) !tuples))
      ready
  in
  let process_clause (clause : Ast.clause) =
    match clause with
    | Ast.For (v, e) ->
      let correlated = Analysis.mentions !bound e in
      prof_rows ctx ~kind:"for"
        ("for $" ^ v ^ if correlated then " (correlated)" else "")
        ~rows:(fun () -> List.length !tuples)
        (fun () ->
          if not correlated then begin
            let source = eval ctx base e in
            match find_join ctx ~var:v ~bound:!bound ~base_vars pending with
            | Some ((jop, left_e, right_e) as join) -> (
              let bplan =
                if jop = Ast.Eq then
                  block_join_plan ctx ~base ~prov:!prov ~var:v ~source
                    ~tuples:!tuples left_e right_e
                else None
              in
              match bplan with
              | Some plan ->
                tuples :=
                  prof_rows ctx ~kind:"block_merge_join"
                    ("block merge join $" ^ v)
                    ~attrs:
                      [
                        ("blocks_probed", string_of_int plan.pl_probed);
                        ("blocks_skipped", string_of_int plan.pl_skipped);
                      ]
                    ~rows:List.length
                    (fun () -> exec_block_join qctx ~var:v plan)
              | None ->
                let jkind, jname =
                  if jop = Ast.Eq then ("hash_join", "hash join $" ^ v)
                  else ("sorted_probe", "sorted probe $" ^ v)
                in
                tuples :=
                  prof_rows ctx ~kind:jkind jname ~rows:List.length (fun () ->
                      exec_join qctx base !tuples ~prov:!prov ~var:v ~source join))
            | None ->
              let items = materialize ctx source in
              tuples :=
                List.concat_map
                  (fun d -> List.map (fun it -> (v, mat [ it ]) :: d) items)
                  !tuples
          end
          else
            tuples :=
              List.concat_map
                (fun d ->
                  let items = materialize qctx (eval qctx (full d) e) in
                  List.map (fun it -> (v, mat [ it ]) :: d) items)
                !tuples);
      prov := (v, { seq = Mat []; snodes = static_snodes ctx !prov e }) :: !prov;
      bound := Sset.add v !bound;
      apply_ready ()
    | Ast.Let (v, e) ->
      let correlated = Analysis.mentions !bound e in
      prof_rows ctx ~kind:"let"
        ("let $" ^ v ^ if correlated then " (correlated)" else "")
        ~rows:(fun () -> List.length !tuples)
        (fun () ->
          if not correlated then begin
            let b = eval ctx base e in
            tuples := List.map (fun d -> (v, b) :: d) !tuples
          end
          else begin
            match decorrelate qctx base ~tuple_vars:!bound e with
            | Some probe ->
              prof_rows ctx ~kind:"decorrelate" ("decorrelate $" ^ v)
                ~rows:(fun () -> List.length !tuples)
                (fun () -> tuples := List.map (fun d -> (v, mat (probe d)) :: d) !tuples)
            | None ->
              tuples := List.map (fun d -> (v, eval qctx (full d) e) :: d) !tuples
          end);
      prov := (v, { seq = Mat []; snodes = static_snodes ctx !prov e }) :: !prov;
      bound := Sset.add v !bound;
      apply_ready ()
    | Ast.Where _ -> apply_ready ()
    | Ast.Order_by keys ->
      prof_rows ctx ~kind:"order_by" "order by"
        ~rows:(fun () -> List.length !tuples)
        (fun () ->
          let decorated =
            List.map
              (fun d ->
                (List.map (fun (k, dir) -> (materialize qctx (eval qctx (full d) k), dir)) keys, d))
              !tuples
          in
          let cmp (ka, _) (kb, _) =
            let rec go = function
              | [] -> 0
              | ((a, dir), (b, _)) :: rest ->
                let c =
                  match a, b with
                  | [], [] -> 0
                  | [], _ -> -1
                  | _, [] -> 1
                  | x :: _, y :: _ -> compare_items qctx x y
                in
                let c = match dir with `Asc -> c | `Desc -> -c in
                if c <> 0 then c else go rest
            in
            go (List.combine ka kb)
          in
          tuples := List.map snd (List.stable_sort cmp decorated))
  in
  List.iter process_clause clauses;
  apply_ready ();
  if !pending <> [] then
    err "where clause references unbound variables: %s"
      (String.concat ", "
         (List.concat_map (fun c -> Sset.elements (Analysis.free_vars c)) !pending));
  mat
    (prof_rows ctx ~kind:"return" "return" ~rows:List.length (fun () ->
         List.concat_map (fun d -> materialize qctx (eval qctx (full d) ret)) !tuples))

(* Find a consumable join conjunct between the new variable [var] and the
   already-bound variables. Removes it from [pending] when found. *)
and find_join ctx ~var ~bound ~base_vars pending =
  ignore ctx;
  if Sset.is_empty bound then None
  else begin
    let right_vars = Sset.singleton var in
    let rec search seen = function
      | [] -> None
      | c :: rest -> (
        match
          Analysis.join_conjunct ~left_vars:bound ~right_vars ~outer:base_vars c
        with
        | Some (op, left_e, right_e) when op <> Ast.Neq ->
          pending := List.rev_append seen rest;
          Some (op, left_e, right_e)
        | _ -> search (c :: seen) rest)
    in
    search [] !pending
  end

and exec_join ctx base tuples ~prov ~var ~source (op, left_e, right_e) =
  let items = materialize ctx source in
  (* Key mode: compressed codes when both sides statically resolve to
     containers sharing one source model; atoms otherwise. The new
     variable's summary provenance comes from its source binding, the
     earlier clause variables' from the FLWOR's provenance env. *)
  let typing_env = (var, { seq = Mat []; snodes = source.snodes }) :: prov in
  let mode = join_key_mode ctx typing_env left_e right_e in
  let keys_of env e = List.concat_map (join_key ctx mode) (materialize ctx (eval ctx env e)) in
  let out =
  match op with
  | Ast.Eq ->
    let table : (join_key, (int * item) list ref) Hashtbl.t = Hashtbl.create 256 in
    List.iteri
      (fun i it ->
        let env = (var, mat [ it ]) :: base in
        List.iter
          (fun k ->
            match Hashtbl.find_opt table k with
            | Some l -> l := (i, it) :: !l
            | None -> Hashtbl.add table k (ref [ (i, it) ]))
          (List.sort_uniq compare (keys_of env right_e)))
      items;
    List.concat_map
      (fun d ->
        let ks = List.sort_uniq compare (keys_of (d @ base) left_e) in
        let matched =
          List.concat_map
            (fun k -> match Hashtbl.find_opt table k with Some l -> !l | None -> [])
            ks
        in
        let matched = List.sort_uniq (fun (i, _) (j, _) -> compare i j) matched in
        List.map (fun (_, it) -> (var, mat [ it ]) :: d) matched)
      tuples
  | Ast.Neq -> assert false
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
    (* sort inner items by key; binary-search the satisfying range *)
    let keyed =
      List.concat_map
        (fun it ->
          List.map (fun k -> (k, it)) (keys_of ((var, mat [ it ]) :: base) right_e))
        items
      |> List.stable_sort (fun (a, _) (b, _) -> compare_join_key a b)
      |> Array.of_list
    in
    let n = Array.length keyed in
    (* first index with key "not less than" wrt probe, by predicate *)
    let first_ge k =
      let lo = ref 0 and hi = ref n in
      while !lo < !hi do
        let m = (!lo + !hi) / 2 in
        if compare_join_key (fst keyed.(m)) k < 0 then lo := m + 1 else hi := m
      done;
      !lo
    in
    let first_gt k =
      let lo = ref 0 and hi = ref n in
      while !lo < !hi do
        let m = (!lo + !hi) / 2 in
        if compare_join_key (fst keyed.(m)) k <= 0 then lo := m + 1 else hi := m
      done;
      !lo
    in
    List.concat_map
      (fun d ->
        let ks = keys_of (d @ base) left_e in
        let matched = Hashtbl.create 16 in
        let order = ref [] in
        let add_range lo hi =
          for i = lo to hi - 1 do
            let (_, it) = keyed.(i) in
            if not (Hashtbl.mem matched i) then begin
              Hashtbl.add matched i ();
              order := (i, it) :: !order
            end
          done
        in
        List.iter
          (fun k ->
            (* left op right: e.g. left < right means right's key > left key *)
            match op with
            | Ast.Lt -> add_range (first_gt k) n
            | Ast.Le -> add_range (first_ge k) n
            | Ast.Gt -> add_range 0 (first_ge k)
            | Ast.Ge -> add_range 0 (first_gt k)
            | Ast.Eq | Ast.Neq -> assert false)
          ks;
        List.sort (fun (i, _) (j, _) -> compare i j) !order
        |> List.map (fun (_, it) -> (var, mat [ it ]) :: d))
      tuples
  in
  (* compressed-domain joins are container-resolved: observe the join
     side for the workload fingerprint (atom joins have no container) *)
  (match mode with
  | Mode_code (_, (c : Container.t)) ->
    note_pred ~container:c.Container.path ~kind:"join" ~candidates:(List.length items)
      ~matches:(List.length out)
  | Mode_atom -> ());
  out

(* --- Block-interval merge join (compressed-domain fast path) --- *)

(* Decide whether the Eq join binding [var] can run as a block merge
   join, and if so build the full plan. Applicability is checked from
   block headers and the summary only — no payload is decoded here:
   - both key expressions are value paths rooted at a single variable,
     the right side at [var] itself, the left side at an already-bound
     variable with known provenance;
   - both sides resolve through {!resolve_value_path} to containers
     sharing one source model whose codec supports [`Eq], so equal
     plaintexts have equal codes and the merge compares compressed;
   - every container is a verified [sorted_run] (the precondition for
     the header interval sweep);
   - every source item is a distinct tree node and every tuple binds
     the left variable to a single node, so matched records map back
     through parent pointers to output positions;
   - the header-overlap estimate ({!Cost_model.prefer_block_join})
     favors the block join over the hash join. *)
and block_join_plan ctx ~base ~prov ~var ~source ~tuples left_e right_e :
    block_plan option =
  if not !block_join_enabled || tuples = [] then None
  else begin
    let typing_env = (var, { seq = Mat []; snodes = source.snodes }) :: prov in
    (* the left side's root variable, needed to map tuples to probe nodes *)
    let left_var =
      match left_e with
      | Ast.Path (Ast.Var v, _) | Ast.Var v -> Some v
      | _ -> None
    in
    match block_join_sides ctx typing_env ~var left_e right_e, left_var with
    | Some (lres, rres), Some lv ->
        begin
          let items = materialize ctx source in
          let item_of_node = Hashtbl.create 256 in
          let nodes_ok = ref true in
          List.iteri
            (fun i it ->
              match it with
              | Node id when not (Hashtbl.mem item_of_node id) ->
                Hashtbl.add item_of_node id i
              | _ -> nodes_ok := false)
            items;
          if not !nodes_ok then None
          else begin
            let tuple_nodes =
              List.map
                (fun d ->
                  match List.assoc_opt lv (d @ base) with
                  | Some { seq = Mat [ Node id ]; _ } -> Some (d, id)
                  | _ -> None)
                tuples
            in
            if List.exists Option.is_none tuple_nodes then None
            else begin
              let pairings =
                List.concat_map
                  (fun (lc, lhops) ->
                    List.map
                      (fun (rc, rhops) ->
                        {
                          bp_lc = lc;
                          bp_lhops = lhops;
                          bp_rc = rc;
                          bp_rhops = rhops;
                          bp_est =
                            Cost_model.block_join_estimate (Container.headers lc)
                              (Container.headers rc);
                        })
                      rres)
                  lres
              in
              let ests = List.map (fun p -> p.bp_est) pairings in
              if not (Cost_model.prefer_block_join ests ~tuples:(List.length tuples))
              then None
              else begin
                let sum f = List.fold_left (fun a e -> a + f e) 0 ests in
                Some
                  {
                    pl_items = Array.of_list items;
                    pl_item_of_node = item_of_node;
                    pl_tuple_nodes = List.filter_map Fun.id tuple_nodes;
                    pl_pairings = pairings;
                    pl_probed = sum (fun e -> e.Cost_model.bj_probed_blocks);
                    pl_skipped = sum (fun e -> e.Cost_model.bj_skipped_blocks);
                    pl_skipped_bytes =
                      sum (fun e ->
                          e.Cost_model.bj_left_skipped_bytes
                          + e.Cost_model.bj_right_skipped_bytes);
                  }
              end
            end
          end
        end
    | _ -> None
  end

(* Execute a decided block merge join: account the skipped blocks,
   batch-decode the probed ones (contiguous runs through the domain
   pool), merge equal codes within each overlapping block pair, map
   matched records to (left node, right item) pairs through parent
   pointers, and emit per tuple in source-item order — exactly the
   output the hash join produces, without decompressing any value. *)
and exec_block_join ctx ~var (plan : block_plan) : env list =
  Xquec_obs.Trace.with_span ~name:"executor.block_merge_join"
    ~attrs:
      [
        ("var", var);
        ("blocks_probed", string_of_int plan.pl_probed);
        ("blocks_skipped", string_of_int plan.pl_skipped);
      ]
  @@ fun () ->
  note_block_join ~probed:plan.pl_probed ~skipped:plan.pl_skipped
    ~skipped_bytes:plan.pl_skipped_bytes;
  if plan.pl_skipped > 0 then
    Buffer_pool.note_skipped ~bytes:plan.pl_skipped_bytes plan.pl_skipped;
  (* per-container heat attribution of the header-pruned blocks (the
     global pool counter above has no container identity) *)
  List.iter
    (fun (p : block_pairing) ->
      let est = p.bp_est in
      let unprobed probe = Array.fold_left (fun acc b -> if b then acc else acc + 1) 0 probe in
      Xquec_obs.Heat.note_skip ~uid:p.bp_lc.Container.uid
        ~blocks:(unprobed est.Cost_model.bj_probe_left)
        ~bytes:est.Cost_model.bj_left_skipped_bytes;
      Xquec_obs.Heat.note_skip ~uid:p.bp_rc.Container.uid
        ~blocks:(unprobed est.Cost_model.bj_probe_right)
        ~bytes:est.Cost_model.bj_right_skipped_bytes)
    plan.pl_pairings;
  (* matched left node -> set of right item indices *)
  let matches : (int, (int, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 256 in
  let add_match lnode idx =
    let set =
      match Hashtbl.find_opt matches lnode with
      | Some s -> s
      | None ->
        let s = Hashtbl.create 8 in
        Hashtbl.add matches lnode s;
        s
    in
    Hashtbl.replace set idx ()
  in
  (* decode the probed blocks of one side, batching each contiguous run
     through the domain pool *)
  let fetch_probed cont (probe : bool array) : Buffer_pool.decoded option array =
    let n = Array.length probe in
    let images = Array.make n None in
    let i = ref 0 in
    while !i < n do
      if probe.(!i) then begin
        let j = ref !i in
        while !j + 1 < n && probe.(!j + 1) do incr j done;
        let ds = Container.fetch_blocks cont ~b0:!i ~b1:!j in
        Array.iteri (fun k d -> images.(!i + k) <- Some d) ds;
        i := !j + 1
      end
      else incr i
    done;
    images
  in
  List.iter
    (fun (p : block_pairing) ->
      let est = p.bp_est in
      let limg = fetch_probed p.bp_lc est.Cost_model.bj_probe_left in
      let rimg = fetch_probed p.bp_rc est.Cost_model.bj_probe_right in
      List.iter
        (fun (bi, bj) ->
          match limg.(bi), rimg.(bj) with
          | Some dl, Some dr ->
            let lcodes = dl.Buffer_pool.codes and rcodes = dr.Buffer_pool.codes in
            let nl = Array.length lcodes and nr = Array.length rcodes in
            let cmps = ref 0 in
            let i = ref 0 and j = ref 0 in
            while !i < nl && !j < nr do
              incr cmps;
              let c = String.compare lcodes.(!i) rcodes.(!j) in
              if c < 0 then incr i
              else if c > 0 then incr j
              else begin
                let code = lcodes.(!i) in
                let ie = ref (!i + 1) in
                while !ie < nl && String.equal lcodes.(!ie) code do incr ie done;
                let je = ref (!j + 1) in
                while !je < nr && String.equal rcodes.(!je) code do incr je done;
                (* right item indices of the equal run, then the cross
                   product against the run's left records *)
                let ridx = ref [] in
                for y = !je - 1 downto !j do
                  let rnode =
                    ancestor_at ctx
                      (record_element ctx p.bp_rc
                         { Container.code; parent = dr.Buffer_pool.parents.(y) })
                      p.bp_rhops
                  in
                  match Hashtbl.find_opt plan.pl_item_of_node rnode with
                  | Some idx -> ridx := idx :: !ridx
                  | None -> ()
                done;
                if !ridx <> [] then
                  for x = !i to !ie - 1 do
                    let lnode =
                      ancestor_at ctx
                        (record_element ctx p.bp_lc
                           { Container.code; parent = dl.Buffer_pool.parents.(x) })
                        p.bp_lhops
                    in
                    List.iter (fun idx -> add_match lnode idx) !ridx
                  done;
                i := !ie;
                j := !je
              end
            done;
            note_cmp ctx ~compressed:true !cmps
          | _ -> assert false)
        est.Cost_model.bj_pairs)
    plan.pl_pairings;
  let out =
    List.concat_map
      (fun (d, lnode) ->
        match Hashtbl.find_opt matches lnode with
        | None -> []
        | Some s ->
          Hashtbl.fold (fun idx () acc -> idx :: acc) s []
          |> List.sort compare
          |> List.map (fun idx -> (var, mat [ plan.pl_items.(idx) ]) :: d))
      plan.pl_tuple_nodes
  in
  let rows = List.length out in
  List.iter
    (fun (p : block_pairing) ->
      note_pred ~container:p.bp_lc.Container.path ~kind:"join"
        ~candidates:(Container.length p.bp_lc) ~matches:rows;
      note_pred ~container:p.bp_rc.Container.path ~kind:"join"
        ~candidates:(Container.length p.bp_rc) ~matches:rows)
    plan.pl_pairings;
  out

(* Decorrelate a nested FLWOR bound in a LET: the Q8/Q9 pattern
     let $a := for $t in ... where <inner> = <outer> return ...
   Builds the inner table once and probes it per outer tuple. *)
and decorrelate ctx base ~tuple_vars (e : Ast.expr) : (env -> item list) option =
  match e with
  | Ast.Flwor (clauses, ret) -> (
    let base_vars = Sset.of_list (List.map fst base) in
    let inner_bound =
      List.fold_left
        (fun acc c ->
          match c with Ast.For (v, _) | Ast.Let (v, _) -> Sset.add v acc | _ -> acc)
        Sset.empty clauses
    in
    (* every clause except where-conjuncts must avoid outer tuple vars *)
    let clean_clauses_ok =
      List.for_all
        (fun c ->
          match c with
          | Ast.For (_, e) | Ast.Let (_, e) -> not (Analysis.mentions tuple_vars e)
          | Ast.Where _ -> true
          | Ast.Order_by keys -> not (List.exists (fun (k, _) -> Analysis.mentions tuple_vars k) keys))
        clauses
      && not (Analysis.mentions tuple_vars ret)
    in
    if not clean_clauses_ok then None
    else begin
      let conjs = List.concat_map (function Ast.Where e -> Analysis.conjuncts e | _ -> []) clauses in
      let correlated, clean = List.partition (Analysis.mentions tuple_vars) conjs in
      match correlated with
      | [ c ] -> (
        match
          Analysis.join_conjunct ~left_vars:tuple_vars ~right_vars:inner_bound
            ~outer:base_vars c
        with
        | Some (op, outer_e, inner_e) when op <> Ast.Neq ->
          (* rebuild inner clause list without any Where, then re-add the
             clean conjuncts as a single Where before the end *)
          let structural =
            List.filter (function Ast.Where _ -> false | _ -> true) clauses
          in
          let rebuilt =
            match Analysis.conjoin clean with
            | None -> structural
            | Some w -> structural @ [ Ast.Where w ]
          in
          (* evaluate inner tuples once, in the base env *)
          let inner_tuples = flwor_tuples ctx base rebuilt in
          (* static env binding the inner variables' summary provenance,
             so the join keys can be typed to compressed codes *)
          let typing_env =
            List.fold_left
              (fun env c ->
                match c with
                | Ast.For (v, e) | Ast.Let (v, e) ->
                  (v, { seq = Mat []; snodes = static_snodes ctx env e }) :: env
                | Ast.Where _ | Ast.Order_by _ -> env)
              base structural
          in
          let mode = join_key_mode ctx typing_env outer_e inner_e in
          let keys_of env e =
            List.concat_map (join_key ctx mode) (materialize ctx (eval ctx env e))
          in
          (match op with
          | Ast.Eq ->
            let table : (join_key, (int * env) list ref) Hashtbl.t = Hashtbl.create 256 in
            List.iteri
              (fun i d ->
                List.iter
                  (fun k ->
                    match Hashtbl.find_opt table k with
                    | Some l -> l := (i, d) :: !l
                    | None -> Hashtbl.add table k (ref [ (i, d) ]))
                  (List.sort_uniq compare (keys_of (d @ base) inner_e)))
              inner_tuples;
            Some
              (fun outer_delta ->
                let ks = List.sort_uniq compare (keys_of (outer_delta @ base) outer_e) in
                let matched =
                  List.concat_map
                    (fun k -> match Hashtbl.find_opt table k with Some l -> !l | None -> [])
                    ks
                  |> List.sort_uniq (fun (i, _) (j, _) -> compare i j)
                in
                List.concat_map
                  (fun (_, d) ->
                    materialize ctx (eval ctx (d @ outer_delta @ base) ret))
                  matched)
          | _ ->
            (* inequality correlation: sorted probe array *)
            let keyed =
              List.concat_map
                (fun d -> List.map (fun k -> (k, d)) (keys_of (d @ base) inner_e))
                inner_tuples
              |> List.stable_sort (fun (a, _) (b, _) -> compare_join_key a b)
              |> Array.of_list
            in
            let n = Array.length keyed in
            let first_ge k =
              let lo = ref 0 and hi = ref n in
              while !lo < !hi do
                let m = (!lo + !hi) / 2 in
                if compare_join_key (fst keyed.(m)) k < 0 then lo := m + 1 else hi := m
              done;
              !lo
            in
            let first_gt k =
              let lo = ref 0 and hi = ref n in
              while !lo < !hi do
                let m = (!lo + !hi) / 2 in
                if compare_join_key (fst keyed.(m)) k <= 0 then lo := m + 1 else hi := m
              done;
              !lo
            in
            Some
              (fun outer_delta ->
                let ks = keys_of (outer_delta @ base) outer_e in
                let matched = Hashtbl.create 16 in
                let order = ref [] in
                let add_range lo hi =
                  for i = lo to hi - 1 do
                    if not (Hashtbl.mem matched i) then begin
                      Hashtbl.add matched i ();
                      order := (i, snd keyed.(i)) :: !order
                    end
                  done
                in
                List.iter
                  (fun k ->
                    match op with
                    | Ast.Lt -> add_range (first_gt k) n
                    | Ast.Le -> add_range (first_ge k) n
                    | Ast.Gt -> add_range 0 (first_ge k)
                    | Ast.Ge -> add_range 0 (first_gt k)
                    | Ast.Eq | Ast.Neq -> assert false)
                  ks;
                List.sort (fun (i, _) (j, _) -> compare i j) !order
                |> List.concat_map (fun (_, d) ->
                       materialize ctx (eval ctx (d @ outer_delta @ base) ret))))
        | _ -> None)
      | _ -> None
    end)
  | _ -> None

(* Evaluate a FLWOR's clause pipeline and return the binding tuples
   (deltas), without evaluating a return expression. *)
and flwor_tuples ctx (base : env) (clauses : Ast.clause list) : env list =
  (* Reuse eval_flwor by returning a marker? Simpler: inline a light
     version without join detection (the rebuilt inner pipeline is already
     join-free in the common patterns, and correctness is what matters). *)
  let tuples = ref [ [] ] in
  List.iter
    (fun clause ->
      match clause with
      | Ast.For (v, e) ->
        tuples :=
          List.concat_map
            (fun d ->
              let items = materialize ctx (eval ctx (d @ base) e) in
              List.map (fun it -> (v, mat [ it ]) :: d) items)
            !tuples
      | Ast.Let (v, e) ->
        tuples := List.map (fun d -> (v, eval ctx (d @ base) e) :: d) !tuples
      | Ast.Where e ->
        tuples := List.filter (fun d -> ebv ctx (eval ctx (d @ base) e)) !tuples
      | Ast.Order_by _ -> ())
    clauses;
  !tuples

(* --- Join keys --- *)

and join_key_mode ctx base left_e right_e : key_mode =
  let conts_of e = static_value_containers ctx base e in
  match conts_of left_e, conts_of right_e with
  | Some (l :: ls), Some (r :: rs) ->
    let mid = l.Container.model_id in
    if
      r.Container.model_id = mid
      && List.for_all (fun (c : Container.t) -> c.Container.model_id = mid) (ls @ rs)
      && Compress.Codec.supports l.Container.algorithm `Eq
    then Mode_code (mid, l)
    else Mode_atom
  | _ -> Mode_atom

(* Static summary-node resolution for an expression (no data access):
   used to type join keys for variables that are only bound inside a
   nested FLWOR being decorrelated. *)
and static_snodes ctx (env : env) (e : Ast.expr) : Summary.node list =
  match e with
  | Ast.Doc _ -> [ ctx.repo.Repository.summary.Summary.root ]
  | Ast.Var v -> (match List.assoc_opt v env with Some b -> b.snodes | None -> [])
  | Ast.Context -> (match List.assoc_opt "." env with Some b -> b.snodes | None -> [])
  | Ast.Path (src, steps) ->
    List.fold_left
      (fun sn (st : Ast.step) ->
        match st.Ast.test with Ast.Text -> sn | _ -> advance_snodes ctx sn st)
      (static_snodes ctx env src) steps
  | Ast.Distinct_values e -> static_snodes ctx env e
  | _ -> []

and static_value_containers ctx env (e : Ast.expr) : Container.t list option =
  match e with
  | Ast.Path (src, steps) -> (
    let snodes0 =
      match src with
      | Ast.Doc _ -> Some [ ctx.repo.Repository.summary.Summary.root ]
      | Ast.Var v -> (
        match List.assoc_opt v env with Some b -> Some b.snodes | None -> None)
      | Ast.Context -> (
        match List.assoc_opt "." env with Some b -> Some b.snodes | None -> None)
      | _ -> None
    in
    match snodes0 with
    | None | Some [] -> None
    | Some snodes ->
      Option.map (List.map fst) (resolve_value_path ctx snodes steps))
  | _ -> None

(* Predicate-mix observation for a general comparison: the FLWOR
   [where] path evaluates comparisons tuple-at-a-time and never reaches
   the pushdown filters, so attribute the comparison to the container
   its value side reads — statically when a side is a resolvable value
   path, else from a compressed operand in the materialized sequences —
   with one candidate per evaluation and whether it held. *)
and note_cmp_obs ctx env (op : Ast.cmp_op) ~(a : Ast.expr) ~(b : Ast.expr) ~(xs : item list)
    ~(ys : item list) ~(holds : bool) : unit =
  let kind = match op with Ast.Eq | Ast.Neq -> "eq" | _ -> "range" in
  let matches = if holds then 1 else 0 in
  let note (c : Container.t) =
    note_pred ~container:c.Container.path ~kind ~candidates:1 ~matches
  in
  let static e =
    match static_value_containers ctx env e with Some (_ :: _ as cs) -> Some cs | _ -> None
  in
  (* bare-element comparisons fail the exact resolution (atomization may
     span several text nodes) but still read the immediate-text
     containers of the path's summary nodes — good enough to attribute *)
  let loose e =
    match static_snodes ctx env e with
    | [] -> None
    | snodes -> (
      match
        List.filter_map
          (fun (sn : Summary.node) -> Option.map (container ctx) sn.Summary.text_container)
          snodes
      with
      | [] -> None
      | cs -> Some cs)
  in
  let from_items items =
    List.find_map
      (function
        | Cval { cont; _ } | Att (_, Cval { cont; _ }) -> Some [ cont ]
        | Node id when id >= 0 -> (
          (* an element operand atomizes its text: attribute the
             comparison to the node's own immediate-text container *)
          match Structure_tree.value_pointers ctx.repo.Repository.tree id with
          | [||] -> None
          | values ->
            let cid, _ = values.(0) in
            Some [ container ctx cid ])
        | _ -> None)
      items
  in
  match static a, static b with
  | Some cs, _ | None, Some cs -> List.iter note cs
  | None, None -> (
    match loose a, loose b with
    | Some cs, _ | None, Some cs -> List.iter note cs
    | None, None -> (
      match from_items xs, from_items ys with
      | Some cs, _ | None, Some cs -> List.iter note cs
      | None, None -> ()))

and join_key ctx (mode : key_mode) (it : item) : join_key list =
  let it = match it with Att (_, v) -> v | it -> it in
  match mode, it with
  | Mode_code (mid, _), Cval { cont; code } when cont.Container.model_id = mid ->
    [ Kcode code ]
  | Mode_code (_, shared), _ ->
    (* same model, different physical item: re-compress the atom *)
    [ Kcode (Container.compress_constant shared (atom_string ctx it)) ]
  | Mode_atom, it -> (
    match atom_number ctx it with
    | Some f -> [ Knum f ]
    | None -> [ Kstr (atom_string ctx it) ])

and compare_join_key (a : join_key) (b : join_key) : int =
  match a, b with
  | Kcode x, Kcode y -> String.compare x y
  | Knum x, Knum y -> compare x y
  | Kstr x, Kstr y -> String.compare x y
  | Kcode _, _ -> -1
  | _, Kcode _ -> 1
  | Knum _, Kstr _ -> -1
  | Kstr _, Knum _ -> 1

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let run (repo : Repository.t) (query : Ast.expr) : item list =
  Xquec_obs.Trace.with_span ~name:"executor.run" @@ fun () ->
  reset_predicate_observations ();
  let ctx = mk_ctx repo in
  materialize ctx (eval ctx [] query)

let run_string (repo : Repository.t) (query : string) : item list =
  run repo (Xquery.Parser.parse query)

(** Evaluate with an attached EXPLAIN profile: returns the results and
    the root of the annotated operator tree (wall time, cardinalities,
    compressed vs. decompress-then-compare predicate counts). Works
    whether or not global telemetry is enabled. *)
let run_profiled (repo : Repository.t) (query : Ast.expr) :
    item list * Xquec_obs.Explain.node =
  let prof = Xquec_obs.Explain.create (short_expr ~limit:72 query) in
  reset_predicate_observations ();
  let ctx = { repo; prof = Some prof; prof_ops = true } in
  let t0 = Xquec_obs.Trace.now_us () in
  let items =
    with_cache_delta prof.Xquec_obs.Explain.root (fun () ->
        Xquec_obs.Trace.with_span ~name:"executor.run" (fun () ->
            materialize ctx (eval ctx [] query)))
  in
  let wall_us = Xquec_obs.Trace.now_us () -. t0 in
  (items, Xquec_obs.Explain.finish prof ~wall_us ~rows:(List.length items))

(** Serialize results, decompressing — the Decompress + XMLSerialize tail
    every plan ends with (§4). *)
let serialize (repo : Repository.t) (items : item list) : string =
  let ctx = mk_ctx repo in
  let buf = Buffer.create 256 in
  List.iteri
    (fun i it ->
      if i > 0 then Buffer.add_char buf '\n';
      match it with
      | Node id -> Xmlkit.Printer.add_node buf (reconstruct ctx id)
      | Elem t -> Xmlkit.Printer.add_node buf t
      | Att (n, v) ->
        Buffer.add_string buf (Printf.sprintf "%s=\"%s\"" n (atom_string ctx v))
      | other -> Buffer.add_string buf (atom_string ctx other))
    items;
  Buffer.contents buf
