(* Loader / compressor (§1.1 module 1): parses an XML document in one SAX
   pass and shreds it into the compressed repository structures — name
   dictionary, structure tree, per-path value containers and the structure
   summary. Projection is "prepared in advance" (§2.3): every value lands
   in the container of its root-to-leaf path.

   Containers are typed <type, pe>: values that all parse as canonical
   numbers get the order-preserving numeric codec; other containers
   default to ALM, the paper's no-workload choice for strings (§2.1). The
   workload-driven partitioner may later re-assign algorithms and merge
   source models. *)

open Storage

type options = {
  default_string_algorithm : Compress.Codec.algorithm;
  detect_numeric : bool;
  spill_directory : string option;
      (** when set, container values are staged in per-container spill
          files on secondary storage during parsing instead of being
          accumulated in memory — the paper's §6 plan for documents
          larger than memory (e.g. SwissProt) *)
}

let default_options =
  { default_string_algorithm = Compress.Codec.Alm_alg; detect_numeric = true;
    spill_directory = None }

(* Per-container accumulator while parsing: in memory, or staged on
   secondary storage. *)
type staging =
  | In_memory of (string * int * int * int) list ref
      (* value, record parent id, owner node id, owner slot — reversed *)
  | Spilled of string * out_channel (* file path + append channel *)

type pending = {
  p_path : string;
  p_kind : Container.kind;
  p_id : int;
  p_staging : staging;
  mutable p_count : int;
}

let stage_record (st : staging) (value, parent, owner, slot) =
  match st with
  | In_memory l -> l := (value, parent, owner, slot) :: !l
  | Spilled (_, oc) ->
    let buf = Buffer.create (String.length value + 16) in
    Compress.Rle.add_varint buf (String.length value);
    Buffer.add_string buf value;
    Compress.Rle.add_varint buf parent;
    Compress.Rle.add_varint buf owner;
    Compress.Rle.add_varint buf slot;
    Buffer.output_buffer oc buf

(* Entries in arrival order; consumes (and deletes) a spill file. *)
let staged_entries (st : staging) : (string * int * int * int) list =
  match st with
  | In_memory l -> List.rev !l
  | Spilled (path, oc) ->
    close_out oc;
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let data = really_input_string ic n in
    close_in ic;
    Sys.remove path;
    let entries = ref [] in
    let pos = ref 0 in
    while !pos < n do
      let (len, p) = Compress.Rle.read_varint data !pos in
      let value = String.sub data p len in
      let (parent, p) = Compress.Rle.read_varint data (p + len) in
      let (owner, p) = Compress.Rle.read_varint data p in
      let (slot, p) = Compress.Rle.read_varint data p in
      entries := (value, parent, owner, slot) :: !entries;
      pos := p
    done;
    List.rev !entries

type frame = {
  f_id : int;
  f_snode : Summary.node;
  f_level : int;
  mutable f_rev_children : int list; (* >= 0 node id; < 0 text marker -(slot+1) *)
  mutable f_nvalues : int;           (* slots handed out so far *)
}

let load ?(options = default_options) ~name (xml : string) : Repository.t =
  Xquec_obs.Trace.with_span ~name:"loader.load"
    ~attrs:[ ("document", name); ("bytes", string_of_int (String.length xml)) ]
  @@ fun () ->
  Xquec_obs.Metrics.incr "loader.documents";
  let dict = Name_dict.create () in
  let summary = Summary.create () in
  let builder = Structure_tree.builder () in
  let pendings : (string, pending) Hashtbl.t = Hashtbl.create 64 in
  let pending_order = ref [] in
  let next_container = ref 0 in
  let container_for ~path ~kind ~snode_for_text =
    match Hashtbl.find_opt pendings path with
    | Some p -> p
    | None ->
      let staging =
        match options.spill_directory with
        | None -> In_memory (ref [])
        | Some dir ->
          let file = Filename.temp_file ~temp_dir:dir "xquec_container" ".spill" in
          Spilled (file, open_out_bin file)
      in
      let p =
        { p_path = path; p_kind = kind; p_id = !next_container; p_staging = staging;
          p_count = 0 }
      in
      incr next_container;
      Hashtbl.add pendings path p;
      pending_order := p :: !pending_order;
      (match snode_for_text with
      | Some (sn : Summary.node) -> sn.Summary.text_container <- Some p.p_id
      | None -> ());
      p
  in
  let stack : frame list ref = ref [] in
  (* Child lists and value-pointer lists per node, collected as we go. *)
  let rev_children_tbl : (int, int list) Hashtbl.t = Hashtbl.create 1024 in
  let record_value ~(pending : pending) ~value ~record_parent ~owner =
    let slot = owner.f_nvalues in
    owner.f_nvalues <- slot + 1;
    stage_record pending.p_staging (value, record_parent, owner.f_id, slot);
    let seq = pending.p_count in
    pending.p_count <- seq + 1;
    (slot, seq)
  in
  (* For back-filling sorted record indexes we remember, per owner node,
     the (container, seq) in arrival order; seq is resolved to the sorted
     index after containers are built. *)
  let pending_ptrs : (int, (int * int) list) Hashtbl.t = Hashtbl.create 1024 in
  let add_ptr owner_id cont seq =
    let prev = Option.value ~default:[] (Hashtbl.find_opt pending_ptrs owner_id) in
    Hashtbl.replace pending_ptrs owner_id ((cont, seq) :: prev)
  in
  let handle ev =
    match ev with
    | Xmlkit.Sax.Start_element (tag, attributes) ->
      let tag_code = Name_dict.intern dict tag in
      let (parent_id, parent_snode, level, parent_frame) =
        match !stack with
        | [] -> (-1, summary.Summary.root, 0, None)
        | fr :: _ -> (fr.f_id, fr.f_snode, fr.f_level + 1, Some fr)
      in
      let snode = Summary.child_or_create parent_snode ~tag:tag_code ~name:tag in
      let id = Structure_tree.open_node builder ~tag:tag_code ~parent:parent_id ~level in
      Summary.add_id snode id;
      (match parent_frame with
      | Some fr -> fr.f_rev_children <- id :: fr.f_rev_children
      | None -> ());
      let frame =
        { f_id = id; f_snode = snode; f_level = level; f_rev_children = []; f_nvalues = 0 }
      in
      (* Attributes: an attribute is a node (tagged "@name") whose single
         value goes to the container of path pe/@name. *)
      List.iter
        (fun (aname, avalue) ->
          let atag = "@" ^ aname in
          let atag_code = Name_dict.intern dict atag in
          let asnode = Summary.child_or_create snode ~tag:atag_code ~name:atag in
          let attr_id =
            Structure_tree.open_node builder ~tag:atag_code ~parent:id ~level:(level + 1)
          in
          Summary.add_id asnode attr_id;
          frame.f_rev_children <- attr_id :: frame.f_rev_children;
          let pending =
            container_for ~path:asnode.Summary.path ~kind:Container.Attribute
              ~snode_for_text:None
          in
          (match asnode.Summary.text_container with
          | None -> asnode.Summary.text_container <- Some pending.p_id
          | Some _ -> ());
          (* The attribute node owns the value; the record's parent pointer
             is the attribute node itself (its parent is the element). *)
          let attr_frame =
            { f_id = attr_id; f_snode = asnode; f_level = level + 1;
              f_rev_children = []; f_nvalues = 0 }
          in
          let (_slot, seq) =
            record_value ~pending ~value:avalue ~record_parent:attr_id ~owner:attr_frame
          in
          add_ptr attr_id pending.p_id seq;
          Hashtbl.replace rev_children_tbl attr_id [];
          Structure_tree.close_node builder ~id:attr_id)
        attributes;
      stack := frame :: !stack
    | Xmlkit.Sax.End_element _ -> (
      match !stack with
      | fr :: rest ->
        Hashtbl.replace rev_children_tbl fr.f_id fr.f_rev_children;
        Structure_tree.close_node builder ~id:fr.f_id;
        stack := rest
      | [] -> assert false)
    | Xmlkit.Sax.Characters text -> (
      match !stack with
      | fr :: _ ->
        let pending =
          container_for
            ~path:(fr.f_snode.Summary.path ^ "/#text")
            ~kind:Container.Text ~snode_for_text:(Some fr.f_snode)
        in
        let (slot, seq) =
          record_value ~pending ~value:text ~record_parent:fr.f_id ~owner:fr
        in
        fr.f_rev_children <- -(slot + 1) :: fr.f_rev_children;
        add_ptr fr.f_id pending.p_id seq
      | [] -> assert false)
  in
  Xquec_obs.Trace.with_span ~name:"loader.parse" (fun () ->
      Xquec_obs.Metrics.time_ms "loader.parse_ms" (fun () ->
          Xmlkit.Sax.parse_string ~f:handle xml));
  Summary.seal_t summary;
  (* Build containers: choose the codec, compress, sort, and remember the
     arrival-order -> sorted-index mapping for pointer back-fill. *)
  let pending_list = List.rev !pending_order in
  let seq_maps : (int, int array) Hashtbl.t = Hashtbl.create 64 in
  let choose_algorithm values =
    if options.detect_numeric then begin
      match Compress.Ipack.train values with
      | _ -> Compress.Codec.Numeric_alg
      | exception Compress.Ipack.Unsupported _ -> options.default_string_algorithm
    end
    else options.default_string_algorithm
  in
  let containers =
    Xquec_obs.Trace.with_span ~name:"loader.build_containers"
      ~attrs:[ ("containers", string_of_int (List.length pending_list)) ]
    @@ fun () ->
    Xquec_obs.Metrics.time_ms "loader.build_containers_ms" @@ fun () ->
    List.map
      (fun p ->
        let entries = staged_entries p.p_staging in
        let values = List.map (fun (v, _, _, _) -> v) entries in
        let algorithm = choose_algorithm values in
        let model = Compress.Codec.train algorithm values in
        let records =
          List.mapi
            (fun seq (v, record_parent, _, _) ->
              ( { Container.code = Compress.Codec.compress model v; parent = record_parent },
                seq,
                String.length v ))
            entries
          |> Array.of_list
        in
        Array.sort
          (fun ((a : Container.record), sa, _) (b, sb, _) ->
            compare (a.Container.code, a.Container.parent, sa) (b.Container.code, b.Container.parent, sb))
          records;
        let seq_to_idx = Array.make (Array.length records) 0 in
        Array.iteri (fun idx (_, seq, _) -> seq_to_idx.(seq) <- idx) records;
        Hashtbl.add seq_maps p.p_id seq_to_idx;
        let plain_bytes = List.fold_left (fun acc v -> acc + String.length v) 0 values in
        let cont =
          Container.of_sorted_records
            ~plain_sizes:(Array.map (fun (_, _, len) -> len) records)
            ~id:p.p_id ~path:p.p_path ~kind:p.p_kind ~algorithm ~model ~model_id:p.p_id
            ~plain_bytes
            (Array.map (fun (r, _, _) -> r) records)
        in
        if Xquec_obs.is_enabled () then
          Xquec_obs.Metrics.incr ~by:(Container.length cont) "loader.values";
        cont)
      pending_list
    |> Array.of_list
  in
  (* Assemble per-node child lists and resolved value pointers. *)
  let n = Structure_tree.next_id builder in
  let rev_children = Array.make n [] in
  let rev_values = Array.make n [] in
  Hashtbl.iter (fun id kids -> if id < n then rev_children.(id) <- kids) rev_children_tbl;
  Hashtbl.iter
    (fun id ptrs ->
      if id < n then
        rev_values.(id) <-
          List.map
            (fun (cont, seq) -> (cont, (Hashtbl.find seq_maps cont).(seq)))
            ptrs)
    pending_ptrs;
  let tree = Structure_tree.finish builder ~rev_children ~rev_values in
  if Xquec_obs.is_enabled () then begin
    Xquec_obs.Metrics.set_gauge "loader.containers" (float_of_int (Array.length containers));
    Xquec_obs.Metrics.set_gauge "loader.tree_nodes"
      (float_of_int (Structure_tree.node_count tree))
  end;
  {
    Repository.dict;
    tree;
    containers;
    summary;
    source_name = name;
    original_size = String.length xml;
  }

let load_document ?options ~name (doc : Xmlkit.Tree.document) : Repository.t =
  load ?options ~name (Xmlkit.Printer.to_string doc)
