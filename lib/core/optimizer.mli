(** Strategy analysis ("EXPLAIN"): reports, without touching data, the
    evaluation strategy the executor will choose — summary accesses,
    compressed-domain pushdowns, join methods, decorrelations. *)

open Storage

(** How one predicate will be evaluated: its text, the containers it
    touches, and whether the comparison runs on compressed codes. *)
type predicate_plan = {
  predicate : string;
  containers : string list;
  compressed_domain : bool;
}

(** One strategy decision in the report, in evaluation order. *)
type decision =
  | Summary_path of { path : string; snodes : int }
  | Navigation of { path : string }
  | Pushdown of predicate_plan
  | Scan_filter of predicate_plan
  | Hash_join of { variable : string; left : string; right : string; on_codes : bool }
  | Block_join of {
      variable : string;
      left : string;
      right : string;
      blocks_probed : int;
      blocks_skipped : int;
      skip_fraction : float;
    }
      (** header-driven block merge join: bound intervals from the two
          sides' block headers were intersected statically;
          [blocks_skipped] blocks never need decoding *)
  | Sorted_probe of { variable : string; left : string; right : string; on_codes : bool }
  | Decorrelate of { variable : string; op : string; on_codes : bool }
  | Correlated_loop of { variable : string }

(** Render one decision as a human-readable line. *)
val pp_decision : Format.formatter -> decision -> unit

(** Predict the executor's strategy for a parsed query (no data access). *)
val explain : Repository.t -> Xquery.Ast.expr -> decision list

(** {!explain} on a query string, pretty-printed one decision per line. *)
val explain_string : Repository.t -> string -> string

(** Render the EXPLAIN ANALYZE report for an already-profiled plan
    (strategy decisions plus the annotated physical plan). Lets callers
    that obtained the profile elsewhere — e.g. the query-logged
    evaluation path — reuse the report format. *)
val render_profiled : Repository.t -> string -> Xquec_obs.Explain.node -> string

(** EXPLAIN ANALYZE: evaluate the query with an attached profile and
    render the strategy decisions plus the annotated physical plan
    (per-operator wall time, cardinalities, compressed-domain vs.
    decompress-then-compare predicate counts). *)
val explain_profiled : Repository.t -> string -> string
