(* The `xquec serve` request handler: query evaluation over one loaded
   repository, mounted as the [extra] routes of an
   [Xquec_obs.Expo] server (which contributes /metrics and /healthz).

   Routes:
     POST /query          body = XQuery text
     GET  /query?q=...    percent-encoded XQuery text
     GET  /stats          full metrics registry as JSON

   Queries run sequentially on the server's accept domain — the engine
   evaluates one query at a time (the storage layer parallelizes block
   decode underneath via the Domain_pool), which matches the Expo
   server's one-connection-at-a-time model. Each query bumps
   "serve.queries", records "serve.query_ms", and appends a query-log
   record when a log file is configured. *)

open Xquec_obs

(* Sync the storage-layer atomics into the metrics registry so a
   /metrics scrape always carries the bufferpool.* / decodepool.*
   series, even for counts accumulated while telemetry was off or
   maintained outside the registry (latch waits, queue depth). *)
let publish_pool_metrics () : unit =
  let s = Storage.Buffer_pool.snapshot () in
  Metrics.set_counter "bufferpool.hits" s.Storage.Buffer_pool.s_hits;
  Metrics.set_counter "bufferpool.misses" s.Storage.Buffer_pool.s_misses;
  Metrics.set_counter "bufferpool.latch_waits" s.Storage.Buffer_pool.s_latch_waits;
  Metrics.set_counter "bufferpool.evictions" s.Storage.Buffer_pool.s_evictions;
  Metrics.set_counter "bufferpool.decoded_bytes" s.Storage.Buffer_pool.s_decoded_bytes;
  Metrics.set_counter "bufferpool.scan_inserts" s.Storage.Buffer_pool.s_scan_inserts;
  Metrics.set_counter "bufferpool.payload_bytes" s.Storage.Buffer_pool.s_payload_bytes;
  Metrics.set_counter "bufferpool.skipped_bytes" s.Storage.Buffer_pool.s_skipped_bytes;
  Metrics.set_gauge "bufferpool.resident_bytes"
    (float_of_int s.Storage.Buffer_pool.s_resident_bytes);
  Metrics.set_gauge "bufferpool.resident_blocks"
    (float_of_int s.Storage.Buffer_pool.s_resident_blocks);
  let d = Storage.Domain_pool.snapshot () in
  Metrics.set_gauge "decodepool.domains" (float_of_int d.Storage.Domain_pool.p_domains);
  Metrics.set_counter "decodepool.batches" d.Storage.Domain_pool.p_batches;
  Metrics.set_counter "decodepool.tasks" d.Storage.Domain_pool.p_tasks;
  Metrics.set_counter "decodepool.inline_tasks" d.Storage.Domain_pool.p_inline;
  Metrics.set_gauge "decodepool.max_queue_depth"
    (float_of_int d.Storage.Domain_pool.p_max_queue_depth);
  let j = Executor.join_stats () in
  Metrics.set_counter "executor.join.block_joins" j.Executor.j_block_joins;
  Metrics.set_counter "executor.join.blocks_probed" j.Executor.j_blocks_probed;
  Metrics.set_counter "executor.join.blocks_skipped" j.Executor.j_blocks_skipped;
  Metrics.set_counter "executor.join.skipped_bytes" j.Executor.j_skipped_bytes

let run_query (engine : Engine.t) (text : string) : Expo.response =
  let text = String.trim text in
  if text = "" then Expo.respond 400 "text/plain; charset=utf-8" "empty query\n"
  else begin
    match
      Metrics.time_ms "serve.query_ms" (fun () ->
          Engine.query_serialized_logged engine text)
    with
    | out, _prof ->
      Metrics.incr "serve.queries";
      Expo.respond 200 "text/plain; charset=utf-8" (out ^ "\n")
    | exception e ->
      Metrics.incr "serve.query_errors";
      Expo.respond 400 "text/plain; charset=utf-8" (Printexc.to_string e ^ "\n")
  end

(** The [extra] handler for {!Xquec_obs.Expo.start}: query evaluation
    routes over [engine] ([None] falls through to the built-in
    /metrics and /healthz). *)
let handler (engine : Engine.t) : Expo.handler =
 fun req ->
  match (req.Expo.meth, req.Expo.path) with
  | "POST", "/query" -> Some (run_query engine req.Expo.body)
  | "GET", "/query" -> (
    match List.assoc_opt "q" req.Expo.query with
    | Some q -> Some (run_query engine q)
    | None ->
      Some (Expo.respond 400 "text/plain; charset=utf-8" "missing query parameter q\n"))
  | "GET", "/stats" ->
    publish_pool_metrics ();
    Some (Expo.respond 200 "application/json; charset=utf-8" (Metrics.dump_json ()))
  | _ -> None
