(* The `xquec serve` request handler: query evaluation over one loaded
   repository, mounted as the [extra] routes of an
   [Xquec_obs.Expo] server (which contributes /metrics and /healthz).

   Routes:
     POST /query          body = XQuery text
     GET  /query?q=...    percent-encoded XQuery text
     GET  /stats          full metrics registry as JSON
     GET  /heat           container heat snapshot as JSON
     GET  /watch          watchdog snapshot: fingerprint, drift, advice
     GET  /alerts         alert rules, active set, recent transitions
     GET  /compact        background compactor status + recent results
     GET  /healthz        readiness JSON (intercepts the Expo builtin)

   Queries run on whichever Expo domain handles the connection — the
   accept domain in the sequential configuration, a worker-pool domain
   when `--serve-workers` fans connections out — so everything in this
   module is written for concurrent callers: the SLO window takes a
   mutex, the plan cache is the mutex-guarded Plan_cache, and the
   per-query budget is armed in Domain.DLS on the evaluating domain
   (the storage layer parallelizes block decode underneath via the
   Domain_pool either way). Each query bumps "serve.queries", records
   "serve.query_ms", consults the plan cache, and appends a query-log
   record when a log file is configured. *)

open Xquec_obs

(* --- rolling SLO window ---------------------------------------------- *)

(* Request latency / error rate over the last [window_buckets] seconds:
   a ring of one-second buckets, each holding a count, an error count,
   min/max and a log-scale histogram reusing the Metrics bucket layout.
   A bucket is lazily re-zeroed when the ring wraps onto a new epoch
   second. The cumulative "serve.query_ms" histogram answers
   "since startup"; this ring answers "right now" — p50/p95/p99 and
   error rate over the last minute — without the scraper having to
   diff consecutive snapshots.

   Concurrent writers: with a worker pool, several domains observe into
   the ring (and /metrics scrapes read it) simultaneously, so every
   ring access takes [window_mutex]. One uncontended lock per completed
   request is noise next to evaluating the query. *)

let window_buckets = 60

type wbucket = {
  mutable w_epoch : int;  (* absolute second this bucket currently holds; -1 = empty *)
  mutable w_count : int;
  mutable w_errors : int;
  mutable w_min : float;
  mutable w_max : float;
  w_hist : int array;
}

type window_stats = {
  ws_requests : int;
  ws_errors : int;
  ws_error_rate : float;
  ws_p50_ms : float;
  ws_p95_ms : float;
  ws_p99_ms : float;
}

let window : wbucket array =
  Array.init window_buckets (fun _ ->
      { w_epoch = -1; w_count = 0; w_errors = 0; w_min = infinity; w_max = 0.0;
        w_hist = Array.make Metrics.bucket_count 0 })

let window_mutex = Mutex.create ()

let with_window f =
  Mutex.lock window_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock window_mutex) f

let window_observe ~(error : bool) (ms : float) : unit =
  with_window @@ fun () ->
  let now = int_of_float (Unix.gettimeofday ()) in
  let b = window.(now mod window_buckets) in
  if b.w_epoch <> now then begin
    b.w_epoch <- now;
    b.w_count <- 0;
    b.w_errors <- 0;
    b.w_min <- infinity;
    b.w_max <- 0.0;
    Array.fill b.w_hist 0 (Array.length b.w_hist) 0
  end;
  b.w_count <- b.w_count + 1;
  if error then b.w_errors <- b.w_errors + 1;
  if ms < b.w_min then b.w_min <- ms;
  if ms > b.w_max then b.w_max <- ms;
  let i = Metrics.bucket_index ms in
  b.w_hist.(i) <- b.w_hist.(i) + 1

let window_reset () =
  with_window @@ fun () ->
  Array.iter
    (fun b ->
      b.w_epoch <- -1;
      b.w_count <- 0;
      b.w_errors <- 0;
      b.w_min <- infinity;
      b.w_max <- 0.0;
      Array.fill b.w_hist 0 (Array.length b.w_hist) 0)
    window

let window_stats () : window_stats =
  let now = int_of_float (Unix.gettimeofday ()) in
  let live = now - window_buckets + 1 in
  let hist = Array.make Metrics.bucket_count 0 in
  let count = ref 0 and errors = ref 0 in
  let mn = ref infinity and mx = ref 0.0 in
  (* fold under the lock; the percentile arithmetic below runs on the
     private copy *)
  with_window (fun () ->
      Array.iter
        (fun b ->
          if b.w_epoch >= live && b.w_count > 0 then begin
            count := !count + b.w_count;
            errors := !errors + b.w_errors;
            if b.w_min < !mn then mn := b.w_min;
            if b.w_max > !mx then mx := b.w_max;
            Array.iteri (fun i c -> hist.(i) <- hist.(i) + c) b.w_hist
          end)
        window);
  let percentile p =
    (* same estimator as Metrics.histogram_percentile: interpolate in
       the bucket the rank falls in, edges tightened by min/max *)
    if !count = 0 then 0.0
    else if p <= 0.0 then !mn
    else if p >= 1.0 then !mx
    else begin
      let nonzero = Array.fold_left (fun acc c -> if c > 0 then acc + 1 else acc) 0 hist in
      if nonzero <= 1 then !mn +. (p *. (!mx -. !mn))
      else begin
        let target = p *. float_of_int !count in
        let rec find i cum =
          if i >= Metrics.bucket_count then !mx
          else begin
            let c = hist.(i) in
            let cum' = cum +. float_of_int c in
            if c > 0 && cum' >= target then begin
              let lo = if i = 0 then 0.0 else Metrics.bucket_upper_bound (i - 1) in
              let lo = Float.max lo !mn in
              let hi = Float.max lo (Float.min (Metrics.bucket_upper_bound i) !mx) in
              let frac = Float.max 0.0 (Float.min 1.0 ((target -. cum) /. float_of_int c)) in
              lo +. (frac *. (hi -. lo))
            end
            else find (i + 1) cum'
          end
        in
        find 0 0.0
      end
    end
  in
  {
    ws_requests = !count;
    ws_errors = !errors;
    ws_error_rate = (if !count = 0 then 0.0 else float_of_int !errors /. float_of_int !count);
    ws_p50_ms = percentile 0.50;
    ws_p95_ms = percentile 0.95;
    ws_p99_ms = percentile 0.99;
  }

let publish_window_metrics () =
  let w = window_stats () in
  Metrics.set_gauge "serve.window.requests" (float_of_int w.ws_requests);
  Metrics.set_gauge "serve.window.errors" (float_of_int w.ws_errors);
  Metrics.set_gauge "serve.window.error_rate" w.ws_error_rate;
  Metrics.set_gauge "serve.window.p50_ms" w.ws_p50_ms;
  Metrics.set_gauge "serve.window.p95_ms" w.ws_p95_ms;
  Metrics.set_gauge "serve.window.p99_ms" w.ws_p99_ms

(* Sync the storage-layer atomics into the metrics registry so a
   /metrics scrape always carries the bufferpool.* / decodepool.*
   series, even for counts accumulated while telemetry was off or
   maintained outside the registry (latch waits, queue depth). *)
let publish_pool_metrics () : unit =
  let s = Storage.Buffer_pool.snapshot () in
  Metrics.set_counter "bufferpool.hits" s.Storage.Buffer_pool.s_hits;
  Metrics.set_counter "bufferpool.misses" s.Storage.Buffer_pool.s_misses;
  Metrics.set_counter "bufferpool.latch_waits" s.Storage.Buffer_pool.s_latch_waits;
  Metrics.set_counter "bufferpool.evictions" s.Storage.Buffer_pool.s_evictions;
  Metrics.set_counter "bufferpool.decoded_bytes" s.Storage.Buffer_pool.s_decoded_bytes;
  Metrics.set_counter "bufferpool.scan_inserts" s.Storage.Buffer_pool.s_scan_inserts;
  Metrics.set_counter "bufferpool.payload_bytes" s.Storage.Buffer_pool.s_payload_bytes;
  Metrics.set_counter "bufferpool.skipped_bytes" s.Storage.Buffer_pool.s_skipped_bytes;
  Metrics.set_counter "bufferpool.invalidations" s.Storage.Buffer_pool.s_invalidations;
  Metrics.set_counter "bufferpool.prefetch_fills" s.Storage.Buffer_pool.s_prefetch_fills;
  Metrics.set_counter "bufferpool.prefetch_hits" s.Storage.Buffer_pool.s_prefetch_hits;
  Metrics.set_gauge "bufferpool.resident_bytes"
    (float_of_int s.Storage.Buffer_pool.s_resident_bytes);
  Metrics.set_gauge "bufferpool.resident_blocks"
    (float_of_int s.Storage.Buffer_pool.s_resident_blocks);
  let d = Storage.Domain_pool.snapshot () in
  Metrics.set_gauge "decodepool.domains" (float_of_int d.Storage.Domain_pool.p_domains);
  Metrics.set_counter "decodepool.batches" d.Storage.Domain_pool.p_batches;
  Metrics.set_counter "decodepool.tasks" d.Storage.Domain_pool.p_tasks;
  Metrics.set_counter "decodepool.inline_tasks" d.Storage.Domain_pool.p_inline;
  Metrics.set_counter "decodepool.async_tasks" d.Storage.Domain_pool.p_async;
  Metrics.set_gauge "decodepool.max_queue_depth"
    (float_of_int d.Storage.Domain_pool.p_max_queue_depth);
  let k = Storage.Compactor.snapshot () in
  Metrics.set_counter "compactor.compactions" k.Storage.Compactor.k_compactions;
  Metrics.set_counter "compactor.blocks_rewritten" k.Storage.Compactor.k_blocks_rewritten;
  Metrics.set_counter "compactor.bytes_rewritten" k.Storage.Compactor.k_bytes_rewritten;
  Metrics.set_gauge "compactor.busy" (if Storage.Compactor.busy () then 1.0 else 0.0);
  let j = Executor.join_stats () in
  Metrics.set_counter "executor.join.block_joins" j.Executor.j_block_joins;
  Metrics.set_counter "executor.join.blocks_probed" j.Executor.j_blocks_probed;
  Metrics.set_counter "executor.join.blocks_skipped" j.Executor.j_blocks_skipped;
  Metrics.set_counter "executor.join.skipped_bytes" j.Executor.j_skipped_bytes;
  Heat.publish_metrics ();
  let e = Expo.stats () in
  Metrics.set_gauge "serve.admission.workers" (float_of_int e.Expo.e_workers);
  Metrics.set_counter "serve.admission.accepted" e.Expo.e_accepted;
  Metrics.set_counter "serve.admission.handled" e.Expo.e_handled;
  Metrics.set_counter "serve.admission.rejected" e.Expo.e_rejected;
  Metrics.set_gauge "serve.admission.inflight" (float_of_int e.Expo.e_inflight);
  Metrics.set_gauge "serve.admission.inflight_high_water"
    (float_of_int e.Expo.e_inflight_high_water);
  let pc = Plan_cache.snapshot () in
  Metrics.set_gauge "serve.plan_cache.capacity" (float_of_int pc.Plan_cache.s_capacity);
  Metrics.set_gauge "serve.plan_cache.entries" (float_of_int pc.Plan_cache.s_entries);
  Metrics.set_counter "serve.plan_cache.hits" pc.Plan_cache.s_hits;
  Metrics.set_counter "serve.plan_cache.misses" pc.Plan_cache.s_misses;
  Metrics.set_counter "serve.plan_cache.evictions" pc.Plan_cache.s_evictions;
  publish_window_metrics ()

(* --- per-query budgets ------------------------------------------------ *)

(* Configured once at server startup (from --query-wall-ms /
   --query-decode-mb) and armed on the evaluating domain for each
   query. 0.0 / 0 = unlimited. *)

let budget_wall_ms = ref 0.0
let budget_decode_bytes = ref 0

let set_budgets ?(wall_ms = 0.0) ?(decode_bytes = 0) () : unit =
  budget_wall_ms := Float.max 0.0 wall_ms;
  budget_decode_bytes := max 0 decode_bytes

let budget_json () : (string * Json.t) list =
  (if !budget_wall_ms > 0.0 then [ ("wall_ms_budget", Json.Num !budget_wall_ms) ] else [])
  @
  if !budget_decode_bytes > 0 then
    [ ("decode_bytes_budget", Json.Num (float_of_int !budget_decode_bytes)) ]
  else []

(* --- watchdog tick: signals + alert evaluation ----------------------- *)

(* Per-tick rate signals are deltas of cumulative counters between
   consecutive ticks; this record remembers the previous readings.
   Only the (single) ticker thread and tests touch it, but a mutex
   keeps a test-driven tick racing a live ticker harmless. *)
type tick_prev = {
  mutable p_queries : int;
  mutable p_errors : int;
  mutable p_trips : int;
  mutable p_pc_hits : int;
  mutable p_pc_misses : int;
  mutable p_bp_hits : int;
  mutable p_bp_misses : int;
}

let tick_prev = { p_queries = 0; p_errors = 0; p_trips = 0; p_pc_hits = 0; p_pc_misses = 0;
                  p_bp_hits = 0; p_bp_misses = 0 }

let tick_mutex = Mutex.create ()

let tick_readings () =
  let pc = Plan_cache.snapshot () in
  let bp = Storage.Buffer_pool.snapshot () in
  ( Metrics.counter_value "serve.queries",
    Metrics.counter_value "serve.query_errors",
    Metrics.counter_value "serve.budget.wall_ms_trips"
    + Metrics.counter_value "serve.budget.decode_bytes_trips",
    pc.Plan_cache.s_hits,
    pc.Plan_cache.s_misses,
    bp.Storage.Buffer_pool.s_hits,
    bp.Storage.Buffer_pool.s_misses )

(* Re-anchor the per-tick deltas at the current counter values, so the
   first real tick doesn't see the whole pre-watchdog history as one
   window. Called by [start_watchdog] and test setup. *)
let watch_tick_reset () =
  Mutex.lock tick_mutex;
  let q, e, tr, pch, pcm, bph, bpm = tick_readings () in
  tick_prev.p_queries <- q;
  tick_prev.p_errors <- e;
  tick_prev.p_trips <- tr;
  tick_prev.p_pc_hits <- pch;
  tick_prev.p_pc_misses <- pcm;
  tick_prev.p_bp_hits <- bph;
  tick_prev.p_bp_misses <- bpm;
  Mutex.unlock tick_mutex

(* This tick's named signal readings for the alert engine. A signal
   with no evidence this tick (no requests, no cache lookups, no
   computable drift) is omitted rather than reported as a fake zero —
   the engine leaves the rule's streaks untouched for missing
   signals. *)
let watch_signals (st : Watch.status) : (string * float) list =
  Mutex.lock tick_mutex;
  let q, e, tr, pch, pcm, bph, bpm = tick_readings () in
  let d_requests = q - tick_prev.p_queries + (e - tick_prev.p_errors) in
  let d_trips = tr - tick_prev.p_trips in
  let d_pc_hits = pch - tick_prev.p_pc_hits in
  let d_pc_look = d_pc_hits + (pcm - tick_prev.p_pc_misses) in
  let d_bp_hits = bph - tick_prev.p_bp_hits in
  let d_bp_look = d_bp_hits + (bpm - tick_prev.p_bp_misses) in
  tick_prev.p_queries <- q;
  tick_prev.p_errors <- e;
  tick_prev.p_trips <- tr;
  tick_prev.p_pc_hits <- pch;
  tick_prev.p_pc_misses <- pcm;
  tick_prev.p_bp_hits <- bph;
  tick_prev.p_bp_misses <- bpm;
  Mutex.unlock tick_mutex;
  let ratio num den = float_of_int num /. float_of_int den in
  (match st.Watch.w_drift with Some d -> [ ("drift", d) ] | None -> [])
  @ (match st.Watch.w_drift_ewma with Some d -> [ ("drift_ewma", d) ] | None -> [])
  @ (if d_requests > 0 then
       [
         ("error_rate", (window_stats ()).ws_error_rate);
         ("budget_408_rate", ratio d_trips d_requests);
       ]
     else [])
  @ (if d_pc_look > 0 then [ ("plan_cache_hit_rate", ratio d_pc_hits d_pc_look) ] else [])
  @ if d_bp_look > 0 then [ ("buffer_pool_hit_rate", ratio d_bp_hits d_bp_look) ] else []

(* --- drift-triggered auto-compaction --------------------------------- *)

(* When serve registers its repository here, a [drift_sustained] firing
   closes the loop: the live rolling fingerprint (joined with container
   heat) is turned into block-size advice by [Profile.recommend], the
   advice into concrete (id, size) targets by [Compactor.plan], and the
   targets handed to the background [Compactor.request] — queries keep
   flowing through the copy-on-write swap. [--no-auto-compact] simply
   never registers the repository. *)
let auto_compact_repo : Storage.Repository.t option ref = ref None

let set_auto_compact (repo : Storage.Repository.t option) : unit =
  auto_compact_repo := repo

let maybe_auto_compact (transitions : Alert.transition list) : unit =
  match !auto_compact_repo with
  | None -> ()
  | Some repo ->
    let fired =
      List.exists
        (fun (t : Alert.transition) ->
          t.Alert.t_rule = "drift_sustained" && t.Alert.t_event = "fired")
        transitions
    in
    if fired then begin
      let advice =
        Profile.recommend ~heat:(Heat.snapshot_json ()) (Watch.fingerprint ())
        |> List.filter_map (fun (r : Profile.recommendation) ->
               if r.Profile.r_action = "keep" then None
               else Some (r.Profile.r_container, r.Profile.r_factor))
      in
      match Storage.Compactor.plan repo advice with
      | [] -> ()
      | targets ->
        if Storage.Compactor.request repo ~targets then
          Metrics.incr "serve.compactions_triggered"
    end

let watch_tick ?now () : Watch.status * Alert.transition list =
  let st = Watch.tick ?now () in
  let transitions = Alert.evaluate ?now (watch_signals st) in
  maybe_auto_compact transitions;
  publish_window_metrics ();
  (st, transitions)

(* The default rule set: drift vs the declared mix (threshold from
   --drift-alert), SLO-window error rate, budget-408 rate, and the two
   hit rates. Sustain/resolve counts are in watchdog windows. *)
let default_rules ?(drift_threshold = 0.3) () : Alert.rule list =
  [
    { Alert.a_name = "drift_sustained"; a_signal = "drift"; a_op = Alert.Gt;
      a_threshold = drift_threshold; a_sustain = 3; a_resolve = 3 };
    { Alert.a_name = "error_rate_high"; a_signal = "error_rate"; a_op = Alert.Gt;
      a_threshold = 0.05; a_sustain = 3; a_resolve = 3 };
    { Alert.a_name = "budget_408_high"; a_signal = "budget_408_rate"; a_op = Alert.Gt;
      a_threshold = 0.05; a_sustain = 3; a_resolve = 3 };
    { Alert.a_name = "plan_cache_hit_low"; a_signal = "plan_cache_hit_rate"; a_op = Alert.Lt;
      a_threshold = 0.5; a_sustain = 5; a_resolve = 3 };
    { Alert.a_name = "buffer_pool_hit_low"; a_signal = "buffer_pool_hit_rate"; a_op = Alert.Lt;
      a_threshold = 0.5; a_sustain = 5; a_resolve = 3 };
  ]

(* --- watchdog ticker domain ------------------------------------------ *)

let watchdog_stop = Atomic.make false
let watchdog_domain : unit Domain.t option ref = ref None

(* One background domain calling [watch_tick] every [period] seconds.
   Sleeps in short slices so [stop_watchdog] (the SIGTERM path) joins
   promptly rather than waiting out a whole window. *)
let start_watchdog ~(period : float) () : unit =
  if !watchdog_domain = None then begin
    let period = Float.max 0.05 period in
    Atomic.set watchdog_stop false;
    watch_tick_reset ();
    watchdog_domain :=
      Some
        (Domain.spawn (fun () ->
             while not (Atomic.get watchdog_stop) do
               let slept = ref 0.0 in
               while (not (Atomic.get watchdog_stop)) && !slept < period do
                 let s = Float.min 0.05 (period -. !slept) in
                 Unix.sleepf s;
                 slept := !slept +. s
               done;
               if not (Atomic.get watchdog_stop) then ignore (watch_tick ())
             done))
  end

let stop_watchdog () : unit =
  Atomic.set watchdog_stop true;
  (match !watchdog_domain with Some d -> Domain.join d | None -> ());
  watchdog_domain := None

(* --- readiness ------------------------------------------------------- *)

(* Static facts for /healthz, set once at server startup. *)
let server_format = ref "unknown"
let server_started = ref 0.0

let set_server_info ?(format : string option) () : unit =
  (match format with Some f -> server_format := f | None -> ());
  server_started := Unix.gettimeofday ()

let healthz_json () : Json.t =
  let e = Expo.stats () in
  let ws = Watch.status () in
  let uptime = if !server_started > 0.0 then Unix.gettimeofday () -. !server_started else 0.0 in
  let opt_num = function Some v -> Json.Num v | None -> Json.Null in
  Json.Obj
    [
      ("status", Json.Str "ok");
      ("uptime_s", Json.Num uptime);
      ("format", Json.Str !server_format);
      ("workers", Json.Num (float_of_int e.Expo.e_workers));
      ("inflight", Json.Num (float_of_int e.Expo.e_inflight));
      ( "watchdog",
        Json.Obj
          [
            ("enabled", Json.Bool ws.Watch.w_enabled);
            ("ticks", Json.Num (float_of_int ws.Watch.w_ticks));
            ("last_tick_unix", opt_num ws.Watch.w_last_tick);
          ] );
    ]

let lookup_label = function
  | Plan_cache.Hit -> "hit"
  | Plan_cache.Miss -> "miss"
  | Plan_cache.Bypass -> "off"

let run_query (engine : Engine.t) (text : string) : Expo.response =
  let text = String.trim text in
  if text = "" then Expo.respond 400 "text/plain; charset=utf-8" "empty query\n"
  else begin
    let t0 = Trace.now_us () in
    let elapsed_ms () = (Trace.now_us () -. t0) /. 1000.0 in
    match
      Metrics.time_ms "serve.query_ms" (fun () ->
          (* compile first (cache hit skips the parse entirely); parse
             errors surface here, before any budget is armed *)
          let plan, lookup = Engine.compile text in
          (match lookup with
          | Plan_cache.Hit -> Metrics.incr "serve.plan_cache.hit_queries"
          | Plan_cache.Miss -> Metrics.incr "serve.plan_cache.miss_queries"
          | Plan_cache.Bypass -> ());
          let admission =
            Json.Obj
              ([
                 ( "inflight",
                   Json.Num (float_of_int (Expo.stats ()).Expo.e_inflight) );
                 ("plan_cache", Json.Str (lookup_label lookup));
               ]
              @ budget_json ())
          in
          Budget.arm ~wall_ms:!budget_wall_ms ~decode_bytes:!budget_decode_bytes ();
          Fun.protect
            ~finally:(fun () -> Budget.disarm ())
            (fun () -> Engine.query_serialized_logged ~admission ~plan engine text))
    with
    | out, _prof ->
      Metrics.incr "serve.queries";
      window_observe ~error:false (elapsed_ms ());
      Expo.respond 200 "text/plain; charset=utf-8" (out ^ "\n")
    | exception Budget.Exceeded trip ->
      (* a budget trip is the server refusing to finish, not a malformed
         query: 408 with a structured body naming the tripped budget *)
      Metrics.incr "serve.query_errors";
      Metrics.incr ("serve.budget." ^ trip.Budget.t_kind ^ "_trips");
      window_observe ~error:true (elapsed_ms ());
      let body =
        Json.to_string
          (Json.Obj
             [
               ("error", Json.Str "budget_exceeded");
               ("budget", Json.Str trip.Budget.t_kind);
               ("limit", Json.Num trip.Budget.t_limit);
               ("observed", Json.Num trip.Budget.t_observed);
             ])
        ^ "\n"
      in
      Expo.respond 408 "application/json; charset=utf-8" body
    | exception e ->
      Metrics.incr "serve.query_errors";
      window_observe ~error:true (elapsed_ms ());
      Expo.respond 400 "text/plain; charset=utf-8" (Printexc.to_string e ^ "\n")
  end

(** The [extra] handler for {!Xquec_obs.Expo.start}: query evaluation
    routes over [engine] ([None] falls through to the built-in
    /metrics and /healthz). *)
let handler (engine : Engine.t) : Expo.handler =
 fun req ->
  match (req.Expo.meth, req.Expo.path) with
  | "POST", "/query" -> Some (run_query engine req.Expo.body)
  | "GET", "/query" -> (
    match List.assoc_opt "q" req.Expo.query with
    | Some q -> Some (run_query engine q)
    | None ->
      Some (Expo.respond 400 "text/plain; charset=utf-8" "missing query parameter q\n"))
  | "GET", "/stats" ->
    publish_pool_metrics ();
    Some (Expo.respond 200 "application/json; charset=utf-8" (Metrics.dump_json ()))
  | "GET", "/heat" ->
    Some
      (Expo.respond 200 "application/json; charset=utf-8"
         (Json.to_string (Heat.snapshot_json ())))
  | "GET", "/watch" ->
    Some
      (Expo.respond 200 "application/json; charset=utf-8"
         (Json.to_string (Watch.snapshot_json ()) ^ "\n"))
  | "GET", "/compact" ->
    Some
      (Expo.respond 200 "application/json; charset=utf-8"
         (Json.to_string (Storage.Compactor.status_json ()) ^ "\n"))
  | "GET", "/alerts" ->
    Some
      (Expo.respond 200 "application/json; charset=utf-8"
         (Json.to_string (Alert.snapshot_json ()) ^ "\n"))
  | "GET", "/healthz" ->
    (* readiness JSON; runs before the Expo builtin, keeping the
       plain-200 contract for existing probes *)
    Some
      (Expo.respond 200 "application/json; charset=utf-8"
         (Json.to_string (healthz_json ()) ^ "\n"))
  | _ -> None
