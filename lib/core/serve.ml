(* The `xquec serve` request handler: query evaluation over one loaded
   repository, mounted as the [extra] routes of an
   [Xquec_obs.Expo] server (which contributes /metrics and /healthz).

   Routes:
     POST /query          body = XQuery text
     GET  /query?q=...    percent-encoded XQuery text
     GET  /stats          full metrics registry as JSON
     GET  /heat           container heat snapshot as JSON

   Queries run sequentially on the server's accept domain — the engine
   evaluates one query at a time (the storage layer parallelizes block
   decode underneath via the Domain_pool), which matches the Expo
   server's one-connection-at-a-time model. Each query bumps
   "serve.queries", records "serve.query_ms", and appends a query-log
   record when a log file is configured. *)

open Xquec_obs

(* --- rolling SLO window ---------------------------------------------- *)

(* Request latency / error rate over the last [window_buckets] seconds:
   a ring of one-second buckets, each holding a count, an error count,
   min/max and a log-scale histogram reusing the Metrics bucket layout.
   A bucket is lazily re-zeroed when the ring wraps onto a new epoch
   second. The cumulative "serve.query_ms" histogram answers
   "since startup"; this ring answers "right now" — p50/p95/p99 and
   error rate over the last minute — without the scraper having to
   diff consecutive snapshots.

   Single-writer: queries run sequentially on the Expo accept domain,
   and scrapes run on that same domain (the collect callback), so no
   lock is needed. *)

let window_buckets = 60

type wbucket = {
  mutable w_epoch : int;  (* absolute second this bucket currently holds; -1 = empty *)
  mutable w_count : int;
  mutable w_errors : int;
  mutable w_min : float;
  mutable w_max : float;
  w_hist : int array;
}

type window_stats = {
  ws_requests : int;
  ws_errors : int;
  ws_error_rate : float;
  ws_p50_ms : float;
  ws_p95_ms : float;
  ws_p99_ms : float;
}

let window : wbucket array =
  Array.init window_buckets (fun _ ->
      { w_epoch = -1; w_count = 0; w_errors = 0; w_min = infinity; w_max = 0.0;
        w_hist = Array.make Metrics.bucket_count 0 })

let window_observe ~(error : bool) (ms : float) : unit =
  let now = int_of_float (Unix.gettimeofday ()) in
  let b = window.(now mod window_buckets) in
  if b.w_epoch <> now then begin
    b.w_epoch <- now;
    b.w_count <- 0;
    b.w_errors <- 0;
    b.w_min <- infinity;
    b.w_max <- 0.0;
    Array.fill b.w_hist 0 (Array.length b.w_hist) 0
  end;
  b.w_count <- b.w_count + 1;
  if error then b.w_errors <- b.w_errors + 1;
  if ms < b.w_min then b.w_min <- ms;
  if ms > b.w_max then b.w_max <- ms;
  let i = Metrics.bucket_index ms in
  b.w_hist.(i) <- b.w_hist.(i) + 1

let window_reset () =
  Array.iter
    (fun b ->
      b.w_epoch <- -1;
      b.w_count <- 0;
      b.w_errors <- 0;
      b.w_min <- infinity;
      b.w_max <- 0.0;
      Array.fill b.w_hist 0 (Array.length b.w_hist) 0)
    window

let window_stats () : window_stats =
  let now = int_of_float (Unix.gettimeofday ()) in
  let live = now - window_buckets + 1 in
  let hist = Array.make Metrics.bucket_count 0 in
  let count = ref 0 and errors = ref 0 in
  let mn = ref infinity and mx = ref 0.0 in
  Array.iter
    (fun b ->
      if b.w_epoch >= live && b.w_count > 0 then begin
        count := !count + b.w_count;
        errors := !errors + b.w_errors;
        if b.w_min < !mn then mn := b.w_min;
        if b.w_max > !mx then mx := b.w_max;
        Array.iteri (fun i c -> hist.(i) <- hist.(i) + c) b.w_hist
      end)
    window;
  let percentile p =
    (* same estimator as Metrics.histogram_percentile: interpolate in
       the bucket the rank falls in, edges tightened by min/max *)
    if !count = 0 then 0.0
    else if p <= 0.0 then !mn
    else if p >= 1.0 then !mx
    else begin
      let nonzero = Array.fold_left (fun acc c -> if c > 0 then acc + 1 else acc) 0 hist in
      if nonzero <= 1 then !mn +. (p *. (!mx -. !mn))
      else begin
        let target = p *. float_of_int !count in
        let rec find i cum =
          if i >= Metrics.bucket_count then !mx
          else begin
            let c = hist.(i) in
            let cum' = cum +. float_of_int c in
            if c > 0 && cum' >= target then begin
              let lo = if i = 0 then 0.0 else Metrics.bucket_upper_bound (i - 1) in
              let lo = Float.max lo !mn in
              let hi = Float.max lo (Float.min (Metrics.bucket_upper_bound i) !mx) in
              let frac = Float.max 0.0 (Float.min 1.0 ((target -. cum) /. float_of_int c)) in
              lo +. (frac *. (hi -. lo))
            end
            else find (i + 1) cum'
          end
        in
        find 0 0.0
      end
    end
  in
  {
    ws_requests = !count;
    ws_errors = !errors;
    ws_error_rate = (if !count = 0 then 0.0 else float_of_int !errors /. float_of_int !count);
    ws_p50_ms = percentile 0.50;
    ws_p95_ms = percentile 0.95;
    ws_p99_ms = percentile 0.99;
  }

let publish_window_metrics () =
  let w = window_stats () in
  Metrics.set_gauge "serve.window.requests" (float_of_int w.ws_requests);
  Metrics.set_gauge "serve.window.errors" (float_of_int w.ws_errors);
  Metrics.set_gauge "serve.window.error_rate" w.ws_error_rate;
  Metrics.set_gauge "serve.window.p50_ms" w.ws_p50_ms;
  Metrics.set_gauge "serve.window.p95_ms" w.ws_p95_ms;
  Metrics.set_gauge "serve.window.p99_ms" w.ws_p99_ms

(* Sync the storage-layer atomics into the metrics registry so a
   /metrics scrape always carries the bufferpool.* / decodepool.*
   series, even for counts accumulated while telemetry was off or
   maintained outside the registry (latch waits, queue depth). *)
let publish_pool_metrics () : unit =
  let s = Storage.Buffer_pool.snapshot () in
  Metrics.set_counter "bufferpool.hits" s.Storage.Buffer_pool.s_hits;
  Metrics.set_counter "bufferpool.misses" s.Storage.Buffer_pool.s_misses;
  Metrics.set_counter "bufferpool.latch_waits" s.Storage.Buffer_pool.s_latch_waits;
  Metrics.set_counter "bufferpool.evictions" s.Storage.Buffer_pool.s_evictions;
  Metrics.set_counter "bufferpool.decoded_bytes" s.Storage.Buffer_pool.s_decoded_bytes;
  Metrics.set_counter "bufferpool.scan_inserts" s.Storage.Buffer_pool.s_scan_inserts;
  Metrics.set_counter "bufferpool.payload_bytes" s.Storage.Buffer_pool.s_payload_bytes;
  Metrics.set_counter "bufferpool.skipped_bytes" s.Storage.Buffer_pool.s_skipped_bytes;
  Metrics.set_gauge "bufferpool.resident_bytes"
    (float_of_int s.Storage.Buffer_pool.s_resident_bytes);
  Metrics.set_gauge "bufferpool.resident_blocks"
    (float_of_int s.Storage.Buffer_pool.s_resident_blocks);
  let d = Storage.Domain_pool.snapshot () in
  Metrics.set_gauge "decodepool.domains" (float_of_int d.Storage.Domain_pool.p_domains);
  Metrics.set_counter "decodepool.batches" d.Storage.Domain_pool.p_batches;
  Metrics.set_counter "decodepool.tasks" d.Storage.Domain_pool.p_tasks;
  Metrics.set_counter "decodepool.inline_tasks" d.Storage.Domain_pool.p_inline;
  Metrics.set_gauge "decodepool.max_queue_depth"
    (float_of_int d.Storage.Domain_pool.p_max_queue_depth);
  let j = Executor.join_stats () in
  Metrics.set_counter "executor.join.block_joins" j.Executor.j_block_joins;
  Metrics.set_counter "executor.join.blocks_probed" j.Executor.j_blocks_probed;
  Metrics.set_counter "executor.join.blocks_skipped" j.Executor.j_blocks_skipped;
  Metrics.set_counter "executor.join.skipped_bytes" j.Executor.j_skipped_bytes;
  Heat.publish_metrics ();
  publish_window_metrics ()

let run_query (engine : Engine.t) (text : string) : Expo.response =
  let text = String.trim text in
  if text = "" then Expo.respond 400 "text/plain; charset=utf-8" "empty query\n"
  else begin
    let t0 = Trace.now_us () in
    let elapsed_ms () = (Trace.now_us () -. t0) /. 1000.0 in
    match
      Metrics.time_ms "serve.query_ms" (fun () ->
          Engine.query_serialized_logged engine text)
    with
    | out, _prof ->
      Metrics.incr "serve.queries";
      window_observe ~error:false (elapsed_ms ());
      Expo.respond 200 "text/plain; charset=utf-8" (out ^ "\n")
    | exception e ->
      Metrics.incr "serve.query_errors";
      window_observe ~error:true (elapsed_ms ());
      Expo.respond 400 "text/plain; charset=utf-8" (Printexc.to_string e ^ "\n")
  end

(** The [extra] handler for {!Xquec_obs.Expo.start}: query evaluation
    routes over [engine] ([None] falls through to the built-in
    /metrics and /healthz). *)
let handler (engine : Engine.t) : Expo.handler =
 fun req ->
  match (req.Expo.meth, req.Expo.path) with
  | "POST", "/query" -> Some (run_query engine req.Expo.body)
  | "GET", "/query" -> (
    match List.assoc_opt "q" req.Expo.query with
    | Some q -> Some (run_query engine q)
    | None ->
      Some (Expo.respond 400 "text/plain; charset=utf-8" "missing query parameter q\n"))
  | "GET", "/stats" ->
    publish_pool_metrics ();
    Some (Expo.respond 200 "application/json; charset=utf-8" (Metrics.dump_json ()))
  | "GET", "/heat" ->
    Some
      (Expo.respond 200 "application/json; charset=utf-8"
         (Json.to_string (Heat.snapshot_json ())))
  | _ -> None
