(** Cost model for compression configurations (§3.2): a weighted sum of
    measured container storage, source-model storage, and the
    decompression the workload would incur (the section's three cases:
    different algorithms / different source models / unsupported
    predicate class). *)

open Storage

(** A candidate partitioning: each set lists the container ids it merges
    and the compression algorithm the merged set would use. *)
type configuration = { sets : (int list * Compress.Codec.algorithm) list }

(** Relative importance of the three cost terms (§3.2's alpha/beta/gamma). *)
type weights = { w_storage : float; w_model : float; w_decompression : float }

(** Equal weighting of storage, model and decompression cost. *)
val default_weights : weights

(** An evaluator bound to one repository + workload; caches per-container
    samples so repeated {!cost} calls during the greedy search are cheap. *)
type t

(** Build an evaluator; samples each container's values once up front. *)
val create : ?weights:weights -> Repository.t -> Workload.t -> t

(** (storage cost, model cost) estimate for one partition set, measured
    on samples under a model trained on the merged sample; infinite when
    the algorithm cannot represent the values. *)
val estimate_set : t -> int list -> Compress.Codec.algorithm -> float * float

(** 0 when the predicate runs in the compressed domain under the
    configuration, else record counts weighted by d_c. *)
val predicate_cost : t -> configuration -> Workload.predicate -> float

(** Total weighted cost of a configuration (lower is better). *)
val cost : t -> configuration -> float

(** The three cost terms of a configuration before weighting, plus their
    weighted total — what [xquec partition --explain] prints. *)
type cost_breakdown = { storage : float; model : float; decompression : float; total : float }

(** Per-term decomposition of {!cost} for the same configuration. *)
val breakdown : t -> configuration -> cost_breakdown
