(** Cost model for compression configurations (§3.2): a weighted sum of
    measured container storage, source-model storage, and the
    decompression the workload would incur (the section's three cases:
    different algorithms / different source models / unsupported
    predicate class). *)

open Storage

(** A candidate partitioning: each set lists the container ids it merges
    and the compression algorithm the merged set would use. *)
type configuration = { sets : (int list * Compress.Codec.algorithm) list }

(** Relative importance of the three cost terms (§3.2's alpha/beta/gamma). *)
type weights = { w_storage : float; w_model : float; w_decompression : float }

(** Equal weighting of storage, model and decompression cost. *)
val default_weights : weights

(** An evaluator bound to one repository + workload; caches per-container
    samples so repeated {!cost} calls during the greedy search are cheap. *)
type t

(** Build an evaluator; samples each container's values once up front. *)
val create : ?weights:weights -> Repository.t -> Workload.t -> t

(** (storage cost, model cost) estimate for one partition set, measured
    on samples under a model trained on the merged sample; infinite when
    the algorithm cannot represent the values. *)
val estimate_set : t -> int list -> Compress.Codec.algorithm -> float * float

(** 0 when the predicate runs in the compressed domain under the
    configuration, else record counts weighted by d_c. *)
val predicate_cost : t -> configuration -> Workload.predicate -> float

(** Total weighted cost of a configuration (lower is better). *)
val cost : t -> configuration -> float

(** {2 Block-interval join estimation}

    Header-only cost analysis for the executor's block merge join: given
    the block headers of two containers sorted on the same code domain,
    decide which block pairs can possibly hold equal codes and what the
    join would have to decode. Everything here reads bounds from headers
    — no payload is fetched. *)

(** The outcome of intersecting two sides' block bound intervals.
    [bj_pairs] lists every (left block, right block) pair whose
    [min,max] code intervals overlap; [bj_probe_left]/[bj_probe_right]
    flag the blocks appearing in at least one pair (the ones a block
    join decodes — all others are skipped outright). Byte totals split
    each side's stored payload into probed vs skipped;
    [bj_skip_fraction] is skipped blocks over total blocks on both
    sides. [bj_exact] is true when every probed block's bounds carry the
    [h_exact] bit — with capped (inexact) bounds the overlap test is
    still conservative, only potentially probing more than needed. *)
type block_join_estimate = {
  bj_pairs : (int * int) list;
  bj_probe_left : bool array;
  bj_probe_right : bool array;
  bj_left_probed_bytes : int;
  bj_left_skipped_bytes : int;
  bj_right_probed_bytes : int;
  bj_right_skipped_bytes : int;
  bj_probed_blocks : int;
  bj_skipped_blocks : int;
  bj_skip_fraction : float;
  bj_exact : bool;
}

(** [block_join_estimate left_headers right_headers] enumerates the
    overlapping block pairs of the two sides with a two-pointer sweep
    (sound because each side's [h_min] and [h_max] sequences are
    non-decreasing; complete even though blocks of one side may overlap
    each other). O(pairs + blocks), header-only. *)
val block_join_estimate :
  Container.header array -> Container.header array -> block_join_estimate

(** [prefer_block_join ests ~tuples] compares the estimated decode cost
    of a block merge join (probed payload bytes on both sides, summed
    over the container pairings [ests]) against a hash join keying
    [tuples] outer tuples: the full right-side payload plus up to one
    left block per tuple. True when the block join is no more
    expensive. *)
val prefer_block_join : block_join_estimate list -> tuples:int -> bool

(** The three cost terms of a configuration before weighting, plus their
    weighted total — what [xquec partition --explain] prints. *)
type cost_breakdown = { storage : float; model : float; decompression : float; total : float }

(** Per-term decomposition of {!cost} for the same configuration. *)
val breakdown : t -> configuration -> cost_breakdown
