(** XQueC query executor (§4): evaluates the XQuery subset directly over
    the compressed repository.

    Paths resolve against the structure summary; value predicates push
    into containers and run on compressed codes whenever the codec
    supports the comparison class; uncorrelated FOR/LET sources evaluate
    once; value joins hash/probe compressed codes when both sides share
    a source model; single-conjunct-correlated nested FLWORs (the XMark
    Q8/Q9/Q10 pattern) decorrelate into build-once join tables; values
    decompress only on output. *)

open Storage

(** A result item. Values stay compressed ([Cval]) until serialization. *)
type item =
  | Node of int  (** structure-tree node id *)
  | Cval of { cont : Container.t; code : string }  (** compressed value *)
  | Att of string * item  (** attribute node: name + value *)
  | Str of string
  | Num of float
  | Bool of bool
  | Elem of Xmlkit.Tree.t  (** constructed element *)

(** A sequence with summary provenance; the [All_*] forms are symbolic
    "every instance under these summary nodes" and avoid materializing
    whole paths (Fig. 4). *)
type seqv =
  | Mat of item list
  | All_nodes of Summary.node list
  | All_values of Summary.node list

(** What a variable is bound to: its sequence plus the summary nodes its
    items are instances of (provenance for later path steps). *)
type binding = { seq : seqv; snodes : Summary.node list }

(** Evaluation context threaded through every operator. *)
type ctx = {
  repo : Repository.t;
  prof : Xquec_obs.Explain.t option;  (** attached EXPLAIN profile, if any *)
  prof_ops : bool;  (** open operator nodes in the profile *)
}

(** A plain evaluation context (no profile attached). *)
val mk_ctx : Repository.t -> ctx

(** Variable environment: name (with leading ["$"]) to binding. *)
type env = (string * binding) list

(** Raised on semantic errors (unknown document, unbound variable, type
    mismatch in a comparison, …). *)
exception Eval_error of string

(** {2 Entry points} *)

(** Evaluate a parsed query against a repository. *)
val run : Repository.t -> Xquery.Ast.expr -> item list

(** Parse then {!run}. *)
val run_string : Repository.t -> string -> item list

(** Evaluate with per-operator profiling: results plus the root of the
    annotated plan tree (inclusive wall time, output cardinalities, and
    compressed-domain vs. decompress-then-compare predicate counts).
    Independent of the global {!Xquec_obs.set_enabled} switch. *)
val run_profiled : Repository.t -> Xquery.Ast.expr -> item list * Xquec_obs.Explain.node

(** Serialize results, decompressing — the Decompress + XMLSerialize
    tail of every plan (§4, Fig. 5). *)
val serialize : Repository.t -> item list -> string

(** {2 Building blocks used by the physical algebra, plans and the
    optimizer} *)

(** Wrap an already-materialized list as a binding (no provenance). *)
val mat : item list -> binding

(** Force a binding to a concrete item list, expanding the symbolic
    [All_*] forms by walking the structure tree. *)
val materialize : ctx -> binding -> item list

(** Cardinality of a binding; counts [All_*] forms from the summary's
    per-snode instance counts without materializing. *)
val count : ctx -> binding -> int

(** Atomized string value of an item (decompresses a [Cval]). *)
val atom_string : ctx -> item -> string

(** Atomized numeric value, or [None] if the item is not a number. *)
val atom_number : ctx -> item -> float option

(** Evaluate an expression under an environment — the executor's core
    recursion, exposed for the physical algebra and EXPLAIN. *)
val eval : ctx -> env -> Xquery.Ast.expr -> binding

(** Reconstruct the XML subtree rooted at a node id. *)
val reconstruct : ctx -> int -> Xmlkit.Tree.t

(** String value of an element (all descendant text, attributes
    excluded). *)
val node_string_value : ctx -> int -> string

(** One summary step relative to a set of summary nodes. *)
val advance_snodes : ctx -> Summary.node list -> Xquery.Ast.step -> Summary.node list

(** {2 Predicate pushdown analysis} *)

(** A constant comparison operand. *)
type const_operand = Cstr of string | Cnum of float

(** Recognize a literal (string or number) as a constant operand. *)
val const_of_expr : Xquery.Ast.expr -> const_operand option

(** Predicate shapes the executor can push into container scans: a value
    comparison against a constant, a textual predicate, or a bare
    existence test — each with the context-relative path to the value. *)
type pushable =
  | P_value of Xquery.Ast.cmp_op * Xquery.Ast.step list * const_operand
  | P_textual of [ `Contains | `Starts_with ] * Xquery.Ast.step list * string
  | P_exists of Xquery.Ast.step list

(** Match a [where]-clause conjunct against the {!pushable} shapes. *)
val recognize_pushable : Xquery.Ast.expr -> pushable option

(** Resolve a context-relative value path to (container, hops to the
    candidate element) pairs, or [None] when unresolvable (or when the
    container records would not be semantically exact for the predicate:
    bare-element comparisons and — under [concat_semantics], used for
    contains/starts-with — multi-text instances). *)
val resolve_value_path :
  ?concat_semantics:bool ->
  ctx ->
  Summary.node list ->
  Xquery.Ast.step list ->
  (Container.t * int) list option

(** Containers a value-producing expression statically resolves to. *)
val static_value_containers : ctx -> env -> Xquery.Ast.expr -> Container.t list option

(** {2 Join key typing} *)

(** A hash-join key: a compressed code, or an atomized number/string. *)
type join_key = Kcode of string | Knum of float | Kstr of string

(** How both join sides will be keyed. *)
type key_mode =
  | Mode_code of int * Container.t
      (** both sides share this source model: probe compressed codes *)
  | Mode_atom

(** Choose the key mode for a join of two value expressions: compressed
    codes when both sides resolve to containers sharing one source
    model, else atomized values. *)
val join_key_mode : ctx -> env -> Xquery.Ast.expr -> Xquery.Ast.expr -> key_mode

(** {2 Block-interval merge join}

    The compressed-domain join fast path: when both key sides of an
    equality join resolve to sorted containers under one source model,
    the executor intersects the two sides' block bound intervals from
    headers alone, decodes only the overlapping blocks, and merges equal
    codes record-wise — values are never decompressed and
    non-overlapping blocks are never fetched. *)

(** Static applicability for the block merge join of the FOR variable
    [var]: both key expressions are single-variable value paths (the
    right side rooted at [var]) resolving to containers that share one
    [`Eq]-capable source model and are verified [sorted_run]s. Returns
    the (container, hops-to-variable) resolutions of the left and right
    sides. Shared with the optimizer's EXPLAIN, which pairs the sides'
    headers through {!Cost_model.block_join_estimate}. *)
val block_join_sides :
  ctx ->
  env ->
  var:string ->
  Xquery.Ast.expr ->
  Xquery.Ast.expr ->
  ((Container.t * int) list * (Container.t * int) list) option

(** Process-wide block-join counters, maintained as atomics (so they
    accumulate with telemetry off, like the buffer-pool stats):
    executions, blocks decoded, blocks skipped from headers alone, and
    the stored payload bytes those skipped blocks would have read. *)
type join_stats = {
  j_block_joins : int;
  j_blocks_probed : int;
  j_blocks_skipped : int;
  j_skipped_bytes : int;
}

(** Snapshot the cumulative block-join counters. *)
val join_stats : unit -> join_stats

(** Zero the block-join counters (benchmark / test isolation). *)
val reset_join_stats : unit -> unit

(** Enable or disable the block merge join (defaults to enabled unless
    the environment sets [XQUEC_BLOCK_JOIN=0]); when off, equality
    joins always take the hash-join path — the differential tests and
    the bench's skip-ratio experiment toggle this. *)
val set_block_join : bool -> unit

(** One container-resolved predicate observed during evaluation: a
    pushed-down value / textual filter, a tuple-at-a-time [where]
    comparison reading a container value, an existence test, or a
    compressed-domain join side. [o_kind] is one of ["eq"], ["range"],
    ["wild"], ["exists"], ["join"] — the vocabulary
    [Xquec_obs.Profile] fingerprints over, aligned with the
    {!Workload} predicate classes. [o_candidates] is the records (or
    path instances, or tuples) the predicate considered and
    [o_matches] how many matched, so [o_matches / o_candidates] is its
    observed selectivity. *)
type pred_obs = {
  o_container : string;
  o_kind : string;
  o_candidates : int;
  o_matches : int;
}

(** Observations of the most recently evaluated query {e on the
    calling domain}, merged by (container, kind) — per-tuple
    comparison notes sum into one entry — in first-observation order.
    Reset by {!run} / {!run_profiled}. The accumulator is
    domain-local ([Domain.DLS]), so concurrent serve workers each see
    exactly their own query's observations; read it on the domain that
    evaluated, before it evaluates anything else. *)
val predicate_observations : unit -> pred_obs list
