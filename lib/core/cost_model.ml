(* Cost model for compression configurations (§3.2).

   A configuration assigns each container to a partition set with a
   compression algorithm; containers in one set share a source model.
   Its cost is a weighted sum of
   - container storage cost: estimated compressed bytes under the set's
     algorithm and shared model,
   - source-model storage cost,
   - decompression cost: for every workload predicate that cannot run in
     the compressed domain under this configuration, the sizes of the
     involved containers weighted by the algorithm's d_c — the three
     cases of §3.2 (different algorithms / different source models /
     unsupported predicate class).

   Storage estimates are measured on bounded samples: the candidate
   algorithm is trained on the merged sample of the set and applied to
   each container's sample. This stands in for the paper's c_s(F) and
   c_a(F) functions — the similarity matrix F is implicit in the sample
   merge (similar containers genuinely compress better together, which
   is exactly what F models). *)

open Storage

type configuration = {
  sets : (int list * Compress.Codec.algorithm) list;
      (** partition of (queried) container ids with the set's algorithm *)
}

type weights = { w_storage : float; w_model : float; w_decompression : float }

let default_weights = { w_storage = 1.0; w_model = 1.0; w_decompression = 0.05 }

type t = {
  repo : Repository.t;
  workload : Workload.t;
  weights : weights;
  samples : (int, string list) Hashtbl.t; (* container id -> sampled values *)
  plain_sizes : (int, int) Hashtbl.t;
  record_counts : (int, int) Hashtbl.t;
  estimate_cache : (string, float * float) Hashtbl.t;
}

(* Samples must be large enough that dictionary-based codecs (ALM) train
   representative models — small/medium containers are measured exactly. *)
let sample_limit = 600
let sample_bytes = 64 * 1024

let sample_container (c : Container.t) : string list =
  let n = Container.length c in
  let take = min n sample_limit in
  let step = max 1 (n / max 1 take) in
  let budget = ref sample_bytes in
  let out = ref [] in
  let i = ref 0 in
  while !i < n && !budget > 0 do
    let v = Container.decompress_record c (Container.get c !i) in
    budget := !budget - String.length v;
    out := v :: !out;
    i := !i + step
  done;
  List.rev !out

let create ?(weights = default_weights) (repo : Repository.t) (workload : Workload.t) : t =
  let samples = Hashtbl.create 64 in
  let plain_sizes = Hashtbl.create 64 in
  let record_counts = Hashtbl.create 64 in
  Array.iter
    (fun (c : Container.t) ->
      Hashtbl.add samples c.Container.id (sample_container c);
      Hashtbl.add plain_sizes c.Container.id c.Container.plain_bytes;
      Hashtbl.add record_counts c.Container.id (Container.length c))
    repo.Repository.containers;
  { repo; workload; weights; samples; plain_sizes; record_counts;
    estimate_cache = Hashtbl.create 256 }

let set_key (ids : int list) (alg : Compress.Codec.algorithm) =
  Compress.Codec.algorithm_name alg ^ ":"
  ^ String.concat "," (List.map string_of_int (List.sort compare ids))

(** (storage cost, model cost) estimate for one partition set. *)
let estimate_set (t : t) (ids : int list) (alg : Compress.Codec.algorithm) : float * float =
  let key = set_key ids alg in
  match Hashtbl.find_opt t.estimate_cache key with
  | Some r ->
    Xquec_obs.Metrics.incr "cost_model.estimate_cache_hits";
    r
  | None ->
    Xquec_obs.Metrics.incr "cost_model.estimate_cache_misses";
    let result =
      let merged = List.concat_map (fun id -> Hashtbl.find t.samples id) ids in
      match Compress.Codec.train alg merged with
      | exception Compress.Codec.Unsupported _ -> (Float.infinity, Float.infinity)
      | model ->
        let model_cost = float_of_int (Compress.Codec.model_size model) in
        let storage =
          List.fold_left
            (fun acc id ->
              let sample = Hashtbl.find t.samples id in
              let plain =
                List.fold_left (fun a v -> a + String.length v) 0 sample
              in
              let compressed =
                List.fold_left
                  (fun a v -> a + String.length (Compress.Codec.compress model v))
                  0 sample
              in
              let ratio =
                if plain = 0 then 1.0 else float_of_int compressed /. float_of_int plain
              in
              acc +. (ratio *. float_of_int (Hashtbl.find t.plain_sizes id)))
            0.0 ids
        in
        (storage, model_cost)
    in
    Hashtbl.add t.estimate_cache key result;
    result

(* Set (and algorithm) a container belongs to under a configuration. *)
let set_of (config : configuration) (id : int) : (int list * Compress.Codec.algorithm) option =
  List.find_opt (fun (ids, _) -> List.mem id ids) config.sets

let class_supported alg (cls : Workload.pred_class) =
  match cls with
  | Workload.Cls_eq -> Compress.Codec.supports alg `Eq
  | Workload.Cls_ineq -> Compress.Codec.supports alg `Ineq
  | Workload.Cls_wild -> Compress.Codec.supports alg `Wild

(** Decompression cost of one predicate under a configuration: 0 when it
    runs in the compressed domain, otherwise |ct| * d_c summed over the
    containers that must be decompressed (§3.2's three cases). *)
let predicate_cost (t : t) (config : configuration) (p : Workload.predicate) : float =
  let size id = float_of_int (Hashtbl.find t.record_counts id) in
  let dc alg = Compress.Codec.decompression_cost alg in
  let decompress_all ids =
    List.fold_left
      (fun acc id ->
        match set_of config id with
        | Some (_, alg) -> acc +. (size id *. dc alg)
        | None -> acc +. (size id *. dc Compress.Codec.Bzip_alg))
      0.0 ids
  in
  match p.Workload.right with
  | [] -> (
    (* container vs constant: in-domain iff the algorithm supports the
       class (the constant is compressed with the container's model) *)
    let bad =
      List.filter
        (fun id ->
          match set_of config id with
          | Some (_, alg) -> not (class_supported alg p.Workload.cls)
          | None -> true)
        p.Workload.left
    in
    match bad with [] -> 0.0 | ids -> decompress_all ids)
  | right ->
    (* container vs container: all involved containers must share one
       source model under an algorithm supporting the class *)
    let ids = p.Workload.left @ right in
    let sets = List.map (set_of config) ids in
    let in_domain =
      match sets with
      | Some (first_ids, first_alg) :: rest ->
        class_supported first_alg p.Workload.cls
        && List.for_all
             (function
               | Some (ids', _) -> ids' == first_ids || ids' = first_ids
               | None -> false)
             rest
      | _ -> false
    in
    if in_domain then 0.0 else decompress_all ids

(** Total cost of a configuration. *)
let cost (t : t) (config : configuration) : float =
  Xquec_obs.Metrics.incr "cost_model.evaluations";
  let storage, model =
    List.fold_left
      (fun (s, m) (ids, alg) ->
        let (s', m') = estimate_set t ids alg in
        (s +. s', m +. m'))
      (0.0, 0.0) config.sets
  in
  let decompression =
    List.fold_left (fun acc p -> acc +. predicate_cost t config p) 0.0
      t.workload.Workload.predicates
  in
  (t.weights.w_storage *. storage)
  +. (t.weights.w_model *. model)
  +. (t.weights.w_decompression *. decompression)

(* ------------------------------------------------------------------ *)
(* Block-interval join estimation (header-only)                        *)
(* ------------------------------------------------------------------ *)

type block_join_estimate = {
  bj_pairs : (int * int) list;
  bj_probe_left : bool array;
  bj_probe_right : bool array;
  bj_left_probed_bytes : int;
  bj_left_skipped_bytes : int;
  bj_right_probed_bytes : int;
  bj_right_skipped_bytes : int;
  bj_probed_blocks : int;
  bj_skipped_blocks : int;
  bj_skip_fraction : float;
  bj_exact : bool;
}

(* Block bound sequences (h_min and h_max) are non-decreasing, so for
   each right block the overlapping left blocks form a contiguous range
   [lo, hi) whose endpoints are themselves non-decreasing in j — a
   two-pointer sweep enumerates every overlapping pair in
   O(pairs + blocks). Note blocks of one side may overlap each other
   (equal codes spanning a block boundary, or capped bounds), which is
   why the simpler disjoint-interval merge would miss pairs. *)
let block_join_estimate (lh : Container.header array) (rh : Container.header array) :
    block_join_estimate =
  let nl = Array.length lh and nr = Array.length rh in
  let probe_l = Array.make nl false and probe_r = Array.make nr false in
  let pairs = ref [] in
  let lo = ref 0 and hi = ref 0 in
  for j = 0 to nr - 1 do
    let r = rh.(j) in
    while
      !lo < nl && String.compare lh.(!lo).Container.h_max r.Container.h_min < 0
    do
      incr lo
    done;
    if !hi < !lo then hi := !lo;
    while
      !hi < nl && String.compare lh.(!hi).Container.h_min r.Container.h_max <= 0
    do
      incr hi
    done;
    for i = !hi - 1 downto !lo do
      pairs := (i, j) :: !pairs;
      probe_l.(i) <- true;
      probe_r.(j) <- true
    done
  done;
  let tally probe (h : Container.header array) =
    let probed = ref 0 and skipped = ref 0 in
    Array.iteri
      (fun i (hd : Container.header) ->
        let b = hd.Container.h_payload_bytes in
        if probe.(i) then probed := !probed + b else skipped := !skipped + b)
      h;
    (!probed, !skipped)
  in
  let (lp, ls) = tally probe_l lh and (rp, rs) = tally probe_r rh in
  let count probe = Array.fold_left (fun acc p -> if p then acc + 1 else acc) 0 probe in
  let probed_blocks = count probe_l + count probe_r in
  let total_blocks = nl + nr in
  let skipped_blocks = total_blocks - probed_blocks in
  let exact_probed probe (h : Container.header array) =
    let ok = ref true in
    Array.iteri (fun i (hd : Container.header) -> if probe.(i) && not hd.Container.h_exact then ok := false) h;
    !ok
  in
  {
    bj_pairs = !pairs;
    bj_probe_left = probe_l;
    bj_probe_right = probe_r;
    bj_left_probed_bytes = lp;
    bj_left_skipped_bytes = ls;
    bj_right_probed_bytes = rp;
    bj_right_skipped_bytes = rs;
    bj_probed_blocks = probed_blocks;
    bj_skipped_blocks = skipped_blocks;
    bj_skip_fraction =
      (if total_blocks = 0 then 0.0
       else float_of_int skipped_blocks /. float_of_int total_blocks);
    bj_exact = exact_probed probe_l lh && exact_probed probe_r rh;
  }

let prefer_block_join (ests : block_join_estimate list) ~(tuples : int) : bool =
  let sum f = List.fold_left (fun acc e -> acc + f e) 0 ests in
  let block_cost = sum (fun e -> e.bj_left_probed_bytes + e.bj_right_probed_bytes) in
  let left_total = sum (fun e -> e.bj_left_probed_bytes + e.bj_left_skipped_bytes) in
  let right_total = sum (fun e -> e.bj_right_probed_bytes + e.bj_right_skipped_bytes) in
  let left_blocks = sum (fun e -> Array.length e.bj_probe_left) in
  let avg_left_block = if left_blocks = 0 then 0 else left_total / left_blocks in
  (* The hash join decodes essentially every build-side (right) block
     while keying the items, plus per-tuple probe-side lookups that
     touch at most one left block each (and never more than all of
     them). Once there are at least as many tuples as left blocks the
     probe side is fully decoded anyway (also avoids overflowing the
     product for symbolic "large" tuple counts). *)
  let probe_cost =
    if tuples >= left_blocks then left_total
    else min (tuples * avg_left_block) left_total
  in
  let hash_cost = right_total + probe_cost in
  block_cost <= hash_cost

type cost_breakdown = { storage : float; model : float; decompression : float; total : float }

let breakdown (t : t) (config : configuration) : cost_breakdown =
  let storage, model =
    List.fold_left
      (fun (s, m) (ids, alg) ->
        let (s', m') = estimate_set t ids alg in
        (s +. s', m +. m'))
      (0.0, 0.0) config.sets
  in
  let decompression =
    List.fold_left (fun acc p -> acc +. predicate_cost t config p) 0.0
      t.workload.Workload.predicates
  in
  {
    storage;
    model;
    decompression;
    total =
      (t.weights.w_storage *. storage)
      +. (t.weights.w_model *. model)
      +. (t.weights.w_decompression *. decompression);
  }
