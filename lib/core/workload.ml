(* Query workload analysis (§3): extracts the value-comparison predicates
   of a set of queries and resolves each side to the containers it
   touches. The result feeds the E/I/D matrices of the cost model and
   drives the greedy partitioning search. *)

open Storage
open Xquery

type pred_class = Cls_eq | Cls_ineq | Cls_wild

(** A predicate between container sets; [right = []] means a constant. *)
type predicate = { cls : pred_class; left : int list; right : int list }

type t = { predicates : predicate list; container_count : int }

let class_of_op = function
  | Ast.Eq | Ast.Neq -> Cls_eq
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> Cls_ineq

(* Static resolution environment: variable -> summary nodes. *)
type senv = (string * Summary.node list) list

let summary_step repo (st : Ast.step) : Summary.step option =
  let code n = Name_dict.code repo.Repository.dict n in
  match st.Ast.axis, st.Ast.test with
  | Ast.Child, Ast.Name n -> Option.map (fun c -> `Child c) (code n)
  | Ast.Child, Ast.Any -> Some `Child_any
  | Ast.Descendant, Ast.Name n -> Option.map (fun c -> `Desc c) (code n)
  | Ast.Descendant, Ast.Any -> Some `Desc_any
  | Ast.Attribute, Ast.Name n -> Option.map (fun c -> `Child c) (code ("@" ^ n))
  | _ -> None

let advance repo snodes st =
  match summary_step repo st with
  | None -> []
  | Some sstep ->
    let is_attr c =
      c >= 0
      &&
      let n = Name_dict.name repo.Repository.dict c in
      String.length n > 0 && n.[0] = '@'
    in
    Summary.step_from ~is_attr snodes sstep

(* Summary nodes reachable by a path expression, or [] when unresolvable. *)
let rec resolve_snodes repo (env : senv) (e : Ast.expr) : Summary.node list =
  match e with
  | Ast.Doc _ -> [ repo.Repository.summary.Summary.root ]
  | Ast.Var v | Ast.Some_satisfies (v, _, _) when List.mem_assoc v env -> List.assoc v env
  | Ast.Context -> (match List.assoc_opt "." env with Some s -> s | None -> [])
  | Ast.Path (src, steps) ->
    List.fold_left
      (fun snodes (st : Ast.step) ->
        match st.Ast.axis, st.Ast.test with
        | _, Ast.Text -> snodes (* text keeps the element's snodes *)
        | _ -> advance repo snodes st)
      (resolve_snodes repo env src)
      steps
  | Ast.Distinct_values e | Ast.String_of e -> resolve_snodes repo env e
  | _ -> []

(* Containers holding the values an operand expression compares. *)
let rec operand_containers repo (env : senv) (e : Ast.expr) : int list =
  match e with
  | Ast.Path (_, steps) -> (
    let snodes = resolve_snodes repo env e in
    let text_conts snodes =
      List.filter_map (fun (sn : Summary.node) -> sn.Summary.text_container) snodes
    in
    match List.rev steps with
    | { Ast.axis = Ast.Attribute; _ } :: _ | { Ast.test = Ast.Text; _ } :: _ ->
      text_conts snodes
    | _ ->
      (* comparing an element compares its string value: every text
         container in the subtree participates *)
      let subtree = List.concat_map (fun sn -> Summary.descend_all sn []) snodes in
      text_conts subtree)
  | Ast.Arith (_, a, b) -> operand_containers repo env a @ operand_containers repo env b
  | Ast.Number_of a | Ast.String_of a | Ast.Distinct_values a -> operand_containers repo env a
  | _ -> []

let rec collect repo (env : senv) (e : Ast.expr) (acc : predicate list ref) : unit =
  let operand env e = operand_containers repo env e in
  match e with
  | Ast.Cmp (op, a, b) ->
    let ca = operand env a and cb = operand env b in
    (match ca, cb with
    | [], [] -> ()
    | l, r -> acc := { cls = class_of_op op; left = l; right = r } :: !acc);
    collect repo env a acc;
    collect repo env b acc
  | Ast.Contains (a, b) | Ast.Starts_with (a, b) ->
    (match operand env a with
    | [] -> ()
    | l -> acc := { cls = Cls_wild; left = l; right = [] } :: !acc);
    collect repo env a acc;
    collect repo env b acc
  | Ast.Ftcontains (a, _) ->
    (match operand env a with
    | [] -> ()
    | l -> acc := { cls = Cls_wild; left = l; right = [] } :: !acc);
    collect repo env a acc
  | Ast.Flwor (clauses, ret) ->
    let env = ref env in
    List.iter
      (fun c ->
        match c with
        | Ast.For (v, e) | Ast.Let (v, e) ->
          collect repo !env e acc;
          env := (v, resolve_snodes repo !env e) :: !env
        | Ast.Where e -> collect repo !env e acc
        | Ast.Order_by keys -> List.iter (fun (k, _) -> collect repo !env k acc) keys)
      clauses;
    collect repo !env ret acc
  | Ast.Path (src, steps) ->
    collect repo env src acc;
    (* predicates inside steps compare relative to the step's element *)
    let snodes = ref (resolve_snodes repo env src) in
    List.iter
      (fun (st : Ast.step) ->
        snodes := (match st.Ast.test with Ast.Text -> !snodes | _ -> advance repo !snodes st);
        List.iter
          (function
            | Ast.Pos _ | Ast.Pos_last -> ()
            | Ast.Cond e -> collect repo (("." , !snodes) :: env) e acc)
          st.Ast.predicates)
      steps
  | Ast.Some_satisfies (v, e, cond) | Ast.Every_satisfies (v, e, cond) ->
    collect repo env e acc;
    collect repo ((v, resolve_snodes repo env e) :: env) cond acc
  | Ast.If (a, b, c) ->
    collect repo env a acc;
    collect repo env b acc;
    collect repo env c acc
  | Ast.And (a, b) | Ast.Or (a, b) | Ast.Arith (_, a, b) ->
    collect repo env a acc;
    collect repo env b acc
  | Ast.Not a
  | Ast.Aggregate (_, a)
  | Ast.Empty a
  | Ast.Exists a
  | Ast.Distinct_values a
  | Ast.String_of a
  | Ast.Number_of a
  | Ast.Name_of a -> collect repo env a acc
  | Ast.Element (_, attrs, kids) ->
    List.iter
      (fun (_, v) -> match v with Ast.Attr_expr e -> collect repo env e acc | Ast.Attr_string _ -> ())
      attrs;
    List.iter (fun k -> collect repo env k acc) kids
  | Ast.Sequence es -> List.iter (fun e -> collect repo env e acc) es
  | Ast.Literal_string _ | Ast.Literal_number _ | Ast.Var _ | Ast.Context | Ast.Doc _ -> ()

(** Analyze a workload of queries against a loaded repository. *)
let analyze (repo : Repository.t) (queries : Ast.expr list) : t =
  let acc = ref [] in
  List.iter (fun q -> collect repo [] q acc) queries;
  { predicates = List.rev !acc; container_count = Array.length repo.Repository.containers }

let of_query_strings repo (texts : string list) : t =
  analyze repo (List.map Xquery.Parser.parse texts)

(** The E/I/D comparison matrices of §3.2: square matrices of size
    (|C|+1) x (|C|+1) counting, per predicate class (equality /
    inequality / prefix-wildcard), the workload's comparisons between
    containers i and j; row/column |C| stands for comparisons with
    constants. The matrices are symmetric by construction. *)
let matrices (w : t) : int array array * int array array * int array array =
  let n = w.container_count in
  let make () = Array.make_matrix (n + 1) (n + 1) 0 in
  let e = make () and i = make () and d = make () in
  List.iter
    (fun p ->
      let m = match p.cls with Cls_eq -> e | Cls_ineq -> i | Cls_wild -> d in
      let bump a b =
        m.(a).(b) <- m.(a).(b) + 1;
        if a <> b then m.(b).(a) <- m.(b).(a) + 1
      in
      match p.right with
      | [] -> List.iter (fun l -> bump l n) p.left
      | right -> List.iter (fun l -> List.iter (fun r -> bump l r) right) p.left)
    w.predicates;
  (e, i, d)

(** Container ids mentioned by any predicate. *)
let queried_containers (w : t) : int list =
  List.concat_map (fun p -> p.left @ p.right) w.predicates |> List.sort_uniq compare

let pp_predicate ppf (p : predicate) =
  let cls = match p.cls with Cls_eq -> "eq" | Cls_ineq -> "ineq" | Cls_wild -> "wild" in
  Fmt.pf ppf "%s: {%a} vs %s" cls
    Fmt.(list ~sep:comma int)
    p.left
    (if p.right = [] then "const" else Fmt.str "{%a}" Fmt.(list ~sep:comma int) p.right)

(** Declared-workload fingerprint: one weighted (container path, kind)
    event per container a predicate touches — [Cls_eq] as ["eq"],
    [Cls_ineq] as ["range"], [Cls_wild] as ["wild"], matching the
    executor's observation vocabulary — so the build-time workload and
    an observed query-log fingerprint ({!Xquec_obs.Profile.of_records})
    are directly comparable with {!Xquec_obs.Profile.drift}. *)
let fingerprint (repo : Repository.t) (w : t) : Xquec_obs.Profile.fingerprint =
  let kind_of = function Cls_eq -> "eq" | Cls_ineq -> "range" | Cls_wild -> "wild" in
  let path id = (Repository.container repo id).Container.path in
  let events =
    List.concat_map
      (fun p ->
        List.map (fun id -> ((path id, kind_of p.cls), 1.0)) (p.left @ p.right))
      w.predicates
  in
  Xquec_obs.Profile.of_weighted_events events
