(* Minimal HTTP/1.1 load-generation client for the Expo server — the
   test/bench counterpart of expo.ml, with the same no-dependency
   constraint.

   Two modes:

   - [request]: one blocking request over a fresh connection, for
     tests and smoke checks.
   - [drive]: N concurrent clients issuing M requests each from a
     SINGLE domain via select(2)-multiplexed non-blocking sockets.
     Spawning a domain per client would hit OCaml's ~128-domain
     process limit long before the "hundreds of concurrent clients"
     the serving bench needs; one select loop holds thousands of
     sockets open simultaneously, which is also a truer model of a
     front-end fanning user requests at the server.

   Responses are parsed just enough for assertions: status code and
   body (via Content-Length; the server always sends it and closes the
   connection). *)

type reply = { r_status : int; r_body : string }

let parse_status (buf : string) : int =
  match String.index_opt buf ' ' with
  | Some sp when String.length buf >= sp + 4 ->
    (try int_of_string (String.sub buf (sp + 1) 3) with _ -> 0)
  | _ -> 0

(* Split a raw response into (status, body) once fully received. The
   server closes after each response, so "fully received" = EOF; the
   Content-Length header is still honored to trim any trailing bytes
   that a duplicated shutdown could append. *)
let parse_response (raw : string) : reply =
  let status = parse_status raw in
  let body =
    match
      (* header/body split: first CRLFCRLF (tolerate bare LFLF) *)
      let rec find i =
        if i + 3 < String.length raw then
          if raw.[i] = '\r' && raw.[i + 1] = '\n' && raw.[i + 2] = '\r' && raw.[i + 3] = '\n'
          then Some (i + 4)
          else if raw.[i] = '\n' && raw.[i + 1] = '\n' then Some (i + 2)
          else find (i + 1)
        else None
      in
      find 0
    with
    | None -> ""
    | Some b -> String.sub raw b (String.length raw - b)
  in
  { r_status = status; r_body = body }

let build_request ?(meth = "GET") ?(body = "") ~(host : string) (target : string) : string
    =
  if body = "" && meth = "GET" then
    Printf.sprintf "GET %s HTTP/1.1\r\nHost: %s\r\nConnection: close\r\n\r\n" target host
  else
    Printf.sprintf
      "%s %s HTTP/1.1\r\nHost: %s\r\nContent-Type: text/plain\r\nContent-Length: \
       %d\r\nConnection: close\r\n\r\n%s"
      meth target host (String.length body) body

(* --- blocking single request ----------------------------------------- *)

let request ?(host = "127.0.0.1") ~(port : int) ?meth ?body (target : string) : reply =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with _ -> ())
    (fun () ->
      Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
      let req = build_request ?meth ?body ~host target in
      let n = String.length req in
      let rec send off =
        if off < n then send (off + Unix.write_substring sock req off (n - off))
      in
      send 0;
      let buf = Buffer.create 1024 in
      let chunk = Bytes.create 8192 in
      let rec recv () =
        match Unix.read sock chunk 0 (Bytes.length chunk) with
        | 0 -> ()
        | k ->
          Buffer.add_subbytes buf chunk 0 k;
          recv ()
        | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> ()
      in
      recv ();
      parse_response (Buffer.contents buf))

(* --- concurrent driver ------------------------------------------------ *)

(* Per-connection state machine: connect → write request → read to EOF.
   All sockets non-blocking; one select loop advances whichever
   connections are ready. *)
type conn_phase = Connecting | Writing of int | Reading

type conn = {
  mutable fd : Unix.file_descr;
  client : int;  (* which simulated client this connection belongs to *)
  mutable seq : int;  (* request index within the client, 0-based *)
  mutable phase : conn_phase;
  mutable req : string;
  recv : Buffer.t;
}

type outcome = {
  o_client : int;
  o_seq : int;
  o_reply : reply;
}

(* [drive ~clients ~requests_per_client ~target] runs [clients]
   simulated clients against 127.0.0.1:[port], each issuing
   [requests_per_client] sequential requests (a client opens its next
   connection only after the previous reply completes, like a real
   caller would), all multiplexed on the calling domain. [target] maps
   (client, seq) to the request target+method+body, so workloads can
   mix queries. Returns one outcome per completed request, in
   (client, seq) order — a deterministic ordering regardless of
   arrival interleaving, which lets callers digest the bodies and
   compare against a sequential run. *)
let drive ?(host = "127.0.0.1") ~(port : int) ~(clients : int) ~(requests_per_client : int)
    ~(target : int -> int -> string * string * string) () : outcome list =
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
  let results = Hashtbl.create (clients * requests_per_client) in
  let live = Hashtbl.create clients in (* fd -> conn *)
  let fresh_conn client seq =
    let meth, tgt, body = target client seq in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.set_nonblock fd;
    let phase =
      match Unix.connect fd addr with
      | () -> Writing 0
      | exception Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK), _, _) ->
        Connecting
    in
    let c =
      { fd; client; seq; phase; req = build_request ~meth ~body ~host tgt;
        recv = Buffer.create 512 }
    in
    Hashtbl.replace live fd c
  in
  let finish (c : conn) =
    Hashtbl.remove live c.fd;
    (try Unix.close c.fd with _ -> ());
    Hashtbl.replace results (c.client, c.seq)
      { o_client = c.client; o_seq = c.seq; o_reply = parse_response (Buffer.contents c.recv) };
    if c.seq + 1 < requests_per_client then fresh_conn c.client (c.seq + 1)
  in
  let chunk = Bytes.create 8192 in
  let step (c : conn) =
    match c.phase with
    | Connecting -> (
      (* writability after EINPROGRESS: check SO_ERROR *)
      match Unix.getsockopt_error c.fd with
      | None -> c.phase <- Writing 0
      | Some _ -> finish c (* connection refused/reset: record what we have (empty) *))
    | Writing off -> (
      let n = String.length c.req in
      match Unix.write_substring c.fd c.req off (n - off) with
      | k -> if off + k >= n then c.phase <- Reading else c.phase <- Writing (off + k)
      | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN), _, _) -> ()
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
        (* server shed us before reading: switch to reading the 503 *)
        c.phase <- Reading)
    | Reading -> (
      match Unix.read c.fd chunk 0 (Bytes.length chunk) with
      | 0 -> finish c
      | k -> Buffer.add_subbytes c.recv chunk 0 k
      | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN), _, _) -> ()
      | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> finish c)
  in
  for client = 0 to clients - 1 do
    fresh_conn client 0
  done;
  while Hashtbl.length live > 0 do
    let rd = ref [] and wr = ref [] in
    Hashtbl.iter
      (fun fd c ->
        match c.phase with
        | Connecting | Writing _ -> wr := fd :: !wr
        | Reading -> rd := fd :: !rd)
      live;
    match Unix.select !rd !wr [] 5.0 with
    | [], [], [] ->
      (* 5 s of total silence: the server is gone; drop everything *)
      Hashtbl.iter (fun fd _ -> try Unix.close fd with _ -> ()) live;
      Hashtbl.reset live
    | rds, wrs, _ ->
      List.iter (fun fd -> match Hashtbl.find_opt live fd with Some c -> step c | None -> ()) wrs;
      List.iter (fun fd -> match Hashtbl.find_opt live fd with Some c -> step c | None -> ()) rds
  done;
  let out = ref [] in
  for client = clients - 1 downto 0 do
    for seq = requests_per_client - 1 downto 0 do
      match Hashtbl.find_opt results (client, seq) with
      | Some o -> out := o :: !out
      | None -> ()
    done
  done;
  !out
