(* Per-container / per-block access heat. See heat.mli for the
   contract; the implementation notes here are about why each piece is
   safe lock-free.

   The registry is an array of [entry option Atomic.t] cells indexed
   by pool uid (uids are small sequential ints from
   [Buffer_pool.fresh_uid]), published through one [Atomic.t].
   Registration CASes its own cell from [None]; growth CAS-publishes a
   larger outer array that *shares* the existing cells, so a
   registration racing a grow lands in a cell both arrays see and is
   never lost, and registering N containers stays O(N) overall. The
   hot path is two plain atomic loads, a bounds check and an array
   load — [note_touch] runs once per record access, so lookup cost
   matters more than registration cost.

   Per-block tallies live in a growable [int Atomic.t array] published
   the same way: growth allocates a larger array that *shares* the old
   cells, so a bump racing a grow lands in a cell both arrays see and
   is never lost.

   Sequential-run detection needs "what block did I touch last?",
   which is inherently per-thread state: it lives in a fixed array of
   slots indexed by [Domain.self () land mask]. Each slot has a single
   writer (its domain) under OCaml's per-location atomicity for
   immediate ints, so plain mutable fields suffice; two domains
   hashing to one slot merely misclassify an occasional touch. *)

type entry = {
  e_uid : int;
  mutable e_label : string;
  mutable e_blocks : int;
  e_touches : int Atomic.t;
  e_decodes : int Atomic.t;
  e_skip_blocks : int Atomic.t;
  e_bytes_decoded : int Atomic.t;
  e_bytes_skipped : int Atomic.t;
  e_runs : int Atomic.t;
  e_block_touches : int Atomic.t array Atomic.t;
}

let table : entry option Atomic.t array Atomic.t = Atomic.make [||]
let switch = Atomic.make true
let enabled () = Atomic.get switch
let set_enabled b = Atomic.set switch b

(* ---- per-domain run-detection slots ---- *)

type slot = { mutable s_uid : int; mutable s_blk : int }

let slot_mask = 127
let slots = Array.init (slot_mask + 1) (fun _ -> { s_uid = -1; s_blk = -1 })

let my_slot () =
  let d : int = (Domain.self () :> int) in
  slots.(d land slot_mask)

let domain_last () =
  let s = my_slot () in
  (s.s_uid, s.s_blk)

(* ---- registry ---- *)

let fresh_entry uid label blocks =
  {
    e_uid = uid;
    e_label = label;
    e_blocks = blocks;
    e_touches = Atomic.make 0;
    e_decodes = Atomic.make 0;
    e_skip_blocks = Atomic.make 0;
    e_bytes_decoded = Atomic.make 0;
    e_bytes_skipped = Atomic.make 0;
    e_runs = Atomic.make 0;
    e_block_touches = Atomic.make [||];
  }

let rec intern uid label blocks =
  if uid < 0 then fresh_entry uid label blocks (* detached; uids are never negative *)
  else begin
    let arr = Atomic.get table in
    let n = Array.length arr in
    if uid < n then begin
      let cell = arr.(uid) in
      match Atomic.get cell with
      | Some e ->
        (* benign data race: label/blocks are registration metadata,
           written on build/load paths, not by decode workers *)
        if label <> "" then e.e_label <- label;
        if blocks > 0 then e.e_blocks <- blocks;
        e
      | None ->
        let e =
          fresh_entry uid (if label = "" then Printf.sprintf "uid:%d" uid else label) blocks
        in
        if Atomic.compare_and_set cell None (Some e) then e else intern uid label blocks
    end
    else begin
      let arr' =
        Array.init
          (max (uid + 1) (max 16 (2 * n)))
          (fun i -> if i < n then arr.(i) else Atomic.make None)
      in
      ignore (Atomic.compare_and_set table arr arr');
      intern uid label blocks
    end
  end

let register ~uid ~label ~blocks = ignore (intern uid label blocks)

let find uid =
  let arr = Atomic.get table in
  if uid >= 0 && uid < Array.length arr then begin
    match Atomic.get arr.(uid) with Some e -> e | None -> intern uid "" 0
  end
  else intern uid "" 0

(* Bump the per-block cell, growing the published array first when the
   block index is beyond it. The grown array shares the old cells, so
   losing the CAS just means someone else grew it — retry resolves. *)
let rec bump_block e blk =
  let arr = Atomic.get e.e_block_touches in
  let n = Array.length arr in
  if blk < n then Atomic.incr arr.(blk)
  else begin
    let n' = max (blk + 1) (max 8 (2 * n)) in
    let bigger = Array.init n' (fun i -> if i < n then arr.(i) else Atomic.make 0) in
    ignore (Atomic.compare_and_set e.e_block_touches arr bigger);
    bump_block e blk
  end

(* ---- hooks ---- *)

(* The steady case — a scan fetching the same block once per record —
   must cost next to nothing, so the collapse gate is one pair of
   plain (unsynchronized) refs: the process-wide last touched
   (uid, blk). Two loads and two compares; even [Domain.self] is too
   expensive here (a C call per record). The gate is racy by design:
   interleaved domains flap it and count a few extra transitions, and
   a worker repeating another worker's last block loses a touch —
   acceptable noise for a heat map. Only block TRANSITIONS pay: one
   bump of the per-block cell (the cells double as the touch counter;
   snapshots sum them), the per-domain run classification, and — for
   non-successor transitions — a run-start bump of [e_runs].
   [e_touches] only counts blockless ([blk < 0]) touches, which never
   collapse. *)
let g_uid = ref (-1)
let g_blk = ref (-1)

let note_touch ~uid ~blk =
  if enabled () && not (blk >= 0 && !g_uid = uid && !g_blk = blk) then begin
    if blk >= 0 then begin
      g_uid := uid;
      g_blk := blk
    end;
    let e = find uid in
    if blk >= 0 then bump_block e blk else Atomic.incr e.e_touches;
    let s = my_slot () in
    if not (s.s_uid = uid && (blk = s.s_blk || blk = s.s_blk + 1)) then begin
      Atomic.incr e.e_runs;
      s.s_uid <- uid
    end;
    s.s_blk <- blk
  end

let note_decode ~uid ~blk ~bytes =
  ignore blk;
  if enabled () then begin
    let e = find uid in
    Atomic.incr e.e_decodes;
    ignore (Atomic.fetch_and_add e.e_bytes_decoded bytes)
  end

let note_skip ~uid ~blocks ~bytes =
  if enabled () then begin
    let e = find uid in
    ignore (Atomic.fetch_and_add e.e_skip_blocks blocks);
    ignore (Atomic.fetch_and_add e.e_bytes_skipped bytes)
  end

(* ---- readers ---- *)

type stat = {
  uid : int;
  label : string;
  blocks : int;
  touches : int;
  decodes : int;
  hits : int;
  header_skips : int;
  bytes_decoded : int;
  bytes_skipped : int;
  seq_touches : int;
  runs : int;
}

let stat_of_entry e =
  let touches =
    Array.fold_left
      (fun acc c -> acc + Atomic.get c)
      (Atomic.get e.e_touches)
      (Atomic.get e.e_block_touches)
  in
  let decodes = Atomic.get e.e_decodes in
  let runs = Atomic.get e.e_runs in
  {
    uid = e.e_uid;
    label = e.e_label;
    blocks = e.e_blocks;
    touches;
    decodes;
    hits = max 0 (touches - decodes);
    header_skips = Atomic.get e.e_skip_blocks;
    bytes_decoded = Atomic.get e.e_bytes_decoded;
    bytes_skipped = Atomic.get e.e_bytes_skipped;
    seq_touches = max 0 (touches - runs);
    runs;
  }

let snapshot () =
  Array.fold_left
    (fun acc cell ->
      match Atomic.get cell with Some e -> stat_of_entry e :: acc | None -> acc)
    [] (Atomic.get table)
  |> List.sort (fun a b ->
         match compare a.label b.label with 0 -> compare a.uid b.uid | c -> c)

let reset () =
  Array.iter
    (fun cell ->
      match Atomic.get cell with
      | None -> ()
      | Some e ->
        Atomic.set e.e_touches 0;
        Atomic.set e.e_decodes 0;
        Atomic.set e.e_skip_blocks 0;
        Atomic.set e.e_bytes_decoded 0;
        Atomic.set e.e_bytes_skipped 0;
        Atomic.set e.e_runs 0;
        Array.iter (fun c -> Atomic.set c 0) (Atomic.get e.e_block_touches))
    (Atomic.get table);
  g_uid := -1;
  g_blk := -1;
  Array.iter
    (fun s ->
      s.s_uid <- -1;
      s.s_blk <- -1)
    slots

let clear () =
  Atomic.set table [||];
  g_uid := -1;
  g_blk := -1;
  Array.iter
    (fun s ->
      s.s_uid <- -1;
      s.s_blk <- -1)
    slots

let hot_blocks ~uid ~top =
  if top <= 0 then []
  else
    let arr = Atomic.get table in
    match
      if uid >= 0 && uid < Array.length arr then Atomic.get arr.(uid) else None
    with
    | None -> []
    | Some e ->
      let arr = Atomic.get e.e_block_touches in
      let cells = Array.to_list (Array.mapi (fun i c -> (i, Atomic.get c)) arr) in
      List.filter (fun (_, n) -> n > 0) cells
      |> List.sort (fun (i1, n1) (i2, n2) ->
             match compare n2 n1 with 0 -> compare i1 i2 | c -> c)
      |> List.filteri (fun i _ -> i < top)

let snapshot_json ?(top_blocks = 8) () =
  let container st =
    let hot =
      hot_blocks ~uid:st.uid ~top:top_blocks
      |> List.map (fun (b, n) ->
             Json.Obj [ ("block", Json.Num (float_of_int b)); ("touches", Json.Num (float_of_int n)) ])
    in
    Json.Obj
      ([
         ("container", Json.Str st.label);
         ("uid", Json.Num (float_of_int st.uid));
         ("blocks", Json.Num (float_of_int st.blocks));
         ("touches", Json.Num (float_of_int st.touches));
         ("decodes", Json.Num (float_of_int st.decodes));
         ("hits", Json.Num (float_of_int st.hits));
         ("header_skips", Json.Num (float_of_int st.header_skips));
         ("bytes_decoded", Json.Num (float_of_int st.bytes_decoded));
         ("bytes_skipped", Json.Num (float_of_int st.bytes_skipped));
         ("seq_touches", Json.Num (float_of_int st.seq_touches));
         ("runs", Json.Num (float_of_int st.runs));
       ]
      @ if top_blocks > 0 then [ ("hot_blocks", Json.List hot) ] else [])
  in
  Json.Obj
    [
      ("enabled", Json.Bool (enabled ()));
      ("containers", Json.List (List.map container (snapshot ())));
    ]

let publish_metrics () =
  let stats = snapshot () in
  let sum f = List.fold_left (fun acc st -> acc + f st) 0 stats in
  Metrics.set_counter "heat.containers" (List.length stats);
  Metrics.set_counter "heat.touches" (sum (fun s -> s.touches));
  Metrics.set_counter "heat.decodes" (sum (fun s -> s.decodes));
  Metrics.set_counter "heat.hits" (sum (fun s -> s.hits));
  Metrics.set_counter "heat.header_skips" (sum (fun s -> s.header_skips));
  Metrics.set_counter "heat.bytes_decoded" (sum (fun s -> s.bytes_decoded));
  Metrics.set_counter "heat.bytes_skipped" (sum (fun s -> s.bytes_skipped));
  Metrics.set_counter "heat.seq_touches" (sum (fun s -> s.seq_touches));
  Metrics.set_counter "heat.runs" (sum (fun s -> s.runs))
