(** Threshold + sustain-for-K-windows alert engine, evaluated once per
    watchdog window tick.

    Rules are declarative data over named {e signals} — the caller (the
    serve layer) assembles each tick's readings as an assoc list
    ([[("drift", 0.41); ("error_rate", 0.02); ...]]) and passes them to
    {!evaluate}; the engine knows nothing about where the numbers come
    from, which keeps lib/obs independent of the serving stack.

    Hysteresis: a rule fires only after [a_sustain] consecutive
    breaching evaluations and resolves only after [a_resolve]
    consecutive clear ones; each side resets the other's streak, so a
    signal flapping around the threshold cannot fire/resolve on every
    tick. A signal absent from the environment (e.g. no cache lookups
    this window, or an idle server with no computable drift) leaves
    that rule's streaks untouched — it neither advances a firing nor
    quietly resolves an active alert.

    Each firing/resolving transition appends one JSON line to the
    alert log (when {!set_log} configured one), flips the
    [alert.<rule>.active] gauge (exposed as
    [xquec_alert_active{rule="<rule>"}]), and bumps the
    [alert.transitions] counter.

    Thread-safe behind a leaf mutex; log appends and metric flips
    happen outside it. [?now] exists for deterministic tests. *)

(** Comparison direction: [Gt] breaches above the threshold (drift,
    error rate), [Lt] below it (hit rates). *)
type op = Gt | Lt

(** One alert rule. *)
type rule = {
  a_name : string;  (** rule name, e.g. ["drift_sustained"] *)
  a_signal : string;  (** signal the rule reads, e.g. ["drift"] *)
  a_op : op;  (** breach direction *)
  a_threshold : float;  (** breach boundary (strict compare) *)
  a_sustain : int;  (** consecutive breaches before firing *)
  a_resolve : int;  (** consecutive clears before resolving *)
}

(** One firing or resolving edge. *)
type transition = {
  t_rule : string;  (** rule name *)
  t_event : string;  (** ["fired"] or ["resolved"] *)
  t_time : float;  (** unix time of the evaluation *)
  t_value : float;  (** signal reading that crossed the streak *)
  t_threshold : float;  (** the rule's threshold *)
}

(** Install the rule set, resetting all per-rule state and the recent
    ring, and pre-registering every rule's 0-valued [active] gauge so
    configured rules are visible on [/metrics] before anything fires. *)
val set_rules : rule list -> unit

(** The installed rules. *)
val rules : unit -> rule list

(** Set (or clear) the JSONL alert-log path. Transitions append
    [{ts,unix,rule,event,value,threshold}] lines; write failures are
    swallowed — alerting must never take the server down. *)
val set_log : string option -> unit

(** Clear streaks, active flags and the recent ring; keeps the rules
    and log path (test isolation). *)
val reset : unit -> unit

(** Evaluate every rule against this tick's signal readings and return
    the transitions that occurred (usually none). *)
val evaluate : ?now:float -> (string * float) list -> transition list

(** Currently active alerts as [(rule name, fired-at unix time)]. *)
val active : unit -> (string * float) list

(** Recent transitions, newest first (bounded ring). *)
val recent : unit -> transition list

(** A transition as its alert-log JSON object. *)
val transition_json : transition -> Json.t

(** The [GET /alerts] payload: every rule with its configuration and
    live state, the active subset, and the recent transition ring. *)
val snapshot_json : unit -> Json.t
