(** Lightweight span tracer: {!with_span} brackets a computation with a
    clamped-monotonic clock, records completed spans into a fixed-size
    ring buffer, and exports them as chrome-trace JSON (load the file
    in chrome://tracing or https://ui.perfetto.dev).

    Disabled (the default), {!with_span} is a single ref load + branch
    and a direct call — no allocation, no clock read.

    Thread safety: none — the ring buffer, depth counter and clock
    clamp are plain refs, intended for the main domain only. Decode
    tasks running on {!Storage.Domain_pool} workers must not open
    spans (they don't: the pool brackets whole batches from the
    caller's domain instead). *)

(** A completed (or instant) span. *)
type span = {
  name : string;
  attrs : (string * string) list;
  start_us : float;  (** microseconds since the trace epoch *)
  dur_us : float;
  depth : int;  (** nesting depth at the time the span was open *)
  instant : bool;  (** a point event, not a bracketed span *)
}

(** Monotonic-clamped wall clock in microseconds (shared clock source
    of the metrics and explain timers). *)
val now_us : unit -> float

(** Initial ring-buffer capacity (8192 spans). *)
val default_capacity : int

(** Resize the ring buffer (takes effect at the next record; clears
    recorded spans). *)
val set_capacity : int -> unit

(** Drop all recorded spans and reset the nesting depth. *)
val clear : unit -> unit

(** Completed spans, oldest first (at most the capacity; older ones
    are overwritten). *)
val spans : unit -> span list

(** Spans lost to ring-buffer overwrite since the last {!clear}. *)
val dropped : unit -> int

(** Bracket [f] in a span named [name] (recorded even when [f] raises).
    A no-op passthrough while the global switch is off. *)
val with_span : ?attrs:(string * string) list -> name:string -> (unit -> 'a) -> 'a

(** Record an instantaneous event (chrome-trace "instant"). *)
val event : ?attrs:(string * string) list -> string -> unit

(** The whole buffer in chrome-trace format. *)
val to_chrome_json : unit -> string

(** Write {!to_chrome_json} to a file. *)
val export : string -> unit
