(** Lightweight span tracer: {!with_span} brackets a computation with a
    clamped-monotonic clock, records completed spans into per-domain
    fixed-size ring buffers, and exports them all as chrome-trace JSON
    (load the file in chrome://tracing or https://ui.perfetto.dev,
    where every domain appears as its own thread track).

    Disabled (the default), {!with_span} is a single ref load + branch
    and a direct call — no allocation, no clock read.

    Thread safety: recording is lock-free and domain-local — every
    domain owns a private ring buffer (created on its first span and
    registered in a process-wide sink list), so {!Storage.Domain_pool}
    workers may open spans freely. The read and maintenance entry
    points ({!spans}, {!dropped}, {!to_chrome_json}, {!clear},
    {!set_capacity}) take the registry lock and assume the worker
    domains are quiescent; in this engine they run between
    [Domain_pool] batches, whose completion latch publishes the
    workers' ring writes. See [docs/CONCURRENCY.md]. *)

(** A completed (or instant) span. *)
type span = {
  name : string;
  attrs : (string * string) list;
  start_us : float;  (** microseconds since the trace epoch *)
  dur_us : float;
  depth : int;  (** nesting depth at the time the span was open *)
  tid : int;  (** id of the domain that recorded the span *)
  instant : bool;  (** a point event, not a bracketed span *)
}

(** Monotonic-clamped wall clock in microseconds (shared clock source
    of the metrics and explain timers). The clamp is domain-local. *)
val now_us : unit -> float

(** Initial per-domain ring-buffer capacity (8192 spans). *)
val default_capacity : int

(** Resize every domain's ring buffer (takes effect at each sink's next
    record; clears recorded spans). *)
val set_capacity : int -> unit

(** Drop all recorded spans of every domain and reset nesting depths. *)
val clear : unit -> unit

(** Completed spans of every domain: domains in first-span order (the
    main domain first), each domain's spans oldest first (at most the
    capacity per domain; older ones are overwritten). *)
val spans : unit -> span list

(** Spans lost to ring-buffer overwrite since the last {!clear},
    summed over all domains. *)
val dropped : unit -> int

(** Bracket [f] in a span named [name] (recorded even when [f] raises).
    A no-op passthrough while the global switch is off. *)
val with_span : ?attrs:(string * string) list -> name:string -> (unit -> 'a) -> 'a

(** Record an instantaneous event (chrome-trace "instant"). *)
val event : ?attrs:(string * string) list -> string -> unit

(** [add_span ~name ~start_us ~end_us ()] records a span whose
    endpoints were measured by the caller (clock values from
    {!now_us}) — used for queue-wait spans, whose start is stamped by
    the submitting domain and whose end by the executing one. The span
    lands in the calling domain's buffer; a negative interval is
    clamped to zero duration. *)
val add_span :
  ?attrs:(string * string) list ->
  name:string ->
  start_us:float ->
  end_us:float ->
  unit ->
  unit

(** Every domain's buffer in chrome-trace format, with thread-name
    metadata events so Perfetto labels the main domain and each
    worker. *)
val to_chrome_json : unit -> string

(** Write {!to_chrome_json} to a file. *)
val export : string -> unit
