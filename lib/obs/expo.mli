(** Minimal HTTP/1.1 server — blocking [Unix] sockets, no external
    dependencies. One accept loop on a dedicated domain fans admitted
    connections onto a fixed pool of worker domains ([workers > 0]), or
    handles them inline one at a time ([workers = 0], the historical
    metrics-scraper configuration — a Prometheus scraper issues one
    request per connection a few times a minute, so sequential handling
    is exactly enough there). Every response carries
    [Connection: close].

    Admission: with [max_inflight > 0] the acceptor sheds connections
    beyond that many accepted-but-unfinished requests with a canned
    [503 Service Unavailable] carrying [Retry-After: 1], written without
    parsing the request — a saturated server answers shed decisions at
    accept speed instead of queueing unboundedly. [start] also ignores
    [SIGPIPE] process-wide so clients that disconnect mid-response cost
    nothing (writes surface as catchable [EPIPE]/[ECONNRESET] and the
    connection is dropped).

    Built-in routes: [GET /metrics] (the whole {!Metrics} registry in
    Prometheus text exposition format, after running the [collect]
    callback so derived gauges are fresh) and [GET /healthz]. The
    optional [extra] handler runs first, so an embedding server
    ([xquec serve]) can add query endpoints. *)

(** A parsed HTTP request. [path] and [query] keys/values are
    percent-decoded; [body] is raw (capped at 16 MiB). *)
type request = {
  meth : string;
  path : string;
  query : (string * string) list;
  body : string;
}

(** Status, content type, extra headers (e.g. [Retry-After]) and body
    of a reply ([Content-Length] and [Connection: close] are added by
    the server). *)
type response = {
  status : int;
  content_type : string;
  headers : (string * string) list;
  body : string;
}

(** An [extra] route handler: return [Some] to answer the request,
    [None] to fall through to the built-in routes (and their 404). *)
type handler = request -> response option

(** A running server. *)
type t

(** Build a {!response}; [headers] (default [[]]) are emitted verbatim
    after [Content-Type]. *)
val respond : ?headers:(string * string) list -> int -> string -> string -> response

(** Cumulative serving counters, process-wide across all servers
    started in this process (like the decode-pool stats). *)
type stats = {
  e_workers : int;  (** worker pool size of the most recent {!start} *)
  e_accepted : int;  (** connections admitted past the gate *)
  e_handled : int;  (** connections fully served (any status) *)
  e_rejected : int;  (** connections shed with the canned 503 *)
  e_inflight : int;  (** admitted but not yet finished, right now *)
  e_inflight_high_water : int;  (** max of [e_inflight] since reset *)
}

(** Snapshot the serving counters (consistent enough for metrics: each
    field is an independent atomic read). *)
val stats : unit -> stats

(** Zero the cumulative counters ([e_inflight] is live state and is
    left alone). Test isolation helper. *)
val reset_stats : unit -> unit

(** [start ~port ()] binds [host] (default ["127.0.0.1"]) : [port]
    (0 = ephemeral, see {!port}) and serves until {!stop}. [workers]
    (default 0) is the connection-handling pool size — 0 means the
    accept-loop domain handles each connection itself, sequentially.
    [max_inflight] (default 0 = unlimited) is the admission gate.
    [extra] is consulted before the built-in routes; [collect] runs
    before each [/metrics] export. Raises [Unix.Unix_error] if the bind
    fails. *)
val start :
  ?host:string ->
  port:int ->
  ?workers:int ->
  ?max_inflight:int ->
  ?extra:handler ->
  ?collect:(unit -> unit) ->
  unit ->
  t

(** The bound port (useful after [start ~port:0]). *)
val port : t -> int

(** Shut down the listener, wake the acceptor if it is parked in
    [accept] (a blocked accept is not interrupted by closing the fd),
    join the accept-loop domain, then wake and join the workers — the
    connection queue drains first, so in-flight requests finish.
    Idempotent. *)
val stop : t -> unit

(** Block until the server stops (the [xquec serve] foreground path). *)
val wait : t -> unit
