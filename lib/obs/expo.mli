(** Minimal HTTP/1.1 server for metrics exposition — blocking [Unix]
    sockets, no external dependencies, one accept loop on a dedicated
    domain handling one connection at a time ([Connection: close] on
    every response). A Prometheus scraper issues one request per
    connection a few times a minute; sequential handling is exactly
    enough.

    Built-in routes: [GET /metrics] (the whole {!Metrics} registry in
    Prometheus text exposition format, after running the [collect]
    callback so derived gauges are fresh) and [GET /healthz]. The
    optional [extra] handler runs first, so an embedding server
    ([xquec serve]) can add query endpoints. *)

(** A parsed HTTP request. [path] and [query] keys/values are
    percent-decoded; [body] is raw (capped at 16 MiB). *)
type request = {
  meth : string;
  path : string;
  query : (string * string) list;
  body : string;
}

(** Status, content type and body of a reply ([Content-Length] and
    [Connection: close] are added by the server). *)
type response = { status : int; content_type : string; body : string }

(** An [extra] route handler: return [Some] to answer the request,
    [None] to fall through to the built-in routes (and their 404). *)
type handler = request -> response option

(** A running server. *)
type t

(** Build a {!response}. *)
val respond : int -> string -> string -> response

(** [start ~port ()] binds [host] (default ["127.0.0.1"]) : [port]
    (0 = ephemeral, see {!port}) and serves until {!stop}. [extra] is
    consulted before the built-in routes; [collect] runs before each
    [/metrics] export. Raises [Unix.Unix_error] if the bind fails. *)
val start :
  ?host:string ->
  port:int ->
  ?extra:handler ->
  ?collect:(unit -> unit) ->
  unit ->
  t

(** The bound port (useful after [start ~port:0]). *)
val port : t -> int

(** Shut down the listener, wake the acceptor if it is parked in
    [accept] (a blocked accept is not interrupted by closing the fd),
    join the accept-loop domain, then close the socket. In-flight
    requests finish first. Idempotent. *)
val stop : t -> unit

(** Block until the server stops (the [xquec serve] foreground path). *)
val wait : t -> unit
