(** Process-wide metrics registry: counters, gauges, and log-scale
    histograms, keyed by dotted names (["loader.parse_ms"],
    ["codec.alm.encode_calls"], ["executor.step.rows_out"]).

    Writes are no-ops while the global telemetry switch is off;
    read/snapshot accessors work regardless so tests can inspect state
    after a run.

    Thread safety: the registry is shared with the
    {!Storage.Domain_pool} decode workers (container decode thunks
    bump ["container.blocks_decoded"] etc. from worker domains), so
    one mutex guards every table access. It is a leaf lock — nothing
    else is called while holding it — making the lock ordering with
    the storage locks trivially acyclic. *)

(** Aggregates of one histogram. *)
type histogram_stats = { count : int; sum : float; min : float; max : float; mean : float }

(** {2 Histogram bucket layout (exposed for tests)} *)

(** Number of log-scale buckets per histogram. *)
val bucket_count : int

(** Bucket a value falls into: 0 for values at or below the lowest
    bound, doubling upper bounds after that, last bucket open-ended. *)
val bucket_index : float -> int

(** Inclusive upper bound of a bucket ([infinity] for the last). *)
val bucket_upper_bound : int -> float

(** Drop every counter, gauge and histogram. *)
val reset : unit -> unit

(** Add [by] (default 1) to a counter, creating it at first use. *)
val incr : ?by:int -> string -> unit

(** Set a gauge to the given value. *)
val set_gauge : string -> float -> unit

(** Set a counter to an absolute value — for collectors that sync an
    externally maintained cumulative counter (e.g. the buffer-pool
    atomics) into the registry before an export. *)
val set_counter : string -> int -> unit

(** Record one observation into a log-scale histogram (buckets double
    from 0.001 up; suits milliseconds and byte sizes alike). *)
val observe : string -> float -> unit

(** Time [f] and record its wall-clock milliseconds into histogram
    [name]. *)
val time_ms : string -> (unit -> 'a) -> 'a

(** Current counter value; 0 when never incremented. *)
val counter_value : string -> int

(** Current gauge value, if the gauge exists. *)
val gauge_value : string -> float option

(** Aggregates of a histogram, if it exists. *)
val histogram_stats : string -> histogram_stats option

(** Non-empty (upper bound, count) buckets of a histogram, ascending. *)
val histogram_buckets : string -> (float * int) list option

(** [histogram_percentile name p] estimates the [p]-quantile
    ([0. <= p <= 1.], e.g. 0.5 / 0.95 / 0.99) of a histogram by linear
    interpolation inside the log-scale bucket the rank falls in; edges
    are tightened with the recorded min/max, so the estimate is within
    one bucket (a factor of 2) of the true value. Edge sentinels:
    [None] if the histogram does not exist or is empty (never a fake
    zero); [p <= 0.] is the recorded minimum and [p >= 1.] the
    recorded maximum (out-of-range [p] clamps to those); a histogram
    whose observations all fell in one bucket interpolates between
    min and max directly, so bucket boundaries never surface. *)
val histogram_percentile : string -> float -> float option

(** Whole registry as a JSON snapshot (names sorted). *)
val dump_json : unit -> string

(** Whole registry as aligned human-readable text (names sorted). *)
val dump_text : unit -> string

(** Whole registry in Prometheus text exposition format (v0.0.4):
    every name is prefixed ["xquec_"] and sanitized to
    [[a-zA-Z0-9_:]]; per-container metrics
    (["container.<path>.<leaf>"]) become
    [xquec_container_<leaf>{path="<path>"}] and alert gauges
    (["alert.<rule>.active"]) become
    [xquec_alert_active{rule="<rule>"}]; histograms are exposed as
    cumulative [_bucket{le=...}] series plus [_sum] and [_count]. *)
val to_prometheus : unit -> string
