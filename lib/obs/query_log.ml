(* Structured JSONL query log: one JSON object per executed query,
   appended to a log file chosen by the CLI's --query-log flag or the
   XQUEC_QUERY_LOG environment variable. The record schema (documented
   in docs/OBSERVABILITY.md) carries the query text and its hash, the
   plan shape, wall/CPU time, per-operator cardinalities, bytes decoded
   vs. bytes pruned, buffer-pool and domain-pool counter deltas, and GC
   allocation deltas — everything the experimental-comparison
   literature asks a reproducible evaluation to persist.

   This module owns only the sink (path resolution + appending); the
   record itself is assembled by the engine (Engine.query_serialized_logged),
   which is the layer that can see the executor, the storage counters
   and the GC. A mutex serializes appends so concurrent server queries
   each produce exactly one untorn line. *)

let lock = Mutex.create ()

(* None = not yet resolved; Some None = resolved, logging off;
   Some (Some p) = logging to [p]. *)
let current_path : string option option ref = ref None

let resolve () : string option =
  match !current_path with
  | Some p -> p
  | None ->
    let p =
      match Sys.getenv_opt "XQUEC_QUERY_LOG" with
      | Some s when String.trim s <> "" -> Some (String.trim s)
      | _ -> None
    in
    current_path := Some p;
    p

let set_path (p : string option) : unit =
  Mutex.lock lock;
  current_path := Some p;
  Mutex.unlock lock

let path () : string option =
  Mutex.lock lock;
  let p = resolve () in
  Mutex.unlock lock;
  p

let enabled () : bool = path () <> None

let append (record : Json.t) : unit =
  Mutex.lock lock;
  (match resolve () with
  | None -> ()
  | Some file ->
    let oc = open_out_gen [ Open_append; Open_creat ] 0o644 file in
    (try
       output_string oc (Json.to_string record);
       output_char oc '\n';
       close_out oc
     with e ->
       close_out_noerr oc;
       Mutex.unlock lock;
       raise e));
  Mutex.unlock lock
