(** Bench regression gate: compare a fresh [BENCH_results.json] against
    the committed baseline with per-metric-class tolerances and produce
    a machine-readable verdict. Pure logic (JSON in, report out); the
    [tools/bench_gate.ml] executable is the CLI around it.

    Metric classes are inferred from each flattened key's last segment:
    harness wall times ([wall_s]) are ignored; [*_ms] / [*_mbps] /
    speedups are timings, compared only in {!Full} mode with generous
    (2x) tolerance; byte/block/cardinality counts must stay within 5%
    (±1); strings and bools (digests) must match exactly; remaining
    floats (compression ratios, gains) must stay within 5% (±0.01).
    A metric present in the baseline but absent from the candidate
    fails the gate; a whole absent experiment is skipped (that is how
    [--quick] runs a subset); extra candidate metrics are ignored. *)

(** {!Quick} skips timing metrics — the mode [make check] uses so CI
    passes don't depend on machine speed. *)
type mode = Full | Quick

(** Outcome of one baseline metric. *)
type status = Pass | Fail | Skipped | Ignored | Missing

(** One baseline metric's comparison result. *)
type entry = {
  e_exp : string;  (** experiment name *)
  e_key : string;  (** flattened dotted key within the experiment *)
  e_status : status;
  e_detail : string;  (** values / threshold, human-readable *)
}

(** Whole-run verdict. [r_passed] requires zero failures, zero missing
    metrics and at least one actual comparison. *)
type report = {
  r_passed : bool;
  r_compared : int;  (** entries actually checked (pass + fail) *)
  r_failed : int;
  r_missing : int;
  r_skipped : int;
  r_entries : entry list;  (** every key of every baseline experiment *)
}

(** Compare parsed baseline and candidate result files. *)
val compare_results : mode:mode -> baseline:Json.t -> candidate:Json.t -> report

(** Machine-readable verdict (summary counters plus every non-pass
    entry). *)
val report_to_json : report -> Json.t

(** Human-readable verdict: one line per failure, then the summary. *)
val render : report -> string
