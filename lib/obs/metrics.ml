(* Process-wide metrics registry: counters, gauges, and log-scale
   histograms, keyed by dotted names ("loader.parse_ms",
   "container./site/people/person/name/#text.encoded_bytes",
   "codec.alm.encode_calls", "executor.step.rows_out").

   Everything is a no-op while [Control.enabled] is false; snapshot /
   read accessors work regardless so tests can inspect state after a
   run.

   Thread safety: the registry is shared with the Domain_pool decode
   workers (container decode thunks bump "container.blocks_decoded"
   etc. from worker domains), so one mutex guards every table access.
   It is a leaf lock — nothing is called while holding it — making the
   lock ordering with the storage locks trivially acyclic. *)

(* --- histograms ---------------------------------------------------- *)

(* Log-scale buckets: bucket 0 holds values <= [lowest_bound]; bucket i
   holds (lowest_bound * 2^(i-1), lowest_bound * 2^i]; the last bucket
   is open-ended. With lowest_bound = 0.001 and 40 buckets the range
   covers one microsecond to ~half a million seconds when observing
   milliseconds — also fine for byte sizes. *)
let bucket_count = 40

let lowest_bound = 0.001

let bucket_index (v : float) : int =
  if v <= lowest_bound then 0
  else begin
    (* smallest i with lowest_bound * 2^i >= v *)
    let i = int_of_float (Float.ceil (Float.log2 (v /. lowest_bound))) in
    min (bucket_count - 1) (max 1 i)
  end

let bucket_upper_bound (i : int) : float =
  if i >= bucket_count - 1 then Float.infinity
  else lowest_bound *. Float.pow 2.0 (float_of_int i)

type histogram = {
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  h_buckets : int array;
}

type histogram_stats = { count : int; sum : float; min : float; max : float; mean : float }

(* --- registry ------------------------------------------------------ *)

(* guards the three tables and every value they hold *)
let lock = Mutex.create ()

let with_lock f =
  Mutex.lock lock;
  match f () with
  | v ->
    Mutex.unlock lock;
    v
  | exception e ->
    Mutex.unlock lock;
    raise e

let counters : (string, int ref) Hashtbl.t = Hashtbl.create 64

let gauges : (string, float ref) Hashtbl.t = Hashtbl.create 64

let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 64

let reset () =
  with_lock (fun () ->
      Hashtbl.reset counters;
      Hashtbl.reset gauges;
      Hashtbl.reset histograms)

(* --- writes (gated) ------------------------------------------------ *)

let incr ?(by = 1) (name : string) : unit =
  if !Control.enabled then
    with_lock (fun () ->
        match Hashtbl.find_opt counters name with
        | Some r -> r := !r + by
        | None -> Hashtbl.add counters name (ref by))

let set_gauge (name : string) (v : float) : unit =
  if !Control.enabled then
    with_lock (fun () ->
        match Hashtbl.find_opt gauges name with
        | Some r -> r := v
        | None -> Hashtbl.add gauges name (ref v))

(* Set a counter to an absolute value — for collectors that sync an
   externally maintained cumulative counter (buffer-pool / domain-pool
   atomics) into the registry before an export. *)
let set_counter (name : string) (v : int) : unit =
  if !Control.enabled then
    with_lock (fun () ->
        match Hashtbl.find_opt counters name with
        | Some r -> r := v
        | None -> Hashtbl.add counters name (ref v))

let observe (name : string) (v : float) : unit =
  if !Control.enabled then
    with_lock (fun () ->
        let h =
          match Hashtbl.find_opt histograms name with
          | Some h -> h
          | None ->
            let h =
              { h_count = 0; h_sum = 0.0; h_min = Float.infinity;
                h_max = Float.neg_infinity; h_buckets = Array.make bucket_count 0 }
            in
            Hashtbl.add histograms name h;
            h
        in
        h.h_count <- h.h_count + 1;
        h.h_sum <- h.h_sum +. v;
        if v < h.h_min then h.h_min <- v;
        if v > h.h_max then h.h_max <- v;
        let i = bucket_index v in
        h.h_buckets.(i) <- h.h_buckets.(i) + 1)

(** Time [f] and record its wall-clock milliseconds into histogram
    [name]. *)
let time_ms (name : string) (f : unit -> 'a) : 'a =
  if not !Control.enabled then f ()
  else begin
    let t0 = Trace.now_us () in
    match f () with
    | v ->
      observe name ((Trace.now_us () -. t0) /. 1000.0);
      v
    | exception e ->
      observe name ((Trace.now_us () -. t0) /. 1000.0);
      raise e
  end

(* --- reads (always available) -------------------------------------- *)

let counter_value (name : string) : int =
  with_lock (fun () ->
      match Hashtbl.find_opt counters name with Some r -> !r | None -> 0)

let gauge_value (name : string) : float option =
  with_lock (fun () -> Option.map (fun r -> !r) (Hashtbl.find_opt gauges name))

let histogram_stats (name : string) : histogram_stats option =
  with_lock (fun () ->
      Option.map
        (fun h ->
          { count = h.h_count; sum = h.h_sum; min = h.h_min; max = h.h_max;
            mean = (if h.h_count = 0 then 0.0 else h.h_sum /. float_of_int h.h_count) })
        (Hashtbl.find_opt histograms name))

(* Percentile estimate from the log-scale buckets: find the bucket the
   rank lands in and interpolate linearly inside it. Bucket edges are
   tightened with the recorded h_min / h_max (which also bound the
   open-ended last bucket), so the estimate is exact for single-bucket
   distributions and within one bucket (a factor of 2) otherwise.

   Documented sentinels, not bucket arithmetic, at the edges: a missing
   or empty histogram is [None]; [p <= 0] is the recorded minimum and
   [p >= 1] the recorded maximum; a histogram whose observations all
   landed in one bucket interpolates between min and max directly, so
   no bucket boundary ever leaks into the answer. *)
let histogram_percentile (name : string) (p : float) : float option =
  with_lock (fun () ->
      match Hashtbl.find_opt histograms name with
      | None -> None
      | Some h when h.h_count = 0 -> None
      | Some h when p <= 0.0 -> Some h.h_min
      | Some h when p >= 1.0 -> Some h.h_max
      | Some h ->
        let target = p *. float_of_int h.h_count in
        let nonzero = Array.fold_left (fun acc c -> if c > 0 then acc + 1 else acc) 0 h.h_buckets in
        if nonzero <= 1 then
          (* everything in one bucket: the bucket edges carry no
             information beyond [h_min, h_max] — interpolate there *)
          Some (h.h_min +. (p *. (h.h_max -. h.h_min)))
        else
          let rec find i cum =
            if i >= bucket_count then h.h_max
            else begin
              let c = h.h_buckets.(i) in
              let cum' = cum +. float_of_int c in
              if c > 0 && cum' >= target then begin
                let lo =
                  if i = 0 then 0.0
                  else lowest_bound *. Float.pow 2.0 (float_of_int (i - 1))
                in
                let lo = Float.max lo (Float.min h.h_min h.h_max) in
                let hi = Float.min (bucket_upper_bound i) h.h_max in
                let hi = Float.max lo hi in
                let frac = Float.max 0.0 (Float.min 1.0 ((target -. cum) /. float_of_int c)) in
                lo +. (frac *. (hi -. lo))
              end
              else find (i + 1) cum'
            end
          in
          Some (find 0 0.0))

let histogram_buckets (name : string) : (float * int) list option =
  with_lock (fun () ->
      Option.map
        (fun h ->
          Array.to_list h.h_buckets
          |> List.mapi (fun i c -> (bucket_upper_bound i, c))
          |> List.filter (fun (_, c) -> c > 0))
        (Hashtbl.find_opt histograms name))

(* --- snapshots ----------------------------------------------------- *)

let sorted_bindings tbl f =
  Hashtbl.fold (fun k v acc -> (k, f v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let dump_json () : string =
  with_lock @@ fun () ->
  let counter_fields = sorted_bindings counters (fun r -> Json.Num (float_of_int !r)) in
  let gauge_fields = sorted_bindings gauges (fun r -> Json.Num !r) in
  let histo_fields =
    sorted_bindings histograms (fun h ->
        Json.Obj
          [
            ("count", Json.Num (float_of_int h.h_count));
            ("sum", Json.Num h.h_sum);
            ("min", Json.Num (if h.h_count = 0 then 0.0 else h.h_min));
            ("max", Json.Num (if h.h_count = 0 then 0.0 else h.h_max));
            ( "buckets",
              Json.List
                (Array.to_list h.h_buckets
                |> List.mapi (fun i c -> (i, c))
                |> List.filter (fun (_, c) -> c > 0)
                |> List.map (fun (i, c) ->
                       Json.Obj
                         [
                           ("le", Json.Num (bucket_upper_bound i));
                           ("count", Json.Num (float_of_int c));
                         ])) );
          ])
  in
  Json.to_string
    (Json.Obj
       [
         ("counters", Json.Obj counter_fields);
         ("gauges", Json.Obj gauge_fields);
         ("histograms", Json.Obj histo_fields);
       ])

let dump_text () : string =
  with_lock @@ fun () ->
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let cs = sorted_bindings counters (fun r -> !r) in
  let gs = sorted_bindings gauges (fun r -> !r) in
  let hs = sorted_bindings histograms (fun h -> h) in
  if cs <> [] then begin
    line "counters:";
    List.iter (fun (k, v) -> line "  %-56s %12d" k v) cs
  end;
  if gs <> [] then begin
    line "gauges:";
    List.iter (fun (k, v) -> line "  %-56s %12.2f" k v) gs
  end;
  if hs <> [] then begin
    line "histograms:";
    List.iter
      (fun (k, (h : histogram)) ->
        if h.h_count = 0 then line "  %-56s (empty)" k
        else
          line "  %-56s n=%d sum=%.3f min=%.3f mean=%.3f max=%.3f" k h.h_count h.h_sum
            h.h_min
            (h.h_sum /. float_of_int h.h_count)
            h.h_max)
      hs
  end;
  if cs = [] && gs = [] && hs = [] then line "(no metrics recorded)";
  Buffer.contents buf

(* --- Prometheus text exposition ------------------------------------ *)

(* Metric names: [a-zA-Z_:][a-zA-Z0-9_:]*; everything else becomes '_'. *)
let prom_sanitize (s : string) : string =
  String.mapi
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> c
      | '0' .. '9' when i > 0 -> c
      | _ -> '_')
    s

(* Label values escape backslash, double quote and newline. *)
let prom_escape_label (s : string) : string =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Per-container metrics are registered as "container.<path>.<leaf>"
   where <path> is a root-to-leaf XML path ("/site/people/.../#text").
   Exposing the path inside the metric name would create one series
   name per container; fold it into a label instead:
   xquec_container_<leaf>{path="<path>"}. Alert gauges get the same
   treatment: "alert.<rule>.active" -> xquec_alert_active{rule="<rule>"},
   one series name across every rule. Everything else maps
   "a.b.c" -> "xquec_a_b_c". Returns (metric name, label pairs). *)
let prom_name (name : string) : string * (string * string) list =
  let container_prefix = "container./" in
  let alert_prefix = "alert." in
  let alert_suffix = ".active" in
  if String.length name > String.length container_prefix
     && String.sub name 0 (String.length container_prefix) = container_prefix
  then begin
    match String.rindex_opt name '.' with
    | Some dot when dot > String.length "container" ->
      let path = String.sub name (String.length "container.") (dot - String.length "container.") in
      let leaf = String.sub name (dot + 1) (String.length name - dot - 1) in
      ("xquec_container_" ^ prom_sanitize leaf, [ ("path", path) ])
    | _ -> ("xquec_" ^ prom_sanitize name, [])
  end
  else if
    String.length name > String.length alert_prefix + String.length alert_suffix
    && String.sub name 0 (String.length alert_prefix) = alert_prefix
    && String.sub name
         (String.length name - String.length alert_suffix)
         (String.length alert_suffix)
       = alert_suffix
  then begin
    let rule =
      String.sub name (String.length alert_prefix)
        (String.length name - String.length alert_prefix - String.length alert_suffix)
    in
    ("xquec_alert_active", [ ("rule", rule) ])
  end
  else ("xquec_" ^ prom_sanitize name, [])

let prom_labels (labels : (string * string) list) : string =
  match labels with
  | [] -> ""
  | ls ->
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (prom_escape_label v)) ls)
    ^ "}"

let prom_float (v : float) : string =
  if Float.is_nan v then "NaN"
  else if v = Float.infinity then "+Inf"
  else if v = Float.neg_infinity then "-Inf"
  else Json.number_to_string v

(** The whole registry in Prometheus text exposition format (version
    0.0.4): counters and gauges as single samples, histograms as
    cumulative [_bucket{le=...}] series plus [_sum] and [_count]. A
    [# TYPE] comment precedes each metric; series are sorted by
    registry name. *)
let to_prometheus () : string =
  with_lock @@ fun () ->
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  (* Emit TYPE headers once per exposed metric name (containers share
     one name across many label sets). *)
  let typed : (string, unit) Hashtbl.t = Hashtbl.create 32 in
  let type_header name kind =
    if not (Hashtbl.mem typed name) then begin
      Hashtbl.add typed name ();
      line "# TYPE %s %s" name kind
    end
  in
  List.iter
    (fun (k, v) ->
      let name, labels = prom_name k in
      type_header name "counter";
      line "%s%s %d" name (prom_labels labels) v)
    (sorted_bindings counters (fun r -> !r));
  List.iter
    (fun (k, v) ->
      let name, labels = prom_name k in
      type_header name "gauge";
      line "%s%s %s" name (prom_labels labels) (prom_float v))
    (sorted_bindings gauges (fun r -> !r));
  List.iter
    (fun (k, (h : histogram)) ->
      let name, labels = prom_name k in
      type_header name "histogram";
      let cum = ref 0 in
      Array.iteri
        (fun i c ->
          if c > 0 && i < bucket_count - 1 then begin
            cum := !cum + c;
            line "%s_bucket%s %d" name
              (prom_labels (labels @ [ ("le", prom_float (bucket_upper_bound i)) ]))
              !cum
          end)
        h.h_buckets;
      line "%s_bucket%s %d" name (prom_labels (labels @ [ ("le", "+Inf") ])) h.h_count;
      line "%s_sum%s %s" name (prom_labels labels) (prom_float h.h_sum);
      line "%s_count%s %d" name (prom_labels labels) h.h_count)
    (sorted_bindings histograms (fun h -> h));
  Buffer.contents buf
