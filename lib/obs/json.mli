(** Minimal JSON value type, printer and parser — enough for the
    metrics snapshots, chrome traces and BENCH_results.json this layer
    emits, and for the tests to round-trip them, without an external
    dependency. *)

(** A JSON value (numbers are floats, objects keep field order). *)
type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(** Backslash-escape a string for embedding between JSON quotes. *)
val escape : string -> string

(** Render a number the way the printer does: integers without a
    fractional part, everything else via [%.6g]. *)
val number_to_string : float -> string

(** Serialize a value to compact (single-line) JSON. NaN and infinite
    numbers print as [null]. *)
val to_string : t -> string

(** Raised by {!parse} with a message and offset. *)
exception Parse_error of string

(** Parse a complete JSON document (trailing garbage is an error).
    Non-ASCII [\u] escapes are replaced by ['?']. *)
val parse : string -> t

(** Field of an object, [None] on missing field or non-object. *)
val member : string -> t -> t option

(** Numeric payload of a [Num], else [None]. *)
val to_float : t -> float option

(** String payload of a [Str], else [None]. *)
val to_str : t -> string option

(** Element list of a [List], else [None]. *)
val to_list : t -> t list option
